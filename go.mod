module dcode

go 1.22
