package dcode_test

import (
	"bytes"
	"testing"

	"dcode"
)

func TestFacadeConstructors(t *testing.T) {
	for name, ctor := range map[string]func(int) (*dcode.Code, error){
		"New":        dcode.New,
		"NewXCode":   dcode.NewXCode,
		"NewRDP":     dcode.NewRDP,
		"NewHCode":   dcode.NewHCode,
		"NewHDP":     dcode.NewHDP,
		"NewEVENODD": dcode.NewEVENODD,
	} {
		c, err := ctor(7)
		if err != nil {
			t.Fatalf("%s(7): %v", name, err)
		}
		if err := dcode.VerifyMDS(c, 8); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := ctor(6); err == nil {
			t.Fatalf("%s(6) accepted a non-prime", name)
		}
	}
}

func TestQuickstartFlow(t *testing.T) {
	code, err := dcode.New(7)
	if err != nil {
		t.Fatal(err)
	}
	s := code.NewStripe(32)
	s.Fill(1)
	code.Encode(s)
	want := s.Clone()
	s.ZeroColumn(2)
	s.ZeroColumn(3)
	if err := code.Reconstruct(s, 2, 3); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(want) {
		t.Fatal("quickstart reconstruct mismatch")
	}
}

func TestFacadeArray(t *testing.T) {
	code, err := dcode.New(5)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]dcode.Device, code.Cols())
	mems := make([]*dcode.MemDevice, code.Cols())
	for i := range devs {
		mems[i] = dcode.NewMemDevice(int64(code.Rows()) * 64 * 4)
		devs[i] = mems[i]
	}
	a, err := dcode.NewArray(code, devs, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, a.Size())
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	mems[0].Fail()
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("facade array degraded read mismatch")
	}
}

func TestFacadeReedSolomon(t *testing.T) {
	enc, err := dcode.NewReedSolomon(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 6)
	for i := range shards {
		shards[i] = make([]byte, 16)
		for j := range shards[i] {
			shards[i][j] = byte(i + j)
		}
	}
	if err := enc.Encode(shards); err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), shards[1]...)
	shards[1] = nil
	if err := enc.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[1], orig) {
		t.Fatal("facade RS reconstruct mismatch")
	}
}

func TestFacadeFileDevice(t *testing.T) {
	d, err := dcode.OpenFileDevice(t.TempDir()+"/dev.img", 256)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Size() != 256 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestFacadeExtensionCodes(t *testing.T) {
	pc, err := dcode.NewPCode(7)
	if err != nil || pc.Cols() != 6 {
		t.Fatalf("NewPCode(7): %v, cols=%d", err, pc.Cols())
	}
	lib, err := dcode.NewLiberation(5, 7)
	if err != nil || lib.Cols() != 7 {
		t.Fatalf("NewLiberation(5,7): %v", err)
	}
	br, err := dcode.NewBlaumRoth(4, 7)
	if err != nil || br.Cols() != 6 {
		t.Fatalf("NewBlaumRoth(4,7): %v", err)
	}
	for _, c := range []*dcode.Code{pc, lib, br} {
		if err := dcode.VerifyMDS(c, 8); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeCauchyReedSolomon(t *testing.T) {
	enc, err := dcode.NewCauchyReedSolomon(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 6)
	for i := range shards {
		shards[i] = make([]byte, 16)
		for j := range shards[i] {
			shards[i][j] = byte(i*3 + j)
		}
	}
	if err := enc.Encode(shards); err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), shards[2]...)
	shards[2] = nil
	shards[5] = nil
	if err := enc.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[2], orig) {
		t.Fatal("CRS facade reconstruct mismatch")
	}
}

func TestFacadeJournaledArray(t *testing.T) {
	code, err := dcode.New(5)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]dcode.Device, code.Cols())
	for i := range devs {
		devs[i] = dcode.NewMemDevice(int64(code.Rows()) * 64 * 4)
	}
	arr, err := dcode.NewJournaledArray(code, devs, 64, 4, dcode.NewMemDevice(4096))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("journaled write")
	if _, err := arr.WriteAt(payload, 10); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := arr.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("journaled array round trip mismatch")
	}
}

func TestFacadeShortenedRDPViaInternalParity(t *testing.T) {
	// The facade exposes prime-parameter constructors; shortened RDP is an
	// internal extension — double-check the facade's RDP matches the
	// unshortened geometry so users are not surprised.
	c, err := dcode.NewRDP(7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cols() != 8 || c.DataColumns() != 6 {
		t.Fatalf("RDP facade geometry: %d cols, %d data cols", c.Cols(), c.DataColumns())
	}
}

func TestFacadeShortenedRDP(t *testing.T) {
	c, err := dcode.NewShortenedRDP(4) // p would be 5
	if err != nil {
		t.Fatal(err)
	}
	if c.Cols() != 6 || c.DataColumns() != 4 {
		t.Fatalf("shortened geometry: %d cols, %d data", c.Cols(), c.DataColumns())
	}
	if err := dcode.VerifyMDS(c, 8); err != nil {
		t.Fatal(err)
	}
}
