package dcode

import (
	"time"

	"dcode/internal/blaumroth"
	"dcode/internal/blockdev"
	"dcode/internal/core"
	"dcode/internal/crs"
	"dcode/internal/erasure"
	"dcode/internal/evenodd"
	"dcode/internal/hcode"
	"dcode/internal/hdp"
	"dcode/internal/liberation"
	"dcode/internal/pcode"
	"dcode/internal/raid"
	"dcode/internal/rdp"
	"dcode/internal/rs"
	"dcode/internal/stripe"
	"dcode/internal/xcode"
)

// Code is an XOR-based RAID-6 array code over a rows×cols stripe of
// elements; every constructor in this package returns one. See the methods
// on erasure.Code: NewStripe, Encode, Verify, Reconstruct, UpdateData,
// ComputeMetrics, and the layout accessors.
type Code = erasure.Code

// Coord addresses one element of a stripe by (Row, Col).
type Coord = erasure.Coord

// Group is one parity equation of a code.
type Group = erasure.Group

// Stripe is a rows×cols matrix of fixed-size byte elements.
type Stripe = stripe.Stripe

// Metrics carries a code's analytic complexity figures (paper §III-D).
type Metrics = erasure.Metrics

// New constructs D-Code over n disks; n must be a prime ≥ 5. This is the
// paper's contribution: horizontal parities over runs of consecutive data
// elements plus deployment parities, all stored in the last two rows.
func New(n int) (*Code, error) { return core.New(n) }

// NewXCode constructs X-Code over p disks (p prime ≥ 5).
func NewXCode(p int) (*Code, error) { return xcode.New(p) }

// NewRDP constructs the Row-Diagonal Parity code over p+1 disks (p prime ≥ 5).
func NewRDP(p int) (*Code, error) { return rdp.New(p) }

// NewShortenedRDP constructs an RDP array with exactly k data disks (k+2
// disks total, any k ≥ 2) by code shortening over the next prime.
func NewShortenedRDP(k int) (*Code, error) { return rdp.NewShortened(k) }

// NewHCode constructs H-Code over p+1 disks (p prime ≥ 5).
func NewHCode(p int) (*Code, error) { return hcode.New(p) }

// NewHDP constructs the HDP code over p-1 disks (p prime ≥ 5).
func NewHDP(p int) (*Code, error) { return hdp.New(p) }

// NewEVENODD constructs the EVENODD code over p+2 disks (p prime ≥ 5).
func NewEVENODD(p int) (*Code, error) { return evenodd.New(p) }

// NewPCode constructs P-Code over p-1 disks (p prime ≥ 5).
func NewPCode(p int) (*Code, error) { return pcode.New(p) }

// NewLiberation constructs Plank's Liberation code with k data disks over
// prime packet width w ≥ k (k+2 disks total, w packets per element).
func NewLiberation(k, w int) (*Code, error) { return liberation.New(k, w) }

// NewBlaumRoth constructs a Blaum-Roth code with k data disks over the ring
// GF(2)[x]/M_p(x) (k+2 disks total, p-1 packets per element; k ≤ p-1).
func NewBlaumRoth(k, p int) (*Code, error) { return blaumroth.New(k, p) }

// VerifyMDS exhaustively checks that a code survives every single- and
// double-column erasure (see DESIGN.md §4).
func VerifyMDS(c *Code, elemSize int) error { return erasure.VerifyMDS(c, elemSize) }

// ReedSolomon is a systematic Reed-Solomon encoder over GF(2^8); with two
// parity shards it is the general-purpose RAID-6 baseline of the paper's
// related work.
type ReedSolomon = rs.Encoder

// NewReedSolomon constructs a Reed-Solomon code with k data and m parity
// shards (k+m ≤ 256).
func NewReedSolomon(k, m int) (*ReedSolomon, error) { return rs.New(k, m) }

// CauchyReedSolomon is the XOR-only bit-matrix variant of Reed-Solomon
// (Blömer et al.), Jerasure's core coding technique.
type CauchyReedSolomon = crs.Encoder

// NewCauchyReedSolomon constructs a Cauchy Reed-Solomon code with k data and
// m parity shards (k+m ≤ 256); shard sizes must be multiples of 8.
func NewCauchyReedSolomon(k, m int) (*CauchyReedSolomon, error) { return crs.New(k, m) }

// Array is a software RAID-6 volume over block devices; it serves arbitrary
// byte-ranged reads and writes, survives up to two disk failures, rebuilds
// replacements and scrubs parity.
type Array = raid.Array

// Device is the block-device interface arrays store columns on.
type Device = blockdev.Device

// MemDevice is an in-memory Device with fault injection (Fail, Replace,
// InjectBadSector, Corrupt).
type MemDevice = blockdev.MemDevice

// ArrayOption configures an Array at construction time.
type ArrayOption = raid.Option

// WithConcurrency bounds the number of goroutines an array uses for stripe
// pipelining and per-device fan-out. 1 makes the array fully serial; omitted
// or ≤ 0 uses GOMAXPROCS.
func WithConcurrency(n int) ArrayOption { return raid.WithConcurrency(n) }

// WithCache attaches a sharded LRU element cache with the given byte budget:
// read hits skip device I/O, read-modify-write pre-reads of cached old data
// and parity are absorbed, and degraded reads memoize reconstructed elements.
// Omitted or ≤ 0 leaves the cache off (the default).
func WithCache(bytes int64) ArrayOption { return raid.WithCache(bytes) }

// WithBatching enables the cross-op write-combining window: small writes
// confined to one stripe's data region are acknowledged immediately, merged
// with adjacent pending writes, and land on the devices when the window
// fills, the timer expires, a read or conflicting write touches them, or a
// barrier (Array.Flush, FailDisk, Rebuild, Scrub) runs. Like a volatile
// write cache, acknowledged-but-unflushed writes are lost on a crash — pair
// it with the journal when that matters. window ≤ 0 means 500µs; maxBytes
// ≤ 0 means 1MiB. Off by default.
func WithBatching(window time.Duration, maxBytes int) ArrayOption {
	return raid.WithBatching(window, maxBytes)
}

// WithAsyncIO enables the asynchronous device-submission engine: each stripe
// task batch-submits its per-column device runs through one queue (io_uring
// on file-backed Linux arrays, a worker pool elsewhere) and harvests the
// completions, instead of spawning a goroutine per column. depth is the
// queue depth — the useful device overlap — with ≤ 0 selecting the default.
// Off by default; semantics (tallies, repair, failure marking) are identical
// to the synchronous path. Call Array.Close to release the engine.
func WithAsyncIO(depth int) ArrayOption { return raid.WithAsyncIO(depth) }

// NewArray assembles a RAID-6 volume from one device per column of the code,
// with the given element size and stripe count.
func NewArray(c *Code, devs []Device, elemSize int, stripes int64, opts ...ArrayOption) (*Array, error) {
	return raid.New(c, devs, elemSize, stripes, opts...)
}

// NewJournaledArray is NewArray with a write-intent journal on a dedicated
// device: stripe mutations are bracketed by intent/commit records, and
// mounting replays uncommitted stripes so a crash between a data write and
// its parity updates (the RAID write hole) cannot silently corrupt later
// reconstructions.
func NewJournaledArray(c *Code, devs []Device, elemSize int, stripes int64, journal Device, opts ...ArrayOption) (*Array, error) {
	return raid.NewJournaled(c, devs, elemSize, stripes, journal, opts...)
}

// NewMemDevice allocates a zeroed in-memory block device.
func NewMemDevice(size int64) *MemDevice { return blockdev.NewMem(size) }

// OpenFileDevice creates or opens a file-backed block device of the given
// size.
func OpenFileDevice(path string, size int64) (Device, error) {
	return blockdev.OpenFile(path, size)
}

// OpenFileDeviceDirect is OpenFileDevice with an O_DIRECT descriptor armed
// next to the buffered one where the OS and filesystem support it: the
// required alignment is probed at open, aligned requests bypass the page
// cache (bouncing through pooled aligned buffers when caller memory is not
// aligned), and unaligned or unsupported cases degrade to the buffered
// descriptor — identical to OpenFileDevice.
func OpenFileDeviceDirect(path string, size int64) (Device, error) {
	return blockdev.OpenFileDirect(path, size)
}
