package dcode_test

import (
	"fmt"

	"dcode"
)

// Encode a stripe, lose two disks, recover.
func Example() {
	code, err := dcode.New(7)
	if err != nil {
		panic(err)
	}
	s := code.NewStripe(16)
	copy(s.Elem(0, 0), []byte("hello raid-6"))
	code.Encode(s)

	s.ZeroColumn(0)
	s.ZeroColumn(4)
	if err := code.Reconstruct(s, 0, 4); err != nil {
		panic(err)
	}
	fmt.Println(string(s.Elem(0, 0)[:12]))
	// Output: hello raid-6
}

// Inspect D-Code's layout and complexity metrics.
func ExampleNew() {
	code, _ := dcode.New(7)
	m := code.ComputeMetrics()
	fmt.Printf("%s: %d disks, %d data elements/stripe\n", code.Name(), code.Cols(), code.DataElems())
	fmt.Printf("encode XORs per data element: %.2f (optimal 2-2/(n-2))\n", m.EncodeXORPerData)
	fmt.Printf("parity updates per small write: %.0f (optimal)\n", m.UpdateAvg)
	// Output:
	// D-Code: 7 disks, 35 data elements/stripe
	// encode XORs per data element: 1.60 (optimal 2-2/(n-2))
	// parity updates per small write: 2 (optimal)
}

// A byte-addressed RAID-6 volume that survives a disk failure.
func ExampleNewArray() {
	code, _ := dcode.New(5)
	devs := make([]dcode.Device, code.Cols())
	mems := make([]*dcode.MemDevice, code.Cols())
	for i := range devs {
		mems[i] = dcode.NewMemDevice(5 * 64 * 8)
		devs[i] = mems[i]
	}
	arr, _ := dcode.NewArray(code, devs, 64, 8)

	arr.WriteAt([]byte("important data"), 100)
	mems[2].Fail()

	buf := make([]byte, 14)
	arr.ReadAt(buf, 100)
	fmt.Println(string(buf))
	// Output: important data
}

// Reed-Solomon P+Q as the general-purpose comparison baseline.
func ExampleNewReedSolomon() {
	enc, _ := dcode.NewReedSolomon(4, 2)
	shards := make([][]byte, 6)
	for i := range shards {
		shards[i] = make([]byte, 8)
	}
	copy(shards[0], "shard-0!")
	enc.Encode(shards)

	shards[0] = nil // lose a shard
	enc.Reconstruct(shards)
	fmt.Println(string(shards[0]))
	// Output: shard-0!
}
