// Benchmark harness: one benchmark per table/figure of the D-Code paper's
// evaluation, each emitting the paper's metric via b.ReportMetric, plus
// kernel microbenchmarks and ablations. See DESIGN.md §3 for the experiment
// index and EXPERIMENTS.md for measured-vs-paper results.
//
//	go test -bench 'Figure4' -benchtime 1x .   # one full Fig. 4 sweep
//	go test -bench . -benchmem ./...           # everything
package dcode_test

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"dcode"
	"dcode/internal/blockdev"
	"dcode/internal/codes"
	"dcode/internal/crs"
	"dcode/internal/erasure"
	"dcode/internal/ioload"
	"dcode/internal/readperf"
	"dcode/internal/recovery"
	"dcode/internal/rs"
	"dcode/internal/workload"
)

const benchSeed = 42

// ---------------------------------------------------------------------------
// Paper §III-D — the feature table: encoding/decoding/update complexity.

func BenchmarkFeatureTable(b *testing.B) {
	for _, e := range codes.All() {
		for _, p := range []int{7, 13} {
			c, err := e.New(p)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/p=%d", e.ID, p), func(b *testing.B) {
				var m erasure.Metrics
				var decodeXOR float64
				for i := 0; i < b.N; i++ {
					m = c.ComputeMetrics()
					decodeXOR, _ = c.DecodeXORPerLost()
				}
				b.ReportMetric(m.EncodeXORPerData, "encXOR/data")
				b.ReportMetric(decodeXOR, "decXOR/lost")
				b.ReportMetric(m.UpdateAvg, "parity-upd/write")
				b.ReportMetric(m.StorageEfficiency, "storage-eff")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Paper Fig. 1 — degraded-read and partial-write footprints (p=7): the
// number of extra elements each code touches for one 5-element operation.

func BenchmarkFigure1Footprints(b *testing.B) {
	for _, id := range []string{"rdp", "xcode", "dcode"} {
		c := codes.MustNew(id, 7)
		b.Run("write/"+id, func(b *testing.B) {
			var parities int
			cells := make([]erasure.Coord, 5)
			for i := range cells {
				cells[i] = c.DataCoord(i)
			}
			for i := 0; i < b.N; i++ {
				parities = len(c.GroupsTouchedBy(cells))
			}
			b.ReportMetric(float64(parities), "parities-updated")
		})
		b.Run("degraded-read/"+id, func(b *testing.B) {
			wanted := make([]erasure.Coord, 5)
			for i := range wanted {
				wanted[i] = c.DataCoord(i)
			}
			failed := wanted[2].Col
			var extra int
			for i := 0; i < b.N; i++ {
				var err error
				_, extra, err = readperf.PlanStripeFetch(c, failed, wanted)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(extra), "extra-reads")
		})
	}
}

// ---------------------------------------------------------------------------
// Paper Fig. 3 — double-failure recovery: chain length and XOR cost for
// D-Code, disks 2 and 3, p=7.

func BenchmarkFigure3RecoveryChain(b *testing.B) {
	c := codes.MustNew("dcode", 7)
	var xors, chainLen int
	for i := 0; i < b.N; i++ {
		x, chain, err := c.SymbolicDecode(2, 3)
		if err != nil {
			b.Fatal(err)
		}
		xors, chainLen = x, len(chain)
	}
	b.ReportMetric(float64(chainLen), "elements")
	b.ReportMetric(float64(xors)/float64(chainLen), "XOR/element")
}

// ---------------------------------------------------------------------------
// Paper Fig. 4 — load balancing factor LF, and Fig. 5 — total I/O cost:
// 5 codes × 3 workloads × p ∈ {5,7,11,13}.

func benchIOLoad(b *testing.B, metric string) {
	for _, prof := range workload.Profiles {
		for _, e := range codes.Comparison() {
			for _, p := range codes.PaperPrimes {
				c, err := e.New(p)
				if err != nil {
					b.Fatal(err)
				}
				name := fmt.Sprintf("%s/%s/p=%d", prof.Name, e.ID, p)
				b.Run(name, func(b *testing.B) {
					ops, err := workload.Generate(workload.Config{
						DataElems: c.DataElems(), Seed: benchSeed,
					}, prof)
					if err != nil {
						b.Fatal(err)
					}
					var res ioload.Result
					for i := 0; i < b.N; i++ {
						res = ioload.Simulate(c, ops)
					}
					switch metric {
					case "lf":
						lf := res.LF()
						if math.IsInf(lf, 1) {
							lf = 30 // the paper plots infinity as 30
						}
						b.ReportMetric(lf, "LF")
					case "cost":
						b.ReportMetric(float64(res.Cost()), "IO-accesses")
					}
				})
			}
		}
	}
}

func BenchmarkFigure4LoadBalancing(b *testing.B) { benchIOLoad(b, "lf") }
func BenchmarkFigure5IOCost(b *testing.B)        { benchIOLoad(b, "cost") }

// ---------------------------------------------------------------------------
// Paper Fig. 6 — normal-mode read speed (and average per disk).

func BenchmarkFigure6NormalRead(b *testing.B) {
	for _, e := range codes.Comparison() {
		for _, p := range codes.PaperPrimes {
			c, err := e.New(p)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/p=%d", e.ID, p), func(b *testing.B) {
				var res readperf.Result
				for i := 0; i < b.N; i++ {
					res = readperf.Normal(c, readperf.Config{Seed: benchSeed})
				}
				b.ReportMetric(res.SpeedMBps, "MB/s")
				b.ReportMetric(res.AvgSpeedMBps, "MB/s/disk")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Paper Fig. 7 — degraded-mode read speed under single data-disk failures.

func BenchmarkFigure7DegradedRead(b *testing.B) {
	for _, e := range codes.Comparison() {
		for _, p := range codes.PaperPrimes {
			c, err := e.New(p)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/p=%d", e.ID, p), func(b *testing.B) {
				var res readperf.Result
				for i := 0; i < b.N; i++ {
					res, err = readperf.Degraded(c, readperf.Config{Seed: benchSeed})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.SpeedMBps, "MB/s")
				b.ReportMetric(res.AvgSpeedMBps, "MB/s/disk")
				b.ReportMetric(float64(res.ExtraElems), "extra-elems")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Paper §III-D — single-disk-failure recovery reads: the ~25% saving of the
// hybrid plan versus the conventional single-kind plan.

func BenchmarkSingleFailureRecovery(b *testing.B) {
	for _, e := range codes.Comparison() {
		for _, p := range []int{7, 13} {
			c, err := e.New(p)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/p=%d", e.ID, p), func(b *testing.B) {
				var saving, reads float64
				for i := 0; i < b.N; i++ {
					var err error
					saving, reads, _, err = recovery.AverageSaving(c)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(saving*100, "%-saved")
				b.ReportMetric(reads, "reads/stripe")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Kernel microbenchmarks: raw encode/decode throughput per code, the
// Reed-Solomon baseline, and the small-write path.

const kernelElem = 4096

func BenchmarkEncode(b *testing.B) {
	for _, e := range codes.All() {
		c, err := e.New(13)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.ID+"/p=13", func(b *testing.B) {
			s := c.NewStripe(kernelElem)
			s.Fill(1)
			b.SetBytes(int64(c.DataElems() * kernelElem))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Encode(s)
			}
		})
	}
}

func BenchmarkReconstructDouble(b *testing.B) {
	for _, e := range codes.All() {
		c, err := e.New(13)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.ID+"/p=13", func(b *testing.B) {
			s := c.NewStripe(kernelElem)
			s.Fill(1)
			c.Encode(s)
			b.SetBytes(int64(2 * c.Rows() * kernelElem))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Reconstruct(s, 1, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReedSolomonEncode(b *testing.B) {
	// RS with the same data-disk count as a p=13 D-Code (11 data shards).
	enc, err := rs.NewRAID6(11)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, 13)
	for i := range shards {
		shards[i] = make([]byte, kernelElem)
		for j := range shards[i] {
			shards[i][j] = byte(i + j)
		}
	}
	b.SetBytes(int64(11 * kernelElem))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCauchyRSEncode contrasts the XOR-only bit-matrix encoding with
// BenchmarkReedSolomonEncode's table-multiply path — the classic Cauchy-RS
// result that pure XOR beats GF table lookups.
func BenchmarkCauchyRSEncode(b *testing.B) {
	enc, err := crs.NewRAID6(11)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, 13)
	for i := range shards {
		shards[i] = make([]byte, kernelElem)
		for j := range shards[i] {
			shards[i][j] = byte(i + j)
		}
	}
	b.SetBytes(int64(11 * kernelElem))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateData(b *testing.B) {
	for _, id := range []string{"dcode", "rdp"} {
		c := codes.MustNew(id, 13)
		b.Run(id+"/p=13", func(b *testing.B) {
			s := c.NewStripe(kernelElem)
			s.Fill(1)
			c.Encode(s)
			co := c.DataCoord(0)
			val := make([]byte, kernelElem)
			b.SetBytes(kernelElem)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				val[0] = byte(i)
				c.UpdateData(s, co.Row, co.Col, val)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §9).

// AblationDegradedPlanKinds compares D-Code's degraded fetch cost when the
// planner may use both parity kinds versus horizontal-only versus
// deployment-only — isolating where the degraded-read win comes from.
func BenchmarkAblationDegradedPlanKinds(b *testing.B) {
	c := codes.MustNew("dcode", 13)
	for _, tc := range []struct {
		name  string
		kinds []erasure.GroupKind
	}{
		{"both", nil},
		{"horizontal-only", []erasure.GroupKind{erasure.KindHorizontal}},
		{"deployment-only", []erasure.GroupKind{erasure.KindDeployment}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var extra int64
			for i := 0; i < b.N; i++ {
				extra = 0
				for s := 0; s < c.DataElems(); s += 7 {
					wanted := make([]erasure.Coord, 0, 10)
					for j := 0; j < 10; j++ {
						wanted = append(wanted, c.DataCoord((s+j)%c.DataElems()))
					}
					_, ex, err := readperf.PlanStripeFetchKinds(c, wanted[1].Col, wanted, tc.kinds)
					if err != nil {
						b.Fatal(err)
					}
					extra += int64(ex)
				}
			}
			b.ReportMetric(float64(extra), "extra-reads")
		})
	}
}

// AblationDecodePath compares the peeling decoder (D-Code) against a code
// whose erasures regularly need the GF(2) Gaussian fallback (EVENODD).
func BenchmarkAblationDecodePath(b *testing.B) {
	for _, tc := range []struct{ name, id string }{
		{"peeling/dcode", "dcode"},
		{"gaussian/evenodd", "evenodd"},
	} {
		c := codes.MustNew(tc.id, 13)
		b.Run(tc.name, func(b *testing.B) {
			s := c.NewStripe(kernelElem)
			s.Fill(3)
			c.Encode(s)
			b.SetBytes(int64(2 * c.Rows() * kernelElem))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Reconstruct(s, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeParallel measures the multi-core speedup of byte-range
// parallel encoding on large elements.
func BenchmarkEncodeParallel(b *testing.B) {
	c := codes.MustNew("dcode", 13)
	const elem = 1 << 20
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := c.NewStripe(elem)
			s.Fill(1)
			b.SetBytes(int64(c.DataElems() * elem))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.EncodeParallel(s, workers)
			}
		})
	}
}

// BenchmarkExtensionRotationHotspot quantifies the paper's §I argument:
// RAID-5-style stripe rotation cannot balance per-stripe hotspots, while
// D-Code balances within each stripe.
func BenchmarkExtensionRotationHotspot(b *testing.B) {
	rdpCode := codes.MustNew("rdp", 7)
	dcodeC := codes.MustNew("dcode", 7)
	gen := func(elems int) []workload.Op {
		ops, err := workload.Generate(workload.Config{
			DataElems:           40 * elems,
			Seed:                benchSeed,
			HotspotOpFraction:   0.95,
			HotspotAddrFraction: 0.025,
		}, workload.Mixed)
		if err != nil {
			b.Fatal(err)
		}
		return ops
	}
	b.Run("rdp-rotated", func(b *testing.B) {
		ops := gen(rdpCode.DataElems())
		var lf float64
		for i := 0; i < b.N; i++ {
			lf = ioload.SimulateRotated(rdpCode, ops).LF()
		}
		b.ReportMetric(lf, "LF")
	})
	b.Run("dcode", func(b *testing.B) {
		ops := gen(dcodeC.DataElems())
		var lf float64
		for i := 0; i < b.N; i++ {
			lf = ioload.Simulate(dcodeC, ops).LF()
		}
		b.ReportMetric(lf, "LF")
	})
}

// ---------------------------------------------------------------------------
// Array data path: stripe pipelining and per-device fan-out at Concurrency 1
// (fully serial) versus GOMAXPROCS. On a single-core machine the two coincide;
// on multi-core the parallel rows show the speedup from concurrent per-device
// I/O. The serial rows double as allocation checks for the pooled data path.

// benchConcs returns the fan-out bounds worth benchmarking: always 1, plus
// GOMAXPROCS when it differs.
func benchConcs() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

func newBenchArray(b *testing.B, conc int) (*dcode.Array, []*dcode.MemDevice) {
	b.Helper()
	code, err := dcode.New(7)
	if err != nil {
		b.Fatal(err)
	}
	const stripes, elem = 32, 4096
	mems := make([]*dcode.MemDevice, code.Cols())
	devs := make([]dcode.Device, code.Cols())
	for i := range devs {
		mems[i] = dcode.NewMemDevice(stripes * int64(code.Rows()) * elem)
		devs[i] = mems[i]
	}
	a, err := dcode.NewArray(code, devs, elem, stripes, dcode.WithConcurrency(conc))
	if err != nil {
		b.Fatal(err)
	}
	return a, mems
}

func BenchmarkArrayWriteAt(b *testing.B) {
	for _, conc := range benchConcs() {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			a, _ := newBenchArray(b, conc)
			buf := make([]byte, a.Size())
			for i := range buf {
				buf[i] = byte(i)
			}
			b.SetBytes(a.Size())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.WriteAt(buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkArrayReadAt(b *testing.B) {
	for _, conc := range benchConcs() {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			a, _ := newBenchArray(b, conc)
			buf := make([]byte, a.Size())
			for i := range buf {
				buf[i] = byte(i * 31)
			}
			if _, err := a.WriteAt(buf, 0); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(a.Size())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.ReadAt(buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkArrayRebuild(b *testing.B) {
	for _, conc := range benchConcs() {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			a, mems := newBenchArray(b, conc)
			buf := make([]byte, a.Size())
			for i := range buf {
				buf[i] = byte(i * 17)
			}
			if _, err := a.WriteAt(buf, 0); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(mems[2].Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := a.FailDisk(2); err != nil {
					b.Fatal(err)
				}
				mems[2].Replace()
				b.StartTimer()
				if err := a.Rebuild(2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The Delayed variants put a fixed per-call service time under each device —
// the crude disk model from internal/blockdev — so the benchmark measures
// what the array's scheduling actually buys on hardware with latency:
// overlapped device waits across columns and stripes, and coalesced runs
// paying the service time once. Sleeps overlap regardless of core count, so
// the pipelining speedup shows even on a single-CPU machine (where the pure
// in-memory variants above measure only goroutine overhead).

const benchDelay = 50 * time.Microsecond

// benchPerByte is the transfer-cost term of the delayed model: 1ns/byte
// (~1 GB/s streaming) next to the 50µs positioning cost, so a coalesced run
// pays for the extra bytes it moves instead of riding free on the per-call
// term. BENCH_PERBYTE overrides it ("0s" reproduces the flat per-call model
// that baselines recorded before the two-term model existed).
func benchPerByte() time.Duration {
	if s := os.Getenv("BENCH_PERBYTE"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d >= 0 {
			return d
		}
	}
	return time.Nanosecond
}

func newDelayedBenchArray(b *testing.B, conc int) (*dcode.Array, []*blockdev.MemDevice) {
	b.Helper()
	code, err := dcode.New(7)
	if err != nil {
		b.Fatal(err)
	}
	const stripes, elem = 16, 4096
	mems := make([]*blockdev.MemDevice, code.Cols())
	devs := make([]dcode.Device, code.Cols())
	for i := range devs {
		mems[i] = dcode.NewMemDevice(stripes * int64(code.Rows()) * elem)
		devs[i] = &blockdev.Delayed{Device: mems[i], Delay: benchDelay, PerByte: benchPerByte()}
	}
	a, err := dcode.NewArray(code, devs, elem, stripes, dcode.WithConcurrency(conc))
	if err != nil {
		b.Fatal(err)
	}
	return a, mems
}

// delayedConcs always contrasts serial with a real fan-out: latency overlap
// does not need cores, so a fixed bound of 8 is meaningful everywhere.
func delayedConcs() []int { return []int{1, 8} }

func BenchmarkArrayWriteAtDelayed(b *testing.B) {
	for _, conc := range delayedConcs() {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			a, _ := newDelayedBenchArray(b, conc)
			buf := make([]byte, a.Size())
			for i := range buf {
				buf[i] = byte(i)
			}
			b.SetBytes(a.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.WriteAt(buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArraySmallWritesDelayed is the write-combining ablation: a burst
// of sequential 256B writes through one stripe, with the batching window off
// and on. Off, every write pays its own read-modify-write against the delayed
// devices; on, the burst merges into full-stripe flushes and the positioning
// cost amortizes across the whole run.
func BenchmarkArraySmallWritesDelayed(b *testing.B) {
	const chunk = 256
	for _, batched := range []bool{false, true} {
		b.Run(fmt.Sprintf("batched=%v", batched), func(b *testing.B) {
			code, err := dcode.New(7)
			if err != nil {
				b.Fatal(err)
			}
			const stripes, elem = 16, 4096
			devs := make([]dcode.Device, code.Cols())
			for i := range devs {
				mem := dcode.NewMemDevice(stripes * int64(code.Rows()) * elem)
				devs[i] = &blockdev.Delayed{Device: mem, Delay: benchDelay, PerByte: benchPerByte()}
			}
			opts := []dcode.ArrayOption{dcode.WithConcurrency(8)}
			if batched {
				opts = append(opts, dcode.WithBatching(time.Millisecond, 1<<20))
			}
			a, err := dcode.NewArray(code, devs, elem, stripes, opts...)
			if err != nil {
				b.Fatal(err)
			}
			sdb := int64(code.DataElems()) * elem
			buf := make([]byte, chunk)
			for i := range buf {
				buf[i] = byte(i)
			}
			b.SetBytes(sdb)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := (int64(i) % stripes) * sdb
				for off := int64(0); off < sdb; off += chunk {
					if _, err := a.WriteAt(buf, base+off); err != nil {
						b.Fatal(err)
					}
				}
				if err := a.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkArrayRebuildDelayed(b *testing.B) {
	for _, conc := range delayedConcs() {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			a, mems := newDelayedBenchArray(b, conc)
			buf := make([]byte, a.Size())
			for i := range buf {
				buf[i] = byte(i * 17)
			}
			if _, err := a.WriteAt(buf, 0); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(mems[2].Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := a.FailDisk(2); err != nil {
					b.Fatal(err)
				}
				mems[2].Replace()
				b.StartTimer()
				if err := a.Rebuild(2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCauchyRSScheduled measures the XOR-schedule optimization
// (difference-based packet reuse) against the plain bit-matrix encode.
func BenchmarkCauchyRSScheduled(b *testing.B) {
	enc, err := crs.NewRAID6(11)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, 13)
	for i := range shards {
		shards[i] = make([]byte, kernelElem)
		for j := range shards[i] {
			shards[i][j] = byte(i + j)
		}
	}
	b.SetBytes(int64(11 * kernelElem))
	b.ReportMetric(float64(enc.ScheduledXORs())/float64(enc.XORsPerStripe()), "xor-ratio")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.EncodeScheduled(shards); err != nil {
			b.Fatal(err)
		}
	}
}
