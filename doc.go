// Package dcode is a pure-Go, stdlib-only implementation of D-Code — the
// RAID-6 MDS array code of Fu & Shu, "D-Code: An Efficient RAID-6 Code to
// Optimize I/O Loads and Read Performance" (IPDPS 2015) — together with the
// full set of RAID-6 codes the paper compares against (RDP, X-Code, H-Code,
// HDP, EVENODD and Reed-Solomon), a software RAID-6 array engine that runs
// on any of them, and the simulation harnesses that regenerate every figure
// of the paper's evaluation.
//
// # Quick start
//
//	code, err := dcode.New(7)               // D-Code over 7 disks
//	s := code.NewStripe(4096)               // 7×7 stripe of 4 KiB elements
//	// ... fill the data rows (rows 0..4) ...
//	code.Encode(s)                          // compute both parity rows
//	err = code.Reconstruct(s, 2, 3)         // repair any two lost disks
//
// For a byte-addressed volume with failure handling, rebuild and scrubbing,
// see NewArray. For the paper's experiments, see the cmd/ tools and the
// benchmarks in bench_test.go; DESIGN.md maps every figure to the module and
// command that regenerates it, and EXPERIMENTS.md records measured results
// against the paper's.
package dcode
