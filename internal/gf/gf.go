// Package gf implements arithmetic over the finite field GF(2^8) with the
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field Jerasure
// and every practical Reed-Solomon RAID-6 implementation use. The XOR array
// codes never need it; it backs the Reed-Solomon comparison baseline.
package gf

// Poly is the primitive polynomial generating the field (0x11D).
const Poly = 0x11D

var (
	expTable [512]byte // doubled so Mul can skip a mod on the exponent sum
	logTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a + b. Addition in GF(2^8) is XOR; subtraction is identical.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a · b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b. It panics on division by zero (a programming error in
// matrix code, never a data-dependent condition).
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])-int(logTable[b])+255]
}

// Inv returns the multiplicative inverse of a; it panics on zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: zero has no inverse")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator (0x02) raised to the n-th power.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// MulSlice computes dst[i] = c · src[i] for every i. dst and src must have
// equal length; dst may alias src.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	logC := int(logTable[c])
	for i, v := range src {
		if v == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[logC+int(logTable[v])]
		}
	}
}

// MulSliceAdd computes dst[i] ^= c · src[i] for every i — the inner loop of
// Reed-Solomon encoding.
func MulSliceAdd(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulSliceAdd length mismatch")
	}
	if c == 0 {
		return
	}
	logC := int(logTable[c])
	for i, v := range src {
		if v != 0 {
			dst[i] ^= expTable[logC+int(logTable[v])]
		}
	}
}
