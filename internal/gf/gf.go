// Package gf implements arithmetic over the finite field GF(2^8) with the
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field Jerasure
// and every practical Reed-Solomon RAID-6 implementation use. The XOR array
// codes never need it; it backs the Reed-Solomon comparison baseline.
package gf

// Poly is the primitive polynomial generating the field (0x11D).
const Poly = 0x11D

var (
	expTable [512]byte // doubled so Mul can skip a mod on the exponent sum
	logTable [256]byte

	// mulLow/mulHigh are 4-bit nibble product tables: mulLow[c][n] = c·n for
	// a low nibble n, mulHigh[c][n] = c·(n<<4). Since GF multiplication
	// distributes over XOR, c·v = mulLow[c][v&0xF] ^ mulHigh[c][v>>4], which
	// turns the slice kernels below into two table lookups and one XOR per
	// byte with no zero-test branches — the klauspost-style layout, 8 KiB
	// total, built once at init.
	mulLow  [256][16]byte
	mulHigh [256][16]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for c := 0; c < 256; c++ {
		for n := 0; n < 16; n++ {
			mulLow[c][n] = Mul(byte(c), byte(n))
			mulHigh[c][n] = Mul(byte(c), byte(n<<4))
		}
	}
}

// Add returns a + b. Addition in GF(2^8) is XOR; subtraction is identical.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a · b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b. It panics on division by zero (a programming error in
// matrix code, never a data-dependent condition).
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])-int(logTable[b])+255]
}

// Inv returns the multiplicative inverse of a; it panics on zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: zero has no inverse")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator (0x02) raised to the n-th power.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// MulSlice computes dst[i] = c · src[i] for every i in one branch-free pass
// over the slice via the nibble product tables. dst and src must have equal
// length; dst may alias src.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	lo, hi := &mulLow[c], &mulHigh[c]
	dst = dst[:len(src)] // bounds-check elimination for dst[i]
	for i, v := range src {
		dst[i] = lo[v&0x0F] ^ hi[v>>4]
	}
}

// MulSliceAdd computes dst[i] ^= c · src[i] for every i — the inner loop of
// Reed-Solomon encoding — in one branch-free pass via the nibble tables.
func MulSliceAdd(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulSliceAdd length mismatch")
	}
	if c == 0 {
		return
	}
	lo, hi := &mulLow[c], &mulHigh[c]
	dst = dst[:len(src)] // bounds-check elimination for dst[i]
	for i, v := range src {
		dst[i] ^= lo[v&0x0F] ^ hi[v>>4]
	}
}

// mulSliceLogExp and mulSliceAddLogExp are the original per-byte log/exp
// implementations, kept as the oracle the tests compare the nibble-table
// kernels against.
func mulSliceLogExp(c byte, dst, src []byte) {
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	logC := int(logTable[c])
	for i, v := range src {
		if v == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[logC+int(logTable[v])]
		}
	}
}

func mulSliceAddLogExp(c byte, dst, src []byte) {
	if c == 0 {
		return
	}
	logC := int(logTable[c])
	for i, v := range src {
		if v != 0 {
			dst[i] ^= expTable[logC+int(logTable[v])]
		}
	}
}
