package gf

import "fmt"

// Matrix is a dense matrix over GF(2^8), the linear-algebra substrate for
// the Reed-Solomon family (Vandermonde and Cauchy constructions).
type Matrix struct {
	rows, cols int
	data       []byte
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf: invalid matrix dims %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde builds the rows×cols matrix with entry (r, c) = g^(r·c);
// every square submatrix formed from distinct rows is invertible.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Exp(r*c))
		}
	}
	return m
}

// Cauchy builds the rows×cols matrix with entry (r, c) = 1/(x_r ⊕ y_c) for
// x_r = r and y_c = rows+c; with all x and y distinct, every square
// submatrix is invertible — the generator Cauchy Reed-Solomon uses.
// rows+cols must not exceed 256.
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > 256 {
		panic(fmt.Sprintf("gf: Cauchy %d+%d exceeds field size", rows, cols))
	}
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Inv(byte(r)^byte(rows+c)))
		}
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns entry (r, c).
func (m *Matrix) At(r, c int) byte { return m.data[r*m.cols+c] }

// Set stores v at entry (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// Row returns row r aliasing the matrix storage.
func (m *Matrix) Row(r int) []byte { return m.data[r*m.cols : (r+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Mul returns m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("gf: matrix dims %dx%d · %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := NewMatrix(m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			for c := 0; c < o.cols; c++ {
				out.data[r*o.cols+c] ^= Mul(a, o.At(k, c))
			}
		}
	}
	return out
}

// SubMatrix returns rows [r0,r1) × cols [c0,c1) as a copy.
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			out.Set(r-r0, c-c0, m.At(r, c))
		}
	}
	return out
}

// Invert returns m⁻¹ by Gauss-Jordan elimination, or an error if m is
// singular or not square.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("gf: cannot invert %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	work := m.Clone()
	out := Identity(n)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("gf: singular matrix")
		}
		if pivot != col {
			swapRows(work.Row(pivot), work.Row(col))
			swapRows(out.Row(pivot), out.Row(col))
		}
		if d := work.At(col, col); d != 1 {
			inv := Inv(d)
			MulSlice(inv, work.Row(col), work.Row(col))
			MulSlice(inv, out.Row(col), out.Row(col))
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.At(r, col); f != 0 {
				MulSliceAdd(f, work.Row(r), work.Row(col))
				MulSliceAdd(f, out.Row(r), out.Row(col))
			}
		}
	}
	return out, nil
}

func swapRows(a, b []byte) {
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
}
