package gf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTablesConsistent(t *testing.T) {
	// exp(log(x)) == x for all non-zero x, and log(exp(i)) == i mod 255.
	for x := 1; x < 256; x++ {
		if expTable[logTable[x]] != byte(x) {
			t.Fatalf("exp(log(%d)) = %d", x, expTable[logTable[x]])
		}
	}
	for i := 0; i < 255; i++ {
		if logTable[expTable[i]] != byte(i) {
			t.Fatalf("log(exp(%d)) = %d", i, logTable[expTable[i]])
		}
	}
}

func TestMulBySchoolbook(t *testing.T) {
	// Carry-less "Russian peasant" multiplication as the oracle.
	oracle := func(a, b byte) byte {
		var prod int
		x, y := int(a), int(b)
		for y > 0 {
			if y&1 == 1 {
				prod ^= x
			}
			x <<= 1
			if x&0x100 != 0 {
				x ^= Poly
			}
			y >>= 1
		}
		return byte(prod)
	}
	f := func(a, b byte) bool { return Mul(a, b) == oracle(a, b) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldAxioms(t *testing.T) {
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	dist := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	ident := func(a byte) bool { return Mul(a, 1) == a && Add(a, 0) == a }
	for name, f := range map[string]interface{}{
		"associativity":  assoc,
		"commutativity":  comm,
		"distributivity": dist,
		"identity":       ident,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestInvAndDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for a=%d", a)
		}
	}
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	if Div(0, 5) != 0 {
		t.Fatal("0/x != 0")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestExp(t *testing.T) {
	if Exp(0) != 1 || Exp(1) != 2 {
		t.Fatalf("Exp(0)=%d Exp(1)=%d", Exp(0), Exp(1))
	}
	if Exp(255) != 1 {
		t.Fatal("generator order is not 255")
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("negative exponent not wrapped")
	}
	// The generator's powers must enumerate all 255 non-zero elements.
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator enumerates %d elements, want 255", len(seen))
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 100, 200, 255}
	dst := make([]byte, len(src))
	MulSlice(7, dst, src)
	for i, v := range src {
		if dst[i] != Mul(7, v) {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
	MulSlice(0, dst, src)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatal("MulSlice by 0 not zeroing")
		}
	}
	// Aliasing: dst == src.
	buf := append([]byte(nil), src...)
	MulSlice(9, buf, buf)
	for i, v := range src {
		if buf[i] != Mul(9, v) {
			t.Fatal("aliased MulSlice wrong")
		}
	}
}

func TestMulSliceAdd(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := []byte{10, 20, 30, 40, 50}
	want := make([]byte, len(dst))
	for i := range want {
		want[i] = dst[i] ^ Mul(5, src[i])
	}
	MulSliceAdd(5, dst, src)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("MulSliceAdd mismatch at %d", i)
		}
	}
	before := append([]byte(nil), dst...)
	MulSliceAdd(0, dst, src)
	for i := range dst {
		if dst[i] != before[i] {
			t.Fatal("MulSliceAdd by 0 modified dst")
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MulSlice(1, make([]byte, 2), make([]byte, 3)) },
		func() { MulSliceAdd(1, make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("length mismatch did not panic")
				}
			}()
			f()
		}()
	}
}

// TestNibbleTablesMatchLogExpOracle pins the nibble-table slice kernels to
// the original per-byte log/exp implementations for every multiplier over a
// buffer covering all byte values (and awkward non-multiple-of-16 lengths).
func TestNibbleTablesMatchLogExpOracle(t *testing.T) {
	src := make([]byte, 256+7)
	for i := range src {
		src[i] = byte(i * 37)
	}
	for c := 0; c < 256; c++ {
		want := make([]byte, len(src))
		got := make([]byte, len(src))
		mulSliceLogExp(byte(c), want, src)
		MulSlice(byte(c), got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulSlice(%d) diverges from log/exp oracle", c)
		}
		for i := range want {
			want[i] = byte(i * 11)
			got[i] = byte(i * 11)
		}
		mulSliceAddLogExp(byte(c), want, src)
		MulSliceAdd(byte(c), got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulSliceAdd(%d) diverges from log/exp oracle", c)
		}
	}
}

func TestMulSliceAliasing(t *testing.T) {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i + 1)
	}
	want := make([]byte, len(buf))
	MulSlice(29, want, buf)
	MulSlice(29, buf, buf) // dst aliases src
	if !bytes.Equal(buf, want) {
		t.Fatal("aliased MulSlice differs from non-aliased")
	}
}

func benchSlices(n int) (dst, src []byte) {
	dst = make([]byte, n)
	src = make([]byte, n)
	for i := range src {
		src[i] = byte(i*131 + 17)
	}
	return dst, src
}

func BenchmarkMulSlice(b *testing.B) {
	dst, src := benchSlices(4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSlice(0x8E, dst, src)
	}
}

func BenchmarkMulSliceLogExp(b *testing.B) {
	dst, src := benchSlices(4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulSliceLogExp(0x8E, dst, src)
	}
}

func BenchmarkMulSliceAdd(b *testing.B) {
	dst, src := benchSlices(4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSliceAdd(0x8E, dst, src)
	}
}

func BenchmarkMulSliceAddLogExp(b *testing.B) {
	dst, src := benchSlices(4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulSliceAddLogExp(0x8E, dst, src)
	}
}

// benchSlicesSparse mixes zero bytes into the source — the shape of real
// volume data (sparse files, zero-filled regions) — where the log/exp
// kernel's per-byte zero test mispredicts and the branch-free nibble kernel
// shines. The zeros are placed by a seeded PRNG: any fixed arithmetic
// pattern is eventually learned by the branch predictor, hiding the cost.
func benchSlicesSparse(n int) (dst, src []byte) {
	rng := rand.New(rand.NewSource(1))
	dst = make([]byte, n)
	src = make([]byte, n)
	for i := range src {
		if rng.Float64() < 0.3 {
			src[i] = 0
		} else {
			src[i] = byte(1 + rng.Intn(255))
		}
	}
	return dst, src
}

func BenchmarkMulSliceAddSparse(b *testing.B) {
	dst, src := benchSlicesSparse(4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSliceAdd(0x8E, dst, src)
	}
}

func BenchmarkMulSliceAddSparseLogExp(b *testing.B) {
	dst, src := benchSlicesSparse(4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulSliceAddLogExp(0x8E, dst, src)
	}
}
