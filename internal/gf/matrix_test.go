package gf

import (
	"bytes"
	"testing"
)

func TestIdentityAndAccessors(t *testing.T) {
	m := Identity(3)
	if m.Rows() != 3 || m.Cols() != 3 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if m.At(r, c) != want {
				t.Fatalf("identity At(%d,%d) = %d", r, c, m.At(r, c))
			}
		}
	}
	m.Set(1, 2, 9)
	if m.At(1, 2) != 9 || m.Row(1)[2] != 9 {
		t.Fatal("Set/Row broken")
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0,1) did not panic")
		}
	}()
	NewMatrix(0, 1)
}

func TestCloneIsDeep(t *testing.T) {
	m := Vandermonde(3, 3)
	c := m.Clone()
	c.Set(0, 0, 0xFF)
	if m.At(0, 0) == 0xFF {
		t.Fatal("Clone shares storage")
	}
}

func TestMulIdentity(t *testing.T) {
	m := Vandermonde(4, 4)
	prod := m.Mul(Identity(4))
	if !bytes.Equal(prod.data, m.data) {
		t.Fatal("m · I != m")
	}
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Mul did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestInvertRoundTrip(t *testing.T) {
	for _, m := range []*Matrix{Vandermonde(5, 5), Cauchy(4, 4), Cauchy(7, 7)} {
		inv, err := m.Invert()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m.Mul(inv).data, Identity(m.Rows()).data) {
			t.Fatal("m · m⁻¹ != I")
		}
	}
}

func TestInvertSingularAndNonSquare(t *testing.T) {
	if _, err := NewMatrix(3, 3).Invert(); err == nil {
		t.Fatal("all-zero matrix inverted")
	}
	if _, err := NewMatrix(2, 3).Invert(); err == nil {
		t.Fatal("non-square matrix inverted")
	}
}

func TestCauchyEverySquareSubmatrixInvertible(t *testing.T) {
	// The MDS property of Cauchy coding: pick the 2×2 submatrix at any row
	// and column pair of a 2×6 Cauchy matrix — all must invert.
	m := Cauchy(2, 6)
	for c1 := 0; c1 < 6; c1++ {
		for c2 := c1 + 1; c2 < 6; c2++ {
			sub := NewMatrix(2, 2)
			for r := 0; r < 2; r++ {
				sub.Set(r, 0, m.At(r, c1))
				sub.Set(r, 1, m.At(r, c2))
			}
			if _, err := sub.Invert(); err != nil {
				t.Fatalf("Cauchy 2×2 submatrix (cols %d,%d) singular", c1, c2)
			}
		}
	}
}

func TestCauchyPanicsBeyondField(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Cauchy did not panic")
		}
	}()
	Cauchy(200, 100)
}

func TestSubMatrix(t *testing.T) {
	m := Vandermonde(4, 4)
	s := m.SubMatrix(1, 3, 2, 4)
	if s.Rows() != 2 || s.Cols() != 2 {
		t.Fatalf("submatrix dims %dx%d", s.Rows(), s.Cols())
	}
	if s.At(0, 0) != m.At(1, 2) || s.At(1, 1) != m.At(2, 3) {
		t.Fatal("submatrix entries wrong")
	}
}
