package blockdev

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dcode/internal/blockserve"
)

// serveMem runs a block server over mem on loopback for the test's lifetime.
func serveMem(t *testing.T, mem *MemDevice) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := blockserve.New(mem, blockserve.Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return ln.Addr().String()
}

func dialFast(t *testing.T, addr string) *Remote {
	t.Helper()
	r, err := DialRemote(addr,
		WithRetry(3, time.Millisecond),
		WithRequestTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func TestRemoteRetryRecoversFromTransientFault(t *testing.T) {
	mem := NewMem(8192)
	r := dialFast(t, serveMem(t, mem))
	r.SetInjector(func(op uint8, attempt int) error {
		if attempt == 0 {
			return errors.New("injected: connection reset")
		}
		return nil
	})
	buf := make([]byte, 512)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt should survive a single-attempt fault: %v", err)
	}
	if got := r.Retries(); got != 1 {
		t.Fatalf("Retries() = %d, want 1", got)
	}
}

func TestRemoteRetryExhaustionIsErrFailed(t *testing.T) {
	mem := NewMem(8192)
	r := dialFast(t, serveMem(t, mem))
	r.SetInjector(func(op uint8, attempt int) error {
		return errors.New("injected: dead remote")
	})
	_, err := r.ReadAt(make([]byte, 512), 0)
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("exhausted retries must surface as ErrFailed, got %v", err)
	}
	if got := r.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2 (3 attempts)", got)
	}
}

func TestRemoteMapsServerSentinels(t *testing.T) {
	mem := NewMem(8192)
	r := dialFast(t, serveMem(t, mem))

	mem.InjectBadSector(100)
	_, err := r.ReadAt(make([]byte, 512), 0)
	if !errors.Is(err, ErrBadSector) {
		t.Fatalf("bad sector must map through the wire, got %v", err)
	}

	mem.Fail()
	before := r.Retries()
	_, err = r.ReadAt(make([]byte, 512), 0)
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("failed device must map through the wire, got %v", err)
	}
	// The server answered authoritatively: a protocol error must not consume
	// the retry budget.
	if got := r.Retries(); got != before {
		t.Fatalf("protocol error consumed %d retries", got-before)
	}
}

func TestRemoteRangeErrorIsNotASentinel(t *testing.T) {
	mem := NewMem(4096)
	r := dialFast(t, serveMem(t, mem))
	_, err := r.ReadAt(make([]byte, 512), 4096-8)
	if err == nil {
		t.Fatal("out-of-range read must fail")
	}
	if errors.Is(err, ErrFailed) || errors.Is(err, ErrBadSector) {
		t.Fatalf("range error must stay a plain error, got %v", err)
	}
}

// TestInstrumentedRemoteHookFiresOncePerOp pins the accounting contract
// between the retry loop and the instrumentation layer: the Remote retries
// internally, so Instrumented — the raid layer's per-column tally — must see
// exactly one completed operation per logical op, whether the op needed
// retries to succeed or exhausted its budget.
func TestInstrumentedRemoteHookFiresOncePerOp(t *testing.T) {
	mem := NewMem(8192)
	r := dialFast(t, serveMem(t, mem))
	inst := Instrument(r)

	var hookCalls, hookOps atomic.Int64
	inst.SetOpHook(func(write bool, ops, bytes int64) {
		hookCalls.Add(1)
		hookOps.Add(ops)
	})

	// Succeeds on the second attempt: one logical read, one hook firing.
	r.SetInjector(func(op uint8, attempt int) error {
		if attempt == 0 {
			return errors.New("injected: transient")
		}
		return nil
	})
	if _, err := inst.ReadAt(make([]byte, 256), 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if hookCalls.Load() != 1 || hookOps.Load() != 1 {
		t.Fatalf("after retried success: hook fired %d times for %d ops, want 1/1",
			hookCalls.Load(), hookOps.Load())
	}
	m := inst.Metrics()
	if m.Reads.Load() != 1 || m.ReadErrors.Load() != 0 {
		t.Fatalf("after retried success: reads=%d errors=%d, want 1/0",
			m.Reads.Load(), m.ReadErrors.Load())
	}

	// Exhausts the budget: still one logical (failed) read, one hook firing.
	r.SetInjector(func(op uint8, attempt int) error {
		return errors.New("injected: dead remote")
	})
	if _, err := inst.ReadAt(make([]byte, 256), 0); err == nil {
		t.Fatal("ReadAt should fail with the injector pinned on")
	}
	if hookCalls.Load() != 2 || hookOps.Load() != 2 {
		t.Fatalf("after exhausted failure: hook fired %d times for %d ops, want 2/2",
			hookCalls.Load(), hookOps.Load())
	}
	if m.Reads.Load() != 2 || m.ReadErrors.Load() != 1 {
		t.Fatalf("after exhausted failure: reads=%d errors=%d, want 2/1",
			m.Reads.Load(), m.ReadErrors.Load())
	}
}
