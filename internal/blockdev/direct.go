package blockdev

// O_DIRECT support for FileDevice. OpenFileDirect (direct_linux.go) arms a
// second, O_DIRECT descriptor next to the buffered one and probes the
// alignment the filesystem demands at open time. The dispatch rule, applied
// per request:
//
//   - offset and length aligned, caller memory aligned → the O_DIRECT
//     descriptor serves the request in place (no page cache, no copy);
//   - offset and length aligned, caller memory unaligned → the request goes
//     through a pooled align-allocated bounce buffer, still O_DIRECT (one
//     copy — Go heap slices carry no alignment guarantee, so this is the
//     common case for stripe memory);
//   - offset or length unaligned → the buffered descriptor serves it (the
//     kernel page cache handles sub-sector granularity; Linux keeps the two
//     views of one file coherent).
//
// Vectored calls (ReadVecAt/WriteVecAt) always use the buffered descriptor:
// every iovec would need its own alignment, which the raid layer's
// caller-provided buffers cannot promise. The async ring engine registers
// the buffered descriptor for the same reason (see uring_linux.go and the
// fallback matrix in DESIGN.md §6g).

import "unsafe"

// DirectAlign returns the probed O_DIRECT alignment in bytes, 0 when the
// device runs buffered only (OpenFile, unsupported filesystem, or a failed
// probe).
func (d *FileDevice) DirectAlign() int { return d.align }

// alignedRange reports whether a request's offset and length satisfy the
// direct descriptor's alignment.
func (d *FileDevice) alignedRange(n int, off int64) bool {
	a := int64(d.align)
	return n > 0 && int64(n)%a == 0 && off%a == 0
}

// memAligned reports whether the buffer's base address satisfies the
// alignment.
func (d *FileDevice) memAligned(p []byte) bool {
	return uintptr(unsafe.Pointer(&p[0]))%uintptr(d.align) == 0
}

func (d *FileDevice) directRead(p []byte, off int64) (int, error) {
	if d.memAligned(p) {
		return d.direct.ReadAt(p, off)
	}
	b := d.getBounce(len(p))
	n, err := d.direct.ReadAt(b, off)
	copy(p, b[:n])
	d.putBounce(b)
	return n, err
}

func (d *FileDevice) directWrite(p []byte, off int64) (int, error) {
	if d.memAligned(p) {
		return d.direct.WriteAt(p, off)
	}
	b := d.getBounce(len(p))
	copy(b, p)
	n, err := d.direct.WriteAt(b, off)
	d.putBounce(b)
	return n, err
}

// getBounce returns an align-allocated buffer of exactly n bytes (n is
// already a multiple of the alignment — alignedRange gated it).
func (d *FileDevice) getBounce(n int) []byte {
	//lint:escape the bounce buffer is handed to the caller, which returns it via putBounce once the direct I/O completes; a pooled buffer too small for the request is intentionally dropped to the GC rather than re-pooled to keep serving undersized hits
	if v := d.bounce.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= n {
			return b[:n]
		}
	}
	return alignedSlice(n, d.align)
}

func (d *FileDevice) putBounce(b []byte) {
	d.bounce.Put(&b)
}

// alignedSlice allocates an n-byte slice whose base address is a multiple
// of align (a power of two): over-allocate and cut at the boundary.
func alignedSlice(n, align int) []byte {
	raw := make([]byte, n+align)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(&raw[0])) & uintptr(align-1)); rem != 0 {
		off = align - rem
	}
	return raw[off : off+n : off+n]
}
