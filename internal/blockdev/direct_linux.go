//go:build linux

package blockdev

import (
	"os"
	"syscall"
)

// OpenFileDirect opens (creating and truncating to size) a file-backed
// device with an O_DIRECT descriptor armed next to the buffered one, probing
// the required alignment at open. When the filesystem rejects O_DIRECT
// (tmpfs, some overlays) or the probe fails, the device degrades gracefully
// to buffered-only — identical to OpenFile — and DirectAlign reports 0.
func OpenFileDirect(path string, size int64) (*FileDevice, error) {
	d, err := OpenFile(path, size)
	if err != nil {
		return nil, err
	}
	df, err := os.OpenFile(path, os.O_RDWR|syscall.O_DIRECT, 0o644)
	if err != nil {
		return d, nil
	}
	align, ok := probeDirectAlign(df, size)
	if !ok {
		//lint:ignore iocheck probe-failure cleanup of a descriptor nothing was written through; the buffered descriptor stays the device's only handle and its Close error is surfaced normally
		_ = df.Close()
		return d, nil
	}
	d.direct, d.align = df, align
	return d, nil
}

// probeDirectAlign finds the smallest alignment the descriptor accepts by
// attempting an aligned read at each candidate; EINVAL means the sector
// (or memory) granularity is larger. 512 covers classic disks, 4096 the
// 4Kn/logical-block-size-4096 world.
func probeDirectAlign(f *os.File, size int64) (int, bool) {
	for _, a := range []int{512, 4096} {
		if int64(a) > size {
			break
		}
		buf := alignedSlice(a, a)
		if _, err := f.ReadAt(buf, 0); err == nil {
			return a, true
		}
	}
	return 0, false
}
