// Package blockdev provides the block-device abstraction the RAID engine
// stores columns on: an in-memory device with fault injection for tests and
// simulations, and a file-backed device for real use.
package blockdev

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// ErrFailed is returned by a device that has been failed (by fault injection
// or a detected error); the RAID layer treats it as a dead disk.
var ErrFailed = errors.New("blockdev: device failed")

// ErrBadSector is returned when a read touches an injected bad sector.
var ErrBadSector = errors.New("blockdev: unreadable sector")

// Device is a fixed-size random-access block device.
type Device interface {
	// ReadAt fills p from the device starting at off.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt stores p to the device starting at off.
	WriteAt(p []byte, off int64) (int, error)
	// ReadVecAt fills each buffer of bufs, in order, from the contiguous
	// device range starting at off — a scatter read: bufs[0] from off,
	// bufs[1] from off+len(bufs[0]), and so on. It returns the total bytes
	// read. Devices with native vectored support issue one physical access
	// for the whole list; others fall back to one ReadAt per buffer.
	ReadVecAt(bufs [][]byte, off int64) (int, error)
	// WriteVecAt stores each buffer of bufs, in order, to the contiguous
	// device range starting at off — a gather write — returning the total
	// bytes written.
	WriteVecAt(bufs [][]byte, off int64) (int, error)
	// Size returns the device capacity in bytes.
	Size() int64
	// Close releases the device.
	Close() error
}

// Stats counts device accesses; useful to check I/O claims experimentally.
type Stats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
}

// MemDevice is an in-memory Device with fault injection. It is safe for
// concurrent use.
type MemDevice struct {
	mu         sync.Mutex
	buf        []byte
	failed     bool
	bad        map[int64]bool // offsets (byte granularity ranges rounded by caller) marked unreadable
	writeLimit int64          // -1: unlimited; otherwise remaining persisted writes
	stats      Stats
}

// NewMem allocates a zeroed in-memory device of the given size.
func NewMem(size int64) *MemDevice {
	if size < 0 {
		panic(fmt.Sprintf("blockdev: negative size %d", size))
	}
	return &MemDevice{buf: make([]byte, size), bad: make(map[int64]bool), writeLimit: -1}
}

// SetWriteLimit models a power loss with a volatile write cache: the next n
// WriteAt calls persist normally, and every call after that reports success
// without persisting anything. Pass a negative n to lift the limit.
func (d *MemDevice) SetWriteLimit(n int64) {
	d.mu.Lock()
	d.writeLimit = n
	d.mu.Unlock()
}

func (d *MemDevice) checkRange(n int, off int64) error {
	if off < 0 || off+int64(n) > int64(len(d.buf)) {
		return fmt.Errorf("blockdev: range [%d,%d) outside device of %d bytes", off, off+int64(n), len(d.buf))
	}
	return nil
}

// badInRange reports whether any injected bad sector falls in [off, off+n).
func (d *MemDevice) badInRange(n int, off int64) bool {
	for b := range d.bad {
		if b >= off && b < off+int64(n) {
			return true
		}
	}
	return false
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return 0, ErrFailed
	}
	if err := d.checkRange(len(p), off); err != nil {
		return 0, err
	}
	if d.badInRange(len(p), off) {
		return 0, ErrBadSector
	}
	copy(p, d.buf[off:])
	d.stats.Reads++
	d.stats.BytesRead += int64(len(p))
	return len(p), nil
}

// ReadVecAt implements Device natively: one physical access (one Stats read)
// scattering the contiguous range at off into bufs, with the same failure and
// bad-sector semantics as a single ReadAt of the whole range.
func (d *MemDevice) ReadVecAt(bufs [][]byte, off int64) (int, error) {
	total := VecLen(bufs)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return 0, ErrFailed
	}
	if err := d.checkRange(total, off); err != nil {
		return 0, err
	}
	if d.badInRange(total, off) {
		return 0, ErrBadSector
	}
	n := 0
	for _, b := range bufs {
		n += copy(b, d.buf[off+int64(n):])
	}
	d.stats.Reads++
	d.stats.BytesRead += int64(total)
	return total, nil
}

// WriteAt implements Device. Writing over a bad sector heals it, as
// rewriting a real sector remaps it.
func (d *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return 0, ErrFailed
	}
	if err := d.checkRange(len(p), off); err != nil {
		return 0, err
	}
	if d.writeLimit == 0 {
		// Lost in the volatile cache: report success, persist nothing.
		d.stats.Writes++
		d.stats.BytesWritten += int64(len(p))
		return len(p), nil
	}
	if d.writeLimit > 0 {
		d.writeLimit--
	}
	copy(d.buf[off:], p)
	d.healRange(len(p), off)
	d.stats.Writes++
	d.stats.BytesWritten += int64(len(p))
	return len(p), nil
}

// healRange heals bad sectors overwritten by [off, off+n).
func (d *MemDevice) healRange(n int, off int64) {
	for b := range d.bad {
		if b >= off && b < off+int64(n) {
			delete(d.bad, b)
		}
	}
}

// WriteVecAt implements Device natively: one physical access (one Stats
// write, one write-limit charge) gathering bufs into the contiguous range at
// off, with the same failure, volatile-cache, and sector-healing semantics as
// a single WriteAt of the whole range.
func (d *MemDevice) WriteVecAt(bufs [][]byte, off int64) (int, error) {
	total := VecLen(bufs)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return 0, ErrFailed
	}
	if err := d.checkRange(total, off); err != nil {
		return 0, err
	}
	if d.writeLimit == 0 {
		d.stats.Writes++
		d.stats.BytesWritten += int64(total)
		return total, nil
	}
	if d.writeLimit > 0 {
		d.writeLimit--
	}
	n := 0
	for _, b := range bufs {
		n += copy(d.buf[off+int64(n):], b)
	}
	d.healRange(total, off)
	d.stats.Writes++
	d.stats.BytesWritten += int64(total)
	return total, nil
}

// Size implements Device.
func (d *MemDevice) Size() int64 { return int64(len(d.buf)) }

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// Fail makes every subsequent access return ErrFailed.
func (d *MemDevice) Fail() {
	d.mu.Lock()
	d.failed = true
	d.mu.Unlock()
}

// Replace swaps in fresh zeroed media (a replacement disk) and clears the
// failure state; contents are lost.
func (d *MemDevice) Replace() {
	d.mu.Lock()
	d.buf = make([]byte, len(d.buf))
	d.failed = false
	d.bad = make(map[int64]bool)
	d.stats = Stats{}
	d.mu.Unlock()
}

// InjectBadSector marks the byte at off unreadable until it is rewritten.
func (d *MemDevice) InjectBadSector(off int64) {
	d.mu.Lock()
	d.bad[off] = true
	d.mu.Unlock()
}

// Stats returns a snapshot of the access counters.
func (d *MemDevice) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Corrupt flips a byte in place without going through WriteAt, simulating
// silent media corruption for scrub tests.
func (d *MemDevice) Corrupt(off int64) {
	d.mu.Lock()
	if off >= 0 && off < int64(len(d.buf)) {
		d.buf[off] ^= 0xFF
	}
	d.mu.Unlock()
}

// FileDevice is a Device backed by a file. OpenFileDirect additionally arms
// an O_DIRECT descriptor (see direct.go): aligned requests then bypass the
// page cache, everything else falls back to the buffered descriptor.
type FileDevice struct {
	f    *os.File
	size int64

	// Direct-I/O mode (Linux only; zero-valued otherwise): direct is the
	// O_DIRECT descriptor and align the probed offset/length/memory
	// alignment it requires; bounce pools align-allocated staging buffers
	// for callers whose memory is not.
	direct *os.File
	align  int
	bounce sync.Pool
}

// OpenFile creates (truncating to size) or opens a file-backed device.
func OpenFile(path string, size int64) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return &FileDevice{f: f, size: size}, nil
}

// ReadAt implements Device.
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) {
	if d.direct != nil && d.alignedRange(len(p), off) {
		return d.directRead(p, off)
	}
	return d.f.ReadAt(p, off)
}

// WriteAt implements Device.
func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) {
	if d.direct != nil && d.alignedRange(len(p), off) {
		return d.directWrite(p, off)
	}
	return d.f.WriteAt(p, off)
}

// Size implements Device.
func (d *FileDevice) Size() int64 { return d.size }

// Sync flushes the backing file to stable storage; the network block server
// maps the protocol's FLUSH op to it in column mode.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Close implements Device.
func (d *FileDevice) Close() error {
	if d.direct != nil {
		return errors.Join(d.direct.Close(), d.f.Close())
	}
	return d.f.Close()
}

// Delayed wraps a Device with a two-term service-time model per physical
// call: a fixed positioning cost (Delay — seek plus rotational latency) and a
// per-byte transfer cost (PerByte). It makes I/O scheduling measurable on
// fast backends: a MemDevice completes in nanoseconds, so only modeled
// latency exposes what the array's concurrency, coalescing, and vectoring
// actually buy. A coalesced or vectored run reaches the wrapped device as one
// physical call, so it pays the positioning cost once — but, unlike the old
// flat per-call model, it still pays the transfer cost for every byte moved:
// an 8-element run is no longer priced the same as a 1-element read, which
// had overstated coalescing and hidden the cost of moving extra bytes.
//
// MaxInflight adds the third term of a real device: an internal queue depth.
// Up to MaxInflight calls serve their modeled time concurrently — like the
// overlapping command queue of an NCQ disk or NVMe namespace — and calls
// beyond it queue until a slot frees. Zero (or negative) keeps the historic
// unlimited-overlap behavior. The model is what makes asynchronous
// submission measurable in memory: a serial caller can never hold more than
// one slot busy, while a batched submitter fills the queue and pays the
// positioning cost of a whole batch once in wall-clock terms.
type Delayed struct {
	Device
	Delay       time.Duration // per-call positioning cost
	PerByte     time.Duration // per-byte transfer cost
	MaxInflight int           // service slots that may overlap; ≤ 0 is unlimited

	semOnce sync.Once
	sem     chan struct{}
}

func (d *Delayed) sleep(n int) {
	if d.MaxInflight > 0 {
		d.semOnce.Do(func() { d.sem = make(chan struct{}, d.MaxInflight) })
		d.sem <- struct{}{}
		defer func() { <-d.sem }()
	}
	time.Sleep(d.Delay + time.Duration(n)*d.PerByte)
}

// ReadAt implements Device, sleeping one service time first.
func (d *Delayed) ReadAt(p []byte, off int64) (int, error) {
	d.sleep(len(p))
	return d.Device.ReadAt(p, off)
}

// WriteAt implements Device, sleeping one service time first.
func (d *Delayed) WriteAt(p []byte, off int64) (int, error) {
	d.sleep(len(p))
	return d.Device.WriteAt(p, off)
}

// ReadVecAt implements Device: one physical call, one positioning cost,
// transfer cost for the total bytes.
func (d *Delayed) ReadVecAt(bufs [][]byte, off int64) (int, error) {
	d.sleep(VecLen(bufs))
	return d.Device.ReadVecAt(bufs, off)
}

// WriteVecAt implements Device; see ReadVecAt.
func (d *Delayed) WriteVecAt(bufs [][]byte, off int64) (int, error) {
	d.sleep(VecLen(bufs))
	return d.Device.WriteVecAt(bufs, off)
}
