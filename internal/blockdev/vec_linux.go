//go:build linux

package blockdev

import (
	"io"
	"runtime"
	"syscall"
	"unsafe"
)

// iovChunk bounds one syscall's iovec list. It stays far under the kernel's
// UIO_MAXIOV (1024) so the array fits comfortably on the stack; the raid
// layer's vectored calls carry at most one stripe's rows, well below this.
const iovChunk = 64

// ReadVecAt implements Device as a true scatter read: one preadv(2) per call
// (per iovChunk chunk), issued via raw Syscall6 so the repository stays
// dependency-free. The kernel moves the contiguous file range directly into
// the caller's buffers — no staging copy, no per-buffer syscalls. EINTR and
// short reads advance the cursor and retry.
func (d *FileDevice) ReadVecAt(bufs [][]byte, off int64) (int, error) {
	return d.vecIO(bufs, off, syscall.SYS_PREADV)
}

// WriteVecAt implements Device as a true gather write via pwritev(2); see
// ReadVecAt.
func (d *FileDevice) WriteVecAt(bufs [][]byte, off int64) (int, error) {
	return d.vecIO(bufs, off, syscall.SYS_PWRITEV)
}

func (d *FileDevice) vecIO(bufs [][]byte, off int64, trap uintptr) (int, error) {
	fd := d.f.Fd()
	var iovs [iovChunk]syscall.Iovec
	total := 0
	bi, bo := 0, 0 // cursor: the next unmoved byte is bufs[bi][bo:]
	for {
		for bi < len(bufs) && bo >= len(bufs[bi]) {
			bi, bo = bi+1, 0
		}
		if bi >= len(bufs) {
			return total, nil
		}
		nv := 0
		for j, jo := bi, bo; j < len(bufs) && nv < iovChunk; j, jo = j+1, 0 {
			b := bufs[j][jo:]
			if len(b) == 0 {
				continue
			}
			iovs[nv].Base = &b[0]
			iovs[nv].SetLen(len(b))
			nv++
		}
		// pos is split into two registers; on 64-bit the kernel ignores the
		// high word (pos_h << 64 == 0), on 32-bit it recombines them.
		n, _, errno := syscall.Syscall6(trap, fd,
			uintptr(unsafe.Pointer(&iovs[0])), uintptr(nv),
			uintptr(off), uintptr(uint64(off)>>32), 0)
		runtime.KeepAlive(bufs)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return total, errno
		}
		if n == 0 {
			return total, io.ErrUnexpectedEOF
		}
		total += int(n)
		off += int64(n)
		for adv := int(n); adv > 0; {
			rem := len(bufs[bi]) - bo
			if adv < rem {
				bo += adv
				break
			}
			adv -= rem
			bi, bo = bi+1, 0
		}
	}
}
