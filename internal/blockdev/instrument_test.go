package blockdev

import (
	"errors"
	"testing"
)

func TestInstrumentedCountsAndErrors(t *testing.T) {
	mem := NewMem(4096)
	dev := Instrument(mem)

	buf := make([]byte, 512)
	if _, err := dev.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}

	mem.InjectBadSector(100)
	if _, err := dev.ReadAt(buf, 0); !errors.Is(err, ErrBadSector) {
		t.Fatalf("bad sector must pass through the wrapper, got %v", err)
	}

	s := dev.Metrics().Snapshot()
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("ops: %+v", s)
	}
	if s.ReadErrors != 1 || s.WriteErrors != 0 {
		t.Fatalf("errors: %+v", s)
	}
	if s.BytesRead != 512 || s.BytesWritten != 512 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.ReadLatency.Count != 2 || s.WriteLatency.Count != 1 {
		t.Fatalf("latency counts: read=%d write=%d", s.ReadLatency.Count, s.WriteLatency.Count)
	}

	mem.Fail()
	if _, err := dev.WriteAt(buf, 0); !errors.Is(err, ErrFailed) {
		t.Fatalf("failed device must pass through the wrapper, got %v", err)
	}
	if s := dev.Metrics().Snapshot(); s.WriteErrors != 1 {
		t.Fatalf("write error not counted: %+v", s)
	}

	if dev.Size() != 4096 {
		t.Fatalf("size = %d", dev.Size())
	}
	if dev.Underlying() != Device(mem) {
		t.Fatal("underlying device lost")
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInstrumentedNOps checks the coalesced-I/O accounting contract: one
// physical ReadAtN/WriteAtN call tallies the element operations it replaces,
// observes latency once, and on error counts a single op plus one error —
// matching the element-wise path, where the first failing element stops the
// loop.
func TestInstrumentedNOps(t *testing.T) {
	mem := NewMem(4096)
	dev := Instrument(mem)

	buf := make([]byte, 512)
	if _, err := dev.WriteAtN(buf, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadAtN(buf, 0, 4); err != nil {
		t.Fatal(err)
	}
	s := dev.Metrics().Snapshot()
	if s.Reads != 4 || s.Writes != 4 {
		t.Fatalf("ops-equivalent tallies: %+v", s)
	}
	if s.BytesRead != 512 || s.BytesWritten != 512 {
		t.Fatalf("bytes tally actual transfer: %+v", s)
	}
	if s.ReadLatency.Count != 1 || s.WriteLatency.Count != 1 {
		t.Fatalf("latency observed per physical call: read=%d write=%d",
			s.ReadLatency.Count, s.WriteLatency.Count)
	}

	mem.Fail()
	if _, err := dev.ReadAtN(buf, 0, 4); !errors.Is(err, ErrFailed) {
		t.Fatalf("got %v", err)
	}
	s = dev.Metrics().Snapshot()
	if s.Reads != 5 || s.ReadErrors != 1 {
		t.Fatalf("failed call must count one op and one error: %+v", s)
	}
}

// TestInstrumentedOpHook checks the hook contract the raid layer's load
// window depends on: every completed device call fires it with the right
// direction, the coalesced element-op count, and the bytes that moved;
// failed calls fire as one op so live tallies match the error accounting.
func TestInstrumentedOpHook(t *testing.T) {
	type call struct {
		write bool
		ops   int64
		bytes int64
	}
	mem := NewMem(4096)
	dev := Instrument(mem)
	var calls []call
	dev.SetOpHook(func(write bool, ops, bytes int64) {
		calls = append(calls, call{write, ops, bytes})
	})

	buf := make([]byte, 256)
	if _, err := dev.WriteAtN(buf, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	mem.Fail()
	if _, err := dev.ReadAtN(buf, 0, 9); !errors.Is(err, ErrFailed) {
		t.Fatalf("got %v", err)
	}

	want := []call{
		{write: true, ops: 4, bytes: 256},
		{write: false, ops: 1, bytes: 256},
		{write: false, ops: 1, bytes: 0}, // failure collapses to one op
	}
	if len(calls) != len(want) {
		t.Fatalf("hook fired %d times, want %d: %+v", len(calls), len(want), calls)
	}
	for i, w := range want {
		if calls[i] != w {
			t.Errorf("call %d = %+v, want %+v", i, calls[i], w)
		}
	}

	dev.SetOpHook(nil) // clearing must not panic the hot path
	if _, err := dev.WriteAt(buf, 0); !errors.Is(err, ErrFailed) {
		t.Fatalf("got %v", err)
	}
	if len(calls) != len(want) {
		t.Error("cleared hook still fired")
	}
}
