package blockdev

// Asynchronous device submission. An AsyncQueue batches vectored reads and
// writes against a fixed set of target devices and completes them out of
// band: callers submit operations (getting a Completion handle back), kick
// the queue once per logical batch, and wait on the handles. Two engines
// implement the interface:
//
//   - uring_linux.go: a raw, cgo-free io_uring ring — registered files, many
//     coalesced runs submitted with one io_uring_enter, a completion-harvest
//     goroutine dispatching results. Chosen when every target is (an
//     Instrumented wrapper over) a FileDevice and the kernel supports
//     io_uring.
//   - the goroutine-pool engine below (uring_portable semantics): depth
//     workers executing the same vectored calls the synchronous path would
//     issue. Chosen everywhere else — non-Linux builds, kernels without
//     io_uring, and in-memory or modeled (Delayed, Remote) devices, whose
//     behavior lives in Go code a kernel ring cannot execute.
//
// Both engines preserve the synchronous path's per-device accounting: a
// target that is an *Instrumented tallies each completed operation with the
// same ops-equivalent counts, bytes, error and latency accounting as
// ReadVecAtN/WriteVecAtN (the pool engine simply calls them; the ring
// accounts completions through AccountRead/AccountWrite).
//
// Buffer ownership: from Submit until the Completion is waited on, the
// engine owns the submitted buffers — the kernel (or a worker goroutine) may
// still be writing into them. Callers must not recycle, pool, or reuse a
// submitted buffer before Wait returns; the raid scheduler therefore always
// harvests every completion of a batch before its pooled scratch is
// released, even when an early completion already failed.

import (
	"sync"
	"time"

	"dcode/internal/obs"
)

// AsyncQueue is the device-submission engine interface. Implementations are
// safe for concurrent submission from multiple goroutines.
type AsyncQueue interface {
	// SubmitReadVec stages one vectored scatter read of target device t
	// (an index into the queue's device set) at offset off. ops is the
	// ops-equivalent element count for Instrumented accounting, exactly as
	// in ReadVecAtN. The operation is not guaranteed to start until Kick
	// (an engine may start it earlier); the returned handle's Wait blocks
	// until it completes.
	SubmitReadVec(t int, bufs [][]byte, off int64, ops int64) *Completion
	// SubmitWriteVec is SubmitReadVec for a vectored gather write.
	SubmitWriteVec(t int, bufs [][]byte, off int64, ops int64) *Completion
	// Kick flushes everything staged to the devices as one batch.
	Kick()
	// Depth is the configured queue depth (maximum useful overlap).
	Depth() int
	// Engine identifies the backend: "uring" or "pool".
	Engine() string
	// Metrics exposes the engine counters.
	Metrics() *obs.AsyncMetrics
	// Close flushes staged work, waits for in-flight operations, and
	// releases engine resources. No Submit or Kick may follow it.
	Close() error
}

// Completion is the handle of one submitted operation.
type Completion struct {
	write bool
	t     int
	bufs  [][]byte
	off   int64
	ops   int64
	start time.Time // submit time; OpLatency spans submit→completion

	n    int
	err  error
	done chan struct{}
}

// Wait blocks until the operation completes and returns its byte count and
// error, with the usual device-error semantics (ErrFailed, ErrBadSector
// pass through unwrapped).
func (c *Completion) Wait() (int, error) {
	<-c.done
	return c.n, c.err
}

// NewAsyncQueue builds the best engine available for the target devices:
// the io_uring ring when every device is file-backed and the kernel
// supports it, the goroutine-pool engine otherwise. depth is the queue
// depth (≤ 0 selects DefaultAsyncDepth).
func NewAsyncQueue(devs []Device, depth int) AsyncQueue {
	if depth <= 0 {
		depth = DefaultAsyncDepth
	}
	if q, err := newURingQueue(devs, depth); err == nil {
		return q
	}
	return NewAsyncPool(devs, depth)
}

// DefaultAsyncDepth is the queue depth used when none is configured.
const DefaultAsyncDepth = 32

// vecNDevice is the ops-equivalent vectored surface of Instrumented; the
// pool engine uses it so completed operations tally exactly like the
// synchronous path.
type vecNDevice interface {
	ReadVecAtN(bufs [][]byte, off int64, ops int64) (int, error)
	WriteVecAtN(bufs [][]byte, off int64, ops int64) (int, error)
}

// poolQueue is the portable engine: staged submissions flow through a
// buffered channel to depth worker goroutines, each executing the same
// vectored call the synchronous path would have made. Semantically identical
// to the ring by construction — the device methods themselves do the work
// and the accounting.
type poolQueue struct {
	devs  []Device
	depth int
	m     obs.AsyncMetrics

	mu     sync.Mutex
	staged []*Completion

	ch chan *Completion
	wg sync.WaitGroup
}

// NewAsyncPool builds the goroutine-pool engine directly; NewAsyncQueue
// prefers the ring when available, tests use this to pin pool behavior.
func NewAsyncPool(devs []Device, depth int) AsyncQueue {
	if depth <= 0 {
		depth = DefaultAsyncDepth
	}
	q := &poolQueue{
		devs:  devs,
		depth: depth,
		ch:    make(chan *Completion, depth),
	}
	for i := 0; i < depth; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func (q *poolQueue) Depth() int                 { return q.depth }
func (q *poolQueue) Engine() string             { return "pool" }
func (q *poolQueue) Metrics() *obs.AsyncMetrics { return &q.m }

// SubmitReadVec implements AsyncQueue.
func (q *poolQueue) SubmitReadVec(t int, bufs [][]byte, off int64, ops int64) *Completion {
	return q.submit(false, t, bufs, off, ops)
}

// SubmitWriteVec implements AsyncQueue.
func (q *poolQueue) SubmitWriteVec(t int, bufs [][]byte, off int64, ops int64) *Completion {
	return q.submit(true, t, bufs, off, ops)
}

func (q *poolQueue) submit(write bool, t int, bufs [][]byte, off int64, ops int64) *Completion {
	c := &Completion{
		write: write, t: t, bufs: bufs, off: off, ops: ops,
		start: time.Now(), done: make(chan struct{}),
	}
	q.m.Submitted.Inc()
	q.mu.Lock()
	q.staged = append(q.staged, c)
	full := len(q.staged) >= q.depth
	q.mu.Unlock()
	if full {
		// The staging queue reached the configured depth: auto-flush, the
		// pool analog of the ring submitting when its SQ fills.
		q.Kick()
	}
	return c
}

// Kick implements AsyncQueue: the staged batch is handed to the workers.
// Dispatch happens outside the staging lock so a full worker channel stalls
// only the kicker, never concurrent submitters.
func (q *poolQueue) Kick() {
	q.mu.Lock()
	batch := q.staged
	q.staged = nil
	q.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	q.m.RecordBatch(len(batch))
	for _, c := range batch {
		select {
		case q.ch <- c:
		default:
			q.m.SQFullStalls.Inc()
			q.ch <- c
		}
	}
}

func (q *poolQueue) worker() {
	defer q.wg.Done()
	for c := range q.ch {
		var n int
		var err error
		dev := q.devs[c.t]
		if v, ok := dev.(vecNDevice); ok {
			if c.write {
				n, err = v.WriteVecAtN(c.bufs, c.off, c.ops)
			} else {
				n, err = v.ReadVecAtN(c.bufs, c.off, c.ops)
			}
		} else if c.write {
			n, err = dev.WriteVecAt(c.bufs, c.off)
		} else {
			n, err = dev.ReadVecAt(c.bufs, c.off)
		}
		q.finish(c, n, err)
	}
}

func (q *poolQueue) finish(c *Completion, n int, err error) {
	c.n, c.err = n, err
	q.m.Completed.Inc()
	q.m.OpLatency.Observe(time.Since(c.start))
	close(c.done)
}

// Close implements AsyncQueue.
func (q *poolQueue) Close() error {
	q.Kick()
	close(q.ch)
	q.wg.Wait()
	return nil
}
