package blockdev

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestMemReadWriteRoundTrip(t *testing.T) {
	d := NewMem(64)
	if d.Size() != 64 {
		t.Fatalf("size = %d", d.Size())
	}
	data := []byte("hello block device")
	if n, err := d.WriteAt(data, 8); err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := d.ReadAt(got, 8); err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemRangeChecks(t *testing.T) {
	d := NewMem(16)
	if _, err := d.ReadAt(make([]byte, 8), 10); err == nil {
		t.Fatal("overlong read accepted")
	}
	if _, err := d.WriteAt(make([]byte, 8), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestMemNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMem(-1) did not panic")
		}
	}()
	NewMem(-1)
}

func TestMemFailAndReplace(t *testing.T) {
	d := NewMem(16)
	d.WriteAt([]byte{1, 2, 3}, 0)
	d.Fail()
	if _, err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrFailed) {
		t.Fatalf("read after Fail: %v", err)
	}
	if _, err := d.WriteAt([]byte{1}, 0); !errors.Is(err, ErrFailed) {
		t.Fatalf("write after Fail: %v", err)
	}
	d.Replace()
	got := make([]byte, 3)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 0, 0}) {
		t.Fatal("Replace did not blank the media")
	}
}

func TestMemBadSector(t *testing.T) {
	d := NewMem(32)
	d.InjectBadSector(5)
	if _, err := d.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrBadSector) {
		t.Fatal("bad sector not reported")
	}
	// A read that avoids the sector succeeds.
	if _, err := d.ReadAt(make([]byte, 4), 8); err != nil {
		t.Fatal(err)
	}
	// Rewriting heals it.
	if _, err := d.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("sector still bad after rewrite: %v", err)
	}
}

func TestMemStats(t *testing.T) {
	d := NewMem(32)
	d.WriteAt(make([]byte, 8), 0)
	d.ReadAt(make([]byte, 4), 0)
	d.ReadAt(make([]byte, 4), 4)
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 2 || s.BytesWritten != 8 || s.BytesRead != 8 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMemCorrupt(t *testing.T) {
	d := NewMem(8)
	d.WriteAt([]byte{0xAA}, 3)
	d.Corrupt(3)
	got := make([]byte, 1)
	d.ReadAt(got, 3)
	if got[0] != 0x55 {
		t.Fatalf("corrupt byte = %x, want flipped 0x55", got[0])
	}
	d.Corrupt(100) // out of range: no-op, no panic
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Size() != 1024 {
		t.Fatalf("size = %d", d.Size())
	}
	data := []byte("persisted")
	if _, err := d.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file device round trip mismatch")
	}
}

func TestOpenFileBadPath(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), 16); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestSetWriteLimit(t *testing.T) {
	d := NewMem(16)
	d.SetWriteLimit(1)
	if _, err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	// Second write reports success but must not persist (volatile cache).
	if _, err := d.WriteAt([]byte{2}, 1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	d.ReadAt(got, 0)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("persistence = %v, want [1 0]", got)
	}
	d.SetWriteLimit(-1)
	if _, err := d.WriteAt([]byte{3}, 1); err != nil {
		t.Fatal(err)
	}
	d.ReadAt(got, 0)
	if got[1] != 3 {
		t.Fatal("lifting the limit did not restore persistence")
	}
}

func TestDelayedDelegates(t *testing.T) {
	mem := NewMem(1024)
	dev := &Delayed{Device: mem, Delay: time.Microsecond}
	if _, err := dev.WriteAt([]byte{1, 2, 3}, 5); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	start := time.Now()
	if _, err := dev.ReadAt(buf, 5); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Microsecond {
		t.Fatal("service time not applied")
	}
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("read through wrapper got %v", buf)
	}
	if dev.Size() != 1024 {
		t.Fatalf("Size = %d", dev.Size())
	}
}
