package blockdev

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"
)

// chunkRand cuts p into deterministic pseudo-random pieces, including some
// empty ones, to exercise every scatter/gather shape.
func chunkRand(p []byte, rng *rand.Rand) [][]byte {
	var bufs [][]byte
	for i := 0; i < len(p); {
		n := rng.Intn(17)
		if i+n > len(p) {
			n = len(p) - i
		}
		bufs = append(bufs, p[i:i+n])
		i += n
	}
	bufs = append(bufs, p[len(p):]) // trailing empty buffer
	return bufs
}

func TestMemVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewMem(4096)
	want := make([]byte, 1000)
	rng.Read(want)
	wbufs := chunkRand(bytes.Clone(want), rng)
	if n, err := d.WriteVecAt(wbufs, 100); err != nil || n != len(want) {
		t.Fatalf("WriteVecAt = %d, %v", n, err)
	}
	got := make([]byte, len(want))
	rbufs := chunkRand(got, rng)
	if n, err := d.ReadVecAt(rbufs, 100); err != nil || n != len(want) {
		t.Fatalf("ReadVecAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("vectored round trip corrupted data")
	}
	// Each vec call is one physical access, whatever the buffer count.
	if st := d.Stats(); st.Reads != 1 || st.Writes != 1 ||
		st.BytesRead != int64(len(want)) || st.BytesWritten != int64(len(want)) {
		t.Fatalf("stats = %+v, want 1 read / 1 write of %d bytes", st, len(want))
	}
}

func TestMemVecRangeAndFailure(t *testing.T) {
	d := NewMem(64)
	bufs := [][]byte{make([]byte, 32), make([]byte, 33)}
	if _, err := d.ReadVecAt(bufs, 0); err == nil {
		t.Fatal("out-of-range vectored read succeeded")
	}
	if _, err := d.WriteVecAt(bufs, 0); err == nil {
		t.Fatal("out-of-range vectored write succeeded")
	}
	d.Fail()
	if _, err := d.ReadVecAt([][]byte{make([]byte, 8)}, 0); !errors.Is(err, ErrFailed) {
		t.Fatalf("read on failed device: %v, want ErrFailed", err)
	}
	if _, err := d.WriteVecAt([][]byte{make([]byte, 8)}, 0); !errors.Is(err, ErrFailed) {
		t.Fatalf("write on failed device: %v, want ErrFailed", err)
	}
}

func TestMemVecBadSectorAndHeal(t *testing.T) {
	d := NewMem(64)
	d.InjectBadSector(20)
	bufs := [][]byte{make([]byte, 16), make([]byte, 16)}
	if _, err := d.ReadVecAt(bufs, 8); !errors.Is(err, ErrBadSector) {
		t.Fatalf("vectored read over bad sector: %v, want ErrBadSector", err)
	}
	// A gather write over the sector heals it, like WriteAt.
	if _, err := d.WriteVecAt(bufs, 8); err != nil {
		t.Fatalf("healing vectored write: %v", err)
	}
	if _, err := d.ReadVecAt(bufs, 8); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestMemVecWriteLimit(t *testing.T) {
	d := NewMem(64)
	d.SetWriteLimit(1)
	one := [][]byte{{1, 2}, {3, 4}}
	if _, err := d.WriteVecAt(one, 0); err != nil {
		t.Fatal(err)
	}
	// Limit exhausted: the whole vectored call is one write, lost silently.
	if _, err := d.WriteVecAt([][]byte{{9, 9}}, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("post-limit vectored write persisted: %v", got)
	}
}

// TestFileVecRoundTrip exercises the FileDevice scatter/gather path — the
// raw preadv/pwritev syscalls on linux, the loop fallback elsewhere —
// including buffer lists longer than one syscall's iovec chunk.
func TestFileVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	path := filepath.Join(t.TempDir(), "vec.img")
	d, err := OpenFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for _, tc := range []struct {
		name  string
		n     int
		piece int
		off   int64
	}{
		{"small", 100, 7, 0},
		{"odd-tail", 4097, 64, 513},
		{"many-bufs", 3000, 3, 1 << 19}, // 1000 buffers: several iovec chunks
	} {
		want := make([]byte, tc.n)
		rng.Read(want)
		var wbufs [][]byte
		for i := 0; i < tc.n; i += tc.piece {
			end := min(i+tc.piece, tc.n)
			wbufs = append(wbufs, bytes.Clone(want[i:end]))
		}
		if n, err := d.WriteVecAt(wbufs, tc.off); err != nil || n != tc.n {
			t.Fatalf("%s: WriteVecAt = %d, %v", tc.name, n, err)
		}
		flat := make([]byte, tc.n)
		if _, err := d.ReadAt(flat, tc.off); err != nil {
			t.Fatalf("%s: ReadAt back: %v", tc.name, err)
		}
		if !bytes.Equal(flat, want) {
			t.Fatalf("%s: gather write landed wrong bytes", tc.name)
		}
		got := make([]byte, tc.n)
		var rbufs [][]byte
		for i := 0; i < tc.n; i += tc.piece {
			end := min(i+tc.piece, tc.n)
			rbufs = append(rbufs, got[i:end])
		}
		if n, err := d.ReadVecAt(rbufs, tc.off); err != nil || n != tc.n {
			t.Fatalf("%s: ReadVecAt = %d, %v", tc.name, n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: scatter read returned wrong bytes", tc.name)
		}
	}
}

func TestFileVecReadPastEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.img")
	d, err := OpenFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	bufs := [][]byte{make([]byte, 64), make([]byte, 128)}
	if _, err := d.ReadVecAt(bufs, 64); err == nil {
		t.Fatal("vectored read past EOF succeeded")
	}
}

func TestDelayedPerByte(t *testing.T) {
	mem := NewMem(4096)
	d := &Delayed{Device: mem, Delay: time.Millisecond, PerByte: 10 * time.Microsecond}
	p := make([]byte, 1024)

	start := time.Now()
	if _, err := d.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	// time.Sleep never undersleeps: a 1024-byte read must cost at least
	// Delay + 1024*PerByte ≈ 11.2ms, where the old flat model charged 1ms.
	if el, minWant := time.Since(start), d.Delay+1024*d.PerByte; el < minWant {
		t.Fatalf("per-byte read slept %v, want ≥ %v", el, minWant)
	}

	start = time.Now()
	if _, err := d.WriteVecAt([][]byte{p[:512], p[512:]}, 0); err != nil {
		t.Fatal(err)
	}
	if el, minWant := time.Since(start), d.Delay+1024*d.PerByte; el < minWant {
		t.Fatalf("per-byte vectored write slept %v, want ≥ %v", el, minWant)
	}
	// One vectored call is one physical access on the wrapped device.
	if st := mem.Stats(); st.Writes != 1 {
		t.Fatalf("vectored write through Delayed made %d physical writes, want 1", st.Writes)
	}
}

func TestInstrumentedVecTallies(t *testing.T) {
	mem := NewMem(4096)
	d := Instrument(mem)
	var hookOps, hookBytes int64
	d.SetOpHook(func(write bool, ops, bytes int64) {
		hookOps += ops
		hookBytes += bytes
	})
	bufs := [][]byte{make([]byte, 16), make([]byte, 16), make([]byte, 16)}
	if _, err := d.WriteVecAtN(bufs, 0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadVecAtN(bufs, 0, 3); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.Reads.Load() != 3 || m.Writes.Load() != 3 {
		t.Fatalf("ops-equivalent tallies = %d reads / %d writes, want 3 / 3",
			m.Reads.Load(), m.Writes.Load())
	}
	if m.BytesRead.Load() != 48 || m.BytesWritten.Load() != 48 {
		t.Fatalf("byte tallies = %d / %d, want 48 / 48", m.BytesRead.Load(), m.BytesWritten.Load())
	}
	if hookOps != 6 || hookBytes != 96 {
		t.Fatalf("hook saw ops=%d bytes=%d, want 6 / 96", hookOps, hookBytes)
	}
	// The N-less interface methods tally one op per call, like ReadAt.
	if _, err := d.ReadVecAt(bufs, 0); err != nil {
		t.Fatal(err)
	}
	if m.Reads.Load() != 4 {
		t.Fatalf("plain ReadVecAt tallied %d, want one more read", m.Reads.Load()-3)
	}
	// A failed vectored call is one failed access.
	mem.Fail()
	if _, err := d.ReadVecAtN(bufs, 0, 3); !errors.Is(err, ErrFailed) {
		t.Fatalf("vec read on failed device: %v", err)
	}
	if m.Reads.Load() != 5 || m.ReadErrors.Load() != 1 {
		t.Fatalf("failed vec read tallies = %d reads / %d errors, want 5 / 1",
			m.Reads.Load(), m.ReadErrors.Load())
	}
}

func TestRemoteVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mem := NewMem(1 << 16)
	r := dialFast(t, serveMem(t, mem))
	want := make([]byte, 2000)
	rng.Read(want)
	wbufs := chunkRand(bytes.Clone(want), rng)
	if n, err := r.WriteVecAt(wbufs, 4096); err != nil || n != len(want) {
		t.Fatalf("WriteVecAt = %d, %v", n, err)
	}
	got := make([]byte, len(want))
	rbufs := chunkRand(got, rng)
	if n, err := r.ReadVecAt(rbufs, 4096); err != nil || n != len(want) {
		t.Fatalf("ReadVecAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("remote vectored round trip corrupted data")
	}
	// One wire op each way: the backing device saw one read and one write.
	if st := mem.Stats(); st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("backend stats = %+v, want one read and one write", st)
	}
}
