package blockdev

import (
	"time"

	"dcode/internal/obs"
	"dcode/internal/trace"
)

// LinkedDevice is implemented by devices that can carry a trace link with
// each operation — today only Remote, which stamps the link onto the wire so
// the serving node's spans join the caller's trace. Local devices have
// nothing to propagate to.
type LinkedDevice interface {
	ReadAtLink(p []byte, off int64, l trace.Link) (int, error)
	WriteAtLink(p []byte, off int64, l trace.Link) (int, error)
	ReadVecAtLink(bufs [][]byte, off int64, l trace.Link) (int, error)
	WriteVecAtLink(bufs [][]byte, off int64, l trace.Link) (int, error)
}

// Instrumented wraps a Device and records every operation into an
// obs.IOMetrics: op and byte counts, error counts, and per-op latency
// histograms. Errors are passed through unwrapped, so errors.Is checks on
// ErrFailed / ErrBadSector keep working through the wrapper.
type Instrumented struct {
	dev    Device
	linked LinkedDevice // dev's link-threading view, nil if unsupported
	m      obs.IOMetrics
	hook   OpHook
}

// OpHook observes every completed device operation: write selects the write
// path, ops is the element-access count the call stands for (coalesced calls
// carry the ops they replaced), and bytes is what actually moved. The raid
// layer uses it to feed the windowed per-disk load tracker without blockdev
// knowing which column it is.
type OpHook func(write bool, ops, bytes int64)

// Instrument wraps dev. The wrapper adds two atomic ops and one clock read
// per call — negligible next to any real device access.
func Instrument(dev Device) *Instrumented {
	lb, _ := dev.(LinkedDevice)
	return &Instrumented{dev: dev, linked: lb}
}

// Metrics returns the wrapper's metric set; callers snapshot or reset it.
func (d *Instrumented) Metrics() *obs.IOMetrics { return &d.m }

// SetOpHook installs h (nil clears it). Set it before the device serves
// traffic — the field is read without synchronization on the hot path.
func (d *Instrumented) SetOpHook(h OpHook) { d.hook = h }

// Underlying returns the wrapped device.
func (d *Instrumented) Underlying() Device { return d.dev }

// ReadAt implements Device.
func (d *Instrumented) ReadAt(p []byte, off int64) (int, error) {
	return d.ReadAtN(p, off, 1)
}

// ReadAtN performs one physical read that stands in for ops element-sized
// accesses the caller coalesced into it. The read counter advances by ops on
// success so per-disk load tallies stay identical to the uncoalesced path
// (the paper's I/O-load accounting counts element accesses, not syscalls);
// the byte counter advances by the bytes actually moved, which is the same
// either way. Latency is observed once — it is one device access. A failed
// coalesced read is tallied as a single failed access, matching the
// uncoalesced path, which stopped at its first failing element.
func (d *Instrumented) ReadAtN(p []byte, off int64, ops int64) (int, error) {
	start := time.Now()
	n, err := d.dev.ReadAt(p, off)
	d.AccountRead(start, n, err, ops)
	return n, err
}

// AccountRead applies ReadAtN's exact accounting to a read that was executed
// outside the wrapper: the async engines drive the raw device (or its file
// descriptor) directly and report the outcome here, so per-disk tallies stay
// identical whichever path served the bytes. start is when the operation was
// handed to the device, so the observed latency includes any time it queued
// there.
func (d *Instrumented) AccountRead(start time.Time, n int, err error, ops int64) {
	d.m.ReadLatency.Observe(time.Since(start))
	if err != nil {
		d.m.Reads.Inc()
		d.m.ReadErrors.Inc()
		ops = 1
	} else {
		d.m.Reads.Add(ops)
	}
	d.m.BytesRead.Add(int64(n))
	if d.hook != nil {
		d.hook(false, ops, int64(n))
	}
}

// AccountWrite is AccountRead for the write path; see WriteAtN.
func (d *Instrumented) AccountWrite(start time.Time, n int, err error, ops int64) {
	d.m.WriteLatency.Observe(time.Since(start))
	if err != nil {
		d.m.Writes.Inc()
		d.m.WriteErrors.Inc()
		ops = 1
	} else {
		d.m.Writes.Add(ops)
	}
	d.m.BytesWritten.Add(int64(n))
	if d.hook != nil {
		d.hook(true, ops, int64(n))
	}
}

// ReadVecAt implements Device, tallied as one logical operation like ReadAt;
// the raid layer uses ReadVecAtN to carry the real ops-equivalent count.
func (d *Instrumented) ReadVecAt(bufs [][]byte, off int64) (int, error) {
	return d.ReadVecAtN(bufs, off, 1)
}

// ReadVecAtN is one physical scatter read standing in for ops element-sized
// accesses, with exactly ReadAtN's accounting: ops reads on success, one
// failed read on error, bytes as moved, latency observed once.
func (d *Instrumented) ReadVecAtN(bufs [][]byte, off int64, ops int64) (int, error) {
	start := time.Now()
	n, err := d.dev.ReadVecAt(bufs, off)
	d.AccountRead(start, n, err, ops)
	return n, err
}

// WriteAt implements Device.
func (d *Instrumented) WriteAt(p []byte, off int64) (int, error) {
	return d.WriteAtN(p, off, 1)
}

// WriteVecAt implements Device; see ReadVecAt.
func (d *Instrumented) WriteVecAt(bufs [][]byte, off int64) (int, error) {
	return d.WriteVecAtN(bufs, off, 1)
}

// WriteVecAtN is WriteVecAt tallied as ops coalesced element writes; see
// ReadVecAtN.
func (d *Instrumented) WriteVecAtN(bufs [][]byte, off int64, ops int64) (int, error) {
	start := time.Now()
	n, err := d.dev.WriteVecAt(bufs, off)
	d.AccountWrite(start, n, err, ops)
	return n, err
}

// WriteAtN is WriteAt tallied as ops coalesced element writes; see ReadAtN.
func (d *Instrumented) WriteAtN(p []byte, off int64, ops int64) (int, error) {
	start := time.Now()
	n, err := d.dev.WriteAt(p, off)
	d.AccountWrite(start, n, err, ops)
	return n, err
}

// Link-carrying variants: identical accounting to their plain counterparts,
// but when the wrapped device is a LinkedDevice (a Remote) the caller's span
// link travels with the operation. On local devices — or with a dead link —
// they compile down to the plain call, so the non-traced path pays nothing.

// ReadAtLink is ReadAt carrying the caller's span link.
func (d *Instrumented) ReadAtLink(p []byte, off int64, l trace.Link) (int, error) {
	return d.ReadAtNLink(p, off, 1, l)
}

// ReadAtNLink is ReadAtN carrying the caller's span link.
func (d *Instrumented) ReadAtNLink(p []byte, off int64, ops int64, l trace.Link) (int, error) {
	if d.linked == nil || l.Trace == 0 {
		return d.ReadAtN(p, off, ops)
	}
	start := time.Now()
	n, err := d.linked.ReadAtLink(p, off, l)
	d.AccountRead(start, n, err, ops)
	return n, err
}

// WriteAtLink is WriteAt carrying the caller's span link.
func (d *Instrumented) WriteAtLink(p []byte, off int64, l trace.Link) (int, error) {
	return d.WriteAtNLink(p, off, 1, l)
}

// WriteAtNLink is WriteAtN carrying the caller's span link.
func (d *Instrumented) WriteAtNLink(p []byte, off int64, ops int64, l trace.Link) (int, error) {
	if d.linked == nil || l.Trace == 0 {
		return d.WriteAtN(p, off, ops)
	}
	start := time.Now()
	n, err := d.linked.WriteAtLink(p, off, l)
	d.AccountWrite(start, n, err, ops)
	return n, err
}

// ReadVecAtNLink is ReadVecAtN carrying the caller's span link.
func (d *Instrumented) ReadVecAtNLink(bufs [][]byte, off int64, ops int64, l trace.Link) (int, error) {
	if d.linked == nil || l.Trace == 0 {
		return d.ReadVecAtN(bufs, off, ops)
	}
	start := time.Now()
	n, err := d.linked.ReadVecAtLink(bufs, off, l)
	d.AccountRead(start, n, err, ops)
	return n, err
}

// WriteVecAtNLink is WriteVecAtN carrying the caller's span link.
func (d *Instrumented) WriteVecAtNLink(bufs [][]byte, off int64, ops int64, l trace.Link) (int, error) {
	if d.linked == nil || l.Trace == 0 {
		return d.WriteVecAtN(bufs, off, ops)
	}
	start := time.Now()
	n, err := d.linked.WriteVecAtLink(bufs, off, l)
	d.AccountWrite(start, n, err, ops)
	return n, err
}

// Size implements Device.
func (d *Instrumented) Size() int64 { return d.dev.Size() }

// Close implements Device.
func (d *Instrumented) Close() error { return d.dev.Close() }
