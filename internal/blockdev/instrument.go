package blockdev

import (
	"time"

	"dcode/internal/obs"
)

// Instrumented wraps a Device and records every operation into an
// obs.IOMetrics: op and byte counts, error counts, and per-op latency
// histograms. Errors are passed through unwrapped, so errors.Is checks on
// ErrFailed / ErrBadSector keep working through the wrapper.
type Instrumented struct {
	dev Device
	m   obs.IOMetrics
}

// Instrument wraps dev. The wrapper adds two atomic ops and one clock read
// per call — negligible next to any real device access.
func Instrument(dev Device) *Instrumented {
	return &Instrumented{dev: dev}
}

// Metrics returns the wrapper's metric set; callers snapshot or reset it.
func (d *Instrumented) Metrics() *obs.IOMetrics { return &d.m }

// Underlying returns the wrapped device.
func (d *Instrumented) Underlying() Device { return d.dev }

// ReadAt implements Device.
func (d *Instrumented) ReadAt(p []byte, off int64) (int, error) {
	start := time.Now()
	n, err := d.dev.ReadAt(p, off)
	d.m.ReadLatency.Observe(time.Since(start))
	d.m.Reads.Inc()
	if err != nil {
		d.m.ReadErrors.Inc()
	}
	d.m.BytesRead.Add(int64(n))
	return n, err
}

// WriteAt implements Device.
func (d *Instrumented) WriteAt(p []byte, off int64) (int, error) {
	start := time.Now()
	n, err := d.dev.WriteAt(p, off)
	d.m.WriteLatency.Observe(time.Since(start))
	d.m.Writes.Inc()
	if err != nil {
		d.m.WriteErrors.Inc()
	}
	d.m.BytesWritten.Add(int64(n))
	return n, err
}

// Size implements Device.
func (d *Instrumented) Size() int64 { return d.dev.Size() }

// Close implements Device.
func (d *Instrumented) Close() error { return d.dev.Close() }
