package blockdev

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// asyncProfile is one deterministic vectored-op workload; the parity tests
// replay it against the synchronous vec path and the async engines and
// require identical buffers and identical Instrumented tallies.
type asyncProfile struct {
	name string
	ops  []asyncOp
}

type asyncOp struct {
	write bool
	t     int   // target device
	offs  int64 // device offset
	lens  []int // iovec lengths
	ops   int64 // ops-equivalent count
	seed  byte
}

func asyncProfiles(devCount int) []asyncProfile {
	mk := func(name string, ops ...asyncOp) asyncProfile { return asyncProfile{name: name, ops: ops} }
	return []asyncProfile{
		mk("sequential-read",
			asyncOp{t: 0, offs: 0, lens: []int{64, 64, 64}, ops: 3},
			asyncOp{t: 1 % devCount, offs: 192, lens: []int{128}, ops: 2},
			asyncOp{t: 2 % devCount, offs: 0, lens: []int{256}, ops: 4},
		),
		mk("mixed-rw",
			asyncOp{write: true, t: 0, offs: 0, lens: []int{64, 64}, ops: 2, seed: 7},
			asyncOp{t: 0, offs: 0, lens: []int{128}, ops: 2},
			asyncOp{write: true, t: 1 % devCount, offs: 64, lens: []int{64}, ops: 1, seed: 9},
			asyncOp{t: 1 % devCount, offs: 64, lens: []int{32, 32}, ops: 1},
		),
		mk("column-burst",
			asyncOp{write: true, t: 0, offs: 0, lens: []int{512}, ops: 8, seed: 3},
			asyncOp{write: true, t: 1 % devCount, offs: 0, lens: []int{512}, ops: 8, seed: 4},
			asyncOp{write: true, t: 2 % devCount, offs: 0, lens: []int{512}, ops: 8, seed: 5},
			asyncOp{t: 0, offs: 0, lens: []int{512}, ops: 8},
			asyncOp{t: 1 % devCount, offs: 0, lens: []int{512}, ops: 8},
			asyncOp{t: 2 % devCount, offs: 0, lens: []int{512}, ops: 8},
		),
	}
}

func opBufs(op asyncOp) [][]byte {
	bufs := make([][]byte, len(op.lens))
	for i, n := range op.lens {
		bufs[i] = make([]byte, n)
		if op.write {
			for j := range bufs[i] {
				bufs[i][j] = byte(j)*17 + op.seed + byte(i)
			}
		}
	}
	return bufs
}

func newInstrumentedMems(n int, size int64) ([]Device, []*Instrumented) {
	devs := make([]Device, n)
	ins := make([]*Instrumented, n)
	for i := range devs {
		ins[i] = Instrument(NewMem(size))
		devs[i] = ins[i]
	}
	return devs, ins
}

// tallyOf strips an IOSnapshot down to the deterministic fields the parity
// tests compare (latency histograms vary run to run by construction).
func tallyOf(d *Instrumented) string {
	s := d.Metrics().Snapshot()
	return fmt.Sprintf("r=%d w=%d br=%d bw=%d re=%d we=%d",
		s.Reads, s.Writes, s.BytesRead, s.BytesWritten, s.ReadErrors, s.WriteErrors)
}

// TestAsyncPoolParity replays each workload profile through the synchronous
// ReadVecAtN/WriteVecAtN path and through the pool engine and requires
// bit-identical buffers and identical per-device tallies — the fallback
// engine must be indistinguishable from the path it replaces.
func TestAsyncPoolParity(t *testing.T) {
	for _, prof := range asyncProfiles(3) {
		t.Run(prof.name, func(t *testing.T) {
			_, sins := newInstrumentedMems(3, 1<<16)
			adevs, ains := newInstrumentedMems(3, 1<<16)

			// Synchronous reference.
			syncBufs := make([][][]byte, len(prof.ops))
			for i, op := range prof.ops {
				bufs := opBufs(op)
				syncBufs[i] = bufs
				var err error
				if op.write {
					_, err = sins[op.t].WriteVecAtN(bufs, op.offs, op.ops)
				} else {
					_, err = sins[op.t].ReadVecAtN(bufs, op.offs, op.ops)
				}
				if err != nil {
					t.Fatal(err)
				}
			}

			q := NewAsyncPool(adevs, 4)
			defer q.Close()
			asyncBufs := make([][][]byte, len(prof.ops))
			comps := make([]*Completion, 0, len(prof.ops))
			for i, op := range prof.ops {
				bufs := opBufs(op)
				asyncBufs[i] = bufs
				if op.write {
					comps = append(comps, q.SubmitWriteVec(op.t, bufs, op.offs, op.ops))
				} else {
					comps = append(comps, q.SubmitReadVec(op.t, bufs, op.offs, op.ops))
				}
				// Writes order-depend on earlier ops in these profiles; drain
				// between ops so the replay is deterministic. Parity is about
				// per-op accounting, not scheduling.
				q.Kick()
				if _, err := comps[i].Wait(); err != nil {
					t.Fatal(err)
				}
			}

			for i := range prof.ops {
				for j := range syncBufs[i] {
					if !bytes.Equal(syncBufs[i][j], asyncBufs[i][j]) {
						t.Fatalf("op %d buf %d differs between sync and async", i, j)
					}
				}
			}
			for c := range sins {
				if s, a := tallyOf(sins[c]), tallyOf(ains[c]); s != a {
					t.Fatalf("device %d tallies differ: sync %s async %s", c, s, a)
				}
			}
			m := q.Metrics().Snapshot()
			if m.Submitted != int64(len(prof.ops)) || m.Completed != m.Submitted || m.Inflight != 0 {
				t.Fatalf("engine counters: %+v", m)
			}
		})
	}
}

// TestAsyncPoolFaultInjection pushes device errors through the async engine:
// a failed device surfaces ErrFailed on the completion, a bad sector
// surfaces ErrBadSector, and the error tallies match what the synchronous
// path would have recorded.
func TestAsyncPoolFaultInjection(t *testing.T) {
	mem := NewMem(1 << 12)
	ins := Instrument(mem)
	q := NewAsyncPool([]Device{ins}, 2)
	defer q.Close()

	mem.InjectBadSector(10)
	c := q.SubmitReadVec(0, [][]byte{make([]byte, 64)}, 0, 1)
	q.Kick()
	if _, err := c.Wait(); !errors.Is(err, ErrBadSector) {
		t.Fatalf("bad sector: got %v", err)
	}

	mem.Fail()
	c = q.SubmitReadVec(0, [][]byte{make([]byte, 64)}, 512, 1)
	q.Kick()
	if _, err := c.Wait(); !errors.Is(err, ErrFailed) {
		t.Fatalf("failed device read: got %v", err)
	}
	c = q.SubmitWriteVec(0, [][]byte{make([]byte, 64)}, 512, 1)
	q.Kick()
	if _, err := c.Wait(); !errors.Is(err, ErrFailed) {
		t.Fatalf("failed device write: got %v", err)
	}

	s := ins.Metrics().Snapshot()
	if s.ReadErrors != 2 || s.WriteErrors != 1 {
		t.Fatalf("error tallies: %+v", s)
	}
	// An errored vectored call tallies as one operation, like the sync path.
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("op tallies: %+v", s)
	}
}

// TestAsyncAutoKick verifies that staging depth submissions flushes without
// an explicit Kick, the pool analog of a filling submission queue.
func TestAsyncAutoKick(t *testing.T) {
	devs, _ := newInstrumentedMems(1, 1<<12)
	q := NewAsyncPool(devs, 2)
	defer q.Close()
	c1 := q.SubmitReadVec(0, [][]byte{make([]byte, 8)}, 0, 1)
	c2 := q.SubmitReadVec(0, [][]byte{make([]byte, 8)}, 8, 1)
	// Two staged ops reached depth 2: both must complete without Kick.
	if _, err := c1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Wait(); err != nil {
		t.Fatal(err)
	}
	if b := q.Metrics().Snapshot().Batches; b != 1 {
		t.Fatalf("auto-kick batches = %d, want 1", b)
	}
}

// TestAsyncCloseDrains submits a burst and closes: every completion must be
// delivered before Close returns.
func TestAsyncCloseDrains(t *testing.T) {
	devs, _ := newInstrumentedMems(2, 1<<16)
	q := NewAsyncQueue(devs, 8)
	var comps []*Completion
	for i := 0; i < 30; i++ {
		comps = append(comps, q.SubmitReadVec(i%2, [][]byte{make([]byte, 32)}, int64(i*32), 1))
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	for i, c := range comps {
		select {
		case <-c.done:
		default:
			t.Fatalf("completion %d not delivered by Close", i)
		}
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDelayedMaxInflight pins the queue-depth service model: with k slots,
// n overlapping requests serialize into ceil(n/k) service rounds.
func TestDelayedMaxInflight(t *testing.T) {
	const delay = 20 * time.Millisecond
	run := func(inflight, clients int) time.Duration {
		d := &Delayed{Device: NewMem(1 << 12), Delay: delay, MaxInflight: inflight}
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				buf := make([]byte, 16)
				if _, err := d.ReadAt(buf, int64(i*16)); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}

	// 6 clients over 2 slots: at least 3 serial rounds.
	if e := run(2, 6); e < 3*delay {
		t.Fatalf("MaxInflight=2: elapsed %v, want >= %v", e, 3*delay)
	}
	// Unlimited (0): all 6 overlap in roughly one round.
	if e := run(0, 6); e >= 3*delay {
		t.Fatalf("MaxInflight=0: elapsed %v, want < %v (unbounded overlap)", e, 3*delay)
	}
	// MaxInflight=1 fully serializes.
	if e := run(1, 3); e < 3*delay {
		t.Fatalf("MaxInflight=1: elapsed %v, want >= %v", e, 3*delay)
	}
}

// TestAsyncQueueOverlapsDelayed demonstrates the engine's point: staged
// submissions against a queue-depth-modeled device overlap up to the
// configured depth, where serial synchronous calls pay the full sum.
func TestAsyncQueueOverlapsDelayed(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	const delay = 15 * time.Millisecond
	const n = 8
	devs := make([]Device, n)
	for i := range devs {
		devs[i] = Instrument(&Delayed{Device: NewMem(1 << 12), Delay: delay, MaxInflight: 32})
	}

	// Synchronous serial reference.
	buf := make([]byte, 16)
	syncStart := time.Now()
	for i := 0; i < n; i++ {
		if _, err := devs[i].ReadVecAt([][]byte{buf}, 0); err != nil {
			t.Fatal(err)
		}
	}
	syncElapsed := time.Since(syncStart)

	q := NewAsyncQueue(devs, 32)
	defer q.Close()
	asyncStart := time.Now()
	comps := make([]*Completion, n)
	for i := range comps {
		comps[i] = q.SubmitReadVec(i, [][]byte{make([]byte, 16)}, 0, 1)
	}
	q.Kick()
	for _, c := range comps {
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	asyncElapsed := time.Since(asyncStart)

	// n serial delays vs one overlapped round: require a conservative 2x.
	if asyncElapsed*2 > syncElapsed {
		t.Fatalf("async %v not faster than sync %v", asyncElapsed, syncElapsed)
	}
}

// TestURingEngine exercises the raw ring against real files when the kernel
// supports io_uring: data round-trips, tallies land on the Instrumented
// wrappers, short reads surface io.ErrUnexpectedEOF.
func TestURingEngine(t *testing.T) {
	if !URingAvailable() {
		t.Skip("io_uring unavailable")
	}
	dir := t.TempDir()
	const size = 1 << 20
	devs := make([]Device, 3)
	ins := make([]*Instrumented, 3)
	for i := range devs {
		fd, err := OpenFileDirect(fmt.Sprintf("%s/col%d", dir, i), size)
		if err != nil {
			t.Fatal(err)
		}
		defer fd.Close()
		ins[i] = Instrument(fd)
		devs[i] = ins[i]
	}
	q := NewAsyncQueue(devs, 8)
	if q.Engine() != "uring" {
		t.Fatalf("engine = %q, want uring", q.Engine())
	}
	defer q.Close()

	data := bytes.Repeat([]byte{0xC7}, 4096)
	var comps []*Completion
	for i := range devs {
		comps = append(comps, q.SubmitWriteVec(i, [][]byte{data[:1024], data[1024:]}, 8192, 2))
	}
	q.Kick()
	for _, c := range comps {
		if n, err := c.Wait(); err != nil || n != len(data) {
			t.Fatalf("write n=%d err=%v", n, err)
		}
	}
	got := make([]byte, 4096)
	c := q.SubmitReadVec(2, [][]byte{got[:1000], got[1000:]}, 8192, 2)
	q.Kick()
	if n, err := c.Wait(); err != nil || n != len(got) {
		t.Fatalf("read n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	s := ins[2].Metrics().Snapshot()
	if s.Reads != 2 || s.Writes != 2 || s.BytesRead != 4096 || s.BytesWritten != 4096 {
		t.Fatalf("uring tallies: %+v", s)
	}

	// A read past EOF comes back short.
	c = q.SubmitReadVec(0, [][]byte{make([]byte, 4096)}, size-1024, 4)
	q.Kick()
	if _, err := c.Wait(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read: got %v, want ErrUnexpectedEOF", err)
	}
}

// TestOpenFileDirect verifies the O_DIRECT dispatch against a buffered twin:
// aligned and unaligned requests land identical bytes whichever descriptor
// serves them, and the probed alignment is sane.
func TestOpenFileDirect(t *testing.T) {
	dir := t.TempDir()
	const size = 1 << 20
	d, err := OpenFileDirect(dir+"/direct", size)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if a := d.DirectAlign(); a != 0 && a != 512 && a != 4096 {
		t.Fatalf("DirectAlign = %d", a)
	}
	t.Logf("probed O_DIRECT alignment: %d", d.DirectAlign())

	// Aligned write through the direct dispatch, readback both ways.
	aligned := alignedSlice(8192, 4096)
	for i := range aligned {
		aligned[i] = byte(i * 13)
	}
	if _, err := d.WriteAt(aligned, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(aligned))
	if _, err := d.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, aligned) {
		t.Fatal("aligned round-trip mismatch")
	}

	// Unaligned memory, aligned range: the bounce path.
	unalignedMem := make([]byte, 4096+1)[1:]
	copy(unalignedMem, aligned)
	if _, err := d.WriteAt(unalignedMem, 16384); err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, 4096+3)[3:]
	if _, err := d.ReadAt(got2, 16384); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, unalignedMem) {
		t.Fatal("bounce round-trip mismatch")
	}

	// Unaligned offset and length: buffered dispatch.
	small := []byte("odd-sized unaligned payload")
	if _, err := d.WriteAt(small, 123); err != nil {
		t.Fatal(err)
	}
	got3 := make([]byte, len(small))
	if _, err := d.ReadAt(got3, 123); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got3, small) {
		t.Fatal("unaligned round-trip mismatch")
	}

	// The buffered twin must observe everything the direct fd wrote.
	twin, err := OpenFile(dir+"/direct", size)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	got4 := make([]byte, 8192)
	if _, err := twin.ReadAt(got4, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got4, aligned) {
		t.Fatal("buffered twin does not see direct writes")
	}
}

// FuzzAsyncPoolParity fuzzes op streams through the pool engine against the
// synchronous vec path on twin devices: buffers and tallies must match.
func FuzzAsyncPoolParity(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x80, 0x07})
	f.Add([]byte{0xff, 0x00, 0x13, 0x37, 0x99, 0x21})
	f.Fuzz(func(t *testing.T, stream []byte) {
		if len(stream) == 0 || len(stream) > 64 {
			t.Skip()
		}
		const size = 1 << 12
		sdev := Instrument(NewMem(size))
		adev := Instrument(NewMem(size))
		q := NewAsyncPool([]Device{adev}, 2)
		defer q.Close()
		for i := 0; i+2 < len(stream); i += 3 {
			write := stream[i]&1 == 1
			off := int64(stream[i+1]) * 16
			n := int(stream[i+2])%256 + 1
			if off+int64(n) > size {
				n = int(size - off)
			}
			sb, ab := make([]byte, n), make([]byte, n)
			if write {
				for j := range sb {
					sb[j] = stream[i] + byte(j)
				}
				copy(ab, sb)
			}
			var serr, aerr error
			if write {
				_, serr = sdev.WriteVecAtN([][]byte{sb}, off, 1)
			} else {
				_, serr = sdev.ReadVecAtN([][]byte{sb}, off, 1)
			}
			var c *Completion
			if write {
				c = q.SubmitWriteVec(0, [][]byte{ab}, off, 1)
			} else {
				c = q.SubmitReadVec(0, [][]byte{ab}, off, 1)
			}
			q.Kick()
			_, aerr = c.Wait()
			if (serr == nil) != (aerr == nil) {
				t.Fatalf("op %d: sync err %v, async err %v", i/3, serr, aerr)
			}
			if !bytes.Equal(sb, ab) {
				t.Fatalf("op %d: buffers diverged", i/3)
			}
		}
		if s, a := tallyOf(sdev), tallyOf(adev); s != a {
			t.Fatalf("tallies diverged: sync %s async %s", s, a)
		}
	})
}
