package blockdev

// VecLen returns the total byte length of a vectored I/O buffer list.
func VecLen(bufs [][]byte) int {
	n := 0
	for _, b := range bufs {
		n += len(b)
	}
	return n
}

// readVecLoop implements ReadVecAt as one ReadAt per buffer — the portable
// fallback for devices without native scatter support. A partial failure
// returns the bytes landed so far with the error, like a short vectored read.
func readVecLoop(dev Device, bufs [][]byte, off int64) (int, error) {
	n := 0
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		m, err := dev.ReadAt(b, off+int64(n))
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// writeVecLoop is readVecLoop's gather counterpart.
func writeVecLoop(dev Device, bufs [][]byte, off int64) (int, error) {
	n := 0
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		m, err := dev.WriteAt(b, off+int64(n))
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
