//go:build !linux

package blockdev

// ReadVecAt implements Device with the portable per-buffer loop; only linux
// gets the single-syscall preadv fast path.
func (d *FileDevice) ReadVecAt(bufs [][]byte, off int64) (int, error) {
	return readVecLoop(d, bufs, off)
}

// WriteVecAt implements Device with the portable per-buffer loop.
func (d *FileDevice) WriteVecAt(bufs [][]byte, off int64) (int, error) {
	return writeVecLoop(d, bufs, off)
}
