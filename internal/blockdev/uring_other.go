//go:build !linux || (!amd64 && !arm64)

package blockdev

import "errors"

// newURingQueue is the non-Linux stub: NewAsyncQueue always falls back to
// the goroutine-pool engine, which is semantically identical (and pinned so
// by the fallback-parity tests).
func newURingQueue(devs []Device, depth int) (AsyncQueue, error) {
	return nil, errors.New("blockdev: io_uring unavailable on this platform")
}

// URingAvailable reports io_uring support; always false off Linux.
func URingAvailable() bool { return false }
