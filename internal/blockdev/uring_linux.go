//go:build linux && (amd64 || arm64)

package blockdev

// A raw, cgo-free io_uring submission engine. The ring is set up with three
// direct syscalls (io_uring_setup / io_uring_enter / io_uring_register — the
// numbers are identical on amd64 and arm64) and two shared-memory rings
// mmapped from the ring fd:
//
//	offset 0x0        the SQ ring: head/tail/mask plus the index array
//	offset 0x10000000 the SQE array: 64-byte submission entries
//	offset 0x8000000  the CQ ring: head/tail/mask plus 16-byte CQEs
//
// All column files are registered up front (IORING_REGISTER_FILES), so SQEs
// reference columns by fixed-file index and the kernel skips the per-op fd
// lookup. Submissions stage SQEs under the queue mutex and one
// io_uring_enter per Kick hands the whole batch to the kernel — many
// coalesced runs, one syscall. A single harvester goroutine blocks in
// io_uring_enter(GETEVENTS) and dispatches completions: per-device
// Instrumented accounting (identical to the synchronous path's
// ReadVecAtN/WriteVecAtN), then the per-op completion handle.
//
// Buffer lifetime: the kernel reads and writes the submitted iovecs until
// their CQE is reaped, so every submitted operation keeps its iovec slice
// and buffers referenced from the pending table until completion (Go's GC is
// non-moving, so the addresses stay valid). This is the engine-side half of
// the ownership rule documented in async.go: callers must not reuse
// submitted buffers before Wait.

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"dcode/internal/obs"
)

const (
	sysIOUringSetup    = 425
	sysIOUringEnter    = 426
	sysIOUringRegister = 427

	uringOpNop    = 0
	uringOpReadv  = 1
	uringOpWritev = 2

	uringRegisterFiles  = 2
	uringEnterGetevents = 1 << 0
	sqeFixedFile        = 1 << 0

	offSQRing = 0x0
	offCQRing = 0x8000000
	offSQEs   = 0x10000000

	// nopUserData marks the shutdown NOP the harvester exits on.
	nopUserData = ^uint64(0)
)

// uringSQRingOffsets mirrors struct io_sqring_offsets.
type uringSQRingOffsets struct {
	head        uint32
	tail        uint32
	ringMask    uint32
	ringEntries uint32
	flags       uint32
	dropped     uint32
	array       uint32
	resv1       uint32
	userAddr    uint64
}

// uringCQRingOffsets mirrors struct io_cqring_offsets.
type uringCQRingOffsets struct {
	head        uint32
	tail        uint32
	ringMask    uint32
	ringEntries uint32
	overflow    uint32
	cqes        uint32
	flags       uint32
	resv1       uint32
	userAddr    uint64
}

// uringParams mirrors struct io_uring_params.
type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFD         uint32
	resv         [3]uint32
	sqOff        uringSQRingOffsets
	cqOff        uringCQRingOffsets
}

// uringSQE mirrors struct io_uring_sqe (64 bytes).
type uringSQE struct {
	opcode      uint8
	flags       uint8
	ioprio      uint16
	fd          int32
	off         uint64
	addr        uint64
	len         uint32
	opFlags     uint32
	userData    uint64
	bufIndex    uint16
	personality uint16
	spliceFDIn  int32
	addr3       uint64
	pad2        uint64
}

// uringCQE mirrors struct io_uring_cqe (16 bytes).
type uringCQE struct {
	userData uint64
	res      int32
	flags    uint32
}

// uringOp is the pending-table entry of one in-flight submission: it pins
// the iovec slice (and, through the Completion, the data buffers) until the
// CQE arrives.
type uringOp struct {
	c      *Completion
	iovs   []syscall.Iovec
	total  int
	kstart time.Time // when the SQE was handed to the kernel (flush time)
}

// uringQueue is the io_uring AsyncQueue engine.
type uringQueue struct {
	fd    int
	devs  []uringDev
	depth int
	m     obs.AsyncMetrics

	sqMem  []byte
	cqMem  []byte
	sqeMem []byte

	sqHead  *uint32
	sqTail  *uint32
	sqMask  uint32
	sqCount uint32
	sqArray []uint32
	sqes    []uringSQE

	cqHead *uint32
	cqTail *uint32
	cqMask uint32

	cqes []uringCQE

	// sem bounds in-flight operations to the CQ capacity so a completion
	// can never be dropped to the overflow counter (a dropped CQE would
	// strand its waiter forever).
	sem chan struct{}

	mu      sync.Mutex
	idle    *sync.Cond // signaled when pending drains to empty (Close waits on it)
	pending map[uint64]*uringOp
	staged  []*uringOp
	stagedN uint32
	nextID  uint64
	closed  bool

	wg sync.WaitGroup
}

// uringDev pairs a registered column's accounting wrapper (nil when the
// caller passed a bare device) with its file.
type uringDev struct {
	ins *Instrumented
	f   *FileDevice
}

// uringTarget unwraps one Instrumented layer and requires a FileDevice
// underneath. Any other wrapping (Delayed, Remote, MemDevice) is not
// file-backed from the kernel's point of view — its semantics live in Go
// code a ring cannot execute — so the caller falls back to the pool engine.
func uringTarget(dev Device) (*Instrumented, *FileDevice) {
	ins, _ := dev.(*Instrumented)
	if ins != nil {
		dev = ins.Underlying()
	}
	f, _ := dev.(*FileDevice)
	return ins, f
}

var uringProbe struct {
	once sync.Once
	ok   bool
}

// URingAvailable reports whether the running kernel accepts io_uring_setup
// (false on old kernels, or where seccomp/sysctl policy denies the
// syscall). The probe runs once; NewAsyncQueue uses it to fall back to the
// pool engine.
func URingAvailable() bool {
	uringProbe.once.Do(func() {
		var p uringParams
		fd, _, errno := syscall.Syscall(sysIOUringSetup, 4, uintptr(unsafe.Pointer(&p)), 0)
		if errno == 0 {
			_ = syscall.Close(int(fd))
			uringProbe.ok = true
		}
	})
	return uringProbe.ok
}

// newURingQueue builds the ring engine over the target devices, or reports
// why it cannot (non-file device, kernel without io_uring) so NewAsyncQueue
// can fall back.
func newURingQueue(devs []Device, depth int) (AsyncQueue, error) {
	if !URingAvailable() {
		return nil, fmt.Errorf("blockdev: io_uring not available")
	}
	uds := make([]uringDev, len(devs))
	fds := make([]int32, len(devs))
	for i, d := range devs {
		ins, f := uringTarget(d)
		if f == nil {
			return nil, fmt.Errorf("blockdev: device %d is not file-backed", i)
		}
		uds[i] = uringDev{ins: ins, f: f}
		// In O_DIRECT mode the buffered descriptor is registered: the raid
		// layer submits ordinary heap buffers with no alignment guarantee,
		// which a direct descriptor would reject (see the fallback matrix
		// in DESIGN.md §6g).
		fds[i] = int32(f.f.Fd())
	}
	entries := uint32(8)
	for entries < uint32(depth) && entries < 4096 {
		entries <<= 1
	}
	var p uringParams
	rfd, _, errno := syscall.Syscall(sysIOUringSetup, uintptr(entries), uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil, fmt.Errorf("blockdev: io_uring_setup: %w", errno)
	}
	q := &uringQueue{
		fd:      int(rfd),
		devs:    uds,
		depth:   depth,
		pending: make(map[uint64]*uringOp),
	}
	q.idle = sync.NewCond(&q.mu)
	if err := q.mmapRings(&p); err != nil {
		_ = syscall.Close(q.fd)
		return nil, err
	}
	q.sem = make(chan struct{}, p.cqEntries)
	if _, _, errno := syscall.Syscall6(sysIOUringRegister, rfd, uringRegisterFiles,
		uintptr(unsafe.Pointer(&fds[0])), uintptr(len(fds)), 0, 0); errno != 0 {
		q.unmapRings()
		_ = syscall.Close(q.fd)
		return nil, fmt.Errorf("blockdev: io_uring_register(FILES): %w", errno)
	}
	runtime.KeepAlive(fds)
	q.wg.Add(1)
	go q.harvest()
	return q, nil
}

// mmapRings maps the SQ ring, SQE array and CQ ring and resolves the
// head/tail/mask pointers from the kernel-reported offsets.
func (q *uringQueue) mmapRings(p *uringParams) error {
	sqSize := int(p.sqOff.array) + int(p.sqEntries)*4
	cqSize := int(p.cqOff.cqes) + int(p.cqEntries)*int(unsafe.Sizeof(uringCQE{}))
	mmap := func(off int64, size int) ([]byte, error) {
		return syscall.Mmap(q.fd, off, size,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	}
	var err error
	if q.sqMem, err = mmap(offSQRing, sqSize); err != nil {
		return fmt.Errorf("blockdev: mmap sq ring: %w", err)
	}
	if q.sqeMem, err = mmap(offSQEs, int(p.sqEntries)*int(unsafe.Sizeof(uringSQE{}))); err != nil {
		q.unmapRings()
		return fmt.Errorf("blockdev: mmap sqes: %w", err)
	}
	if q.cqMem, err = mmap(offCQRing, cqSize); err != nil {
		q.unmapRings()
		return fmt.Errorf("blockdev: mmap cq ring: %w", err)
	}
	q.sqHead = (*uint32)(unsafe.Pointer(&q.sqMem[p.sqOff.head]))
	q.sqTail = (*uint32)(unsafe.Pointer(&q.sqMem[p.sqOff.tail]))
	q.sqMask = *(*uint32)(unsafe.Pointer(&q.sqMem[p.sqOff.ringMask]))
	q.sqCount = p.sqEntries
	q.sqArray = unsafe.Slice((*uint32)(unsafe.Pointer(&q.sqMem[p.sqOff.array])), p.sqEntries)
	q.sqes = unsafe.Slice((*uringSQE)(unsafe.Pointer(&q.sqeMem[0])), p.sqEntries)
	q.cqHead = (*uint32)(unsafe.Pointer(&q.cqMem[p.cqOff.head]))
	q.cqTail = (*uint32)(unsafe.Pointer(&q.cqMem[p.cqOff.tail]))
	q.cqMask = *(*uint32)(unsafe.Pointer(&q.cqMem[p.cqOff.ringMask]))
	q.cqes = unsafe.Slice((*uringCQE)(unsafe.Pointer(&q.cqMem[p.cqOff.cqes])), p.cqEntries)
	return nil
}

func (q *uringQueue) unmapRings() {
	for _, m := range [][]byte{q.sqMem, q.sqeMem, q.cqMem} {
		if m != nil {
			_ = syscall.Munmap(m)
		}
	}
	q.sqMem, q.sqeMem, q.cqMem = nil, nil, nil
}

func (q *uringQueue) Depth() int                 { return q.depth }
func (q *uringQueue) Engine() string             { return "uring" }
func (q *uringQueue) Metrics() *obs.AsyncMetrics { return &q.m }

// SubmitReadVec implements AsyncQueue.
func (q *uringQueue) SubmitReadVec(t int, bufs [][]byte, off int64, ops int64) *Completion {
	return q.submit(false, t, bufs, off, ops)
}

// SubmitWriteVec implements AsyncQueue.
func (q *uringQueue) SubmitWriteVec(t int, bufs [][]byte, off int64, ops int64) *Completion {
	return q.submit(true, t, bufs, off, ops)
}

func (q *uringQueue) submit(write bool, t int, bufs [][]byte, off int64, ops int64) *Completion {
	c := &Completion{
		write: write, t: t, bufs: bufs, off: off, ops: ops,
		start: time.Now(), done: make(chan struct{}),
	}
	iovs := make([]syscall.Iovec, 0, len(bufs))
	total := 0
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		iov := syscall.Iovec{Base: &b[0]}
		iov.SetLen(len(b))
		iovs = append(iovs, iov)
		total += len(b)
	}
	q.m.Submitted.Inc()
	if len(iovs) == 0 {
		// Nothing to move: complete inline with the same zero-byte result
		// the synchronous vectored path produces.
		q.finish(c, 0, nil)
		return c
	}
	// Bound in-flight ops to the CQ capacity; when the try-acquire fails,
	// everything staged must reach the kernel first or the completions that
	// would free a slot could never be produced.
	select {
	//lint:ignore gocheck released cross-function: complete() receives from q.sem once per harvested CQE
	case q.sem <- struct{}{}:
	default:
		q.m.SQFullStalls.Inc()
		q.Kick()
		q.sem <- struct{}{}
	}
	op := &uringOp{c: c, iovs: iovs, total: total}
	q.mu.Lock()
	if q.sqSpaceLocked() == 0 {
		// SQ full: hand the filled SQEs to the kernel, which frees every
		// slot (submission consumes SQEs; it does not wait on completions).
		q.m.SQFullStalls.Inc()
		q.flushLocked()
	}
	id := q.nextID
	q.nextID++
	q.pending[id] = op
	q.fillSQELocked(id, op)
	q.staged = append(q.staged, op)
	q.mu.Unlock()
	return c
}

// sqSpaceLocked returns the free SQE slots. Callers hold q.mu.
func (q *uringQueue) sqSpaceLocked() uint32 {
	head := atomic.LoadUint32(q.sqHead)
	return q.sqCount - (atomic.LoadUint32(q.sqTail) - head)
}

// fillSQELocked writes one SQE at the current tail. Callers hold q.mu and
// have ensured a free slot.
func (q *uringQueue) fillSQELocked(id uint64, op *uringOp) {
	tail := atomic.LoadUint32(q.sqTail)
	idx := tail & q.sqMask
	sqe := &q.sqes[idx]
	*sqe = uringSQE{
		opcode:   uringOpReadv,
		flags:    sqeFixedFile,
		fd:       int32(op.c.t),
		off:      uint64(op.c.off),
		addr:     uint64(uintptr(unsafe.Pointer(&op.iovs[0]))),
		len:      uint32(len(op.iovs)),
		userData: id,
	}
	if op.c.write {
		sqe.opcode = uringOpWritev
	}
	q.sqArray[idx] = idx
	atomic.StoreUint32(q.sqTail, tail+1)
	q.stagedN++
}

// Kick implements AsyncQueue: one io_uring_enter submits every staged SQE.
func (q *uringQueue) Kick() {
	q.mu.Lock()
	q.flushLocked()
	q.mu.Unlock()
}

// flushLocked hands the staged SQEs to the kernel. Callers hold q.mu.
func (q *uringQueue) flushLocked() {
	n := q.stagedN
	if n == 0 {
		return
	}
	q.stagedN = 0
	now := time.Now()
	for _, op := range q.staged {
		op.kstart = now
	}
	q.staged = q.staged[:0]
	q.m.RecordBatch(int(n))
	q.enter(n)
}

// enter submits n SQEs, retrying EINTR/EAGAIN until the kernel has consumed
// all of them.
func (q *uringQueue) enter(n uint32) {
	var done uint32
	for done < n {
		r1, _, errno := syscall.Syscall6(sysIOUringEnter, uintptr(q.fd),
			uintptr(n-done), 0, 0, 0, 0)
		if errno == syscall.EINTR || errno == syscall.EAGAIN {
			runtime.Gosched()
			continue
		}
		if errno != 0 || r1 == 0 {
			// A hard submission error with valid registered fds does not
			// happen in practice; abandoning the loop keeps the process
			// alive and the stranded ops surface as a hang under test
			// rather than memory corruption.
			return
		}
		done += uint32(r1)
	}
}

// harvest is the completion goroutine: it blocks in
// io_uring_enter(GETEVENTS) until CQEs arrive, drains them, and dispatches
// each op's accounting and completion handle. It exits on the shutdown NOP.
func (q *uringQueue) harvest() {
	defer q.wg.Done()
	for {
		head := atomic.LoadUint32(q.cqHead)
		tail := atomic.LoadUint32(q.cqTail)
		if head == tail {
			_, _, errno := syscall.Syscall6(sysIOUringEnter, uintptr(q.fd),
				0, 1, uringEnterGetevents, 0, 0)
			if errno != 0 && errno != syscall.EINTR {
				return // ring torn down under us
			}
			continue
		}
		for head != tail {
			cqe := q.cqes[head&q.cqMask]
			head++
			atomic.StoreUint32(q.cqHead, head)
			if cqe.userData == nopUserData {
				return
			}
			q.complete(cqe.userData, cqe.res)
		}
	}
}

// complete dispatches one CQE: per-device accounting identical to the
// synchronous ReadVecAtN/WriteVecAtN path, engine metrics, then the waiter.
func (q *uringQueue) complete(id uint64, res int32) {
	q.mu.Lock()
	op, ok := q.pending[id]
	if ok {
		delete(q.pending, id)
		if len(q.pending) == 0 {
			q.idle.Broadcast()
		}
	}
	q.mu.Unlock()
	if !ok {
		return
	}
	var n int
	var err error
	if res < 0 {
		err = syscall.Errno(-res)
	} else {
		n = int(res)
		if n < op.total {
			// Short I/O: completed with an error so the raid layer retries
			// on its synchronous fallback path, which handles resumption.
			err = io.ErrUnexpectedEOF
		}
	}
	if d := q.devs[op.c.t]; d.ins != nil {
		if op.c.write {
			d.ins.AccountWrite(op.kstart, n, err, op.c.ops)
		} else {
			d.ins.AccountRead(op.kstart, n, err, op.c.ops)
		}
	}
	// The kernel is done with the iovecs and buffers as of this CQE.
	runtime.KeepAlive(op.iovs)
	<-q.sem
	q.finish(op.c, n, err)
}

func (q *uringQueue) finish(c *Completion, n int, err error) {
	c.n, c.err = n, err
	q.m.Completed.Inc()
	q.m.OpLatency.Observe(time.Since(c.start))
	close(c.done)
}

// Close implements AsyncQueue: flush staged work, wait for every in-flight
// completion, stop the harvester with a NOP, and release the ring.
func (q *uringQueue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.flushLocked()
	for len(q.pending) > 0 {
		q.idle.Wait()
	}
	// Wake the harvester with a NOP it exits on. There is always SQ space:
	// nothing is staged and nothing is pending.
	tail := atomic.LoadUint32(q.sqTail)
	idx := tail & q.sqMask
	q.sqes[idx] = uringSQE{opcode: uringOpNop, userData: nopUserData}
	q.sqArray[idx] = idx
	atomic.StoreUint32(q.sqTail, tail+1)
	q.enter(1)
	q.mu.Unlock()
	q.wg.Wait()
	q.unmapRings()
	return syscall.Close(q.fd)
}
