//go:build !linux

package blockdev

// OpenFileDirect falls back to a plain buffered device off Linux; the
// direct-mode fields stay zero and DirectAlign reports 0.
func OpenFileDirect(path string, size int64) (*FileDevice, error) {
	return OpenFile(path, size)
}
