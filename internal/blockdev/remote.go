package blockdev

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dcode/internal/blockserve"
	"dcode/internal/obs"
	"dcode/internal/trace"
)

// Remote is a Device served by a remote blockserve endpoint over TCP, so an
// array column can live on another node. It implements the same failure
// contract as a local device — a dead or unreachable remote surfaces as
// ErrFailed after the retry budget, which the raid layer treats exactly like
// a failed local disk (degraded reads, eventual rebuild).
//
// Each operation takes one pooled connection for its request/response
// exchange (responses are matched by request id), under a per-request
// deadline. Transport errors — dial failures, timeouts, resets, short frames
// — are retried with exponential backoff on a fresh connection, up to the
// attempt budget; protocol-level errors the server reports (bad range, a
// failed backing device) are deterministic and returned immediately, mapped
// back to the sentinel errors errors.Is callers check.
type Remote struct {
	addr string
	size int64
	caps uint32 // server capability bits from the DialRemote STATUS probe

	dial     func(ctx context.Context) (net.Conn, error)
	timeout  time.Duration // per-request deadline
	attempts int           // total tries per op (1 = no retry)
	backoff  time.Duration // first retry delay, doubling per retry
	poolCap  int

	mu     sync.Mutex
	idle   []*rconn
	closed bool

	seq atomic.Uint64

	// Test-facing fault/latency injection; see SetInjector / SetLatency.
	inject    atomic.Pointer[InjectFunc]
	latencyNs atomic.Int64

	retries atomic.Int64  // transport-level retries performed (observability)
	rtt     obs.Histogram // per-exchange round-trip latency (the network phase)

	// events/evDisk: optional flight recorder fed on transport retries, with
	// the column index this device backs. Set before serving traffic.
	events *obs.Recorder
	evDisk int32
}

// rconn is one pooled protocol connection with its reusable frame buffers.
type rconn struct {
	c    net.Conn
	rbuf []byte
	wbuf []byte
}

// InjectFunc simulates a transport fault: it runs before each attempt of
// each operation (op is the blockserve op code, attempt counts from 0) and a
// non-nil return is handled exactly like a network failure of that attempt —
// the connection is dropped and the retry/backoff path runs. Keep returning
// errors to simulate a dead remote.
type InjectFunc func(op uint8, attempt int) error

// RemoteOption tunes DialRemote.
type RemoteOption func(*Remote)

// WithRequestTimeout sets the per-request deadline (default 2s).
func WithRequestTimeout(d time.Duration) RemoteOption {
	return func(r *Remote) {
		if d > 0 {
			r.timeout = d
		}
	}
}

// WithRetry sets the total attempts per operation and the initial backoff
// between them (doubling per retry). Defaults: 3 attempts, 10ms backoff.
func WithRetry(attempts int, backoff time.Duration) RemoteOption {
	return func(r *Remote) {
		if attempts > 0 {
			r.attempts = attempts
		}
		if backoff >= 0 {
			r.backoff = backoff
		}
	}
}

// WithPool caps the idle-connection pool (default 4). Concurrent operations
// beyond the cap dial extra connections and close them when done.
func WithPool(n int) RemoteOption {
	return func(r *Remote) {
		if n > 0 {
			r.poolCap = n
		}
	}
}

// WithDialer replaces the TCP dialer; tests use it to hand the Remote an
// in-memory pipe. The dialer runs under the operation's context, so a
// callers-side deadline bounds connection establishment too.
func WithDialer(dial func() (net.Conn, error)) RemoteOption {
	return func(r *Remote) {
		if dial != nil {
			r.dial = func(context.Context) (net.Conn, error) { return dial() }
		}
	}
}

// WithContextDialer is WithDialer for context-aware dialers.
func WithContextDialer(dial func(ctx context.Context) (net.Conn, error)) RemoteOption {
	return func(r *Remote) {
		if dial != nil {
			r.dial = dial
		}
	}
}

// DialRemote connects to a blockserve endpoint and returns it as a Device.
// It performs one STATUS round trip to learn the volume size and verify the
// endpoint speaks the protocol.
func DialRemote(addr string, opts ...RemoteOption) (*Remote, error) {
	r := &Remote{
		addr:     addr,
		timeout:  2 * time.Second,
		attempts: 3,
		backoff:  10 * time.Millisecond,
		poolCap:  4,
	}
	r.dial = func(ctx context.Context) (net.Conn, error) {
		d := net.Dialer{Timeout: r.timeout}
		return d.DialContext(ctx, "tcp", r.addr)
	}
	for _, opt := range opts {
		opt(r)
	}
	f, err := r.do(blockserve.Frame{Type: blockserve.OpStatus})
	if err != nil {
		return nil, fmt.Errorf("blockdev: remote %s: %w", addr, err)
	}
	r.size = f.Off
	// The STATUS response's Count is the server's capability bitmask (zero
	// from servers that predate negotiation); trace extensions are only
	// stamped onto requests when the server advertised CapTrace.
	r.caps = f.Count
	return r, nil
}

// Caps returns the capability bits the server advertised at dial time.
func (r *Remote) Caps() uint32 { return r.caps }

// SetEvents attaches a flight recorder (nil detaches) fed on transport
// retries, tagged with disk — the array column this device backs. Set it
// before the device serves traffic; the fields are read unsynchronized on
// the request path.
func (r *Remote) SetEvents(rec *obs.Recorder, disk int32) {
	r.events = rec
	r.evDisk = disk
}

// RTTSnapshot returns the distribution of request/response round trips —
// the network term of the per-phase latency decomposition. Only completed
// exchanges are observed; attempts that died in transit are excluded (their
// cost shows up in the retry counter and the op's own latency instead).
func (r *Remote) RTTSnapshot() obs.HistogramSnapshot { return r.rtt.Snapshot() }

// stamp attaches l as a trace extension to req when the link is live and the
// server advertised trace support.
func (r *Remote) stamp(req *blockserve.Frame, l trace.Link) {
	if l.Trace == 0 || r.caps&blockserve.CapTrace == 0 {
		return
	}
	req.Flags |= blockserve.FlagTrace
	req.Trace, req.Span = l.Trace, l.Span
}

// SetInjector installs fn (nil clears it); see InjectFunc.
func (r *Remote) SetInjector(fn InjectFunc) {
	if fn == nil {
		r.inject.Store(nil)
		return
	}
	r.inject.Store(&fn)
}

// SetLatency adds a fixed delay before every attempt, simulating network
// distance; 0 clears it.
func (r *Remote) SetLatency(d time.Duration) { r.latencyNs.Store(int64(d)) }

// Retries returns how many transport-level retries the device has performed.
func (r *Remote) Retries() int64 { return r.retries.Load() }

// Addr returns the remote endpoint address.
func (r *Remote) Addr() string { return r.addr }

// getConn pops an idle connection or dials a new one under ctx.
func (r *Remote) getConn(ctx context.Context) (*rconn, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrFailed
	}
	if n := len(r.idle); n > 0 {
		rc := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		return rc, nil
	}
	r.mu.Unlock()
	c, err := r.dial(ctx)
	if err != nil {
		return nil, err
	}
	return &rconn{c: c}, nil
}

// putConn returns a healthy connection to the pool (or closes it beyond the
// cap or after Close).
func (r *Remote) putConn(rc *rconn) {
	r.mu.Lock()
	if !r.closed && len(r.idle) < r.poolCap {
		r.idle = append(r.idle, rc)
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	_ = rc.c.Close()
}

// remoteError is a protocol-level error reported by the server. Unwrap maps
// the known device sentinels through, so errors.Is(err, ErrFailed) holds for
// a remote whose backing device failed.
type remoteError struct {
	msg string
}

func (e *remoteError) Error() string { return "blockdev: remote: " + e.msg }

func (e *remoteError) Unwrap() error {
	switch e.msg {
	case ErrFailed.Error():
		return ErrFailed
	case ErrBadSector.Error():
		return ErrBadSector
	}
	return nil
}

// opCtx derives the whole-operation context: the per-attempt deadline times
// the attempt budget, plus every backoff pause and injected latency. Every
// request below this point carries a deadline — the serve boundary's
// propagation contract — so a wedged remote can never hold an operation
// (or a raid stripe write above it) forever.
func (r *Remote) opCtx() (context.Context, context.CancelFunc) {
	budget := time.Duration(r.attempts) * r.timeout
	for i := 1; i < r.attempts; i++ {
		budget += r.backoff << (i - 1)
	}
	budget += time.Duration(r.attempts) * time.Duration(r.latencyNs.Load())
	if budget <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), budget)
}

// do runs one request/response exchange with retry-with-backoff on transport
// errors. Protocol errors (an ERR response) return immediately — the server
// answered authoritatively, retrying cannot change the outcome — and the
// connection stays pooled, since the exchange itself completed cleanly.
func (r *Remote) do(req blockserve.Frame) (blockserve.Frame, error) {
	ctx, cancel := r.opCtx()
	defer cancel()
	return r.doCtx(ctx, req)
}

// doCtx is do under a caller-supplied context.
func (r *Remote) doCtx(ctx context.Context, req blockserve.Frame) (blockserve.Frame, error) {
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			// The retry event carries the stamped trace ID (0 when the op was
			// unlinked), so a postmortem ties the transport trouble back to
			// the exact op span that suffered it.
			r.events.Record(obs.EvRemoteRetry, r.evDisk, -1, req.Trace, int64(attempt))
			select {
			case <-ctx.Done():
				return blockserve.Frame{}, fmt.Errorf("%w: %s after %d attempts: %v (%v)",
					ErrFailed, r.addr, attempt, lastErr, ctx.Err())
			case <-time.After(r.backoff << (attempt - 1)):
			}
		}
		if d := time.Duration(r.latencyNs.Load()); d > 0 {
			time.Sleep(d)
		}
		if fp := r.inject.Load(); fp != nil {
			if err := (*fp)(req.Type, attempt); err != nil {
				lastErr = err
				continue
			}
		}
		resp, err := r.attempt(ctx, req)
		if err == nil {
			return resp, nil
		}
		var rerr *remoteError
		if errors.As(err, &rerr) {
			return blockserve.Frame{}, err
		}
		lastErr = err
	}
	return blockserve.Frame{}, fmt.Errorf("%w: %s after %d attempts: %v", ErrFailed, r.addr, r.attempts, lastErr)
}

// attempt performs one exchange on one connection. The connection deadline
// is the tighter of the per-attempt timeout and ctx's deadline.
func (r *Remote) attempt(ctx context.Context, req blockserve.Frame) (blockserve.Frame, error) {
	rc, err := r.getConn(ctx)
	if err != nil {
		return blockserve.Frame{}, err
	}
	req.ID = r.seq.Add(1)
	if r.timeout > 0 {
		deadline := time.Now().Add(r.timeout)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		_ = rc.c.SetDeadline(deadline)
	} else if d, ok := ctx.Deadline(); ok {
		_ = rc.c.SetDeadline(d)
	}
	exchangeStart := time.Now()
	if rc.wbuf, err = blockserve.WriteFrame(rc.c, rc.wbuf, req); err != nil {
		_ = rc.c.Close()
		return blockserve.Frame{}, err
	}
	var resp blockserve.Frame
	resp, rc.rbuf, err = blockserve.ReadFrame(rc.c, rc.rbuf)
	if err != nil {
		_ = rc.c.Close()
		return blockserve.Frame{}, err
	}
	r.rtt.Observe(time.Since(exchangeStart))
	if resp.Type == blockserve.RespErr && resp.ID == 0 && req.ID != 0 {
		// A connection-level rejection (client cap, draining): the server sent
		// it before reading our request, so it carries no request id. The
		// condition can clear, so surface it as a retriable transport error
		// that keeps the server's reason.
		_ = rc.c.Close()
		return blockserve.Frame{}, fmt.Errorf("blockdev: remote %s rejected connection: %s", r.addr, resp.Data)
	}
	if resp.ID != req.ID {
		// A stale response on a reused connection (e.g. a late reply after a
		// previous deadline expiry); the stream is unsynchronized — drop it.
		_ = rc.c.Close()
		return blockserve.Frame{}, fmt.Errorf("blockdev: remote %s: response id %d for request %d", r.addr, resp.ID, req.ID)
	}
	if resp.Type == blockserve.RespErr {
		r.putConn(rc)
		return blockserve.Frame{}, &remoteError{msg: string(resp.Data)}
	}
	// The response payload aliases the connection's read buffer; copy it out
	// before the connection (and buffer) are reused.
	if len(resp.Data) > 0 {
		resp.Data = append([]byte(nil), resp.Data...)
	}
	r.putConn(rc)
	return resp, nil
}

// ReadAt implements Device.
func (r *Remote) ReadAt(p []byte, off int64) (int, error) {
	return r.ReadAtLink(p, off, trace.Link{})
}

// ReadAtLink is ReadAt stamped with the caller's span link: the request
// carries a trace extension (capability permitting), so the serving node's
// spans join the caller's trace. The zero Link sends a plain request.
func (r *Remote) ReadAtLink(p []byte, off int64, l trace.Link) (int, error) {
	if len(p) > blockserve.MaxPayload {
		return 0, fmt.Errorf("blockdev: remote read of %d bytes exceeds frame limit %d", len(p), blockserve.MaxPayload)
	}
	req := blockserve.Frame{Type: blockserve.OpRead, Off: off, Count: uint32(len(p))}
	r.stamp(&req, l)
	f, err := r.do(req)
	if err != nil {
		return 0, err
	}
	if len(f.Data) != len(p) {
		return copy(p, f.Data), fmt.Errorf("blockdev: remote short read: %d of %d bytes", len(f.Data), len(p))
	}
	return copy(p, f.Data), nil
}

// WriteAt implements Device.
func (r *Remote) WriteAt(p []byte, off int64) (int, error) {
	return r.WriteAtLink(p, off, trace.Link{})
}

// WriteAtLink is WriteAt stamped with the caller's span link; see ReadAtLink.
func (r *Remote) WriteAtLink(p []byte, off int64, l trace.Link) (int, error) {
	if len(p) > blockserve.MaxPayload {
		return 0, fmt.Errorf("blockdev: remote write of %d bytes exceeds frame limit %d", len(p), blockserve.MaxPayload)
	}
	req := blockserve.Frame{Type: blockserve.OpWrite, Off: off, Data: p}
	r.stamp(&req, l)
	f, err := r.do(req)
	if err != nil {
		return 0, err
	}
	return int(f.Count), nil
}

// ReadVecAt implements Device. The wire protocol moves one contiguous
// payload either way, so a vectored read is a single request for the total
// length scattered into bufs on receipt — still one remote round trip per
// coalesced run; the scatter copy is the unavoidable deserialization cost.
func (r *Remote) ReadVecAt(bufs [][]byte, off int64) (int, error) {
	return r.ReadVecAtLink(bufs, off, trace.Link{})
}

// ReadVecAtLink is ReadVecAt stamped with the caller's span link; see
// ReadAtLink.
func (r *Remote) ReadVecAtLink(bufs [][]byte, off int64, l trace.Link) (int, error) {
	total := VecLen(bufs)
	if total > blockserve.MaxPayload {
		return 0, fmt.Errorf("blockdev: remote vectored read of %d bytes exceeds frame limit %d", total, blockserve.MaxPayload)
	}
	req := blockserve.Frame{Type: blockserve.OpRead, Off: off, Count: uint32(total)}
	r.stamp(&req, l)
	f, err := r.do(req)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, b := range bufs {
		n += copy(b, f.Data[min(n, len(f.Data)):])
	}
	if len(f.Data) != total {
		return n, fmt.Errorf("blockdev: remote short read: %d of %d bytes", len(f.Data), total)
	}
	return n, nil
}

// WriteVecAt implements Device, gathering bufs into one frame payload — a
// single remote round trip per coalesced run.
func (r *Remote) WriteVecAt(bufs [][]byte, off int64) (int, error) {
	return r.WriteVecAtLink(bufs, off, trace.Link{})
}

// WriteVecAtLink is WriteVecAt stamped with the caller's span link; see
// ReadAtLink.
func (r *Remote) WriteVecAtLink(bufs [][]byte, off int64, l trace.Link) (int, error) {
	total := VecLen(bufs)
	if total > blockserve.MaxPayload {
		return 0, fmt.Errorf("blockdev: remote vectored write of %d bytes exceeds frame limit %d", total, blockserve.MaxPayload)
	}
	p := make([]byte, 0, total)
	for _, b := range bufs {
		p = append(p, b...)
	}
	req := blockserve.Frame{Type: blockserve.OpWrite, Off: off, Data: p}
	r.stamp(&req, l)
	f, err := r.do(req)
	if err != nil {
		return 0, err
	}
	return int(f.Count), nil
}

// Flush asks the remote to persist outstanding writes.
func (r *Remote) Flush() error {
	_, err := r.do(blockserve.Frame{Type: blockserve.OpFlush})
	return err
}

// Status fetches the remote volume's status document.
func (r *Remote) Status() ([]byte, error) {
	f, err := r.do(blockserve.Frame{Type: blockserve.OpStatus})
	if err != nil {
		return nil, err
	}
	return f.Data, nil
}

// Rebuild asks the remote volume (an array endpoint) to rebuild a disk.
func (r *Remote) Rebuild(disk int) error {
	_, err := r.do(blockserve.Frame{Type: blockserve.OpRebuild, Off: int64(disk)})
	return err
}

// Size implements Device.
func (r *Remote) Size() int64 { return r.size }

// Close implements Device, closing every pooled connection.
func (r *Remote) Close() error {
	r.mu.Lock()
	r.closed = true
	idle := r.idle
	r.idle = nil
	r.mu.Unlock()
	for _, rc := range idle {
		_ = rc.c.Close()
	}
	return nil
}
