package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// atomiccheck enforces the all-or-nothing rule of sync/atomic: a memory cell
// that any code accesses through the atomic functions may never be read or
// written plainly anywhere else — the plain access races with the atomic one
// and the race detector only catches the interleavings the test happens to
// schedule. The analyzer is module-wide and two-phase:
//
//  1. Collect the atomic cells: every struct field whose address is taken in
//     an atomic.Add*/Load*/Store*/Swap*/CompareAndSwap* call (a "direct"
//     cell), and every pointer-typed field passed by value to one (a "deref"
//     cell — the mmap'd io_uring doorbells in internal/blockdev are these:
//     the field holds a *uint32 into the shared ring).
//
//  2. Flag the plain accesses: for a direct cell, any selector use outside an
//     atomic call argument; for a deref cell, any explicit dereference
//     (*q.sqTail) — passing the pointer itself around is fine, reading
//     through it without atomic.Load is not.
//
// Fields only: local variables used with atomics are almost always
// thread-confined staging values, and flagging them drowns the signal.
var atomicCheckAnalyzer = &Analyzer{
	Name: "atomiccheck",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicCheck,
}

const (
	cellDirect = 1 << iota // &s.field handed to atomic functions
	cellDeref              // s.field is a pointer handed to atomic functions
)

// atomicCell records how a field participates in atomic calls.
type atomicCell struct {
	kinds   int
	example token.Pos // first atomic call, for the finding message
}

type atomicChecker struct {
	m     *Module
	cells map[*types.Var]*atomicCell
	// sanctioned marks selector nodes that appear inside an atomic call's
	// cell argument — the one place a direct cell's selector is legal.
	sanctioned map[ast.Node]bool
	findings   []Finding
}

func runAtomicCheck(ctx *Context) []Finding {
	c := &atomicChecker{
		m:          ctx.M,
		cells:      make(map[*types.Var]*atomicCell),
		sanctioned: make(map[ast.Node]bool),
	}
	for _, pkg := range ctx.M.Sorted {
		for _, fs := range functions(pkg) {
			c.collect(pkg, fs.decl.Body)
		}
	}
	for _, pkg := range ctx.M.Sorted {
		for _, fs := range functions(pkg) {
			c.flag(pkg, fs.decl.Body)
		}
	}
	return c.findings
}

// atomicCallCell returns the cell-argument expression of a sync/atomic call.
func atomicCallCell(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	name := fn.Name()
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			if len(call.Args) == 0 {
				return nil, false
			}
			return call.Args[0], true
		}
	}
	return nil, false
}

// fieldOf resolves e to a struct field variable, or nil.
func fieldOf(info *types.Info, e ast.Expr) (*types.Var, *ast.SelectorExpr) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	v := refVar(info, sel)
	if v == nil || !v.IsField() {
		return nil, nil
	}
	return v, sel
}

func (c *atomicChecker) collect(pkg *Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		arg, ok := atomicCallCell(pkg.Info, call)
		if !ok {
			return true
		}
		switch e := ast.Unparen(arg).(type) {
		case *ast.UnaryExpr: // atomic.AddUint64(&s.field, 1)
			if e.Op != token.AND {
				return true
			}
			if v, sel := fieldOf(pkg.Info, e.X); v != nil {
				c.cell(v, cellDirect, call.Pos())
				c.sanctioned[sel] = true
			}
		case *ast.SelectorExpr: // atomic.LoadUint32(q.sqHead) — pointer field
			if v, sel := fieldOf(pkg.Info, e); v != nil {
				if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
					c.cell(v, cellDeref, call.Pos())
					c.sanctioned[sel] = true
				}
			}
		}
		return true
	})
}

func (c *atomicChecker) cell(v *types.Var, kind int, pos token.Pos) {
	cell := c.cells[v]
	if cell == nil {
		cell = &atomicCell{example: pos}
		c.cells[v] = cell
	}
	cell.kinds |= kind
	if pos < cell.example {
		cell.example = pos
	}
}

func (c *atomicChecker) flag(pkg *Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.StarExpr:
			v, _ := fieldOf(pkg.Info, e.X)
			if v == nil {
				return true
			}
			if cell := c.cells[v]; cell != nil && cell.kinds&cellDeref != 0 {
				c.report(e.Pos(), fmt.Sprintf(
					"pointer field %s is accessed through sync/atomic (e.g. %s) but dereferenced plainly here — use atomic.Load/Store on it everywhere",
					v.Name(), c.where(cell.example)))
			}
		case *ast.SelectorExpr:
			if c.sanctioned[e] {
				return true
			}
			v := refVar(pkg.Info, e)
			if v == nil || !v.IsField() {
				return true
			}
			if cell := c.cells[v]; cell != nil && cell.kinds&cellDirect != 0 {
				c.report(e.Pos(), fmt.Sprintf(
					"field %s is updated through sync/atomic (e.g. %s) but read or written plainly here — every access to an atomic cell must go through sync/atomic",
					v.Name(), c.where(cell.example)))
			}
		}
		return true
	})
}

func (c *atomicChecker) where(pos token.Pos) string {
	p := c.m.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func (c *atomicChecker) report(pos token.Pos, msg string) {
	c.findings = append(c.findings, Finding{Pos: c.m.Position(pos), Analyzer: "atomiccheck", Message: msg})
}
