package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// poolcheck enforces get/put pairing for pooled buffers: every acquisition
// from a sync.Pool, a stripe.Pool, or a module getX/putX wrapper pair (the
// raid layer's getScratch/putScratch, getColBuf/putColBuf, getOpBuf/
// putOpBuf and erasure's getScratch/putScratch are discovered from the
// method pairs, not hardcoded) must reach a matching put on every return
// path of the function that acquired it. A leaked buffer silently degrades
// the steady-state zero-allocation property PR 2 pinned; worse, a pooled
// buffer stored into a struct field or captured by a `go` statement can be
// handed to another goroutine while a later Get reuses it — a data race no
// test reliably catches.
//
// The analysis is a forward dataflow over the shared CFG (cfg.go): the
// state is the set of live acquisitions (union join at merges, defers
// release for the whole function), narrowed along branch edges for the
// `if v := pool.Get(); v != nil` miss-then-allocate pattern, and filtered
// at loop back edges — an acquisition born inside a loop body that is still
// live when the iteration ends leaks once per iteration. Because breaks are
// real edges here, a hold escaping a loop through `break` is tracked to the
// function exit, which the old structured walk could not see. Intentional
// hand-offs — returning the value from a get-named wrapper is recognized
// automatically — are annotated with `//lint:escape <justification>` on the
// acquisition, store, or return line.
//
// Known approximations, chosen to keep the transfer functions simple and
// the findings high-confidence: a put is matched by callee name and
// argument, not by proving it returns to the same pool instance; values
// passed to ordinary calls are treated as borrows (the callee returns
// before the caller's next statement — true for this codebase's synchronous
// helpers, including fanOut, which blocks on its workers); only direct `go`
// statements count as goroutine capture.
//
// The async submission engine adds one exception to the borrow rule, and the
// analyzer enforces it (asyncSubmitScan): a buffer passed to Submit*Vec is
// NOT returned when the call does — the engine owns it until its completion
// is waited on, so any pool release between a submit and the batch's Wait
// harvest can hand memory still under kernel DMA to the next Get.
var poolCheckAnalyzer = &Analyzer{
	Name: "poolcheck",
	Doc:  "pooled buffers must be returned to their pool on every path",
	Run:  runPoolCheck,
}

func runPoolCheck(ctx *Context) []Finding {
	var out []Finding
	for _, pkg := range ctx.M.Sorted {
		for _, fs := range functions(pkg) {
			w := newPoolWalker(ctx, pkg, isGetterName(fs.decl.Name.Name))
			w.checkBody(fs.decl.Body)
			out = append(out, w.findings...)
			out = append(out, asyncSubmitScan(ctx.M, pkg, ctx.Dirs, fs.decl.Body)...)
			// Each function literal is its own analysis unit: it has its own
			// return paths, and its acquisitions must pair inside it.
			ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				lw := newPoolWalker(ctx, pkg, false)
				lw.checkBody(lit.Body)
				out = append(out, lw.findings...)
				out = append(out, asyncSubmitScan(ctx.M, pkg, ctx.Dirs, lit.Body)...)
				return true
			})
		}
	}
	return out
}

func isGetterName(name string) bool {
	return strings.HasPrefix(name, "get") || strings.HasPrefix(name, "Get")
}

// poolHold is one live acquisition, canonicalized by acquisition site so the
// solver's repeated transfers reuse the same object (see flowSpec.transfer).
type poolHold struct {
	primary *types.Var
	pos     token.Pos
}

// poolHolds maps every alias (including the primary) to its hold.
type poolHolds map[*types.Var]*poolHold

func (h poolHolds) clone() poolHolds {
	out := make(poolHolds, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func (h poolHolds) dropHold(hold *poolHold) {
	for k, v := range h {
		if v == hold {
			delete(h, k)
		}
	}
}

func (h poolHolds) live() []*poolHold {
	seen := make(map[*poolHold]bool)
	var out []*poolHold
	for _, v := range h {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// joinHolds is the union; on an alias conflict the earlier acquisition wins,
// keeping the join deterministic across solver visit orders.
func joinHolds(dst, src poolHolds) poolHolds {
	for k, v := range src {
		if old, ok := dst[k]; ok && old != v && old.pos <= v.pos {
			continue
		}
		dst[k] = v
	}
	return dst
}

func holdsEqual(a, b poolHolds) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

type reportKey struct {
	at   token.Pos
	hold *poolHold
}

type poolWalker struct {
	m        *Module
	pkg      *Package
	dirs     *Directives
	getterOK bool
	silent   bool // true while the solver iterates; reporting is replay-only
	findings []Finding
	reported map[reportKey]bool
	holdAt   map[token.Pos]*poolHold
}

func newPoolWalker(ctx *Context, pkg *Package, getterOK bool) *poolWalker {
	return &poolWalker{
		m:        ctx.M,
		pkg:      pkg,
		dirs:     ctx.Dirs,
		getterOK: getterOK,
		reported: make(map[reportKey]bool),
		holdAt:   make(map[token.Pos]*poolHold),
	}
}

// checkBody runs the dataflow over one unit: solve to the fixed point
// silently, then replay every reached block once over its converged entry
// state with reporting on, and close with the loop and fall-off obligations.
func (w *poolWalker) checkBody(body *ast.BlockStmt) {
	g := buildCFG(w.pkg.Info, body)
	w.silent = true
	res := solveFlow(g, flowSpec[poolHolds]{
		entry:    make(poolHolds),
		clone:    poolHolds.clone,
		join:     joinHolds,
		equal:    holdsEqual,
		transfer: w.transferBlock,
		edge:     w.edgeFilter,
	})
	w.silent = false
	for _, b := range g.blocks {
		if res.reached(b) {
			w.transferBlock(b, res.in[b].clone())
		}
	}
	for _, e := range g.backEdges {
		if !res.reached(e.from) {
			continue
		}
		for _, hold := range res.out[e.from].live() {
			if e.loop.contains(hold.pos) {
				w.report(e.loop.body.Rbrace, hold, fmt.Sprintf(
					"pooled value %s (acquired at line %d) is acquired inside a loop and not released each iteration",
					hold.primary.Name(), w.m.Position(hold.pos).Line))
			}
		}
	}
	if g.fallsOff != nil && res.reached(g.fallsOff) {
		w.reportLeaks(body.Rbrace, res.out[g.fallsOff])
	}
}

// transferBlock applies one basic block's statements to the held set.
func (w *poolWalker) transferBlock(b *cfgBlock, held poolHolds) poolHolds {
	for _, stmt := range b.stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			w.handleAssign(s, held)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				w.handleCall(call, held)
			}
		case *ast.DeferStmt:
			w.handleDefer(s.Call, held)
		case *ast.GoStmt:
			w.handleGo(s, held)
		case *ast.ReturnStmt:
			w.handleReturn(s, held)
		}
	}
	return held
}

// edgeFilter narrows state along branch edges (nil-checked acquisitions hold
// nothing on their nil branch) and retires loop-born holds at back edges —
// those are per-iteration obligations, reported against the loop itself.
func (w *poolWalker) edgeFilter(from, to *cfgBlock, branch int, back *cfgLoop, st poolHolds) poolHolds {
	if branch >= 0 {
		// `if v := pool.Get(); v != nil { ... }` holds nothing on the nil
		// branch — the classic miss-then-allocate pattern.
		if v, nonNilOnTrue, ok := nilCheckedVar(w.pkg.Info, from.cond); ok {
			if hold, isHeld := st[v]; isHeld && nonNilOnTrue == (branch == 1) {
				st.dropHold(hold)
			}
		}
	}
	if back != nil {
		for _, hold := range st.live() {
			if back.contains(hold.pos) {
				st.dropHold(hold)
			}
		}
	}
	return st
}

// report emits one finding unless an escape directive covers the finding
// line or the acquisition line.
func (w *poolWalker) report(at token.Pos, hold *poolHold, msg string) {
	if w.silent {
		return
	}
	key := reportKey{at: at, hold: hold}
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	pos := w.m.Position(at)
	for _, line := range []token.Position{pos, w.m.Position(hold.pos)} {
		if d := w.dirs.escapeAt(line.Filename, line.Line); d != nil {
			d.used = true
			return
		}
	}
	w.findings = append(w.findings, Finding{Pos: pos, Analyzer: "poolcheck", Message: msg})
}

func (w *poolWalker) reportLeaks(at token.Pos, held poolHolds) {
	for _, hold := range held.live() {
		w.report(at, hold, fmt.Sprintf(
			"pooled value %s (acquired at line %d) is not returned to its pool on this path",
			hold.primary.Name(), w.m.Position(hold.pos).Line))
	}
}

// holdOf returns the canonical hold for an acquisition site.
func (w *poolWalker) holdOf(v *types.Var, pos token.Pos) *poolHold {
	if h, ok := w.holdAt[pos]; ok {
		return h
	}
	h := &poolHold{primary: v, pos: pos}
	w.holdAt[pos] = h
	return h
}

// handleAssign processes acquisitions (v := pool.Get()), aliases
// (w := v.(*T)), escaping stores (x.f = v, m[k] = v), and discarded
// acquisitions (_ = pool.Get()).
func (w *poolWalker) handleAssign(s *ast.AssignStmt, held poolHolds) {
	// Escaping stores first: struct fields and indexed stores outlive the
	// function, which breaks the pool's exclusive-ownership contract.
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		rhsVar := identVar(w.pkg.Info, unwrapValue(s.Rhs[i]))
		if rhsVar == nil {
			continue
		}
		hold, isHeld := held[rhsVar]
		if !isHeld {
			continue
		}
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			w.report(lhs.Pos(), hold, fmt.Sprintf(
				"pooled value %s (acquired at line %d) is stored into a longer-lived structure",
				hold.primary.Name(), w.m.Position(hold.pos).Line))
			held.dropHold(hold) // ownership handed off; don't double-report
		}
	}
	if len(s.Rhs) != 1 {
		return
	}
	rhs := unwrapValue(s.Rhs[0])
	// Alias: x := heldVar (possibly through a type assertion/conversion).
	if v := identVar(w.pkg.Info, rhs); v != nil {
		if hold, ok := held[v]; ok {
			if lv := lhsVar(w.pkg.Info, s.Lhs[0]); lv != nil {
				held[lv] = hold
			}
		}
		return
	}
	// Acquisition.
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !w.isAcquisition(call) {
		return
	}
	lv := lhsVar(w.pkg.Info, s.Lhs[0])
	if lv == nil {
		w.report(call.Pos(), w.holdOf(nil, call.Pos()),
			"pooled value is acquired and immediately discarded")
		return
	}
	held[lv] = w.holdOf(lv, call.Pos())
}

// handleCall processes a statement-level call: releases drop their holds.
func (w *poolWalker) handleCall(call *ast.CallExpr, held poolHolds) {
	if !isReleaseCall(w.pkg.Info, call) {
		return
	}
	for _, arg := range call.Args {
		if v := identVar(w.pkg.Info, unwrapValue(arg)); v != nil {
			if hold, ok := held[v]; ok {
				held.dropHold(hold)
			}
		}
	}
}

// handleDefer treats a deferred release (directly or via a closure) as
// releasing for the whole function — defers run on every exit path.
func (w *poolWalker) handleDefer(call *ast.CallExpr, held poolHolds) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				w.handleCall(inner, held)
			}
			return true
		})
		return
	}
	w.handleCall(call, held)
}

// handleGo flags pooled values captured by a spawned goroutine: the caller
// may put the buffer back while the goroutine still uses it.
func (w *poolWalker) handleGo(s *ast.GoStmt, held poolHolds) {
	check := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if v := identVar(w.pkg.Info, n); v != nil {
				if hold, okHeld := held[v]; okHeld {
					w.report(n.Pos(), hold, fmt.Sprintf(
						"pooled value %s (acquired at line %d) is captured by a goroutine",
						hold.primary.Name(), w.m.Position(hold.pos).Line))
				}
			}
			return true
		})
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		check(lit.Body)
	}
	for _, arg := range s.Call.Args {
		check(arg)
	}
}

// handleReturn releases holds returned by get-named wrappers, flags other
// escapes, and reports leaks for everything still held.
func (w *poolWalker) handleReturn(s *ast.ReturnStmt, held poolHolds) {
	for _, res := range s.Results {
		v := identVar(w.pkg.Info, unwrapValue(res))
		if v == nil {
			continue
		}
		hold, ok := held[v]
		if !ok {
			continue
		}
		if !w.getterOK {
			w.report(res.Pos(), hold, fmt.Sprintf(
				"pooled value %s (acquired at line %d) escapes by return from a non-getter function",
				hold.primary.Name(), w.m.Position(hold.pos).Line))
		}
		held.dropHold(hold) // ownership transferred to the caller
	}
	w.reportLeaks(s.Pos(), held)
}

// asyncSubmitScan enforces the async engine's buffer-lifetime rule inside one
// function body: between a Submit*Vec call and the Wait that harvests it the
// engine owns the submitted buffers (the ring engine's kernel side may still
// be scattering into them), so releasing anything to a pool in that window
// can hand live I/O memory to a concurrent Get. The scan is source-order and
// deliberately coarse: any Completion.Wait counts as the harvest point (the
// codebase convention is a wait-all loop over the whole batch before any
// pooling), and any put-named release while submissions are pending is a
// finding. Function literals are their own units, matching the path walk.
func asyncSubmitScan(m *Module, pkg *Package, dirs *Directives, body *ast.BlockStmt) []Finding {
	var out []Finding
	var pending []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pkg.Info, call)
		if fn == nil {
			return true
		}
		switch {
		case isAsyncSubmitCall(fn):
			pending = append(pending, call.Pos())
		case fn.Name() == "Wait" && isAsyncCompletion(recvType(fn)):
			pending = pending[:0]
		case len(pending) > 0 && isReleaseCall(pkg.Info, call):
			pos := m.Position(call.Pos())
			sub := m.Position(pending[0])
			for _, line := range []token.Position{pos, sub} {
				if d := dirs.escapeAt(line.Filename, line.Line); d != nil {
					d.used = true
					return true
				}
			}
			out = append(out, Finding{Pos: pos, Analyzer: "poolcheck", Message: fmt.Sprintf(
				"pooled release while async submissions (first at line %d) are unharvested — Wait on every completion before pooling submitted buffers",
				sub.Line)})
		}
		return true
	})
	return out
}

// isAsyncSubmitCall matches the blockdev async submission surface.
func isAsyncSubmitCall(fn *types.Func) bool {
	name := fn.Name()
	if name != "SubmitReadVec" && name != "SubmitWriteVec" {
		return false
	}
	return strings.HasSuffix(typePkgPath(recvType(fn)), "/blockdev")
}

// nilCheckedVar matches a `v != nil` / `v == nil` condition, returning the
// variable and whether the non-nil case is the true branch.
func nilCheckedVar(info *types.Info, cond ast.Expr) (*types.Var, bool, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return nil, false, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil, false, false
	}
	v := identVar(info, x)
	if v == nil {
		return nil, false, false
	}
	return v, bin.Op == token.NEQ, true
}

func isNilIdent(info *types.Info, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// unwrapValue strips parens, type assertions and conversions so aliasing
// through `v.(*T)` or `T(v)` is tracked.
func unwrapValue(expr ast.Expr) ast.Expr {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.TypeAssertExpr:
			expr = e.X
		default:
			return e
		}
	}
}

// identVar resolves an expression to the local variable it names, nil
// otherwise.
func identVar(info *types.Info, n ast.Node) *types.Var {
	id, ok := n.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Defs[id].(*types.Var)
	return v
}

func lhsVar(info *types.Info, lhs ast.Expr) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return identVar(info, id)
}

// isAcquisition reports whether the call takes ownership of a pooled value:
// sync.Pool.Get, or a module get-named method whose receiver type also has
// the matching put-named method and which returns a single pointer-like
// value (so cache.Get's copy-out bool does not match).
func (w *poolWalker) isAcquisition(call *ast.CallExpr) bool {
	fn := staticCallee(w.pkg.Info, call)
	if fn == nil {
		return false
	}
	recv := recvType(fn)
	if recv == nil {
		return false
	}
	if fn.Name() == "Get" && typeIs(recv, "sync", "Pool") {
		return true
	}
	path := typePkgPath(recv)
	if path == "" || !w.m.inModule(path) {
		return false
	}
	putName, ok := pairedPutName(fn.Name())
	if !ok || !hasMethod(recv, putName) {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return false
	}
	switch sig.Results().At(0).Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Interface:
		return true
	}
	return false
}

func pairedPutName(getName string) (string, bool) {
	switch {
	case strings.HasPrefix(getName, "get"):
		return "put" + getName[len("get"):], true
	case strings.HasPrefix(getName, "Get"):
		return "Put" + getName[len("Get"):], true
	}
	return "", false
}

// isReleaseCall matches put-named calls (sync.Pool.Put, stripe.Pool.Put and
// the module's put* wrappers). The release is matched by name and argument,
// not by pool identity — see the package comment on approximations.
func isReleaseCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil {
		return false
	}
	return strings.HasPrefix(fn.Name(), "put") || strings.HasPrefix(fn.Name(), "Put")
}

// isTerminatingCall recognizes calls that never return.
func isTerminatingCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// The builtin resolves to *types.Builtin (or is absent from Uses);
		// a shadowing local func named panic resolves to *types.Func.
		if fun.Name == "panic" {
			switch info.Uses[fun].(type) {
			case nil, *types.Builtin:
				return true
			}
		}
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	full := fn.Pkg().Path() + "." + fn.Name()
	switch full {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	return false
}
