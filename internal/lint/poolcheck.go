package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// poolcheck enforces get/put pairing for pooled buffers: every acquisition
// from a sync.Pool, a stripe.Pool, or a module getX/putX wrapper pair (the
// raid layer's getScratch/putScratch, getColBuf/putColBuf, getOpBuf/
// putOpBuf and erasure's getScratch/putScratch are discovered from the
// method pairs, not hardcoded) must reach a matching put on every return
// path of the function that acquired it. A leaked buffer silently degrades
// the steady-state zero-allocation property PR 2 pinned; worse, a pooled
// buffer stored into a struct field or captured by a `go` statement can be
// handed to another goroutine while a later Get reuses it — a data race no
// test reliably catches.
//
// The analysis is a structured, path-sensitive walk over each function body
// (branches fork the held set, merges keep the union, defers release for the
// whole function). Intentional hand-offs — returning the value from a
// get-named wrapper is recognized automatically — are annotated with
// `//lint:escape <justification>` on the acquisition, store, or return line.
//
// Known approximations, chosen to keep the walk simple and the findings
// high-confidence: a put is matched by callee name and argument, not by
// proving it returns to the same pool instance; values passed to ordinary
// calls are treated as borrows (the callee returns before the caller's next
// statement — true for this codebase's synchronous helpers, including
// fanOut, which blocks on its workers); only direct `go` statements count as
// goroutine capture.
//
// The async submission engine adds one exception to the borrow rule, and the
// analyzer enforces it (asyncSubmitScan): a buffer passed to Submit*Vec is
// NOT returned when the call does — the engine owns it until its completion
// is waited on, so any pool release between a submit and the batch's Wait
// harvest can hand memory still under kernel DMA to the next Get.
var poolCheckAnalyzer = &Analyzer{
	Name: "poolcheck",
	Doc:  "pooled buffers must be returned to their pool on every path",
	Run:  runPoolCheck,
}

func runPoolCheck(ctx *Context) []Finding {
	var out []Finding
	for _, pkg := range ctx.M.Sorted {
		for _, fs := range functions(pkg) {
			w := &poolWalker{
				m:        ctx.M,
				pkg:      pkg,
				dirs:     ctx.Dirs,
				getterOK: isGetterName(fs.decl.Name.Name),
				reported: make(map[reportKey]bool),
			}
			w.walkBody(fs.decl.Body)
			out = append(out, w.findings...)
			out = append(out, asyncSubmitScan(ctx.M, pkg, ctx.Dirs, fs.decl.Body)...)
			// Each function literal is its own analysis unit: it has its own
			// return paths, and its acquisitions must pair inside it.
			ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				lw := &poolWalker{m: ctx.M, pkg: pkg, dirs: ctx.Dirs, reported: make(map[reportKey]bool)}
				lw.walkBody(lit.Body)
				out = append(out, lw.findings...)
				out = append(out, asyncSubmitScan(ctx.M, pkg, ctx.Dirs, lit.Body)...)
				return true
			})
		}
	}
	return out
}

func isGetterName(name string) bool {
	return strings.HasPrefix(name, "get") || strings.HasPrefix(name, "Get")
}

// poolHold is one live acquisition.
type poolHold struct {
	primary *types.Var
	pos     token.Pos
}

// poolHolds maps every alias (including the primary) to its hold.
type poolHolds map[*types.Var]*poolHold

func (h poolHolds) clone() poolHolds {
	out := make(poolHolds, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func (h poolHolds) dropHold(hold *poolHold) {
	for k, v := range h {
		if v == hold {
			delete(h, k)
		}
	}
}

func (h poolHolds) live() []*poolHold {
	seen := make(map[*poolHold]bool)
	var out []*poolHold
	for _, v := range h {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

type reportKey struct {
	at   token.Pos
	hold *poolHold
}

type poolWalker struct {
	m        *Module
	pkg      *Package
	dirs     *Directives
	getterOK bool
	findings []Finding
	reported map[reportKey]bool
}

func (w *poolWalker) walkBody(body *ast.BlockStmt) {
	held, terminated := w.walkStmts(body.List, make(poolHolds))
	if !terminated {
		w.reportLeaks(body.Rbrace, held)
	}
}

// report emits one finding unless an escape directive covers the finding
// line or the acquisition line.
func (w *poolWalker) report(at token.Pos, hold *poolHold, msg string) {
	key := reportKey{at: at, hold: hold}
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	pos := w.m.Position(at)
	for _, line := range []token.Position{pos, w.m.Position(hold.pos)} {
		if d := w.dirs.escapeAt(line.Filename, line.Line); d != nil {
			d.used = true
			return
		}
	}
	w.findings = append(w.findings, Finding{Pos: pos, Analyzer: "poolcheck", Message: msg})
}

func (w *poolWalker) reportLeaks(at token.Pos, held poolHolds) {
	for _, hold := range held.live() {
		w.report(at, hold, fmt.Sprintf(
			"pooled value %s (acquired at line %d) is not returned to its pool on this path",
			hold.primary.Name(), w.m.Position(hold.pos).Line))
	}
}

// walkStmts executes the list over the held set; it reports leaks at return
// statements and returns the fall-through state.
func (w *poolWalker) walkStmts(stmts []ast.Stmt, held poolHolds) (poolHolds, bool) {
	for _, stmt := range stmts {
		var terminated bool
		held, terminated = w.walkStmt(stmt, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (w *poolWalker) walkStmt(stmt ast.Stmt, held poolHolds) (poolHolds, bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, held)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			w.handleCall(call, held)
			if isTerminatingCall(w.pkg.Info, call) {
				return held, true
			}
		}
	case *ast.DeferStmt:
		w.handleDefer(s.Call, held)
	case *ast.GoStmt:
		w.handleGo(s, held)
	case *ast.ReturnStmt:
		w.handleReturn(s, held)
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; pairing across
		// labels is out of scope for the walk.
		return held, true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		bodyStart, elseStart := held.clone(), held.clone()
		// Nil-check narrowing: `if v := pool.Get(); v != nil { ... }` holds
		// nothing on the nil branch — the classic miss-then-allocate pattern.
		if v, nonNilInBody, isNilCheck := nilCheckedVar(w.pkg.Info, s.Cond); isNilCheck {
			if hold, isHeld := held[v]; isHeld {
				if nonNilInBody {
					elseStart.dropHold(hold)
				} else {
					bodyStart.dropHold(hold)
				}
			}
		}
		bodyHeld, bodyTerm := w.walkStmts(s.Body.List, bodyStart)
		elseHeld, elseTerm := elseStart, false
		if s.Else != nil {
			elseHeld, elseTerm = w.walkStmt(s.Else, elseStart)
		}
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return elseHeld, false
		case elseTerm:
			return bodyHeld, false
		default:
			return mergeHolds(bodyHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		inner, _ := w.walkStmts(s.Body.List, held.clone())
		w.flagLoopAcquisitions(s.Body.Rbrace, held, inner)
		return held, false
	case *ast.RangeStmt:
		inner, _ := w.walkStmts(s.Body.List, held.clone())
		w.flagLoopAcquisitions(s.Body.Rbrace, held, inner)
		return held, false
	case *ast.SwitchStmt:
		return w.walkClauses(s.Init, s.Body.List, held)
	case *ast.TypeSwitchStmt:
		return w.walkClauses(s.Init, s.Body.List, held)
	case *ast.SelectStmt:
		return w.walkClauses(nil, s.Body.List, held)
	}
	return held, false
}

// walkClauses handles switch/select bodies: each clause forks the held set;
// the result is the union of the fall-through clauses. Termination is only
// claimed when every clause terminates and a default exists.
func (w *poolWalker) walkClauses(init ast.Stmt, clauses []ast.Stmt, held poolHolds) (poolHolds, bool) {
	if init != nil {
		held, _ = w.walkStmt(init, held)
	}
	merged := poolHolds(nil)
	allTerminated := true
	hasDefault := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			}
		}
		clauseHeld, term := w.walkStmts(body, held.clone())
		if !term {
			allTerminated = false
			if merged == nil {
				merged = clauseHeld
			} else {
				merged = mergeHolds(merged, clauseHeld)
			}
		}
	}
	if allTerminated && hasDefault && len(clauses) > 0 {
		return held, true
	}
	if merged == nil {
		merged = held
	} else {
		merged = mergeHolds(merged, held)
	}
	return merged, false
}

// flagLoopAcquisitions reports holds created inside a loop body that are
// still live when an iteration falls through — each iteration leaks one.
func (w *poolWalker) flagLoopAcquisitions(at token.Pos, outer, inner poolHolds) {
	outerLive := make(map[*poolHold]bool)
	for _, h := range outer.live() {
		outerLive[h] = true
	}
	for _, h := range inner.live() {
		if !outerLive[h] {
			w.report(at, h, fmt.Sprintf(
				"pooled value %s (acquired at line %d) is acquired inside a loop and not released each iteration",
				h.primary.Name(), w.m.Position(h.pos).Line))
		}
	}
}

func mergeHolds(a, b poolHolds) poolHolds {
	for k, v := range b {
		a[k] = v
	}
	return a
}

// handleAssign processes acquisitions (v := pool.Get()), aliases
// (w := v.(*T)), escaping stores (x.f = v, m[k] = v), and discarded
// acquisitions (_ = pool.Get()).
func (w *poolWalker) handleAssign(s *ast.AssignStmt, held poolHolds) {
	// Escaping stores first: struct fields and indexed stores outlive the
	// function, which breaks the pool's exclusive-ownership contract.
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		rhsVar := identVar(w.pkg.Info, unwrapValue(s.Rhs[i]))
		if rhsVar == nil {
			continue
		}
		hold, isHeld := held[rhsVar]
		if !isHeld {
			continue
		}
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			w.report(lhs.Pos(), hold, fmt.Sprintf(
				"pooled value %s (acquired at line %d) is stored into a longer-lived structure",
				hold.primary.Name(), w.m.Position(hold.pos).Line))
			held.dropHold(hold) // ownership handed off; don't double-report
		}
	}
	if len(s.Rhs) != 1 {
		return
	}
	rhs := unwrapValue(s.Rhs[0])
	// Alias: x := heldVar (possibly through a type assertion/conversion).
	if v := identVar(w.pkg.Info, rhs); v != nil {
		if hold, ok := held[v]; ok {
			if lv := lhsVar(w.pkg.Info, s.Lhs[0]); lv != nil {
				held[lv] = hold
			}
		}
		return
	}
	// Acquisition.
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !w.isAcquisition(call) {
		return
	}
	lv := lhsVar(w.pkg.Info, s.Lhs[0])
	if lv == nil {
		hold := &poolHold{pos: call.Pos()}
		w.report(call.Pos(), hold, "pooled value is acquired and immediately discarded")
		return
	}
	held[lv] = &poolHold{primary: lv, pos: call.Pos()}
}

// handleCall processes a statement-level call: releases drop their holds.
func (w *poolWalker) handleCall(call *ast.CallExpr, held poolHolds) {
	if !isReleaseCall(w.pkg.Info, call) {
		return
	}
	for _, arg := range call.Args {
		if v := identVar(w.pkg.Info, unwrapValue(arg)); v != nil {
			if hold, ok := held[v]; ok {
				held.dropHold(hold)
			}
		}
	}
}

// handleDefer treats a deferred release (directly or via a closure) as
// releasing for the whole function — defers run on every exit path.
func (w *poolWalker) handleDefer(call *ast.CallExpr, held poolHolds) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				w.handleCall(inner, held)
			}
			return true
		})
		return
	}
	w.handleCall(call, held)
}

// handleGo flags pooled values captured by a spawned goroutine: the caller
// may put the buffer back while the goroutine still uses it.
func (w *poolWalker) handleGo(s *ast.GoStmt, held poolHolds) {
	check := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if v := identVar(w.pkg.Info, n); v != nil {
				if hold, okHeld := held[v]; okHeld {
					w.report(n.Pos(), hold, fmt.Sprintf(
						"pooled value %s (acquired at line %d) is captured by a goroutine",
						hold.primary.Name(), w.m.Position(hold.pos).Line))
				}
			}
			return true
		})
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		check(lit.Body)
	}
	for _, arg := range s.Call.Args {
		check(arg)
	}
}

// handleReturn releases holds returned by get-named wrappers, flags other
// escapes, and reports leaks for everything still held.
func (w *poolWalker) handleReturn(s *ast.ReturnStmt, held poolHolds) {
	for _, res := range s.Results {
		v := identVar(w.pkg.Info, unwrapValue(res))
		if v == nil {
			continue
		}
		hold, ok := held[v]
		if !ok {
			continue
		}
		if !w.getterOK {
			w.report(res.Pos(), hold, fmt.Sprintf(
				"pooled value %s (acquired at line %d) escapes by return from a non-getter function",
				hold.primary.Name(), w.m.Position(hold.pos).Line))
		}
		held.dropHold(hold) // ownership transferred to the caller
	}
	w.reportLeaks(s.Pos(), held)
}

// asyncSubmitScan enforces the async engine's buffer-lifetime rule inside one
// function body: between a Submit*Vec call and the Wait that harvests it the
// engine owns the submitted buffers (the ring engine's kernel side may still
// be scattering into them), so releasing anything to a pool in that window
// can hand live I/O memory to a concurrent Get. The scan is source-order and
// deliberately coarse: any Completion.Wait counts as the harvest point (the
// codebase convention is a wait-all loop over the whole batch before any
// pooling), and any put-named release while submissions are pending is a
// finding. Function literals are their own units, matching the path walk.
func asyncSubmitScan(m *Module, pkg *Package, dirs *Directives, body *ast.BlockStmt) []Finding {
	var out []Finding
	var pending []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pkg.Info, call)
		if fn == nil {
			return true
		}
		switch {
		case isAsyncSubmitCall(fn):
			pending = append(pending, call.Pos())
		case fn.Name() == "Wait" && isAsyncCompletion(recvType(fn)):
			pending = pending[:0]
		case len(pending) > 0 && isReleaseCall(pkg.Info, call):
			pos := m.Position(call.Pos())
			sub := m.Position(pending[0])
			for _, line := range []token.Position{pos, sub} {
				if d := dirs.escapeAt(line.Filename, line.Line); d != nil {
					d.used = true
					return true
				}
			}
			out = append(out, Finding{Pos: pos, Analyzer: "poolcheck", Message: fmt.Sprintf(
				"pooled release while async submissions (first at line %d) are unharvested — Wait on every completion before pooling submitted buffers",
				sub.Line)})
		}
		return true
	})
	return out
}

// isAsyncSubmitCall matches the blockdev async submission surface.
func isAsyncSubmitCall(fn *types.Func) bool {
	name := fn.Name()
	if name != "SubmitReadVec" && name != "SubmitWriteVec" {
		return false
	}
	return strings.HasSuffix(typePkgPath(recvType(fn)), "/blockdev")
}

// nilCheckedVar matches a `v != nil` / `v == nil` condition, returning the
// variable and whether the non-nil case is the if-body.
func nilCheckedVar(info *types.Info, cond ast.Expr) (*types.Var, bool, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return nil, false, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil, false, false
	}
	v := identVar(info, x)
	if v == nil {
		return nil, false, false
	}
	return v, bin.Op == token.NEQ, true
}

func isNilIdent(info *types.Info, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// unwrapValue strips parens, type assertions and conversions so aliasing
// through `v.(*T)` or `T(v)` is tracked.
func unwrapValue(expr ast.Expr) ast.Expr {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.TypeAssertExpr:
			expr = e.X
		default:
			return e
		}
	}
}

// identVar resolves an expression to the local variable it names, nil
// otherwise.
func identVar(info *types.Info, n ast.Node) *types.Var {
	id, ok := n.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Defs[id].(*types.Var)
	return v
}

func lhsVar(info *types.Info, lhs ast.Expr) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return identVar(info, id)
}

// isAcquisition reports whether the call takes ownership of a pooled value:
// sync.Pool.Get, or a module get-named method whose receiver type also has
// the matching put-named method and which returns a single pointer-like
// value (so cache.Get's copy-out bool does not match).
func (w *poolWalker) isAcquisition(call *ast.CallExpr) bool {
	fn := staticCallee(w.pkg.Info, call)
	if fn == nil {
		return false
	}
	recv := recvType(fn)
	if recv == nil {
		return false
	}
	if fn.Name() == "Get" && typeIs(recv, "sync", "Pool") {
		return true
	}
	path := typePkgPath(recv)
	if path == "" || !w.m.inModule(path) {
		return false
	}
	putName, ok := pairedPutName(fn.Name())
	if !ok || !hasMethod(recv, putName) {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return false
	}
	switch sig.Results().At(0).Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Interface:
		return true
	}
	return false
}

func pairedPutName(getName string) (string, bool) {
	switch {
	case strings.HasPrefix(getName, "get"):
		return "put" + getName[len("get"):], true
	case strings.HasPrefix(getName, "Get"):
		return "Put" + getName[len("Get"):], true
	}
	return "", false
}

// isReleaseCall matches put-named calls (sync.Pool.Put, stripe.Pool.Put and
// the module's put* wrappers). The release is matched by name and argument,
// not by pool identity — see the package comment on approximations.
func isReleaseCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil {
		return false
	}
	return strings.HasPrefix(fn.Name(), "put") || strings.HasPrefix(fn.Name(), "Put")
}

// isTerminatingCall recognizes calls that never return.
func isTerminatingCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" && info.Uses[fun] == nil {
			return true
		}
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	full := fn.Pkg().Path() + "." + fn.Name()
	switch full {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	return false
}
