package lint

// Shape and solver tests for the dataflow engine itself, on synthetic
// type-checked sources: branch edge ordering, loop back edges, terminating
// calls sealing paths, select-without-default having no fallthrough edge,
// and the reaching-definitions instance merging sites at joins.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildTestCFG type-checks src and returns the CFG of the named function.
func buildTestCFG(t *testing.T, src, name string) (*types.Info, *ast.FuncDecl, *cfg) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgtest.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("cfgtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return info, fd, buildCFG(info, fd.Body)
		}
	}
	t.Fatalf("no function %q in source", name)
	return nil, nil, nil
}

func TestCFGBranchEdges(t *testing.T) {
	src := `package cfgtest
func f(b bool) int {
	x := 1
	if b {
		x = 2
	} else {
		x = 3
	}
	return x
}`
	info, fd, g := buildTestCFG(t, src, "f")
	var cond *cfgBlock
	for _, b := range g.blocks {
		if b.cond != nil {
			if cond != nil {
				t.Fatalf("more than one conditional block in a single if")
			}
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no conditional block built for the if")
	}
	// succs[0] is the true branch, succs[1] the false branch — the contract
	// edge filters (poolcheck's nil-check narrowing) rely on.
	if len(cond.succs) != 2 {
		t.Fatalf("conditional block has %d successors, want 2", len(cond.succs))
	}
	if len(g.backEdges) != 0 {
		t.Errorf("if/else produced %d back edges, want 0", len(g.backEdges))
	}
	// The body ends in a return: the syntactic fall-off block exists but is
	// unreachable, which is what the analyzers' reached() guard tests.
	res := reachingDefs(g, info, unitParams(info, fd.Type, fd.Recv))
	if g.fallsOff != nil && res.reached(g.fallsOff) {
		t.Errorf("function ending in return must not reach the fall-off block")
	}
	if !res.reached(g.exit) {
		t.Errorf("exit should be reachable through the return")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	src := `package cfgtest
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	_, fd, g := buildTestCFG(t, src, "f")
	if len(g.backEdges) != 1 {
		t.Fatalf("for loop produced %d back edges, want 1", len(g.backEdges))
	}
	e := g.backEdges[0]
	if e.loop == nil {
		t.Fatal("back edge carries no loop")
	}
	// The loop body's statements are positionally inside the loop; the
	// enclosing function's first statement is not.
	var bodyPos, prePos token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok {
			bodyPos = fs.Body.List[0].Pos()
		}
		return true
	})
	prePos = fd.Body.List[0].Pos()
	if !e.loop.contains(bodyPos) {
		t.Errorf("loop should contain its body statement")
	}
	if e.loop.contains(prePos) {
		t.Errorf("loop should not contain the statement before it")
	}
}

func TestCFGTerminatingCallSealsPath(t *testing.T) {
	src := `package cfgtest
func f(x int) {
	_ = x
	panic("always")
}`
	info, fd, g := buildTestCFG(t, src, "f")
	res := reachingDefs(g, info, unitParams(info, fd.Type, fd.Recv))
	if g.fallsOff != nil && res.reached(g.fallsOff) {
		t.Errorf("a body ending in panic must not reach the fall-off block")
	}
}

func TestCFGSelectHasNoFallthroughEdge(t *testing.T) {
	// A select without default always runs one clause: no head→after edge,
	// unlike a switch without default. The reaching-definitions solve makes
	// the difference observable: x=1 cannot reach the return directly.
	src := `package cfgtest
func f(a, b chan int) int {
	x := 1
	select {
	case v := <-a:
		x = v
	case v := <-b:
		x = v + 1
	}
	return x
}`
	info, fd, g := buildTestCFG(t, src, "f")
	res := reachingDefs(g, info, unitParams(info, fd.Type, fd.Recv))
	if !res.reached(g.exit) {
		t.Fatal("exit unreachable")
	}
	x := findVar(t, info, "x")
	sites := res.in[g.exit][x]
	if len(sites) != 2 {
		t.Errorf("defs of x reaching return = %d, want 2 (one per clause; the initial x=1 is overwritten on every path)", len(sites))
	}
}

func TestReachingDefsMergeAtJoin(t *testing.T) {
	src := `package cfgtest
func f(b bool) int {
	x := 1
	if b {
		x = 2
	}
	return x
}`
	info, fd, g := buildTestCFG(t, src, "f")
	res := reachingDefs(g, info, unitParams(info, fd.Type, fd.Recv))
	x := findVar(t, info, "x")
	sites := res.in[g.exit][x]
	if len(sites) != 2 {
		t.Errorf("defs of x reaching return = %d, want 2 (x:=1 survives the else-less branch, x=2 joins it)", len(sites))
	}
	// The parameter is defined at entry: its site set is the entry marker.
	bvar := findVar(t, info, "b")
	if sites := res.in[g.exit][bvar]; len(sites) != 1 || !sites[nil] {
		t.Errorf("param b should carry the entry definition marker, got %v", sites)
	}
}

func findVar(t *testing.T, info *types.Info, name string) *types.Var {
	t.Helper()
	for _, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok && v.Name() == name {
			return v
		}
	}
	t.Fatalf("no variable %q in source", name)
	return nil
}
