package lint

// Control-flow graphs over go/ast function bodies: the shared substrate the
// dataflow analyzers (poolcheck, gocheck, ctxcheck) run on. The builder
// lowers Go's structured control flow to basic blocks with explicit edges —
// branch conditions keep their true/false successor order so analyzers can
// narrow state along an edge (poolcheck's nil-check narrowing), and loop
// back edges are tagged with their loop so per-iteration leaks can be
// reported at the loop's closing brace. Function literals are not entered:
// each literal body is its own analysis unit with its own CFG, matching the
// walkers' attribution rules.
//
// Approximations, shared by every client: goto ends its path (no analyzer
// invariant pairs resources across labels), and a select without a default
// is given no fall-through edge from its head — a clause always runs.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cfgBlock is one basic block: a maximal straight-line statement sequence.
// Compound statements never appear in stmts; range statements do (as the
// loop-head def of their key/value variables), and so do select comm
// statements (at the head of their clause's block).
type cfgBlock struct {
	id    int
	stmts []ast.Stmt
	// cond, when set, means the block ends branching on it: succs[0] is the
	// true edge, succs[1] the false edge.
	cond  ast.Expr
	succs []*cfgBlock
	preds []*cfgBlock
}

// cfgLoop is one for/range statement; membership is positional (a statement
// inside body's source range belongs to the loop).
type cfgLoop struct {
	body *ast.BlockStmt
}

func (l *cfgLoop) contains(pos token.Pos) bool {
	return l.body.Pos() <= pos && pos <= l.body.End()
}

// cfgEdge is one back edge, tagged with the loop it re-enters.
type cfgEdge struct {
	from, to *cfgBlock
	loop     *cfgLoop
}

// cfg is the control-flow graph of one function body. exit collects every
// return and the fall-off-the-end path; fallsOff is the block whose last
// statement precedes the closing brace (nil when the function cannot fall
// off), where end-of-function obligations are reported.
type cfg struct {
	body      *ast.BlockStmt
	blocks    []*cfgBlock
	entry     *cfgBlock
	exit      *cfgBlock
	loops     []*cfgLoop
	backEdges []cfgEdge
	fallsOff  *cfgBlock
}

// backLoop returns the loop of the from→to back edge, nil for forward edges.
func (g *cfg) backLoop(from, to *cfgBlock) *cfgLoop {
	for _, e := range g.backEdges {
		if e.from == from && e.to == to {
			return e.loop
		}
	}
	return nil
}

// loopFrame is one enclosing breakable statement during construction.
type loopFrame struct {
	label    string
	brk      *cfgBlock
	cont     *cfgBlock // nil for switch/select frames
	contBack *cfgLoop  // when continue's edge is itself the back edge (range)
	loop     *cfgLoop
}

type cfgBuilder struct {
	info   *types.Info
	g      *cfg
	cur    *cfgBlock
	frames []*loopFrame
}

// buildCFG lowers one function (or function literal) body.
func buildCFG(info *types.Info, body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{info: info, g: &cfg{body: body}}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.stmts(body.List)
	if b.cur != nil {
		b.g.fallsOff = b.cur
		b.edge(b.cur, b.g.exit)
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func (b *cfgBuilder) backEdge(from, to *cfgBlock, loop *cfgLoop) {
	b.edge(from, to)
	b.g.backEdges = append(b.g.backEdges, cfgEdge{from: from, to: to, loop: loop})
}

// seal ends the current path: subsequent statements land in a fresh block
// that, lacking the edge the caller chose not to add, is unreachable.
func (b *cfgBuilder) seal() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// A label names the next breakable statement; anything else just unwraps.
	label := ""
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			break
		}
		label = ls.Label.Name
		s = ls.Stmt
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, nil, s.Body.List, label)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Assign, s.Body.List, label)
	case *ast.SelectStmt:
		b.switchStmt(nil, nil, s.Body.List, label)
	case *ast.ReturnStmt:
		b.cur.stmts = append(b.cur.stmts, s)
		b.edge(b.cur, b.g.exit)
		b.seal()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.ExprStmt:
		b.cur.stmts = append(b.cur.stmts, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminatingCall(b.info, call) {
			b.seal()
		}
	default:
		b.cur.stmts = append(b.cur.stmts, s)
	}
}

func (b *cfgBuilder) push(f *loopFrame) { b.frames = append(b.frames, f) }
func (b *cfgBuilder) pop()              { b.frames = b.frames[:len(b.frames)-1] }

func (b *cfgBuilder) findFrame(label *ast.Ident, needCont bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if f := b.findFrame(s.Label, false); f != nil {
			b.edge(b.cur, f.brk)
		}
	case token.CONTINUE:
		if f := b.findFrame(s.Label, true); f != nil {
			if f.contBack != nil {
				b.backEdge(b.cur, f.cont, f.contBack)
			} else {
				b.edge(b.cur, f.cont)
			}
		}
	case token.FALLTHROUGH:
		// The edge to the next clause is added by switchStmt, which sees this
		// as the clause body's last statement; the path stays live there.
		return
	case token.GOTO:
		// Conservatively a path end; see the package comment.
	}
	b.seal()
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	condB := b.cur
	condB.cond = s.Cond
	thenB, elseB, afterB := b.newBlock(), b.newBlock(), b.newBlock()
	b.edge(condB, thenB) // true
	b.edge(condB, elseB) // false
	b.cur = thenB
	b.stmts(s.Body.List)
	b.edge(b.cur, afterB)
	b.cur = elseB
	if s.Else != nil {
		b.stmt(s.Else)
	}
	b.edge(b.cur, afterB)
	b.cur = afterB
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	loop := &cfgLoop{body: s.Body}
	b.g.loops = append(b.g.loops, loop)
	head := b.newBlock()
	b.edge(b.cur, head)
	bodyB, postB, afterB := b.newBlock(), b.newBlock(), b.newBlock()
	if s.Cond != nil {
		head.cond = s.Cond
		b.edge(head, bodyB)  // true
		b.edge(head, afterB) // false
	} else {
		b.edge(head, bodyB) // `for {`: after is reachable only via break
	}
	b.push(&loopFrame{label: label, brk: afterB, cont: postB, loop: loop})
	b.cur = bodyB
	b.stmts(s.Body.List)
	b.edge(b.cur, postB)
	b.pop()
	b.cur = postB
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.backEdge(b.cur, head, loop)
	b.cur = afterB
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	loop := &cfgLoop{body: s.Body}
	b.g.loops = append(b.g.loops, loop)
	head := b.newBlock()
	// The range statement itself sits in the head block: it (re)defines the
	// key/value variables on every iteration.
	head.stmts = append(head.stmts, s)
	b.edge(b.cur, head)
	bodyB, afterB := b.newBlock(), b.newBlock()
	b.edge(head, bodyB)
	b.edge(head, afterB) // the range may be empty or exhausted
	b.push(&loopFrame{label: label, brk: afterB, cont: head, contBack: loop, loop: loop})
	b.cur = bodyB
	b.stmts(s.Body.List)
	b.backEdge(b.cur, head, loop)
	b.pop()
	b.cur = afterB
}

// switchStmt lowers switch, type switch (assign != nil) and select
// (clauses are CommClauses): one head fanning out to a block per clause.
// Only a switch missing a default gets a head→after edge — a select blocks
// until some clause runs.
func (b *cfgBuilder) switchStmt(init, assign ast.Stmt, clauses []ast.Stmt, label string) {
	if init != nil {
		b.stmt(init)
	}
	if assign != nil {
		b.cur.stmts = append(b.cur.stmts, assign)
	}
	head := b.cur
	afterB := b.newBlock()
	b.push(&loopFrame{label: label, brk: afterB})
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	isSelect := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			isSelect = true
			if cc.Comm == nil {
				hasDefault = true
			}
		}
	}
	for i, c := range clauses {
		var body []ast.Stmt
		b.cur = blocks[i]
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			body = cc.Body
		}
		b.stmts(body)
		if n := len(body); n > 0 && i+1 < len(clauses) {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				b.edge(b.cur, blocks[i+1])
				b.seal()
			}
		}
		b.edge(b.cur, afterB)
	}
	b.pop()
	if !hasDefault && !isSelect {
		b.edge(head, afterB)
	}
	b.cur = afterB
}
