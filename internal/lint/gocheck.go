package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// gocheck enforces goroutine and admission-slot hygiene in the concurrent
// layers (blockserve, blockdev, raid, erasure) — the packages where an
// unjoined goroutine outlives Serve's shutdown or a leaked semaphore slot
// wedges the inflight limiter. Two rules, both on the shared CFG:
//
//   - Join/drain: every `go` statement needs a visible lifecycle. Either the
//     spawned body calls Done on a sync.WaitGroup whose Add dominates the
//     spawn (a must-dataflow: the Add must appear on every path reaching the
//     `go`, or Wait can return before the goroutine starts), or the body
//     sends on a channel the spawning function receives from (the registered
//     drain path of the collect-results pattern). The body is the literal's,
//     or the direct callee's for `go x.method()` — one level deep, matching
//     how the codebase writes its workers.
//
//   - Semaphore balance: a send on a `chan struct{}` acquires an admission
//     slot; every path from the acquire to the unit's exit (and around every
//     loop iteration) must release it — by receiving in the same function,
//     by a deferred receive, or by handing the slot to a spawned goroutine
//     that receives it. The state is the set of outstanding acquisitions
//     (union join); per-channel findings are deduplicated to the earliest
//     acquisition site, which is where a suppression goes when the release
//     legitimately lives in another function (the ring engine's completion
//     side releases what its submission side acquired).
var goCheckAnalyzer = &Analyzer{
	Name: "gocheck",
	Doc:  "goroutines need a join or drain path; semaphore slots must be released on every path",
	Run:  runGoCheck,
}

// goCheckScoped gates the analysis to the concurrent layers.
func goCheckScoped(importPath string) bool {
	for _, suffix := range []string{"/blockserve", "/blockdev", "/raid", "/erasure"} {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

func runGoCheck(ctx *Context) []Finding {
	c := &goChecker{m: ctx.M}
	for _, pkg := range ctx.M.Sorted {
		if !goCheckScoped(pkg.ImportPath) {
			continue
		}
		for _, fs := range functions(pkg) {
			for _, unit := range funcUnits(fs) {
				c.checkUnit(pkg, unit)
			}
		}
	}
	return c.findings
}

type goChecker struct {
	m        *Module
	graph    *callGraph // lazy: only built when a `go callee()` needs a body
	findings []Finding
}

func (c *goChecker) report(pos token.Pos, msg string) {
	c.findings = append(c.findings, Finding{Pos: c.m.Position(pos), Analyzer: "gocheck", Message: msg})
}

func (c *goChecker) checkUnit(pkg *Package, unit flowUnit) {
	g := buildCFG(pkg.Info, unit.body)
	c.checkJoins(pkg, unit, g)
	c.checkSemaphores(pkg, unit, g)
}

// ---- Rule 1: every go statement has a join or drain path ----

// addSet is the must-lattice: WaitGroups Added on every path so far. The
// solver only joins states that actually flow, so intersection over incoming
// edges is exactly "dominated by an Add".
type addSet map[*types.Var]bool

func (s addSet) clone() addSet {
	out := make(addSet, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

func addJoin(dst, src addSet) addSet {
	for v := range dst {
		if !src[v] {
			delete(dst, v)
		}
	}
	return dst
}

func addEqual(a, b addSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func (c *goChecker) checkJoins(pkg *Package, unit flowUnit, g *cfg) {
	transfer := func(b *cfgBlock, st addSet) addSet {
		for _, stmt := range b.stmts {
			c.addTransfer(pkg, stmt, st, nil)
		}
		return st
	}
	res := solveFlow(g, flowSpec[addSet]{
		entry:    make(addSet),
		clone:    addSet.clone,
		join:     addJoin,
		equal:    addEqual,
		transfer: transfer,
	})
	for _, b := range g.blocks {
		if !res.reached(b) {
			continue
		}
		st := res.in[b].clone()
		for _, stmt := range b.stmts {
			c.addTransfer(pkg, stmt, st, unit.body)
		}
	}
}

// addTransfer replays one statement: WaitGroup.Add calls grow the must-set,
// and (when checking) each go statement is judged against the current set.
func (c *goChecker) addTransfer(pkg *Package, stmt ast.Stmt, st addSet, checkIn *ast.BlockStmt) {
	inspectShallow(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if wg := waitGroupMethod(pkg.Info, call, "Add"); wg != nil {
				st[wg] = true
			}
		}
		return true
	})
	if gs, ok := stmt.(*ast.GoStmt); ok && checkIn != nil {
		c.checkGoStmt(pkg, checkIn, gs, st)
	}
}

// waitGroupMethod matches a sync.WaitGroup method call by name, resolving
// the receiver to the WaitGroup's variable or field identity.
func waitGroupMethod(info *types.Info, call *ast.CallExpr, name string) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok || !typeIs(selection.Recv(), "sync", "WaitGroup") {
		return nil
	}
	return refVar(info, sel.X)
}

// checkGoStmt applies the join/drain rule to one spawn.
func (c *goChecker) checkGoStmt(pkg *Package, enclosing *ast.BlockStmt, gs *ast.GoStmt, added addSet) {
	body := c.spawnedBody(pkg, gs)
	if body != nil {
		var doneVars []*types.Var
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if wg := waitGroupMethod(pkg.Info, call, "Done"); wg != nil {
					doneVars = append(doneVars, wg)
				}
			}
			return true
		})
		for _, wg := range doneVars {
			if added[wg] {
				return // joined: Add dominates the spawn, body Dones it
			}
		}
		if len(doneVars) > 0 {
			c.report(gs.Pos(), fmt.Sprintf(
				"goroutine calls %s.Done but no matching Add dominates this spawn — Wait can return before the goroutine runs",
				doneVars[0].Name()))
			return
		}
		if c.drains(pkg, enclosing, gs, body) {
			return
		}
	}
	c.report(gs.Pos(),
		"goroutine has no join or drain path: nothing Adds a WaitGroup its body Dones, and it sends on no channel this function receives from")
}

// spawnedBody resolves what the goroutine will run: the literal's body, or
// the direct callee's declaration (one level deep).
func (c *goChecker) spawnedBody(pkg *Package, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	callee := staticCallee(pkg.Info, gs.Call)
	if callee == nil {
		return nil
	}
	if c.graph == nil {
		c.graph = buildCallGraph(c.m)
	}
	if fs, ok := c.graph.nodes[callee]; ok {
		return fs.decl.Body
	}
	return nil
}

// drains reports whether the spawned body sends on a channel the enclosing
// function receives from (or ranges over) — the collect-results pattern.
func (c *goChecker) drains(pkg *Package, enclosing *ast.BlockStmt, gs *ast.GoStmt, body *ast.BlockStmt) bool {
	sent := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok {
			if v := refVar(pkg.Info, send.Chan); v != nil {
				sent[v] = true
			}
		}
		return true
	})
	if len(sent) == 0 {
		return false
	}
	drained := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if drained {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if n == gs {
				return false // the spawn itself is not its own drain
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && sent[refVar(pkg.Info, n.X)] {
				drained = true
			}
		case *ast.RangeStmt:
			if sent[refVar(pkg.Info, n.X)] {
				drained = true
			}
		}
		return true
	})
	return drained
}

// ---- Rule 2: semaphore slots are released on every path ----

// semHold is one outstanding chan-struct{} acquisition, canonical per site.
type semHold struct {
	ch  *types.Var
	pos token.Pos
}

type semState map[token.Pos]*semHold

func (s semState) clone() semState {
	out := make(semState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func semJoin(dst, src semState) semState {
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func semEqual(a, b semState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (c *goChecker) checkSemaphores(pkg *Package, unit flowUnit, g *cfg) {
	released := unitReleasedChans(pkg.Info, unit.body)
	holdAt := make(map[token.Pos]*semHold)
	transfer := func(b *cfgBlock, st semState) semState {
		for _, stmt := range b.stmts {
			if send, ok := stmt.(*ast.SendStmt); ok {
				if ch := structChanVar(pkg.Info, send.Chan); ch != nil && !released[ch] {
					hold := holdAt[send.Pos()]
					if hold == nil {
						hold = &semHold{ch: ch, pos: send.Pos()}
						holdAt[send.Pos()] = hold
					}
					st[hold.pos] = hold
				}
			}
			for _, ch := range stmtReceives(pkg.Info, stmt) {
				for k, v := range st {
					if v.ch == ch {
						delete(st, k)
					}
				}
			}
		}
		return st
	}
	res := solveFlow(g, flowSpec[semState]{
		entry:    make(semState),
		clone:    semState.clone,
		join:     semJoin,
		equal:    semEqual,
		transfer: transfer,
		edge: func(from, to *cfgBlock, branch int, back *cfgLoop, st semState) semState {
			if back != nil {
				for k, v := range st {
					if back.contains(v.pos) {
						delete(st, k)
					}
				}
			}
			return st
		},
	})

	// One finding per channel per unit, anchored at the earliest acquisition
	// — that line (or the one above it) is where a justified suppression for
	// an intentional cross-function hand-off belongs.
	type verdict struct {
		pos  token.Pos
		loop bool
	}
	leaks := make(map[*types.Var]*verdict)
	note := func(h *semHold, loop bool) {
		v := leaks[h.ch]
		if v == nil {
			v = &verdict{pos: h.pos, loop: loop}
			leaks[h.ch] = v
			return
		}
		v.pos = firstAcquirePos(v.pos, h.pos)
		v.loop = v.loop || loop
	}
	for _, e := range g.backEdges {
		if !res.reached(e.from) {
			continue
		}
		for _, h := range res.out[e.from] {
			if e.loop.contains(h.pos) {
				note(h, true)
			}
		}
	}
	if res.reached(g.exit) {
		for _, h := range res.in[g.exit] {
			note(h, false)
		}
	}
	var chans []*types.Var
	for ch := range leaks {
		chans = append(chans, ch)
	}
	// Deterministic report order across map iteration.
	for i := range chans {
		for j := i + 1; j < len(chans); j++ {
			if leaks[chans[j]].pos < leaks[chans[i]].pos {
				chans[i], chans[j] = chans[j], chans[i]
			}
		}
	}
	for _, ch := range chans {
		v := leaks[ch]
		if v.loop {
			c.report(v.pos, fmt.Sprintf(
				"semaphore slot on %s is acquired each loop iteration without a release on the iteration path", ch.Name()))
		} else {
			c.report(v.pos, fmt.Sprintf(
				"semaphore slot on %s is not released on every path to return — receive it back, defer the receive, or hand it to a releasing goroutine", ch.Name()))
		}
	}
}

// structChanVar resolves e to a chan struct{} variable — the codebase's
// counting-semaphore convention — or nil for any other channel or shape.
func structChanVar(info *types.Info, e ast.Expr) *types.Var {
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	ct, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return nil
	}
	st, ok := ct.Elem().Underlying().(*types.Struct)
	if !ok || st.NumFields() != 0 {
		return nil
	}
	return refVar(info, e)
}

// stmtReceives collects the chan-struct{} variables a statement receives
// from, not looking into nested function literals.
func stmtReceives(info *types.Info, stmt ast.Stmt) []*types.Var {
	var out []*types.Var
	inspectShallow(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if ch := structChanVar(info, n.X); ch != nil {
					out = append(out, ch)
				}
			}
		case *ast.RangeStmt:
			if ch := structChanVar(info, n.X); ch != nil {
				out = append(out, ch)
			}
		}
		return true
	})
	return out
}

// unitReleasedChans precomputes the channels this unit releases through a
// deferred receive or a spawned goroutine's receive: those discharge the
// obligation for the whole unit (defers run on every exit; the goroutine
// owns the slot after the hand-off), so their sends never become holds.
func unitReleasedChans(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	released := make(map[*types.Var]bool)
	collect := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				if ch := structChanVar(info, u.X); ch != nil {
					released[ch] = true
				}
			}
			return true
		})
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				collect(lit.Body)
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				collect(lit.Body)
			}
		}
		return true
	})
	return released
}
