package lint

// The analyzers are pinned by analysistest-style golden packages: each
// testdata directory is a small package loaded against the real module
// under a synthetic import path chosen so the analyzer's package scoping
// matches (cachecheck and lockcheck's bracketing rule look at ".../raid",
// geomcheck at the code-package basenames). Expected findings are `// want
// "regex"` comments on the offending line; the test fails on any missing
// or unexpected finding, so every analyzer carries at least one positive
// and one negative case.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	moduleOnce sync.Once
	moduleVal  *Module
	moduleErr  error
)

// testModule loads the real module once and shares it across tests; golden
// packages are grafted onto it with LoadDir.
func testModule(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		moduleVal, moduleErr = LoadModule(filepath.Join("..", ".."))
	})
	if moduleErr != nil {
		t.Fatalf("loading module: %v", moduleErr)
	}
	return moduleVal
}

func runGolden(t *testing.T, analyzerName, dir, importPath string) {
	t.Helper()
	m := testModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", dir), importPath)
	if err != nil {
		t.Fatalf("loading testdata/%s: %v", dir, err)
	}
	a := ByName(analyzerName)
	if a == nil {
		t.Fatalf("no analyzer %q", analyzerName)
	}
	res := Run(m, []*Analyzer{a}, []*Package{pkg}, Options{})
	checkWants(t, m, pkg, res.Findings)
}

type wantExpect struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants extracts the `// want "regex"` expectations of a package.
func parseWants(t *testing.T, m *Module, pkg *Package) []*wantExpect {
	t.Helper()
	var out []*wantExpect
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := m.Position(c.Pos())
				for _, match := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := match[1]
					if pat == "" {
						pat = match[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &wantExpect{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// checkWants matches findings against expectations one-to-one.
func checkWants(t *testing.T, m *Module, pkg *Package, findings []Finding) {
	t.Helper()
	wants := parseWants(t, m, pkg)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestIOCheckGolden(t *testing.T) {
	runGolden(t, "iocheck", "iocheck", "dcode/ztest/iocheck")
}

func TestPoolCheckGolden(t *testing.T) {
	runGolden(t, "poolcheck", "poolcheck", "dcode/ztest/poolcheck")
}

func TestLockCheckGolden(t *testing.T) {
	runGolden(t, "lockcheck", "lockcheck", "dcode/ztest/lockcheck/raid")
}

func TestCacheCheckGolden(t *testing.T) {
	runGolden(t, "cachecheck", "cachecheck", "dcode/ztest/cachecheck/raid")
}

func TestGeomCheckGolden(t *testing.T) {
	runGolden(t, "geomcheck", "geomcheck", "dcode/ztest/geom/core")
}

func TestGoCheckGolden(t *testing.T) {
	runGolden(t, "gocheck", "gocheck", "dcode/ztest/gocheck/blockserve")
}

func TestCtxCheckGolden(t *testing.T) {
	runGolden(t, "ctxcheck", "ctxcheck", "dcode/ztest/ctxcheck/blockserve")
}

func TestAtomicCheckGolden(t *testing.T) {
	runGolden(t, "atomiccheck", "atomiccheck", "dcode/ztest/atomiccheck")
}

// TestRepoIsClean pins the acceptance bar the CI lint job enforces: the
// full registry over the real module yields zero unsuppressed findings, and
// every active suppression carries a justification.
func TestRepoIsClean(t *testing.T) {
	m := testModule(t)
	res := Run(m, Registry(), m.ModulePackages(), Options{CheckDirectives: true})
	for _, f := range res.Findings {
		t.Errorf("repo finding: %s", f)
	}
	for _, d := range res.Directives {
		if d.Justification == "" {
			t.Errorf("%s:%d: suppression without justification", d.Pos.Filename, d.Pos.Line)
		}
	}
}

// TestSuppressionHandling covers the directive machinery end to end: a
// justified suppression silences its finding, a justification-free one
// still silences but is itself a finding, and an unused one is a finding.
func TestSuppressionHandling(t *testing.T) {
	m := testModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", "suppress"), "dcode/ztest/suppress")
	if err != nil {
		t.Fatalf("loading testdata/suppress: %v", err)
	}
	res := Run(m, Registry(), []*Package{pkg}, Options{CheckDirectives: true})

	if len(res.Suppressed) != 2 {
		t.Errorf("suppressed = %d findings, want 2 (both Flush findings)", len(res.Suppressed))
	}
	var missingJust, unused int
	for _, f := range res.Findings {
		switch {
		case f.Analyzer != "suppress":
			t.Errorf("unexpected non-suppress finding: %s", f)
		case strings.Contains(f.Message, "no justification"):
			missingJust++
		case strings.Contains(f.Message, "unused"):
			unused++
		default:
			t.Errorf("unexpected suppress finding: %s", f)
		}
	}
	if missingJust != 1 {
		t.Errorf("missing-justification findings = %d, want 1", missingJust)
	}
	if unused != 1 {
		t.Errorf("unused-directive findings = %d, want 1", unused)
	}

	// The -suppressions listing: every directive of the scope, in order,
	// with its target analyzer and whether it matched anything.
	if len(res.Directives) != 3 {
		t.Fatalf("directives = %d, want 3", len(res.Directives))
	}
	for i, d := range res.Directives {
		if d.Target() != "iocheck" {
			t.Errorf("directive %d target = %q, want iocheck", i, d.Target())
		}
	}
	if !res.Directives[0].Used() || !res.Directives[1].Used() {
		t.Errorf("flush suppressions should be marked used: %v %v",
			res.Directives[0].Used(), res.Directives[1].Used())
	}
	if res.Directives[2].Used() {
		t.Errorf("directive on a finding-free function should be unused")
	}
}

// TestFindingFormat pins the machine-readable report format.
func TestFindingFormat(t *testing.T) {
	f := Finding{Analyzer: "iocheck", Message: "boom"}
	f.Pos.Filename = "x/y.go"
	f.Pos.Line = 7
	if got, want := f.String(), "x/y.go:7: [iocheck] boom"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
	if ByName("nope") != nil {
		t.Errorf("ByName(nope) should be nil")
	}
	if len(Registry()) != 8 {
		t.Errorf("registry = %d analyzers, want 8", len(Registry()))
	}
	_ = fmt.Sprintf
}
