package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// cachecheck pins the element cache's coherence contract (PR 3): a stale
// cached cell silently corrupts later degraded reads, because reconstruction
// XORs whatever the cache returns. The discipline that keeps the argument
// local is: every operation that writes a device must, somewhere on the same
// operation, either write the new value through to the cache or invalidate
// the affected entries.
//
// The check computes, over the internal/raid call graph, which functions can
// reach a device write, and which can reach a cache write-through or
// invalidation (the Array's cache* helpers and the cache package's
// Put/Invalidate methods). A root — an exported function, or one nothing in
// the package calls — that reaches a write but no cache touch has no
// coherence story and is reported. Pure helpers (writeElem, writeColumn,
// storeStripe) stay silent as long as every root above them touches the
// cache; pre-cache paths are suppressed with lint:ignore cachecheck and a
// justification.
var cacheCheckAnalyzer = &Analyzer{
	Name: "cachecheck",
	Doc:  "device-writing raid operations must write through or invalidate the cache",
	Run:  runCacheCheck,
}

func runCacheCheck(ctx *Context) []Finding {
	g := buildCallGraph(ctx.M)

	type ccInfo struct {
		fs         funcScope
		inRaid     bool
		writePos   token.Pos
		hasWrite   bool
		touchCache bool
		callees    []*types.Func
		callPos    map[*types.Func]token.Pos
	}
	infos := make(map[*types.Func]*ccInfo)
	for _, pkg := range ctx.M.Sorted {
		inRaid := strings.HasSuffix(pkg.ImportPath, "/raid")
		for _, fs := range functions(pkg) {
			if fs.obj == nil {
				continue
			}
			info := &ccInfo{
				fs:      fs,
				inRaid:  inRaid,
				callees: g.callees[fs.obj],
				callPos: make(map[*types.Func]token.Pos),
			}
			ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, isWrite, isDev := deviceCall(ctx.M, pkg.Info, call); isDev && isWrite {
					if !info.hasWrite {
						info.writePos = call.Pos()
						info.hasWrite = true
					}
					return true
				}
				if isCacheTouch(ctx.M, pkg.Info, call) {
					info.touchCache = true
				}
				if callee := staticCallee(pkg.Info, call); callee != nil {
					if _, seen := info.callPos[callee]; !seen {
						info.callPos[callee] = call.Pos()
					}
				}
				return true
			})
			infos[fs.obj] = info
		}
	}

	// reaches-cache-touch, transitively (through any module package — the
	// cache methods themselves live outside raid).
	touches := make(map[*types.Func]bool)
	for fn, info := range infos {
		if info.touchCache {
			touches[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, info := range infos {
			if touches[fn] {
				continue
			}
			for _, callee := range info.callees {
				if touches[callee] {
					touches[fn] = true
					changed = true
					break
				}
			}
		}
	}

	// reaches-device-write with a witness chain, restricted to raid.
	type witness struct {
		callee *types.Func
		pos    token.Pos
	}
	writes := make(map[*types.Func]witness)
	for fn, info := range infos {
		if info.inRaid && info.hasWrite {
			writes[fn] = witness{pos: info.writePos}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, info := range infos {
			if !info.inRaid {
				continue
			}
			if _, done := writes[fn]; done {
				continue
			}
			for _, callee := range info.callees {
				ci := infos[callee]
				if ci == nil || !ci.inRaid {
					continue
				}
				if _, w := writes[callee]; w {
					writes[fn] = witness{callee: callee, pos: info.callPos[callee]}
					changed = true
					break
				}
			}
		}
	}

	called := make(map[*types.Func]bool)
	for _, info := range infos {
		if !info.inRaid {
			continue
		}
		for _, callee := range info.callees {
			called[callee] = true
		}
	}

	var out []Finding
	for fn, info := range infos {
		if !info.inRaid {
			continue
		}
		if _, w := writes[fn]; !w || touches[fn] {
			continue
		}
		if !ast.IsExported(fn.Name()) && called[fn] {
			continue
		}
		chain := funcDisplayName(fn)
		for cur, hops := fn, 0; hops < 8; hops++ {
			wt := writes[cur]
			if wt.callee == nil {
				chain += fmt.Sprintf(" -> device write at line %d", ctx.M.Position(wt.pos).Line)
				break
			}
			chain += " -> " + funcDisplayName(wt.callee)
			cur = wt.callee
		}
		out = append(out, Finding{
			Pos:      ctx.M.Position(info.fs.decl.Name.Pos()),
			Analyzer: "cachecheck",
			Message: fmt.Sprintf(
				"writes the device but never writes through or invalidates the element cache: %s", chain),
		})
	}
	return out
}

// isCacheTouch recognizes coherence-bearing cache operations: the Array's
// cache* helpers in raid (cachePut, cachePutStripe, cacheInvalidate,
// cacheInvalidateStripe, cacheInvalidateColumn, cacheFill) and the cache
// package's own write-through/invalidation methods.
func isCacheTouch(m *Module, info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	if m.inModule(fn.Pkg().Path()) && strings.HasPrefix(name, "cache") {
		return true
	}
	if strings.HasSuffix(fn.Pkg().Path(), "/cache") {
		return name == "Put" || name == "Clear" || strings.HasPrefix(name, "Invalidate")
	}
	return false
}
