package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// iocheck enforces the I/O-accounting invariant: every error produced by the
// device surface (blockdev Device implementations, the Instrumented wrapper,
// and module types exposing the same ReadAt/WriteAt surface, i.e. the raid
// array and its facade) must be consumed. A discarded device error silently
// skips failure marking, read-repair, and the per-disk load accounting the
// paper's evaluation rests on. It also covers the classic print-and-exit
// leak in tools: discarding the error of a write-side finisher —
// tabwriter/bufio Flush, or Close on a file opened for writing — loses
// buffered output and write-back failures after the data path succeeded.
//
// The async submission surface is part of the same invariant: a discarded
// Submit*Vec completion handle can never be waited on, so its device error
// (and, on the pool engine, the engine's ownership of the submitted buffers)
// is lost; a discarded Completion.Wait error is the deferred form of a
// discarded ReadAt/WriteAt error.
var ioCheckAnalyzer = &Analyzer{
	Name: "iocheck",
	Doc:  "device I/O and write-side finisher errors must be consumed",
	Run:  runIOCheck,
}

func runIOCheck(ctx *Context) []Finding {
	var out []Finding
	for _, pkg := range ctx.M.Sorted {
		for _, fs := range functions(pkg) {
			out = append(out, ioCheckFunc(ctx.M, pkg, fs)...)
		}
	}
	return out
}

func ioCheckFunc(m *Module, pkg *Package, fs funcScope) []Finding {
	var out []Finding
	writable := writableFiles(pkg.Info, fs.decl.Body)
	report := func(call *ast.CallExpr, how string) {
		msg, ok := ioCheckTarget(m, pkg.Info, call, writable)
		if !ok {
			return
		}
		out = append(out, Finding{
			Pos:      m.Position(call.Pos()),
			Analyzer: "iocheck",
			Message:  fmt.Sprintf("%s is %s", msg, how),
		})
	}
	ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
				report(call, "discarded")
			}
		case *ast.DeferStmt:
			report(stmt.Call, "discarded by defer (check it in a named-error defer or close explicitly)")
		case *ast.GoStmt:
			report(stmt.Call, "discarded by go statement")
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 || len(stmt.Lhs) == 0 {
				return true
			}
			call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, isIdent := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident); isIdent && id.Name == "_" {
				report(call, "assigned to the blank identifier")
			}
		}
		return true
	})
	return out
}

// ioCheckTarget classifies a call the analyzer cares about, returning a
// description of what produced the ignored error.
func ioCheckTarget(m *Module, info *types.Info, call *ast.CallExpr, writable map[*types.Var]bool) (string, bool) {
	// The Submit*Vec handle case first: the call returns *Completion, not an
	// error, so it would not survive the error gate below.
	if fn := staticCallee(info, call); fn != nil && strings.HasPrefix(fn.Name(), "Submit") {
		if tv, ok := info.Types[call]; ok && isAsyncCompletion(tv.Type) {
			return fmt.Sprintf("async completion handle from %s", funcDisplayName(fn)), true
		}
	}
	if !callReturnsError(info, call) {
		return "", false
	}
	if fn, _, ok := deviceCall(m, info, call); ok {
		return fmt.Sprintf("device I/O error from %s", funcDisplayName(fn)), true
	}
	// The blockserve wire surface: a discarded frame read/write error
	// desynchronizes the protocol stream — every frame after it is garbage.
	if fn := staticCallee(info, call); fn != nil && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), "/blockserve") &&
		(fn.Name() == "WriteFrame" || fn.Name() == "ReadFrame") {
		return fmt.Sprintf("wire frame error from %s", funcDisplayName(fn)), true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	recv := selection.Recv()
	switch sel.Sel.Name {
	case "Write":
		// A discarded net.Conn write error leaves the peer waiting on bytes
		// that never arrived, with no failure recorded on this side.
		if typeIs(recv, "net", "Conn") {
			return "connection write error", true
		}
	case "Wait":
		if isAsyncCompletion(recv) {
			return fmt.Sprintf("async completion error from %s", funcDisplayName(selection.Obj().(*types.Func))), true
		}
	case "Flush":
		if typeIs(recv, "text/tabwriter", "Writer") || typeIs(recv, "bufio", "Writer") {
			return fmt.Sprintf("buffered-output Flush error from %s", funcDisplayName(selection.Obj().(*types.Func))), true
		}
	case "Close":
		if !typeIs(recv, "os", "File") {
			return "", false
		}
		if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
			if v, isVar := info.Uses[id].(*types.Var); isVar && writable[v] {
				return "Close error on a file opened for writing", true
			}
		}
	}
	return "", false
}

// isAsyncCompletion reports whether t (through one pointer) is blockdev's
// async Completion handle.
func isAsyncCompletion(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "Completion" && strings.HasSuffix(typePkgPath(t), "/blockdev")
}

// callReturnsError reports whether the call's last result is an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// writableFiles collects the local variables bound to os.Create/os.OpenFile
// results inside body: files whose Close error reports write-back failures.
func writableFiles(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		if fn.Name() != "Create" && fn.Name() != "OpenFile" {
			return true
		}
		if id, isIdent := assign.Lhs[0].(*ast.Ident); isIdent {
			var v *types.Var
			if obj, ok := info.Defs[id].(*types.Var); ok {
				v = obj
			} else if obj, ok := info.Uses[id].(*types.Var); ok {
				v = obj
			}
			if v != nil {
				out[v] = true
			}
		}
		return true
	})
	return out
}
