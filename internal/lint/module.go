// Package lint is the project's static-analysis engine: a stdlib-only
// (go/ast + go/parser + go/types, no x/tools) loader and analyzer registry
// that mechanically enforces the engine's cross-cutting invariants — device
// I/O error accounting, pool get/put pairing, lock bracketing and ordering,
// cache write-through coherence, and code-geometry hygiene. cmd/dcodelint is
// the CLI; DESIGN.md §7 maps each analyzer to the invariant it pins.
//
// The loader type-checks the module's non-test packages from source in
// dependency order, resolving standard-library imports through the
// toolchain's export data (go/importer). Test files are excluded on purpose:
// the analyzers guard production invariants, and the analyzers themselves
// are pinned by golden-file self-tests over testdata packages instead.
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module (or an extra package the
// golden-test harness loaded against it).
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*ast.File
	Filenames  []string
	Types      *types.Package
	Info       *types.Info
	Extra      bool // loaded by LoadDir, not part of the module walk

	imports []string
}

// Module is a loaded, fully type-checked module.
type Module struct {
	Path string // module path from go.mod
	Root string // absolute module root directory
	Fset *token.FileSet
	Pkgs map[string]*Package // by import path
	// Sorted holds the packages in dependency (topological) order, extras
	// appended in load order.
	Sorted []*Package

	std types.Importer
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)\s*$`)

// LoadModule parses and type-checks every non-test package under root.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	match := moduleLineRE.FindSubmatch(gomod)
	if match == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	m := &Module{
		Path: string(match[1]),
		Root: root,
		Fset: token.NewFileSet(),
		Pkgs: make(map[string]*Package),
		std:  importer.Default(),
	}

	if err := m.walk(root); err != nil {
		return nil, err
	}
	order, err := m.topoSort()
	if err != nil {
		return nil, err
	}
	for _, pkg := range order {
		if err := m.check(pkg); err != nil {
			return nil, err
		}
		m.Sorted = append(m.Sorted, pkg)
	}
	return m, nil
}

// walk parses every package directory under root into m.Pkgs.
func (m *Module) walk(root string) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		pkg, err := m.parseDir(path)
		if err != nil {
			return err
		}
		if pkg != nil {
			m.Pkgs[pkg.ImportPath] = pkg
		}
		return nil
	})
}

// parseDir parses the non-test Go files of one directory; it returns nil if
// the directory holds none.
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	importPath := m.Path
	if rel != "." {
		importPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		full := filepath.Join(dir, fn)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if buildExcluded(f) {
			continue
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
		pkg.Name = f.Name.Name
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if m.inModule(p) {
				pkg.imports = append(pkg.imports, p)
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

func (m *Module) inModule(importPath string) bool {
	return importPath == m.Path || strings.HasPrefix(importPath, m.Path+"/")
}

// buildExcluded reports whether a file's //go:build constraint rules it out
// on the host platform. The loader type-checks one concrete build of the
// module — the host's, like the compiler — so platform-variant files (e.g.
// the preadv/pwritev syscall path and its portable fallback) don't collide
// as duplicate declarations. Only explicit //go:build lines are consulted;
// this module does not use filename-implied constraints.
func buildExcluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // only comments above the package clause can constrain
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false
			}
			return !expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH
			})
		}
	}
	return false
}

// topoSort orders the module packages so every package follows its imports.
func (m *Module) topoSort() ([]*Package, error) {
	paths := make([]string, 0, len(m.Pkgs))
	for p := range m.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var order []*Package
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		pkg := m.Pkgs[path]
		for _, dep := range pkg.imports {
			if _, ok := m.Pkgs[dep]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no Go files", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Import implements types.Importer: module packages resolve to their
// already-checked types, everything else to the toolchain's export data.
func (m *Module) Import(path string) (*types.Package, error) {
	if pkg, ok := m.Pkgs[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import %s before it was checked", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// check type-checks one parsed package.
func (m *Module) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(pkg.ImportPath, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// LoadDir parses and type-checks one extra directory (e.g. a golden testdata
// package) against the module and registers it under importPath. Test files
// are included here — golden packages are allowed to look like anything.
func (m *Module) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := m.Pkgs[importPath]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, Extra: true}
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") {
			continue
		}
		full := filepath.Join(dir, fn)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if buildExcluded(f) {
			continue
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
		pkg.Name = f.Name.Name
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if err := m.check(pkg); err != nil {
		return nil, err
	}
	m.Pkgs[importPath] = pkg
	m.Sorted = append(m.Sorted, pkg)
	return pkg, nil
}

// ModulePackages returns the non-extra packages in dependency order.
func (m *Module) ModulePackages() []*Package {
	var out []*Package
	for _, p := range m.Sorted {
		if !p.Extra {
			out = append(out, p)
		}
	}
	return out
}

// Position resolves a node position against the module's file set.
func (m *Module) Position(pos token.Pos) token.Position { return m.Fset.Position(pos) }
