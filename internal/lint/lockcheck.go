package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockcheck pins the engine's two locking invariants.
//
// Ordering: the array's mutexes form ranked classes — opMu (0, the array
// op gate) before the per-stripe locks (1), before ordinary leaf mutexes
// (2: the journal ring, cache shards, plan memo, local collectors), with
// failMu (3) innermost: the failure-set accessors are tiny critical
// sections that must never call back out into the engine. Acquiring a
// class of lower rank than one already held — directly, or transitively
// through a callee — is a potential deadlock cycle and is reported.
//
// Bracketing: every device write in internal/raid must happen under a
// per-stripe lock (the data path, which holds opMu shared and serializes
// per stripe) or under opMu held exclusively (maintenance: FailDisk,
// Rebuild, Scrub — which excludes the whole data path). The check walks
// writes and call edges with the held set and propagates the obligation
// up the call graph; an exported (or uncalled) function from which an
// unbracketed write is reachable is reported with the witness chain.
// Construction-time writes that run before the array is published are the
// intended suppression case (lint:ignore lockcheck with justification).
//
// Closures are attributed to their enclosing declaration: the fan-out
// workers run while their spawner blocks, so the spawner's held locks are
// exactly the constraints the workers inherit.
var lockCheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "lock ordering (opMu < stripe < leaf < failMu) and write bracketing",
	Run:  runLockCheck,
}

const (
	rankOpMu   = 0
	rankStripe = 1
	rankLeaf   = 2
	rankFail   = 3
)

func lockRank(class string) int {
	switch class {
	case "opMu":
		return rankOpMu
	case "stripe":
		return rankStripe
	case "failMu":
		return rankFail
	}
	return rankLeaf
}

func lockRankName(rank int) string {
	switch rank {
	case rankOpMu:
		return "opMu"
	case rankStripe:
		return "per-stripe"
	case rankLeaf:
		return "leaf"
	}
	return "failMu"
}

// lockState tracks one held class.
type lockState struct {
	count     int
	exclusive bool
}

// lockCallSite is one module-internal call edge with the held set at the
// moment of the call.
type lockCallSite struct {
	callee      *types.Func
	pos         token.Pos
	maxHeldRank int // -1 when nothing is held
	protected   bool
}

// lockFuncInfo is the per-function walk summary.
type lockFuncInfo struct {
	fs           funcScope
	inRaid       bool
	acquires     map[string]bool
	callSites    []lockCallSite
	unprotWrite  token.Pos
	hasUnprotPos bool
}

func runLockCheck(ctx *Context) []Finding {
	var out []Finding
	g := buildCallGraph(ctx.M)
	infos := make(map[*types.Func]*lockFuncInfo)
	for _, pkg := range ctx.M.Sorted {
		inRaid := strings.HasSuffix(pkg.ImportPath, "/raid")
		for _, fs := range functions(pkg) {
			lw := &lockWalker{
				m:     ctx.M,
				pkg:   pkg,
				info:  &lockFuncInfo{fs: fs, inRaid: inRaid, acquires: make(map[string]bool)},
				held:  make(map[string]*lockState),
				graph: g,
			}
			lw.stripeVars = collectStripeVars(pkg.Info, fs.decl.Body)
			ast.Inspect(fs.decl.Body, lw.visit)
			out = append(out, lw.findings...)
			if fs.obj != nil {
				infos[fs.obj] = lw.info
			}
		}
	}
	out = append(out, transitiveOrderFindings(ctx.M, infos)...)
	out = append(out, bracketFindings(ctx.M, infos)...)
	return out
}

type lockWalker struct {
	m          *Module
	pkg        *Package
	info       *lockFuncInfo
	held       map[string]*lockState
	stripeVars map[*types.Var]bool
	graph      *callGraph
	findings   []Finding
}

func (lw *lockWalker) visit(n ast.Node) bool {
	if _, ok := n.(*ast.DeferStmt); ok {
		// Deferred unlocks run at function exit: the lock stays held for the
		// remainder of the walk, which is exactly the deferred semantics.
		return false
	}
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	if class, op, isLock := lw.classifyLockOp(call); isLock {
		lw.handleLockOp(call, class, op)
		return true
	}
	if _, isWrite, isDev := deviceCall(lw.m, lw.pkg.Info, call); isDev {
		if isWrite && lw.info.inRaid && !lw.protected() && !lw.info.hasUnprotPos {
			lw.info.unprotWrite = call.Pos()
			lw.info.hasUnprotPos = true
		}
		return true
	}
	if callee := staticCallee(lw.pkg.Info, call); callee != nil {
		if _, inModule := lw.graph.nodes[callee]; inModule {
			lw.info.callSites = append(lw.info.callSites, lockCallSite{
				callee:      callee,
				pos:         call.Pos(),
				maxHeldRank: lw.maxHeldRank(),
				protected:   lw.protected(),
			})
		}
	}
	return true
}

func (lw *lockWalker) handleLockOp(call *ast.CallExpr, class, op string) {
	switch op {
	case "Lock", "RLock":
		if max := lw.maxHeldRank(); max >= 0 && lockRank(class) < max {
			lw.findings = append(lw.findings, Finding{
				Pos:      lw.m.Position(call.Pos()),
				Analyzer: "lockcheck",
				Message: fmt.Sprintf(
					"lock ordering violation: %s lock (rank %d) acquired while holding a %s lock (rank %d); the discipline is opMu < per-stripe < leaf < failMu",
					lockRankName(lockRank(class)), lockRank(class), lockRankName(max), max),
			})
		}
		st := lw.held[class]
		if st == nil {
			st = &lockState{}
			lw.held[class] = st
		}
		st.count++
		st.exclusive = op == "Lock"
		lw.info.acquires[class] = true
	case "Unlock", "RUnlock":
		if st := lw.held[class]; st != nil {
			st.count--
			if st.count <= 0 {
				delete(lw.held, class)
			}
		}
	}
}

func (lw *lockWalker) maxHeldRank() int {
	max := -1
	for class, st := range lw.held {
		if st.count > 0 && lockRank(class) > max {
			max = lockRank(class)
		}
	}
	return max
}

// protected reports whether the current point satisfies the write bracket:
// a per-stripe lock, or opMu held exclusively.
func (lw *lockWalker) protected() bool {
	if st := lw.held["stripe"]; st != nil && st.count > 0 {
		return true
	}
	st := lw.held["opMu"]
	return st != nil && st.count > 0 && st.exclusive
}

// classifyLockOp recognizes Lock/RLock/Unlock/RUnlock on a sync mutex and
// names its class: the field name (opMu, failMu, mu, ...), with anything
// derived from the per-stripe lock table (lockStripe results, stripeLocks
// elements) normalized to "stripe".
func (lw *lockWalker) classifyLockOp(call *ast.CallExpr) (class, op string, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection, selOK := lw.pkg.Info.Selections[sel]
	if !selOK || !isMutexType(deref(selection.Recv())) {
		return "", "", false
	}
	return lw.lockClassOf(sel.X), op, true
}

func (lw *lockWalker) lockClassOf(expr ast.Expr) string {
	name := ""
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.IndexExpr:
		return lw.lockClassOf(e.X)
	case *ast.Ident:
		if v, isVar := lw.pkg.Info.Uses[e].(*types.Var); isVar && lw.stripeVars[v] {
			return "stripe"
		}
		name = e.Name
	case *ast.CallExpr:
		if fn := staticCallee(lw.pkg.Info, e); fn != nil {
			name = fn.Name()
		}
	case *ast.UnaryExpr:
		return lw.lockClassOf(e.X)
	}
	if strings.Contains(strings.ToLower(name), "stripe") {
		return "stripe"
	}
	return name
}

// collectStripeVars finds the locals bound to lockStripe results, so
// `mu := a.lockStripe(si); mu.Lock()` classifies as the stripe class.
func collectStripeVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || !strings.Contains(strings.ToLower(fn.Name()), "stripe") {
			return true
		}
		if id, isIdent := assign.Lhs[0].(*ast.Ident); isIdent {
			if v, isVar := info.Defs[id].(*types.Var); isVar {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// transitiveOrderFindings propagates each function's acquired classes up the
// call graph and reports call sites that may acquire a lower rank than the
// caller already holds.
func transitiveOrderFindings(m *Module, infos map[*types.Func]*lockFuncInfo) []Finding {
	acq := make(map[*types.Func]map[string]bool, len(infos))
	for fn, info := range infos {
		classes := make(map[string]bool, len(info.acquires))
		for c := range info.acquires {
			classes[c] = true
		}
		acq[fn] = classes
	}
	for changed := true; changed; {
		changed = false
		for fn, info := range infos {
			for _, cs := range info.callSites {
				for c := range acq[cs.callee] {
					if !acq[fn][c] {
						acq[fn][c] = true
						changed = true
					}
				}
			}
		}
	}
	var out []Finding
	for _, info := range infos {
		for _, cs := range info.callSites {
			if cs.maxHeldRank < 0 {
				continue
			}
			worst := -1
			for c := range acq[cs.callee] {
				if r := lockRank(c); worst < 0 || r < worst {
					worst = r
				}
			}
			if worst >= 0 && worst < cs.maxHeldRank {
				out = append(out, Finding{
					Pos:      m.Position(cs.pos),
					Analyzer: "lockcheck",
					Message: fmt.Sprintf(
						"call to %s may acquire a %s lock (rank %d) while holding a %s lock (rank %d)",
						funcDisplayName(cs.callee), lockRankName(worst), worst,
						lockRankName(cs.maxHeldRank), cs.maxHeldRank),
				})
			}
		}
	}
	return out
}

// bracketFindings propagates the unbracketed-device-write obligation through
// unprotected call edges inside internal/raid and reports the reachable
// roots (exported functions and functions nothing in the package calls).
func bracketFindings(m *Module, infos map[*types.Func]*lockFuncInfo) []Finding {
	type witness struct {
		callee *types.Func
		pos    token.Pos
	}
	needs := make(map[*types.Func]witness)
	for fn, info := range infos {
		if info.inRaid && info.hasUnprotPos {
			needs[fn] = witness{pos: info.unprotWrite}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, info := range infos {
			if !info.inRaid {
				continue
			}
			if _, done := needs[fn]; done {
				continue
			}
			for _, cs := range info.callSites {
				if cs.protected {
					continue
				}
				calleeInfo := infos[cs.callee]
				if calleeInfo == nil || !calleeInfo.inRaid {
					continue
				}
				if _, unmet := needs[cs.callee]; unmet {
					needs[fn] = witness{callee: cs.callee, pos: cs.pos}
					changed = true
					break
				}
			}
		}
	}
	called := make(map[*types.Func]bool)
	for _, info := range infos {
		if !info.inRaid {
			continue
		}
		for _, cs := range info.callSites {
			called[cs.callee] = true
		}
	}
	var out []Finding
	for fn, info := range infos {
		if !info.inRaid {
			continue
		}
		if _, unmet := needs[fn]; !unmet {
			continue
		}
		if !ast.IsExported(fn.Name()) && called[fn] {
			continue
		}
		// Build the witness chain for the message.
		chain := funcDisplayName(fn)
		for cur, hops := fn, 0; hops < 8; hops++ {
			wt := needs[cur]
			if wt.callee == nil {
				chain += fmt.Sprintf(" -> device write at line %d", m.Position(wt.pos).Line)
				break
			}
			chain += " -> " + funcDisplayName(wt.callee)
			cur = wt.callee
		}
		out = append(out, Finding{
			Pos:      m.Position(info.fs.decl.Name.Pos()),
			Analyzer: "lockcheck",
			Message: fmt.Sprintf(
				"device write reachable without a per-stripe lock or exclusive opMu: %s", chain),
		})
	}
	return out
}
