package lint

// Suppression directives. The suite has exactly one machine-readable syntax,
// and justification text is mandatory — a suppression that does not say why
// it exists is itself a finding:
//
//	//lint:ignore <analyzer> <justification>
//	//lint:escape <justification>
//
// lint:ignore silences the named analyzer's findings on the directive's line
// (a directive on its own line covers the line below it, so it can sit above
// the statement it excuses). lint:escape is poolcheck's hand-off marker: it
// declares that the pooled value acquired or stored on that line
// intentionally outlives the function (for example, cache entries that live
// in the shard map until eviction). Both kinds are listed by
// `dcodelint -suppressions` so CI logs every active exemption, and a
// directive that matches no finding is reported as unused.

import (
	"go/token"
	"sort"
	"strings"
)

// Directive is one parsed suppression comment.
type Directive struct {
	Pos           token.Position
	Kind          string // "ignore" or "escape"
	Analyzer      string // for "ignore": the analyzer it silences
	Justification string

	used bool
}

// Target names the analyzer the directive silences.
func (d *Directive) Target() string {
	if d.Kind == "ignore" {
		return d.Analyzer
	}
	return "poolcheck"
}

// Used reports whether any finding (or poolcheck escape site) matched the
// directive during the run.
func (d *Directive) Used() bool { return d.used }

// Directives indexes every directive of the scope by file and line.
type Directives struct {
	byLine map[string]map[int][]*Directive
	all    []*Directive
}

// collectDirectives parses the lint: comments of the scope packages. A
// directive registers on its own line and on the following line, so both
// trailing-comment and line-above placements work.
func collectDirectives(m *Module, scope []*Package) *Directives {
	ds := &Directives{byLine: make(map[string]map[int][]*Directive)}
	for _, pkg := range scope {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, "lint:") {
						continue
					}
					d := parseDirective(m.Position(c.Pos()), strings.TrimPrefix(text, "lint:"))
					if d == nil {
						continue
					}
					ds.all = append(ds.all, d)
					fileLines := ds.byLine[d.Pos.Filename]
					if fileLines == nil {
						fileLines = make(map[int][]*Directive)
						ds.byLine[d.Pos.Filename] = fileLines
					}
					fileLines[d.Pos.Line] = append(fileLines[d.Pos.Line], d)
					fileLines[d.Pos.Line+1] = append(fileLines[d.Pos.Line+1], d)
				}
			}
		}
	}
	sort.Slice(ds.all, func(i, j int) bool {
		a, b := ds.all[i].Pos, ds.all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return ds
}

// parseDirective parses the text after "lint:". Unknown kinds are ignored
// (they are not this tool's namespace); known kinds always produce a
// directive, even malformed ones, so Run can flag missing justifications.
func parseDirective(pos token.Position, text string) *Directive {
	kind, rest, _ := strings.Cut(text, " ")
	rest = strings.TrimSpace(rest)
	switch kind {
	case "ignore":
		analyzer, just, _ := strings.Cut(rest, " ")
		return &Directive{
			Pos:           pos,
			Kind:          "ignore",
			Analyzer:      analyzer,
			Justification: strings.TrimSpace(just),
		}
	case "escape":
		return &Directive{Pos: pos, Kind: "escape", Justification: rest}
	}
	return nil
}

// ignoreFor returns an ignore directive covering (file, line) for the named
// analyzer, or nil.
func (ds *Directives) ignoreFor(file string, line int, analyzer string) *Directive {
	for _, d := range ds.byLine[file][line] {
		if d.Kind == "ignore" && d.Analyzer == analyzer {
			return d
		}
	}
	return nil
}

// escapeAt returns an escape directive covering (file, line), or nil.
// poolcheck marks the directive used when it honors one.
func (ds *Directives) escapeAt(file string, line int) *Directive {
	for _, d := range ds.byLine[file][line] {
		if d.Kind == "escape" {
			return d
		}
	}
	return nil
}
