package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxcheck enforces deadline propagation below the serve boundary: in
// blockserve, blockdev and raid — the packages between a client's request
// and the devices — a context.Context must actually carry the caller's
// deadline and cancellation. Two rules:
//
//   - No bare contexts: a context.Background()/TODO() value may exist below
//     the boundary only as the root of a context.With* derivation. The
//     abstract lattice over the shared CFG tracks, per variable, the "bare"
//     origins that may reach it (union join, kills on reassignment — the
//     classic reaching-definitions shape folded onto a two-point value
//     domain). A bare value passed to any call other than a context
//     constructor, or returned, is a finding: that call chain can never time
//     out, so a dead peer wedges it forever.
//
//   - No dropped contexts: a context.Context parameter that is never used —
//     not passed on, not derived from, not queried (Done/Err/Deadline) —
//     silently detaches everything below it from the caller's deadline. The
//     blank name `_` is the explicit opt-out for interface-shaped callbacks.
var ctxCheckAnalyzer = &Analyzer{
	Name: "ctxcheck",
	Doc:  "below the serve boundary, contexts must carry deadlines and must propagate",
	Run:  runCtxCheck,
}

func ctxCheckScoped(importPath string) bool {
	for _, suffix := range []string{"/blockserve", "/blockdev", "/raid"} {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

func runCtxCheck(ctx *Context) []Finding {
	c := &ctxChecker{m: ctx.M}
	for _, pkg := range ctx.M.Sorted {
		if !ctxCheckScoped(pkg.ImportPath) {
			continue
		}
		for _, fs := range functions(pkg) {
			for _, unit := range funcUnits(fs) {
				c.checkDroppedParams(pkg, unit)
				c.checkBareFlow(pkg, unit)
			}
		}
	}
	return c.findings
}

type ctxChecker struct {
	m        *Module
	findings []Finding
}

func (c *ctxChecker) report(pos token.Pos, msg string) {
	c.findings = append(c.findings, Finding{Pos: c.m.Position(pos), Analyzer: "ctxcheck", Message: msg})
}

func isContextType(t types.Type) bool {
	return typeIs(t, "context", "Context")
}

// checkDroppedParams flags context parameters the unit never touches.
func (c *ctxChecker) checkDroppedParams(pkg *Package, unit flowUnit) {
	if unit.ftype.Params == nil {
		return
	}
	for _, field := range unit.ftype.Params.List {
		for _, id := range field.Names {
			if id.Name == "_" {
				continue
			}
			v, ok := pkg.Info.Defs[id].(*types.Var)
			if !ok || !isContextType(v.Type()) {
				continue
			}
			used := false
			ast.Inspect(unit.body, func(n ast.Node) bool {
				if used {
					return false
				}
				if use, isIdent := n.(*ast.Ident); isIdent && pkg.Info.Uses[use] == v {
					used = true
				}
				return true
			})
			if !used {
				c.report(id.Pos(), fmt.Sprintf(
					"context parameter %s is never used: the caller's deadline and cancellation stop propagating here (name it _ if the drop is intentional)", id.Name))
			}
		}
	}
}

// bareOrigin is one context.Background()/TODO() creation site, canonical per
// position so the solver's state comparisons stabilize.
type bareOrigin struct {
	pos  token.Pos
	what string // "context.Background()" or "context.TODO()"
}

type bareState map[*types.Var]*bareOrigin

func (s bareState) clone() bareState {
	out := make(bareState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func bareJoin(dst, src bareState) bareState {
	for k, v := range src {
		if old, ok := dst[k]; ok && old != v && old.pos <= v.pos {
			continue
		}
		dst[k] = v
	}
	return dst
}

func bareEqual(a, b bareState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ctxCallKind classifies a call against the context package.
func ctxCallKind(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	switch name := fn.Name(); name {
	case "Background", "TODO":
		return "bare"
	case "WithCancel", "WithTimeout", "WithDeadline", "WithValue", "WithoutCancel", "WithCancelCause", "WithDeadlineCause", "WithTimeoutCause":
		return "derive"
	}
	return ""
}

func (c *ctxChecker) checkBareFlow(pkg *Package, unit flowUnit) {
	g := buildCFG(pkg.Info, unit.body)
	originAt := make(map[token.Pos]*bareOrigin)
	originOf := func(call *ast.CallExpr) *bareOrigin {
		o := originAt[call.Pos()]
		if o == nil {
			o = &bareOrigin{pos: call.Pos(), what: "context." + staticCallee(pkg.Info, call).Name() + "()"}
			originAt[call.Pos()] = o
		}
		return o
	}
	// classify resolves an assignment's RHS to the bare origin it carries.
	classify := func(st bareState, rhs ast.Expr) *bareOrigin {
		switch e := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if ctxCallKind(pkg.Info, e) == "bare" {
				return originOf(e)
			}
		case *ast.Ident:
			if v := identVar(pkg.Info, e); v != nil {
				return st[v]
			}
		}
		return nil
	}
	applyStmt := func(st bareState, stmt ast.Stmt, report bool) {
		if report {
			c.checkBareUses(pkg, st, stmt)
		}
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				origin := classify(st, s.Rhs[0])
				// A tuple-returning RHS (ctx, cancel := context.With...) only
				// ever defines non-bare contexts; single-value RHS may alias.
				for i, lhs := range s.Lhs {
					v := lhsVar(pkg.Info, lhs)
					if v == nil || !isContextType(v.Type()) {
						continue
					}
					if i == 0 && len(s.Lhs) == 1 && origin != nil {
						st[v] = origin
					} else {
						delete(st, v)
					}
				}
				return
			}
			for i, lhs := range s.Lhs {
				v := lhsVar(pkg.Info, lhs)
				if v == nil || !isContextType(v.Type()) {
					continue
				}
				if origin := classify(st, s.Rhs[i]); origin != nil {
					st[v] = origin
				} else {
					delete(st, v)
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, id := range vs.Names {
					v, _ := pkg.Info.Defs[id].(*types.Var)
					if v == nil || !isContextType(v.Type()) {
						continue
					}
					if origin := classify(st, vs.Values[i]); origin != nil {
						st[v] = origin
					} else {
						delete(st, v)
					}
				}
			}
		}
	}
	res := solveFlow(g, flowSpec[bareState]{
		entry: make(bareState),
		clone: bareState.clone,
		join:  bareJoin,
		equal: bareEqual,
		transfer: func(b *cfgBlock, st bareState) bareState {
			for _, s := range b.stmts {
				applyStmt(st, s, false)
			}
			return st
		},
	})
	for _, b := range g.blocks {
		if !res.reached(b) {
			continue
		}
		st := res.in[b].clone()
		for _, s := range b.stmts {
			applyStmt(st, s, true)
		}
	}
}

// checkBareUses flags every consumption of a bare context in one statement:
// an argument to any call that is not a context constructor, or a return.
// The first argument of context.With* is the sanctioned wrapping slot.
func (c *ctxChecker) checkBareUses(pkg *Package, st bareState, stmt ast.Stmt) {
	flagExpr := func(e ast.Expr, consumer string) {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if ctxCallKind(pkg.Info, e) == "bare" {
				c.report(e.Pos(), fmt.Sprintf(
					"context.%s() %s below the serve boundary: derive a deadline-bearing context (context.WithTimeout/WithDeadline) instead",
					staticCallee(pkg.Info, e).Name(), consumer))
			}
		case *ast.Ident:
			if v := identVar(pkg.Info, e); v != nil {
				if origin, bare := st[v]; bare {
					c.report(e.Pos(), fmt.Sprintf(
						"%s (created at line %d) %s still bare: no deadline or cancellation will ever fire below here",
						origin.what, c.m.Position(origin.pos).Line, consumer))
				}
			}
		}
	}
	inspectShallow(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			derive := ctxCallKind(pkg.Info, n) == "derive"
			for i, arg := range n.Args {
				if derive && i == 0 {
					continue // the wrapping slot
				}
				flagExpr(arg, "is passed to "+calleeLabel(pkg.Info, n))
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				flagExpr(r, "is returned to the caller")
			}
		}
		return true
	})
}

func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if fn := staticCallee(info, call); fn != nil {
		return funcDisplayName(fn)
	}
	return "a call"
}
