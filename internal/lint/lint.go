package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one analyzer report, formatted as "file:line: [name] message".
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one registered check. Run receives the whole module (so
// call-graph analyzers can see across packages) and may report findings
// anywhere; the engine keeps only those inside the requested scope.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(ctx *Context) []Finding
}

// Context is what an analyzer run sees.
type Context struct {
	M     *Module
	Scope []*Package  // packages findings may be reported against
	Dirs  *Directives // suppression/escape directives of the scope

	files map[string]bool // lazily built scope-file set
}

// InScope reports whether a file belongs to a scope package.
func (c *Context) InScope(filename string) bool {
	if c.files == nil {
		c.files = make(map[string]bool)
		for _, p := range c.Scope {
			for _, fn := range p.Filenames {
				c.files[fn] = true
			}
		}
	}
	return c.files[filename]
}

// Registry returns every analyzer in reporting order.
func Registry() []*Analyzer {
	return []*Analyzer{
		ioCheckAnalyzer,
		poolCheckAnalyzer,
		lockCheckAnalyzer,
		cacheCheckAnalyzer,
		geomCheckAnalyzer,
		goCheckAnalyzer,
		ctxCheckAnalyzer,
		atomicCheckAnalyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Registry() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Options tunes a Run.
type Options struct {
	// CheckDirectives adds findings for malformed (justification-free) and
	// unused suppression directives. Enable it only when running the full
	// registry — a directive for an analyzer that did not run would
	// otherwise look unused.
	CheckDirectives bool
}

// Result is the outcome of a Run.
type Result struct {
	Findings   []Finding    // surviving findings, sorted by position
	Suppressed []Finding    // findings silenced by an ignore directive
	Directives []*Directive // every directive seen in scope, position-sorted
}

// Run executes the analyzers over the module, reporting on the scope
// packages and applying suppression directives.
func Run(m *Module, analyzers []*Analyzer, scope []*Package, opts Options) Result {
	dirs := collectDirectives(m, scope)
	ctx := &Context{M: m, Scope: scope, Dirs: dirs}
	var res Result
	for _, a := range analyzers {
		for _, f := range a.Run(ctx) {
			if !ctx.InScope(f.Pos.Filename) {
				continue
			}
			if d := dirs.ignoreFor(f.Pos.Filename, f.Pos.Line, f.Analyzer); d != nil {
				d.used = true
				res.Suppressed = append(res.Suppressed, f)
				continue
			}
			res.Findings = append(res.Findings, f)
		}
	}
	if opts.CheckDirectives {
		for _, d := range dirs.all {
			if d.Justification == "" {
				res.Findings = append(res.Findings, Finding{
					Pos:      d.Pos,
					Analyzer: "suppress",
					Message:  fmt.Sprintf("lint:%s directive has no justification text", d.Kind),
				})
				continue
			}
			if d.Kind == "ignore" && d.Analyzer != "suppress" && ByName(d.Analyzer) == nil {
				res.Findings = append(res.Findings, Finding{
					Pos:      d.Pos,
					Analyzer: "suppress",
					Message:  fmt.Sprintf("lint:ignore names unknown analyzer %q — the directive can never match a finding", d.Analyzer),
				})
				continue
			}
			if !d.used {
				res.Findings = append(res.Findings, Finding{
					Pos:      d.Pos,
					Analyzer: "suppress",
					Message:  fmt.Sprintf("unused lint:%s directive (%s): nothing on this line needs it", d.Kind, d.Target()),
				})
			}
		}
	}
	res.Directives = dirs.all
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
}
