package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// funcScope is one analyzable function body: a declared function or method.
// Function literals are walked as part of their enclosing declaration — for
// this engine's invariants that is the right attribution, because the data
// path's closures run while their creator's locks and buffers are live (the
// fanOut caller blocks on its workers).
type funcScope struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func
}

// functions yields every declared function of the package that has a body.
func functions(pkg *Package) []funcScope {
	var out []funcScope
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			out = append(out, funcScope{pkg: pkg, decl: fd, obj: obj})
		}
	}
	return out
}

// staticCallee resolves a call expression to the *types.Func it statically
// invokes: package functions, methods (through Selections), and interface
// methods (resolving to the interface's method object). Calls through
// function values resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call (pkg.Fn): the selector has no Selection.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvType returns the receiver type of a method object, nil for functions.
func recvType(fn *types.Func) types.Type {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type under t (through one pointer), or nil.
func namedOf(t types.Type) *types.Named {
	n, _ := deref(t).(*types.Named)
	return n
}

// typePkgPath returns the package path declaring t's named type, "" when t
// is not named (or is from the universe scope).
func typePkgPath(t types.Type) string {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// typeIs reports whether t (through one pointer) is the named type pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == name && typePkgPath(t) == pkgPath
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return typeIs(t, "sync", "Mutex") || typeIs(t, "sync", "RWMutex")
}

// deviceMethodNames is the accounting-bearing device I/O surface, scalar and
// vectored alike — a discarded scatter/gather error skips failure marking
// exactly as a discarded ReadAt error would.
var deviceMethodNames = map[string]bool{
	"ReadAt": true, "WriteAt": true, "ReadAtN": true, "WriteAtN": true,
	"ReadVecAt": true, "WriteVecAt": true, "ReadVecAtN": true, "WriteVecAtN": true,
}

// deviceCall classifies a call as device-surface I/O: a
// ReadAt/WriteAt/ReadAtN/WriteAtN method whose receiver is a blockdev type
// (Device implementations and the Instrumented wrapper) or a module type
// exposing the same surface (the raid array and its facade). It returns the
// method object and whether the call writes.
func deviceCall(m *Module, info *types.Info, call *ast.CallExpr) (fn *types.Func, isWrite bool, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK || !deviceMethodNames[sel.Sel.Name] {
		return nil, false, false
	}
	selection, selOK := info.Selections[sel]
	if !selOK {
		return nil, false, false
	}
	fn, fnOK := selection.Obj().(*types.Func)
	if !fnOK {
		return nil, false, false
	}
	recv := selection.Recv()
	path := typePkgPath(recv)
	if _, iface := deref(recv).Underlying().(*types.Interface); iface && path == "" {
		return nil, false, false // anonymous interface: not ours
	}
	switch {
	case strings.HasSuffix(path, "/blockdev"):
	case path == m.Path || strings.HasPrefix(path, m.Path+"/"):
		// A module type with the device surface (raid.Array, the facade):
		// require both halves so an unrelated io.ReaderAt does not match.
		if !hasMethod(recv, "ReadAt") || !hasMethod(recv, "WriteAt") {
			return nil, false, false
		}
	default:
		return nil, false, false
	}
	return fn, strings.HasPrefix(sel.Sel.Name, "Write"), true
}

// hasMethod reports whether t (or *t) has a method with the given name.
// The lookup runs in the named type's own package so unexported method
// names (the module's get*/put* wrapper pairs) resolve too.
func hasMethod(t types.Type, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(n, true, n.Obj().Pkg(), name)
	_, ok := obj.(*types.Func)
	return ok
}

// callGraph is the module-wide static call graph: declared function →
// declared functions it (or any closure inside it) calls directly.
type callGraph struct {
	nodes   map[*types.Func]funcScope
	callees map[*types.Func][]*types.Func
}

// buildCallGraph indexes every declared function of every package.
func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{
		nodes:   make(map[*types.Func]funcScope),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range m.Sorted {
		for _, fs := range functions(pkg) {
			if fs.obj != nil {
				g.nodes[fs.obj] = fs
			}
		}
	}
	for obj, fs := range g.nodes {
		seen := make(map[*types.Func]bool)
		ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(fs.pkg.Info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, inModule := g.nodes[callee]; !inModule {
				return true
			}
			seen[callee] = true
			g.callees[obj] = append(g.callees[obj], callee)
			return true
		})
	}
	return g
}

// flowUnit is one dataflow analysis unit: a declared function body or a
// function literal body, with the parameter lists that seed its entry state.
type flowUnit struct {
	body  *ast.BlockStmt
	ftype *ast.FuncType
	recv  *ast.FieldList // nil for literals and plain functions
}

// funcUnits yields the declaration's body plus every function literal inside
// it, each as its own unit. The CFG builder never descends into literals, so
// a unit's graph covers exactly its own nesting level.
func funcUnits(fs funcScope) []flowUnit {
	units := []flowUnit{{body: fs.decl.Body, ftype: fs.decl.Type, recv: fs.decl.Recv}}
	ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, flowUnit{body: lit.Body, ftype: lit.Type})
		}
		return true
	})
	return units
}

// inspectShallow walks n without descending into function literals: the
// per-statement scans of a unit must not see a nested unit's statements.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

// refVar resolves a variable-shaped expression — an identifier, a field
// selector chain (s.wg, c.srv.sem), a pointer deref, or an address-of — to
// the variable or field object that identifies it across the function.
// Dynamic shapes (map/slice elements, call results) resolve to nil.
func refVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return identVar(info, e)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		// Package-qualified variable: the selector has no Selection.
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.StarExpr:
		return refVar(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return refVar(info, e.X)
		}
	}
	return nil
}

// funcDisplayName renders raid.(*Array).WriteAt style names for messages.
func funcDisplayName(fn *types.Func) string {
	if fn == nil {
		return "<anonymous>"
	}
	name := fn.Name()
	if rt := recvType(fn); rt != nil {
		if n := namedOf(rt); n != nil {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
