package lint

// Edge cases of the suppression machinery, beyond TestSuppressionHandling's
// happy paths: continuation comments after a directive, directives parked on
// the wrong statement, and directives naming analyzers that do not exist.

import (
	"path/filepath"
	"strings"
	"testing"
)

func loadSuppressEdge(t *testing.T) Result {
	t.Helper()
	m := testModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", "suppressedge"), "dcode/ztest/suppressedge")
	if err != nil {
		t.Fatalf("loading testdata/suppressedge: %v", err)
	}
	return Run(m, Registry(), []*Package{pkg}, Options{CheckDirectives: true})
}

func TestSuppressEdgeCases(t *testing.T) {
	res := loadSuppressEdge(t)

	// multiLine: the trailing directive suppresses its Flush even though the
	// justification prose continues on the next comment line.
	if len(res.Suppressed) != 1 {
		t.Errorf("suppressed = %d findings, want 1 (multiLine's Flush)", len(res.Suppressed))
	}
	for _, f := range res.Suppressed {
		if f.Analyzer != "iocheck" {
			t.Errorf("suppressed finding from %s, want iocheck", f.Analyzer)
		}
	}

	var iocheckSurvived, unused, unknown int
	for _, f := range res.Findings {
		switch {
		case f.Analyzer == "iocheck":
			iocheckSurvived++
		case f.Analyzer == "suppress" && strings.Contains(f.Message, "unused"):
			unused++
		case f.Analyzer == "suppress" && strings.Contains(f.Message, "unknown analyzer"):
			unknown++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	// wrongStatement's Flush and unknownAnalyzer's Flush both survive: the
	// first directive covers the wrong line, the second names no analyzer
	// that exists.
	if iocheckSurvived != 2 {
		t.Errorf("surviving iocheck findings = %d, want 2", iocheckSurvived)
	}
	if unused != 1 {
		t.Errorf("unused-directive findings = %d, want 1 (wrongStatement)", unused)
	}
	if unknown != 1 {
		t.Errorf("unknown-analyzer findings = %d, want 1 (iochek typo)", unknown)
	}
}

func TestSuppressEdgeDirectiveParsing(t *testing.T) {
	res := loadSuppressEdge(t)
	if len(res.Directives) != 3 {
		t.Fatalf("directives = %d, want 3", len(res.Directives))
	}
	multi, wrong, typo := res.Directives[0], res.Directives[1], res.Directives[2]

	// Only the directive's own line contributes justification text; the
	// continuation comment under multiLine is not part of it.
	if got, want := multi.Justification, "advisory table, elaborated below"; got != want {
		t.Errorf("multiLine justification = %q, want %q", got, want)
	}
	if !multi.Used() {
		t.Errorf("multiLine directive should be used (it suppressed the Flush)")
	}
	if wrong.Used() {
		t.Errorf("wrongStatement directive should be unused (it covers a no-op line)")
	}
	if typo.Used() {
		t.Errorf("typo directive should be unused (iochek matches nothing)")
	}
	if typo.Analyzer != "iochek" {
		t.Errorf("typo directive analyzer = %q, want the literal misspelling", typo.Analyzer)
	}
}
