package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"path"
	"strconv"
	"strings"
)

// geomcheck keeps the erasure-code geometry honest. D-Code (and the
// comparison codes: X-Code, RDP, H-Code, HDP, EVENODD) are defined over a
// prime parameter p; every modulus and diagonal index in the construction
// must be derived from the code's declared geometry, never hardcoded — a
// literal that happens to equal p for the test configuration silently
// corrupts parity placement for every other array width. The check flags,
// in the code-construction packages only:
//
//   - `x % L` and erasure.Mod(x, L) with an integer literal L (2 is
//     allowed: halving and parity-pair arithmetic is geometry-independent);
//   - prime-named constants whose value is not actually prime.
var geomCheckAnalyzer = &Analyzer{
	Name: "geomcheck",
	Doc:  "code-geometry arithmetic must derive from declared constants, not literals",
	Run:  runGeomCheck,
}

// geomPackages are the code-construction package basenames the check covers.
var geomPackages = map[string]bool{
	"core": true, "xcode": true, "rdp": true,
	"hcode": true, "hdp": true, "evenodd": true,
}

func runGeomCheck(ctx *Context) []Finding {
	var out []Finding
	for _, pkg := range ctx.M.Sorted {
		if !geomPackages[path.Base(pkg.ImportPath)] {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					if e.Op.String() != "%" {
						return true
					}
					if lit, val, ok := intLiteral(e.Y); ok && val != 2 {
						out = append(out, Finding{
							Pos:      ctx.M.Position(lit.Pos()),
							Analyzer: "geomcheck",
							Message: fmt.Sprintf(
								"modulus is the hardcoded literal %d; derive it from the code's geometry (the prime parameter) instead", val),
						})
					}
				case *ast.CallExpr:
					fn := staticCallee(pkg.Info, e)
					if fn == nil || fn.Name() != "Mod" || len(e.Args) != 2 {
						return true
					}
					if lit, val, ok := intLiteral(e.Args[1]); ok && val != 2 {
						out = append(out, Finding{
							Pos:      ctx.M.Position(lit.Pos()),
							Analyzer: "geomcheck",
							Message: fmt.Sprintf(
								"%s modulus is the hardcoded literal %d; derive it from the code's geometry (the prime parameter) instead",
								funcDisplayName(fn), val),
						})
					}
				case *ast.ValueSpec:
					out = append(out, primeNameFindings(ctx.M, pkg, e)...)
				}
				return true
			})
		}
	}
	return out
}

// intLiteral matches an integer literal (possibly parenthesized or negated).
func intLiteral(expr ast.Expr) (*ast.BasicLit, int64, bool) {
	e := ast.Unparen(expr)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind.String() != "INT" {
		return nil, 0, false
	}
	v, err := strconv.ParseInt(lit.Value, 0, 64)
	if err != nil {
		return nil, 0, false
	}
	return lit, v, true
}

// primeNameFindings flags prime-named constants whose value is composite —
// the whole construction (diagonal coverage, invertibility) collapses when
// the declared "prime" is not one.
func primeNameFindings(m *Module, pkg *Package, spec *ast.ValueSpec) []Finding {
	var out []Finding
	for _, name := range spec.Names {
		if !strings.Contains(strings.ToLower(name.Name), "prime") {
			continue
		}
		cst, ok := pkg.Info.Defs[name].(*types.Const)
		if !ok {
			continue
		}
		val, exact := constant.Int64Val(constant.ToInt(cst.Val()))
		if !exact {
			continue
		}
		if !isPrime(val) {
			out = append(out, Finding{
				Pos:      m.Position(name.Pos()),
				Analyzer: "geomcheck",
				Message: fmt.Sprintf(
					"constant %s is named as a prime but its value %d is not prime", name.Name, val),
			})
		}
	}
	return out
}

func isPrime(n int64) bool {
	if n < 2 {
		return false
	}
	for d := int64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}
