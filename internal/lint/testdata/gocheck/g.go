// Package gochecktest is a golden fixture for the gocheck analyzer. Its
// synthetic import path ends in /blockserve so the concurrent-layer scoping
// applies. It exercises both rules: goroutine join/drain paths and
// chan-struct{} semaphore balance over the CFG.
package gochecktest

import (
	"errors"
	"sync"
)

type srv struct {
	wg  sync.WaitGroup
	sem chan struct{}
}

func (s *srv) handle() {}

func (s *srv) run() { defer s.wg.Done() }

// ---- Rule 1: join/drain ----

// spawnJoined is the canonical pattern: Add dominates the spawn, the body
// Dones the same WaitGroup, Wait joins.
func (s *srv) spawnJoined() {
	s.wg.Add(1)
	go s.run()
	s.wg.Wait()
}

// spawnLoose has no lifecycle at all.
func (s *srv) spawnLoose() {
	go func() { // want `goroutine has no join or drain path`
		s.handle()
	}()
}

func spin() {}

// spawnsNamedLoose resolves the callee one level deep and still finds nothing.
func spawnsNamedLoose() {
	go spin() // want `goroutine has no join or drain path`
}

// addOnBranch: the Add does not dominate the spawn — on the !b path, Wait
// can return before the goroutine has run.
func (s *srv) addOnBranch(b bool) {
	if b {
		s.wg.Add(1)
	}
	go func() { // want `goroutine calls wg\.Done but no matching Add dominates this spawn`
		defer s.wg.Done()
		s.handle()
	}()
	s.wg.Wait()
}

// fanOut drains: every spawned body sends on a channel this function
// receives from, so the collect loop is the join.
func fanOut(parts [][]byte) int {
	results := make(chan int)
	for _, p := range parts {
		p := p
		go func() { results <- len(p) }()
	}
	total := 0
	for range parts {
		total += <-results
	}
	return total
}

// ---- Rule 2: semaphore balance ----

// admitBalanced releases through a deferred receive: clean on every path.
func (s *srv) admitBalanced() {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.handle()
}

// admitAsync hands the slot to the goroutine, which releases it when done.
func (s *srv) admitAsync() {
	s.sem <- struct{}{}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.handle()
		<-s.sem
	}()
}

// leakOnError releases only on the success path.
func (s *srv) leakOnError(fail bool) error {
	s.sem <- struct{}{} // want `semaphore slot on sem is not released on every path to return`
	if fail {
		return errors.New("handler failed")
	}
	s.handle()
	<-s.sem
	return nil
}

// loopLeak acquires a fresh slot every iteration and never releases one.
func (s *srv) loopLeak(n int) {
	for i := 0; i < n; i++ {
		s.sem <- struct{}{} // want `semaphore slot on sem is acquired each loop iteration without a release`
	}
}

// loopBalanced releases within the iteration: clean.
func (s *srv) loopBalanced(n int) {
	for i := 0; i < n; i++ {
		s.sem <- struct{}{}
		s.handle()
		<-s.sem
	}
}

// handoff's release lives in another function entirely — the justified
// suppression is the sanctioned way to record that.
func (s *srv) handoff() {
	//lint:ignore gocheck the completion side receives this slot back
	s.sem <- struct{}{}
}
