// Package pooltest is a golden fixture for the poolcheck analyzer.
package pooltest

import (
	"errors"
	"sync"

	"dcode/internal/blockdev"
)

type buffers struct {
	pool sync.Pool
	held any
}

func use(any) {}

func leak(b *buffers, fail bool) error {
	v := b.pool.Get()
	if fail {
		return errors.New("boom") // want `pooled value v \(acquired at line \d+\) is not returned to its pool on this path`
	}
	b.pool.Put(v)
	return nil
}

func balanced(b *buffers, fail bool) error {
	v := b.pool.Get()
	defer b.pool.Put(v)
	if fail {
		return errors.New("boom")
	}
	use(v)
	return nil
}

func escapes(b *buffers) {
	v := b.pool.Get()
	b.held = v // want `pooled value v \(acquired at line \d+\) is stored into a longer-lived structure`
}

func captured(b *buffers) {
	v := b.pool.Get()
	go func() {
		use(v) // want `pooled value v \(acquired at line \d+\) is captured by a goroutine`
	}()
	b.pool.Put(v)
}

func loops(b *buffers, n int) {
	for i := 0; i < n; i++ {
		v := b.pool.Get()
		use(v)
	} // want `pooled value v \(acquired at line \d+\) is acquired inside a loop and not released each iteration`
}

type arena struct{ pool sync.Pool }

func (a *arena) getBuf() []byte {
	if v := a.pool.Get(); v != nil {
		return v.([]byte)
	}
	return make([]byte, 64)
}

func (a *arena) putBuf(b []byte) { a.pool.Put(b) }

func wrapper(a *arena) {
	b := a.getBuf()
	defer a.putBuf(b)
	use(b)
}

func steal(a *arena) []byte {
	b := a.getBuf()
	return b // want `pooled value b \(acquired at line \d+\) escapes by return from a non-getter function`
}

func poolsBeforeWait(q blockdev.AsyncQueue, a *arena) error {
	b := a.getBuf()
	c := q.SubmitWriteVec(0, [][]byte{b}, 0, 1)
	q.Kick()
	a.putBuf(b) // want `pooled release while async submissions \(first at line \d+\) are unharvested`
	_, err := c.Wait()
	return err
}

func poolsAfterWait(q blockdev.AsyncQueue, a *arena) error {
	b := a.getBuf()
	c := q.SubmitWriteVec(0, [][]byte{b}, 0, 1)
	q.Kick()
	_, err := c.Wait()
	a.putBuf(b)
	return err
}

var registry = map[int][]byte{}

func handoff(a *arena) {
	b := a.getBuf()
	//lint:escape the registry owns the buffer after registration; tests drain it explicitly
	registry[0] = b
}
