// Package cachetest is a golden fixture for the cachecheck analyzer. Its
// synthetic import path ends in /raid so the write-through rule applies.
package cachetest

type dev struct{}

func (dev) ReadAt(p []byte, off int64) (int, error)  { return len(p), nil }
func (dev) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }

type engine struct {
	d     dev
	cells map[int][]byte
}

func (e *engine) cacheInvalidate(k int) { delete(e.cells, k) }

func (e *engine) writeRaw(p []byte) {
	_, _ = e.d.WriteAt(p, 0)
}

// FlushAll writes the device but forgets the element cache entirely.
func (e *engine) FlushAll(p []byte) { // want `writes the device but never writes through or invalidates the element cache`
	e.writeRaw(p)
}

// WriteThrough pairs every device write with a cache invalidation.
func (e *engine) WriteThrough(k int, p []byte) {
	e.writeRaw(p)
	e.cacheInvalidate(k)
}
