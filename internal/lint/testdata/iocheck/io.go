// Package iotest is a golden fixture for the iocheck analyzer.
package iotest

import (
	"bufio"
	"net"
	"os"
	"text/tabwriter"

	"dcode/internal/blockdev"
	"dcode/internal/blockserve"
)

func discards(dev blockdev.Device, buf []byte) {
	dev.WriteAt(buf, 0)        // want `device I/O error from .*WriteAt is discarded`
	n, _ := dev.ReadAt(buf, 0) // want `device I/O error from .*ReadAt is assigned to the blank identifier`
	_ = n
}

func consumes(dev blockdev.Device, buf []byte) error {
	if _, err := dev.WriteAt(buf, 0); err != nil {
		return err
	}
	_, err := dev.ReadAt(buf, 0)
	return err
}

func asyncDiscards(q blockdev.AsyncQueue, bufs [][]byte) {
	q.SubmitReadVec(0, bufs, 0, 1)      // want `async completion handle from .*SubmitReadVec is discarded`
	_ = q.SubmitWriteVec(0, bufs, 0, 1) // want `async completion handle from .*SubmitWriteVec is assigned to the blank identifier`
	c := q.SubmitReadVec(0, bufs, 0, 1)
	q.Kick()
	c.Wait()        // want `async completion error from .*Wait is discarded`
	_, _ = c.Wait() // want `async completion error from .*Wait is assigned to the blank identifier`
}

func asyncConsumes(q blockdev.AsyncQueue, bufs [][]byte) error {
	c := q.SubmitReadVec(0, bufs, 0, 1)
	q.Kick()
	_, err := c.Wait()
	return err
}

func flushes(w *tabwriter.Writer, b *bufio.Writer) error {
	w.Flush()     // want `buffered-output Flush error from .*Flush is discarded`
	_ = b.Flush() // want `buffered-output Flush error from .*Flush is assigned to the blank identifier`
	return b.Flush()
}

func wireDiscards(conn net.Conn, buf []byte) {
	blockserve.WriteFrame(conn, buf, blockserve.Frame{})        // want `wire frame error from blockserve\.WriteFrame is discarded`
	_, _ = blockserve.WriteFrame(conn, buf, blockserve.Frame{}) // want `wire frame error from blockserve\.WriteFrame is assigned to the blank identifier`
	_, _, _ = blockserve.ReadFrame(conn, buf)                   // want `wire frame error from blockserve\.ReadFrame is assigned to the blank identifier`
	conn.Write(buf)                                             // want `connection write error is discarded`
	_, _ = conn.Write(buf)                                      // want `connection write error is assigned to the blank identifier`
}

func wireConsumes(conn net.Conn, buf []byte) error {
	if _, err := conn.Write(buf); err != nil {
		return err
	}
	_, err := blockserve.WriteFrame(conn, buf, blockserve.Frame{})
	return err
}

func closes(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `Close error on a file opened for writing is discarded by defer`
	g, err := os.Open(path)
	if err != nil {
		return err
	}
	defer g.Close() // read-only file: Close cannot lose writes, no finding
	_ = f
	return nil
}
