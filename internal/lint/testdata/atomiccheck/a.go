// Package atomictest is a golden fixture for the atomiccheck analyzer,
// which is module-wide: any field touched through sync/atomic anywhere may
// never be accessed plainly. Both cell kinds are exercised — direct fields
// (&c.n handed to atomic.Add) and pointer fields (c.tail, a *uint32 into a
// shared ring, passed by value to atomic.Load/Store).
package atomictest

import "sync/atomic"

type counter struct {
	n     uint64
	tail  *uint32
	plain int
}

func (c *counter) inc() { atomic.AddUint64(&c.n, 1) }

func (c *counter) bump() {
	atomic.StoreUint32(c.tail, atomic.LoadUint32(c.tail)+1)
}

// read mixes a plain load into an atomically-updated field.
func (c *counter) read() uint64 {
	return c.n // want `field n is updated through sync/atomic \(e\.g\. a\.go:\d+\) but read or written plainly here`
}

// reset mixes a plain store in.
func (c *counter) reset() {
	c.n = 0 // want `field n is updated through sync/atomic \(e\.g\. a\.go:\d+\) but read or written plainly here`
}

// peek dereferences the doorbell pointer without atomic.Load.
func (c *counter) peek() uint32 {
	return *c.tail // want `pointer field tail is accessed through sync/atomic \(e\.g\. a\.go:\d+\) but dereferenced plainly here`
}

// okPlain: a field never touched by atomics is free to be plain.
func (c *counter) okPlain() int {
	c.plain++
	return c.plain
}

// okPointer: handling the pointer itself (not what it points at) is fine.
func (c *counter) okPointer(p *uint32) {
	c.tail = p
}

// snapshot is a justified exception — single-threaded setup code.
func (c *counter) snapshot() uint64 {
	//lint:ignore atomiccheck constructor-time read before any goroutine exists
	return c.n
}
