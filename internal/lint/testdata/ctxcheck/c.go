// Package ctxchecktest is a golden fixture for the ctxcheck analyzer. Its
// synthetic import path ends in /blockserve, placing it below the serve
// boundary where contexts must carry deadlines and must propagate.
package ctxchecktest

import (
	"context"
	"time"
)

type app struct{}

func (a *app) work(ctx context.Context) error { return ctx.Err() }

func (a *app) workNoCtx() {}

// direct passes a bare context straight into a call.
func direct(a *app) {
	a.work(context.Background()) // want `context\.Background\(\) is passed to [a-z]*\.?app\.work below the serve boundary`
}

// flows tracks the bare value through a variable.
func flows(a *app) {
	ctx := context.Background()
	a.work(ctx) // want `context\.Background\(\) \(created at line \d+\) is passed to [a-z]*\.?app\.work still bare`
}

// wrapped derives a deadline first: the With* first argument is the one
// sanctioned consumer of a bare context.
func wrapped(a *app) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	a.work(ctx)
}

// branchy wraps on only one path; the merge keeps the may-bare fact.
func branchy(a *app, deadline bool) {
	ctx := context.Background()
	if deadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Second)
		defer cancel()
	}
	a.work(ctx) // want `context\.Background\(\) \(created at line \d+\) is passed to [a-z]*\.?app\.work still bare`
}

// escapes returns the bare context to a caller that will assume it works.
func escapes() context.Context {
	ctx := context.TODO()
	return ctx // want `context\.TODO\(\) \(created at line \d+\) is returned to the caller still bare`
}

// dropped never touches its context: everything below it detaches from the
// caller's deadline.
func dropped(ctx context.Context, a *app) { // want `context parameter ctx is never used`
	a.workNoCtx()
}

// blankOK is the explicit opt-out spelling.
func blankOK(_ context.Context, a *app) {
	a.workNoCtx()
}

// threaded uses its context: clean.
func threaded(ctx context.Context, a *app) error {
	return a.work(ctx)
}

// bootPath is a justified exception: nothing above it owns a deadline.
func bootPath(a *app) {
	//lint:ignore ctxcheck the boot path has no caller deadline to inherit
	a.work(context.Background())
}
