// Package suppressedge exercises the suppression machinery's edge cases:
// justification text that continues onto following comment lines (only the
// directive's own line parses; the continuation is commentary), a directive
// parked on a statement that produces no finding (unused, and the real
// finding it was aimed at survives), and a directive naming an analyzer
// that does not exist.
package suppressedge

import "text/tabwriter"

// multiLine: the justification's first line rides the directive; the
// comment below elaborates but is not part of the directive. The Flush is
// suppressed and the directive counts as used and justified.
func multiLine(w *tabwriter.Writer) {
	w.Flush() //lint:ignore iocheck advisory table, elaborated below
	// Losing this table cannot corrupt any on-disk state; it is purely
	// cosmetic output for the operator.
}

// wrongStatement parks the directive one statement too early: the no-op
// line under it produces no finding, so the directive is unused and the
// Flush two lines down is still reported.
func wrongStatement(w *tabwriter.Writer) {
	//lint:ignore iocheck misplaced: the directive covers the line below only
	_ = w
	w.Flush()
}

// unknownAnalyzer names a check that is not registered: the directive can
// never match a finding, which is itself a finding — and the Flush it
// hoped to silence is still reported.
func unknownAnalyzer(w *tabwriter.Writer) {
	//lint:ignore iochek typo in the analyzer name, can never fire
	w.Flush()
}
