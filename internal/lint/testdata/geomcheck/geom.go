// Package geomtest is a golden fixture for the geomcheck analyzer. Its
// synthetic import path has basename "core", one of the geometry packages.
package geomtest

import "dcode/internal/erasure"

const (
	goodPrime = 13
	fakePrime = 9 // want `constant fakePrime is named as a prime but its value 9 is not prime`
)

func diag(x, p int) int {
	bad := x % 5 // want `modulus is the hardcoded literal 5`
	good := x % p
	half := x % 2
	m := erasure.Mod(x, 7) // want `modulus is the hardcoded literal 7`
	n := erasure.Mod(x, p)
	return bad + good + half + m + n + goodPrime + fakePrime
}
