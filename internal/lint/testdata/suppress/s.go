// Package suppresstest is a fixture for the suppression machinery: a
// justified directive, a justification-free one, and an unused one.
package suppresstest

import "text/tabwriter"

func flushIgnored(w *tabwriter.Writer) {
	//lint:ignore iocheck the table is advisory output in this fixture
	w.Flush()
}

func flushNoJustification(w *tabwriter.Writer) {
	//lint:ignore iocheck
	w.Flush()
}

//lint:ignore iocheck nothing here produces a finding, so this is unused
func nothing() {}
