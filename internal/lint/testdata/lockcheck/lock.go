// Package locktest is a golden fixture for the lockcheck analyzer. Its
// synthetic import path ends in /raid so the write-bracketing rule applies.
package locktest

import "sync"

type dev struct{}

func (dev) ReadAt(p []byte, off int64) (int, error)  { return len(p), nil }
func (dev) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }

type array struct {
	opMu    sync.RWMutex
	failMu  sync.Mutex
	stripes [4]sync.Mutex
	d       dev
}

func (a *array) lockStripe(i int) *sync.Mutex { return &a.stripes[i&3] }

func (a *array) badOrder() {
	a.failMu.Lock()
	a.opMu.Lock() // want `lock ordering violation: opMu lock \(rank 0\) acquired while holding a failMu lock \(rank 3\)`
	a.opMu.Unlock()
	a.failMu.Unlock()
}

func (a *array) goodOrder() {
	a.opMu.RLock()
	a.failMu.Lock()
	a.failMu.Unlock()
	a.opMu.RUnlock()
}

func (a *array) lockArray() {
	a.opMu.Lock()
	a.opMu.Unlock()
}

func (a *array) badTransitive() {
	a.failMu.Lock()
	defer a.failMu.Unlock()
	a.lockArray() // want `call to .*lockArray may acquire a opMu lock \(rank 0\) while holding a failMu lock \(rank 3\)`
}

func (a *array) writeRaw(p []byte) {
	_, _ = a.d.WriteAt(p, 0)
}

func (a *array) WriteLocked(p []byte) {
	mu := a.lockStripe(0)
	mu.Lock()
	defer mu.Unlock()
	a.writeRaw(p)
}

func (a *array) WriteMaintenance(p []byte) {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	a.writeRaw(p)
}

func (a *array) WriteUnlocked(p []byte) { // want `device write reachable without a per-stripe lock or exclusive opMu`
	a.writeRaw(p)
}
