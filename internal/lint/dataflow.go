package lint

// The forward dataflow solver the CFG analyzers share, plus the engine's
// reaching-definitions instance. An analyzer supplies a flowSpec — its
// lattice (join/equal/clone) and transfer functions — and gets back the
// converged state at every reachable block's entry and exit. May-analyses
// (poolcheck's held set, gocheck's outstanding semaphore slots) use a union
// join; must-analyses (gocheck's dominating WaitGroup.Add) use intersection.
// Analyzers report nothing during iteration: after the fixed point they
// replay each reached block once over its entry state, so a finding is
// emitted exactly once however many times the solver visited its block.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flowSpec defines one dataflow problem over a cfg.
type flowSpec[S any] struct {
	entry S         // state on entry to the function
	clone func(S) S // deep-enough copy: transfer/edge may mutate their input
	join  func(dst, src S) S
	equal func(a, b S) bool
	// transfer applies one block's statements. It must be deterministic and
	// idempotent with respect to allocation (cache any state objects it
	// creates by source position, or equal() never stabilizes).
	transfer func(b *cfgBlock, st S) S
	// edge, optionally, filters state flowing from→to: branch is the
	// successor index when from.cond is set (0 = true, 1 = false), else -1;
	// back is the loop for back edges, nil otherwise.
	edge func(from, to *cfgBlock, branch int, back *cfgLoop, st S) S
}

// flowResult holds the fixed point: states at block entry and exit, for
// reachable blocks only (an unreachable block has no entry in either map).
type flowResult[S any] struct {
	in, out map[*cfgBlock]S
}

func (r *flowResult[S]) reached(b *cfgBlock) bool {
	_, ok := r.in[b]
	return ok
}

// solveFlow iterates the spec's transfer over g to a fixed point.
func solveFlow[S any](g *cfg, spec flowSpec[S]) *flowResult[S] {
	res := &flowResult[S]{in: make(map[*cfgBlock]S), out: make(map[*cfgBlock]S)}
	res.in[g.entry] = spec.entry
	queue := []*cfgBlock{g.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	for len(queue) > 0 {
		b := queue[0]
		queue, queued[b] = queue[1:], false
		out := spec.transfer(b, spec.clone(res.in[b]))
		res.out[b] = out
		for i, succ := range b.succs {
			branch := -1
			if b.cond != nil {
				branch = i
			}
			st := spec.clone(out)
			if spec.edge != nil {
				st = spec.edge(b, succ, branch, g.backLoop(b, succ), st)
			}
			prev, seen := res.in[succ]
			if seen {
				st = spec.join(spec.clone(prev), st)
				if spec.equal(prev, st) {
					continue
				}
			}
			res.in[succ] = st
			if !queued[succ] {
				queued[succ] = true
				queue = append(queue, succ)
			}
		}
	}
	return res
}

// Reaching definitions: for each variable, the set of definition sites that
// may reach a program point. A site is the defining statement; the nil node
// stands for "defined at function entry" (parameters and free variables).

type defSites map[ast.Node]bool

type rdState map[*types.Var]defSites

func (s rdState) clone() rdState {
	out := make(rdState, len(s))
	for v, sites := range s {
		c := make(defSites, len(sites))
		for n := range sites {
			c[n] = true
		}
		out[v] = c
	}
	return out
}

func rdJoin(dst, src rdState) rdState {
	for v, sites := range src {
		if dst[v] == nil {
			dst[v] = make(defSites, len(sites))
		}
		for n := range sites {
			dst[v][n] = true
		}
	}
	return dst
}

func rdEqual(a, b rdState) bool {
	if len(a) != len(b) {
		return false
	}
	for v, as := range a {
		bs, ok := b[v]
		if !ok || len(as) != len(bs) {
			return false
		}
		for n := range as {
			if !bs[n] {
				return false
			}
		}
	}
	return true
}

// rdUpdate applies one statement's definitions: each defined variable's site
// set collapses to {stmt}. Exposed separately from the block transfer so
// analyzers can replay a block statement-by-statement for uses mid-block.
func rdUpdate(info *types.Info, st rdState, stmt ast.Stmt) {
	def := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if v := identVar(info, id); v != nil {
			st[v] = defSites{stmt: true}
		}
	}
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				def(id)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			def(id)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						def(id)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := s.Key.(*ast.Ident); ok {
			def(id)
		}
		if id, ok := s.Value.(*ast.Ident); ok {
			def(id)
		}
	}
}

// reachingDefs solves the classic problem over g: params (and, implicitly,
// every free variable read before assignment) start with the entry site.
func reachingDefs(g *cfg, info *types.Info, params []*types.Var) *flowResult[rdState] {
	entry := make(rdState, len(params))
	for _, p := range params {
		entry[p] = defSites{nil: true}
	}
	return solveFlow(g, flowSpec[rdState]{
		entry: entry,
		clone: rdState.clone,
		join:  rdJoin,
		equal: rdEqual,
		transfer: func(b *cfgBlock, st rdState) rdState {
			for _, s := range b.stmts {
				rdUpdate(info, st, s)
			}
			return st
		},
	})
}

// unitParams collects the declared parameter (and named result) variables of
// a function declaration or literal, for seeding entry states.
func unitParams(info *types.Info, ftype *ast.FuncType, recv *ast.FieldList) []*types.Var {
	var out []*types.Var
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if v, ok := info.Defs[id].(*types.Var); ok {
					out = append(out, v)
				}
			}
		}
	}
	addList(recv)
	addList(ftype.Params)
	addList(ftype.Results)
	return out
}

// firstAcquirePos is a tiny helper for per-resource finding dedup: report at
// the earliest acquisition.
func firstAcquirePos(a, b token.Pos) token.Pos {
	if b != token.NoPos && (a == token.NoPos || b < a) {
		return b
	}
	return a
}
