// Package blockserve serves a block volume — an *raid.Array or any single
// block device — to remote clients over TCP, speaking a small length-prefixed
// binary protocol. It is the network front half of the engine: cmd/raidserve
// runs it in front of an array (or a single column file in -column mode), and
// blockdev.Remote speaks the same protocol back as a client-side Device, so
// array columns can live on remote nodes.
//
// This file defines the wire format. Every message, request or response, is
// one frame:
//
//	uint32  length of the rest of the frame (big endian)
//	uint8   type (request op or response status; bit 0x40 = FlagExt marks an
//	        extension block after the fixed header)
//	uint64  request id (echoed verbatim in the response; clients may pipeline
//	        multiple outstanding ids on one connection)
//	int64   off — byte offset for READ/WRITE, the disk index for REBUILD,
//	        and the volume size in a STATUS response
//	uint32  count — requested byte count for READ; len(data) elsewhere, and
//	        the capability bitmask (CapTrace, ...) in a STATUS response
//	[ext]   optional extension block, present iff the type byte carries
//	        FlagExt: one flags byte, then one field per set flag bit in bit
//	        order. FlagTrace adds 16 bytes: uint64 trace ID + uint64 parent
//	        span ID (big endian). A zero flags byte or an unknown flag bit is
//	        malformed — the format stays closed under re-encoding, which is
//	        what lets FuzzWireFrame pin exact round-trips.
//	[]byte  data — WRITE payload, READ response payload, STATUS response
//	        JSON, or the error message of an ERR response
//
// Compatibility: a peer that predates the extension treats FlagExt as an
// unknown type and drops the connection, so extensions are only sent to peers
// that advertised the matching capability — the server announces CapTrace in
// every STATUS response's Count field (old servers leave it zero, old clients
// never read it), and blockdev.Remote stamps trace extensions only after its
// DialRemote STATUS probe saw the bit. The server never sends extension
// frames in responses, so old clients are safe against new servers too.
//
// The fixed header makes truncated, oversized and garbage frames cheap to
// reject: length is bounded by MaxFrame before any allocation, and a frame
// shorter than the header is malformed. FuzzWireFrame pins both properties.
package blockserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request ops.
const (
	OpRead    uint8 = 1 // read Count bytes at Off
	OpWrite   uint8 = 2 // write Data at Off
	OpFlush   uint8 = 3 // persist outstanding writes
	OpStatus  uint8 = 4 // fetch the volume's status JSON (response Off = size)
	OpRebuild uint8 = 5 // rebuild disk Off (array backends only)
)

// Response types.
const (
	RespOK  uint8 = 0x80 // success; Data carries the payload if any
	RespErr uint8 = 0x81 // failure; Data carries the error message
)

// FlagExt is the type-byte bit marking an extension block between the fixed
// header and the data. It is outside every defined type value, so a peer
// without extension support rejects the frame as an unknown type instead of
// misparsing the payload.
const FlagExt uint8 = 0x40

// Extension flag bits (the first byte of an extension block).
const (
	// FlagTrace marks a 16-byte trace context: trace ID + parent span ID.
	FlagTrace uint8 = 0x01
)

// Capability bits a server advertises in the Count field of its STATUS
// responses. A client must not send a frame extension the server did not
// advertise the capability for.
const (
	// CapTrace: the server understands FlagTrace extensions on requests.
	CapTrace uint32 = 1 << 0
)

// Caps is the capability set this implementation's server advertises.
const Caps = CapTrace

// Frame size limits. MaxFrame bounds a frame's variable part so a malicious
// or corrupt length prefix cannot force a huge allocation; it also caps the
// payload of one READ/WRITE, which keeps per-request buffers bounded.
const (
	headerLen = 1 + 8 + 8 + 4 // type + id + off + count
	maxExtLen = 1 + 16        // flags byte + trace context
	// MaxPayload is the largest READ/WRITE payload a single frame carries.
	// It is a fixed constant (not derived from MaxFrame) so that a maximal
	// non-extended frame is exactly the old protocol's frame bound — peers
	// that predate the extension still accept everything we send them.
	MaxPayload = 8 << 20
	MaxFrame   = headerLen + maxExtLen + MaxPayload
)

// Wire-format errors.
var (
	ErrFrameTooLarge = errors.New("blockserve: frame exceeds MaxFrame")
	ErrMalformed     = errors.New("blockserve: malformed frame")
)

// Frame is one decoded protocol message; see the package comment for the
// field meanings per type. Flags is the extension flags byte (0 = no
// extension block on the wire); Trace and Span are the trace context carried
// by a FlagTrace extension. Type never carries FlagExt — the codec folds it
// in on encode and strips it on decode.
type Frame struct {
	Type  uint8
	Flags uint8
	ID    uint64
	Off   int64
	Count uint32
	Trace uint64
	Span  uint64
	Data  []byte
}

// validType reports whether t is a known request op or response type.
func validType(t uint8) bool {
	return (t >= OpRead && t <= OpRebuild) || t == RespOK || t == RespErr
}

// extLen returns the encoded size of the extension block flags describes.
func extLen(flags uint8) int {
	if flags == 0 {
		return 0
	}
	n := 1
	if flags&FlagTrace != 0 {
		n += 16
	}
	return n
}

// AppendFrame appends the encoded frame to dst and returns the result. It is
// the encoding primitive both sides share; callers keep dst pooled so a
// steady request stream does not allocate. Flag bits outside the defined set
// are rejected — an encoder must not emit what no decoder accepts.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Data) > MaxPayload {
		return dst, ErrFrameTooLarge
	}
	if f.Flags&^FlagTrace != 0 {
		return dst, fmt.Errorf("%w: unknown extension flags 0x%02x", ErrMalformed, f.Flags)
	}
	n := headerLen + extLen(f.Flags) + len(f.Data)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	t := f.Type
	if f.Flags != 0 {
		t |= FlagExt
	}
	dst = append(dst, t)
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(f.Off))
	dst = binary.BigEndian.AppendUint32(dst, f.Count)
	if f.Flags != 0 {
		dst = append(dst, f.Flags)
		if f.Flags&FlagTrace != 0 {
			dst = binary.BigEndian.AppendUint64(dst, f.Trace)
			dst = binary.BigEndian.AppendUint64(dst, f.Span)
		}
	}
	dst = append(dst, f.Data...)
	return dst, nil
}

// WriteFrame encodes f into buf (growing it as needed) and writes it to w in
// one call, returning the possibly-grown buffer for reuse.
func WriteFrame(w io.Writer, buf []byte, f Frame) ([]byte, error) {
	buf, err := AppendFrame(buf[:0], f)
	if err != nil {
		return buf, err
	}
	_, err = w.Write(buf)
	return buf, err
}

// ReadFrame reads one frame from r. The returned frame's Data aliases buf
// when it fits, so the caller may pass a pooled buffer; the possibly-grown
// buffer is returned for reuse. A frame whose length prefix exceeds MaxFrame
// fails with ErrFrameTooLarge before any payload allocation; one shorter
// than the fixed header, or carrying an unknown type, fails with ErrMalformed.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return Frame{}, buf, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n < headerLen {
		return Frame{}, buf, fmt.Errorf("%w: length %d below header", ErrMalformed, n)
	}
	if n > MaxFrame {
		return Frame{}, buf, fmt.Errorf("%w: length %d", ErrFrameTooLarge, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	f := Frame{
		Type:  buf[0] &^ FlagExt,
		ID:    binary.BigEndian.Uint64(buf[1:9]),
		Off:   int64(binary.BigEndian.Uint64(buf[9:17])),
		Count: binary.BigEndian.Uint32(buf[17:21]),
	}
	if !validType(f.Type) {
		return Frame{}, buf, fmt.Errorf("%w: unknown type 0x%02x", ErrMalformed, buf[0])
	}
	body := headerLen
	if buf[0]&FlagExt != 0 {
		if n < uint32(headerLen+1) {
			return Frame{}, buf, fmt.Errorf("%w: extension bit without flags byte", ErrMalformed)
		}
		f.Flags = buf[headerLen]
		// A zero flags byte under FlagExt would decode to a frame that
		// re-encodes without the extension; reject non-canonical encodings so
		// decode∘encode is the identity on the wire (FuzzWireFrame pins it).
		if f.Flags == 0 || f.Flags&^FlagTrace != 0 {
			return Frame{}, buf, fmt.Errorf("%w: extension flags 0x%02x", ErrMalformed, f.Flags)
		}
		body += extLen(f.Flags)
		if n < uint32(body) {
			return Frame{}, buf, fmt.Errorf("%w: length %d below extension", ErrMalformed, n)
		}
		if f.Flags&FlagTrace != 0 {
			f.Trace = binary.BigEndian.Uint64(buf[headerLen+1 : headerLen+9])
			f.Span = binary.BigEndian.Uint64(buf[headerLen+9 : headerLen+17])
		}
	}
	if int(n) > body {
		f.Data = buf[body:n]
	}
	return f, buf, nil
}
