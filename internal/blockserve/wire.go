// Package blockserve serves a block volume — an *raid.Array or any single
// block device — to remote clients over TCP, speaking a small length-prefixed
// binary protocol. It is the network front half of the engine: cmd/raidserve
// runs it in front of an array (or a single column file in -column mode), and
// blockdev.Remote speaks the same protocol back as a client-side Device, so
// array columns can live on remote nodes.
//
// This file defines the wire format. Every message, request or response, is
// one frame:
//
//	uint32  length of the rest of the frame (big endian)
//	uint8   type (request op or response status)
//	uint64  request id (echoed verbatim in the response; clients may pipeline
//	        multiple outstanding ids on one connection)
//	int64   off — byte offset for READ/WRITE, the disk index for REBUILD,
//	        and the volume size in a STATUS response
//	uint32  count — requested byte count for READ; len(data) elsewhere
//	[]byte  data — WRITE payload, READ response payload, STATUS response
//	        JSON, or the error message of an ERR response
//
// The fixed header makes truncated, oversized and garbage frames cheap to
// reject: length is bounded by MaxFrame before any allocation, and a frame
// shorter than the header is malformed. FuzzWireFrame pins both properties.
package blockserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request ops.
const (
	OpRead    uint8 = 1 // read Count bytes at Off
	OpWrite   uint8 = 2 // write Data at Off
	OpFlush   uint8 = 3 // persist outstanding writes
	OpStatus  uint8 = 4 // fetch the volume's status JSON (response Off = size)
	OpRebuild uint8 = 5 // rebuild disk Off (array backends only)
)

// Response types.
const (
	RespOK  uint8 = 0x80 // success; Data carries the payload if any
	RespErr uint8 = 0x81 // failure; Data carries the error message
)

// Frame size limits. MaxFrame bounds a frame's variable part so a malicious
// or corrupt length prefix cannot force a huge allocation; it also caps the
// payload of one READ/WRITE, which keeps per-request buffers bounded.
const (
	headerLen = 1 + 8 + 8 + 4 // type + id + off + count
	MaxFrame  = 8<<20 + headerLen
	// MaxPayload is the largest READ/WRITE payload a single frame carries.
	MaxPayload = MaxFrame - headerLen
)

// Wire-format errors.
var (
	ErrFrameTooLarge = errors.New("blockserve: frame exceeds MaxFrame")
	ErrMalformed     = errors.New("blockserve: malformed frame")
)

// Frame is one decoded protocol message; see the package comment for the
// field meanings per type.
type Frame struct {
	Type  uint8
	ID    uint64
	Off   int64
	Count uint32
	Data  []byte
}

// validType reports whether t is a known request op or response type.
func validType(t uint8) bool {
	return (t >= OpRead && t <= OpRebuild) || t == RespOK || t == RespErr
}

// AppendFrame appends the encoded frame to dst and returns the result. It is
// the encoding primitive both sides share; callers keep dst pooled so a
// steady request stream does not allocate.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Data) > MaxPayload {
		return dst, ErrFrameTooLarge
	}
	n := headerLen + len(f.Data)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, f.Type)
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(f.Off))
	dst = binary.BigEndian.AppendUint32(dst, f.Count)
	dst = append(dst, f.Data...)
	return dst, nil
}

// WriteFrame encodes f into buf (growing it as needed) and writes it to w in
// one call, returning the possibly-grown buffer for reuse.
func WriteFrame(w io.Writer, buf []byte, f Frame) ([]byte, error) {
	buf, err := AppendFrame(buf[:0], f)
	if err != nil {
		return buf, err
	}
	_, err = w.Write(buf)
	return buf, err
}

// ReadFrame reads one frame from r. The returned frame's Data aliases buf
// when it fits, so the caller may pass a pooled buffer; the possibly-grown
// buffer is returned for reuse. A frame whose length prefix exceeds MaxFrame
// fails with ErrFrameTooLarge before any payload allocation; one shorter
// than the fixed header, or carrying an unknown type, fails with ErrMalformed.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return Frame{}, buf, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n < headerLen {
		return Frame{}, buf, fmt.Errorf("%w: length %d below header", ErrMalformed, n)
	}
	if n > MaxFrame {
		return Frame{}, buf, fmt.Errorf("%w: length %d", ErrFrameTooLarge, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	f := Frame{
		Type:  buf[0],
		ID:    binary.BigEndian.Uint64(buf[1:9]),
		Off:   int64(binary.BigEndian.Uint64(buf[9:17])),
		Count: binary.BigEndian.Uint32(buf[17:21]),
	}
	if !validType(f.Type) {
		return Frame{}, buf, fmt.Errorf("%w: unknown type 0x%02x", ErrMalformed, f.Type)
	}
	if n > headerLen {
		f.Data = buf[headerLen:n]
	}
	return f, buf, nil
}
