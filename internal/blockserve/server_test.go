package blockserve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dcode/internal/blockdev"
	"dcode/internal/blockserve"
	"dcode/internal/trace"
)

// startServer runs a Server on loopback and tears it down with the test.
func startServer(t *testing.T, backend blockserve.Backend, cfg blockserve.Config) (string, *blockserve.Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := blockserve.New(backend, cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	})
	return ln.Addr().String(), srv
}

func TestServerReadWriteStatusFlush(t *testing.T) {
	addr, srv := startServer(t, blockdev.NewMem(1<<16), blockserve.Config{})
	dev, err := blockdev.DialRemote(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	if dev.Size() != 1<<16 {
		t.Fatalf("Size() = %d, want %d (STATUS must carry the volume size)", dev.Size(), 1<<16)
	}
	want := bytes.Repeat([]byte{0x5A, 0xC3}, 2048)
	if _, err := dev.WriteAt(want, 4096); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := dev.ReadAt(got, 4096); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back different bytes than written")
	}
	if err := dev.Flush(); err != nil {
		t.Fatalf("Flush on a flushless backend should no-op, got %v", err)
	}
	doc, err := dev.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	var st struct {
		Size int64 `json:"size"`
	}
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatalf("default status document is not JSON: %v (%q)", err, doc)
	}
	if st.Size != 1<<16 {
		t.Fatalf("status size = %d, want %d", st.Size, 1<<16)
	}
	if err := dev.Rebuild(0); err == nil {
		t.Fatal("Rebuild on a non-array backend must fail")
	}

	snap := srv.Snapshot()
	if snap.Totals.Reads != 1 || snap.Totals.Writes != 1 || snap.Totals.Flushes != 1 {
		t.Fatalf("totals = %+v, want 1 read / 1 write / 1 flush", snap.Totals)
	}
	if snap.Totals.BytesOut != int64(len(want)) || snap.Totals.BytesIn != int64(len(want)) {
		t.Fatalf("byte totals = in %d / out %d, want %d both ways",
			snap.Totals.BytesIn, snap.Totals.BytesOut, len(want))
	}
}

// rebuildBackend records REBUILD dispatch so the test can see it arrive.
type rebuildBackend struct {
	*blockdev.MemDevice
	mu      sync.Mutex
	rebuilt []int
}

func (b *rebuildBackend) Rebuild(disk int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rebuilt = append(b.rebuilt, disk)
	return nil
}

func TestRebuildDispatch(t *testing.T) {
	backend := &rebuildBackend{MemDevice: blockdev.NewMem(4096)}
	addr, _ := startServer(t, backend, blockserve.Config{})
	dev, err := blockdev.DialRemote(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if err := dev.Rebuild(3); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	backend.mu.Lock()
	defer backend.mu.Unlock()
	if len(backend.rebuilt) != 1 || backend.rebuilt[0] != 3 {
		t.Fatalf("rebuilt = %v, want [3]", backend.rebuilt)
	}
}

func TestClientCapRejects(t *testing.T) {
	addr, srv := startServer(t, blockdev.NewMem(4096), blockserve.Config{MaxClients: 1})
	first, err := blockdev.DialRemote(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// The Remote pools its connection, so the one client occupies the one
	// slot; a second mount must be rejected with the server's reason intact.
	_, err = blockdev.DialRemote(addr,
		blockdev.WithRetry(2, time.Millisecond),
		blockdev.WithRequestTimeout(time.Second))
	if err == nil {
		t.Fatal("second client admitted past MaxClients=1")
	}
	if !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("rejection reason lost: %v", err)
	}
	if snap := srv.Snapshot(); snap.Rejected == 0 {
		t.Fatalf("Rejected = %d, want > 0", snap.Rejected)
	}
}

func TestPipelinedRequestsOnOneConnection(t *testing.T) {
	mem := blockdev.NewMem(1 << 16)
	for i := int64(0); i < 4; i++ {
		buf := bytes.Repeat([]byte{byte(i + 1)}, 512)
		if _, err := mem.WriteAt(buf, i*512); err != nil {
			t.Fatal(err)
		}
	}
	addr, _ := startServer(t, mem, blockserve.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send all requests before reading any response: the ids must come back
	// matched to their payloads regardless of completion order.
	var wbuf []byte
	for i := uint64(0); i < 4; i++ {
		wbuf, err = blockserve.WriteFrame(conn, wbuf, blockserve.Frame{
			Type: blockserve.OpRead, ID: 100 + i, Off: int64(i) * 512, Count: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]byte{}
	var rbuf []byte
	for i := 0; i < 4; i++ {
		var f blockserve.Frame
		f, rbuf, err = blockserve.ReadFrame(conn, rbuf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != blockserve.RespOK || len(f.Data) != 512 {
			t.Fatalf("response %d: type 0x%02x, %d bytes", i, f.Type, len(f.Data))
		}
		seen[f.ID] = f.Data[0]
	}
	for i := uint64(0); i < 4; i++ {
		if seen[100+i] != byte(i+1) {
			t.Fatalf("id %d answered with fill byte %d, want %d", 100+i, seen[100+i], i+1)
		}
	}
}

// gatedBackend blocks every ReadAt until released, so tests can hold requests
// in flight deliberately.
type gatedBackend struct {
	*blockdev.MemDevice
	gate chan struct{}
}

func (b *gatedBackend) ReadAt(p []byte, off int64) (int, error) {
	<-b.gate
	return b.MemDevice.ReadAt(p, off)
}

func TestInflightAdmissionLimit(t *testing.T) {
	backend := &gatedBackend{MemDevice: blockdev.NewMem(1 << 16), gate: make(chan struct{})}
	addr, srv := startServer(t, backend, blockserve.Config{MaxInflight: 1})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var wbuf []byte
	for i := uint64(1); i <= 3; i++ {
		wbuf, err = blockserve.WriteFrame(conn, wbuf, blockserve.Frame{
			Type: blockserve.OpRead, ID: i, Count: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// With one slot, exactly one request may be in flight no matter how many
	// are pipelined; the reader goroutine is parked on the semaphore.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Snapshot().Inflight != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d, want 1", srv.Snapshot().Inflight)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if got := srv.Snapshot().Inflight; got != 1 {
		t.Fatalf("inflight grew to %d with MaxInflight=1", got)
	}
	close(backend.gate)
	var rbuf []byte
	for i := 0; i < 3; i++ {
		var f blockserve.Frame
		f, rbuf, err = blockserve.ReadFrame(conn, rbuf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != blockserve.RespOK {
			t.Fatalf("response %d: %q", i, f.Data)
		}
	}
}

func TestShutdownDrainsInflight(t *testing.T) {
	backend := &gatedBackend{MemDevice: blockdev.NewMem(1 << 16), gate: make(chan struct{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := blockserve.New(backend, blockserve.Config{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := blockserve.WriteFrame(conn, nil, blockserve.Frame{
		Type: blockserve.OpRead, ID: 7, Count: 8,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Snapshot().Inflight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must wait for the gated request, not abandon it.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(backend.gate)
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	// The drained request's response must have been written before the close.
	f, _, err := blockserve.ReadFrame(conn, nil)
	if err != nil {
		t.Fatalf("response lost in drain: %v", err)
	}
	if f.Type != blockserve.RespOK || f.ID != 7 {
		t.Fatalf("drained response = %+v", f)
	}
	// Connections after drain are rejected with the reason.
	if _, err := blockdev.DialRemote(ln.Addr().String(),
		blockdev.WithRetry(1, 0), blockdev.WithRequestTimeout(time.Second)); err == nil {
		t.Fatal("connection admitted after Shutdown")
	}
}

// TestSoakConcurrentClients hammers one server from many goroutine clients
// while others disconnect mid-stream without reading their responses; run
// under -race in CI. The surviving clients must see correct data and the
// server must drain cleanly afterwards.
func TestSoakConcurrentClients(t *testing.T) {
	const (
		clients  = 8
		opsEach  = 60
		elemSize = 512
	)
	mem := blockdev.NewMem(clients * opsEach * elemSize)
	addr, srv := startServer(t, mem, blockserve.Config{MaxInflight: 16})

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if id%4 == 3 {
				// Rude client: pipeline a burst of writes, then vanish without
				// reading a single response.
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					errs <- err
					return
				}
				var wbuf []byte
				for j := 0; j < opsEach; j++ {
					wbuf, err = blockserve.WriteFrame(conn, wbuf, blockserve.Frame{
						Type: blockserve.OpWrite, ID: uint64(j + 1),
						Off:  int64((id*opsEach + j) * elemSize),
						Data: bytes.Repeat([]byte{byte(id)}, elemSize),
					})
					if err != nil {
						break
					}
				}
				_ = conn.Close()
				return
			}
			dev, err := blockdev.DialRemote(addr)
			if err != nil {
				errs <- err
				return
			}
			defer dev.Close()
			buf := make([]byte, elemSize)
			got := make([]byte, elemSize)
			for j := 0; j < opsEach; j++ {
				off := int64((id*opsEach + j) * elemSize)
				for k := range buf {
					buf[k] = byte(id ^ j ^ k)
				}
				if _, err := dev.WriteAt(buf, off); err != nil {
					errs <- fmt.Errorf("client %d write %d: %w", id, j, err)
					return
				}
				if _, err := dev.ReadAt(got, off); err != nil {
					errs <- fmt.Errorf("client %d read %d: %w", id, j, err)
					return
				}
				if !bytes.Equal(got, buf) {
					errs <- fmt.Errorf("client %d op %d: data mismatch", id, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := srv.Snapshot()
	if snap.Totals.Errors != 0 {
		t.Fatalf("server recorded %d op errors", snap.Totals.Errors)
	}
	if snap.Accepted < clients {
		t.Fatalf("accepted = %d, want >= %d", snap.Accepted, clients)
	}
	// Departed clients' work must persist in the totals aggregate.
	if min := int64((clients - clients/4) * opsEach); snap.Totals.Writes < min {
		t.Fatalf("total writes = %d, want >= %d", snap.Totals.Writes, min)
	}
}

func TestSnapshotKeepsDepartedClients(t *testing.T) {
	addr, srv := startServer(t, blockdev.NewMem(4096), blockserve.Config{})
	dev, err := blockdev.DialRemote(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt(make([]byte, 128), 0); err != nil {
		t.Fatal(err)
	}
	_ = dev.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Snapshot().Active != 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never unregistered after client close")
		}
		time.Sleep(time.Millisecond)
	}
	snap := srv.Snapshot()
	if snap.Totals.Writes != 1 || snap.Totals.Admin == 0 {
		t.Fatalf("departed client's ops missing from totals: %+v", snap.Totals)
	}
	if len(snap.Clients) != 0 {
		t.Fatalf("live client list = %+v, want empty", snap.Clients)
	}
}

// TestRequestTimeoutExpiresQueuedRequests pins the pre-dispatch deadline
// gate: with a RequestTimeout no request can meet, every request — including
// DialRemote's STATUS probe — is answered with an ERR frame that names the
// expired deadline, and the backend is never touched.
func TestRequestTimeoutExpiresQueuedRequests(t *testing.T) {
	addr, _ := startServer(t, blockdev.NewMem(1<<16), blockserve.Config{RequestTimeout: time.Nanosecond})
	_, err := blockdev.DialRemote(addr, blockdev.WithRetry(1, 0), blockdev.WithRequestTimeout(time.Second))
	if err == nil {
		t.Fatal("DialRemote succeeded, want every request to expire under a 1ns RequestTimeout")
	}
	if !strings.Contains(err.Error(), "aborted before dispatch") {
		t.Fatalf("error = %v, want the pre-dispatch deadline rejection", err)
	}
}

// TestRequestTimeoutGenerousServes is the complement: a sane deadline leaves
// the data path untouched.
func TestRequestTimeoutGenerousServes(t *testing.T) {
	addr, _ := startServer(t, blockdev.NewMem(1<<16), blockserve.Config{RequestTimeout: 5 * time.Second})
	dev, err := blockdev.DialRemote(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	want := bytes.Repeat([]byte{0xA7}, 1024)
	if _, err := dev.WriteAt(want, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := dev.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip corrupted data under RequestTimeout")
	}
}

// linkedMem is a MemDevice that records the trace links the server threads
// into it, proving the LinkedBackend path is taken when a request carries a
// trace extension.
type linkedMem struct {
	*blockdev.MemDevice
	mu    sync.Mutex
	links []trace.Link
}

func (b *linkedMem) noteLink(l trace.Link) {
	b.mu.Lock()
	b.links = append(b.links, l)
	b.mu.Unlock()
}

func (b *linkedMem) ReadAtLink(p []byte, off int64, parent trace.Link) (int, error) {
	b.noteLink(parent)
	return b.ReadAt(p, off)
}

func (b *linkedMem) WriteAtLink(p []byte, off int64, parent trace.Link) (int, error) {
	b.noteLink(parent)
	return b.WriteAt(p, off)
}

// TestTracePropagationEndToEnd drives the full cross-process chain in one
// process: a client-side span stamps the request via ReadAtLink/WriteAtLink,
// the server negotiates CapTrace on STATUS, roots its serve span under the
// wire parent (Trace adopted, Remote = client span ID, local Parent 0), and
// threads the serve span's link into the LinkedBackend.
func TestTracePropagationEndToEnd(t *testing.T) {
	backend := &linkedMem{MemDevice: blockdev.NewMem(1 << 16)}
	srvTr := trace.New(64, 8)
	srvTr.Enable()
	addr, _ := startServer(t, backend, blockserve.Config{Tracer: srvTr})
	dev, err := blockdev.DialRemote(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if dev.Caps()&blockserve.CapTrace == 0 {
		t.Fatalf("caps = %#x, server did not advertise CapTrace", dev.Caps())
	}

	clientLink := trace.Link{Trace: 0xC0FFEE, Span: 42}
	buf := make([]byte, 512)
	if _, err := dev.WriteAtLink(buf, 0, clientLink); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadAtLink(buf, 0, clientLink); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadAt(buf, 0); err != nil { // unstamped: no extension
		t.Fatal(err)
	}
	srvTr.Disable()

	backend.mu.Lock()
	links := append([]trace.Link(nil), backend.links...)
	backend.mu.Unlock()
	// All three ops thread a link while the server's tracer is active: the
	// stamped ones carry the client's trace, the unstamped one the fresh
	// trace its serve span rooted.
	if len(links) != 3 {
		t.Fatalf("LinkedBackend saw %d linked ops, want 3", len(links))
	}
	var adopted, fresh int
	for _, l := range links {
		if l.Span == 0 || l.Span == clientLink.Span {
			t.Errorf("backend link span = %d, want the serve span's own ID", l.Span)
		}
		switch {
		case l.Trace == clientLink.Trace:
			adopted++
		case l.Trace != 0:
			fresh++
		}
	}
	if adopted != 2 || fresh != 1 {
		t.Errorf("backend links: %d adopted / %d fresh, want 2 / 1", adopted, fresh)
	}

	var stamped, unstamped int
	for _, sp := range srvTr.Spans() {
		switch {
		case sp.Trace == clientLink.Trace:
			stamped++
			if sp.Remote != clientLink.Span {
				t.Errorf("serve span Remote = %d, want %d", sp.Remote, clientLink.Span)
			}
			if sp.Parent != 0 {
				t.Errorf("serve span Parent = %d, want 0 (parent lives in another process)", sp.Parent)
			}
		case sp.Trace != 0:
			unstamped++
			if sp.Remote != 0 {
				t.Errorf("unstamped serve span has Remote = %d", sp.Remote)
			}
		}
	}
	if stamped != 2 {
		t.Errorf("%d serve spans adopted the wire trace, want 2", stamped)
	}
	if unstamped < 1 {
		t.Error("unstamped request did not root its own trace")
	}
}

// TestServerQueueWaitSnapshot checks the queue-wait phase histogram: every
// admitted request contributes a sample (zero on the uncontended fast path).
func TestServerQueueWaitSnapshot(t *testing.T) {
	addr, srv := startServer(t, blockdev.NewMem(4096), blockserve.Config{})
	dev, err := blockdev.DialRemote(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	buf := make([]byte, 128)
	for i := 0; i < 4; i++ {
		if _, err := dev.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.Snapshot()
	if snap.QueueWait == nil {
		t.Fatal("snapshot carries no queue-wait histogram")
	}
	if snap.QueueWait.Count < 4 {
		t.Fatalf("queue-wait count = %d, want >= 4 (every admitted request samples)", snap.QueueWait.Count)
	}
}
