package blockserve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: OpRead, ID: 1, Off: 4096, Count: 512},
		{Type: OpWrite, ID: 1<<64 - 1, Off: -1, Data: []byte("payload")},
		{Type: OpFlush, ID: 7},
		{Type: OpStatus},
		{Type: OpRebuild, ID: 9, Off: 3},
		{Type: RespOK, ID: 42, Off: 1 << 40, Data: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: RespErr, ID: 3, Data: []byte("blockdev: device failed")},
	}
	var wire bytes.Buffer
	var wbuf []byte
	for _, f := range frames {
		var err error
		wbuf, err = WriteFrame(&wire, wbuf, f)
		if err != nil {
			t.Fatalf("WriteFrame(%+v): %v", f, err)
		}
	}
	var rbuf []byte
	for i, want := range frames {
		got, buf, err := ReadFrame(&wire, rbuf)
		rbuf = buf
		if err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		if got.Type != want.Type || got.ID != want.ID || got.Off != want.Off || got.Count != want.Count {
			t.Fatalf("frame %d: header mismatch: got %+v want %+v", i, got, want)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d: payload mismatch: %d vs %d bytes", i, len(got.Data), len(want.Data))
		}
	}
	if _, _, err := ReadFrame(&wire, rbuf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsBadInput(t *testing.T) {
	encode := func(f Frame) []byte {
		b, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	tests := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"truncated length", []byte{0, 0}, io.ErrUnexpectedEOF},
		{"length below header", binary.BigEndian.AppendUint32(nil, headerLen-1), ErrMalformed},
		{"length above MaxFrame", binary.BigEndian.AppendUint32(nil, MaxFrame+1), ErrFrameTooLarge},
		{"truncated header", binary.BigEndian.AppendUint32(nil, headerLen)[:6], io.ErrUnexpectedEOF},
		{"truncated body", encode(Frame{Type: OpWrite, Data: []byte("abcdef")})[:headerLen+4+2], io.ErrUnexpectedEOF},
		{"unknown type", func() []byte {
			b := encode(Frame{Type: OpRead})
			b[4] = 0x7F
			return b
		}(), ErrMalformed},
		{"zero type", func() []byte {
			b := encode(Frame{Type: OpRead})
			b[4] = 0
			return b
		}(), ErrMalformed},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(tc.in), nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestFrameTraceExtension pins the wire extension: a frame carrying a trace
// context round-trips it, and its encoding is exactly the v1 encoding plus
// the 17-byte extension block — so a peer that predates the extension sees
// only an unknown type bit, never a shifted payload.
func TestFrameTraceExtension(t *testing.T) {
	want := Frame{
		Type: OpWrite, Flags: FlagTrace, ID: 7, Off: 4096,
		Trace: 0xDEADBEEFCAFEF00D, Span: 0x0123456789ABCDEF,
		Data: []byte("payload"),
	}
	b, err := AppendFrame(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	plain := want
	plain.Flags, plain.Trace, plain.Span = 0, 0, 0
	pb, err := AppendFrame(nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != len(pb)+1+16 {
		t.Fatalf("extension adds %d bytes, want 17", len(b)-len(pb))
	}
	if b[4]&FlagExt == 0 {
		t.Fatalf("type byte 0x%02x missing FlagExt", b[4])
	}
	got, _, err := ReadFrame(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.Flags != want.Flags || got.Trace != want.Trace ||
		got.Span != want.Span || !bytes.Equal(got.Data, want.Data) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	if got.Type&FlagExt != 0 {
		t.Fatalf("decoded Type 0x%02x still carries FlagExt", got.Type)
	}
}

// TestFrameExtensionCompat exercises both compatibility directions: a v1
// frame decodes with zero Flags, and a frame whose extension a decoder does
// not recognize fails loudly instead of misparsing the payload.
func TestFrameExtensionCompat(t *testing.T) {
	// Old writer → new reader: no ext bit, zero flags.
	b, err := AppendFrame(nil, Frame{Type: OpRead, ID: 3, Off: 8, Count: 16})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadFrame(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != 0 || got.Trace != 0 || got.Span != 0 {
		t.Fatalf("v1 frame decoded with extension state: %+v", got)
	}

	ext, err := AppendFrame(nil, Frame{Type: OpRead, Flags: FlagTrace, Trace: 1, Span: 2})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		in := mutate(append([]byte(nil), ext...))
		if _, _, err := ReadFrame(bytes.NewReader(in), nil); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
	corrupt("unknown flag bit", func(b []byte) []byte {
		b[4+headerLen] |= 0x80
		return b
	})
	corrupt("zero flags byte", func(b []byte) []byte {
		b[4+headerLen] = 0
		return b
	})
	corrupt("ext bit without flags byte", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b, headerLen)
		return b[:4+headerLen]
	})
	corrupt("truncated trace context", func(b []byte) []byte {
		binary.BigEndian.PutUint32(b, headerLen+1+8)
		return b[:4+headerLen+1+8]
	})
	if _, err := AppendFrame(nil, Frame{Type: OpRead, Flags: 0x82}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("AppendFrame with unknown flags: err = %v, want ErrMalformed", err)
	}
}

func TestAppendFrameRejectsOversizedPayload(t *testing.T) {
	_, err := AppendFrame(nil, Frame{Type: OpWrite, Data: make([]byte, MaxPayload+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// FuzzWireFrame pins the decoder's safety properties: arbitrary input never
// panics, never allocates beyond MaxFrame, and any frame that decodes
// successfully re-encodes to exactly the bytes consumed (so the codec cannot
// silently lose or invent wire bytes).
func FuzzWireFrame(f *testing.F) {
	seed := func(fr Frame) []byte {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(Frame{Type: OpRead, ID: 1, Off: 4096, Count: 512}))
	f.Add(seed(Frame{Type: OpWrite, ID: 2, Off: 0, Data: []byte("hello")}))
	f.Add(seed(Frame{Type: RespErr, ID: 3, Data: []byte("boom")}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})           // absurd length prefix
	f.Add(binary.BigEndian.AppendUint32(nil, 5))    // below header
	f.Add(append(seed(Frame{Type: OpFlush}), 0xAA)) // trailing garbage
	f.Add(seed(Frame{Type: OpStatus})[:7])          // truncated header
	f.Add(seed(Frame{Type: OpRead, Flags: FlagTrace, ID: 4, Trace: 0xFEED, Span: 0xBEEF}))
	f.Add(seed(Frame{Type: OpWrite, Flags: FlagTrace, Trace: 1, Span: 2, Data: []byte("tx")}))
	f.Add(func() []byte { // ext bit set but flags byte truncated away
		b := seed(Frame{Type: OpRead, Flags: FlagTrace, Trace: 9, Span: 9})
		binary.BigEndian.PutUint32(b, headerLen)
		return b[:4+headerLen]
	}())

	f.Fuzz(func(t *testing.T, in []byte) {
		fr, _, err := ReadFrame(bytes.NewReader(in), nil)
		if err != nil {
			return
		}
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		if len(re) > len(in) || !bytes.Equal(re, in[:len(re)]) {
			t.Fatalf("re-encode mismatch: read %d-byte frame from %d-byte input, got different bytes", len(re), len(in))
		}
	})
}
