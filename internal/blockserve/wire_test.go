package blockserve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: OpRead, ID: 1, Off: 4096, Count: 512},
		{Type: OpWrite, ID: 1<<64 - 1, Off: -1, Data: []byte("payload")},
		{Type: OpFlush, ID: 7},
		{Type: OpStatus},
		{Type: OpRebuild, ID: 9, Off: 3},
		{Type: RespOK, ID: 42, Off: 1 << 40, Data: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: RespErr, ID: 3, Data: []byte("blockdev: device failed")},
	}
	var wire bytes.Buffer
	var wbuf []byte
	for _, f := range frames {
		var err error
		wbuf, err = WriteFrame(&wire, wbuf, f)
		if err != nil {
			t.Fatalf("WriteFrame(%+v): %v", f, err)
		}
	}
	var rbuf []byte
	for i, want := range frames {
		got, buf, err := ReadFrame(&wire, rbuf)
		rbuf = buf
		if err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		if got.Type != want.Type || got.ID != want.ID || got.Off != want.Off || got.Count != want.Count {
			t.Fatalf("frame %d: header mismatch: got %+v want %+v", i, got, want)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d: payload mismatch: %d vs %d bytes", i, len(got.Data), len(want.Data))
		}
	}
	if _, _, err := ReadFrame(&wire, rbuf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsBadInput(t *testing.T) {
	encode := func(f Frame) []byte {
		b, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	tests := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"truncated length", []byte{0, 0}, io.ErrUnexpectedEOF},
		{"length below header", binary.BigEndian.AppendUint32(nil, headerLen-1), ErrMalformed},
		{"length above MaxFrame", binary.BigEndian.AppendUint32(nil, MaxFrame+1), ErrFrameTooLarge},
		{"truncated header", binary.BigEndian.AppendUint32(nil, headerLen)[:6], io.ErrUnexpectedEOF},
		{"truncated body", encode(Frame{Type: OpWrite, Data: []byte("abcdef")})[:headerLen+4+2], io.ErrUnexpectedEOF},
		{"unknown type", func() []byte {
			b := encode(Frame{Type: OpRead})
			b[4] = 0x7F
			return b
		}(), ErrMalformed},
		{"zero type", func() []byte {
			b := encode(Frame{Type: OpRead})
			b[4] = 0
			return b
		}(), ErrMalformed},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(tc.in), nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestAppendFrameRejectsOversizedPayload(t *testing.T) {
	_, err := AppendFrame(nil, Frame{Type: OpWrite, Data: make([]byte, MaxPayload+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// FuzzWireFrame pins the decoder's safety properties: arbitrary input never
// panics, never allocates beyond MaxFrame, and any frame that decodes
// successfully re-encodes to exactly the bytes consumed (so the codec cannot
// silently lose or invent wire bytes).
func FuzzWireFrame(f *testing.F) {
	seed := func(fr Frame) []byte {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(Frame{Type: OpRead, ID: 1, Off: 4096, Count: 512}))
	f.Add(seed(Frame{Type: OpWrite, ID: 2, Off: 0, Data: []byte("hello")}))
	f.Add(seed(Frame{Type: RespErr, ID: 3, Data: []byte("boom")}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})           // absurd length prefix
	f.Add(binary.BigEndian.AppendUint32(nil, 5))    // below header
	f.Add(append(seed(Frame{Type: OpFlush}), 0xAA)) // trailing garbage
	f.Add(seed(Frame{Type: OpStatus})[:7])          // truncated header

	f.Fuzz(func(t *testing.T, in []byte) {
		fr, _, err := ReadFrame(bytes.NewReader(in), nil)
		if err != nil {
			return
		}
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		if len(re) > len(in) || !bytes.Equal(re, in[:len(re)]) {
			t.Fatalf("re-encode mismatch: read %d-byte frame from %d-byte input, got different bytes", len(re), len(in))
		}
	})
}
