package blockserve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcode/internal/obs"
	"dcode/internal/trace"
)

// Backend is the volume a Server fronts: random-access reads and writes over
// a fixed size. Both *raid.Array and blockdev.Device satisfy it, so the same
// server binary serves a whole array or a single column file.
type Backend interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() int64
}

// Flusher is implemented by backends that can persist outstanding writes;
// FLUSH succeeds as a no-op otherwise.
type Flusher interface {
	Flush() error
}

// Statuser is implemented by backends with a richer status document than the
// default {"size": N}; the array adapter returns the full raid snapshot.
type Statuser interface {
	StatusJSON() ([]byte, error)
}

// Rebuilder is implemented by array backends; REBUILD fails cleanly on
// backends without it (a single column device has nothing to rebuild).
type Rebuilder interface {
	Rebuild(disk int) error
}

// LinkedBackend is implemented by backends that can thread an incoming trace
// link into their own operation spans (raid.Array via ReadAtLink/WriteAtLink).
// When a request carries a trace extension and the backend supports it, the
// serve span's link is passed down so the backend's op span — and everything
// under it, including requests to further remote columns — joins the request's
// end-to-end trace.
type LinkedBackend interface {
	ReadAtLink(p []byte, off int64, parent trace.Link) (int, error)
	WriteAtLink(p []byte, off int64, parent trace.Link) (int, error)
}

// Config tunes a Server. The zero value is usable: defaults below apply.
type Config struct {
	// MaxClients caps concurrently connected clients; further connections
	// are sent one ERR frame and closed. Default 256.
	MaxClients int
	// MaxInflight caps requests being served at once across all clients —
	// the admission-control/backpressure limit. A connection whose request
	// cannot acquire a slot stops being read until one frees, so pressure
	// propagates to the client through TCP flow control. Default 128.
	MaxInflight int
	// RequestTimeout bounds each request's handling, measured from dispatch:
	// a request whose deadline expires before it reaches the backend is
	// answered with an ERR frame instead of touching the devices. Zero means
	// no per-request deadline — requests are bounded only by server shutdown.
	RequestTimeout time.Duration
	// Tracer, when non-nil and enabled, records one client-tagged span per
	// served request.
	Tracer *trace.Tracer
	// Events, when non-nil, receives flight-recorder events: admission
	// saturation, and a dump of the ring if a request handler panics.
	Events *obs.Recorder
	// Logf, when non-nil, receives connection lifecycle and protocol-error
	// lines.
	Logf func(format string, args ...any)
}

const (
	defaultMaxClients  = 256
	defaultMaxInflight = 128
)

// ErrDraining is the message sent to clients rejected because the server is
// shutting down, and ErrClientCap to those beyond the client limit.
var (
	ErrDraining  = errors.New("blockserve: server draining")
	ErrClientCap = errors.New("blockserve: server at client capacity")
)

// clientState is one connection's tally; counters are atomics because the
// reader goroutine and the per-request handler goroutines all touch them.
type clientState struct {
	id   int64
	addr string
	conn net.Conn

	reads, writes, flushes, admin, errs atomic.Int64
	bytesIn, bytesOut                   atomic.Int64

	// wmu serializes response frames; pipelined requests complete out of
	// order and interleave on the shared connection.
	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte
	// inflight counts this connection's requests being served; drain waits
	// for every connection to quiesce before closing it.
	inflight atomic.Int64
}

func (c *clientState) snapshot(active bool) obs.ClientSnapshot {
	return obs.ClientSnapshot{
		ID:       c.id,
		Addr:     c.addr,
		Active:   active,
		Reads:    c.reads.Load(),
		Writes:   c.writes.Load(),
		Flushes:  c.flushes.Load(),
		Admin:    c.admin.Load(),
		Errors:   c.errs.Load(),
		BytesIn:  c.bytesIn.Load(),
		BytesOut: c.bytesOut.Load(),
	}
}

// Server serves one Backend to many concurrent clients.
type Server struct {
	backend Backend
	linked  LinkedBackend // backend's trace-threading view, nil if unsupported
	cfg     Config

	sem chan struct{} // inflight-request semaphore

	// queueWait is the admission-queue wait distribution; semSaturated counts
	// requests that found the semaphore full. The fast path (slot free)
	// observes a zero without reading the clock.
	queueWait    obs.Histogram
	semSaturated atomic.Int64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*clientState]struct{}
	closed   obs.ClientSnapshot // aggregate of departed clients
	draining bool

	nextClient atomic.Int64
	accepted   atomic.Int64
	rejected   atomic.Int64
	inflight   atomic.Int64

	wg sync.WaitGroup
}

// New returns a Server fronting backend.
func New(backend Backend, cfg Config) *Server {
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = defaultMaxClients
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = defaultMaxInflight
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Nop
	}
	lb, _ := backend.(LinkedBackend)
	return &Server{
		backend: backend,
		linked:  lb,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInflight),
		conns:   make(map[*clientState]struct{}),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until Shutdown (or a fatal listener error)
// and blocks until every connection goroutine has exited. The context it
// roots here is the server's lifetime: every connection and request context
// derives from it, so when Serve returns, everything below is cancelled.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.ln = ln
	s.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	defer s.wg.Wait()
	defer cancel() // runs before the Wait: handlers see cancellation first
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.admit(ctx, conn)
	}
}

// admit applies the client cap and hands an accepted connection to its
// reader goroutine. Rejected connections get one best-effort ERR frame so
// the client sees why, not just a reset.
func (s *Server) admit(ctx context.Context, conn net.Conn) {
	s.mu.Lock()
	reject := error(nil)
	switch {
	case s.draining:
		reject = ErrDraining
	case len(s.conns) >= s.cfg.MaxClients:
		reject = ErrClientCap
	}
	if reject != nil {
		s.mu.Unlock()
		s.rejected.Add(1)
		_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
		//lint:ignore iocheck best-effort courtesy ERR to a connection we close on the next line
		_, _ = WriteFrame(conn, nil, Frame{Type: RespErr, Data: []byte(reject.Error())})
		_ = conn.Close()
		return
	}
	c := &clientState{
		id:   s.nextClient.Add(1),
		addr: conn.RemoteAddr().String(),
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.accepted.Add(1)
	s.logf("blockserve: client %d connected from %s", c.id, c.addr)
	s.wg.Add(1)
	go s.serveConn(ctx, c)
}

// requestCtx derives one request's context from the connection's: bounded by
// RequestTimeout when configured, otherwise cancellation-only.
func (s *Server) requestCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	return context.WithCancel(ctx)
}

// serveConn is the per-client connection goroutine: it decodes request
// frames and dispatches each to a handler goroutine once an inflight slot is
// acquired — acquisition blocks further reads from this client, which is the
// backpressure path.
func (s *Server) serveConn(ctx context.Context, c *clientState) {
	defer s.wg.Done()
	defer func() {
		_ = c.conn.Close()
		s.mu.Lock()
		delete(s.conns, c)
		snap := c.snapshot(false)
		s.closed.Merge(snap)
		s.mu.Unlock()
		s.logf("blockserve: client %d disconnected (%d ops)", c.id, snap.Ops())
	}()
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var rbuf []byte
	for {
		f, buf, err := ReadFrame(br, rbuf)
		rbuf = buf
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !isEOF(err) {
				s.logf("blockserve: client %d read: %v", c.id, err)
			}
			return
		}
		if f.Type >= RespOK {
			s.logf("blockserve: client %d sent response type 0x%02x", c.id, f.Type)
			return
		}
		// A WRITE payload aliases the read buffer, which the next ReadFrame
		// reuses; copy it before the handler leaves this goroutine.
		if f.Type == OpWrite && len(f.Data) > 0 {
			f.Data = append([]byte(nil), f.Data...)
		}
		// Inflight admission; a full semaphore blocks the reader, which is the
		// backpressure path. The free-slot fast path records a zero wait
		// without reading the clock; only a saturated arrival pays for
		// timestamps — and leaves a flight-recorder event, since saturation is
		// exactly the "where did my p99 go" moment.
		select {
		case s.sem <- struct{}{}:
			s.queueWait.ObserveNanos(0)
		default:
			s.semSaturated.Add(1)
			s.cfg.Events.Record(obs.EvSemSaturated, -1, -1, 0, s.inflight.Load())
			waitStart := time.Now()
			s.sem <- struct{}{}
			s.queueWait.Observe(time.Since(waitStart))
		}
		s.inflight.Add(1)
		c.inflight.Add(1)
		rctx, rcancel := s.requestCtx(ctx)
		s.wg.Add(1)
		go func(f Frame) {
			defer s.wg.Done()
			defer rcancel()
			s.handle(rctx, c, f)
			c.inflight.Add(-1)
			s.inflight.Add(-1)
			<-s.sem
		}(f)
	}
}

func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// handle executes one request and writes its response frame. The context
// carries the server lifetime and the optional per-request deadline; a
// request that is already expired when it reaches the front of the inflight
// queue is failed without touching the backend.
func (s *Server) handle(ctx context.Context, c *clientState, f Frame) {
	if s.cfg.Events != nil {
		// Flight-recorder last words: a panicking handler takes the process
		// down (Go has no global panic hook), so dump the event ring on the
		// way out, then let the panic proceed. Costs one defer per request —
		// only when a recorder is attached.
		defer func() {
			if p := recover(); p != nil {
				s.cfg.Events.Record(obs.EvPanic, -1, -1, f.Trace, 0)
				fmt.Fprintf(os.Stderr, "blockserve: panic serving client %d: %v\nflight recorder:\n", c.id, p)
				s.cfg.Events.Dump(os.Stderr)
				panic(p)
			}
		}()
	}
	var (
		resp Frame
		op   trace.Op
	)
	resp.ID = f.ID
	resp.Type = RespOK
	switch f.Type {
	case OpRead:
		op = trace.OpServeRead
	case OpWrite:
		op = trace.OpServeWrite
	case OpFlush:
		op = trace.OpServeFlush
	case OpStatus:
		op = trace.OpServeStatus
	case OpRebuild:
		op = trace.OpServeRebuild
	}
	// The serve span roots under the request's wire trace context when one
	// was stamped (Trace/Span zero otherwise): the span adopts the caller's
	// trace ID and records the caller's span as its remote parent.
	tc := s.cfg.Tracer.BeginClient(op, int32(c.id), trace.Link{Trace: f.Trace, Span: f.Span})
	var bytes int64
	var err error

	if cerr := ctx.Err(); cerr != nil {
		// Expired while queued for an inflight slot (or the server is
		// winding down): answer without touching the backend.
		err = fmt.Errorf("request aborted before dispatch: %w", cerr)
	}

	switch {
	case err != nil:
	case f.Type == OpRead:
		if f.Count > MaxPayload {
			err = fmt.Errorf("read of %d bytes exceeds frame payload limit %d", f.Count, MaxPayload)
			break
		}
		buf := make([]byte, f.Count)
		var n int
		if s.linked != nil && tc.Active() {
			n, err = s.linked.ReadAtLink(buf, f.Off, tc.Link())
		} else {
			n, err = s.backend.ReadAt(buf, f.Off)
		}
		if err == nil {
			resp.Data = buf[:n]
			bytes = int64(n)
			c.reads.Add(1)
			c.bytesOut.Add(bytes)
		}
	case f.Type == OpWrite:
		var n int
		if s.linked != nil && tc.Active() {
			n, err = s.linked.WriteAtLink(f.Data, f.Off, tc.Link())
		} else {
			n, err = s.backend.WriteAt(f.Data, f.Off)
		}
		if err == nil {
			resp.Count = uint32(n)
			bytes = int64(n)
			c.writes.Add(1)
			c.bytesIn.Add(bytes)
		}
	case f.Type == OpFlush:
		if fl, ok := s.backend.(Flusher); ok {
			err = fl.Flush()
		}
		if err == nil {
			c.flushes.Add(1)
		}
	case f.Type == OpStatus:
		resp.Off = s.backend.Size()
		// A STATUS response's Count carries the server's capability bitmask;
		// clients gate frame extensions on it (old servers leave it zero).
		resp.Count = Caps
		if st, ok := s.backend.(Statuser); ok {
			resp.Data, err = st.StatusJSON()
		} else {
			resp.Data = []byte(fmt.Sprintf(`{"size":%d}`, resp.Off))
		}
		if err == nil {
			c.admin.Add(1)
		}
	case f.Type == OpRebuild:
		if rb, ok := s.backend.(Rebuilder); ok {
			err = rb.Rebuild(int(f.Off))
		} else {
			err = errors.New("backend does not support rebuild")
		}
		if err == nil {
			c.admin.Add(1)
		}
	}

	if err != nil {
		c.errs.Add(1)
		resp = Frame{Type: RespErr, ID: f.ID, Data: []byte(err.Error())}
	}
	s.cfg.Tracer.End(tc, bytes, err != nil)

	c.wmu.Lock()
	defer c.wmu.Unlock()
	wbuf, werr := WriteFrame(c.bw, c.wbuf, resp)
	c.wbuf = wbuf
	if werr == nil {
		werr = c.bw.Flush()
	}
	if werr != nil {
		// The reader goroutine notices the closed connection and cleans up.
		_ = c.conn.Close()
	}
}

// Shutdown gracefully drains the server: it stops accepting, waits for every
// in-flight request to complete (bounded by ctx), then closes the remaining
// connections and waits for their goroutines. It is the SIGTERM path of
// cmd/raidserve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}

	// Wait for in-flight work, polling cheaply; new requests still arriving
	// on open connections keep being served until the connections close
	// below, but the common client (blockdev.Remote, loadgen) stops sending
	// once its own process winds down.
	drained := ctx.Err() == nil
	for drained && s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			drained = false
		case <-time.After(2 * time.Millisecond):
		}
	}

	s.mu.Lock()
	for c := range s.conns {
		_ = c.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if !drained {
		return ctx.Err()
	}
	return nil
}

// Snapshot returns the server's metric view: lifecycle counters, the
// admission configuration, the all-time totals and the live per-client
// detail, sorted by client id (the conns map iterates randomly).
func (s *Server) Snapshot() obs.ServerSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	qw := s.queueWait.Snapshot()
	snap := obs.ServerSnapshot{
		Accepted:     s.accepted.Load(),
		Rejected:     s.rejected.Load(),
		Active:       int64(len(s.conns)),
		Inflight:     s.inflight.Load(),
		MaxClients:   s.cfg.MaxClients,
		MaxInflight:  s.cfg.MaxInflight,
		Draining:     s.draining,
		Totals:       s.closed,
		QueueWait:    &qw,
		SemSaturated: s.semSaturated.Load(),
	}
	if s.ln != nil {
		snap.Addr = s.ln.Addr().String()
	}
	for c := range s.conns {
		cs := c.snapshot(true)
		snap.Totals.Merge(cs)
		snap.Clients = append(snap.Clients, cs)
	}
	// Totals is an aggregate, not a client: strip the identity fields the
	// merges adopted.
	snap.Totals.ID, snap.Totals.Addr, snap.Totals.Active = 0, "", false
	sort.Slice(snap.Clients, func(i, j int) bool { return snap.Clients[i].ID < snap.Clients[j].ID })
	return snap
}
