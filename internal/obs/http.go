package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler serves the JSON encoding of snapshot() on every request. snapshot
// is called per request, so the handler always reports live values.
func Handler(snapshot func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Publish registers snapshot under name in the process-wide expvar registry,
// so it shows up on /debug/vars alongside the runtime's memstats. Publishing
// the same name twice panics (expvar semantics), so callers publish once per
// process.
func Publish(name string, snapshot func() any) {
	expvar.Publish(name, expvar.Func(snapshot))
}

// NewMux returns an http.ServeMux exposing the standard observability
// endpoints without touching http.DefaultServeMux:
//
//	/stats          – JSON of snapshot()
//	/metrics        – Prometheus text exposition of collect (omitted if nil)
//	/debug/vars     – expvar (anything Publish-ed, plus runtime stats)
//	/debug/pprof/…  – the usual pprof profiles
func NewMux(snapshot func() any, collect func(*PromWriter)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/stats", Handler(snapshot))
	if collect != nil {
		mux.Handle("/metrics", PromHandler(collect))
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
