package obs

import (
	"reflect"
	"testing"
)

// vetGuarded reports whether t transitively contains a sync or sync/atomic
// type. Those all embed a noCopy marker, so `go vet`'s copylocks check —
// which CI runs on every push — rejects any by-value copy of a struct that
// contains one. This is the repo's copy-safety audit for the metrics types:
// if a field is ever changed to a plain integer, this test fails and the
// type needs an explicit noCopy guard instead.
func vetGuarded(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Struct:
		if pkg := t.PkgPath(); pkg == "sync" || pkg == "sync/atomic" {
			return true
		}
		for i := 0; i < t.NumField(); i++ {
			if vetGuarded(t.Field(i).Type) {
				return true
			}
		}
	case reflect.Array:
		return vetGuarded(t.Elem())
	}
	return false
}

func TestMetricsTypesAreCopylocksVisible(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Counter{}),
		reflect.TypeOf(Histogram{}),
		reflect.TypeOf(CacheMetrics{}),
		reflect.TypeOf(IOMetrics{}),
		reflect.TypeOf(LoadWindow{}),
	} {
		if !vetGuarded(typ) {
			t.Errorf("%s is documented as must-not-copy but carries no vet-visible lock guard", typ)
		}
	}
}
