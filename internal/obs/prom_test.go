package obs

import (
	"errors"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func TestPromWriterGolden(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Family("dcode_ops_total", "Logical operations.", "counter")
	pw.SampleInt("dcode_ops_total", []Label{{Name: "op", Value: "read"}}, 42)
	pw.Sample("dcode_lf", nil, 1.25)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP dcode_ops_total Logical operations.\n" +
		"# TYPE dcode_ops_total counter\n" +
		`dcode_ops_total{op="read"} 42` + "\n" +
		"dcode_lf 1.25\n"
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestPromWriterEscapesLabelValues(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.SampleInt("m", []Label{{Name: "v", Value: "a\\b\"c\nd"}}, 1)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	want := `m{v="a\\b\"c\nd"} 1` + "\n"
	if b.String() != want {
		t.Errorf("escaped line %q, want %q", b.String(), want)
	}
}

func TestPromWriterRejectsInvalidNames(t *testing.T) {
	cases := []func(pw *PromWriter){
		func(pw *PromWriter) { pw.Family("9bad", "x", "counter") },
		func(pw *PromWriter) { pw.Family("ok", "x", "nonsense") },
		func(pw *PromWriter) { pw.SampleInt("bad name", nil, 1) },
		func(pw *PromWriter) { pw.SampleInt("ok", []Label{{Name: "bad:label", Value: "v"}}, 1) },
		func(pw *PromWriter) { pw.SampleInt("", nil, 1) },
	}
	for i, f := range cases {
		var b strings.Builder
		pw := NewPromWriter(&b)
		f(pw)
		if pw.Err() == nil {
			t.Errorf("case %d: invalid input accepted", i)
		}
	}
}

func TestPromWriterErrIsSticky(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.SampleInt("bad name", nil, 1)
	first := pw.Err()
	pw.SampleInt("fine", nil, 2)
	pw.Family("also_fine", "x", "gauge")
	if !errors.Is(pw.Err(), first) {
		t.Errorf("error replaced: %v then %v", first, pw.Err())
	}
	if strings.Contains(b.String(), "fine") {
		t.Error("writer kept emitting after an error")
	}
}

func TestPromFamilyDeduplicates(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Family("m_total", "help", "counter")
	pw.Family("m_total", "help", "counter")
	if got := strings.Count(b.String(), "# TYPE m_total"); got != 1 {
		t.Errorf("TYPE emitted %d times, want 1", got)
	}
}

func TestValidPromName(t *testing.T) {
	for name, want := range map[string]bool{
		"dcode_ops_total": true,
		"a:b":             true,
		"_x9":             true,
		"":                false,
		"9a":              false,
		"a-b":             false,
		"a b":             false,
	} {
		if got := ValidPromName(name); got != want {
			t.Errorf("ValidPromName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestWriteHistogramSummary(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.ObserveNanos(int64(i) * 1000)
	}
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.WriteHistogramSummary("lat_seconds", "latency", nil, h.Snapshot())
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"# TYPE lat_seconds summary",
		`lat_seconds{quantile="0.5"}`,
		`lat_seconds{quantile="0.95"}`,
		`lat_seconds{quantile="0.99"}`,
		"lat_seconds_sum ",
		"lat_seconds_count 100",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("summary missing %q:\n%s", frag, out)
		}
	}
}

// promLine matches a well-formed exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func TestPromHandler(t *testing.T) {
	h := PromHandler(func(pw *PromWriter) {
		pw.Family("x_total", "a counter", "counter")
		pw.SampleInt("x_total", nil, 3)
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("content-type %q, want %q", ct, PromContentType)
	}
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}

	broken := PromHandler(func(pw *PromWriter) {
		pw.SampleInt("x_total", nil, 1)
		pw.SampleInt("bad name", nil, 2)
	})
	rec = httptest.NewRecorder()
	broken.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 500 {
		t.Errorf("broken collect served %d, want 500", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "x_total 1") {
		t.Error("broken collect leaked a partial exposition")
	}
}

func TestNewMuxMetricsEndpoint(t *testing.T) {
	mux := NewMux(
		func() any { return map[string]int{"n": 1} },
		func(pw *PromWriter) {
			pw.Family("y_gauge", "a gauge", "gauge")
			pw.Sample("y_gauge", []Label{{Name: "disk", Value: "0"}}, 2.5)
		})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("content-type %q", ct)
	}
	if want := `y_gauge{disk="0"} 2.5`; !strings.Contains(rec.Body.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, rec.Body.String())
	}

	// Without a collector the endpoint is absent, not a 500.
	mux = NewMux(func() any { return nil }, nil)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Errorf("GET /metrics with nil collector = %d, want 404", rec.Code)
	}
}
