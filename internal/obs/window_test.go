package obs

import (
	"sync"
	"testing"
	"time"
)

func TestLoadWindowRecordAndSnapshot(t *testing.T) {
	w := NewLoadWindow(3, 60, time.Second)
	for d := 0; d < 3; d++ {
		w.Record(d, false, 10)
		w.Record(d, true, 5)
	}
	s := w.Snapshot()
	for d := 0; d < 3; d++ {
		if s.Reads[d] != 10 || s.Writes[d] != 5 {
			t.Errorf("disk %d: reads=%d writes=%d, want 10/5", d, s.Reads[d], s.Writes[d])
		}
		if s.Load.PerDisk[d] != 15 {
			t.Errorf("disk %d combined load %d, want 15", d, s.Load.PerDisk[d])
		}
	}
	if s.Load.LF != 1 {
		t.Errorf("balanced window LF = %v, want 1", s.Load.LF)
	}
	if s.ReadsPerSec <= 0 || s.WritesPerSec <= 0 {
		t.Errorf("rates %v/%v, want positive", s.ReadsPerSec, s.WritesPerSec)
	}
	if len(s.HotDisks) != 0 {
		t.Errorf("balanced load flagged hot disks %v", s.HotDisks)
	}
	if s.WindowNanos <= 0 || s.WindowNanos > int64(60*time.Second) {
		t.Errorf("covered window %d ns", s.WindowNanos)
	}
}

func TestLoadWindowHotDiskDetection(t *testing.T) {
	w := NewLoadWindow(4, 60, time.Second)
	for d := 0; d < 4; d++ {
		w.Record(d, false, 10)
	}
	w.Record(2, true, 100) // disk 2 now way over 1.5× the mean
	s := w.Snapshot()
	if len(s.HotDisks) != 1 || s.HotDisks[0] != 2 {
		t.Errorf("hot disks %v, want [2]", s.HotDisks)
	}
	if s.HotFactor != DefaultHotFactor {
		t.Errorf("hot factor %v, want default %v", s.HotFactor, DefaultHotFactor)
	}

	w.SetHotFactor(1) // ≤ 1 disables detection
	if s := w.Snapshot(); len(s.HotDisks) != 0 {
		t.Errorf("detection disabled but hot disks %v", s.HotDisks)
	}
	w.SetHotFactor(20) // nothing is 20× the mean
	if s := w.Snapshot(); len(s.HotDisks) != 0 {
		t.Errorf("factor 20 but hot disks %v", s.HotDisks)
	}
}

func TestLoadWindowAgesOut(t *testing.T) {
	// 4 slots × 10ms: counts must disappear once the window rolls past them.
	w := NewLoadWindow(2, 4, 10*time.Millisecond)
	w.Record(0, false, 100)
	if s := w.Snapshot(); s.Reads[0] != 100 {
		t.Fatalf("fresh count missing: %v", s.Reads)
	}
	deadline := time.Now().Add(time.Second)
	for {
		if s := w.Snapshot(); s.Reads[0] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("count never aged out of a 40ms window")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLoadWindowReset(t *testing.T) {
	w := NewLoadWindow(2, 8, time.Second)
	w.Record(0, false, 7)
	w.Record(1, true, 9)
	w.Reset()
	s := w.Snapshot()
	if s.Reads[0] != 0 || s.Writes[1] != 0 || s.Load.Total != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestLoadWindowNilSafe(t *testing.T) {
	var w *LoadWindow
	w.Record(0, false, 1) // must not panic
}

// TestLoadWindowConcurrent exercises rotation racing Record and Snapshot;
// run under -race in CI.
func TestLoadWindowConcurrent(t *testing.T) {
	w := NewLoadWindow(4, 3, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				w.Record(g, i%3 == 0, 1)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for stop := false; !stop; {
		select {
		case <-done:
			stop = true
		default:
		}
		s := w.Snapshot()
		for d, v := range s.Load.PerDisk {
			if v < 0 {
				t.Fatalf("disk %d negative load %d", d, v)
			}
		}
	}
}
