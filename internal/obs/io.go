package obs

// IOMetrics instruments one block device: operation and byte counts, error
// counts, and per-operation latency histograms. All fields are lock-free;
// blockdev.Instrument feeds one of these per array column.
//
// The zero value is ready to use. IOMetrics must not be copied after first
// use.
type IOMetrics struct {
	Reads        Counter
	Writes       Counter
	ReadErrors   Counter
	WriteErrors  Counter
	BytesRead    Counter
	BytesWritten Counter
	ReadLatency  Histogram
	WriteLatency Histogram
}

// Reset zeroes every metric (quiescent writers only).
func (m *IOMetrics) Reset() {
	m.Reads.Reset()
	m.Writes.Reset()
	m.ReadErrors.Reset()
	m.WriteErrors.Reset()
	m.BytesRead.Reset()
	m.BytesWritten.Reset()
	m.ReadLatency.Reset()
	m.WriteLatency.Reset()
}

// Snapshot captures the device metrics.
func (m *IOMetrics) Snapshot() IOSnapshot {
	return IOSnapshot{
		Reads:        m.Reads.Load(),
		Writes:       m.Writes.Load(),
		ReadErrors:   m.ReadErrors.Load(),
		WriteErrors:  m.WriteErrors.Load(),
		BytesRead:    m.BytesRead.Load(),
		BytesWritten: m.BytesWritten.Load(),
		ReadLatency:  m.ReadLatency.Snapshot(),
		WriteLatency: m.WriteLatency.Snapshot(),
	}
}

// IOSnapshot is the JSON-friendly view of an IOMetrics.
type IOSnapshot struct {
	Reads        int64             `json:"reads"`
	Writes       int64             `json:"writes"`
	ReadErrors   int64             `json:"read_errors"`
	WriteErrors  int64             `json:"write_errors"`
	BytesRead    int64             `json:"bytes_read"`
	BytesWritten int64             `json:"bytes_written"`
	ReadLatency  HistogramSnapshot `json:"read_latency"`
	WriteLatency HistogramSnapshot `json:"write_latency"`
}

// Ops returns the total operation count (reads + writes).
func (s *IOSnapshot) Ops() int64 { return s.Reads + s.Writes }

// Merge accumulates another snapshot into s.
func (s *IOSnapshot) Merge(o IOSnapshot) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadErrors += o.ReadErrors
	s.WriteErrors += o.WriteErrors
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.ReadLatency.Merge(o.ReadLatency)
	s.WriteLatency.Merge(o.WriteLatency)
}
