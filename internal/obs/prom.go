package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): a minimal, dependency-
// free writer for the metric families the RAID engine exports, plus the
// /metrics HTTP handler NewMux mounts next to the expvar endpoint. The
// writer validates metric and label names and escapes label values, so a
// malformed family is an error the handler reports instead of silently
// emitting output a scraper rejects.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// A Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// PromWriter accumulates one exposition. Errors are sticky: the first
// invalid name or write failure is kept and reported by Err.
type PromWriter struct {
	w     io.Writer
	err   error
	typed map[string]bool
}

// NewPromWriter returns a writer emitting to w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]bool)}
}

// Err returns the first error the writer hit, nil if the exposition is valid.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) setErr(err error) {
	if p.err == nil {
		p.err = err
	}
}

// ValidPromName reports whether s is a legal metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func ValidPromName(s string) bool { return validPromIdent(s, true) }

// validPromIdent checks a metric name (colons allowed) or label name.
func validPromIdent(s string, colons bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == ':' && colons:
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapePromLabel escapes a label value per the exposition format.
func escapePromLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Family declares a metric family's HELP and TYPE once; repeat declarations
// of the same name are ignored so callers can group samples freely.
func (p *PromWriter) Family(name, help, typ string) {
	if p.err != nil {
		return
	}
	if !ValidPromName(name) {
		p.setErr(fmt.Errorf("obs: invalid metric name %q", name))
		return
	}
	switch typ {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		p.setErr(fmt.Errorf("obs: invalid metric type %q for %s", typ, name))
		return
	}
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	// HELP text may not contain newlines unescaped.
	help = strings.ReplaceAll(help, "\n", " ")
	if _, err := fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ); err != nil {
		p.setErr(err)
	}
}

// sample emits one pre-formatted-value sample line.
func (p *PromWriter) sample(name string, labels []Label, value string) {
	if p.err != nil {
		return
	}
	if !ValidPromName(name) {
		p.setErr(fmt.Errorf("obs: invalid metric name %q", name))
		return
	}
	var b bytes.Buffer
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if !validPromIdent(l.Name, false) {
				p.setErr(fmt.Errorf("obs: invalid label name %q on %s", l.Name, name))
				return
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapePromLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
	if _, err := p.w.Write(b.Bytes()); err != nil {
		p.setErr(err)
	}
}

// Sample emits one sample line. Labels may be nil.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	p.sample(name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// SampleInt is Sample for integer-valued metrics (exact formatting, no
// float rounding at 2^53).
func (p *PromWriter) SampleInt(name string, labels []Label, v int64) {
	p.sample(name, labels, strconv.FormatInt(v, 10))
}

// WriteHistogramSummary emits a latency histogram as a Prometheus summary:
// quantile-labelled gauges in seconds plus _sum and _count, the shape
// Grafana latency panels expect. The quantiles are the log₂-bucket upper
// bound estimates of HistogramSnapshot.
func (p *PromWriter) WriteHistogramSummary(name, help string, labels []Label, h HistogramSnapshot) {
	p.Family(name, help, "summary")
	for _, q := range [...]struct {
		q  string
		ns int64
	}{{"0.5", h.P50Nanos}, {"0.95", h.P95Nanos}, {"0.99", h.P99Nanos}, {"0.999", h.P999Nanos}} {
		ql := append(append([]Label(nil), labels...), Label{"quantile", q.q})
		p.Sample(name, ql, float64(q.ns)/1e9)
	}
	p.Sample(name+"_sum", labels, float64(h.SumNanos)/1e9)
	p.SampleInt(name+"_count", labels, h.Count)
}

// PromHandler serves the exposition produced by collect. The collection is
// buffered so a failed collect yields a clean 500 instead of a truncated
// scrape, and collect runs per request so values are always live.
func PromHandler(collect func(*PromWriter)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		pw := NewPromWriter(&buf)
		collect(pw)
		if err := pw.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", PromContentType)
		_, _ = w.Write(buf.Bytes())
	})
}
