package obs

// AsyncMetrics is the counter set of an asynchronous device-submission
// engine (internal/blockdev's AsyncQueue implementations): how many
// operations were submitted and completed, how they were grouped into kernel
// (or worker-pool) submission batches, how often the submission queue was
// full, and the submit→completion latency — which includes time parked in
// the queue, so comparing it against the per-device service histograms makes
// queueing delay visible.
//
// Like every type in this package it is lock-free and safe for concurrent
// use; the zero value is ready.
type AsyncMetrics struct {
	// Submitted and Completed count individual vectored operations; their
	// difference is the in-flight depth at snapshot time.
	Submitted Counter
	Completed Counter
	// Batches counts submission flushes (Kick calls and queue-full
	// auto-flushes); Submitted/Batches is the mean batch size.
	Batches Counter
	// BatchSizes is a log₂ histogram of operations per batch: BatchSizes[i]
	// counts batches of [2^(i-1), 2^i) ops (index 0 is unused — a flush of
	// zero ops is not a batch).
	BatchSizes [asyncBatchBuckets]Counter
	// SQFullStalls counts submissions that found the queue full and had to
	// wait for (or force) a flush — the backpressure signal that the
	// configured depth, not the devices, is the bottleneck.
	SQFullStalls Counter
	// OpLatency spans submit to completion callback, queueing included.
	OpLatency Histogram
}

// asyncBatchBuckets covers batch sizes up to 2^15; the raid scheduler
// submits at most a stripe's runs per batch, far below that.
const asyncBatchBuckets = 16

// RecordBatch tallies one submission flush of n operations.
func (m *AsyncMetrics) RecordBatch(n int) {
	if n <= 0 {
		return
	}
	m.Batches.Inc()
	b := bucketOf(int64(n))
	if b >= asyncBatchBuckets {
		b = asyncBatchBuckets - 1
	}
	m.BatchSizes[b].Inc()
}

// Snapshot captures the engine counters; Engine and Depth are filled by the
// queue that owns the metrics.
func (m *AsyncMetrics) Snapshot() AsyncSnapshot {
	s := AsyncSnapshot{
		Submitted:    m.Submitted.Load(),
		Completed:    m.Completed.Load(),
		Batches:      m.Batches.Load(),
		SQFullStalls: m.SQFullStalls.Load(),
		BatchSizes:   make([]int64, asyncBatchBuckets),
		OpLatency:    m.OpLatency.Snapshot(),
	}
	s.Inflight = s.Submitted - s.Completed
	if s.Inflight < 0 {
		// Counters are read without a barrier; clamp the transient skew.
		s.Inflight = 0
	}
	for i := range m.BatchSizes {
		s.BatchSizes[i] = m.BatchSizes[i].Load()
	}
	return s
}

// Reset zeroes the counters; exact only while the engine is idle.
func (m *AsyncMetrics) Reset() {
	m.Submitted.Reset()
	m.Completed.Reset()
	m.Batches.Reset()
	m.SQFullStalls.Reset()
	for i := range m.BatchSizes {
		m.BatchSizes[i].Reset()
	}
	m.OpLatency.Reset()
}

// AsyncSnapshot is the JSON view of AsyncMetrics plus the queue's identity:
// which engine backs it ("uring" or "pool") and its configured depth.
type AsyncSnapshot struct {
	Engine       string            `json:"engine"`
	Depth        int               `json:"depth"`
	Submitted    int64             `json:"submitted"`
	Completed    int64             `json:"completed"`
	Inflight     int64             `json:"inflight"`
	Batches      int64             `json:"batches"`
	BatchSizes   []int64           `json:"batch_sizes"`
	SQFullStalls int64             `json:"sq_full_stalls"`
	OpLatency    HistogramSnapshot `json:"op_latency"`
}

// Merge accumulates another snapshot into s. Identity fields (Engine, Depth)
// are taken from o when s has none, matching the other snapshot merges.
func (s *AsyncSnapshot) Merge(o AsyncSnapshot) {
	if s.Engine == "" {
		s.Engine = o.Engine
		s.Depth = o.Depth
	}
	s.Submitted += o.Submitted
	s.Completed += o.Completed
	s.Inflight += o.Inflight
	s.Batches += o.Batches
	s.SQFullStalls += o.SQFullStalls
	for len(s.BatchSizes) < len(o.BatchSizes) {
		s.BatchSizes = append(s.BatchSizes, 0)
	}
	for i := range o.BatchSizes {
		s.BatchSizes[i] += o.BatchSizes[i]
	}
	s.OpLatency.Merge(o.OpLatency)
}

// MeanBatch returns the mean operations per submission batch, 0 when no
// batch has been flushed.
func (s *AsyncSnapshot) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Submitted) / float64(s.Batches)
}
