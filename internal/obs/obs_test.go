package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*each {
		t.Fatalf("lost updates: got %d, want %d", got, workers*each)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after reset: %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{math.MaxInt64, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
}

func TestHistogramQuantilesAndMax(t *testing.T) {
	var h Histogram
	// 99 fast observations and one slow one: p50 stays in the fast bucket,
	// p99 reaches the slow one, max is exact.
	for i := 0; i < 99; i++ {
		h.ObserveNanos(100)
	}
	h.ObserveNanos(1_000_000)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MaxNanos != 1_000_000 {
		t.Fatalf("max = %d", s.MaxNanos)
	}
	if s.P50Nanos < 100 || s.P50Nanos > 256 {
		t.Fatalf("p50 = %d, want within the [64,128) bucket bound (≤256)", s.P50Nanos)
	}
	if s.P99Nanos > 256 {
		t.Fatalf("p99 = %d should still be in the fast bucket (rank 99 of 100)", s.P99Nanos)
	}
	if q := s.Quantile(1.0); q < 524288 || q > 1_000_000 {
		t.Fatalf("p100 = %d, want the slow observation's bucket capped at max", q)
	}
	if mean := s.MeanNanos(); mean < 9000 || mean > 11000 {
		t.Fatalf("mean = %v, want ≈ 10099", mean)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)
	h.Observe(-time.Second) // clamped to 0
	s := h.Snapshot()
	if s.Count != 2 || s.MaxNanos != 3000 {
		t.Fatalf("count=%d max=%d", s.Count, s.MaxNanos)
	}
	if s.Buckets[0] != 1 {
		t.Fatalf("negative observation not clamped into bucket 0: %v", s.Buckets[:4])
	}
}

func TestHistogramConcurrentNoLostUpdates(t *testing.T) {
	var h Histogram
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.ObserveNanos(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
	var inBuckets int64
	for _, n := range s.Buckets {
		inBuckets += n
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, s.Count)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.ObserveNanos(100)
		b.ObserveNanos(100000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 20 || sa.MaxNanos != 100000 {
		t.Fatalf("merged count=%d max=%d", sa.Count, sa.MaxNanos)
	}
	if sa.SumNanos != 10*100+10*100000 {
		t.Fatalf("merged sum=%d", sa.SumNanos)
	}
	if sa.P99Nanos < 65536 {
		t.Fatalf("merged p99=%d should reflect the slow half", sa.P99Nanos)
	}
}

func TestLoadTally(t *testing.T) {
	lt := NewLoadTally(4)
	lt.Add(0, 10)
	lt.Add(1, 10)
	lt.Add(2, 10)
	lt.Add(3, 10)
	s := lt.Snapshot()
	if s.CV != 0 || s.LF != 1 || s.Total != 40 {
		t.Fatalf("balanced tally: %+v", s)
	}

	lt.Add(0, 40) // now 50,10,10,10
	s = lt.Snapshot()
	if s.LF != 5 {
		t.Fatalf("LF = %v, want 5", s.LF)
	}
	// mean 20, variance (900+100+100+100)/4 = 300, cv = sqrt(300)/20
	want := math.Sqrt(300) / 20
	if math.Abs(s.CV-want) > 1e-12 {
		t.Fatalf("CV = %v, want %v", s.CV, want)
	}
}

func TestLoadTallyIdleDisk(t *testing.T) {
	lt := NewLoadTally(3)
	lt.Inc(0)
	s := lt.Snapshot()
	if s.LF != -1 {
		t.Fatalf("idle-disk LF should be -1 (the +Inf sentinel), got %v", s.LF)
	}
	if s.CV <= 0 {
		t.Fatalf("CV should be positive with an idle disk, got %v", s.CV)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("idle-disk snapshot must stay JSON-encodable: %v", err)
	}
	var back LoadSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSnapshotMerge(t *testing.T) {
	a := LoadSnapshot{PerDisk: []int64{1, 2, 3}}
	a.refresh()
	b := LoadSnapshot{PerDisk: []int64{3, 2, 1}}
	b.refresh()
	a.Merge(b)
	if a.Total != 12 || a.CV != 0 || a.LF != 1 {
		t.Fatalf("merged snapshot: %+v", a)
	}
}

func TestIOMetricsSnapshotAndReset(t *testing.T) {
	var m IOMetrics
	m.Reads.Inc()
	m.Writes.Add(2)
	m.ReadErrors.Inc()
	m.BytesRead.Add(4096)
	m.ReadLatency.ObserveNanos(500)
	s := m.Snapshot()
	if s.Reads != 1 || s.Writes != 2 || s.ReadErrors != 1 || s.BytesRead != 4096 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.Ops() != 3 {
		t.Fatalf("ops = %d", s.Ops())
	}
	m.Reset()
	if s := m.Snapshot(); s.Ops() != 0 || s.ReadLatency.Count != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestHandlerServesLiveJSON(t *testing.T) {
	var c Counter
	h := Handler(func() any { return map[string]int64{"n": c.Load()} })
	c.Add(7)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var got map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["n"] != 7 {
		t.Fatalf("served %v, want n=7", got)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
}

func TestNewMuxEndpoints(t *testing.T) {
	mux := NewMux(func() any { return struct{}{} }, nil)
	for _, path := range []string{"/stats", "/debug/vars", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d", path, rec.Code)
		}
	}
}
