// Package obs is the runtime observability layer of the repository: lock-free
// counters, log₂-bucket latency histograms with quantile estimation, and
// per-disk I/O load tallies that mirror the load-balance metrics of the
// D-Code paper's Figures 4 and 5 — measured on the live engine rather than
// the offline simulators of internal/ioload.
//
// Everything in this package is safe for concurrent use and allocation-free
// on the hot path: increments and observations are single atomic operations,
// never locks, so instrumenting the RAID data path does not serialize it.
// Snapshots are read with atomic loads and are therefore only approximately
// consistent across fields while writers are active; once writers quiesce
// they are exact.
package obs

import "sync/atomic"

// Counter is a lock-free monotone event counter.
//
// The zero value is ready to use. Counter must not be copied after first use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter. Concurrent increments may be lost across the
// reset; call it only while writers are quiescent (e.g. between benchmark
// phases).
func (c *Counter) Reset() { c.v.Store(0) }
