package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of log₂ buckets a Histogram keeps. Bucket i
// counts observations whose nanosecond value v satisfies 2^(i-1) ≤ v < 2^i
// (bucket 0 counts v = 0), so the range spans sub-nanosecond to ~9 minutes —
// far beyond any single storage operation this repository performs.
const HistBuckets = 40

// Histogram is a lock-free latency histogram with logarithmic buckets.
// Observations are single atomic adds; quantiles are estimated from the
// bucket counts at snapshot time (each reported as its bucket's upper bound,
// capped by the exact maximum seen).
//
// The zero value is ready to use. Histogram must not be copied after first
// use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [HistBuckets]atomic.Int64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	b := bits.Len64(uint64(ns))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one latency given in nanoseconds; negative values are
// clamped to zero.
func (h *Histogram) ObserveNanos(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bucketOf(ns)].Add(1)
}

// Reset zeroes the histogram. Like Counter.Reset, it is only exact while
// writers are quiescent.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		SumNanos: h.sum.Load(),
		MaxNanos: h.max.Load(),
		Buckets:  make([]int64, HistBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.refreshQuantiles()
	return s
}

// HistogramSnapshot is the JSON-friendly view of a Histogram. Buckets are
// log₂: Buckets[i] counts observations in [2^(i-1), 2^i) nanoseconds.
// P50/P95/P99/P999 are bucket-upper-bound estimates, so they overestimate by
// at most 2× — adequate for trend tracking and regression gates. P999 is the
// async-submission tail: a queue-depth backlog shows up there long before it
// moves P99.
type HistogramSnapshot struct {
	Count     int64   `json:"count"`
	SumNanos  int64   `json:"sum_ns"`
	MaxNanos  int64   `json:"max_ns"`
	P50Nanos  int64   `json:"p50_ns"`
	P95Nanos  int64   `json:"p95_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	P999Nanos int64   `json:"p999_ns"`
	Buckets   []int64 `json:"buckets"`
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in nanoseconds from the
// bucket counts. It returns 0 for an empty histogram.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			ub := int64(1) << uint(i)
			if i == 0 {
				ub = 0
			}
			if s.MaxNanos > 0 && ub > s.MaxNanos {
				ub = s.MaxNanos
			}
			return ub
		}
	}
	return s.MaxNanos
}

// MeanNanos returns the exact mean latency, 0 when empty.
func (s *HistogramSnapshot) MeanNanos() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNanos) / float64(s.Count)
}

func (s *HistogramSnapshot) refreshQuantiles() {
	s.P50Nanos = s.Quantile(0.50)
	s.P95Nanos = s.Quantile(0.95)
	s.P99Nanos = s.Quantile(0.99)
	s.P999Nanos = s.Quantile(0.999)
}

// Merge accumulates another snapshot into s (bucket-wise sums, max of maxes)
// and recomputes the quantile estimates. raidctl uses it to carry statistics
// across process lifetimes.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumNanos += o.SumNanos
	if o.MaxNanos > s.MaxNanos {
		s.MaxNanos = o.MaxNanos
	}
	if len(s.Buckets) < len(o.Buckets) {
		grown := make([]int64, len(o.Buckets))
		copy(grown, s.Buckets)
		s.Buckets = grown
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
	s.refreshQuantiles()
}
