package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Flight recorder: a lock-free ring of structured events that answers "what
// was the system doing just before X" without logs. Producers (the raid
// layer, blockdev.Remote, blockserve) record rare-but-load-bearing moments —
// a disk declared failed, a rebuild starting, a remote retry, admission
// saturation — each carrying the trace ID of the operation that hit it, so an
// event cross-references straight into the span rings the tracing subsystem
// keeps.
//
// Recording follows the trace ring's discipline: a ticket fetch plus atomic
// stores into a seqlock-published slot, no locks, no allocation. A nil
// *Recorder is valid and records nothing (one nil check per call site), so
// the disabled path stays off the allocation and time-syscall budget — the
// engine's 0 allocs/op pins hold with event hooks compiled in.
//
// Retention has the same problem the tracer's slow-op ring solves: after a
// column dies, degraded-read entries arrive orders of magnitude faster than
// lifecycle events, and a single ring would evict the one DiskFailed record
// the postmortem needs. Critical kinds are therefore mirrored into a second,
// small ring that only they churn; Events merges both, deduplicating by
// ticket.

// EventKind classifies a flight-recorder event.
type EventKind uint8

// Event kinds. The "critical" ones (see critical) survive high-frequency
// churn in a dedicated ring.
const (
	EvNone EventKind = iota
	EvDiskFailed
	EvRebuildStart
	EvRebuildEnd
	EvScrubStart
	EvScrubEnd
	EvRemoteRetry
	EvBatchFlush
	EvSemSaturated
	EvDegradedRead
	EvPanic
)

var eventNames = [...]string{
	EvNone:         "none",
	EvDiskFailed:   "disk_failed",
	EvRebuildStart: "rebuild_start",
	EvRebuildEnd:   "rebuild_end",
	EvScrubStart:   "scrub_start",
	EvScrubEnd:     "scrub_end",
	EvRemoteRetry:  "remote_retry",
	EvBatchFlush:   "batch_flush",
	EvSemSaturated: "sem_saturated",
	EvDegradedRead: "degraded_read",
	EvPanic:        "panic",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name, so event dumps are greppable and
// raidctl can assert on kinds without sharing enum values.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts a kind name (or a bare number for forward
// compatibility with kinds this build does not know).
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		for i, name := range eventNames {
			if name == s {
				*k = EventKind(i)
				return nil
			}
		}
		*k = EvNone
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*k = EventKind(n)
	return nil
}

// critical reports whether k is mirrored into the retention ring.
func (k EventKind) critical() bool {
	switch k {
	case EvDiskFailed, EvRebuildStart, EvRebuildEnd, EvScrubStart, EvScrubEnd, EvPanic:
		return true
	}
	return false
}

// Event is one recorded moment. Disk is -1 when not bound to a column,
// Stripe -1 when not bound to a stripe. Trace is the trace ID of the
// operation that was in flight (0 when none was available). Aux is
// kind-specific: the retry attempt for remote_retry, the flushed byte count
// for batch_flush, the duration in nanoseconds for *_end kinds.
type Event struct {
	Seq    uint64    `json:"seq"`
	TimeNs int64     `json:"time_ns"`
	Kind   EventKind `json:"kind"`
	Disk   int32     `json:"disk"`
	Stripe int64     `json:"stripe"`
	Trace  uint64    `json:"trace,omitempty"`
	Aux    int64     `json:"aux,omitempty"`
}

// eslot is one seqlock-published event slot; see trace/ring.go for the
// publication protocol the reader side relies on.
type eslot struct {
	seq    atomic.Uint64 // 0 empty; odd: writing; even: (ticket+1)<<1
	gseq   atomic.Uint64 // recorder-global ticket: identical across rings
	time   atomic.Int64
	meta   atomic.Uint64 // kind | disk<<8
	stripe atomic.Int64
	trace  atomic.Uint64
	aux    atomic.Int64
}

func (s *eslot) store(ticket, gseq uint64, timeNs int64, kind EventKind, disk int32, stripe int64, traceID uint64, aux int64) {
	s.seq.Store(ticket<<1 | 1)
	s.gseq.Store(gseq)
	s.time.Store(timeNs)
	s.meta.Store(uint64(kind) | uint64(uint32(disk))<<8)
	s.stripe.Store(stripe)
	s.trace.Store(traceID)
	s.aux.Store(aux)
	s.seq.Store((ticket + 1) << 1)
}

func (s *eslot) load(ticket uint64) (Event, bool) {
	want := (ticket + 1) << 1
	if s.seq.Load() != want {
		return Event{}, false
	}
	m := s.meta.Load()
	ev := Event{
		Seq:    s.gseq.Load(),
		TimeNs: s.time.Load(),
		Kind:   EventKind(m & 0xff),
		Disk:   int32(uint32(m >> 8)),
		Stripe: s.stripe.Load(),
		Trace:  s.trace.Load(),
		Aux:    s.aux.Load(),
	}
	if s.seq.Load() != want {
		return Event{}, false
	}
	return ev, true
}

// eventRing is one ticketed slot array; capacity is a power of two.
type eventRing struct {
	mask  uint64
	head  atomic.Uint64
	slots []eslot
}

func newEventRing(capacity int) *eventRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &eventRing{mask: uint64(n - 1), slots: make([]eslot, n)}
}

func (r *eventRing) put(gseq uint64, timeNs int64, kind EventKind, disk int32, stripe int64, traceID uint64, aux int64) {
	ticket := r.head.Add(1) - 1
	r.slots[ticket&r.mask].store(ticket, gseq, timeNs, kind, disk, stripe, traceID, aux)
}

func (r *eventRing) drain(out []Event) []Event {
	head := r.head.Load()
	n := uint64(len(r.slots))
	if head < n {
		n = head
	}
	for ticket := head - n; ticket < head; ticket++ {
		if ev, ok := r.slots[ticket&r.mask].load(ticket); ok {
			out = append(out, ev)
		}
	}
	return out
}

// DefaultEventCapacity sizes NewRecorder's main ring when the caller passes
// a non-positive capacity; the critical ring is fixed and small.
const (
	DefaultEventCapacity = 1024
	criticalEventRing    = 64
)

// Recorder is the flight recorder. The nil *Recorder is a valid, permanently
// disabled recorder — every method no-ops — so producers hold plain fields
// and skip the nil check cost only. Recorder must not be copied.
type Recorder struct {
	ring *eventRing
	crit *eventRing
	seq  atomic.Uint64 // global ticket: total events recorded, orders merges
}

// NewRecorder returns a Recorder retaining the last capacity events (plus a
// fixed side ring for critical kinds); non-positive capacity takes the
// default.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &Recorder{ring: newEventRing(capacity), crit: newEventRing(criticalEventRing)}
}

// Record adds one event. Safe on a nil Recorder (no-op) and from any
// goroutine; it never blocks and never allocates.
func (r *Recorder) Record(kind EventKind, disk int32, stripe int64, traceID uint64, aux int64) {
	if r == nil {
		return
	}
	// One global ticket per event, stamped into both rings, so the merge in
	// Events can recognize a critical event it sees twice.
	seq := r.seq.Add(1)
	now := time.Now().UnixNano()
	r.ring.put(seq, now, kind, disk, stripe, traceID, aux)
	if kind.critical() {
		r.crit.put(seq, now, kind, disk, stripe, traceID, aux)
	}
}

// Recorded returns the total number of events ever recorded.
func (r *Recorder) Recorded() int64 {
	if r == nil {
		return 0
	}
	return int64(r.seq.Load())
}

// Events returns the retained events, oldest first. Critical kinds may
// outlive the main ring's churn (they are mirrored into a dedicated ring);
// a critical event present in both rings appears once.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	main := r.ring.drain(nil)
	crit := r.crit.drain(nil)
	// Dedup by global ticket: a critical event still in the main ring is in
	// both drains under the same Seq.
	seen := make(map[uint64]bool, len(main))
	out := make([]Event, 0, len(main)+len(crit))
	for _, ev := range main {
		seen[ev.Seq] = true
		out = append(out, ev)
	}
	for _, ev := range crit {
		if !seen[ev.Seq] {
			out = append(out, ev)
		}
	}
	sortEvents(out)
	return out
}

func sortEvents(evs []Event) {
	// Insertion sort by time: both drains are already near-sorted and event
	// counts are ring-bounded, so this stays cheap without pulling in sort.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && less(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

func less(a, b Event) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.TimeNs < b.TimeNs
}

// Dump writes the retained events to w as text, one line per event — the
// panic path's last words, so it must not allocate surprisingly or fail
// halfway silently. Best effort: write errors stop the dump.
func (r *Recorder) Dump(w io.Writer) {
	if r == nil {
		return
	}
	evs := r.Events()
	for _, ev := range evs {
		var err error
		if ev.Trace != 0 {
			_, err = fmt.Fprintf(w, "%d %s disk=%d stripe=%d trace=%016x aux=%d\n",
				ev.TimeNs, ev.Kind, ev.Disk, ev.Stripe, ev.Trace, ev.Aux)
		} else {
			_, err = fmt.Fprintf(w, "%d %s disk=%d stripe=%d aux=%d\n",
				ev.TimeNs, ev.Kind, ev.Disk, ev.Stripe, ev.Aux)
		}
		if err != nil {
			return
		}
	}
}

// EventsDump is the JSON document raidserve's /events endpoint serves and
// raidctl events consumes.
type EventsDump struct {
	Node     string  `json:"node"`
	TimeNs   int64   `json:"time_ns"`
	Recorded int64   `json:"recorded"`
	Events   []Event `json:"events"`
}
