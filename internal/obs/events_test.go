package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRecorderRecordAndDrain(t *testing.T) {
	r := NewRecorder(8)
	r.Record(EvRemoteRetry, 2, -1, 0xBEEF, 3)
	r.Record(EvBatchFlush, -1, 40, 0, 4096)
	if got := r.Recorded(); got != 2 {
		t.Fatalf("Recorded() = %d, want 2", got)
	}
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != EvRemoteRetry || evs[0].Disk != 2 || evs[0].Trace != 0xBEEF || evs[0].Aux != 3 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != EvBatchFlush || evs[1].Stripe != 40 || evs[1].Aux != 4096 {
		t.Errorf("event 1 = %+v", evs[1])
	}
	if evs[0].Seq >= evs[1].Seq || evs[0].TimeNs > evs[1].TimeNs {
		t.Errorf("events out of order: %+v then %+v", evs[0], evs[1])
	}
}

func TestRecorderNilIsInert(t *testing.T) {
	var r *Recorder
	r.Record(EvDiskFailed, 1, -1, 0, 0)
	if r.Recorded() != 0 || r.Events() != nil {
		t.Fatal("nil recorder retained state")
	}
	r.Dump(&bytes.Buffer{}) // must not panic
}

// TestRecorderDisabledPathAllocatesNothing pins the acceptance criterion: a
// producer holding a nil Recorder pays no allocation recording into it, and
// neither does a live Record call — the data path's 0 allocs/op must hold
// with the flight recorder wired in.
func TestRecorderDisabledPathAllocatesNothing(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(200, func() {
		nilRec.Record(EvDegradedRead, 1, 2, 3, 4)
	}); n != 0 {
		t.Errorf("nil Recorder.Record allocates %.1f/op, want 0", n)
	}
	live := NewRecorder(64)
	if n := testing.AllocsPerRun(200, func() {
		live.Record(EvDegradedRead, 1, 2, 3, 4)
	}); n != 0 {
		t.Errorf("live Recorder.Record allocates %.1f/op, want 0", n)
	}
}

// TestRecorderCriticalRetention floods the main ring with noise after a
// disk-failed event: the critical mirror must keep the failure visible long
// after the main ring wrapped past it.
func TestRecorderCriticalRetention(t *testing.T) {
	r := NewRecorder(16)
	r.Record(EvDiskFailed, 5, -1, 0xF00D, 0)
	for i := 0; i < 1000; i++ {
		r.Record(EvBatchFlush, -1, int64(i), 0, 1)
	}
	var failed []Event
	for _, ev := range r.Events() {
		if ev.Kind == EvDiskFailed {
			failed = append(failed, ev)
		}
	}
	if len(failed) != 1 {
		t.Fatalf("disk_failed retained %d times, want exactly once", len(failed))
	}
	if failed[0].Disk != 5 || failed[0].Trace != 0xF00D {
		t.Errorf("retained event = %+v", failed[0])
	}
}

// TestRecorderCriticalDedup: a critical event young enough to still sit in
// the main ring is drained from both rings but must be reported once, and
// the merged drain must stay Seq-ordered.
func TestRecorderCriticalDedup(t *testing.T) {
	r := NewRecorder(64)
	r.Record(EvBatchFlush, -1, 1, 0, 1)
	r.Record(EvDiskFailed, 2, -1, 0, 0)
	r.Record(EvRebuildStart, 2, -1, 0, 0)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3 (no duplicates): %+v", len(evs), evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not Seq-ordered: %+v", evs)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(EvSemSaturated, int32(w), int64(i), 0, 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Events() // drains race writers; must never see torn slots
		}
	}()
	wg.Wait()
	<-done
	if got := r.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded() = %d, want %d", got, writers*perWriter)
	}
	evs := r.Events()
	if len(evs) == 0 || len(evs) > 128+64 {
		t.Fatalf("retained %d events, want within ring bounds", len(evs))
	}
	for _, ev := range evs {
		if ev.Kind != EvSemSaturated || ev.Disk < 0 || ev.Disk >= writers {
			t.Fatalf("torn event: %+v", ev)
		}
	}
}

func TestEventKindJSONRoundTrip(t *testing.T) {
	b, err := json.Marshal(Event{Kind: EvDegradedRead, Disk: 1, Stripe: 2, Trace: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"degraded_read"`) {
		t.Fatalf("kind not marshaled by name: %s", b)
	}
	var ev Event
	if err := json.Unmarshal(b, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EvDegradedRead {
		t.Fatalf("kind = %v after round trip", ev.Kind)
	}
}

func TestRecorderDump(t *testing.T) {
	r := NewRecorder(8)
	r.Record(EvDiskFailed, 3, -1, 0xABC, 0)
	r.Record(EvBatchFlush, -1, 7, 0, 512)
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "disk_failed disk=3") {
		t.Errorf("dump missing disk_failed line:\n%s", out)
	}
	if !strings.Contains(out, "trace=0000000000000abc") {
		t.Errorf("dump missing trace ID:\n%s", out)
	}
	if !strings.Contains(out, "batch_flush") || !strings.Contains(out, "aux=512") {
		t.Errorf("dump missing batch_flush line:\n%s", out)
	}
}
