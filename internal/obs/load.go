package obs

import "math"

// LoadTally counts accesses per disk (or any other fixed set of lanes) with
// one lock-free cell per lane. It is the live-engine analogue of the
// internal/ioload simulator's per-disk counts: the same Lmax/Lmin
// load-balancing factor (paper Eq. 8) and, additionally, the coefficient of
// variation used by the benchmark harness as a regression-friendly scalar.
type LoadTally struct {
	cells []Counter
}

// NewLoadTally returns a tally over n lanes.
func NewLoadTally(n int) *LoadTally {
	return &LoadTally{cells: make([]Counter, n)}
}

// Add records n accesses on lane i.
func (t *LoadTally) Add(i int, n int64) { t.cells[i].Add(n) }

// Inc records one access on lane i.
func (t *LoadTally) Inc(i int) { t.cells[i].Inc() }

// Len returns the number of lanes.
func (t *LoadTally) Len() int { return len(t.cells) }

// Reset zeroes every lane (quiescent writers only, like Counter.Reset).
func (t *LoadTally) Reset() {
	for i := range t.cells {
		t.cells[i].Reset()
	}
}

// Snapshot captures the per-lane counts and derived balance metrics.
func (t *LoadTally) Snapshot() LoadSnapshot {
	s := LoadSnapshot{PerDisk: make([]int64, len(t.cells))}
	for i := range t.cells {
		s.PerDisk[i] = t.cells[i].Load()
	}
	s.refresh()
	return s
}

// LoadSnapshot is the JSON-friendly view of a LoadTally.
//
// LF is Lmax/Lmin (paper Eq. 8); a lane with zero load makes the true value
// +Inf, which JSON cannot carry, so it is reported as -1 (the paper's figures
// plot it clipped at 30). CV is the population coefficient of variation
// stddev/mean — 0 for a perfectly balanced array, and finite even with idle
// disks, which makes it the better regression metric.
type LoadSnapshot struct {
	PerDisk []int64 `json:"per_disk"`
	Total   int64   `json:"total"`
	LF      float64 `json:"lf"`
	CV      float64 `json:"cv"`
}

// Lmax returns the largest per-lane count.
func (s *LoadSnapshot) Lmax() int64 {
	var m int64
	for _, v := range s.PerDisk {
		if v > m {
			m = v
		}
	}
	return m
}

// Lmin returns the smallest per-lane count (0 for an empty snapshot).
func (s *LoadSnapshot) Lmin() int64 {
	if len(s.PerDisk) == 0 {
		return 0
	}
	m := s.PerDisk[0]
	for _, v := range s.PerDisk[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Recompute rederives Total, LF and CV from PerDisk; callers that assemble a
// snapshot from raw counts (rather than via LoadTally.Snapshot) finish with
// it.
func (s *LoadSnapshot) Recompute() { s.refresh() }

func (s *LoadSnapshot) refresh() {
	s.Total = 0
	for _, v := range s.PerDisk {
		s.Total += v
	}
	if min := s.Lmin(); min > 0 {
		s.LF = float64(s.Lmax()) / float64(min)
	} else if s.Lmax() > 0 {
		s.LF = -1 // +Inf: at least one idle disk while others worked
	} else {
		s.LF = 0
	}
	n := len(s.PerDisk)
	if n == 0 || s.Total == 0 {
		s.CV = 0
		return
	}
	mean := float64(s.Total) / float64(n)
	var ss float64
	for _, v := range s.PerDisk {
		d := float64(v) - mean
		ss += d * d
	}
	s.CV = math.Sqrt(ss/float64(n)) / mean
}

// Merge accumulates another snapshot lane-wise and recomputes the derived
// metrics.
func (s *LoadSnapshot) Merge(o LoadSnapshot) {
	if len(s.PerDisk) < len(o.PerDisk) {
		grown := make([]int64, len(o.PerDisk))
		copy(grown, s.PerDisk)
		s.PerDisk = grown
	}
	for i, v := range o.PerDisk {
		s.PerDisk[i] += v
	}
	s.refresh()
}
