package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// LoadWindow is the live, windowed counterpart of LoadTally: per-disk access
// counts over a rolling time window, kept as a ring of fixed-duration slots
// with separate read and write cells. It computes the paper's load-balancing
// factor LF = Lmax/Lmin (Eq. 8) over the recent window rather than over the
// array's whole lifetime — the view that makes RDP's parity-disk hotspot
// visible while it is happening — and flags hot disks whose share of the
// window's load exceeds a configurable factor of the per-disk mean.
//
// Recording is lock-free on the hot path: one clock read, one atomic load,
// and one atomic add. Slot rotation (crossing into a new time slot) takes a
// mutex, but only the single op that first observes the new slot pays it.
// Counts are approximate at slot boundaries — a laggard recorder can land an
// op in a slot being recycled — which is acceptable for a monitoring view.
//
// LoadWindow must not be copied after first use.
type LoadWindow struct {
	disks     int
	slots     int
	slotNanos int64
	start     int64 // construction time, unix ns

	hotFactor atomic.Uint64 // math.Float64bits

	cur   atomic.Int64 // latest absolute slot index observed
	rotMu sync.Mutex   // serializes slot recycling only

	reads  []Counter // slots×disks, row-major by slot
	writes []Counter
}

// DefaultHotFactor flags a disk as hot when its share of the window's load
// exceeds this multiple of the per-disk mean.
const DefaultHotFactor = 1.5

// NewLoadWindow returns a window over `disks` lanes covering slots×slotDur
// of history. Non-positive slots or slotDur take 60 slots of one second.
func NewLoadWindow(disks, slots int, slotDur time.Duration) *LoadWindow {
	if slots <= 0 {
		slots = 60
	}
	if slotDur <= 0 {
		slotDur = time.Second
	}
	w := &LoadWindow{
		disks:     disks,
		slots:     slots,
		slotNanos: int64(slotDur),
		start:     time.Now().UnixNano(),
		reads:     make([]Counter, slots*disks),
		writes:    make([]Counter, slots*disks),
	}
	w.hotFactor.Store(math.Float64bits(DefaultHotFactor))
	return w
}

// SetHotFactor changes the hot-disk threshold; f ≤ 1 disables detection
// (every disk trivially exceeds ≤1× the mean on a one-disk array, and a
// factor at or below the mean is not a hotspot definition).
func (w *LoadWindow) SetHotFactor(f float64) { w.hotFactor.Store(math.Float64bits(f)) }

// Disks returns the number of lanes.
func (w *LoadWindow) Disks() int { return w.disks }

// slotAt maps a timestamp to an absolute slot index.
func (w *LoadWindow) slotAt(now int64) int64 {
	s := (now - w.start) / w.slotNanos
	if s < 0 {
		s = 0
	}
	return s
}

// advance recycles slot rows between the last observed slot and `slot`.
func (w *LoadWindow) advance(slot int64) {
	w.rotMu.Lock()
	defer w.rotMu.Unlock()
	cur := w.cur.Load()
	if slot <= cur {
		return // another recorder already rotated
	}
	lo := cur + 1
	if slot-lo >= int64(w.slots) {
		lo = slot - int64(w.slots) + 1 // everything aged out; clear one lap
	}
	for s := lo; s <= slot; s++ {
		row := int(s%int64(w.slots)) * w.disks
		for i := row; i < row+w.disks; i++ {
			w.reads[i].Reset()
			w.writes[i].Reset()
		}
	}
	w.cur.Store(slot)
}

// Record tallies n accesses on disk i; write selects the write cell.
func (w *LoadWindow) Record(i int, write bool, n int64) {
	if w == nil {
		return
	}
	slot := w.slotAt(time.Now().UnixNano())
	if slot > w.cur.Load() {
		w.advance(slot)
	}
	idx := int(slot%int64(w.slots))*w.disks + i
	if write {
		w.writes[idx].Add(n)
	} else {
		w.reads[idx].Add(n)
	}
}

// Reset clears every slot (quiescent writers only, like Counter.Reset).
func (w *LoadWindow) Reset() {
	w.rotMu.Lock()
	defer w.rotMu.Unlock()
	for i := range w.reads {
		w.reads[i].Reset()
		w.writes[i].Reset()
	}
}

// WindowSnapshot is the JSON-friendly view of a LoadWindow: per-disk read
// and write counts over the covered window, the combined per-disk load with
// its live LF and CV (reusing LoadSnapshot semantics: LF is -1 when a disk
// was idle while others worked), access rates, and the hot-disk list.
type WindowSnapshot struct {
	WindowNanos int64   `json:"window_ns"` // time actually covered
	SlotNanos   int64   `json:"slot_ns"`
	Reads       []int64 `json:"reads_per_disk"`
	Writes      []int64 `json:"writes_per_disk"`

	// Load combines reads+writes per disk; Load.LF is the live load-balancing
	// factor over the window.
	Load LoadSnapshot `json:"load"`

	ReadsPerSec  float64 `json:"reads_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"`

	// HotDisks lists disks whose combined load exceeds HotFactor× the
	// per-disk mean of the window.
	HotDisks  []int   `json:"hot_disks,omitempty"`
	HotFactor float64 `json:"hot_factor"`
}

// Snapshot captures the rolling window. It first advances rotation so slots
// that aged out since the last Record don't linger in the view.
func (w *LoadWindow) Snapshot() WindowSnapshot {
	now := time.Now().UnixNano()
	slot := w.slotAt(now)
	if slot > w.cur.Load() {
		w.advance(slot)
	}
	covered := slot + 1
	if covered > int64(w.slots) {
		covered = int64(w.slots)
	}
	s := WindowSnapshot{
		SlotNanos: w.slotNanos,
		Reads:     make([]int64, w.disks),
		Writes:    make([]int64, w.disks),
		Load:      LoadSnapshot{PerDisk: make([]int64, w.disks)},
		HotFactor: math.Float64frombits(w.hotFactor.Load()),
	}
	// Covered time: full aged slots plus the elapsed part of the current one.
	s.WindowNanos = (covered-1)*w.slotNanos + (now-w.start)%w.slotNanos
	for off := int64(0); off < covered; off++ {
		row := int((slot-off)%int64(w.slots)) * w.disks
		for d := 0; d < w.disks; d++ {
			s.Reads[d] += w.reads[row+d].Load()
			s.Writes[d] += w.writes[row+d].Load()
		}
	}
	for d := 0; d < w.disks; d++ {
		s.Load.PerDisk[d] = s.Reads[d] + s.Writes[d]
	}
	s.Load.Recompute()
	if sec := float64(s.WindowNanos) / 1e9; sec > 0 {
		var r, wr int64
		for d := 0; d < w.disks; d++ {
			r += s.Reads[d]
			wr += s.Writes[d]
		}
		s.ReadsPerSec = float64(r) / sec
		s.WritesPerSec = float64(wr) / sec
	}
	s.refreshHot()
	return s
}

// refreshHot rederives HotDisks from Load.PerDisk and HotFactor.
func (s *WindowSnapshot) refreshHot() {
	s.HotDisks = nil
	n := len(s.Load.PerDisk)
	if s.HotFactor <= 1 || n < 2 || s.Load.Total == 0 {
		return
	}
	mean := float64(s.Load.Total) / float64(n)
	for d, v := range s.Load.PerDisk {
		if float64(v) > s.HotFactor*mean {
			s.HotDisks = append(s.HotDisks, d)
		}
	}
}
