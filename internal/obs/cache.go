package obs

// CacheMetrics instruments an element cache: hit/miss/insert/eviction/
// invalidation counts and the device bytes hits saved. All fields are
// lock-free counters, so the cache's hot path stays a couple of atomic adds.
//
// The zero value is ready to use. CacheMetrics must not be copied after
// first use.
type CacheMetrics struct {
	Hits          Counter
	Misses        Counter
	Inserts       Counter
	Evictions     Counter
	Invalidations Counter
	// BytesSaved is the payload volume served from memory instead of a
	// device — elemSize per hit for an element cache.
	BytesSaved Counter
}

// Reset zeroes every metric (quiescent writers only).
func (m *CacheMetrics) Reset() {
	m.Hits.Reset()
	m.Misses.Reset()
	m.Inserts.Reset()
	m.Evictions.Reset()
	m.Invalidations.Reset()
	m.BytesSaved.Reset()
}

// Snapshot captures the cache metrics. Bytes and Budget describe the cache's
// current occupancy and are supplied by the cache itself.
func (m *CacheMetrics) Snapshot(bytes, budget int64) CacheSnapshot {
	s := CacheSnapshot{
		Hits:          m.Hits.Load(),
		Misses:        m.Misses.Load(),
		Inserts:       m.Inserts.Load(),
		Evictions:     m.Evictions.Load(),
		Invalidations: m.Invalidations.Load(),
		BytesSaved:    m.BytesSaved.Load(),
		Bytes:         bytes,
		Budget:        budget,
	}
	s.recomputeHitRate()
	return s
}

// CacheSnapshot is the JSON-friendly view of a CacheMetrics plus occupancy.
type CacheSnapshot struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Inserts       int64 `json:"inserts"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	BytesSaved    int64 `json:"bytes_saved"`
	Bytes         int64 `json:"bytes"`
	Budget        int64 `json:"budget"`
	// HitRate is Hits/(Hits+Misses), 0 when the cache was never consulted.
	HitRate float64 `json:"hit_rate"`
}

func (s *CacheSnapshot) recomputeHitRate() {
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	} else {
		s.HitRate = 0
	}
}

// Merge accumulates another snapshot into s. Occupancy fields take the
// latest non-zero contribution (they are gauges, not counters).
func (s *CacheSnapshot) Merge(o CacheSnapshot) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Inserts += o.Inserts
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.BytesSaved += o.BytesSaved
	if o.Budget != 0 {
		s.Bytes = o.Bytes
		s.Budget = o.Budget
	}
	s.recomputeHitRate()
}
