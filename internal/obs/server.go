package obs

// Server-side metrics of the network block service (internal/blockserve).
// The snapshot types live here, next to the other observability payloads, so
// raid.Snapshot can embed the server view without the raid package importing
// the server (blockserve builds the snapshot, raid only carries it).

// ClientSnapshot is the per-connection tally of one block-service client.
type ClientSnapshot struct {
	// ID is the server-assigned client number (1-based, monotonic per
	// process); trace spans opened for this client's requests carry it.
	ID int64 `json:"id"`
	// Addr is the client's remote address.
	Addr string `json:"addr,omitempty"`
	// Active reports whether the connection is still open.
	Active bool `json:"active,omitempty"`

	Reads   int64 `json:"reads"`
	Writes  int64 `json:"writes"`
	Flushes int64 `json:"flushes,omitempty"`
	Admin   int64 `json:"admin,omitempty"` // STATUS + REBUILD requests
	Errors  int64 `json:"errors,omitempty"`

	BytesIn  int64 `json:"bytes_in"`  // payload bytes received (writes)
	BytesOut int64 `json:"bytes_out"` // payload bytes sent (reads)
}

// Ops returns the client's total request count.
func (c *ClientSnapshot) Ops() int64 { return c.Reads + c.Writes + c.Flushes + c.Admin }

// Merge accumulates another client tally into c (identity fields adopt o's
// when c is zero-valued).
func (c *ClientSnapshot) Merge(o ClientSnapshot) {
	if c.ID == 0 {
		c.ID, c.Addr = o.ID, o.Addr
	}
	c.Active = c.Active || o.Active
	c.Reads += o.Reads
	c.Writes += o.Writes
	c.Flushes += o.Flushes
	c.Admin += o.Admin
	c.Errors += o.Errors
	c.BytesIn += o.BytesIn
	c.BytesOut += o.BytesOut
}

// ServerSnapshot is the block service's contribution to the array snapshot:
// connection lifecycle counters, the admission-control configuration, the
// all-clients aggregate (closed connections included), and the per-client
// detail for connections still open.
type ServerSnapshot struct {
	Addr string `json:"addr,omitempty"`

	Accepted int64 `json:"accepted"` // connections admitted
	Rejected int64 `json:"rejected"` // connections turned away at the client cap
	Active   int64 `json:"active"`   // connections currently open
	Inflight int64 `json:"inflight"` // requests currently being served

	MaxClients  int  `json:"max_clients"`
	MaxInflight int  `json:"max_inflight"`
	Draining    bool `json:"draining,omitempty"`

	// Totals aggregates every request ever served, including those of
	// connections that have since closed.
	Totals ClientSnapshot `json:"totals"`
	// Clients is the per-connection detail of the currently open clients.
	Clients []ClientSnapshot `json:"clients,omitempty"`

	// QueueWait is the admission-queue wait distribution: how long requests
	// sat waiting for an inflight slot (0 for requests admitted immediately).
	// It is the "queue" term of the per-phase latency decomposition.
	QueueWait *HistogramSnapshot `json:"queue_wait,omitempty"`
	// SemSaturated counts requests that found the inflight semaphore full on
	// arrival and had to wait.
	SemSaturated int64 `json:"sem_saturated,omitempty"`
}

// Merge accumulates another server snapshot into s. Gauges (Active, Inflight,
// Draining, per-client detail) adopt o's values — they are point-in-time
// views, not sums — while the lifecycle counters and totals accumulate.
func (s *ServerSnapshot) Merge(o ServerSnapshot) {
	if s.Addr == "" {
		s.Addr = o.Addr
	}
	s.Accepted += o.Accepted
	s.Rejected += o.Rejected
	s.Active = o.Active
	s.Inflight = o.Inflight
	s.MaxClients = o.MaxClients
	s.MaxInflight = o.MaxInflight
	s.Draining = o.Draining
	s.Totals.Merge(o.Totals)
	s.Clients = o.Clients
	s.SemSaturated += o.SemSaturated
	if o.QueueWait != nil {
		if s.QueueWait == nil {
			s.QueueWait = &HistogramSnapshot{}
		}
		s.QueueWait.Merge(*o.QueueWait)
	}
}
