package erasure

import "sync/atomic"

// XORCounters tallies, lock-free, the element-XOR work a Code instance has
// actually executed, split by direction: encode (Encode, EncodeGroup,
// EncodeParallel, UpdateData) and decode (Reconstruct, including the Gaussian
// fallback). One "op" is one whole-element XOR (or element copy into an
// accumulator); bytes is ops × element size.
//
// Together with ComputeMetrics this closes the paper's §III-D loop at
// runtime: the analytic figure says what the encoding *should* cost
// (EncodeXORPerData per data element), the counters say what it *did* cost,
// and internal/raid's Snapshot reports both so a drifting implementation is
// caught by measurement rather than by review.
type XORCounters struct {
	encodeOps   atomic.Int64
	encodeBytes atomic.Int64
	decodeOps   atomic.Int64
	decodeBytes atomic.Int64
}

func (x *XORCounters) addEncode(ops, bytes int64) {
	x.encodeOps.Add(ops)
	x.encodeBytes.Add(bytes)
}

func (x *XORCounters) addDecode(ops, bytes int64) {
	x.decodeOps.Add(ops)
	x.decodeBytes.Add(bytes)
}

// XORSnapshot is the JSON-friendly view of the counters.
type XORSnapshot struct {
	EncodeOps   int64 `json:"encode_ops"`
	EncodeBytes int64 `json:"encode_bytes"`
	DecodeOps   int64 `json:"decode_ops"`
	DecodeBytes int64 `json:"decode_bytes"`
}

// Merge accumulates another snapshot into s.
func (s *XORSnapshot) Merge(o XORSnapshot) {
	s.EncodeOps += o.EncodeOps
	s.EncodeBytes += o.EncodeBytes
	s.DecodeOps += o.DecodeOps
	s.DecodeBytes += o.DecodeBytes
}

// XORStats returns the XOR work executed by this code instance so far.
func (c *Code) XORStats() XORSnapshot {
	return XORSnapshot{
		EncodeOps:   c.xor.encodeOps.Load(),
		EncodeBytes: c.xor.encodeBytes.Load(),
		DecodeOps:   c.xor.decodeOps.Load(),
		DecodeBytes: c.xor.decodeBytes.Load(),
	}
}

// ResetXORStats zeroes the counters. Like the obs package's resets it is
// only exact while no encode/decode is in flight.
func (c *Code) ResetXORStats() {
	c.xor.encodeOps.Store(0)
	c.xor.encodeBytes.Store(0)
	c.xor.decodeOps.Store(0)
	c.xor.decodeBytes.Store(0)
}
