package erasure

// Metrics carries the analytic complexity figures of the paper's §III-D
// feature discussion, derived directly from the parity-group structure.
type Metrics struct {
	DataElems   int // data elements per stripe
	ParityElems int // parity elements per stripe
	// StorageEfficiency is data/(data+parity); 1 - 2/cols is optimal for a
	// code whose parity occupies exactly two disks' worth of space.
	StorageEfficiency float64
	// EncodeXORTotal is the XOR operations needed to compute all parities of
	// one stripe; EncodeXORPerData divides by the data elements (the paper's
	// optimum is 2 - 2/(n-2) for D-Code and X-Code).
	EncodeXORTotal   int
	EncodeXORPerData float64
	// UpdateAvg / UpdateMax are the number of parity elements that must be
	// updated when one data element changes, including parity-through-parity
	// propagation (optimal is exactly 2; RDP and HDP sit near 3).
	UpdateAvg float64
	UpdateMax int
}

// ComputeMetrics derives the feature-table metrics from the group structure.
func (c *Code) ComputeMetrics() Metrics {
	m := Metrics{
		DataElems:   len(c.dataCoords),
		ParityElems: len(c.groups),
	}
	total := m.DataElems + m.ParityElems
	if total > 0 {
		m.StorageEfficiency = float64(m.DataElems) / float64(total)
	}
	for _, g := range c.groups {
		m.EncodeXORTotal += len(g.Members) - 1
	}
	if m.DataElems > 0 {
		m.EncodeXORPerData = float64(m.EncodeXORTotal) / float64(m.DataElems)
	}
	sum := 0
	for _, co := range c.dataCoords {
		n := len(c.updateOf[co.Row][co.Col])
		sum += n
		if n > m.UpdateMax {
			m.UpdateMax = n
		}
	}
	if m.DataElems > 0 {
		m.UpdateAvg = float64(sum) / float64(m.DataElems)
	}
	return m
}

// DecodeXORPerLost returns the average XOR operations per lost element over
// every double-column erasure the peeling decoder can finish, and the number
// of column pairs where peeling stalled (those fall back to Gaussian
// elimination and are excluded from the average). For D-Code and X-Code the
// result is n-3 per lost element, the paper's optimal decoding complexity.
func (c *Code) DecodeXORPerLost() (avg float64, stalled int) {
	totalXORs, totalLost := 0, 0
	for f1 := 0; f1 < c.cols; f1++ {
		for f2 := f1 + 1; f2 < c.cols; f2++ {
			x, chain, err := c.SymbolicDecode(f1, f2)
			if err != nil {
				stalled++
				continue
			}
			totalXORs += x
			totalLost += len(chain)
		}
	}
	if totalLost == 0 {
		return 0, stalled
	}
	return float64(totalXORs) / float64(totalLost), stalled
}
