package erasure

import (
	"testing"
	"testing/quick"
)

func TestEncodeParallelMatchesSerial(t *testing.T) {
	c := xorPair(t)
	for _, elemSize := range []int{64, 1024, 4096, 4097, 8191} {
		for _, workers := range []int{0, 1, 2, 3, 8, 64} {
			serial := c.NewStripe(elemSize)
			serial.Fill(uint64(elemSize))
			parallel := serial.Clone()
			c.Encode(serial)
			c.EncodeParallel(parallel, workers)
			if !serial.Equal(parallel) {
				t.Fatalf("elemSize=%d workers=%d: parallel encode differs", elemSize, workers)
			}
		}
	}
}

// The parallel path must also respect parity-in-parity dependency order
// within each byte range.
func TestEncodeParallelWithDependencies(t *testing.T) {
	groups := []Group{
		{Parity: Coord{0, 1}, Members: []Coord{{0, 0}, {1, 0}}},
		{Parity: Coord{1, 1}, Members: []Coord{{0, 1}, {0, 0}}}, // depends on (0,1)
	}
	c, err := New("dep", 3, 2, 2, groups)
	if err != nil {
		t.Fatal(err)
	}
	s := c.NewStripe(4096)
	s.Fill(9)
	c.EncodeParallel(s, 4)
	if !c.Verify(s) {
		t.Fatal("parallel encode broke a dependent parity")
	}
}

// Regression for the worker clamp: at element sizes just past the
// minParallelBytes gate, `workers > size/128` clamping must never reach zero
// workers (which would skip encoding entirely and leave stale parity), and
// boundary sizes must produce byte-identical parity to the serial path.
func TestEncodeParallelClampBoundary(t *testing.T) {
	c := xorPair(t)
	for _, elemSize := range []int{1024, 1032} {
		for _, workers := range []int{2, 7, 8, 9, 1024, 1 << 20} {
			serial := c.NewStripe(elemSize)
			serial.Fill(uint64(elemSize) * 31)
			parallel := serial.Clone()
			c.Encode(serial)
			c.EncodeParallel(parallel, workers)
			if !parallel.Equal(serial) {
				t.Fatalf("elemSize=%d workers=%d: parallel encode differs from serial", elemSize, workers)
			}
			if !c.Verify(parallel) {
				t.Fatalf("elemSize=%d workers=%d: parity not written", elemSize, workers)
			}
		}
	}
}

// TestFlatParityDetection pins the classifier that picks the unit of
// parallelism: codes whose groups read only data cells may encode whole
// groups concurrently; parity-on-parity chains may not.
func TestFlatParityDetection(t *testing.T) {
	if !xorPair(t).FlatParity() {
		t.Fatal("xorPair reads only data cells; want FlatParity")
	}
	dep, err := New("dep", 3, 2, 2, []Group{
		{Parity: Coord{0, 1}, Members: []Coord{{0, 0}, {1, 0}}},
		{Parity: Coord{1, 1}, Members: []Coord{{0, 1}, {0, 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.FlatParity() {
		t.Fatal("dep reads parity (0,1); want !FlatParity")
	}
}

// TestEncodeParallelTalliesMatchSerial requires the executed XOR volume to be
// identical whichever encode path ran — serial, group-parallel (flat codes)
// or byte-range (dependent codes) — so benchmark counters stay comparable.
func TestEncodeParallelTalliesMatchSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    *Code
	}{
		{"flat", xorPair(t)},
		{"gauss-flat", gaussOnly(t)},
	} {
		s := tc.c.NewStripe(4096)
		s.Fill(3)
		tc.c.ResetXORStats()
		tc.c.Encode(s)
		serial := tc.c.XORStats()
		tc.c.ResetXORStats()
		tc.c.EncodeParallel(s, 4)
		parallel := tc.c.XORStats()
		if serial != parallel {
			t.Errorf("%s: serial tallies %+v, parallel %+v", tc.name, serial, parallel)
		}
	}
}

func TestEncodeParallelQuick(t *testing.T) {
	c := gaussOnly(t)
	f := func(seed uint64, workers uint8) bool {
		s := c.NewStripe(2048)
		s.Fill(seed)
		want := s.Clone()
		c.Encode(want)
		c.EncodeParallel(s, int(workers%16))
		return s.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
