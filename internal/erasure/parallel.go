package erasure

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dcode/internal/stripe"
)

// minParallelBytes is the element size below which the goroutine fan-out
// costs more than it saves.
const minParallelBytes = 1024

// EncodeParallel computes every parity of the stripe like Encode, fanned out
// across workers. workers ≤ 0 uses GOMAXPROCS; small elements fall back to
// the serial path.
//
// For codes whose dependency order proves every group independent (no group
// reads another group's parity — see FlatParity) the unit of parallelism is
// the whole parity group: each worker runs the multi-source kernel over
// complete elements, which touches every cache line once. Codes with
// parity-on-parity chains (RDP, HDP) cannot reorder groups, so they fall
// back to splitting the element byte range — XOR is independent per byte, so
// worker w encodes bytes [lo_w, hi_w) of every element in dependency order.
func (c *Code) EncodeParallel(s *stripe.Stripe, workers int) {
	c.checkStripe(s)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	size := s.ElemSize()
	if workers == 1 || size < minParallelBytes {
		c.Encode(s)
		return
	}
	if c.flatParity {
		c.encodeGroupsParallel(s, workers)
		return
	}
	if workers > size/128 {
		// At most one worker per 128-byte chunk, but never fewer than one:
		// a zero clamp would make the fan-out loop spawn nothing and return
		// with the parity cells untouched.
		workers = max(1, size/128)
	}
	if workers == 1 {
		c.Encode(s)
		return
	}
	// Chunk boundaries aligned to 8 bytes so the XOR kernel stays word-wide.
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		b := size * w / workers
		b &^= 7
		bounds[w] = b
	}
	bounds[workers] = size

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.encodeRange(s, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	// Same element-XOR volume as the serial path; tallied once here rather
	// than per worker so the counters stay comparable across paths.
	var ops int64
	for _, g := range c.groups {
		ops += int64(len(g.Members) - 1)
	}
	c.xor.addEncode(ops, ops*int64(size))
}

// encodeGroupsParallel encodes whole parity groups concurrently: workers pull
// group indices from a shared atomic cursor. Valid only for flatParity codes,
// where every group writes its own parity cell and reads only data cells, so
// no inter-group ordering exists. The XOR volume matches the serial path and
// is tallied once at the end so counters stay identical across paths.
func (c *Code) encodeGroupsParallel(s *stripe.Stripe, workers int) {
	if workers > len(c.groups) {
		workers = len(c.groups)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1)) - 1
				if gi >= len(c.groups) {
					return
				}
				c.encodeGroupInto(s, gi)
			}
		}()
	}
	wg.Wait()
	var ops int64
	for _, g := range c.groups {
		ops += int64(len(g.Members) - 1)
	}
	c.xor.addEncode(ops, ops*int64(s.ElemSize()))
}

// encodeRange runs the dependency-ordered encode restricted to the byte
// sub-range [lo, hi) of every element.
func (c *Code) encodeRange(s *stripe.Stripe, lo, hi int) {
	for _, gi := range c.encodeOrder {
		g := &c.groups[gi]
		dst := s.Elem(g.Parity.Row, g.Parity.Col)[lo:hi]
		first := g.Members[0]
		copy(dst, s.Elem(first.Row, first.Col)[lo:hi])
		for _, m := range g.Members[1:] {
			stripe.XOR(dst, s.Elem(m.Row, m.Col)[lo:hi])
		}
	}
}
