package erasure

import "fmt"

// VerifyMDS exhaustively checks that the code tolerates every single- and
// double-column erasure: for each pattern it encodes a pseudo-random stripe,
// corrupts the failed columns with garbage, reconstructs, and compares
// against the original. It returns the first failing pattern, or nil if the
// code is MDS for two erasures.
//
// Every code construction in this repository must pass this check for
// p ∈ {5, 7, 11, 13} before it ships (see DESIGN.md §4).
func VerifyMDS(c *Code, elemSize int) error {
	if elemSize <= 0 {
		elemSize = 8
	}
	orig := c.NewStripe(elemSize)
	orig.Fill(uint64(c.p)*1000003 + uint64(c.rows))
	c.Encode(orig)
	if !c.Verify(orig) {
		return fmt.Errorf("erasure: %s: Encode output fails Verify", c.name)
	}

	try := func(failed ...int) error {
		s := orig.Clone()
		for _, f := range failed {
			// Garbage, not zeros, so that a decoder peeking at "failed" cells
			// is caught.
			for r := 0; r < c.rows; r++ {
				e := s.Elem(r, f)
				for i := range e {
					e[i] = byte(0xA5 ^ r ^ f ^ i)
				}
			}
		}
		if err := c.Reconstruct(s, failed...); err != nil {
			return fmt.Errorf("erasure: %s: reconstruct%v: %w", c.name, failed, err)
		}
		if !s.Equal(orig) {
			return fmt.Errorf("erasure: %s: reconstruct%v produced wrong data", c.name, failed)
		}
		return nil
	}

	for f := 0; f < c.cols; f++ {
		if err := try(f); err != nil {
			return err
		}
	}
	for f1 := 0; f1 < c.cols; f1++ {
		for f2 := f1 + 1; f2 < c.cols; f2++ {
			if err := try(f1, f2); err != nil {
				return err
			}
		}
	}
	return nil
}

// IsPrime reports whether n is a prime number. The array codes in this
// repository are only defined for prime parameters; constructors use this to
// validate their input.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Mod returns a mod m with a non-negative result, the <x>_m operator of the
// paper. Go's % follows the dividend's sign, so a separate helper avoids a
// classic construction bug for the negative offsets in Eq. (2).
func Mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
