// Package erasure provides a generic engine for XOR-based array codes
// (RAID-6 MDS codes such as D-Code, X-Code, RDP, H-Code, HDP and EVENODD).
//
// Every code is described as a Spec: a rows×cols element matrix plus a list
// of parity groups, each computing one parity element as the XOR of a set of
// member elements. The engine derives everything else — encoding order,
// verification, erasure decoding (peeling with a GF(2) Gaussian-elimination
// fallback), I/O planning metadata and analytic complexity metrics — so that
// the per-code packages only state their published equations.
package erasure

import (
	"fmt"
	"sort"
	"sync"
)

// Coord identifies one element of a stripe by row and column.
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// GroupKind labels the flavour of a parity group; the simulators use it to
// distinguish "horizontal-like" parities (covering logically continuous data)
// from diagonal ones when reporting, and the layout tool uses it for display.
type GroupKind string

// The kinds used by the codes in this repository.
const (
	KindHorizontal   GroupKind = "horizontal"
	KindDiagonal     GroupKind = "diagonal"
	KindAntiDiagonal GroupKind = "anti-diagonal"
	KindDeployment   GroupKind = "deployment"
)

// Group is one parity equation: Parity = XOR of Members.
// Members may include other parity elements (RDP's diagonal parity covers the
// row-parity column); the engine orders encoding accordingly.
type Group struct {
	Kind    GroupKind
	Parity  Coord
	Members []Coord
}

// Code is a fully constructed XOR array code over a rows×cols stripe.
// Construct with New; the zero value is not usable.
type Code struct {
	name string
	p    int // the prime parameter of the construction
	rows int
	cols int

	groups      []Group
	parityIdx   map[Coord]int // parity coord -> group index
	memberOf    [][][]int     // [row][col] -> group indices the cell is a *direct* member of
	updateOf    [][][]int     // [row][col] -> groups whose parity value depends on the cell (flattened)
	dataCoords  []Coord       // row-major data cells
	dataIndex   [][]int       // [row][col] -> logical data index, -1 for parity
	encodeOrder []int         // group indices in dependency order

	// flatParity records that no group reads another group's parity cell.
	// Group encodes are then mutually independent, so EncodeParallel can fan
	// out whole parity groups instead of splitting every element byte range.
	flatParity bool

	// scratch pools the per-call delta/accumulator buffers of UpdateData and
	// Verify so steady-state small writes and scrubs don't allocate.
	scratch sync.Pool

	// xor tallies the element-XOR work this instance actually executed
	// (see xorstats.go); the observability layer compares it against the
	// analytic predictions of ComputeMetrics.
	xor XORCounters
}

// New validates a code description and derives the engine metadata.
//
// Validation enforces the structural invariants every code in this repository
// relies on: parity cells are distinct, all coordinates are in range, no
// group lists its own parity as a member, and the parity dependency graph is
// acyclic (so encoding order exists).
func New(name string, p, rows, cols int, groups []Group) (*Code, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("erasure: %s: invalid geometry %d×%d", name, rows, cols)
	}
	c := &Code{
		name:      name,
		p:         p,
		rows:      rows,
		cols:      cols,
		groups:    groups,
		parityIdx: make(map[Coord]int, len(groups)),
	}
	inRange := func(co Coord) bool {
		return co.Row >= 0 && co.Row < rows && co.Col >= 0 && co.Col < cols
	}
	for gi, g := range groups {
		if !inRange(g.Parity) {
			return nil, fmt.Errorf("erasure: %s: group %d parity %v out of range", name, gi, g.Parity)
		}
		if _, dup := c.parityIdx[g.Parity]; dup {
			return nil, fmt.Errorf("erasure: %s: duplicate parity cell %v", name, g.Parity)
		}
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("erasure: %s: group %d has no members", name, gi)
		}
		seen := make(map[Coord]bool, len(g.Members))
		for _, m := range g.Members {
			if !inRange(m) {
				return nil, fmt.Errorf("erasure: %s: group %d member %v out of range", name, gi, m)
			}
			if m == g.Parity {
				return nil, fmt.Errorf("erasure: %s: group %d lists its own parity %v as member", name, gi, m)
			}
			if seen[m] {
				return nil, fmt.Errorf("erasure: %s: group %d duplicate member %v", name, gi, m)
			}
			seen[m] = true
		}
		c.parityIdx[g.Parity] = gi
	}

	c.flatParity = true
	for _, g := range groups {
		for _, m := range g.Members {
			if _, isParity := c.parityIdx[m]; isParity {
				c.flatParity = false
			}
		}
	}

	// memberOf, dataCoords, dataIndex.
	c.memberOf = make([][][]int, rows)
	c.dataIndex = make([][]int, rows)
	for r := 0; r < rows; r++ {
		c.memberOf[r] = make([][]int, cols)
		c.dataIndex[r] = make([]int, cols)
		for col := 0; col < cols; col++ {
			c.dataIndex[r][col] = -1
		}
	}
	for gi, g := range groups {
		for _, m := range g.Members {
			c.memberOf[m.Row][m.Col] = append(c.memberOf[m.Row][m.Col], gi)
		}
	}
	for r := 0; r < rows; r++ {
		for col := 0; col < cols; col++ {
			co := Coord{r, col}
			if _, isParity := c.parityIdx[co]; !isParity {
				c.dataIndex[r][col] = len(c.dataCoords)
				c.dataCoords = append(c.dataCoords, co)
			}
		}
	}

	order, err := c.computeEncodeOrder()
	if err != nil {
		return nil, err
	}
	c.encodeOrder = order
	c.computeUpdateClosure()
	return c, nil
}

// computeUpdateClosure flattens every parity equation down to its data-cell
// support (expanding parity members through the encode order, with XOR
// semantics: a data cell that cancels out an even number of times is not in
// the support) and records, per data cell, which parities actually change
// when that cell is written. For RDP this is how a data write reaches the
// diagonal parity *through* the row parity; for codes whose groups reference
// data only (D-Code, X-Code, H-Code) it coincides with direct membership.
func (c *Code) computeUpdateClosure() {
	words := (c.rows*c.cols + 63) / 64
	bitOf := func(co Coord) (int, uint64) {
		i := co.Row*c.cols + co.Col
		return i / 64, 1 << (i % 64)
	}
	supports := make([][]uint64, len(c.groups))
	for _, gi := range c.encodeOrder {
		s := make([]uint64, words)
		for _, m := range c.groups[gi].Members {
			if dep, isParity := c.parityIdx[m]; isParity {
				for w, v := range supports[dep] {
					s[w] ^= v
				}
			} else {
				w, b := bitOf(m)
				s[w] ^= b
			}
		}
		supports[gi] = s
	}
	c.updateOf = make([][][]int, c.rows)
	for r := 0; r < c.rows; r++ {
		c.updateOf[r] = make([][]int, c.cols)
	}
	for gi, s := range supports {
		for r := 0; r < c.rows; r++ {
			for col := 0; col < c.cols; col++ {
				w, b := bitOf(Coord{r, col})
				if s[w]&b != 0 {
					c.updateOf[r][col] = append(c.updateOf[r][col], gi)
				}
			}
		}
	}
}

// computeEncodeOrder topologically sorts the groups so that every group's
// parity members are computed before the group itself.
func (c *Code) computeEncodeOrder() ([]int, error) {
	order := make([]int, 0, len(c.groups))
	done := make([]bool, len(c.groups))
	for len(order) < len(c.groups) {
		progress := false
		for gi, g := range c.groups {
			if done[gi] {
				continue
			}
			ready := true
			for _, m := range g.Members {
				if dep, isParity := c.parityIdx[m]; isParity && !done[dep] {
					ready = false
					break
				}
			}
			if ready {
				done[gi] = true
				order = append(order, gi)
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("erasure: %s: cyclic parity dependencies", c.name)
		}
	}
	return order, nil
}

// Name returns the code's human-readable name (e.g. "D-Code").
func (c *Code) Name() string { return c.name }

// P returns the prime parameter the stripe was constructed with.
func (c *Code) P() int { return c.p }

// Rows returns the number of element rows per stripe.
func (c *Code) Rows() int { return c.rows }

// Cols returns the number of columns, i.e. disks.
func (c *Code) Cols() int { return c.cols }

// Groups returns the parity groups. The slice must not be modified.
func (c *Code) Groups() []Group { return c.groups }

// FlatParity reports whether every parity group reads data cells only —
// no parity-on-parity chains (true for D-Code, X-Code, H-Code; false for
// RDP and HDP). Flat codes admit group-level encode parallelism.
func (c *Code) FlatParity() bool { return c.flatParity }

// DataElems returns the number of data elements per stripe.
func (c *Code) DataElems() int { return len(c.dataCoords) }

// IsParity reports whether the cell at (r, col) holds a parity element.
func (c *Code) IsParity(r, col int) bool {
	_, ok := c.parityIdx[Coord{r, col}]
	return ok
}

// ParityGroup returns the index of the group whose parity lives at (r, col),
// or -1 if the cell is a data element.
func (c *Code) ParityGroup(r, col int) int {
	if gi, ok := c.parityIdx[Coord{r, col}]; ok {
		return gi
	}
	return -1
}

// DataCoord maps a logical data index (0..DataElems-1, row-major over data
// cells) to its stripe coordinate.
func (c *Code) DataCoord(idx int) Coord { return c.dataCoords[idx] }

// DataIndex maps a stripe coordinate to its logical data index, or -1 for
// parity cells.
func (c *Code) DataIndex(r, col int) int { return c.dataIndex[r][col] }

// MemberOf returns the indices of the groups that include (r, col) as a
// *direct* member — the equations the stored cell value appears in, which is
// what decoding and degraded reads use. The slice must not be modified.
func (c *Code) MemberOf(r, col int) []int { return c.memberOf[r][col] }

// UpdateGroups returns the indices of the groups whose parity value changes
// when the data cell (r, col) is overwritten — direct membership plus
// parity-through-parity propagation (e.g. RDP's diagonal parity changes when
// a row parity it covers changes). This is the code's true update
// complexity. The slice must not be modified.
func (c *Code) UpdateGroups(r, col int) []int { return c.updateOf[r][col] }

// ColumnCells returns all coordinates of column col.
func (c *Code) ColumnCells(col int) []Coord {
	cells := make([]Coord, c.rows)
	for r := 0; r < c.rows; r++ {
		cells[r] = Coord{r, col}
	}
	return cells
}

// DataColumns returns the number of columns that contain at least one data
// element — the disks that contribute to normal reads.
func (c *Code) DataColumns() int {
	n := 0
	for col := 0; col < c.cols; col++ {
		for r := 0; r < c.rows; r++ {
			if c.dataIndex[r][col] >= 0 {
				n++
				break
			}
		}
	}
	return n
}

// GroupsTouchedBy returns the sorted set of group indices whose parity a
// partial-stripe write of the given data cells must update, including
// parity-through-parity propagation (see UpdateGroups).
func (c *Code) GroupsTouchedBy(cells []Coord) []int {
	set := make(map[int]bool)
	for _, co := range cells {
		for _, gi := range c.updateOf[co.Row][co.Col] {
			set[gi] = true
		}
	}
	out := make([]int, 0, len(set))
	for gi := range set {
		out = append(out, gi)
	}
	sort.Ints(out)
	return out
}
