package erasure

import "testing"

// planCode is a 3×4 two-parity-column code whose groups mix both kinds so
// PlanDegraded's choice and restriction logic can be exercised without
// importing a real code package:
//
//	col 2: "horizontal" parity of each row; col 3: "diagonal" parities.
func planCode(t *testing.T) *Code {
	t.Helper()
	groups := []Group{
		{Kind: KindHorizontal, Parity: Coord{0, 2}, Members: []Coord{{0, 0}, {0, 1}}},
		{Kind: KindHorizontal, Parity: Coord{1, 2}, Members: []Coord{{1, 0}, {1, 1}}},
		{Kind: KindHorizontal, Parity: Coord{2, 2}, Members: []Coord{{2, 0}, {2, 1}}},
		{Kind: KindDiagonal, Parity: Coord{0, 3}, Members: []Coord{{0, 0}, {1, 1}}},
		{Kind: KindDiagonal, Parity: Coord{1, 3}, Members: []Coord{{1, 0}, {2, 1}}},
		{Kind: KindDiagonal, Parity: Coord{2, 3}, Members: []Coord{{2, 0}, {0, 1}}},
	}
	c, err := New("plan", 3, 3, 4, groups)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlanDegradedValidation(t *testing.T) {
	c := planCode(t)
	if _, err := c.PlanDegraded(-1, nil, nil); err == nil {
		t.Fatal("negative column accepted")
	}
	if _, err := c.PlanDegraded(4, nil, nil); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestPlanDegradedNoLoss(t *testing.T) {
	c := planCode(t)
	plan, err := c.PlanDegraded(1, []Coord{{0, 0}, {1, 0}, {0, 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Extra != 0 || len(plan.Steps) != 0 {
		t.Fatalf("plan for surviving cells has extras: %+v", plan)
	}
	// Duplicates in wanted must be deduplicated.
	if len(plan.Fetch) != 2 {
		t.Fatalf("fetch = %v, want 2 distinct cells", plan.Fetch)
	}
}

func TestPlanDegradedPrefersOverlap(t *testing.T) {
	c := planCode(t)
	// Reading (0,0) and (0,1) with column 0 failed: the horizontal group of
	// row 0 already contains (0,1), so only P(0,2) is extra; the diagonal
	// group would need (1,1) AND P(0,3).
	plan, err := c.PlanDegraded(0, []Coord{{0, 0}, {0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Extra != 1 {
		t.Fatalf("extra = %d, want 1 (the shared horizontal parity)", plan.Extra)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Target != (Coord{0, 0}) {
		t.Fatalf("steps = %+v", plan.Steps)
	}
	if g := c.Groups()[plan.Steps[0].Group]; g.Kind != KindHorizontal {
		t.Fatalf("chose %v group, want horizontal", g.Kind)
	}
}

func TestPlanDegradedKindRestriction(t *testing.T) {
	c := planCode(t)
	plan, err := c.PlanDegraded(0, []Coord{{0, 0}, {0, 1}}, []GroupKind{KindDiagonal})
	if err != nil {
		t.Fatal(err)
	}
	if g := c.Groups()[plan.Steps[0].Group]; g.Kind != KindDiagonal {
		t.Fatalf("restriction ignored: chose %v", g.Kind)
	}
	if plan.Extra != 2 { // (1,1) and P(0,3)
		t.Fatalf("diagonal-only extra = %d, want 2", plan.Extra)
	}
	// Restricting to a kind that covers nothing must fail.
	if _, err := c.PlanDegraded(0, []Coord{{0, 0}}, []GroupKind{KindDeployment}); err == nil {
		t.Fatal("unusable kind restriction accepted")
	}
}

func TestPlanDegradedParityCellWanted(t *testing.T) {
	// Asking for a lost parity cell: its own group recovers it.
	c := planCode(t)
	plan, err := c.PlanDegraded(2, []Coord{{0, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || plan.Extra != 2 {
		t.Fatalf("plan = %+v, want the two row members fetched", plan)
	}
}

func TestUpdateGroupsFlattening(t *testing.T) {
	// A chain: g0's parity is a member of g1, so updating the data cell must
	// touch both parities; a cell reached twice cancels out.
	groups := []Group{
		{Parity: Coord{0, 1}, Members: []Coord{{0, 0}}},
		{Parity: Coord{0, 2}, Members: []Coord{{0, 1}, {1, 0}}},
		// g2 covers the data cell directly AND via g0's parity: the support
		// cancels, so (0,0) must NOT appear in g2's update set.
		{Parity: Coord{0, 3}, Members: []Coord{{0, 0}, {0, 1}}},
	}
	c, err := New("flat", 3, 2, 4, groups)
	if err != nil {
		t.Fatal(err)
	}
	got := c.UpdateGroups(0, 0)
	want := map[int]bool{0: true, 1: true}
	if len(got) != 2 {
		t.Fatalf("UpdateGroups(0,0) = %v, want exactly groups 0 and 1", got)
	}
	for _, gi := range got {
		if !want[gi] {
			t.Fatalf("UpdateGroups(0,0) = %v includes cancelled group", got)
		}
	}
	// Behavioural cross-check: UpdateData must keep Verify green.
	s := c.NewStripe(8)
	s.Fill(4)
	c.Encode(s)
	c.UpdateData(s, 0, 0, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	if !c.Verify(s) {
		t.Fatal("UpdateData with cancelling closure broke parity")
	}
}
