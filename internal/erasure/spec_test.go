package erasure

import "testing"

// miniCode is a hand-checkable 3×3 code: column 2 data, parity at (0,0)
// covering row 0 data, etc. Layout:
//
//	P0 D  D     P0 = (0,1)^(0,2)
//	D  P1 D     P1 = (1,0)^(1,2)
//	D  D  P2    P2 = (2,0)^(2,1)
func miniCode(t *testing.T) *Code {
	t.Helper()
	groups := []Group{
		{Kind: KindHorizontal, Parity: Coord{0, 0}, Members: []Coord{{0, 1}, {0, 2}}},
		{Kind: KindHorizontal, Parity: Coord{1, 1}, Members: []Coord{{1, 0}, {1, 2}}},
		{Kind: KindHorizontal, Parity: Coord{2, 2}, Members: []Coord{{2, 0}, {2, 1}}},
	}
	c, err := New("mini", 3, 3, 3, groups)
	if err != nil {
		t.Fatalf("miniCode: %v", err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New("bad", 3, 0, 3, nil); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := New("bad", 3, 3, -1, nil); err == nil {
		t.Fatal("negative cols accepted")
	}
}

func TestNewRejectsParityOutOfRange(t *testing.T) {
	_, err := New("bad", 3, 2, 2, []Group{
		{Parity: Coord{2, 0}, Members: []Coord{{0, 0}}},
	})
	if err == nil {
		t.Fatal("out-of-range parity accepted")
	}
}

func TestNewRejectsDuplicateParity(t *testing.T) {
	_, err := New("bad", 3, 2, 2, []Group{
		{Parity: Coord{0, 0}, Members: []Coord{{1, 0}}},
		{Parity: Coord{0, 0}, Members: []Coord{{1, 1}}},
	})
	if err == nil {
		t.Fatal("duplicate parity cell accepted")
	}
}

func TestNewRejectsEmptyGroup(t *testing.T) {
	_, err := New("bad", 3, 2, 2, []Group{{Parity: Coord{0, 0}}})
	if err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestNewRejectsSelfMember(t *testing.T) {
	_, err := New("bad", 3, 2, 2, []Group{
		{Parity: Coord{0, 0}, Members: []Coord{{0, 0}}},
	})
	if err == nil {
		t.Fatal("self-member accepted")
	}
}

func TestNewRejectsDuplicateMember(t *testing.T) {
	_, err := New("bad", 3, 2, 2, []Group{
		{Parity: Coord{0, 0}, Members: []Coord{{1, 0}, {1, 0}}},
	})
	if err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestNewRejectsMemberOutOfRange(t *testing.T) {
	_, err := New("bad", 3, 2, 2, []Group{
		{Parity: Coord{0, 0}, Members: []Coord{{1, 2}}},
	})
	if err == nil {
		t.Fatal("out-of-range member accepted")
	}
}

func TestNewRejectsCyclicParityDependency(t *testing.T) {
	_, err := New("bad", 3, 2, 2, []Group{
		{Parity: Coord{0, 0}, Members: []Coord{{0, 1}}},
		{Parity: Coord{0, 1}, Members: []Coord{{0, 0}}},
	})
	if err == nil {
		t.Fatal("cyclic parity dependency accepted")
	}
}

func TestEncodeOrderRespectsDependencies(t *testing.T) {
	// q depends on parity (0,0); it must be encoded after it even though it
	// is listed first.
	groups := []Group{
		{Parity: Coord{0, 1}, Members: []Coord{{0, 0}, {1, 0}}},
		{Parity: Coord{0, 0}, Members: []Coord{{1, 0}, {1, 1}}},
	}
	c, err := New("dep", 3, 2, 2, groups)
	if err != nil {
		t.Fatal(err)
	}
	if got := []int{c.encodeOrder[0], c.encodeOrder[1]}; got[0] != 1 || got[1] != 0 {
		t.Fatalf("encode order = %v, want [1 0]", got)
	}
	// Behavioural check: encoding must satisfy Verify.
	s := c.NewStripe(8)
	s.Fill(3)
	c.Encode(s)
	if !c.Verify(s) {
		t.Fatal("dependency-ordered encode does not verify")
	}
}

func TestAccessors(t *testing.T) {
	c := miniCode(t)
	if c.Name() != "mini" || c.P() != 3 || c.Rows() != 3 || c.Cols() != 3 {
		t.Fatalf("basic accessors wrong: %s %d %d %d", c.Name(), c.P(), c.Rows(), c.Cols())
	}
	if c.DataElems() != 6 {
		t.Fatalf("DataElems = %d, want 6", c.DataElems())
	}
	if !c.IsParity(0, 0) || c.IsParity(0, 1) {
		t.Fatal("IsParity wrong")
	}
	if c.ParityGroup(1, 1) != 1 || c.ParityGroup(0, 1) != -1 {
		t.Fatal("ParityGroup wrong")
	}
	if len(c.Groups()) != 3 {
		t.Fatal("Groups wrong length")
	}
}

func TestDataIndexRoundTrip(t *testing.T) {
	c := miniCode(t)
	for i := 0; i < c.DataElems(); i++ {
		co := c.DataCoord(i)
		if c.DataIndex(co.Row, co.Col) != i {
			t.Fatalf("DataIndex(DataCoord(%d)) = %d", i, c.DataIndex(co.Row, co.Col))
		}
		if c.IsParity(co.Row, co.Col) {
			t.Fatalf("DataCoord(%d) = %v is a parity cell", i, co)
		}
	}
	// Row-major ordering of data cells.
	if c.DataCoord(0) != (Coord{0, 1}) || c.DataCoord(1) != (Coord{0, 2}) || c.DataCoord(2) != (Coord{1, 0}) {
		t.Fatalf("data ordering not row-major: %v %v %v", c.DataCoord(0), c.DataCoord(1), c.DataCoord(2))
	}
	if c.DataIndex(0, 0) != -1 {
		t.Fatal("DataIndex of parity cell should be -1")
	}
}

func TestMemberOf(t *testing.T) {
	c := miniCode(t)
	if got := c.MemberOf(0, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("MemberOf(0,1) = %v, want [0]", got)
	}
	if got := c.MemberOf(0, 0); len(got) != 0 {
		t.Fatalf("MemberOf(parity) = %v, want empty", got)
	}
}

func TestGroupsTouchedBy(t *testing.T) {
	c := miniCode(t)
	got := c.GroupsTouchedBy([]Coord{{0, 1}, {0, 2}, {1, 0}})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("GroupsTouchedBy = %v, want [0 1]", got)
	}
	if got := c.GroupsTouchedBy(nil); len(got) != 0 {
		t.Fatalf("GroupsTouchedBy(nil) = %v", got)
	}
}

func TestColumnCellsAndDataColumns(t *testing.T) {
	c := miniCode(t)
	cells := c.ColumnCells(1)
	if len(cells) != 3 || cells[0] != (Coord{0, 1}) || cells[2] != (Coord{2, 1}) {
		t.Fatalf("ColumnCells(1) = %v", cells)
	}
	if c.DataColumns() != 3 {
		t.Fatalf("DataColumns = %d, want 3", c.DataColumns())
	}
	// A code with a pure parity column.
	pure, err := New("pure", 3, 2, 2, []Group{
		{Parity: Coord{0, 1}, Members: []Coord{{0, 0}}},
		{Parity: Coord{1, 1}, Members: []Coord{{1, 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pure.DataColumns() != 1 {
		t.Fatalf("pure parity column counted as data: DataColumns = %d", pure.DataColumns())
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 17: true,
		19: true, 23: true, 29: true, 31: true, 37: true, 41: true, 43: true,
		47: true, 53: true, 59: true, 61: true,
	}
	for n := -3; n <= 61; n++ {
		if IsPrime(n) != primes[n] {
			t.Errorf("IsPrime(%d) = %v", n, IsPrime(n))
		}
	}
}

func TestMod(t *testing.T) {
	cases := []struct{ a, m, want int }{
		{5, 7, 5}, {7, 7, 0}, {-1, 7, 6}, {-8, 7, 6}, {-14, 7, 0}, {20, 7, 6},
	}
	for _, c := range cases {
		if got := Mod(c.a, c.m); got != c.want {
			t.Errorf("Mod(%d,%d) = %d, want %d", c.a, c.m, got, c.want)
		}
	}
}

func TestCoordString(t *testing.T) {
	if (Coord{2, 3}).String() != "(2,3)" {
		t.Fatalf("Coord.String = %q", (Coord{2, 3}).String())
	}
}
