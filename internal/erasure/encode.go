package erasure

import (
	"fmt"

	"dcode/internal/stripe"
)

// NewStripe allocates a zeroed stripe with this code's geometry.
func (c *Code) NewStripe(elemSize int) *stripe.Stripe {
	return stripe.New(c.rows, c.cols, elemSize)
}

// checkStripe panics if s does not match the code's geometry; mixing a stripe
// across codes is a programming error, not a runtime condition.
func (c *Code) checkStripe(s *stripe.Stripe) {
	if s.Rows() != c.rows || s.Cols() != c.cols {
		panic(fmt.Sprintf("erasure: %s: stripe %d×%d does not match code %d×%d",
			c.name, s.Rows(), s.Cols(), c.rows, c.cols))
	}
}

// Encode computes every parity element of the stripe in dependency order,
// overwriting whatever the parity cells previously held.
func (c *Code) Encode(s *stripe.Stripe) {
	c.checkStripe(s)
	for _, gi := range c.encodeOrder {
		c.EncodeGroup(s, gi)
	}
}

// EncodeGroup recomputes the parity of a single group. Any parity members
// must already be up to date.
func (c *Code) EncodeGroup(s *stripe.Stripe, gi int) {
	g := c.groups[gi]
	dst := s.Elem(g.Parity.Row, g.Parity.Col)
	first := g.Members[0]
	copy(dst, s.Elem(first.Row, first.Col))
	for _, m := range g.Members[1:] {
		stripe.XOR(dst, s.Elem(m.Row, m.Col))
	}
	ops := int64(len(g.Members) - 1)
	c.xor.addEncode(ops, ops*int64(s.ElemSize()))
}

// UpdateData applies a read-modify-write style small write: it stores
// newData into the data cell at (r, col) and patches every parity whose
// value depends on it with (old XOR new), without touching any other data
// element. The patch set is the flattened update closure, so parities that
// cover other parities (RDP, HDP) stay consistent too. For D-Code the set
// always has exactly two entries — the "optimal update complexity" of the
// paper's §III-D.
func (c *Code) UpdateData(s *stripe.Stripe, r, col int, newData []byte) {
	c.checkStripe(s)
	if c.dataIndex[r][col] < 0 {
		panic(fmt.Sprintf("erasure: %s: UpdateData on parity cell (%d,%d)", c.name, r, col))
	}
	old := s.Elem(r, col)
	delta := make([]byte, len(old))
	stripe.XORInto(delta, old, newData)
	copy(old, newData)
	for _, gi := range c.updateOf[r][col] {
		p := c.groups[gi].Parity
		stripe.XOR(s.Elem(p.Row, p.Col), delta)
	}
	ops := int64(1 + len(c.updateOf[r][col])) // the delta plus one patch per parity
	c.xor.addEncode(ops, ops*int64(s.ElemSize()))
}

// Verify reports whether every parity equation holds on the stripe.
func (c *Code) Verify(s *stripe.Stripe) bool {
	c.checkStripe(s)
	buf := make([]byte, s.ElemSize())
	for _, g := range c.groups {
		for i := range buf {
			buf[i] = 0
		}
		for _, m := range g.Members {
			stripe.XOR(buf, s.Elem(m.Row, m.Col))
		}
		stripe.XOR(buf, s.Elem(g.Parity.Row, g.Parity.Col))
		if !stripe.IsZero(buf) {
			return false
		}
	}
	return true
}
