package erasure

import (
	"fmt"

	"dcode/internal/stripe"
)

// NewStripe allocates a zeroed stripe with this code's geometry.
func (c *Code) NewStripe(elemSize int) *stripe.Stripe {
	return stripe.New(c.rows, c.cols, elemSize)
}

// checkStripe panics if s does not match the code's geometry; mixing a stripe
// across codes is a programming error, not a runtime condition.
func (c *Code) checkStripe(s *stripe.Stripe) {
	if s.Rows() != c.rows || s.Cols() != c.cols {
		panic(fmt.Sprintf("erasure: %s: stripe %d×%d does not match code %d×%d",
			c.name, s.Rows(), s.Cols(), c.rows, c.cols))
	}
}

// Encode computes every parity element of the stripe in dependency order,
// overwriting whatever the parity cells previously held.
func (c *Code) Encode(s *stripe.Stripe) {
	c.checkStripe(s)
	for _, gi := range c.encodeOrder {
		c.EncodeGroup(s, gi)
	}
}

// EncodeGroup recomputes the parity of a single group. Any parity members
// must already be up to date.
func (c *Code) EncodeGroup(s *stripe.Stripe, gi int) {
	c.encodeGroupInto(s, gi)
	ops := int64(len(c.groups[gi].Members) - 1)
	c.xor.addEncode(ops, ops*int64(s.ElemSize()))
}

// encodeGroupInto is EncodeGroup without the XOR tally, shared with the
// parallel encoder (which tallies once for the whole stripe). Members are
// folded through the multi-source kernel so the parity accumulator is
// traversed once per four members instead of once per member.
func (c *Code) encodeGroupInto(s *stripe.Stripe, gi int) {
	g := &c.groups[gi]
	dst := s.Elem(g.Parity.Row, g.Parity.Col)
	first := g.Members[0]
	copy(dst, s.Elem(first.Row, first.Col))
	var arr [16][]byte
	srcs := arr[:0]
	for _, m := range g.Members[1:] {
		srcs = append(srcs, s.Elem(m.Row, m.Col))
		if len(srcs) == cap(srcs) {
			stripe.XORMulti(dst, srcs...)
			srcs = srcs[:0]
		}
	}
	stripe.XORMulti(dst, srcs...)
}

// EncodeFrom computes every parity element like Encode, but reads each data
// element through data — indexed by DataIndex(r, col) — when that entry is
// non-nil, falling back to the stripe cell otherwise. Parity lands in s as
// usual. The raid layer's zero-copy full-stripe write passes views of the
// user's buffer here, so the data bytes are XOR-folded straight from where
// the caller handed them over and never transit stripe memory. XOR tallies
// are identical to Encode's: members-1 per group.
func (c *Code) EncodeFrom(s *stripe.Stripe, data [][]byte) {
	c.checkStripe(s)
	for _, gi := range c.encodeOrder {
		g := &c.groups[gi]
		dst := s.Elem(g.Parity.Row, g.Parity.Col)
		copy(dst, c.cellFrom(s, data, g.Members[0]))
		var arr [16][]byte
		srcs := arr[:0]
		for _, m := range g.Members[1:] {
			srcs = append(srcs, c.cellFrom(s, data, m))
			if len(srcs) == cap(srcs) {
				stripe.XORMulti(dst, srcs...)
				srcs = srcs[:0]
			}
		}
		stripe.XORMulti(dst, srcs...)
		ops := int64(len(g.Members) - 1)
		c.xor.addEncode(ops, ops*int64(s.ElemSize()))
	}
}

// cellFrom resolves one group member for EncodeFrom: the caller's buffer view
// for a covered data cell, the stripe cell for parity members (groups that
// cover other parities, as in RDP/HDP) and for data cells the caller did not
// provide.
func (c *Code) cellFrom(s *stripe.Stripe, data [][]byte, m Coord) []byte {
	if di := c.dataIndex[m.Row][m.Col]; di >= 0 && di < len(data) && data[di] != nil {
		return data[di]
	}
	return s.Elem(m.Row, m.Col)
}

// codeScratch is the pooled per-call scratch of UpdateData and Verify.
type codeScratch struct {
	buf  []byte
	srcs [][]byte
}

func (c *Code) getScratch(elemSize int) *codeScratch {
	if v := c.scratch.Get(); v != nil {
		sc := v.(*codeScratch)
		if cap(sc.buf) < elemSize {
			sc.buf = make([]byte, elemSize)
		}
		sc.buf = sc.buf[:elemSize]
		return sc
	}
	return &codeScratch{buf: make([]byte, elemSize)}
}

func (c *Code) putScratch(sc *codeScratch) {
	clear(sc.srcs) // drop element references so pooled scratch pins no stripe
	sc.srcs = sc.srcs[:0]
	c.scratch.Put(sc)
}

// UpdateData applies a read-modify-write style small write: it stores
// newData into the data cell at (r, col) and patches every parity whose
// value depends on it with (old XOR new), without touching any other data
// element. The patch set is the flattened update closure, so parities that
// cover other parities (RDP, HDP) stay consistent too. For D-Code the set
// always has exactly two entries — the "optimal update complexity" of the
// paper's §III-D.
func (c *Code) UpdateData(s *stripe.Stripe, r, col int, newData []byte) {
	c.checkStripe(s)
	if c.dataIndex[r][col] < 0 {
		panic(fmt.Sprintf("erasure: %s: UpdateData on parity cell (%d,%d)", c.name, r, col))
	}
	old := s.Elem(r, col)
	sc := c.getScratch(len(old))
	delta := sc.buf
	stripe.XORInto(delta, old, newData)
	copy(old, newData)
	for _, gi := range c.updateOf[r][col] {
		p := c.groups[gi].Parity
		stripe.XOR(s.Elem(p.Row, p.Col), delta)
	}
	c.putScratch(sc)
	ops := int64(1 + len(c.updateOf[r][col])) // the delta plus one patch per parity
	c.xor.addEncode(ops, ops*int64(s.ElemSize()))
}

// Verify reports whether every parity equation holds on the stripe.
func (c *Code) Verify(s *stripe.Stripe) bool {
	c.checkStripe(s)
	sc := c.getScratch(s.ElemSize())
	defer c.putScratch(sc)
	buf := sc.buf
	for _, g := range c.groups {
		first := g.Members[0]
		copy(buf, s.Elem(first.Row, first.Col))
		srcs := sc.srcs[:0]
		for _, m := range g.Members[1:] {
			srcs = append(srcs, s.Elem(m.Row, m.Col))
		}
		srcs = append(srcs, s.Elem(g.Parity.Row, g.Parity.Col))
		sc.srcs = srcs
		stripe.XORMulti(buf, srcs...)
		if !stripe.IsZero(buf) {
			return false
		}
	}
	return true
}
