package erasure

import (
	"fmt"

	"dcode/internal/stripe"
)

// Reconstruct repairs the stripe in place after the listed columns failed.
// The prior contents of the failed columns are treated as garbage and never
// read. Any number of columns may be passed; reconstruction succeeds exactly
// when the erasure pattern is solvable, which for the MDS RAID-6 codes in
// this repository means up to two columns.
//
// The decoder first runs the peeling pass the papers describe (start from an
// equation with a single missing element, recover it, repeat — the recovery
// chains of D-Code Fig. 3), then falls back to GF(2) Gaussian elimination for
// patterns peeling alone cannot finish (e.g. EVENODD's S-coupled diagonals).
func (c *Code) Reconstruct(s *stripe.Stripe, failed ...int) error {
	c.checkStripe(s)
	if len(failed) == 0 {
		return nil
	}
	seen := make(map[int]bool, len(failed))
	for _, f := range failed {
		if f < 0 || f >= c.cols {
			return fmt.Errorf("erasure: %s: failed column %d out of range [0,%d)", c.name, f, c.cols)
		}
		if seen[f] {
			return fmt.Errorf("erasure: %s: failed column %d listed twice", c.name, f)
		}
		seen[f] = true
	}

	// Collect unknowns: every cell of every failed column.
	unknownIdx := make(map[Coord]int)
	var unknowns []Coord
	for f := range seen {
		for r := 0; r < c.rows; r++ {
			co := Coord{r, f}
			unknownIdx[co] = len(unknowns)
			unknowns = append(unknowns, co)
		}
	}

	solved := make([]bool, len(unknowns))
	remaining := len(unknowns)

	// eqCells returns the full cell set of group gi (members plus parity).
	eqCells := func(gi int) []Coord {
		g := &c.groups[gi]
		cells := make([]Coord, 0, len(g.Members)+1)
		cells = append(cells, g.Members...)
		cells = append(cells, g.Parity)
		return cells
	}
	isUnknown := func(co Coord) (int, bool) {
		ui, ok := unknownIdx[co]
		if !ok || solved[ui] {
			return 0, false
		}
		return ui, true
	}

	// Peeling pass. Each recovery XORs the size-1 known cells of its equation
	// together, which is size-2 element XOR operations — the count
	// SymbolicDecode predicts and the XOR counters report.
	var peelOps int64
	for remaining > 0 {
		progress := false
		for gi := range c.groups {
			cells := eqCells(gi)
			var target Coord
			targetUI, missing := -1, 0
			for _, co := range cells {
				if ui, unk := isUnknown(co); unk {
					missing++
					if missing > 1 {
						break
					}
					target, targetUI = co, ui
				}
			}
			if missing != 1 {
				continue
			}
			// Recover target = XOR of the equation's other cells: seed dst
			// with the first one, fold the rest through the multi-source
			// kernel (same size-2 XOR-op count as the zero-then-XOR loop).
			dst := s.Elem(target.Row, target.Col)
			var arr [16][]byte
			srcs := arr[:0]
			seeded := false
			for _, co := range cells {
				if co == target {
					continue
				}
				e := s.Elem(co.Row, co.Col)
				if !seeded {
					copy(dst, e)
					seeded = true
					continue
				}
				srcs = append(srcs, e)
				if len(srcs) == cap(srcs) {
					stripe.XORMulti(dst, srcs...)
					srcs = srcs[:0]
				}
			}
			stripe.XORMulti(dst, srcs...)
			peelOps += int64(len(cells) - 2)
			solved[targetUI] = true
			remaining--
			progress = true
		}
		if !progress {
			break
		}
	}
	c.xor.addDecode(peelOps, peelOps*int64(s.ElemSize()))
	if remaining == 0 {
		return nil
	}
	return c.gaussian(s, unknowns, solved, remaining, eqCells, isUnknown)
}

// gaussian solves the residual unknowns by Gauss-Jordan elimination over
// GF(2). Each equation's right-hand side is the XOR of its known cells; the
// boolean coefficient matrix is tiny (at most a few dozen unknowns), so rows
// are kept as word-packed bit vectors.
func (c *Code) gaussian(s *stripe.Stripe, unknowns []Coord, solved []bool, remaining int,
	eqCells func(int) []Coord, isUnknown func(Coord) (int, bool)) error {

	// Compact indices for the still-unsolved unknowns.
	compact := make([]int, len(unknowns)) // unknown index -> compact column, -1 if solved
	var order []int                       // compact column -> unknown index
	for ui := range unknowns {
		compact[ui] = -1
		if !solved[ui] {
			compact[ui] = len(order)
			order = append(order, ui)
		}
	}
	k := len(order)
	words := (k + 63) / 64
	elemSize := s.ElemSize()

	type row struct {
		mask []uint64
		rhs  []byte
	}
	var gaussOps int64
	defer func() { c.xor.addDecode(gaussOps, gaussOps*int64(elemSize)) }()
	var rows []row
	for gi := range c.groups {
		r := row{mask: make([]uint64, words), rhs: make([]byte, elemSize)}
		any := false
		for _, co := range eqCells(gi) {
			if ui, unk := isUnknown(co); unk {
				j := compact[ui]
				r.mask[j/64] ^= 1 << (j % 64)
				any = true
			} else {
				stripe.XOR(r.rhs, s.Elem(co.Row, co.Col))
				gaussOps++
			}
		}
		if any {
			rows = append(rows, r)
		}
	}

	bit := func(m []uint64, j int) bool { return m[j/64]>>(j%64)&1 == 1 }
	rank := 0
	pivotRow := make([]int, k)
	for j := 0; j < k; j++ {
		pivotRow[j] = -1
	}
	for j := 0; j < k && rank < len(rows); j++ {
		pr := -1
		for i := rank; i < len(rows); i++ {
			if bit(rows[i].mask, j) {
				pr = i
				break
			}
		}
		if pr < 0 {
			continue
		}
		rows[rank], rows[pr] = rows[pr], rows[rank]
		for i := range rows {
			if i != rank && bit(rows[i].mask, j) {
				for w := 0; w < words; w++ {
					rows[i].mask[w] ^= rows[rank].mask[w]
				}
				stripe.XOR(rows[i].rhs, rows[rank].rhs)
				gaussOps++
			}
		}
		pivotRow[j] = rank
		rank++
	}
	for j := 0; j < k; j++ {
		if pivotRow[j] < 0 {
			co := unknowns[order[j]]
			return fmt.Errorf("erasure: %s: erasure pattern unsolvable (element %v unrecoverable)", c.name, co)
		}
	}
	for j := 0; j < k; j++ {
		co := unknowns[order[j]]
		copy(s.Elem(co.Row, co.Col), rows[pivotRow[j]].rhs)
	}
	return nil
}

// SymbolicDecode runs the peeling decoder without data, returning the number
// of element XOR operations a full reconstruction of the failed columns
// performs and the order in which elements are recovered. It errors if
// peeling alone cannot finish (codes that need the Gaussian fallback).
// The paper's decoding-complexity figures (§III-D) come from this count.
func (c *Code) SymbolicDecode(failed ...int) (xors int, chain []Coord, err error) {
	unknown := make(map[Coord]bool)
	for _, f := range failed {
		if f < 0 || f >= c.cols {
			return 0, nil, fmt.Errorf("erasure: %s: failed column %d out of range", c.name, f)
		}
		for r := 0; r < c.rows; r++ {
			unknown[Coord{r, f}] = true
		}
	}
	remaining := len(unknown)
	for remaining > 0 {
		progress := false
		for gi := range c.groups {
			g := &c.groups[gi]
			var target Coord
			missing := 0
			size := len(g.Members) + 1
			for _, co := range append(append([]Coord{}, g.Members...), g.Parity) {
				if unknown[co] {
					missing++
					target = co
				}
			}
			if missing != 1 {
				continue
			}
			// Recovering one element from an equation of `size` cells XORs
			// the other size-1 cells together: size-2 XOR operations.
			xors += size - 2
			chain = append(chain, target)
			delete(unknown, target)
			remaining--
			progress = true
		}
		if !progress {
			return xors, chain, fmt.Errorf("erasure: %s: peeling stalled with %d unknowns", c.name, remaining)
		}
	}
	return xors, chain, nil
}
