package erasure

import (
	"math"
	"testing"
)

func TestComputeMetricsMini(t *testing.T) {
	c := miniCode(t)
	m := c.ComputeMetrics()
	if m.DataElems != 6 || m.ParityElems != 3 {
		t.Fatalf("elems = %d/%d, want 6/3", m.DataElems, m.ParityElems)
	}
	if math.Abs(m.StorageEfficiency-6.0/9.0) > 1e-12 {
		t.Fatalf("storage efficiency = %v", m.StorageEfficiency)
	}
	// Each group of 2 members costs 1 XOR: 3 total, 0.5 per data element.
	if m.EncodeXORTotal != 3 {
		t.Fatalf("encode XOR total = %d", m.EncodeXORTotal)
	}
	if math.Abs(m.EncodeXORPerData-0.5) > 1e-12 {
		t.Fatalf("encode XOR per data = %v", m.EncodeXORPerData)
	}
	// Every data element is in exactly one group here.
	if m.UpdateAvg != 1 || m.UpdateMax != 1 {
		t.Fatalf("update = %v/%d, want 1/1", m.UpdateAvg, m.UpdateMax)
	}
}

func TestDecodeXORPerLostCountsStalls(t *testing.T) {
	c := gaussOnly(t)
	_, stalled := c.DecodeXORPerLost()
	if stalled == 0 {
		t.Fatal("gaussOnly should stall peeling for at least one pair")
	}
}
