package erasure

import "fmt"

// DegradedStep recovers one lost cell by XORing every other cell of Group.
type DegradedStep struct {
	Target Coord
	Group  int
}

// DegradedPlan is the minimal fetch-and-recover schedule for serving a read
// while one column is failed: read Fetch from the surviving disks, then
// execute Steps in order (later steps may consume earlier targets).
type DegradedPlan struct {
	// Fetch lists the cells to read: the surviving wanted cells plus the
	// recovery cells, deduplicated, none on the failed column.
	Fetch []Coord
	// Extra counts the fetched cells beyond the surviving wanted ones.
	Extra int
	// Steps recover the lost wanted cells in execution order.
	Steps []DegradedStep
}

// PlanDegraded computes the fetch schedule for a degraded read of the wanted
// cells with the given failed column. For each lost cell it picks, greedily
// and in order, the covering parity group that minimizes cells not already
// being fetched — D-Code's "continuous data elements share a horizontal
// parity" effect falls out of this choice. kinds restricts the candidate
// groups (nil allows all; used by ablation studies).
//
// The plan is valid for a single failed column; lost cells whose groups all
// touch another lost-but-not-yet-recovered cell are ordered after the cell
// they depend on, which for the codes in this repository always succeeds.
func (c *Code) PlanDegraded(failed int, wanted []Coord, kinds []GroupKind) (DegradedPlan, error) {
	if failed < 0 || failed >= c.cols {
		return DegradedPlan{}, fmt.Errorf("erasure: %s: failed column %d out of range [0,%d)", c.name, failed, c.cols)
	}
	allowed := func(k GroupKind) bool { return true }
	if len(kinds) > 0 {
		set := make(map[GroupKind]bool, len(kinds))
		for _, k := range kinds {
			set[k] = true
		}
		allowed = func(k GroupKind) bool { return set[k] }
	}

	var plan DegradedPlan
	have := make(map[Coord]bool, len(wanted))
	var lost []Coord
	for _, co := range wanted {
		if co.Col == failed {
			lost = append(lost, co)
			continue
		}
		if !have[co] {
			have[co] = true
			plan.Fetch = append(plan.Fetch, co)
		}
	}
	recovered := make(map[Coord]bool, len(lost))
	for _, lo := range lost {
		if recovered[lo] {
			continue
		}
		bestCost, bestGroup := -1, -1
		candidates := c.memberOf[lo.Row][lo.Col]
		if gi, isParity := c.parityIdx[lo]; isParity {
			// A lost parity cell is re-encoded from its own group's members.
			candidates = append(append([]int{}, candidates...), gi)
		}
		for _, gi := range candidates {
			if !allowed(c.groups[gi].Kind) {
				continue
			}
			cost, ok := c.degradedGroupCost(gi, lo, failed, have, recovered)
			if !ok {
				continue
			}
			if bestGroup < 0 || cost < bestCost {
				bestCost, bestGroup = cost, gi
			}
		}
		if bestGroup < 0 {
			return DegradedPlan{}, fmt.Errorf("erasure: %s: no usable parity group for %v with column %d failed",
				c.name, lo, failed)
		}
		g := &c.groups[bestGroup]
		for _, cell := range append(append([]Coord{}, g.Members...), g.Parity) {
			if cell == lo || cell.Col == failed {
				continue
			}
			if !have[cell] {
				have[cell] = true
				plan.Fetch = append(plan.Fetch, cell)
				plan.Extra++
			}
		}
		plan.Steps = append(plan.Steps, DegradedStep{Target: lo, Group: bestGroup})
		recovered[lo] = true
	}
	return plan, nil
}

// degradedGroupCost returns how many new fetches recovering target through
// group gi costs, and whether the group is usable (its other cells on the
// failed column must already be recovered).
func (c *Code) degradedGroupCost(gi int, target Coord, failed int,
	have, recovered map[Coord]bool) (int, bool) {
	g := &c.groups[gi]
	cost := 0
	consider := func(cell Coord) bool {
		if cell == target {
			return true
		}
		if cell.Col == failed {
			return recovered[cell]
		}
		if !have[cell] {
			cost++
		}
		return true
	}
	for _, m := range g.Members {
		if !consider(m) {
			return 0, false
		}
	}
	if !consider(g.Parity) {
		return 0, false
	}
	return cost, true
}
