package erasure

import "testing"

// The runtime XOR counters must agree with the analytic §III-D figures: one
// Encode executes exactly ComputeMetrics().EncodeXORTotal element XORs, and a
// peelable reconstruction executes exactly what SymbolicDecode predicts.
func TestXORStatsMatchAnalyticEncode(t *testing.T) {
	c := xorPair(t)
	m := c.ComputeMetrics()
	const elemSize = 256

	s := c.NewStripe(elemSize)
	s.Fill(3)
	c.ResetXORStats()
	c.Encode(s)
	got := c.XORStats()
	if got.EncodeOps != int64(m.EncodeXORTotal) {
		t.Fatalf("Encode executed %d XORs, analytic model predicts %d", got.EncodeOps, m.EncodeXORTotal)
	}
	if got.EncodeBytes != got.EncodeOps*elemSize {
		t.Fatalf("encode bytes %d != ops %d × %d", got.EncodeBytes, got.EncodeOps, elemSize)
	}
	if got.DecodeOps != 0 {
		t.Fatalf("Encode must not count decode work, got %d", got.DecodeOps)
	}

	// The parallel path reports the same volume as the serial one.
	c.ResetXORStats()
	big := c.NewStripe(4096)
	big.Fill(4)
	c.EncodeParallel(big, 4)
	if got := c.XORStats(); got.EncodeOps != int64(m.EncodeXORTotal) {
		t.Fatalf("EncodeParallel counted %d XORs, want %d", got.EncodeOps, m.EncodeXORTotal)
	}
}

func TestXORStatsMatchSymbolicDecode(t *testing.T) {
	c := xorPair(t)
	// Column pair (0,2) peels (see xorPair's rank discussion).
	predicted, _, err := c.SymbolicDecode(0, 2)
	if err != nil {
		t.Fatalf("expected a peelable pair: %v", err)
	}
	s := c.NewStripe(64)
	s.Fill(9)
	c.Encode(s)
	want := s.Clone()
	s.ZeroColumn(0)
	s.ZeroColumn(2)
	c.ResetXORStats()
	if err := c.Reconstruct(s, 0, 2); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(want) {
		t.Fatal("reconstruction corrupted the stripe")
	}
	if got := c.XORStats(); got.DecodeOps != int64(predicted) {
		t.Fatalf("Reconstruct executed %d XORs, SymbolicDecode predicts %d", got.DecodeOps, predicted)
	}
}

func TestXORStatsCountGaussianFallback(t *testing.T) {
	c := gaussOnly(t)
	s := c.NewStripe(32)
	s.Fill(5)
	c.Encode(s)
	want := s.Clone()
	s.ZeroColumn(0)
	s.ZeroColumn(1)
	c.ResetXORStats()
	if err := c.Reconstruct(s, 0, 1); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(want) {
		t.Fatal("gaussian reconstruction corrupted the stripe")
	}
	if got := c.XORStats(); got.DecodeOps == 0 {
		t.Fatal("gaussian fallback executed no counted XORs")
	}
}

func TestXORSnapshotMerge(t *testing.T) {
	a := XORSnapshot{EncodeOps: 1, EncodeBytes: 10, DecodeOps: 2, DecodeBytes: 20}
	a.Merge(XORSnapshot{EncodeOps: 3, EncodeBytes: 30, DecodeOps: 4, DecodeBytes: 40})
	want := XORSnapshot{EncodeOps: 4, EncodeBytes: 40, DecodeOps: 6, DecodeBytes: 60}
	if a != want {
		t.Fatalf("merged %+v, want %+v", a, want)
	}
}
