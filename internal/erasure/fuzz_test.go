package erasure

import "testing"

// FuzzReconstruct drives D-Code-shaped reconstruction with arbitrary stripe
// contents and failure pairs: whatever the bytes, encode → erase → decode
// must round-trip and never panic.
func FuzzReconstruct(f *testing.F) {
	c := fuzzCode(f)
	f.Add(uint64(1), uint8(0), uint8(1))
	f.Add(uint64(42), uint8(3), uint8(3))
	f.Add(^uint64(0), uint8(200), uint8(117))
	f.Fuzz(func(t *testing.T, seed uint64, a, b uint8) {
		s := c.NewStripe(16)
		s.Fill(seed)
		c.Encode(s)
		want := s.Clone()
		f1 := int(a) % c.Cols()
		f2 := int(b) % c.Cols()
		failed := []int{f1}
		if f2 != f1 {
			failed = append(failed, f2)
		}
		for _, col := range failed {
			s.ZeroColumn(col)
		}
		if err := c.Reconstruct(s, failed...); err != nil {
			t.Fatalf("reconstruct%v: %v", failed, err)
		}
		if !s.Equal(want) {
			t.Fatalf("reconstruct%v returned wrong data", failed)
		}
	})
}

// fuzzCode builds an X-Code over p = 5 inline (the equations of the D-Code
// paper's Theorem 1 proof), a known MDS construction.
func fuzzCode(f *testing.F) *Code {
	f.Helper()
	const p = 5
	var groups []Group
	for i := 0; i < p; i++ {
		var diag, anti []Coord
		for j := 0; j <= p-3; j++ {
			diag = append(diag, Coord{Row: j, Col: Mod(i+j+2, p)})
			anti = append(anti, Coord{Row: j, Col: Mod(i-j-2, p)})
		}
		groups = append(groups,
			Group{Kind: KindDiagonal, Parity: Coord{Row: p - 2, Col: i}, Members: diag},
			Group{Kind: KindAntiDiagonal, Parity: Coord{Row: p - 1, Col: i}, Members: anti},
		)
	}
	c, err := New("fuzz-xcode", p, p, p, groups)
	if err != nil {
		f.Fatal(err)
	}
	return c
}
