package erasure

import "testing"

// TestEncodeFromMatchesEncode pins the zero-copy encode entry point: parity
// computed from external data views must be bit-identical to copying the data
// into the stripe and running Encode, with identical XOR tallies.
func TestEncodeFromMatchesEncode(t *testing.T) {
	c := xorPair(t)
	elemSize := 64

	want := c.NewStripe(elemSize)
	want.Fill(5)
	c.Encode(want)
	base := c.XORStats()

	// The stripe handed to EncodeFrom has stale garbage in its data cells;
	// only the external views carry the real data.
	s := c.NewStripe(elemSize)
	s.Fill(99)
	data := make([][]byte, c.DataElems())
	backing := make([]byte, c.DataElems()*elemSize)
	for i := 0; i < c.DataElems(); i++ {
		co := c.DataCoord(i)
		data[i] = backing[i*elemSize : (i+1)*elemSize]
		copy(data[i], want.Elem(co.Row, co.Col))
	}
	c.EncodeFrom(s, data)

	for _, g := range c.Groups() {
		got := s.Elem(g.Parity.Row, g.Parity.Col)
		exp := want.Elem(g.Parity.Row, g.Parity.Col)
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("parity (%d,%d) differs at byte %d", g.Parity.Row, g.Parity.Col, i)
			}
		}
	}
	after := c.XORStats()
	if ops := after.EncodeOps - base.EncodeOps; ops != base.EncodeOps {
		t.Fatalf("EncodeFrom tallied %d XOR ops, Encode tallied %d — accounting must match", ops, base.EncodeOps)
	}
}

// TestEncodeFromDependentParity checks the stripe fallback: a group whose
// members include another parity (RDP-style) must read that member from the
// stripe, where the earlier group just wrote it.
func TestEncodeFromDependentParity(t *testing.T) {
	groups := []Group{
		{Parity: Coord{0, 1}, Members: []Coord{{0, 0}, {1, 0}}},
		{Parity: Coord{1, 1}, Members: []Coord{{0, 1}, {0, 0}}}, // depends on parity (0,1)
	}
	c, err := New("dep", 3, 2, 2, groups)
	if err != nil {
		t.Fatal(err)
	}
	elemSize := 32
	s := c.NewStripe(elemSize)
	s.Fill(7)
	data := make([][]byte, c.DataElems())
	for i := 0; i < c.DataElems(); i++ {
		co := c.DataCoord(i)
		data[i] = append([]byte(nil), s.Elem(co.Row, co.Col)...)
	}
	s.Fill(1234) // scramble: parity must come from the views alone
	for i := 0; i < c.DataElems(); i++ {
		co := c.DataCoord(i)
		// Data cells must also end up correct for Verify; the raid layer
		// writes them from the user buffer, here we just restore them.
		copy(s.Elem(co.Row, co.Col), data[i])
	}
	c.EncodeFrom(s, data)
	if !c.Verify(s) {
		t.Fatal("EncodeFrom with a dependent parity group fails Verify")
	}
}

// TestEncodeFromNilEntriesFallBack checks that nil views read the stripe cell.
func TestEncodeFromNilEntriesFallBack(t *testing.T) {
	c := xorPair(t)
	s := c.NewStripe(16)
	s.Fill(3)
	want := s.Clone()
	c.Encode(want)
	c.EncodeFrom(s, make([][]byte, c.DataElems()))
	if !s.Equal(want) {
		t.Fatal("EncodeFrom with all-nil views differs from Encode")
	}
}
