package erasure

import (
	"strings"
	"testing"
	"testing/quick"
)

// xorPair is a 2×4 code with two parity columns protecting two data columns:
// RAID-4 row parities in column 2 plus two overlapping sums in column 3.
// The four equation vectors over (x00,x01,x10,x11) are {1100, 0011, 1110,
// 0111}, which have full rank, so every column pair is recoverable (the
// data+data pair needs the Gaussian fallback; the others peel).
func xorPair(t *testing.T) *Code {
	t.Helper()
	groups := []Group{
		{Parity: Coord{0, 2}, Members: []Coord{{0, 0}, {0, 1}}},
		{Parity: Coord{1, 2}, Members: []Coord{{1, 0}, {1, 1}}},
		{Parity: Coord{0, 3}, Members: []Coord{{0, 0}, {0, 1}, {1, 0}}},
		{Parity: Coord{1, 3}, Members: []Coord{{0, 1}, {1, 0}, {1, 1}}},
	}
	c, err := New("xorpair", 2, 2, 4, groups)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEncodeVerifyRoundTrip(t *testing.T) {
	c := xorPair(t)
	s := c.NewStripe(16)
	s.Fill(11)
	c.Encode(s)
	if !c.Verify(s) {
		t.Fatal("fresh encode fails Verify")
	}
	s.Elem(0, 0)[0] ^= 1
	if c.Verify(s) {
		t.Fatal("Verify missed a corrupted data element")
	}
}

func TestReconstructNoFailures(t *testing.T) {
	c := xorPair(t)
	s := c.NewStripe(8)
	s.Fill(1)
	c.Encode(s)
	want := s.Clone()
	if err := c.Reconstruct(s); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(want) {
		t.Fatal("Reconstruct with no failures modified the stripe")
	}
}

func TestReconstructRejectsBadColumns(t *testing.T) {
	c := xorPair(t)
	s := c.NewStripe(8)
	if err := c.Reconstruct(s, -1); err == nil {
		t.Fatal("negative column accepted")
	}
	if err := c.Reconstruct(s, 4); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := c.Reconstruct(s, 1, 1); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestReconstructGeometryMismatchPanics(t *testing.T) {
	c := xorPair(t)
	other := New2x2(t).NewStripe(8)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched stripe did not panic")
		}
	}()
	_ = c.Reconstruct(other, 0)
}

// New2x2 builds a trivial 2×2 single-parity-column code for geometry tests.
func New2x2(t *testing.T) *Code {
	t.Helper()
	c, err := New("tiny", 2, 2, 2, []Group{
		{Parity: Coord{0, 1}, Members: []Coord{{0, 0}}},
		{Parity: Coord{1, 1}, Members: []Coord{{1, 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReconstructTooManyFailuresErrors(t *testing.T) {
	c := xorPair(t)
	s := c.NewStripe(8)
	s.Fill(5)
	c.Encode(s)
	err := c.Reconstruct(s, 0, 1, 2)
	if err == nil {
		t.Fatal("three-column erasure of a two-fault-tolerant code succeeded")
	}
	if !strings.Contains(err.Error(), "unsolvable") && !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// gaussOnly is a code peeling cannot decode for the (0,1) erasure: both
// equations cover both data columns, so no equation ever has one unknown.
// The pair is still solvable linearly:
//
//	P(0,2) = (0,0) ^ (0,1)
//	P(1,2) = (0,0) ^ (1,1) ^ (1,0) ... arranged so the 4 unknowns of a
//	two-column erasure need elimination.
func gaussOnly(t *testing.T) *Code {
	t.Helper()
	groups := []Group{
		{Parity: Coord{0, 2}, Members: []Coord{{0, 0}, {0, 1}}},
		{Parity: Coord{1, 2}, Members: []Coord{{1, 0}, {1, 1}}},
		{Parity: Coord{0, 3}, Members: []Coord{{0, 0}, {0, 1}, {1, 0}}},
		{Parity: Coord{1, 3}, Members: []Coord{{0, 1}, {1, 0}, {1, 1}}},
	}
	c, err := New("gauss", 2, 2, 4, groups)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGaussianFallback(t *testing.T) {
	c := gaussOnly(t)
	// Peeling alone must stall on (0,1)...
	if _, _, err := c.SymbolicDecode(0, 1); err == nil {
		t.Fatal("expected peeling to stall for the gaussian-only pattern")
	}
	// ...but Reconstruct must still succeed via elimination.
	s := c.NewStripe(8)
	s.Fill(77)
	c.Encode(s)
	want := s.Clone()
	for _, f := range []int{0, 1} {
		for r := 0; r < 2; r++ {
			e := s.Elem(r, f)
			for i := range e {
				e[i] = 0xEE
			}
		}
	}
	if err := c.Reconstruct(s, 0, 1); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(want) {
		t.Fatal("gaussian reconstruction produced wrong data")
	}
}

func TestVerifyMDSOnMini(t *testing.T) {
	// xorPair's four equation vectors have full rank, so every single and
	// double column erasure is solvable and VerifyMDS must pass.
	if err := VerifyMDS(xorPair(t), 8); err != nil {
		t.Fatalf("VerifyMDS(xorPair) = %v", err)
	}
	// A code that is NOT 2-fault tolerant must be reported.
	weak, err := New("weak", 2, 1, 3, []Group{
		{Parity: Coord{0, 2}, Members: []Coord{{0, 0}, {0, 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if VerifyMDS(weak, 8) == nil {
		t.Fatal("VerifyMDS passed a single-fault-tolerant code")
	}
}

func TestVerifyMDSDefaultElemSize(t *testing.T) {
	if err := VerifyMDS(xorPair(t), 0); err != nil {
		t.Fatalf("VerifyMDS with elemSize 0 (default) = %v", err)
	}
}

func TestSymbolicDecodeChain(t *testing.T) {
	c := xorPair(t)
	xors, chain, err := c.SymbolicDecode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain length = %d, want 2", len(chain))
	}
	// Recovering one element from a 3-cell equation costs 1 XOR.
	if xors != 2 {
		t.Fatalf("xors = %d, want 2", xors)
	}
	if _, _, err := c.SymbolicDecode(-1); err == nil {
		t.Fatal("SymbolicDecode accepted a bad column")
	}
}

func TestUpdateData(t *testing.T) {
	c := xorPair(t)
	s := c.NewStripe(8)
	s.Fill(9)
	c.Encode(s)
	newVal := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	c.UpdateData(s, 0, 0, newVal)
	if !c.Verify(s) {
		t.Fatal("UpdateData left the stripe inconsistent")
	}
	got := s.Elem(0, 0)
	for i := range newVal {
		if got[i] != newVal[i] {
			t.Fatal("UpdateData did not store the new value")
		}
	}
}

func TestUpdateDataOnParityPanics(t *testing.T) {
	c := xorPair(t)
	s := c.NewStripe(8)
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateData on parity cell did not panic")
		}
	}()
	c.UpdateData(s, 0, 2, make([]byte, 8))
}

// Property: for a random stripe, encode → corrupt any ≤2 columns →
// reconstruct recovers the original exactly.
func TestReconstructQuick(t *testing.T) {
	c := xorPair(t)
	f := func(seed uint64, a, b uint8) bool {
		f1 := int(a) % c.Cols()
		f2 := int(b) % c.Cols()
		s := c.NewStripe(8)
		s.Fill(seed)
		c.Encode(s)
		want := s.Clone()
		failed := []int{f1}
		if f2 != f1 {
			failed = append(failed, f2)
		}
		for _, col := range failed {
			for r := 0; r < c.Rows(); r++ {
				e := s.Elem(r, col)
				for i := range e {
					e[i] = 0xBA
				}
			}
		}
		if err := c.Reconstruct(s, failed...); err != nil {
			return false
		}
		return s.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
