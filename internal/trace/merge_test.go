package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// threeNodeDumps builds the canonical distributed shape: a loadgen client op,
// the array server's serve span rooted under it via (Trace, Remote), and a
// column server's serve span rooted under the array's device span — one trace
// chaining three nodes. Span IDs deliberately collide across nodes to prove
// linking keys on (Trace, Remote), not on IDs alone.
func threeNodeDumps() []NodeDump {
	const tid = 0xABCD
	return []NodeDump{
		{Node: "loadgen", TimeNs: 1_000_000, Spans: []Span{
			{ID: 1, Trace: tid, Op: OpRead, Disk: -1, Stripe: -1, Start: 1000, Dur: 900},
		}},
		{Node: "array", TimeNs: 2_000_000, OffsetNs: 500, Spans: []Span{
			{ID: 1, Trace: tid, Remote: 1, Op: OpServeRead, Disk: -1, Stripe: -1, Client: 1, Start: 1600, Dur: 700},
			{ID: 2, Trace: tid, Parent: 1, Op: OpDevRead, Disk: 3, Stripe: 0, Start: 1700, Dur: 500},
		}},
		{Node: "col3", TimeNs: 3_000_000, OffsetNs: -250, Spans: []Span{
			{ID: 1, Trace: tid, Remote: 2, Op: OpServeRead, Disk: -1, Stripe: -1, Client: 1, Start: 1550, Dur: 400},
		}},
	}
}

func TestMaxLinkedNodes(t *testing.T) {
	nodes := threeNodeDumps()
	maxNodes, links := MaxLinkedNodes(nodes)
	if maxNodes != 3 {
		t.Errorf("maxNodes = %d, want 3", maxNodes)
	}
	// loadgen→array and array→col3 are the real links; the deliberate ID
	// collision also matches array's Remote=1 against col3's span 1, a
	// false positive the (Trace, Remote) scheme accepts — links is a
	// diagnostic tally, maxNodes is what CI gates on.
	if links != 3 {
		t.Errorf("links = %d, want 3", links)
	}

	// Breaking the trace ID on the column node must drop it from the chain.
	nodes[2].Spans[0].Trace = 0xEEEE
	maxNodes, links = MaxLinkedNodes(nodes)
	if maxNodes != 2 || links != 1 {
		t.Errorf("after trace break: maxNodes = %d links = %d, want 2, 1", maxNodes, links)
	}
}

func TestMaxLinkedNodesNoLinks(t *testing.T) {
	// Same span IDs, same ops, but no Remote fields and distinct traces:
	// nothing may link. The zero trace ID is never a link either.
	nodes := []NodeDump{
		{Node: "a", Spans: []Span{{ID: 1, Trace: 1, Op: OpRead}}},
		{Node: "b", Spans: []Span{{ID: 1, Trace: 2, Op: OpServeRead}, {ID: 2, Remote: 1, Op: OpServeRead}}},
	}
	if maxNodes, links := MaxLinkedNodes(nodes); maxNodes != 0 || links != 0 {
		t.Errorf("maxNodes = %d links = %d, want 0, 0", maxNodes, links)
	}
}

func TestWriteChromeNodes(t *testing.T) {
	nodes := threeNodeDumps()
	var buf bytes.Buffer
	if err := WriteChromeNodes(&buf, nodes); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}

	procs := map[float64]string{}
	var spanEvents []map[string]any
	for _, e := range events {
		if e["ph"] == "M" && e["name"] == "process_name" {
			procs[e["pid"].(float64)] = e["args"].(map[string]any)["name"].(string)
		}
		if e["ph"] == "X" {
			spanEvents = append(spanEvents, e)
		}
	}
	if len(procs) != 3 {
		t.Fatalf("got %d process tracks, want 3: %v", len(procs), procs)
	}
	for pid, want := range map[float64]string{1: "loadgen", 2: "array", 3: "col3"} {
		if procs[pid] != want {
			t.Errorf("pid %v named %q, want %q", pid, procs[pid], want)
		}
	}
	if len(spanEvents) != 4 {
		t.Fatalf("got %d span events, want 4", len(spanEvents))
	}

	// Clock correction: every start is shifted by -OffsetNs, then rebased so
	// the earliest corrected span sits at ts 0. Corrected starts (ns):
	// loadgen 1000, array 1100 and 1200, col3 1800 → base 1000.
	wantTs := map[string]float64{"loadgen": 0, "col3": 0.8}
	for _, e := range spanEvents {
		node := procs[e["pid"].(float64)]
		if want, ok := wantTs[node]; ok {
			if ts := e["ts"].(float64); ts != want {
				t.Errorf("%s span ts = %v µs, want %v", node, ts, want)
			}
		}
	}
}

func TestWriteChromeNodesEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeNodes(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty merge is not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("empty merge produced %d events", len(events))
	}
}

// TestBeginClientWireLink pins the cross-process rooting contract: a serve
// span opened from a wire link adopts the trace ID, records the remote span
// under Remote, and keeps Parent 0 (the parent lives in another process).
func TestBeginClientWireLink(t *testing.T) {
	tr := New(16, 4)
	tr.Enable()
	wire := Link{Trace: 0xF00D, Span: 77}
	tc := tr.BeginClient(OpServeWrite, 3, wire)
	if got := tc.Link().Trace; got != wire.Trace {
		t.Fatalf("serve span trace = %#x, want %#x", got, wire.Trace)
	}
	child := tr.Begin(OpDevWrite, 0, 0, tc.Link())
	tr.End(child, 64, false)
	tr.End(tc, 64, false)
	tr.Disable()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var serve, dev Span
	for _, sp := range spans {
		switch sp.Op {
		case OpServeWrite:
			serve = sp
		case OpDevWrite:
			dev = sp
		}
	}
	if serve.Trace != wire.Trace || serve.Remote != wire.Span || serve.Parent != 0 {
		t.Errorf("serve span = %+v, want Trace %#x Remote 77 Parent 0", serve, wire.Trace)
	}
	if serve.Client != 3 {
		t.Errorf("serve span client = %d, want 3", serve.Client)
	}
	if dev.Trace != wire.Trace || dev.Parent != serve.ID {
		t.Errorf("dev span = %+v, want Trace %#x Parent %d", dev, wire.Trace, serve.ID)
	}

	// An unstamped request (zero wire link) roots a fresh trace.
	tr.Enable()
	tc = tr.BeginClient(OpServeRead, 1, Link{})
	if tc.Link().Trace == 0 {
		t.Fatal("unstamped serve span did not root a new trace")
	}
	tr.End(tc, 0, false)
}
