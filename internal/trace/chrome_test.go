package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChrome(t *testing.T) {
	spans := []Span{
		{ID: 1, Op: OpRead, Disk: -1, Stripe: -1, Bytes: 4096, Start: 1_000_500, Dur: 3000},
		{ID: 2, Parent: 1, Op: OpReadStripe, Disk: -1, Stripe: 3, Bytes: 4096, Start: 1_001_000, Dur: 2000},
		{ID: 3, Parent: 2, Op: OpDevRead, Disk: 2, Stripe: 3, Bytes: 2048, Start: 1_001_500, Dur: 1000, Err: true},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	// 3 track-name metadata events (ops, stripes, disks 0-2 would need
	// maxDisk tracks: disks 0..2 → 3 names) + 3 span events.
	var meta, complete []map[string]any
	for _, e := range events {
		switch e["ph"] {
		case "M":
			meta = append(meta, e)
		case "X":
			complete = append(complete, e)
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if len(meta) != 5 { // "array ops", "stripe ops", "disk 0".."disk 2"
		t.Errorf("got %d metadata events, want 5", len(meta))
	}
	if len(complete) != 3 {
		t.Fatalf("got %d complete events, want 3", len(complete))
	}
	// Metadata sorts first; spans rebase to the earliest Start and convert to µs.
	if events[0]["ph"] != "M" {
		t.Error("metadata events must sort first")
	}
	first := complete[0]
	if first["name"] != "read" || first["ts"] != 0.0 || first["dur"] != 3.0 {
		t.Errorf("first span event %v, want read at ts=0 dur=3µs", first)
	}
	last := complete[2]
	if last["name"] != "dev_read" || last["tid"] != float64(chromeTidDisks+2) {
		t.Errorf("device span event %v, want dev_read on disk-2 track", last)
	}
	args := last["args"].(map[string]any)
	if args["parent"] != 2.0 || args["disk"] != 2.0 || args["err"] != true {
		t.Errorf("device span args %v", args)
	}
}

func TestWriteChromeServeTrack(t *testing.T) {
	spans := []Span{
		{ID: 1, Op: OpServeRead, Disk: -1, Stripe: -1, Client: 7, Bytes: 512, Start: 100, Dur: 50},
		{ID: 2, Op: OpRead, Disk: -1, Stripe: -1, Start: 120, Dur: 20},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	var serveNamed bool
	for _, e := range events {
		if e["ph"] == "M" && e["tid"] == float64(chromeTidServe) {
			serveNamed = true
		}
		if e["ph"] == "X" && e["name"] == "serve_read" {
			if e["tid"] != float64(chromeTidServe) {
				t.Errorf("serve span on tid %v, want %d", e["tid"], chromeTidServe)
			}
			if args := e["args"].(map[string]any); args["client"] != 7.0 {
				t.Errorf("serve span args %v, want client=7", args)
			}
		}
	}
	if !serveNamed {
		t.Error("serve track not named despite serve spans present")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 { // just the ops + stripes track names
		t.Errorf("got %d events for an empty span set, want 2 track names", len(events))
	}
}
