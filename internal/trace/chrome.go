package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the span dump loads directly into
// chrome://tracing / Perfetto ("trace event format", JSON array flavor).
// Spans become complete ("X") events with microsecond timestamps. Tracks
// (tid) separate the three levels of the engine: logical operations,
// per-stripe work, and one track per disk for device I/O, so the per-disk
// load skew the paper's LF metric quantifies is directly visible on the
// timeline.

const (
	chromeTidOps     = 0
	chromeTidStripes = 1
	chromeTidServe   = 2  // network block-server request spans
	chromeTidDisks   = 10 // disk d renders on tid 10+d
)

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func chromeTid(sp Span) int {
	switch sp.Op {
	case OpDevRead, OpDevWrite:
		if sp.Disk >= 0 {
			return chromeTidDisks + int(sp.Disk)
		}
		return chromeTidDisks
	case OpRead, OpWrite, OpRebuild, OpScrub:
		return chromeTidOps
	case OpServeRead, OpServeWrite, OpServeFlush, OpServeStatus, OpServeRebuild:
		return chromeTidServe
	default:
		return chromeTidStripes
	}
}

// WriteChrome writes spans as a Chrome trace-event JSON array. Timestamps
// are rebased to the earliest span so the viewer opens at t≈0.
func WriteChrome(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans)+16)

	// Name the tracks so the viewer is self-describing.
	maxDisk := int32(-1)
	hasServe := false
	for _, sp := range spans {
		if (sp.Op == OpDevRead || sp.Op == OpDevWrite) && sp.Disk > maxDisk {
			maxDisk = sp.Disk
		}
		if chromeTid(sp) == chromeTidServe {
			hasServe = true
		}
	}
	nameTrack := func(tid int, name string) {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	nameTrack(chromeTidOps, "array ops")
	nameTrack(chromeTidStripes, "stripe ops")
	// The serve track only appears in traces that carry server spans, so
	// library-only traces render exactly as before.
	if hasServe {
		nameTrack(chromeTidServe, "served requests")
	}
	for d := int32(0); d <= maxDisk; d++ {
		nameTrack(chromeTidDisks+int(d), fmt.Sprintf("disk %d", d))
	}

	var base int64
	for i, sp := range spans {
		if i == 0 || sp.Start < base {
			base = sp.Start
		}
	}
	for _, sp := range spans {
		events = append(events, chromeEvent{
			Name: sp.Op.String(),
			Cat:  "raid",
			Ph:   "X",
			Ts:   float64(sp.Start-base) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			Pid:  1,
			Tid:  chromeTid(sp),
			Args: chromeArgs(sp),
		})
	}
	// Stable order keeps the output deterministic for tests and diffs.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ph != events[j].Ph {
			return events[i].Ph == "M"
		}
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].Tid < events[j].Tid
	})
	return writeChromeEvents(w, events)
}

// chromeArgs builds one span's args map, shared by the single-node and
// multi-node exporters. Trace and remote IDs render as hex so they can be
// eyeballed against raidctl events output.
func chromeArgs(sp Span) map[string]any {
	args := map[string]any{"id": sp.ID, "bytes": sp.Bytes}
	if sp.Parent != 0 {
		args["parent"] = sp.Parent
	}
	if sp.Trace != 0 {
		args["trace"] = fmt.Sprintf("%016x", sp.Trace)
	}
	if sp.Remote != 0 {
		args["remote"] = sp.Remote
	}
	if sp.Stripe >= 0 {
		args["stripe"] = sp.Stripe
	}
	if sp.Disk >= 0 {
		args["disk"] = sp.Disk
	}
	if sp.Client > 0 {
		args["client"] = sp.Client
	}
	if sp.Err {
		args["err"] = true
	}
	return args
}

func writeChromeEvents(w io.Writer, events []chromeEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
