// Package trace is the low-overhead structured tracing subsystem of the RAID
// engine. Every logical array operation (ReadAt, WriteAt, Rebuild, Scrub)
// opens a span; child spans cover per-stripe work and the coalesced device
// I/O under it. Completed spans land in a fixed-size lock-free ring buffer
// that a reader drains without stopping writers, and spans slower than a
// configurable threshold are additionally captured in a separate slow-op
// ring so rare outliers survive the churn of the main ring.
//
// The design targets the data path's constraints:
//
//   - Disabled tracing costs one atomic load per instrumentation point and
//     allocates nothing — the engine's steady-state 0 allocs/op holds with a
//     tracer attached (pinned by test).
//   - Enabled tracing is lock-free: recording a span is a ticket fetch plus
//     a fixed number of atomic stores into a seqlock-published slot. Writers
//     never wait for readers or for each other.
//   - Draining is best-effort: a reader validates each slot's sequence word
//     before and after copying it and skips slots a writer touched in
//     between, so a full ring wrap during a drain loses spans rather than
//     blocking the engine.
package trace

import (
	"sync/atomic"
	"time"
)

// Op identifies what a span measures.
type Op uint8

// Span kinds, from whole logical operations down to device accesses.
const (
	OpNone Op = iota
	OpRead
	OpWrite
	OpRebuild
	OpScrub
	OpReadStripe
	OpWriteStripe
	OpDegradedRead
	OpRebuildStripe
	OpScrubStripe
	OpDevRead
	OpDevWrite
	OpServeRead
	OpServeWrite
	OpServeFlush
	OpServeStatus
	OpServeRebuild
)

var opNames = [...]string{
	OpNone:          "none",
	OpRead:          "read",
	OpWrite:         "write",
	OpRebuild:       "rebuild",
	OpScrub:         "scrub",
	OpReadStripe:    "read_stripe",
	OpWriteStripe:   "write_stripe",
	OpDegradedRead:  "degraded_read",
	OpRebuildStripe: "rebuild_stripe",
	OpScrubStripe:   "scrub_stripe",
	OpDevRead:       "dev_read",
	OpDevWrite:      "dev_write",
	OpServeRead:     "serve_read",
	OpServeWrite:    "serve_write",
	OpServeFlush:    "serve_flush",
	OpServeStatus:   "serve_status",
	OpServeRebuild:  "serve_rebuild",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// Link is a span's cross-process identity: the trace ID shared by every span
// of one logical operation (end to end, across nodes) plus the span's own ID.
// It is what travels on the wire in a blockserve trace extension and what
// child spans use to attach to their parent. The zero Link means "no parent,
// start a new trace".
//
// Span IDs are per-tracer tickets, so they are only unique within one node;
// cross-node linking therefore always pairs the trace ID with the span ID
// (see Span.Remote).
type Link struct {
	Trace uint64 `json:"trace"`
	Span  uint64 `json:"span"`
}

// Span is one completed, timed unit of work. Disk and Stripe are -1 when the
// span is not bound to a single column or stripe (e.g. a whole ReadAt).
// Client is 0 unless the span was opened by the network block server on
// behalf of a connected client (client IDs start at 1). Trace is the
// end-to-end trace ID; Remote is the span ID of a parent that lives in
// another process (set only on wire-rooted serve spans, whose local Parent
// is 0 — the merger matches (Trace, Remote) against the client node's
// (Trace, ID) pairs).
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Trace  uint64 `json:"trace,omitempty"`
	Remote uint64 `json:"remote,omitempty"`
	Op     Op     `json:"op"`
	Disk   int32  `json:"disk"`
	Stripe int64  `json:"stripe"`
	Client int32  `json:"client,omitempty"`
	Bytes  int64  `json:"bytes"`
	Start  int64  `json:"start_ns"` // unix nanoseconds
	Dur    int64  `json:"dur_ns"`
	Err    bool   `json:"err,omitempty"`
}

// Ctx is the in-flight half of a span, created by Begin and consumed by End.
// It is a plain value — passing it through the data path allocates nothing.
// The zero Ctx is inert: End on it is a no-op, and using it as a parent
// yields parent ID 0 (no parent).
type Ctx struct {
	id     uint64
	parent uint64
	trace  uint64
	remote uint64
	start  int64
	stripe int64
	disk   int32
	client int32
	op     Op
	ok     bool
}

// ID returns the span ID for parenting child spans; 0 when inert.
func (c Ctx) ID() uint64 {
	if !c.ok {
		return 0
	}
	return c.id
}

// Link returns the span's cross-process identity for parenting child spans,
// locally or across the wire; the zero Link when inert.
func (c Ctx) Link() Link {
	if !c.ok {
		return Link{}
	}
	return Link{Trace: c.trace, Span: c.id}
}

// Active reports whether the Ctx records into a tracer.
func (c Ctx) Active() bool { return c.ok }

// Tracer owns the span rings. The zero value — and the shared Nop — is a
// permanently disabled tracer: Begin returns an inert Ctx and Enable is a
// no-op, so a data path wired to it pays only the enabled-flag load.
//
// Tracer must not be copied after first use.
type Tracer struct {
	enabled atomic.Bool
	slowNs  atomic.Int64
	seq     atomic.Uint64
	ring    *ring
	slow    *ring
}

// Nop is the shared permanently-disabled tracer the array uses when no
// tracer is attached.
var Nop = &Tracer{}

// Default ring capacities (rounded up to powers of two by New).
const (
	DefaultCapacity     = 4096
	DefaultSlowCapacity = 256
)

// New returns a disabled tracer with the given ring capacities; non-positive
// values take the defaults. Call Enable to start recording.
func New(capacity, slowCapacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if slowCapacity <= 0 {
		slowCapacity = DefaultSlowCapacity
	}
	return &Tracer{ring: newRing(capacity), slow: newRing(slowCapacity)}
}

// Enable starts recording. On a tracer without rings (the zero value, Nop)
// it is a no-op, keeping Nop inert forever.
func (t *Tracer) Enable() {
	if t.ring != nil {
		t.enabled.Store(true)
	}
}

// Disable stops recording; in-flight Ctxs created while enabled still land.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetSlowThreshold makes spans of at least d also land in the slow-op ring;
// d ≤ 0 disables slow capture.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(int64(d)) }

// SlowThreshold returns the current slow-op capture threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNs.Load()) }

// traceIDs seeds per-process trace-ID generation. Sequential counters would
// collide across nodes (every process starts at 1), so IDs are a splitmix64
// stream over a clock-seeded counter — unique enough for ring-lifetime
// observability data without coordination.
var traceIDs atomic.Uint64

func init() { traceIDs.Store(uint64(time.Now().UnixNano())) }

// newTraceID returns a non-zero pseudo-random trace ID. Lock-free and
// allocation-free: one atomic add plus splitmix64 finalization.
func newTraceID() uint64 {
	x := traceIDs.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Begin opens a span. Disabled tracers return an inert Ctx at the cost of
// one atomic load and no allocation. disk and stripe may be -1 (not bound);
// parent is the Link of the enclosing span, or the zero Link to root a new
// trace.
func (t *Tracer) Begin(op Op, disk int32, stripe int64, parent Link) Ctx {
	if !t.enabled.Load() {
		return Ctx{}
	}
	tid := parent.Trace
	if tid == 0 {
		tid = newTraceID()
	}
	return Ctx{
		id:     t.seq.Add(1),
		parent: parent.Span,
		trace:  tid,
		start:  time.Now().UnixNano(),
		stripe: stripe,
		disk:   disk,
		op:     op,
		ok:     true,
	}
}

// BeginClient opens a request span tagged with the network client it serves;
// disk and stripe are unbound (-1). wire is the trace context the request
// carried (the zero Link for an unstamped request): the span adopts its trace
// ID and records the remote parent span under Span.Remote — the local Parent
// stays 0, because the parent lives in another process.
func (t *Tracer) BeginClient(op Op, client int32, wire Link) Ctx {
	c := t.Begin(op, -1, -1, Link{Trace: wire.Trace})
	c.client = client
	c.remote = wire.Span
	return c
}

// End completes a span opened by Begin and records it. Inert Ctxs (disabled
// tracer, zero value) return immediately.
func (t *Tracer) End(c Ctx, bytes int64, failed bool) {
	if !c.ok {
		return
	}
	sp := Span{
		ID:     c.id,
		Parent: c.parent,
		Trace:  c.trace,
		Remote: c.remote,
		Op:     c.op,
		Disk:   c.disk,
		Stripe: c.stripe,
		Client: c.client,
		Bytes:  bytes,
		Start:  c.start,
		Dur:    time.Now().UnixNano() - c.start,
		Err:    failed,
	}
	t.ring.put(sp)
	if s := t.slowNs.Load(); s > 0 && sp.Dur >= s {
		t.slow.put(sp)
	}
}

// Spans returns the retained spans of the main ring, oldest first. Slots a
// concurrent writer is mid-publish on are skipped, never blocked on.
func (t *Tracer) Spans() []Span {
	if t.ring == nil {
		return nil
	}
	return t.ring.drain()
}

// SlowSpans returns the retained slow-op captures, oldest first.
func (t *Tracer) SlowSpans() []Span {
	if t.slow == nil {
		return nil
	}
	return t.slow.drain()
}

// Stats is the tracer's counter view, cheap enough for every Snapshot.
type Stats struct {
	Enabled         bool  `json:"enabled"`
	Recorded        int64 `json:"recorded"`
	Dropped         int64 `json:"dropped"` // overwritten before any drain could see them
	SlowCaptured    int64 `json:"slow_captured"`
	Capacity        int   `json:"capacity"`
	SlowCapacity    int   `json:"slow_capacity"`
	SlowThresholdNs int64 `json:"slow_threshold_ns,omitempty"`
}

// Stats returns the tracer's counters.
func (t *Tracer) Stats() Stats {
	s := Stats{Enabled: t.Enabled(), SlowThresholdNs: t.slowNs.Load()}
	if t.ring != nil {
		s.Capacity = len(t.ring.slots)
		s.Recorded = int64(t.ring.head.Load())
		if over := s.Recorded - int64(s.Capacity); over > 0 {
			s.Dropped = over
		}
	}
	if t.slow != nil {
		s.SlowCapacity = len(t.slow.slots)
		s.SlowCaptured = int64(t.slow.head.Load())
	}
	return s
}
