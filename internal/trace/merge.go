package trace

import (
	"fmt"
	"io"
	"sort"
)

// Multi-node trace merging. Each node of a distributed array — the loadgen
// client, the array-facing raidserve, and every column-serving raidserve —
// drains its own span ring; a NodeDump is one such ring plus the node's wall
// clock at dump time. raidctl fetches dumps from every node's /trace
// endpoint, estimates per-node clock offsets from request RTT midpoints, and
// merges them into a single Chrome trace with one process track per node.
// Spans from different nodes are linked by (Trace, Remote): a serve span's
// Remote field names the client-side span ID that stamped the request.

// NodeDump is one node's span dump, as served by raidserve's /trace endpoint
// and written by loadgen's -trace-out.
type NodeDump struct {
	// Node names the dump's origin (host:port or a caller-chosen label).
	Node string `json:"node"`
	// TimeNs is the node's wall clock when the dump was taken; the merger
	// compares it against the fetch-time midpoint to estimate clock offset.
	TimeNs int64 `json:"time_ns"`
	// OffsetNs is the merger's estimate of this node's clock minus the
	// observer's clock; every span start is shifted by -OffsetNs when
	// merging. Zero for dumps taken on the observer itself.
	OffsetNs int64  `json:"offset_ns,omitempty"`
	Spans    []Span `json:"spans"`
}

// WriteChromeNodes writes dumps from several nodes as one Chrome trace-event
// JSON array: one process (pid) per node, named after it, with the same
// per-node track layout WriteChrome uses. Span starts are corrected by each
// dump's OffsetNs, then all timestamps are rebased to the earliest corrected
// span so the viewer opens at t≈0.
func WriteChromeNodes(w io.Writer, nodes []NodeDump) error {
	events := make([]chromeEvent, 0, 64)
	var base int64
	haveBase := false
	for _, nd := range nodes {
		for _, sp := range nd.Spans {
			if s := sp.Start - nd.OffsetNs; !haveBase || s < base {
				base, haveBase = s, true
			}
		}
	}
	for ni, nd := range nodes {
		pid := ni + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": nd.Node},
		})
		maxDisk := int32(-1)
		hasServe := false
		for _, sp := range nd.Spans {
			if (sp.Op == OpDevRead || sp.Op == OpDevWrite) && sp.Disk > maxDisk {
				maxDisk = sp.Disk
			}
			if chromeTid(sp) == chromeTidServe {
				hasServe = true
			}
		}
		nameTrack := func(tid int, name string) {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": name},
			})
		}
		nameTrack(chromeTidOps, "array ops")
		nameTrack(chromeTidStripes, "stripe ops")
		if hasServe {
			nameTrack(chromeTidServe, "served requests")
		}
		for d := int32(0); d <= maxDisk; d++ {
			nameTrack(chromeTidDisks+int(d), fmt.Sprintf("disk %d", d))
		}
		for _, sp := range nd.Spans {
			events = append(events, chromeEvent{
				Name: sp.Op.String(),
				Cat:  "raid",
				Ph:   "X",
				Ts:   float64(sp.Start-nd.OffsetNs-base) / 1e3,
				Dur:  float64(sp.Dur) / 1e3,
				Pid:  pid,
				Tid:  chromeTid(sp),
				Args: chromeArgs(sp),
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ph != events[j].Ph {
			return events[i].Ph == "M"
		}
		if events[i].Pid != events[j].Pid {
			return events[i].Pid < events[j].Pid
		}
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].Tid < events[j].Tid
	})
	return writeChromeEvents(w, events)
}

// MaxLinkedNodes inspects the cross-node links in a set of dumps: a span on
// one node whose Remote names a span ID that exists, under the same trace ID,
// on a different node is one link. It returns the largest number of distinct
// nodes any single trace connects through such links (a client op whose
// request recursed array server → column server yields 3) and the total link
// count. CI uses it to assert the merged trace really chains across the wire.
func MaxLinkedNodes(nodes []NodeDump) (maxNodes, links int) {
	// ids[node][trace] = set of span IDs that trace has on that node.
	ids := make([]map[uint64]map[uint64]bool, len(nodes))
	for i, nd := range nodes {
		ids[i] = make(map[uint64]map[uint64]bool)
		for _, sp := range nd.Spans {
			if sp.Trace == 0 {
				continue
			}
			set := ids[i][sp.Trace]
			if set == nil {
				set = make(map[uint64]bool)
				ids[i][sp.Trace] = set
			}
			set[sp.ID] = true
		}
	}
	linked := make(map[uint64]map[int]bool) // trace -> nodes it links
	for j, nd := range nodes {
		for _, sp := range nd.Spans {
			if sp.Trace == 0 || sp.Remote == 0 {
				continue
			}
			for i := range nodes {
				if i == j || !ids[i][sp.Trace][sp.Remote] {
					continue
				}
				links++
				set := linked[sp.Trace]
				if set == nil {
					set = make(map[int]bool)
					linked[sp.Trace] = set
				}
				set[i] = true
				set[j] = true
			}
		}
	}
	for _, set := range linked {
		if len(set) > maxNodes {
			maxNodes = len(set)
		}
	}
	return maxNodes, links
}
