package trace

import (
	"reflect"
	"testing"
)

// vetGuarded mirrors the audit in internal/obs: a must-not-copy type has to
// transitively contain a sync or sync/atomic type so `go vet`'s copylocks
// check rejects by-value copies.
func vetGuarded(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Struct:
		if pkg := t.PkgPath(); pkg == "sync" || pkg == "sync/atomic" {
			return true
		}
		for i := 0; i < t.NumField(); i++ {
			if vetGuarded(t.Field(i).Type) {
				return true
			}
		}
	case reflect.Array:
		return vetGuarded(t.Elem())
	}
	return false
}

func TestTracerTypesAreCopylocksVisible(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Tracer{}),
		reflect.TypeOf(ring{}),
		reflect.TypeOf(slot{}),
	} {
		if !vetGuarded(typ) {
			t.Errorf("%s is documented as must-not-copy but carries no vet-visible lock guard", typ)
		}
	}
	// Ctx and Span are deliberately plain values — they must stay copyable.
	for _, typ := range []reflect.Type{reflect.TypeOf(Ctx{}), reflect.TypeOf(Span{})} {
		if vetGuarded(typ) {
			t.Errorf("%s must stay freely copyable but contains a lock-guarded field", typ)
		}
	}
}
