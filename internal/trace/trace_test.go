package trace

import (
	"sync"
	"testing"
	"time"
)

func TestBeginEndRecords(t *testing.T) {
	tr := New(16, 16)
	tr.Enable()
	c := tr.Begin(OpRead, -1, -1, Link{})
	if !c.Active() || c.ID() == 0 {
		t.Fatalf("enabled Begin returned inert Ctx %+v", c)
	}
	child := tr.Begin(OpDevRead, 3, 7, c.Link())
	tr.End(child, 512, false)
	tr.End(c, 4096, true)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	dev, op := spans[0], spans[1]
	if dev.Op != OpDevRead || dev.Disk != 3 || dev.Stripe != 7 || dev.Bytes != 512 || dev.Err {
		t.Errorf("device span %+v", dev)
	}
	if dev.Parent != op.ID {
		t.Errorf("device span parent %d, want op span id %d", dev.Parent, op.ID)
	}
	if op.Op != OpRead || op.Disk != -1 || op.Stripe != -1 || op.Bytes != 4096 || !op.Err {
		t.Errorf("op span %+v", op)
	}
	if op.Start == 0 || op.Dur < 0 {
		t.Errorf("op span timing %+v", op)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(8, 8)
	tr.Enable()
	for i := 0; i < 20; i++ {
		tr.End(tr.Begin(OpDevWrite, int32(i), int64(i), Link{}), 0, false)
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("got %d spans from a capacity-8 ring, want 8", len(spans))
	}
	for i, sp := range spans {
		if want := int64(12 + i); sp.Stripe != want {
			t.Errorf("span %d has stripe %d, want %d (newest retained, oldest first)", i, sp.Stripe, want)
		}
	}
	st := tr.Stats()
	if st.Recorded != 20 || st.Dropped != 12 || st.Capacity != 8 {
		t.Errorf("stats %+v, want 20 recorded / 12 dropped / capacity 8", st)
	}
}

func TestDisabledAndNopAreInert(t *testing.T) {
	tr := New(16, 16) // not enabled
	if c := tr.Begin(OpRead, 0, 0, Link{}); c.Active() || c.ID() != 0 {
		t.Errorf("disabled Begin returned active Ctx %+v", c)
	}
	tr.End(Ctx{}, 0, false) // must not panic or record
	if spans := tr.Spans(); len(spans) != 0 {
		t.Errorf("disabled tracer recorded %d spans", len(spans))
	}

	Nop.Enable() // must stay inert: no rings to record into
	if Nop.Enabled() {
		t.Error("Nop became enabled")
	}
	if c := Nop.Begin(OpRead, 0, 0, Link{}); c.Active() {
		t.Error("Nop Begin returned active Ctx")
	}
	if spans := Nop.Spans(); spans != nil {
		t.Errorf("Nop drained %d spans", len(spans))
	}
}

func TestDisabledPathAllocatesNothing(t *testing.T) {
	tr := New(16, 16)
	for name, tracer := range map[string]*Tracer{"disabled": tr, "nop": Nop} {
		allocs := testing.AllocsPerRun(100, func() {
			c := tracer.Begin(OpRead, -1, -1, Link{})
			tracer.End(c, 0, false)
		})
		if allocs != 0 {
			t.Errorf("%s tracer Begin/End allocates %.1f per op, want 0", name, allocs)
		}
	}
}

func TestSlowCapture(t *testing.T) {
	tr := New(64, 8)
	tr.Enable()

	// No threshold: nothing lands in the slow ring.
	tr.End(tr.Begin(OpRead, -1, -1, Link{}), 0, false)
	if got := tr.SlowSpans(); len(got) != 0 {
		t.Fatalf("captured %d slow spans with no threshold", len(got))
	}

	tr.SetSlowThreshold(time.Nanosecond)
	if tr.SlowThreshold() != time.Nanosecond {
		t.Fatalf("threshold %v", tr.SlowThreshold())
	}
	c := tr.Begin(OpScrub, -1, 5, Link{})
	time.Sleep(time.Millisecond) // guarantees Dur ≥ 1ns on any clock
	tr.End(c, 0, false)
	slow := tr.SlowSpans()
	if len(slow) != 1 || slow[0].Op != OpScrub || slow[0].Stripe != 5 {
		t.Fatalf("slow spans %+v, want the scrub span", slow)
	}
	if st := tr.Stats(); st.SlowCaptured != 1 || st.SlowThresholdNs != 1 {
		t.Errorf("stats %+v", st)
	}
}

// TestConcurrentPutDrain is the race-detector stress: writers record while a
// reader drains. Correctness bar: no panic, no torn span (every drained span
// must carry a plausible ticket-issued ID), and the drain never blocks.
func TestConcurrentPutDrain(t *testing.T) {
	tr := New(64, 16)
	tr.Enable()
	tr.SetSlowThreshold(time.Nanosecond)
	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c := tr.Begin(OpDevRead, int32(w), int64(i), Link{})
				tr.End(c, int64(i), i%97 == 0)
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()
	for draining := true; draining; {
		select {
		case <-done:
			draining = false
		default:
		}
		for _, sp := range tr.Spans() {
			if sp.ID == 0 {
				t.Fatal("drained span with zero ID")
			}
		}
		tr.SlowSpans()
	}
	if st := tr.Stats(); st.Recorded != writers*perWriter {
		t.Errorf("recorded %d, want %d", st.Recorded, writers*perWriter)
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpDevWrite.String() != "dev_write" || Op(200).String() != "unknown" {
		t.Errorf("op names: %q %q %q", OpRead, OpDevWrite, Op(200))
	}
}
