package trace

import "sync/atomic"

// ring is the lock-free span ring buffer. Capacity is a power of two; a
// writer claims a monotonically increasing ticket and overwrites the slot
// ticket&mask, so the ring always retains the newest spans.
//
// Publication is a per-slot seqlock built entirely from atomics (the race
// detector sees no unsynchronized access): the writer stores an odd sequence
// word, stores the span fields, then stores the even word (ticket+1)<<1.
// A reader accepts a slot only when the sequence word is even, unchanged
// across the copy, and encodes the ticket the reader expected — a slot
// overwritten mid-drain fails one of those checks and is skipped. The one
// undetectable interleaving is two writers a full ring apart racing the same
// slot field-by-field, which can blend two spans into one record; that needs
// a complete ring wrap within nanoseconds and, being observability data, is
// accepted rather than paid for with a lock.
type ring struct {
	mask  uint64
	head  atomic.Uint64 // tickets issued = spans ever recorded
	slots []slot
}

// slot holds one span with every field atomic so concurrent put/drain are
// data-race-free by construction. op, disk and err pack into meta.
type slot struct {
	seq    atomic.Uint64 // 0 empty; odd: writing; even: (ticket+1)<<1
	id     atomic.Uint64
	parent atomic.Uint64
	trace  atomic.Uint64
	remote atomic.Uint64
	meta   atomic.Uint64
	client atomic.Uint32
	stripe atomic.Int64
	bytes  atomic.Int64
	start  atomic.Int64
	dur    atomic.Int64
}

func packMeta(op Op, disk int32, err bool) uint64 {
	m := uint64(op) | uint64(uint32(disk))<<8
	if err {
		m |= 1 << 40
	}
	return m
}

func unpackMeta(m uint64) (op Op, disk int32, err bool) {
	return Op(m & 0xff), int32(uint32(m >> 8)), m&(1<<40) != 0
}

func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

func (r *ring) put(sp Span) {
	ticket := r.head.Add(1) - 1
	s := &r.slots[ticket&r.mask]
	s.seq.Store(ticket<<1 | 1)
	s.id.Store(sp.ID)
	s.parent.Store(sp.Parent)
	s.trace.Store(sp.Trace)
	s.remote.Store(sp.Remote)
	s.meta.Store(packMeta(sp.Op, sp.Disk, sp.Err))
	s.client.Store(uint32(sp.Client))
	s.stripe.Store(sp.Stripe)
	s.bytes.Store(sp.Bytes)
	s.start.Store(sp.Start)
	s.dur.Store(sp.Dur)
	s.seq.Store((ticket + 1) << 1)
}

// drain copies out the retained spans, oldest ticket first, skipping slots
// that are empty, mid-write, or overwritten while being copied.
func (r *ring) drain() []Span {
	head := r.head.Load()
	n := uint64(len(r.slots))
	if head < n {
		n = head
	}
	out := make([]Span, 0, n)
	for ticket := head - n; ticket < head; ticket++ {
		s := &r.slots[ticket&r.mask]
		want := (ticket + 1) << 1
		if s.seq.Load() != want {
			continue // empty, mid-write, or already lapped
		}
		sp := Span{
			ID:     s.id.Load(),
			Parent: s.parent.Load(),
			Trace:  s.trace.Load(),
			Remote: s.remote.Load(),
			Client: int32(s.client.Load()),
			Stripe: s.stripe.Load(),
			Bytes:  s.bytes.Load(),
			Start:  s.start.Load(),
			Dur:    s.dur.Load(),
		}
		sp.Op, sp.Disk, sp.Err = unpackMeta(s.meta.Load())
		if s.seq.Load() != want {
			continue // a writer lapped us mid-copy
		}
		out = append(out, sp)
	}
	return out
}
