package blaumroth

import (
	"testing"

	"dcode/internal/erasure"
)

func TestNewRejectsBadParameters(t *testing.T) {
	for _, kp := range [][2]int{{1, 5}, {5, 5}, {5, 6}, {7, 7}, {3, 4}} {
		if _, err := New(kp[0], kp[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", kp[0], kp[1])
		}
	}
}

func TestGeometry(t *testing.T) {
	c, err := New(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 6 || c.Cols() != 6 {
		t.Fatalf("geometry %d×%d, want 6×6 (w = p-1 rows, k+2 cols)", c.Rows(), c.Cols())
	}
	if c.DataElems() != 4*6 {
		t.Fatalf("data packets = %d, want 24", c.DataElems())
	}
	if c.DataColumns() != 4 {
		t.Fatalf("DataColumns = %d", c.DataColumns())
	}
}

// Disk 0's Q coefficient is x^0 = 1: identity pattern.
func TestX0IsIdentity(t *testing.T) {
	c, err := New(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		g := c.Groups()[c.ParityGroup(j, 4)]
		count := 0
		for _, m := range g.Members {
			if m.Col == 0 {
				count++
				if m.Row != j {
					t.Fatalf("x^0 not identity at packet %d", j)
				}
			}
		}
		if count != 1 {
			t.Fatalf("disk-0 column weight %d at packet %d", count, j)
		}
	}
}

// The ring powers must satisfy x^(p-1) = 1 + x + ... + x^(p-2) and
// x^p = x^0 (order p in the quotient by M_p | x^p - 1... x^p ≡ 1).
func TestRingPowers(t *testing.T) {
	p := 7
	w := p - 1
	pw := xPowers(w, p)
	for j := 0; j < w; j++ {
		if !pw[p-1][j] {
			t.Fatalf("x^(p-1) coefficient %d not 1 (all-ones reduction)", j)
		}
	}
	for j := 0; j < w; j++ {
		want := j == 0
		if pw[p][j] != want {
			t.Fatalf("x^p != 1 at coefficient %d", j)
		}
	}
}

func TestMDS(t *testing.T) {
	cases := [][2]int{{2, 5}, {4, 5}, {4, 7}, {6, 7}, {10, 11}, {12, 13}}
	if testing.Short() {
		cases = [][2]int{{4, 5}, {6, 7}}
	}
	for _, kp := range cases {
		c, err := New(kp[0], kp[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := erasure.VerifyMDS(c, 8); err != nil {
			t.Fatalf("k=%d p=%d: %v", kp[0], kp[1], err)
		}
	}
}

// Blaum-Roth is denser than Liberation but still near the minimum: the Q
// matrices average just above w ones per column for small i.
func TestEncodeDensityReasonable(t *testing.T) {
	c, err := NewFull(13)
	if err != nil {
		t.Fatal(err)
	}
	m := c.ComputeMetrics()
	if m.EncodeXORPerData >= 3 || m.EncodeXORPerData <= 1.5 {
		t.Fatalf("encode XOR/data = %v, outside the plausible band", m.EncodeXORPerData)
	}
}
