// Package blaumroth implements the Blaum-Roth RAID-6 codes (IEEE Trans. IT
// 1999), the lowest-density MDS array-code family the D-Code paper's related
// work cites alongside Liberation.
//
// A Blaum-Roth code works over the ring R_p = GF(2)[x]/M_p(x) with
// M_p(x) = 1 + x + ... + x^(p-1) for a prime p: each disk element is a ring
// element of w = p-1 packet rows. Data disks 0..k-1 (k ≤ p-1) carry
// coefficients 1, x, x², ... in the Q parity:
//
//	P = Σ D_i            (packet-wise XOR)
//	Q = Σ x^i · D_i      (multiplication in R_p)
//
// Multiplication by x^i is a w×w bit matrix, so the whole code is XOR-only
// and maps onto the generic erasure engine with w rows and k+2 columns, the
// same way Liberation does.
package blaumroth

import (
	"fmt"

	"dcode/internal/erasure"
)

// Name is the code's display name.
const Name = "Blaum-Roth"

// New constructs a Blaum-Roth code with k data disks over the ring R_p;
// p must be prime and k ≤ p-1.
func New(k, p int) (*erasure.Code, error) {
	if k < 2 {
		return nil, fmt.Errorf("blaumroth: need at least 2 data disks, got %d", k)
	}
	if !erasure.IsPrime(p) || k > p-1 {
		return nil, fmt.Errorf("blaumroth: p = %d must be prime with k = %d ≤ p-1", p, k)
	}
	w := p - 1
	cols := k + 2
	groups := make([]erasure.Group, 0, 2*w)

	// P parity: packet-wise XOR.
	for j := 0; j < w; j++ {
		row := make([]erasure.Coord, 0, k)
		for i := 0; i < k; i++ {
			row = append(row, erasure.Coord{Row: j, Col: i})
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindHorizontal,
			Parity:  erasure.Coord{Row: j, Col: k},
			Members: row,
		})
	}

	// Q parity: packet j covers data packet (s, i) when coefficient j of
	// x^(i+s) mod M_p(x) is set. Precompute x^t for t = 0..(k-1)+(w-1).
	powers := xPowers(w, k+w-1)
	for j := 0; j < w; j++ {
		var members []erasure.Coord
		for i := 0; i < k; i++ {
			for s := 0; s < w; s++ {
				if powers[i+s][j] {
					members = append(members, erasure.Coord{Row: s, Col: i})
				}
			}
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindDiagonal,
			Parity:  erasure.Coord{Row: j, Col: k + 1},
			Members: members,
		})
	}
	return erasure.New(Name, p, w, cols, groups)
}

// NewFull constructs the maximal-width configuration: p-1 data disks.
func NewFull(p int) (*erasure.Code, error) { return New(p-1, p) }

// xPowers returns the coefficient vectors of x^0 .. x^max in
// GF(2)[x]/M_p(x) with basis x^0..x^(w-1): multiplying by x shifts the
// coefficients up and reduces x^(p-1) to 1 + x + ... + x^(p-2).
func xPowers(w, max int) [][]bool {
	out := make([][]bool, max+1)
	cur := make([]bool, w)
	cur[0] = true
	out[0] = append([]bool(nil), cur...)
	for t := 1; t <= max; t++ {
		next := make([]bool, w)
		carry := cur[w-1]
		next[0] = carry
		for j := 1; j < w; j++ {
			next[j] = cur[j-1] != carry
		}
		cur = next
		out[t] = append([]bool(nil), cur...)
	}
	return out
}
