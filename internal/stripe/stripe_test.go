package stripe

import (
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	s := New(4, 6, 16)
	if s.Rows() != 4 || s.Cols() != 6 || s.ElemSize() != 16 {
		t.Fatalf("geometry = %d×%d×%d, want 4×6×16", s.Rows(), s.Cols(), s.ElemSize())
	}
	if len(s.Bytes()) != 4*6*16 {
		t.Fatalf("buffer length = %d, want %d", len(s.Bytes()), 4*6*16)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", dims)
				}
			}()
			New(dims[0], dims[1], dims[2])
		}()
	}
}

func TestElemAliasesStorage(t *testing.T) {
	s := New(3, 3, 4)
	e := s.Elem(1, 2)
	e[0] = 0xAB
	if s.Elem(1, 2)[0] != 0xAB {
		t.Fatal("write through Elem slice not visible on re-read")
	}
	// Elements must not overlap.
	s.Elem(1, 1)[3] = 0xCD
	if s.Elem(1, 2)[0] != 0xAB {
		t.Fatal("neighbouring element write clobbered (1,2)")
	}
}

func TestElemDistinctOffsets(t *testing.T) {
	s := New(5, 7, 8)
	seen := make(map[int]bool)
	for r := 0; r < 5; r++ {
		for c := 0; c < 7; c++ {
			e := s.Elem(r, c)
			if len(e) != 8 {
				t.Fatalf("Elem(%d,%d) length %d", r, c, len(e))
			}
			// Column-major: the elements of one column are adjacent.
			off := (c*5 + r) * 8
			if &e[0] != &s.Bytes()[off] {
				t.Fatalf("Elem(%d,%d) at wrong offset", r, c)
			}
			if seen[off] {
				t.Fatalf("duplicate offset %d", off)
			}
			seen[off] = true
		}
	}
}

// TestColRangeAliasesColumn pins the zero-copy contract: ColRange(c, r, n) is
// the same memory as elements (r..r+n-1, c), contiguous and capped.
func TestColRangeAliasesColumn(t *testing.T) {
	s := New(5, 7, 8)
	s.Fill(21)
	for c := 0; c < 7; c++ {
		full := s.ColRange(c, 0, 5)
		if len(full) != 5*8 || cap(full) != 5*8 {
			t.Fatalf("ColRange(%d,0,5) len/cap = %d/%d, want 40/40", c, len(full), cap(full))
		}
		for r := 0; r < 5; r++ {
			e := s.Elem(r, c)
			if &e[0] != &full[r*8] {
				t.Fatalf("Elem(%d,%d) does not alias ColRange at offset %d", r, c, r*8)
			}
		}
		sub := s.ColRange(c, 2, 2)
		sub[0] ^= 0xFF
		if s.Elem(2, c)[0] != full[2*8] {
			t.Fatalf("write through ColRange(%d,2,2) not visible via Elem", c)
		}
	}
}

func TestColRangeBoundsPanics(t *testing.T) {
	s := New(3, 4, 2)
	for _, crn := range [][3]int{{-1, 0, 1}, {4, 0, 1}, {0, -1, 1}, {0, 0, 0}, {0, 2, 2}, {0, 0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ColRange(%d,%d,%d) did not panic", crn[0], crn[1], crn[2])
				}
			}()
			s.ColRange(crn[0], crn[1], crn[2])
		}()
	}
}

func TestElemBoundsPanics(t *testing.T) {
	s := New(2, 2, 1)
	for _, rc := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Elem(%d,%d) did not panic", rc[0], rc[1])
				}
			}()
			s.Elem(rc[0], rc[1])
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New(2, 3, 4)
	s.Fill(1)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone differs from original")
	}
	c.Elem(0, 0)[0] ^= 0xFF
	if s.Equal(c) {
		t.Fatal("mutating clone affected original (or Equal is broken)")
	}
}

func TestEqualGeometryMismatch(t *testing.T) {
	if New(2, 3, 4).Equal(New(3, 2, 4)) {
		t.Fatal("stripes with different geometry reported equal")
	}
	if New(2, 3, 4).Equal(New(2, 3, 8)) {
		t.Fatal("stripes with different element size reported equal")
	}
}

func TestZeroColumn(t *testing.T) {
	s := New(4, 5, 8)
	s.Fill(42)
	s.ZeroColumn(2)
	for r := 0; r < 4; r++ {
		if !IsZero(s.Elem(r, 2)) {
			t.Fatalf("element (%d,2) not zeroed", r)
		}
		if IsZero(s.Elem(r, 1)) {
			t.Fatalf("element (%d,1) unexpectedly zero; Fill too weak or ZeroColumn overreach", r)
		}
	}
}

func TestZeroElemAndZero(t *testing.T) {
	s := New(2, 2, 4)
	s.Fill(7)
	s.ZeroElem(1, 1)
	if !IsZero(s.Elem(1, 1)) {
		t.Fatal("ZeroElem left data behind")
	}
	s.Zero()
	if !IsZero(s.Bytes()) {
		t.Fatal("Zero left data behind")
	}
}

func TestFillDeterministic(t *testing.T) {
	a, b := New(3, 3, 16), New(3, 3, 16)
	a.Fill(99)
	b.Fill(99)
	if !a.Equal(b) {
		t.Fatal("Fill with same seed produced different contents")
	}
	b.Fill(100)
	if a.Equal(b) {
		t.Fatal("Fill with different seeds produced identical contents")
	}
}

// xorOracle is the obviously-correct byte-at-a-time reference.
func xorOracle(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func TestXORMatchesOracle(t *testing.T) {
	f := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		got := append([]byte(nil), a[:n]...)
		want := append([]byte(nil), a[:n]...)
		XOR(got, b[:n])
		xorOracle(want, b[:n])
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestXORIntoMatchesOracle(t *testing.T) {
	f := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		dst := make([]byte, n)
		XORInto(dst, a[:n], b[:n])
		for i := 0; i < n; i++ {
			if dst[i] != a[i]^b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestXORSelfInverse(t *testing.T) {
	f := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		got := append([]byte(nil), a[:n]...)
		XOR(got, b[:n])
		XOR(got, b[:n])
		for i := range got {
			if got[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORIntoAliasing(t *testing.T) {
	a := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	b := []byte{11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	want := make([]byte, len(a))
	XORInto(want, a, b)
	dst := append([]byte(nil), a...)
	XORInto(dst, dst, b) // dst aliases a-copy
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("aliased XORInto wrong at %d: got %d want %d", i, dst[i], want[i])
		}
	}
}

func TestXORLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XOR with mismatched lengths did not panic")
		}
	}()
	XOR(make([]byte, 3), make([]byte, 4))
}

func TestXORIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XORInto with mismatched lengths did not panic")
		}
	}()
	XORInto(make([]byte, 3), make([]byte, 3), make([]byte, 4))
}

func TestIsZero(t *testing.T) {
	if !IsZero(nil) || !IsZero(make([]byte, 9)) {
		t.Fatal("IsZero false on zero input")
	}
	if IsZero([]byte{0, 0, 1}) {
		t.Fatal("IsZero true on non-zero input")
	}
}

func BenchmarkXOR4K(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XOR(dst, src)
	}
}

func BenchmarkXOROracle4K(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xorOracle(dst, src)
	}
}
