package stripe

import "encoding/binary"

// XOR computes dst ^= src element-wise. The slices must have equal length.
// It processes eight bytes per step where possible; the Go compiler turns the
// binary.LittleEndian calls into single unaligned loads/stores on amd64 and
// arm64, so this is within a small factor of a hand-written SIMD kernel while
// staying pure stdlib.
func XOR(dst, src []byte) {
	if len(dst) != len(src) {
		panic("stripe: XOR length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XORInto computes dst = a ^ b element-wise. The slices must have equal
// length; dst may alias a or b.
func XORInto(dst, a, b []byte) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("stripe: XORInto length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// IsZero reports whether every byte of b is zero.
func IsZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
