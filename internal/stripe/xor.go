package stripe

import "encoding/binary"

// XOR computes dst ^= src element-wise. The slices must have equal length.
// It processes eight bytes per step where possible; the Go compiler turns the
// binary.LittleEndian calls into single unaligned loads/stores on amd64 and
// arm64, so this is within a small factor of a hand-written SIMD kernel while
// staying pure stdlib.
func XOR(dst, src []byte) {
	if len(dst) != len(src) {
		panic("stripe: XOR length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XORInto computes dst = a ^ b element-wise. The slices must have equal
// length; dst may alias a or b.
func XORInto(dst, a, b []byte) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("stripe: XORInto length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// XORMulti folds every source into dst: dst ^= srcs[0] ^ srcs[1] ^ ... .
// Sources are consumed eight at a time (then four, then a short tail), so dst
// is loaded and stored once per eight sources instead of once per source —
// for a wide parity group this cuts the memory traffic of iterated XOR calls
// to a fraction, which is where the XOR kernels of this repository spend
// their time (the accumulator stays in registers within a pass). All sources
// must have dst's length; none may alias dst.
func XORMulti(dst []byte, srcs ...[]byte) {
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("stripe: XORMulti length mismatch")
		}
	}
	for len(srcs) >= 8 {
		xor8(dst, srcs[0], srcs[1], srcs[2], srcs[3], srcs[4], srcs[5], srcs[6], srcs[7])
		srcs = srcs[8:]
	}
	if len(srcs) >= 4 {
		xor4(dst, srcs[0], srcs[1], srcs[2], srcs[3])
		srcs = srcs[4:]
	}
	switch len(srcs) {
	case 3:
		xor3(dst, srcs[0], srcs[1], srcs[2])
	case 2:
		xor2(dst, srcs[0], srcs[1])
	case 1:
		XOR(dst, srcs[0])
	}
}

// XOR8 folds exactly eight sources into dst in one pass:
// dst ^= a ^ b ^ c ^ d ^ e ^ f ^ g ^ h. It is the widest single-pass kernel:
// nine streams in flight keeps the load ports busy while dst is loaded and
// stored only once for all eight sources. All slices must have dst's length;
// no source may alias dst.
func XOR8(dst, a, b, c, d, e, f, g, h []byte) {
	n := len(dst)
	if len(a) != n || len(b) != n || len(c) != n || len(d) != n ||
		len(e) != n || len(f) != n || len(g) != n || len(h) != n {
		panic("stripe: XOR8 length mismatch")
	}
	xor8(dst, a, b, c, d, e, f, g, h)
}

// The unexported kernels reslice every source to dst's length up front; with
// len(src) == n established, the loop condition i+8 <= n proves every 8-byte
// load in range and the compiler drops the bounds checks from the inner loop
// (verified with -gcflags='-d=ssa/check_bce').
func xor8(dst, a, b, c, d, e, f, g, h []byte) {
	n := len(dst)
	a, b, c, d = a[:n], b[:n], c[:n], d[:n]
	e, f, g, h = e[:n], f[:n], g[:n], h[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:])^
				binary.LittleEndian.Uint64(d[i:])^
				binary.LittleEndian.Uint64(e[i:])^
				binary.LittleEndian.Uint64(f[i:])^
				binary.LittleEndian.Uint64(g[i:])^
				binary.LittleEndian.Uint64(h[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i] ^ e[i] ^ f[i] ^ g[i] ^ h[i]
	}
}

func xor4(dst, a, b, c, d []byte) {
	n := len(dst)
	a, b, c, d = a[:n], b[:n], c[:n], d[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:])^
				binary.LittleEndian.Uint64(d[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i]
	}
}

func xor3(dst, a, b, c []byte) {
	n := len(dst)
	a, b, c = a[:n], b[:n], c[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i]
	}
}

func xor2(dst, a, b []byte) {
	n := len(dst)
	a, b = a[:n], b[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i]
	}
}

// IsZero reports whether every byte of b is zero, eight bytes per step.
func IsZero(b []byte) bool {
	n := len(b)
	i := 0
	for ; i+8 <= n; i += 8 {
		if binary.LittleEndian.Uint64(b[i:]) != 0 {
			return false
		}
	}
	for ; i < n; i++ {
		if b[i] != 0 {
			return false
		}
	}
	return true
}
