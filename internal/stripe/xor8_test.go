package stripe

import (
	"bytes"
	"math/rand"
	"testing"
)

// xorLens exercises the word-wide body, the byte tail, and lengths that are
// not multiples of the 8-byte step (misaligned-length cases).
var xorLens = []int{1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000, 1024, 4103}

// TestXOR8MatchesOracle checks the widest kernel against iterated XOR for
// every tail shape.
func TestXOR8MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range xorLens {
		dst := make([]byte, n)
		rng.Read(dst)
		want := bytes.Clone(dst)
		srcs := make([][]byte, 8)
		for i := range srcs {
			srcs[i] = make([]byte, n)
			rng.Read(srcs[i])
			XOR(want, srcs[i])
		}
		XOR8(dst, srcs[0], srcs[1], srcs[2], srcs[3], srcs[4], srcs[5], srcs[6], srcs[7])
		if !bytes.Equal(dst, want) {
			t.Fatalf("n=%d: XOR8 diverges from iterated XOR", n)
		}
	}
}

// TestXORMulti8WayMatchesOracle pushes XORMulti through the 8-way pass and
// every tail count after it (8..17 sources covers one and two full 8-way
// passes plus each 4/3/2/1 remainder).
func TestXORMulti8WayMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range xorLens {
		for srcCount := 8; srcCount <= 17; srcCount++ {
			dst := make([]byte, n)
			rng.Read(dst)
			want := bytes.Clone(dst)
			srcs := make([][]byte, srcCount)
			for i := range srcs {
				srcs[i] = make([]byte, n)
				rng.Read(srcs[i])
				XOR(want, srcs[i])
			}
			XORMulti(dst, srcs...)
			if !bytes.Equal(dst, want) {
				t.Fatalf("n=%d srcs=%d: XORMulti diverges from iterated XOR", n, srcCount)
			}
		}
	}
}

// TestXOR8AliasedSources feeds the kernel sources that alias each other —
// overlapping windows of one backing buffer, including the same slice twice.
// Sources aliasing each other (not dst) are legal: pairs cancel, and the
// kernel must read each source stream independently.
func TestXOR8AliasedSources(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range xorLens {
		backing := make([]byte, n+8)
		rng.Read(backing)
		// Overlapping windows shifted by 0 and 1 byte, each used twice, plus
		// two distinct buffers used twice each: everything cancels pairwise.
		w0 := backing[0:n]
		w1 := backing[1 : 1+n]
		x := make([]byte, n)
		y := make([]byte, n)
		rng.Read(x)
		rng.Read(y)
		dst := make([]byte, n)
		rng.Read(dst)
		want := bytes.Clone(dst)
		XOR8(dst, w0, w1, x, y, w0, w1, x, y)
		if !bytes.Equal(dst, want) {
			t.Fatalf("n=%d: XOR8 over pairwise-cancelling aliased sources is not a no-op", n)
		}
	}
}

func TestXOR8LengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched source length")
		}
	}()
	ok := make([]byte, 16)
	XOR8(ok, ok[:15], ok, ok, ok, ok, ok, ok, ok)
}

// FuzzXORKernels pins XOR8 and the 8-way XORMulti path against the iterated
// single-source oracle on arbitrary data and source counts.
func FuzzXORKernels(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef"), uint8(9))
	f.Add([]byte{1}, uint8(8))
	f.Add([]byte{}, uint8(12))
	f.Fuzz(func(t *testing.T, data []byte, srcCount uint8) {
		n := len(data) / 2
		if n == 0 {
			return
		}
		count := int(srcCount%16) + 8 // 8..23: always at least one 8-way pass
		seedA, seedB := data[:n], data[n:2*n]
		dst := bytes.Clone(seedA)
		want := bytes.Clone(seedA)
		srcs := make([][]byte, count)
		for i := range srcs {
			srcs[i] = bytes.Clone(seedB)
			srcs[i][i%n] ^= byte(i) // make the streams distinct
			XOR(want, srcs[i])
		}
		XORMulti(dst, srcs...)
		if !bytes.Equal(dst, want) {
			t.Fatalf("n=%d srcs=%d: XORMulti diverges from iterated XOR", n, count)
		}
		dst8 := bytes.Clone(seedA)
		want8 := bytes.Clone(seedA)
		for i := 0; i < 8; i++ {
			XOR(want8, srcs[i])
		}
		XOR8(dst8, srcs[0], srcs[1], srcs[2], srcs[3], srcs[4], srcs[5], srcs[6], srcs[7])
		if !bytes.Equal(dst8, want8) {
			t.Fatalf("n=%d: XOR8 diverges from iterated XOR", n)
		}
	})
}

// benchSinkB keeps the kernels' work observable to the compiler.
var benchSinkB byte

func benchXORWide(b *testing.B, srcCount int) {
	const n = 4096
	dst := make([]byte, n)
	srcs := make([][]byte, srcCount)
	backing := make([]byte, srcCount*n)
	rand.New(rand.NewSource(3)).Read(backing)
	for i := range srcs {
		srcs[i] = backing[i*n : (i+1)*n]
	}
	b.SetBytes(int64(srcCount * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XORMulti(dst, srcs...)
	}
	benchSinkB = dst[0]
}

func BenchmarkXORMulti8Src4K(b *testing.B)  { benchXORWide(b, 8) }
func BenchmarkXORMulti12Src4K(b *testing.B) { benchXORWide(b, 12) }

func BenchmarkXOR84K(b *testing.B) {
	const n = 4096
	dst := make([]byte, n)
	backing := make([]byte, 8*n)
	rand.New(rand.NewSource(5)).Read(backing)
	s := make([][]byte, 8)
	for i := range s {
		s[i] = backing[i*n : (i+1)*n]
	}
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XOR8(dst, s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7])
	}
	benchSinkB = dst[0]
}
