package stripe

import "sync"

// Pool recycles stripes of one fixed geometry so hot paths (the RAID
// engine's per-stripe work, journal replay) don't allocate a rows×cols×elem
// buffer per operation. Stripes come back from Get with arbitrary contents —
// every consumer in this repository fully defines the cells it reads before
// reading them, so Get does not pay for a memclr; call Zero explicitly when
// stale bytes matter.
type Pool struct {
	rows, cols, elemSize int
	p                    sync.Pool
}

// NewPool returns a pool of rows×cols stripes of elemSize-byte elements.
func NewPool(rows, cols, elemSize int) *Pool {
	pl := &Pool{rows: rows, cols: cols, elemSize: elemSize}
	pl.p.New = func() any { return New(rows, cols, elemSize) }
	return pl
}

// Get returns a stripe with the pool's geometry and arbitrary contents.
func (pl *Pool) Get() *Stripe { return pl.p.Get().(*Stripe) }

// Put returns a stripe to the pool. It panics if the stripe's geometry does
// not match the pool's: mixing geometries would hand later Get callers a
// stripe their code construction cannot address.
func (pl *Pool) Put(s *Stripe) {
	if s.rows != pl.rows || s.cols != pl.cols || s.elemSize != pl.elemSize {
		panic("stripe: Pool.Put geometry mismatch")
	}
	pl.p.Put(s)
}
