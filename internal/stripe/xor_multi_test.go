package stripe

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestXORMultiMatchesOracle checks the multi-source kernel against the
// obvious one-source-at-a-time loop for every source count the flush logic
// distinguishes (0, 1, 2, 3, 4, and past one full 4-way pass) and for
// lengths that exercise both the word-wide body and the byte tail.
func TestXORMultiMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 7, 8, 9, 16, 63, 64, 65, 1024} {
		for srcCount := 0; srcCount <= 9; srcCount++ {
			dst := make([]byte, n)
			rng.Read(dst)
			want := bytes.Clone(dst)
			srcs := make([][]byte, srcCount)
			for i := range srcs {
				srcs[i] = make([]byte, n)
				rng.Read(srcs[i])
				XOR(want, srcs[i])
			}
			XORMulti(dst, srcs...)
			if !bytes.Equal(dst, want) {
				t.Fatalf("n=%d srcs=%d: XORMulti diverges from iterated XOR", n, srcCount)
			}
		}
	}
}

func TestXORMultiLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched source length")
		}
	}()
	XORMulti(make([]byte, 8), make([]byte, 8), make([]byte, 7))
}

func TestPoolRoundTrip(t *testing.T) {
	p := NewPool(3, 5, 16)
	s := p.Get()
	if s.Rows() != 3 || s.Cols() != 5 || s.ElemSize() != 16 {
		t.Fatalf("pooled stripe geometry %dx%d/%d", s.Rows(), s.Cols(), s.ElemSize())
	}
	s.Fill(9)
	p.Put(s)
	// Pooled stripes come back with arbitrary contents; the pool only
	// guarantees geometry. Callers must overwrite or Zero.
	s2 := p.Get()
	if s2.Rows() != 3 || s2.Cols() != 5 || s2.ElemSize() != 16 {
		t.Fatal("recycled stripe has wrong geometry")
	}
}

func TestPoolPutWrongGeometryPanics(t *testing.T) {
	p := NewPool(3, 5, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on putting a foreign stripe")
		}
	}()
	p.Put(New(3, 5, 32))
}
