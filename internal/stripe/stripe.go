// Package stripe provides element-addressed stripe buffers and the XOR
// kernels used by every array code in this repository.
//
// A stripe is a rows×cols matrix of fixed-size elements stored in one
// contiguous allocation; element (r, c) models the r-th block of the c-th
// disk within one stripe of a RAID-6 array.
//
// Storage is column-major: the elements of one column are adjacent in the
// backing buffer, in row order. That mirrors the on-disk layout — a stripe's
// rows are contiguous per device — so a coalesced run of same-column cells is
// one contiguous range of stripe memory (see ColRange) and device I/O can
// move bytes directly between the device and the stripe with no staging copy.
package stripe

import (
	"bytes"
	"fmt"
)

// Stripe is a rows×cols matrix of equally sized byte elements.
// The zero value is not usable; construct with New.
type Stripe struct {
	rows, cols int
	elemSize   int
	buf        []byte
}

// New allocates a zeroed stripe with the given geometry.
// It panics if any dimension is non-positive, mirroring make() semantics:
// geometry is fixed by the code construction, so a bad value is a programming
// error, not a runtime condition.
func New(rows, cols, elemSize int) *Stripe {
	if rows <= 0 || cols <= 0 || elemSize <= 0 {
		panic(fmt.Sprintf("stripe: invalid geometry %d×%d×%d", rows, cols, elemSize))
	}
	return &Stripe{
		rows:     rows,
		cols:     cols,
		elemSize: elemSize,
		buf:      make([]byte, rows*cols*elemSize),
	}
}

// Rows returns the number of rows.
func (s *Stripe) Rows() int { return s.rows }

// Cols returns the number of columns (disks).
func (s *Stripe) Cols() int { return s.cols }

// ElemSize returns the element size in bytes.
func (s *Stripe) ElemSize() int { return s.elemSize }

// Elem returns the element at (r, c) as a slice aliasing the stripe's
// storage; writes through the slice modify the stripe.
func (s *Stripe) Elem(r, c int) []byte {
	if r < 0 || r >= s.rows || c < 0 || c >= s.cols {
		panic(fmt.Sprintf("stripe: element (%d,%d) outside %d×%d", r, c, s.rows, s.cols))
	}
	off := (c*s.rows + r) * s.elemSize
	return s.buf[off : off+s.elemSize : off+s.elemSize]
}

// ColRange returns the n elements of column c starting at row r as one
// contiguous slice aliasing the stripe's storage — the column-major layout
// guarantees adjacency. It is the zero-copy hand-off point for coalesced
// device I/O: the raid layer reads and writes column runs through it without
// staging buffers. Writes through the slice modify the stripe.
func (s *Stripe) ColRange(c, r, n int) []byte {
	if c < 0 || c >= s.cols || r < 0 || n <= 0 || r+n > s.rows {
		panic(fmt.Sprintf("stripe: column range (col %d, rows [%d,%d)) outside %d×%d",
			c, r, r+n, s.rows, s.cols))
	}
	off := (c*s.rows + r) * s.elemSize
	end := off + n*s.elemSize
	return s.buf[off:end:end]
}

// Bytes returns the whole stripe storage, column-major.
func (s *Stripe) Bytes() []byte { return s.buf }

// Clone returns a deep copy of the stripe.
func (s *Stripe) Clone() *Stripe {
	c := New(s.rows, s.cols, s.elemSize)
	copy(c.buf, s.buf)
	return c
}

// Equal reports whether two stripes have identical geometry and contents.
func (s *Stripe) Equal(o *Stripe) bool {
	if s.rows != o.rows || s.cols != o.cols || s.elemSize != o.elemSize {
		return false
	}
	return bytes.Equal(s.buf, o.buf)
}

// Zero clears every element.
func (s *Stripe) Zero() {
	clear(s.buf)
}

// ZeroColumn clears every element of column c, simulating a failed disk.
func (s *Stripe) ZeroColumn(c int) {
	clear(s.ColRange(c, 0, s.rows))
}

// ZeroElem clears the element at (r, c).
func (s *Stripe) ZeroElem(r, c int) {
	clear(s.Elem(r, c))
}

// Fill populates the whole stripe with a cheap deterministic byte stream
// derived from seed. Intended for tests and benchmarks.
func (s *Stripe) Fill(seed uint64) {
	x := seed*2862933555777941757 + 3037000493
	for i := range s.buf {
		// xorshift64*; quality is irrelevant, determinism is the point.
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		s.buf[i] = byte(x * 2685821657736338717 >> 56)
	}
}
