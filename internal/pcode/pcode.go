// Package pcode implements P-Code (Jin, Jiang & Zhou, 2009), the vertical
// RAID-6 code the D-Code paper's §II cites among the codes with suboptimal
// I/O balance; included as an extension baseline.
//
// For a prime p, a stripe has p-1 columns labelled 1..p-1 and (p-1)/2 rows.
// Row 0 holds one parity element per column. Every data element carries a
// label {i, j} — a 2-subset of {1..p-1} with i+j ≢ 0 (mod p) — and is stored
// in column <i+j>_p; the parity of column k is the XOR of all data elements
// whose label contains k. Each data element therefore belongs to exactly two
// parity groups (optimal update complexity), and each column holds (p-3)/2
// data elements.
package pcode

import (
	"fmt"

	"dcode/internal/erasure"
)

// Name is the code's display name.
const Name = "P-Code"

// New constructs P-Code over p-1 disks; p must be a prime ≥ 5.
func New(p int) (*erasure.Code, error) {
	if !erasure.IsPrime(p) || p < 5 {
		return nil, fmt.Errorf("pcode: p = %d is not a prime ≥ 5", p)
	}
	rows, cols := (p-1)/2, p-1

	// Column index c (0-based) hosts the elements of label-sum c+1.
	// Collect each column's labels in ascending order for a canonical layout.
	members := make([][][2]int, cols) // per column: list of labels {i,j}, i<j
	for i := 1; i <= p-1; i++ {
		for j := i + 1; j <= p-1; j++ {
			if (i+j)%p == 0 {
				continue
			}
			c := (i+j)%p - 1
			members[c] = append(members[c], [2]int{i, j})
		}
	}

	// Parity group per column k (1-based label k = column index+1): XOR of
	// every data element whose label contains k.
	groups := make([]erasure.Group, cols)
	for k := 0; k < cols; k++ {
		groups[k] = erasure.Group{
			Kind:   erasure.KindHorizontal,
			Parity: erasure.Coord{Row: 0, Col: k},
		}
	}
	for c := 0; c < cols; c++ {
		if len(members[c]) != rows-1 {
			return nil, fmt.Errorf("pcode: internal: column %d holds %d labels, want %d", c, len(members[c]), rows-1)
		}
		for r, lab := range members[c] {
			co := erasure.Coord{Row: r + 1, Col: c}
			groups[lab[0]-1].Members = append(groups[lab[0]-1].Members, co)
			groups[lab[1]-1].Members = append(groups[lab[1]-1].Members, co)
		}
	}
	return erasure.New(Name, p, rows, cols, groups)
}
