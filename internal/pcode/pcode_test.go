package pcode

import (
	"testing"

	"dcode/internal/erasure"
)

var testPrimes = []int{5, 7, 11, 13}

func mustNew(t *testing.T, p int) *erasure.Code {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatalf("New(%d): %v", p, err)
	}
	return c
}

func TestNewRejectsBadParameters(t *testing.T) {
	for _, p := range []int{0, 2, 3, 4, 6, 9} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) accepted", p)
		}
	}
}

func TestGeometry(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		if c.Rows() != (p-1)/2 || c.Cols() != p-1 {
			t.Fatalf("p=%d: geometry %d×%d", p, c.Rows(), c.Cols())
		}
		if c.DataElems() != (p-1)*(p-3)/2 {
			t.Fatalf("p=%d: data = %d, want %d", p, c.DataElems(), (p-1)*(p-3)/2)
		}
		// Parity occupies exactly row 0.
		for col := 0; col < p-1; col++ {
			if !c.IsParity(0, col) {
				t.Fatalf("p=%d: (0,%d) not parity", p, col)
			}
			for r := 1; r < c.Rows(); r++ {
				if c.IsParity(r, col) {
					t.Fatalf("p=%d: (%d,%d) unexpectedly parity", p, r, col)
				}
			}
		}
		if c.DataColumns() != p-1 {
			t.Fatalf("p=%d: DataColumns = %d", p, c.DataColumns())
		}
	}
}

// Every data element carries a 2-subset label and belongs to exactly the two
// parity groups its label names — P-Code's optimal update complexity.
func TestEachDataElementInExactlyTwoGroups(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		for idx := 0; idx < c.DataElems(); idx++ {
			co := c.DataCoord(idx)
			gs := c.MemberOf(co.Row, co.Col)
			if len(gs) != 2 {
				t.Fatalf("p=%d: %v in %d groups", p, co, len(gs))
			}
			// The element's column must equal the mod-p sum of its two group
			// labels (group index + 1).
			sum := (gs[0] + 1 + gs[1] + 1) % p
			if sum-1 != co.Col {
				t.Fatalf("p=%d: %v labels %v do not sum to its column", p, co, gs)
			}
		}
	}
}

func TestUpdateMetrics(t *testing.T) {
	c := mustNew(t, 11)
	m := c.ComputeMetrics()
	if m.UpdateAvg != 2 || m.UpdateMax != 2 {
		t.Fatalf("update complexity %v/%d, want 2/2", m.UpdateAvg, m.UpdateMax)
	}
}

func TestMDS(t *testing.T) {
	for _, p := range testPrimes {
		if testing.Short() && p > 7 {
			continue
		}
		if err := erasure.VerifyMDS(mustNew(t, p), 16); err != nil {
			t.Fatal(err)
		}
	}
}
