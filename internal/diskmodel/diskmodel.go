// Package diskmodel is the discrete timing model that substitutes for the
// paper's physical 16-disk Seagate Savvio array (see DESIGN.md §1).
//
// Each disk pays one positioning cost (seek + rotational latency) when it
// starts serving a request, a transfer cost per element, and a bridging cost
// for holes inside the accessed range: a small gap is cheaper to pass over at
// media speed than to re-position across, so each gap costs
// min(gap·transfer, position). The disks of a RAID array work in parallel,
// so over a long run the array's throughput is limited by the busiest disk —
// the accounting the read-performance simulator uses.
package diskmodel

import "sort"

// Params models one disk. The defaults approximate the paper's 10k-rpm
// Savvio drives with 1 MiB elements: ~6.9 ms positioning (4 ms average seek
// plus half a 10k-rpm revolution) and ~6.7 ms per element at 150 MB/s.
type Params struct {
	// PositionMS is the cost of moving the head to a new location
	// (seek + rotational latency), in milliseconds.
	PositionMS float64
	// TransferMS is the cost of transferring one element, in milliseconds.
	TransferMS float64
	// ElemBytes is the element size used to convert counts to bytes.
	ElemBytes int
}

// DefaultParams returns the drive model described above.
func DefaultParams() Params {
	return Params{
		PositionMS: 6.9,
		TransferMS: 6.7, // 1 MiB / (150 MB/s) ≈ 6.7 ms
		ElemBytes:  1 << 20,
	}
}

// ServiceTime returns the time in milliseconds one disk needs to serve the
// elements at the given positions (row indices on that disk) within one
// request: one positioning cost, one transfer per distinct element, and a
// bridging cost of min(gap·transfer, position) per hole between runs.
func ServiceTime(positions []int, p Params) float64 {
	if len(positions) == 0 {
		return 0
	}
	sorted := append([]int(nil), positions...)
	sort.Ints(sorted)
	t := p.PositionMS + p.TransferMS
	for i := 1; i < len(sorted); i++ {
		gap := sorted[i] - sorted[i-1]
		switch {
		case gap == 0:
			// Duplicate request for the same element: already in cache.
		case gap == 1:
			t += p.TransferMS
		default:
			bridge := float64(gap-1) * p.TransferMS
			if bridge > p.PositionMS {
				bridge = p.PositionMS
			}
			t += bridge + p.TransferMS
		}
	}
	return t
}

// RequestLatency returns the latency in milliseconds of one parallel request
// whose per-disk position lists are given: the maximum service time.
func RequestLatency(perDisk [][]int, p Params) float64 {
	var max float64
	for _, positions := range perDisk {
		if t := ServiceTime(positions, p); t > max {
			max = t
		}
	}
	return max
}

// BusyAccumulator tracks per-disk accumulated busy time across many
// requests; the array's sustained read speed is payload divided by the
// busiest disk's total (the bottleneck), which is how the read-performance
// experiments aggregate.
type BusyAccumulator struct {
	BusyMS []float64
}

// NewBusyAccumulator returns an accumulator for n disks.
func NewBusyAccumulator(n int) *BusyAccumulator {
	return &BusyAccumulator{BusyMS: make([]float64, n)}
}

// Add charges each disk for its part of one request.
func (b *BusyAccumulator) Add(perDisk [][]int, p Params) {
	for d, positions := range perDisk {
		b.BusyMS[d] += ServiceTime(positions, p)
	}
}

// MaxMS returns the bottleneck disk's accumulated busy time.
func (b *BusyAccumulator) MaxMS() float64 {
	var max float64
	for _, v := range b.BusyMS {
		if v > max {
			max = v
		}
	}
	return max
}
