package diskmodel

import (
	"math"
	"testing"
	"testing/quick"
)

var tp = Params{PositionMS: 10, TransferMS: 2, ElemBytes: 1024}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestServiceTimeEmpty(t *testing.T) {
	if ServiceTime(nil, tp) != 0 {
		t.Fatal("empty position list should be free")
	}
}

func TestServiceTimeSingleElement(t *testing.T) {
	if got := ServiceTime([]int{4}, tp); !almost(got, 12) {
		t.Fatalf("got %v, want position+transfer = 12", got)
	}
}

func TestServiceTimeContiguousRun(t *testing.T) {
	// 4 contiguous elements: one positioning + 4 transfers.
	if got := ServiceTime([]int{3, 4, 5, 6}, tp); !almost(got, 10+4*2) {
		t.Fatalf("got %v, want 18", got)
	}
}

func TestServiceTimeUnsortedInputAndDuplicates(t *testing.T) {
	a := ServiceTime([]int{6, 3, 5, 4}, tp)
	b := ServiceTime([]int{3, 4, 5, 6}, tp)
	if !almost(a, b) {
		t.Fatalf("order sensitivity: %v != %v", a, b)
	}
	withDup := ServiceTime([]int{3, 3, 4}, tp)
	noDup := ServiceTime([]int{3, 4}, tp)
	if !almost(withDup, noDup) {
		t.Fatalf("duplicate positions charged twice: %v != %v", withDup, noDup)
	}
}

func TestServiceTimeSmallGapBridged(t *testing.T) {
	// Gap of 2 missing elements costs 2 transfers (4) < position (10).
	got := ServiceTime([]int{0, 1, 4}, tp)
	want := 10 + 2*2 + /*bridge rows 2,3*/ 2*2 + /*elem 4*/ 2.0
	if !almost(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestServiceTimeLargeGapRepositions(t *testing.T) {
	// Gap of 100 elements: bridging at transfer cost (200) would exceed a
	// reposition (10), so the model repositions.
	got := ServiceTime([]int{0, 101}, tp)
	want := 10 + 2 + 10 + 2.0
	if !almost(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRequestLatencyIsMax(t *testing.T) {
	perDisk := [][]int{{0, 1}, {0}, nil}
	got := RequestLatency(perDisk, tp)
	if !almost(got, 14) { // slowest disk: position + 2 transfers
		t.Fatalf("got %v, want 14", got)
	}
	if RequestLatency(nil, tp) != 0 {
		t.Fatal("no disks should be free")
	}
}

func TestBusyAccumulator(t *testing.T) {
	acc := NewBusyAccumulator(3)
	acc.Add([][]int{{0}, {0, 1}, nil}, tp)
	acc.Add([][]int{{5}, nil, nil}, tp)
	if !almost(acc.BusyMS[0], 12+12) {
		t.Fatalf("disk 0 busy %v", acc.BusyMS[0])
	}
	if !almost(acc.BusyMS[1], 14) {
		t.Fatalf("disk 1 busy %v", acc.BusyMS[1])
	}
	if acc.BusyMS[2] != 0 {
		t.Fatal("idle disk accrued busy time")
	}
	if !almost(acc.MaxMS(), 24) {
		t.Fatalf("bottleneck %v, want 24", acc.MaxMS())
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.PositionMS <= 0 || p.TransferMS <= 0 || p.ElemBytes <= 0 {
		t.Fatalf("defaults not positive: %+v", p)
	}
}

// Properties: service time is positive for non-empty input, monotone under
// adding elements, and never better than the pure-transfer lower bound.
func TestServiceTimeQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pos := make([]int, len(raw))
		uniq := map[int]bool{}
		for i, v := range raw {
			pos[i] = int(v)
			uniq[int(v)] = true
		}
		got := ServiceTime(pos, tp)
		lower := tp.PositionMS + float64(len(uniq))*tp.TransferMS
		if got < lower-1e-9 {
			return false
		}
		// Adding one more element never reduces the time.
		return ServiceTime(append(pos, 300), tp) >= got-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
