package liberation

import (
	"testing"

	"dcode/internal/erasure"
)

func TestNewRejectsBadParameters(t *testing.T) {
	for _, kp := range [][2]int{{1, 5}, {5, 4}, {5, 3}, {6, 6}, {3, 0}} {
		if _, err := New(kp[0], kp[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", kp[0], kp[1])
		}
	}
}

func TestGeometry(t *testing.T) {
	c, err := New(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 7 || c.Cols() != 7 {
		t.Fatalf("geometry %d×%d, want 7×7 (w rows, k+2 cols)", c.Rows(), c.Cols())
	}
	if c.DataElems() != 5*7 {
		t.Fatalf("data packets = %d, want 35", c.DataElems())
	}
	// Columns k and k+1 are pure parity.
	if c.DataColumns() != 5 {
		t.Fatalf("DataColumns = %d, want 5", c.DataColumns())
	}
}

func TestX0IsIdentity(t *testing.T) {
	// Q's groups restricted to column 0 must be the identity pattern:
	// packet j of Q includes exactly packet j of disk 0.
	c, err := New(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		g := c.Groups()[c.ParityGroup(j, 5)]
		if g.Kind != erasure.KindDiagonal {
			t.Fatalf("Q group %d kind %v", j, g.Kind)
		}
		count := 0
		for _, m := range g.Members {
			if m.Col == 0 {
				count++
				if m.Row != j {
					t.Fatalf("X_0 not identity: Q packet %d covers disk-0 packet %d", j, m.Row)
				}
			}
		}
		if count != 1 {
			t.Fatalf("X_0 column weight %d at packet %d, want 1", count, j)
		}
	}
}

// Minimum density: the Q bit matrices carry k·w + k - 1 ones in total
// (Plank's lower bound for a w×w-packet RAID-6 code with X_0 = I).
func TestMinimumDensity(t *testing.T) {
	for _, kp := range [][2]int{{5, 5}, {7, 7}, {5, 7}, {13, 13}} {
		k, p := kp[0], kp[1]
		c, err := New(k, p)
		if err != nil {
			t.Fatal(err)
		}
		qOnes := 0
		for j := 0; j < p; j++ {
			qOnes += len(c.Groups()[c.ParityGroup(j, k+1)].Members)
		}
		if want := k*p + k - 1; qOnes != want {
			t.Fatalf("k=%d w=%d: Q density %d ones, want %d", k, p, qOnes, want)
		}
	}
}

func TestMDS(t *testing.T) {
	cases := [][2]int{{2, 2}, {3, 3}, {5, 5}, {5, 7}, {6, 7}, {7, 7}, {11, 11}, {13, 13}}
	if testing.Short() {
		cases = [][2]int{{5, 5}, {5, 7}}
	}
	for _, kp := range cases {
		c, err := New(kp[0], kp[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := erasure.VerifyMDS(c, 8); err != nil {
			t.Fatalf("k=%d w=%d: %v", kp[0], kp[1], err)
		}
	}
}

// Liberation's update complexity is its known weakness relative to its
// encode density: the extra Q bits make some data packets belong to three
// equations.
func TestUpdateComplexityAboveTwo(t *testing.T) {
	c, err := New(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := c.ComputeMetrics()
	if m.UpdateAvg <= 2 {
		t.Fatalf("update avg = %v, expected above 2 for the dense rows", m.UpdateAvg)
	}
	if m.UpdateMax < 3 {
		t.Fatalf("update max = %d, expected ≥ 3", m.UpdateMax)
	}
}
