// Package liberation implements Plank's Liberation codes (FAST 2008), the
// minimum-density RAID-6 MDS codes the D-Code paper's related work cites.
//
// Liberation codes operate on w = p sub-element packets per disk (p prime,
// p ≥ k): disk columns 0..k-1 hold data, column k holds the P parity
// (straight XOR of the data packets of each row) and column k+1 the Q
// parity, defined by w×w bit matrices X_i: Q's packet j is the XOR of data
// packets (s, i) with X_i[j][s] = 1. X_0 is the identity; for i ≥ 1, X_i is
// the rotation by i (ones at (j, <j+i>_w)) plus one extra bit at row
// y = <i(w-1)/2>_w, column <y+i-1>_w — the minimum-density construction.
//
// The packet structure maps directly onto the generic erasure engine: a
// "stripe" has w rows (one per packet) and k+2 columns, so all encoding,
// decoding and MDS verification machinery applies unchanged. The bit-matrix
// density (the code's claim to fame: (2k-1)/k ones per data bit on average,
// lower than RDP's) shows up as the engine's encode XOR count.
package liberation

import (
	"fmt"

	"dcode/internal/erasure"
)

// Name is the code's display name.
const Name = "Liberation"

// New constructs a Liberation code with k data disks over packet size w = p;
// p must be a prime with p ≥ k and p ≥ 2.
func New(k, p int) (*erasure.Code, error) {
	if k < 2 {
		return nil, fmt.Errorf("liberation: need at least 2 data disks, got %d", k)
	}
	if !erasure.IsPrime(p) || p < k {
		return nil, fmt.Errorf("liberation: w = %d must be a prime ≥ k = %d", p, k)
	}
	w := p
	cols := k + 2
	groups := make([]erasure.Group, 0, 2*w)

	// P parity: row-wise XOR of the data packets.
	for j := 0; j < w; j++ {
		row := make([]erasure.Coord, 0, k)
		for i := 0; i < k; i++ {
			row = append(row, erasure.Coord{Row: j, Col: i})
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindHorizontal,
			Parity:  erasure.Coord{Row: j, Col: k},
			Members: row,
		})
	}
	// Q parity from the X_i bit matrices.
	for j := 0; j < w; j++ {
		var members []erasure.Coord
		for i := 0; i < k; i++ {
			for s := 0; s < w; s++ {
				if xBit(i, j, s, w) {
					members = append(members, erasure.Coord{Row: s, Col: i})
				}
			}
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindDiagonal,
			Parity:  erasure.Coord{Row: j, Col: k + 1},
			Members: members,
		})
	}
	return erasure.New(Name, p, w, cols, groups)
}

// NewFull constructs the full-width Liberation code: p data disks over
// packet size w = p (the registry configuration).
func NewFull(p int) (*erasure.Code, error) { return New(p, p) }

// xBit reports whether X_i[j][s] is set.
func xBit(i, j, s, w int) bool {
	if i == 0 {
		return j == s
	}
	// Rotation by i.
	if s == erasure.Mod(j+i, w) {
		return true
	}
	// The extra minimum-density bit.
	y := erasure.Mod(i*(w-1)/2, w)
	return j == y && s == erasure.Mod(y+i-1, w)
}
