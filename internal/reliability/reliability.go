// Package reliability quantifies the motivation of the D-Code paper's
// introduction — why storage systems moved to codes that survive two
// concurrent disk failures — with the standard Markov mean-time-to-data-loss
// estimates for RAID levels and a discrete-event Monte Carlo simulator that
// cross-checks them.
package reliability

import (
	"fmt"
	"math"
	"math/rand"
)

// Params describes an array for reliability estimation.
type Params struct {
	Disks int     // total disks in the array
	MTTF  float64 // mean time to failure of one disk (hours), exponential
	MTTR  float64 // mean time to repair/rebuild one disk (hours), exponential
}

func (p Params) validate() error {
	if p.Disks < 1 || p.MTTF <= 0 || p.MTTR <= 0 {
		return fmt.Errorf("reliability: invalid params %+v", p)
	}
	return nil
}

// MTTDL returns the Markov-model mean time to data loss for an array
// tolerating `faults` concurrent disk failures (0 = plain striping,
// 1 = RAID-5, 2 = RAID-6), using the classic approximation valid for
// MTTR ≪ MTTF:
//
//	MTTDL ≈ MTTF^(f+1) / ( n·(n-1)···(n-f) · MTTR^f )
func MTTDL(p Params, faults int) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if faults < 0 || faults >= p.Disks {
		return 0, fmt.Errorf("reliability: faults = %d out of range for %d disks", faults, p.Disks)
	}
	num := math.Pow(p.MTTF, float64(faults+1))
	den := 1.0
	for i := 0; i <= faults; i++ {
		den *= float64(p.Disks - i)
	}
	den *= math.Pow(p.MTTR, float64(faults))
	return num / den, nil
}

// SimResult is the outcome of a Monte Carlo estimation.
type SimResult struct {
	Trials int
	// MeanHours is the estimated mean time to data loss.
	MeanHours float64
	// StdErrHours is the standard error of the mean.
	StdErrHours float64
}

// Simulate estimates the MTTDL by discrete-event simulation: every disk
// fails after an exponential MTTF lifetime; a failed disk is rebuilt after
// an exponential MTTR; data is lost the moment faults+1 disks are down
// simultaneously. The estimator is deterministic for a fixed seed.
func Simulate(p Params, faults, trials int, seed int64) (SimResult, error) {
	if err := p.validate(); err != nil {
		return SimResult{}, err
	}
	if faults < 0 || faults >= p.Disks {
		return SimResult{}, fmt.Errorf("reliability: faults = %d out of range for %d disks", faults, p.Disks)
	}
	if trials <= 0 {
		return SimResult{}, fmt.Errorf("reliability: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	for t := 0; t < trials; t++ {
		life := trial(p, faults, rng)
		sum += life
		sumSq += life * life
	}
	mean := sum / float64(trials)
	variance := sumSq/float64(trials) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return SimResult{
		Trials:      trials,
		MeanHours:   mean,
		StdErrHours: math.Sqrt(variance / float64(trials)),
	}, nil
}

// trial runs one life until data loss and returns its duration in hours.
// Events are the next failure of any healthy disk and the completion of the
// ongoing repair; exponential interarrival makes per-disk tracking
// unnecessary (memorylessness), so only the failed count matters. Like the
// classic Markov model, repairs are serialized (one rebuild at a time) —
// which is also how a real controller rebuilds.
func trial(p Params, faults int, rng *rand.Rand) float64 {
	now := 0.0
	down := 0
	for {
		healthy := float64(p.Disks - down)
		failRate := healthy / p.MTTF
		repairRate := 0.0
		if down > 0 {
			repairRate = 1 / p.MTTR
		}
		total := failRate + repairRate
		now += rng.ExpFloat64() / total
		if rng.Float64() < failRate/total {
			down++
			if down > faults {
				return now
			}
		} else {
			down--
		}
	}
}
