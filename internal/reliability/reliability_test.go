package reliability

import (
	"math"
	"testing"
)

var base = Params{Disks: 7, MTTF: 100000, MTTR: 24}

func TestMTTDLKnownValues(t *testing.T) {
	// RAID-0: MTTF/n.
	got, err := MTTDL(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := base.MTTF / 7; math.Abs(got-want) > 1e-6 {
		t.Fatalf("raid0 MTTDL = %v, want %v", got, want)
	}
	// RAID-5: MTTF²/(n(n-1)·MTTR).
	got, _ = MTTDL(base, 1)
	if want := base.MTTF * base.MTTF / (7 * 6 * base.MTTR); math.Abs(got-want) > 1e-6 {
		t.Fatalf("raid5 MTTDL = %v, want %v", got, want)
	}
	// RAID-6: MTTF³/(n(n-1)(n-2)·MTTR²).
	got, _ = MTTDL(base, 2)
	if want := math.Pow(base.MTTF, 3) / (7 * 6 * 5 * base.MTTR * base.MTTR); math.Abs(got-want) > 1e-3 {
		t.Fatalf("raid6 MTTDL = %v, want %v", got, want)
	}
}

func TestMTTDLOrdering(t *testing.T) {
	// Each additional tolerated fault must raise MTTDL by orders of
	// magnitude when MTTR ≪ MTTF.
	r0, _ := MTTDL(base, 0)
	r5, _ := MTTDL(base, 1)
	r6, _ := MTTDL(base, 2)
	if !(r6 > 100*r5 && r5 > 100*r0) {
		t.Fatalf("MTTDL ordering violated: %v, %v, %v", r0, r5, r6)
	}
}

func TestMTTDLValidation(t *testing.T) {
	if _, err := MTTDL(Params{Disks: 0, MTTF: 1, MTTR: 1}, 1); err == nil {
		t.Fatal("zero disks accepted")
	}
	if _, err := MTTDL(base, -1); err == nil {
		t.Fatal("negative faults accepted")
	}
	if _, err := MTTDL(base, 7); err == nil {
		t.Fatal("faults ≥ disks accepted")
	}
}

// The Monte Carlo estimate must agree with the Markov closed form within a
// few standard errors. Parameters are chosen so trials stay fast: the
// MTTR/MTTF separation is mild, so we allow the known small-ratio bias.
func TestSimulateMatchesClosedForm(t *testing.T) {
	p := Params{Disks: 5, MTTF: 1000, MTTR: 20}
	trials := 4000
	if testing.Short() {
		trials = 800
	}
	for faults := 0; faults <= 2; faults++ {
		want, err := MTTDL(p, faults)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(p, faults, trials, 42)
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.MeanHours / want
		if ratio < 0.7 || ratio > 1.4 {
			t.Fatalf("faults=%d: sim %.0f vs closed form %.0f (ratio %.2f)", faults, res.MeanHours, want, ratio)
		}
		if res.StdErrHours <= 0 || res.Trials != trials {
			t.Fatalf("faults=%d: bad result metadata %+v", faults, res)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, _ := Simulate(base, 2, 50, 7)
	b, _ := Simulate(base, 2, 50, 7)
	if a.MeanHours != b.MeanHours {
		t.Fatal("same seed produced different estimates")
	}
	c, _ := Simulate(base, 2, 50, 8)
	if a.MeanHours == c.MeanHours {
		t.Fatal("different seeds produced identical estimates")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(base, 2, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := Simulate(Params{}, 2, 10, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := Simulate(base, 9, 10, 1); err == nil {
		t.Fatal("faults ≥ disks accepted")
	}
}
