package hdp

import (
	"testing"

	"dcode/internal/erasure"
)

var testPrimes = []int{5, 7, 11, 13}

func mustNew(t *testing.T, p int) *erasure.Code {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatalf("New(%d): %v", p, err)
	}
	return c
}

func TestNewRejectsBadParameters(t *testing.T) {
	for _, p := range []int{0, 2, 4, 6, 8, 9} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) accepted", p)
		}
	}
}

func TestGeometry(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		if c.Rows() != p-1 || c.Cols() != p-1 {
			t.Fatalf("p=%d: geometry %d×%d", p, c.Rows(), c.Cols())
		}
		if c.DataElems() != (p-1)*(p-3) {
			t.Fatalf("p=%d: data = %d, want %d", p, c.DataElems(), (p-1)*(p-3))
		}
		// Parities on the two matrix diagonals.
		for i := 0; i < p-1; i++ {
			if !c.IsParity(i, i) {
				t.Fatalf("p=%d: (%d,%d) not parity", p, i, i)
			}
			if !c.IsParity(i, p-2-i) {
				t.Fatalf("p=%d: (%d,%d) not parity", p, i, p-2-i)
			}
		}
		// Every disk carries data (the load-balancing property).
		if c.DataColumns() != p-1 {
			t.Fatalf("p=%d: DataColumns = %d, want %d", p, c.DataColumns(), p-1)
		}
	}
}

// The horizontal-diagonal parity at (i,i) covers everything else in row i,
// including the row's anti-diagonal parity element.
func TestHorizontalCoversRowIncludingAntiParity(t *testing.T) {
	p := 7
	c := mustNew(t, p)
	for i := 0; i < p-1; i++ {
		g := c.Groups()[c.ParityGroup(i, i)]
		if g.Kind != erasure.KindHorizontal || len(g.Members) != p-2 {
			t.Fatalf("horizontal %d: kind %v, %d members", i, g.Kind, len(g.Members))
		}
		coversAnti := false
		for _, m := range g.Members {
			if m.Row != i || m.Col == i {
				t.Fatalf("horizontal %d covers %v", i, m)
			}
			if m.Col == p-2-i {
				coversAnti = true
			}
		}
		if !coversAnti {
			t.Fatalf("horizontal %d does not fold in the anti-diagonal parity", i)
		}
	}
}

// Anti-diagonal groups are data-only and follow the mod-p diagonal
// <r-c>_p = <2(i+1)>_p.
func TestAntiDiagonalStructure(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		for i := 0; i < p-1; i++ {
			g := c.Groups()[c.ParityGroup(i, p-2-i)]
			if g.Kind != erasure.KindAntiDiagonal {
				t.Fatalf("p=%d anti %d kind %v", p, i, g.Kind)
			}
			d := erasure.Mod(2*(i+1), p)
			for _, m := range g.Members {
				if erasure.Mod(m.Row-m.Col, p) != d {
					t.Fatalf("p=%d anti %d member %v off its diagonal", p, i, m)
				}
				if c.IsParity(m.Row, m.Col) {
					t.Fatalf("p=%d anti %d member %v is a parity cell", p, i, m)
				}
			}
		}
	}
}

func TestEachDataElementInExactlyTwoGroups(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		for idx := 0; idx < c.DataElems(); idx++ {
			co := c.DataCoord(idx)
			if got := len(c.MemberOf(co.Row, co.Col)); got != 2 {
				t.Fatalf("p=%d: %v in %d groups", p, co, got)
			}
		}
	}
}

func TestMDS(t *testing.T) {
	for _, p := range testPrimes {
		if testing.Short() && p > 7 {
			continue
		}
		if err := erasure.VerifyMDS(mustNew(t, p), 16); err != nil {
			t.Fatal(err)
		}
	}
}
