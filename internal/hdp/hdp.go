// Package hdp implements the HDP code (Wu et al., DSN 2011), the
// well-balanced vertical baseline of the D-Code paper that distributes its
// parities over the two diagonals of the stripe matrix.
//
// A stripe is a (p-1)×(p-1) matrix, p prime. The horizontal-diagonal parity
// of row i sits at (i, i); the anti-diagonal parity of row i sits at
// (i, p-2-i).
//
//   - Horizontal-diagonal parity: P(i, i) = XOR of every other cell of row i
//     (its p-3 data cells plus the row's anti-diagonal parity element).
//   - Anti-diagonal parity: P(i, p-2-i) covers the data cells (r, c) of the
//     mod-p diagonal <r-c>_p = <2(i+1)>_p.
//
// The anti-diagonal parities are computed from data only; the horizontal
// parities fold them in, which is the "horizontal-diagonal" coupling that
// lets HDP stay MDS with only p-1 columns. The construction is checked MDS
// for every column pair at p ∈ {5,7,11,13} by the package tests
// (see DESIGN.md §4).
package hdp

import (
	"fmt"

	"dcode/internal/erasure"
)

// Name is the code's display name.
const Name = "HDP"

// New constructs the HDP code over p-1 disks; p must be a prime ≥ 5.
func New(p int) (*erasure.Code, error) {
	if !erasure.IsPrime(p) || p < 5 {
		return nil, fmt.Errorf("hdp: p = %d is not a prime ≥ 5", p)
	}
	rows, cols := p-1, p-1
	isParity := func(r, c int) bool { return c == r || c == p-2-r }
	groups := make([]erasure.Group, 0, 2*rows)

	for i := 0; i < rows; i++ {
		var anti []erasure.Coord
		d := erasure.Mod(2*(i+1), p)
		for r := 0; r < rows; r++ {
			c := erasure.Mod(r-d, p)
			if c > p-2 || isParity(r, c) {
				continue
			}
			anti = append(anti, erasure.Coord{Row: r, Col: c})
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindAntiDiagonal,
			Parity:  erasure.Coord{Row: i, Col: p - 2 - i},
			Members: anti,
		})
	}
	for i := 0; i < rows; i++ {
		var row []erasure.Coord
		for c := 0; c <= p-2; c++ {
			if c == i {
				continue
			}
			row = append(row, erasure.Coord{Row: i, Col: c})
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindHorizontal,
			Parity:  erasure.Coord{Row: i, Col: i},
			Members: row,
		})
	}
	return erasure.New(Name, p, rows, cols, groups)
}
