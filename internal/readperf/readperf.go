// Package readperf simulates the read-performance experiments of the D-Code
// paper's §V on top of the diskmodel substrate: normal-mode read speed
// (Fig. 6) and degraded-mode read speed under every single data-disk failure
// (Fig. 7), both as raw MB/s and as average MB/s per disk.
//
// Model (see DESIGN.md §6): each operation reads L continuous data elements
// starting at an arbitrary data element of a stripe (wrapping within the
// stripe, per the paper's workload description); every touched disk accrues
// busy time from the diskmodel; the sustained read speed over the experiment
// is the requested payload divided by the bottleneck disk's total busy time,
// since the disks of a RAID array serve requests in parallel. This is what
// makes dedicated parity disks (RDP, H-Code's column p) depress read speed:
// they never absorb any of the read load.
package readperf

import (
	"fmt"
	"math/rand"
	"sort"

	"dcode/internal/diskmodel"
	"dcode/internal/erasure"
)

// Config parameterizes an experiment; zero fields take the paper's values.
type Config struct {
	Ops    int // operations per experiment (normal) or per failure case (degraded); paper: 2000 / 200
	MaxLen int // read size ∈ [1, MaxLen] elements; paper: 20
	Seed   int64
	Params diskmodel.Params
}

func (c Config) withDefaults(degraded bool) Config {
	if c.Ops == 0 {
		if degraded {
			c.Ops = 200
		} else {
			c.Ops = 2000
		}
	}
	if c.MaxLen == 0 {
		c.MaxLen = 20
	}
	if c.Params == (diskmodel.Params{}) {
		c.Params = diskmodel.DefaultParams()
	}
	return c
}

// Result is the outcome of one experiment.
type Result struct {
	Code  string
	Disks int
	// SpeedMBps is requested payload bytes divided by the bottleneck disk's
	// busy time.
	SpeedMBps float64
	// AvgSpeedMBps is SpeedMBps divided by the number of disks — the paper's
	// "average read speed contributed from each disk".
	AvgSpeedMBps float64
	// ExtraElems counts elements fetched beyond the requested ones
	// (recovery reads); zero in normal mode.
	ExtraElems int64
	// LatencyP50MS / LatencyP95MS / LatencyP99MS are per-operation latency
	// percentiles (one op = one parallel request; latency = slowest disk).
	// Degraded tails show the cost of recovery fetches landing on one disk.
	LatencyP50MS, LatencyP95MS, LatencyP99MS float64
}

// percentile returns the q-th percentile (0..100) of sorted samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func (r *Result) fillLatencies(lat []float64) {
	sort.Float64s(lat)
	r.LatencyP50MS = percentile(lat, 50)
	r.LatencyP95MS = percentile(lat, 95)
	r.LatencyP99MS = percentile(lat, 99)
}

func finish(c *erasure.Code, bytes, extra int64, bottleneckMS float64) Result {
	r := Result{Code: c.Name(), Disks: c.Cols(), ExtraElems: extra}
	if bottleneckMS > 0 {
		r.SpeedMBps = float64(bytes) / 1e6 / (bottleneckMS / 1e3)
		r.AvgSpeedMBps = r.SpeedMBps / float64(r.Disks)
	}
	return r
}

// readCoords returns the distinct data cells of a wrap-around read of l
// elements starting at data element s of a stripe.
func readCoords(c *erasure.Code, s, l int) []erasure.Coord {
	d := c.DataElems()
	if l > d {
		l = d
	}
	coords := make([]erasure.Coord, 0, l)
	for i := 0; i < l; i++ {
		coords = append(coords, c.DataCoord((s+i)%d))
	}
	return coords
}

// Normal runs the normal-mode read experiment: random start element and
// random size, all disks healthy.
func Normal(c *erasure.Code, cfg Config) Result {
	cfg = cfg.withDefaults(false)
	rng := rand.New(rand.NewSource(cfg.Seed))
	acc := diskmodel.NewBusyAccumulator(c.Cols())
	perDisk := make([][]int, c.Cols())
	var totalBytes int64
	lat := make([]float64, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		s := rng.Intn(c.DataElems())
		l := 1 + rng.Intn(cfg.MaxLen)
		for d := range perDisk {
			perDisk[d] = perDisk[d][:0]
		}
		coords := readCoords(c, s, l)
		for _, co := range coords {
			perDisk[co.Col] = append(perDisk[co.Col], co.Row)
		}
		acc.Add(perDisk, cfg.Params)
		lat = append(lat, diskmodel.RequestLatency(perDisk, cfg.Params))
		totalBytes += int64(len(coords)) * int64(cfg.Params.ElemBytes)
	}
	res := finish(c, totalBytes, 0, acc.MaxMS())
	res.fillLatencies(lat)
	return res
}

// Degraded runs the degraded-mode experiment: for every data-bearing column
// f, cfg.Ops random reads are issued while f is failed; elements on f are
// reconstructed from the parity group chosen to minimize extra fetches.
// Results aggregate payload and bottleneck time over all failure cases, as
// the paper's Fig. 7 does.
func Degraded(c *erasure.Code, cfg Config) (Result, error) {
	cfg = cfg.withDefaults(true)
	var totalBytes, totalExtra int64
	var totalMS float64
	var lat []float64
	for f := 0; f < c.Cols(); f++ {
		if !columnHasData(c, f) {
			continue
		}
		b, e, ms, l, err := degradedCase(c, cfg, f)
		if err != nil {
			return Result{}, err
		}
		totalBytes += b
		totalExtra += e
		totalMS += ms
		lat = append(lat, l...)
	}
	res := finish(c, totalBytes, totalExtra, totalMS)
	res.fillLatencies(lat)
	return res, nil
}

// DegradedForColumn runs the degraded experiment for a single failed column.
func DegradedForColumn(c *erasure.Code, cfg Config, failed int) (Result, error) {
	cfg = cfg.withDefaults(true)
	b, e, ms, lat, err := degradedCase(c, cfg, failed)
	if err != nil {
		return Result{}, err
	}
	res := finish(c, b, e, ms)
	res.fillLatencies(lat)
	return res, nil
}

func degradedCase(c *erasure.Code, cfg Config, failed int) (bytes, extra int64, bottleneckMS float64, lat []float64, err error) {
	if failed < 0 || failed >= c.Cols() {
		return 0, 0, 0, nil, fmt.Errorf("readperf: failed column %d out of range [0,%d)", failed, c.Cols())
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(failed)<<32))
	acc := diskmodel.NewBusyAccumulator(c.Cols())
	perDisk := make([][]int, c.Cols())
	for i := 0; i < cfg.Ops; i++ {
		s := rng.Intn(c.DataElems())
		l := 1 + rng.Intn(cfg.MaxLen)
		for d := range perDisk {
			perDisk[d] = perDisk[d][:0]
		}
		coords := readCoords(c, s, l)
		fetch, ex, ferr := PlanStripeFetch(c, failed, coords)
		if ferr != nil {
			return 0, 0, 0, nil, ferr
		}
		for _, co := range fetch {
			perDisk[co.Col] = append(perDisk[co.Col], co.Row)
		}
		acc.Add(perDisk, cfg.Params)
		lat = append(lat, diskmodel.RequestLatency(perDisk, cfg.Params))
		bytes += int64(len(coords)) * int64(cfg.Params.ElemBytes)
		extra += int64(ex)
	}
	return bytes, extra, acc.MaxMS(), lat, nil
}

// PlanStripeFetch computes which elements of one stripe must actually be
// read to serve a degraded read of the wanted data cells while column
// `failed` is down; it returns the cells to fetch and how many of them are
// extra recovery reads. It delegates to the erasure engine's PlanDegraded
// (see there for the group-choice policy the paper's degraded-read win
// comes from).
func PlanStripeFetch(c *erasure.Code, failed int, wanted []erasure.Coord) ([]erasure.Coord, int, error) {
	return PlanStripeFetchKinds(c, failed, wanted, nil)
}

// PlanStripeFetchKinds is PlanStripeFetch restricted to parity groups of the
// given kinds (nil allows every kind); used by ablation studies.
func PlanStripeFetchKinds(c *erasure.Code, failed int, wanted []erasure.Coord,
	kinds []erasure.GroupKind) ([]erasure.Coord, int, error) {
	plan, err := c.PlanDegraded(failed, wanted, kinds)
	if err != nil {
		return nil, 0, err
	}
	return plan.Fetch, plan.Extra, nil
}

func columnHasData(c *erasure.Code, col int) bool {
	for r := 0; r < c.Rows(); r++ {
		if c.DataIndex(r, col) >= 0 {
			return true
		}
	}
	return false
}
