package readperf

import (
	"testing"

	"dcode/internal/codes"
	"dcode/internal/erasure"
)

func TestNormalDCodeEqualsXCode(t *testing.T) {
	// The paper: "D-Code and X-Code achieve very close read speed, because
	// the data layout of them are identical" — with the same seed our
	// simulator makes them exactly equal.
	cfg := Config{Ops: 300, Seed: 5}
	d := Normal(codes.MustNew("dcode", 7), cfg)
	x := Normal(codes.MustNew("xcode", 7), cfg)
	if d.SpeedMBps != x.SpeedMBps {
		t.Fatalf("D-Code %.2f != X-Code %.2f", d.SpeedMBps, x.SpeedMBps)
	}
}

func TestNormalDCodeBeatsRDP(t *testing.T) {
	// Figure 6(a): RDP's two dedicated parity disks do not absorb read load,
	// so D-Code reads faster despite having one disk fewer.
	cfg := Config{Ops: 1000, Seed: 1}
	for _, p := range []int{5, 7, 11} {
		d := Normal(codes.MustNew("dcode", p), cfg)
		r := Normal(codes.MustNew("rdp", p), cfg)
		if d.SpeedMBps <= r.SpeedMBps {
			t.Errorf("p=%d: D-Code %.2f not above RDP %.2f", p, d.SpeedMBps, r.SpeedMBps)
		}
		if d.AvgSpeedMBps <= r.AvgSpeedMBps {
			t.Errorf("p=%d: D-Code avg %.2f not above RDP avg %.2f", p, d.AvgSpeedMBps, r.AvgSpeedMBps)
		}
	}
}

func TestNormalNoExtraElements(t *testing.T) {
	r := Normal(codes.MustNew("dcode", 5), Config{Ops: 50, Seed: 2})
	if r.ExtraElems != 0 {
		t.Fatalf("normal mode fetched %d extra elements", r.ExtraElems)
	}
	if r.Disks != 5 || r.Code != "D-Code" {
		t.Fatalf("result metadata wrong: %+v", r)
	}
	if r.SpeedMBps <= 0 || r.AvgSpeedMBps <= 0 {
		t.Fatal("speeds not positive")
	}
}

func TestDegradedDCodeBeatsXCode(t *testing.T) {
	// Figure 7(a): D-Code gains 11.6%-26.0% over X-Code because continuous
	// reads share horizontal parities with the recovery sets.
	cfg := Config{Ops: 100, Seed: 3}
	for _, p := range []int{7, 11} {
		d, err := Degraded(codes.MustNew("dcode", p), cfg)
		if err != nil {
			t.Fatal(err)
		}
		x, err := Degraded(codes.MustNew("xcode", p), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d.SpeedMBps <= x.SpeedMBps {
			t.Errorf("p=%d: D-Code degraded %.2f not above X-Code %.2f", p, d.SpeedMBps, x.SpeedMBps)
		}
		if d.ExtraElems >= x.ExtraElems {
			t.Errorf("p=%d: D-Code extra reads %d not below X-Code %d", p, d.ExtraElems, x.ExtraElems)
		}
	}
}

func TestDegradedSlowerThanNormal(t *testing.T) {
	for _, id := range []string{"dcode", "rdp", "xcode", "hcode", "hdp"} {
		c := codes.MustNew(id, 7)
		n := Normal(c, Config{Ops: 200, Seed: 4})
		d, err := Degraded(c, Config{Ops: 200, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if d.SpeedMBps >= n.SpeedMBps {
			t.Errorf("%s: degraded %.2f not below normal %.2f", id, d.SpeedMBps, n.SpeedMBps)
		}
	}
}

func TestDegradedForColumnValidation(t *testing.T) {
	c := codes.MustNew("dcode", 5)
	if _, err := DegradedForColumn(c, Config{Ops: 10}, -1); err == nil {
		t.Fatal("negative column accepted")
	}
	if _, err := DegradedForColumn(c, Config{Ops: 10}, 5); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	r, err := DegradedForColumn(c, Config{Ops: 10, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedMBps <= 0 {
		t.Fatal("no throughput for a valid degraded case")
	}
}

func TestPlanStripeFetchNoLoss(t *testing.T) {
	c := codes.MustNew("dcode", 7)
	wanted := []erasure.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	fetch, extra, err := PlanStripeFetch(c, 5, wanted) // column 5 failed, not wanted
	if err != nil {
		t.Fatal(err)
	}
	if extra != 0 || len(fetch) != 2 {
		t.Fatalf("fetch=%v extra=%d, want the 2 wanted cells and no extras", fetch, extra)
	}
}

func TestPlanStripeFetchRecoversLostCell(t *testing.T) {
	c := codes.MustNew("dcode", 7)
	lost := erasure.Coord{Row: 1, Col: 3}
	fetch, extra, err := PlanStripeFetch(c, 3, []erasure.Coord{lost})
	if err != nil {
		t.Fatal(err)
	}
	if extra == 0 || len(fetch) == 0 {
		t.Fatal("no recovery reads planned for a lost element")
	}
	// The fetched set plus the lost element must cover one full parity group
	// of the lost element.
	set := map[erasure.Coord]bool{lost: true}
	for _, co := range fetch {
		if co.Col == 3 {
			t.Fatalf("planned a read from the failed disk: %v", co)
		}
		set[co] = true
	}
	covered := false
	for _, gi := range c.MemberOf(lost.Row, lost.Col) {
		g := c.Groups()[gi]
		all := set[g.Parity]
		for _, m := range g.Members {
			if !set[m] {
				all = false
				break
			}
		}
		if all {
			covered = true
		}
	}
	if !covered {
		t.Fatal("fetched set cannot reconstruct the lost element")
	}
}

// A full-row read containing a lost D-Code element should recover it almost
// for free: the horizontal group overlaps the requested range.
func TestPlanStripeFetchSharesHorizontalParity(t *testing.T) {
	c := codes.MustNew("dcode", 7)
	// Request the first horizontal group's span: data elements 0..4.
	var wanted []erasure.Coord
	for i := 0; i < 5; i++ {
		wanted = append(wanted, c.DataCoord(i))
	}
	failed := wanted[2].Col
	_, extra, err := PlanStripeFetch(c, failed, wanted)
	if err != nil {
		t.Fatal(err)
	}
	// Only the shared horizontal parity element needs to be fetched.
	if extra != 1 {
		t.Fatalf("extra = %d, want 1 (just the shared horizontal parity)", extra)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(false)
	if cfg.Ops != 2000 || cfg.MaxLen != 20 || cfg.Params.ElemBytes == 0 {
		t.Fatalf("normal defaults wrong: %+v", cfg)
	}
	cfg = Config{}.withDefaults(true)
	if cfg.Ops != 200 {
		t.Fatalf("degraded default ops = %d, want the paper's 200", cfg.Ops)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	c := codes.MustNew("dcode", 7)
	n := Normal(c, Config{Ops: 500, Seed: 6})
	if !(n.LatencyP50MS > 0 && n.LatencyP50MS <= n.LatencyP95MS && n.LatencyP95MS <= n.LatencyP99MS) {
		t.Fatalf("normal percentiles out of order: %v %v %v", n.LatencyP50MS, n.LatencyP95MS, n.LatencyP99MS)
	}
	d, err := Degraded(c, Config{Ops: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Degraded tails must be at least as heavy as normal ones.
	if d.LatencyP99MS < n.LatencyP99MS {
		t.Fatalf("degraded p99 %.2f below normal p99 %.2f", d.LatencyP99MS, n.LatencyP99MS)
	}
}
