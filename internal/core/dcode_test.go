package core

import (
	"testing"
	"testing/quick"

	"dcode/internal/erasure"
	"dcode/internal/xcode"
)

var testPrimes = []int{5, 7, 11, 13}

func mustNew(t *testing.T, n int) *erasure.Code {
	t.Helper()
	c, err := New(n)
	if err != nil {
		t.Fatalf("New(%d): %v", n, err)
	}
	return c
}

func TestNewRejectsBadParameters(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 2, 3, 4, 6, 9, 15, 21} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) accepted; want error (prime ≥ 5 required)", n)
		}
	}
}

func TestGeometry(t *testing.T) {
	for _, n := range testPrimes {
		c := mustNew(t, n)
		if c.Rows() != n || c.Cols() != n {
			t.Fatalf("n=%d: geometry %d×%d, want %d×%d", n, c.Rows(), c.Cols(), n, n)
		}
		if c.DataElems() != n*(n-2) {
			t.Fatalf("n=%d: data elements = %d, want %d", n, c.DataElems(), n*(n-2))
		}
		if len(c.Groups()) != 2*n {
			t.Fatalf("n=%d: groups = %d, want %d", n, len(c.Groups()), 2*n)
		}
		// Parities confined to the last two rows; data in the rest.
		for r := 0; r < n; r++ {
			for col := 0; col < n; col++ {
				isParity := c.IsParity(r, col)
				if (r >= n-2) != isParity {
					t.Fatalf("n=%d: cell (%d,%d) parity=%v, want parity exactly in last 2 rows", n, r, col, isParity)
				}
			}
		}
		if c.DataColumns() != n {
			t.Fatalf("n=%d: DataColumns = %d, want %d (all disks serve reads)", n, c.DataColumns(), n)
		}
	}
}

func TestDeploymentWalkIsSingleCycleCoveringAllData(t *testing.T) {
	for _, n := range testPrimes {
		walk := DeploymentWalk(n)
		if len(walk) != n*(n-2) {
			t.Fatalf("n=%d: walk length = %d, want %d", n, len(walk), n*(n-2))
		}
		seen := make(map[erasure.Coord]bool, len(walk))
		for _, co := range walk {
			if co.Row < 0 || co.Row > n-3 || co.Col < 0 || co.Col > n-1 {
				t.Fatalf("n=%d: walk leaves the data area at %v", n, co)
			}
			if seen[co] {
				t.Fatalf("n=%d: walk revisits %v", n, co)
			}
			seen[co] = true
		}
	}
}

func TestDeploymentWalkMatchesPaperExample(t *testing.T) {
	// Paper §III-A: for n=7 the 0th..4th deployment elements are
	// D0,0 D0,6 D1,5 D2,4 D3,3.
	want := []erasure.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 6}, {Row: 1, Col: 5}, {Row: 2, Col: 4}, {Row: 3, Col: 3}}
	walk := DeploymentWalk(7)
	for i, w := range want {
		if walk[i] != w {
			t.Fatalf("deployment element %d = %v, want %v", i, walk[i], w)
		}
	}
}

func TestHorizontalGroupMatchesPaperExample(t *testing.T) {
	// Paper §III-A: for n=7, the 10th..14th horizontal elements
	// D1,3 D1,4 D1,5 D1,6 D2,0 share parity P(5,1).
	c := mustNew(t, 7)
	gi := c.ParityGroup(5, 1)
	if gi < 0 {
		t.Fatal("no parity at (5,1)")
	}
	g := c.Groups()[gi]
	want := []erasure.Coord{{Row: 1, Col: 3}, {Row: 1, Col: 4}, {Row: 1, Col: 5}, {Row: 1, Col: 6}, {Row: 2, Col: 0}}
	if len(g.Members) != len(want) {
		t.Fatalf("P(5,1) has %d members, want %d", len(g.Members), len(want))
	}
	for i, m := range g.Members {
		if m != want[i] {
			t.Fatalf("P(5,1) member %d = %v, want %v", i, m, want[i])
		}
	}
	if g.Kind != erasure.KindHorizontal {
		t.Fatalf("P(5,1) kind = %v", g.Kind)
	}
}

func TestDeploymentGroupMatchesPaperExample(t *testing.T) {
	// Paper §III-A: for n=7, letter 'A' = D0,0 D0,6 D1,5 D2,4 D3,3 with
	// parity P(6,2).
	c := mustNew(t, 7)
	gi := c.ParityGroup(6, 2)
	if gi < 0 {
		t.Fatal("no parity at (6,2)")
	}
	g := c.Groups()[gi]
	want := []erasure.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 6}, {Row: 1, Col: 5}, {Row: 2, Col: 4}, {Row: 3, Col: 3}}
	if len(g.Members) != len(want) {
		t.Fatalf("P(6,2) has %d members, want %d", len(g.Members), len(want))
	}
	for i, m := range g.Members {
		if m != want[i] {
			t.Fatalf("P(6,2) member %d = %v, want %v", i, m, want[i])
		}
	}
	if g.Kind != erasure.KindDeployment {
		t.Fatalf("P(6,2) kind = %v", g.Kind)
	}
}

// The procedural four-step construction must agree with the closed forms of
// Eqs. (1) and (2).
func TestProceduralMatchesClosedForm(t *testing.T) {
	for _, n := range testPrimes {
		c := mustNew(t, n)
		for i := 0; i < n; i++ {
			hg := c.Groups()[c.ParityGroup(n-2, i)]
			assertSameSet(t, n, "horizontal", i, hg.Members, ClosedFormHorizontalMembers(n, i))
			dg := c.Groups()[c.ParityGroup(n-1, i)]
			assertSameSet(t, n, "deployment", i, dg.Members, ClosedFormDeploymentMembers(n, i))
		}
	}
}

func assertSameSet(t *testing.T, n int, kind string, i int, got, want []erasure.Coord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("n=%d %s parity %d: %d members, closed form has %d", n, kind, i, len(got), len(want))
	}
	set := make(map[erasure.Coord]bool, len(got))
	for _, m := range got {
		set[m] = true
	}
	for _, m := range want {
		if !set[m] {
			t.Fatalf("n=%d %s parity %d: closed-form member %v missing from procedural group", n, kind, i, m)
		}
	}
}

// Every data element belongs to exactly one horizontal and one deployment
// group — the optimal update complexity of §III-D.
func TestEachDataElementInExactlyTwoGroups(t *testing.T) {
	for _, n := range testPrimes {
		c := mustNew(t, n)
		for idx := 0; idx < c.DataElems(); idx++ {
			co := c.DataCoord(idx)
			gs := c.MemberOf(co.Row, co.Col)
			if len(gs) != 2 {
				t.Fatalf("n=%d: data %v in %d groups, want 2", n, co, len(gs))
			}
			kinds := map[erasure.GroupKind]bool{}
			for _, gi := range gs {
				kinds[c.Groups()[gi].Kind] = true
			}
			if !kinds[erasure.KindHorizontal] || !kinds[erasure.KindDeployment] {
				t.Fatalf("n=%d: data %v not in one group of each kind", n, co)
			}
		}
	}
}

// Each group must touch each column at most once — the property that
// guarantees the peeling decoder always finds a starting equation.
func TestGroupsTouchEachColumnOnce(t *testing.T) {
	for _, n := range testPrimes {
		c := mustNew(t, n)
		for gi, g := range c.Groups() {
			cols := map[int]bool{g.Parity.Col: true}
			for _, m := range g.Members {
				if cols[m.Col] {
					t.Fatalf("n=%d: group %d touches column %d twice", n, gi, m.Col)
				}
				cols[m.Col] = true
			}
		}
	}
}

// Theorem 1: reordering each column of X-Code with
// E(i,j) -> N(<(n-3)/2·(j-i)>_{n-2}, j) yields D-Code. We check it
// behaviourally: fill a D-Code stripe, build the X-Code stripe whose cell
// (i,j) holds the D-Code data at the mapped coordinate, encode both, and
// require identical parity rows.
func TestTheorem1XCodeReordering(t *testing.T) {
	for _, n := range testPrimes {
		dc := mustNew(t, n)
		xc, err := xcode.New(n)
		if err != nil {
			t.Fatal(err)
		}
		ds := dc.NewStripe(8)
		ds.Fill(uint64(n))
		xs := xc.NewStripe(8)
		for i := 0; i < n-2; i++ {
			for j := 0; j < n; j++ {
				copy(xs.Elem(i, j), ds.Elem(XCodeRowFor(n, i, j), j))
			}
		}
		dc.Encode(ds)
		xc.Encode(xs)
		for r := n - 2; r < n; r++ {
			for j := 0; j < n; j++ {
				de, xe := ds.Elem(r, j), xs.Elem(r, j)
				for b := range de {
					if de[b] != xe[b] {
						t.Fatalf("n=%d: parity (%d,%d) differs between D-Code and reordered X-Code", n, r, j)
					}
				}
			}
		}
	}
}

func TestMDS(t *testing.T) {
	for _, n := range testPrimes {
		if testing.Short() && n > 7 {
			continue
		}
		if err := erasure.VerifyMDS(mustNew(t, n), 16); err != nil {
			t.Fatal(err)
		}
	}
}

// Paper Fig. 3: recovering disks 2 and 3 at n=7 starts from parities that
// avoid both failed columns and proceeds in two chains; the full chain
// recovers all 14 lost elements, and the first recovered element is D(1,3)
// via P(5,1) per the paper's walk-through.
func TestRecoveryChainFigure3(t *testing.T) {
	c := mustNew(t, 7)
	xors, chain, err := c.SymbolicDecode(2, 3)
	if err != nil {
		t.Fatalf("peeling stalled: %v", err)
	}
	if len(chain) != 14 {
		t.Fatalf("chain recovered %d elements, want 14", len(chain))
	}
	found := false
	for _, co := range chain[:4] {
		if co == (erasure.Coord{Row: 1, Col: 3}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("D(1,3) not among the first recovered elements: %v", chain[:4])
	}
	// Optimal decode complexity: n-3 XORs per lost element (paper §III-D).
	if want := 14 * (7 - 3); xors != want {
		t.Fatalf("decode cost = %d XORs, want %d", xors, want)
	}
}

// §III-D: optimal encoding complexity 2 - 2/(n-2) XORs per data element and
// optimal update complexity of exactly 2 parity updates per data element.
func TestFeatureMetrics(t *testing.T) {
	for _, n := range testPrimes {
		c := mustNew(t, n)
		m := c.ComputeMetrics()
		want := 2.0 - 2.0/float64(n-2)
		if diff := m.EncodeXORPerData - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("n=%d: encode XOR/data = %v, want %v", n, m.EncodeXORPerData, want)
		}
		if m.UpdateAvg != 2 || m.UpdateMax != 2 {
			t.Fatalf("n=%d: update complexity avg=%v max=%d, want exactly 2", n, m.UpdateAvg, m.UpdateMax)
		}
		if m.StorageEfficiency != float64(n-2)/float64(n) {
			t.Fatalf("n=%d: storage efficiency = %v", n, m.StorageEfficiency)
		}
		avg, stalled := c.DecodeXORPerLost()
		if stalled != 0 {
			t.Fatalf("n=%d: %d column pairs stalled peeling", n, stalled)
		}
		if want := float64(n - 3); avg != want {
			t.Fatalf("n=%d: decode XOR/lost = %v, want %v", n, avg, want)
		}
	}
}

// Property test: random double erasures round-trip at a larger prime.
func TestReconstructQuick(t *testing.T) {
	c := mustNew(t, 11)
	f := func(seed uint64, a, b uint8) bool {
		f1 := int(a) % c.Cols()
		f2 := int(b) % c.Cols()
		s := c.NewStripe(8)
		s.Fill(seed)
		c.Encode(s)
		want := s.Clone()
		failed := []int{f1}
		if f2 != f1 {
			failed = append(failed, f2)
		}
		for _, col := range failed {
			for r := 0; r < c.Rows(); r++ {
				e := s.Elem(r, col)
				for i := range e {
					e[i] = 0x5C
				}
			}
		}
		if err := c.Reconstruct(s, failed...); err != nil {
			return false
		}
		return s.Equal(want)
	}
	cfg := &quick.Config{MaxCount: 100}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property test: single random element updates keep the stripe consistent.
func TestUpdateDataQuick(t *testing.T) {
	c := mustNew(t, 7)
	s := c.NewStripe(8)
	s.Fill(123)
	c.Encode(s)
	f := func(idx uint16, val uint64) bool {
		co := c.DataCoord(int(idx) % c.DataElems())
		nv := make([]byte, 8)
		for i := range nv {
			nv[i] = byte(val >> (8 * i))
		}
		c.UpdateData(s, co.Row, co.Col, nv)
		return c.Verify(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
