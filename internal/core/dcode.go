// Package core implements D-Code, the RAID-6 MDS array code of Fu & Shu
// (IPDPS 2015), the primary contribution this repository reproduces.
//
// A D-Code stripe is an n×n matrix, n prime. Rows 0..n-3 hold data, row n-2
// holds the horizontal parities and row n-1 the deployment parities:
//
//   - Horizontal parity groups are runs of n-2 *consecutive* data elements in
//     row-major order (wrapping from the end of one row to the start of the
//     next); consecutive logical data therefore shares parities, which is
//     what drives the paper's low partial-write I/O cost and fast degraded
//     reads.
//   - Deployment parity groups are runs of n-2 consecutive elements along the
//     "deployment walk" (below-left steps with the row index taken mod n-2,
//     jumping from column 0 to the end of the same row), a special diagonal
//     that lets all parities land evenly in the last two rows.
//
// The package exposes the procedural construction (the four-step rules of
// paper §III-A), the closed forms of Eqs. (1) and (2), and the column
// reordering of Theorem 1 relating D-Code to X-Code; the test suite checks
// all three against each other.
package core

import (
	"fmt"

	"dcode/internal/erasure"
)

// Name is the code's display name.
const Name = "D-Code"

// New constructs the D-Code over n disks. n must be a prime ≥ 5 (the paper's
// construction needs at least one data row and an odd prime so that the
// deployment walk is a single cycle).
func New(n int) (*erasure.Code, error) {
	if !erasure.IsPrime(n) || n < 5 {
		return nil, fmt.Errorf("dcode: n = %d is not a prime ≥ 5", n)
	}
	groups := make([]erasure.Group, 0, 2*n)

	// Horizontal groups (paper §III-A steps 1-4): walk data cells row-major,
	// cut into n runs of n-2; the run whose last cell is (x, y) stores its
	// parity at (n-2, <y+1>_n).
	hw := HorizontalWalk(n)
	for g := 0; g < n; g++ {
		run := hw[g*(n-2) : (g+1)*(n-2)]
		last := run[len(run)-1]
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindHorizontal,
			Parity:  erasure.Coord{Row: n - 2, Col: erasure.Mod(last.Col+1, n)},
			Members: append([]erasure.Coord(nil), run...),
		})
	}

	// Deployment groups: walk data cells along the deployment order, cut into
	// n runs of n-2; run g stores its parity at (n-1, <2(g+1)>_n).
	dw := DeploymentWalk(n)
	for g := 0; g < n; g++ {
		run := dw[g*(n-2) : (g+1)*(n-2)]
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindDeployment,
			Parity:  erasure.Coord{Row: n - 1, Col: erasure.Mod(2*(g+1), n)},
			Members: append([]erasure.Coord(nil), run...),
		})
	}

	return erasure.New(Name, n, n, n, groups)
}

// HorizontalWalk returns the n(n-2) data coordinates in the paper's
// "next horizontal element" order: row-major over the data rows, wrapping
// from (i, n-1) to (i+1, 0).
func HorizontalWalk(n int) []erasure.Coord {
	walk := make([]erasure.Coord, 0, n*(n-2))
	for r := 0; r < n-2; r++ {
		for c := 0; c < n; c++ {
			walk = append(walk, erasure.Coord{Row: r, Col: c})
		}
	}
	return walk
}

// DeploymentWalk returns the n(n-2) data coordinates in the paper's
// "next deployment element" order starting from (0,0): from (i, 0) the next
// element is (i, n-1); otherwise it is (<i+1>_{n-2}, j-1).
// The walk is a single cycle over all data cells for prime n; the constructor
// relies on that and the tests assert it.
func DeploymentWalk(n int) []erasure.Coord {
	total := n * (n - 2)
	walk := make([]erasure.Coord, 0, total)
	cur := erasure.Coord{Row: 0, Col: 0}
	for len(walk) < total {
		walk = append(walk, cur)
		if cur.Col == 0 {
			cur = erasure.Coord{Row: cur.Row, Col: n - 1}
		} else {
			cur = erasure.Coord{Row: erasure.Mod(cur.Row+1, n-2), Col: cur.Col - 1}
		}
	}
	return walk
}

// ClosedFormHorizontalMembers returns the member set of the horizontal
// parity stored at column i of row n-2, straight from Eq. (1) of the paper:
//
//	P(n-2, i) = XOR_{j=0}^{n-3} D( <(n-3)/2 · (<i+j+2>_n - j)>_{n-2}, <i+j+2>_n )
//
// It exists so the tests can check the procedural construction against the
// paper's algebra; New uses the procedural walk.
func ClosedFormHorizontalMembers(n, i int) []erasure.Coord {
	members := make([]erasure.Coord, 0, n-2)
	for j := 0; j <= n-3; j++ {
		col := erasure.Mod(i+j+2, n)
		row := erasure.Mod((n-3)/2*(col-j), n-2)
		members = append(members, erasure.Coord{Row: row, Col: col})
	}
	return members
}

// ClosedFormDeploymentMembers returns the member set of the deployment
// parity stored at column i of row n-1, straight from Eq. (2) of the paper:
//
//	P(n-1, i) = XOR_{j=0}^{n-3} D( <(n-3)/2 · (<i-j-2>_n - j)>_{n-2}, <i-j-2>_n )
func ClosedFormDeploymentMembers(n, i int) []erasure.Coord {
	members := make([]erasure.Coord, 0, n-2)
	for j := 0; j <= n-3; j++ {
		col := erasure.Mod(i-j-2, n)
		row := erasure.Mod((n-3)/2*(col-j), n-2)
		members = append(members, erasure.Coord{Row: row, Col: col})
	}
	return members
}

// XCodeRowFor implements the reordering of Theorem 1: data cell (i, j) of
// X-Code corresponds to data cell (<(n-3)/2 · (j-i)>_{n-2}, j) of D-Code.
// Parity rows (n-2 and n-1) map to themselves.
func XCodeRowFor(n, i, j int) int {
	if i >= n-2 {
		return i
	}
	return erasure.Mod((n-3)/2*(j-i), n-2)
}
