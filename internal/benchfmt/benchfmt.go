// Package benchfmt defines the machine-readable benchmark artifact of
// cmd/bench (`BENCH_<rev>.json`) and the regression comparator CI runs over
// two such files. The format separates deterministic metrics (per-disk load
// counts and their coefficient of variation, XOR volume — identical for a
// given seed on every machine) from timing metrics (ns/op, MB/s, p99 — only
// comparable between runs on the same machine), so a baseline committed from
// one machine can still gate load-balance regressions in CI: files written
// with Timing=false carry no timing numbers, and Compare only checks timing
// when both sides have it.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion identifies the file layout; bump on incompatible change.
const SchemaVersion = 1

// File is one benchmark artifact: the full code × workload matrix of one run.
type File struct {
	Schema    int    `json:"schema"`
	Rev       string `json:"rev"`
	GoVersion string `json:"go_version,omitempty"`
	// Timing records whether the run's timing fields are meaningful.
	// Committed baselines set it false so cross-machine comparisons only
	// gate on deterministic metrics.
	Timing  bool     `json:"timing"`
	Config  Config   `json:"config"`
	Results []Result `json:"results"`
}

// Config records the matrix parameters so two files can be checked for
// comparability.
type Config struct {
	P        int   `json:"p"`
	ElemSize int   `json:"elem_size"`
	Stripes  int64 `json:"stripes"`
	Ops      int   `json:"ops"`
	MaxLen   int   `json:"max_len"`
	MaxTimes int   `json:"max_times"`
	Seed     int64 `json:"seed"`
	Quick    bool  `json:"quick"`
	// Concurrency is the array's fan-out bound (0 = the tool's default,
	// serial). It is part of the config identity: concurrent runs interleave
	// device ops differently, so only like-for-like runs gate load metrics.
	Concurrency int `json:"concurrency,omitempty"`
	// CacheBytes is the element-cache budget passed to the "+cache" cells
	// (0 = the run had no cache scenario). Part of the config identity like
	// Concurrency: cached runs issue different device ops.
	CacheBytes int64 `json:"cache_bytes,omitempty"`
	// DelayNs and PerByteNs are the blockdev.Delayed service-time model
	// applied to every device (0 = raw MemDevice). Timing under a delay model
	// measures scheduling — coalescing, vectoring, batching — rather than
	// memcpy speed, so delayed runs only compare against delayed baselines.
	DelayNs   int64 `json:"delay_ns,omitempty"`
	PerByteNs int64 `json:"per_byte_ns,omitempty"`
	// AsyncDepth is the WithAsyncIO queue depth (0 = the default synchronous
	// arrays). Part of the config identity: the async scheduler overlaps
	// device ops, so async runs only compare against async baselines.
	AsyncDepth int `json:"async_depth,omitempty"`
	// MaxInflight bounds concurrent ops per Delayed device (0 = unlimited).
	// It makes queue-depth effects visible on the in-memory service model and
	// is config identity for the same reason as DelayNs.
	MaxInflight int `json:"max_inflight,omitempty"`
}

// Result is one cell of the matrix: one code under one workload profile.
type Result struct {
	Code     string `json:"code"`
	Workload string `json:"workload"`

	// Deterministic metrics.
	Executions   int64   `json:"executions"`  // operation executions (T expansions)
	BytesMoved   int64   `json:"bytes_moved"` // logical bytes read+written
	PerDisk      []int64 `json:"per_disk"`    // device ops per column
	LoadCV       float64 `json:"load_cv"`     // coefficient of variation of PerDisk
	LoadLF       float64 `json:"load_lf"`     // Lmax/Lmin (paper Eq. 8), -1 for +Inf
	EncodeXOROps int64   `json:"encode_xor_ops"`
	DecodeXOROps int64   `json:"decode_xor_ops"`

	// Element-cache metrics, populated only for "+cache" cells (and therefore
	// omitted from cache-off artifacts, keeping old baselines byte-identical).
	// Deterministic for serial runs: the cache's shard count is fixed, so the
	// hit/eviction sequence depends only on the op stream.
	CacheHits      int64   `json:"cache_hits,omitempty"`
	CacheMisses    int64   `json:"cache_misses,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate,omitempty"`
	DeviceReadOps  int64   `json:"device_read_ops,omitempty"`  // element reads that reached devices
	DeviceOpsSaved int64   `json:"device_ops_saved,omitempty"` // element reads served from cache
	// RMWAbsorbed is the subset of DeviceOpsSaved that were read-modify-write
	// old-data/old-parity pre-reads — the paper's 4-I/O small-write penalty
	// the cache removes.
	RMWAbsorbed int64 `json:"rmw_prereads_absorbed,omitempty"`

	// Network load-test fields, populated only by cmd/loadgen artifacts
	// (omitted from cmd/bench artifacts, so old baselines stay
	// byte-identical). Clients is the concurrent-client count of the run and
	// part of the cell's identity for human readers; Errors counts failed or
	// corrupt operations and gates unconditionally — see Compare.
	Clients int   `json:"clients,omitempty"`
	Errors  int64 `json:"errors,omitempty"`

	// Timing metrics; zero and omitted when the file has Timing=false.
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	OpsPerSec   float64 `json:"ops_per_s,omitempty"`
	ReadP50Ns   int64   `json:"read_p50_ns,omitempty"`
	ReadP95Ns   int64   `json:"read_p95_ns,omitempty"`
	ReadP99Ns   int64   `json:"read_p99_ns,omitempty"`
	ReadP999Ns  int64   `json:"read_p999_ns,omitempty"`
	WriteP50Ns  int64   `json:"write_p50_ns,omitempty"`
	WriteP95Ns  int64   `json:"write_p95_ns,omitempty"`
	WriteP99Ns  int64   `json:"write_p99_ns,omitempty"`
	WriteP999Ns int64   `json:"write_p999_ns,omitempty"`
}

// StripTiming clears the timing fields and marks the file non-timing; used
// when committing a baseline.
func (f *File) StripTiming() {
	f.Timing = false
	for i := range f.Results {
		f.Results[i].NsPerOp = 0
		f.Results[i].MBPerSec = 0
		f.Results[i].OpsPerSec = 0
		f.Results[i].ReadP50Ns = 0
		f.Results[i].ReadP95Ns = 0
		f.Results[i].ReadP99Ns = 0
		f.Results[i].ReadP999Ns = 0
		f.Results[i].WriteP50Ns = 0
		f.Results[i].WriteP95Ns = 0
		f.Results[i].WriteP99Ns = 0
		f.Results[i].WriteP999Ns = 0
	}
}

// WriteFile marshals f to path, indented for diffability.
func WriteFile(path string, f File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile loads and validates a benchmark artifact.
func ReadFile(path string) (File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return File{}, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if f.Schema != SchemaVersion {
		return File{}, fmt.Errorf("benchfmt: %s: schema %d, this tool reads %d", path, f.Schema, SchemaVersion)
	}
	if len(f.Results) == 0 {
		return File{}, fmt.Errorf("benchfmt: %s: no results", path)
	}
	return f, nil
}

// Regression is one comparator finding.
type Regression struct {
	Code     string
	Workload string
	Metric   string
	Base     float64
	Current  float64
	// Ratio is Current/Base for higher-is-worse metrics and Base/Current
	// for lower-is-worse ones, so >1 always means "worse".
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s/%s: %s regressed %.1f%% (base %.4g, current %.4g)",
		r.Code, r.Workload, r.Metric, (r.Ratio-1)*100, r.Base, r.Current)
}

// Compare checks current against base and returns every regression beyond
// threshold (0.10 = fail when a metric is more than 10% worse).
//
// Rules:
//   - results are matched by (code, workload); a pair present in base but
//     missing from current is reported as a "coverage" regression;
//   - load_cv is compared whenever both sides ran an identical config
//     (higher is worse; an absolute slack of 0.01 avoids flagging noise
//     around perfectly balanced codes);
//   - the cache metrics are compared under the same identical-config rule,
//     and only for cells where both sides carry them: a falling hit rate, a
//     drop in device ops saved, or a rise in device reads fails the gate —
//     a cache-efficiency regression is an I/O regression even when timing
//     cannot be trusted;
//   - ns/op, p99 and MB/s are compared only when BOTH files carry timing
//     (higher ns/op and p99 are worse, lower MB/s is worse).
func Compare(base, current File, threshold float64) []Regression {
	cur := make(map[[2]string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[[2]string{r.Code, r.Workload}] = r
	}
	timing := base.Timing && current.Timing
	// Per-disk loads are only deterministic for an identical op stream, and
	// any config field (geometry included) changes that stream.
	sameWork := base.Config == current.Config

	var regs []Regression
	worse := func(b Result, metric string, baseV, curV float64, lowerIsBetter bool) {
		if baseV <= 0 || curV <= 0 {
			return
		}
		ratio := curV / baseV
		if lowerIsBetter {
			ratio = baseV / curV
		}
		if ratio > 1+threshold {
			regs = append(regs, Regression{
				Code: b.Code, Workload: b.Workload, Metric: metric,
				Base: baseV, Current: curV, Ratio: ratio,
			})
		}
	}

	for _, b := range base.Results {
		c, ok := cur[[2]string{b.Code, b.Workload}]
		if !ok {
			regs = append(regs, Regression{
				Code: b.Code, Workload: b.Workload, Metric: "coverage",
				Base: 1, Current: 0, Ratio: 2,
			})
			continue
		}
		// Errors gate unconditionally — independent of machine speed, timing
		// comparability and config identity, a run that produced op or data
		// errors where the baseline had fewer is broken, not slow. (Both
		// sides are zero for cmd/bench artifacts, which never set the field.)
		if c.Errors > b.Errors {
			regs = append(regs, Regression{
				Code: b.Code, Workload: b.Workload, Metric: "errors",
				Base: float64(b.Errors), Current: float64(c.Errors), Ratio: 2,
			})
		}
		if sameWork {
			// CV is dimensionless and deterministic; gate with a small
			// absolute slack on top of the relative threshold.
			if c.LoadCV > b.LoadCV*(1+threshold)+0.01 {
				ratio := 2.0
				if b.LoadCV > 0 {
					ratio = c.LoadCV / b.LoadCV
				}
				regs = append(regs, Regression{
					Code: b.Code, Workload: b.Workload, Metric: "load_cv",
					Base: b.LoadCV, Current: c.LoadCV, Ratio: ratio,
				})
			}
			// worse() skips cells where either side lacks the metric, so
			// cache-off artifacts are unaffected.
			worse(b, "cache_hit_rate", b.CacheHitRate, c.CacheHitRate, true)
			worse(b, "device_ops_saved", float64(b.DeviceOpsSaved), float64(c.DeviceOpsSaved), true)
			worse(b, "device_read_ops", float64(b.DeviceReadOps), float64(c.DeviceReadOps), false)
		}
		if timing {
			worse(b, "ns_per_op", b.NsPerOp, c.NsPerOp, false)
			worse(b, "read_p99_ns", float64(b.ReadP99Ns), float64(c.ReadP99Ns), false)
			worse(b, "write_p99_ns", float64(b.WriteP99Ns), float64(c.WriteP99Ns), false)
			worse(b, "read_p999_ns", float64(b.ReadP999Ns), float64(c.ReadP999Ns), false)
			worse(b, "write_p999_ns", float64(b.WriteP999Ns), float64(c.WriteP999Ns), false)
			worse(b, "mb_per_s", b.MBPerSec, c.MBPerSec, true)
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs
}
