package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

func sample(timing bool) File {
	f := File{
		Schema: SchemaVersion,
		Rev:    "test",
		Timing: timing,
		Config: Config{P: 5, ElemSize: 512, Stripes: 16, Ops: 100, MaxLen: 20, MaxTimes: 2, Seed: 42},
		Results: []Result{
			{
				Code: "dcode", Workload: "Read-Only",
				Executions: 1000, BytesMoved: 1 << 20,
				PerDisk: []int64{100, 100, 100, 100, 100},
				LoadCV:  0.05, LoadLF: 1.2, EncodeXOROps: 500,
				NsPerOp: 10000, MBPerSec: 200, ReadP99Ns: 50000, WriteP99Ns: 60000,
			},
			{
				Code: "rdp", Workload: "Read-Only",
				Executions: 1000, BytesMoved: 1 << 20,
				PerDisk: []int64{120, 120, 120, 0, 0},
				LoadCV:  0.8, LoadLF: -1, EncodeXOROps: 600,
				NsPerOp: 12000, MBPerSec: 180, ReadP99Ns: 52000, WriteP99Ns: 61000,
			},
		},
	}
	if !timing {
		f.StripTiming()
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := sample(true)
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != want.Rev || len(got.Results) != len(want.Results) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Results[0].LoadCV != want.Results[0].LoadCV {
		t.Fatalf("load_cv changed: %v", got.Results[0].LoadCV)
	}
}

func TestReadFileRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	f := sample(true)
	f.Schema = SchemaVersion + 1
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

// Identical files must compare clean — the acceptance criterion's zero case.
func TestCompareIdenticalClean(t *testing.T) {
	f := sample(true)
	if regs := Compare(f, f, 0.10); len(regs) != 0 {
		t.Fatalf("identical files flagged: %v", regs)
	}
}

// A synthetic 15%-slower current file must fail a 10% gate — the acceptance
// criterion's non-zero case.
func TestCompareFlagsFifteenPercentSlower(t *testing.T) {
	base := sample(true)
	slow := sample(true)
	for i := range slow.Results {
		slow.Results[i].NsPerOp *= 1.15
		slow.Results[i].MBPerSec /= 1.15
	}
	regs := Compare(base, slow, 0.10)
	if len(regs) == 0 {
		t.Fatal("15% slowdown not flagged at a 10% threshold")
	}
	foundNs := false
	for _, r := range regs {
		if r.Metric == "ns_per_op" {
			foundNs = true
			if r.Ratio < 1.14 || r.Ratio > 1.16 {
				t.Fatalf("ns_per_op ratio %v, want ≈1.15", r.Ratio)
			}
		}
	}
	if !foundNs {
		t.Fatalf("ns_per_op missing from %v", regs)
	}
}

func TestCompareWithinThresholdClean(t *testing.T) {
	base := sample(true)
	ok := sample(true)
	for i := range ok.Results {
		ok.Results[i].NsPerOp *= 1.05
	}
	if regs := Compare(base, ok, 0.10); len(regs) != 0 {
		t.Fatalf("5%% drift flagged at a 10%% threshold: %v", regs)
	}
}

// Timing comparison must be skipped when either side lacks timing — that is
// what lets a cross-machine baseline live in git.
func TestCompareSkipsTimingAgainstStrippedBaseline(t *testing.T) {
	base := sample(false)
	slow := sample(true)
	for i := range slow.Results {
		slow.Results[i].NsPerOp *= 3
	}
	if regs := Compare(base, slow, 0.10); len(regs) != 0 {
		t.Fatalf("timing compared against a non-timing baseline: %v", regs)
	}
}

func TestCompareFlagsLoadCVRegression(t *testing.T) {
	base := sample(false)
	cur := sample(false)
	cur.Results[0].LoadCV = base.Results[0].LoadCV*1.5 + 0.02
	regs := Compare(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Metric != "load_cv" {
		t.Fatalf("want one load_cv regression, got %v", regs)
	}
}

func TestCompareSkipsCVOnDifferentWorkloads(t *testing.T) {
	base := sample(false)
	cur := sample(false)
	cur.Config.Seed++ // different op stream: CVs not comparable
	cur.Results[0].LoadCV = 1.0
	if regs := Compare(base, cur, 0.10); len(regs) != 0 {
		t.Fatalf("CV compared across different workload configs: %v", regs)
	}
}

// Cache metrics gate only when both sides carry them, under the identical-
// config rule: a falling hit rate or ops-saved count, or rising device reads,
// is an I/O regression.
func TestCompareFlagsCacheRegressions(t *testing.T) {
	withCache := func() File {
		f := sample(false)
		f.Config.CacheBytes = 1 << 20
		f.Results[0].Workload = "Read-Only +cache"
		f.Results[0].CacheHits = 900
		f.Results[0].CacheMisses = 100
		f.Results[0].CacheHitRate = 0.9
		f.Results[0].DeviceOpsSaved = 900
		f.Results[0].DeviceReadOps = 100
		return f
	}
	base := withCache()
	if regs := Compare(base, withCache(), 0.10); len(regs) != 0 {
		t.Fatalf("identical cache metrics flagged: %v", regs)
	}
	cur := withCache()
	cur.Results[0].CacheHitRate = 0.6
	cur.Results[0].DeviceOpsSaved = 600
	cur.Results[0].DeviceReadOps = 400
	regs := Compare(base, cur, 0.10)
	want := map[string]bool{"cache_hit_rate": false, "device_ops_saved": false, "device_read_ops": false}
	for _, r := range regs {
		if _, ok := want[r.Metric]; ok {
			want[r.Metric] = true
		}
	}
	for m, seen := range want {
		if !seen {
			t.Fatalf("%s regression not flagged in %v", m, regs)
		}
	}
	// A different config (e.g. a changed budget) suppresses the gate, like CV.
	diff := withCache()
	diff.Config.CacheBytes *= 2
	diff.Results[0].CacheHitRate = 0.1
	if regs := Compare(base, diff, 0.10); len(regs) != 0 {
		t.Fatalf("cache metrics compared across configs: %v", regs)
	}
}

// Cache-off artifacts (the committed baseline) must be unaffected by the
// cache gates: all cache fields are zero on both sides.
func TestCompareIgnoresAbsentCacheMetrics(t *testing.T) {
	if regs := Compare(sample(false), sample(false), 0.10); len(regs) != 0 {
		t.Fatalf("cache-off files flagged: %v", regs)
	}
}

func TestCompareFlagsMissingCell(t *testing.T) {
	base := sample(false)
	cur := sample(false)
	cur.Results = cur.Results[:1]
	regs := Compare(base, cur, 0.10)
	if len(regs) != 1 || regs[0].Metric != "coverage" {
		t.Fatalf("want one coverage regression, got %v", regs)
	}
}
