package hcode

import (
	"testing"

	"dcode/internal/erasure"
)

var testPrimes = []int{5, 7, 11, 13}

func mustNew(t *testing.T, p int) *erasure.Code {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatalf("New(%d): %v", p, err)
	}
	return c
}

func TestNewRejectsBadParameters(t *testing.T) {
	for _, p := range []int{0, 2, 3, 4, 6, 10} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) accepted", p)
		}
	}
}

func TestGeometry(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		if c.Rows() != p-1 || c.Cols() != p+1 {
			t.Fatalf("p=%d: geometry %d×%d", p, c.Rows(), c.Cols())
		}
		if c.DataElems() != (p-1)*(p-1) {
			t.Fatalf("p=%d: data = %d, want %d", p, c.DataElems(), (p-1)*(p-1))
		}
		// Column p is a dedicated parity disk; the anti-diagonal parities sit
		// at (i, i+1), the "middle of the stripe" the D-Code paper mentions.
		for i := 0; i < p-1; i++ {
			if !c.IsParity(i, p) {
				t.Fatalf("p=%d: (%d,%d) not parity", p, i, p)
			}
			if !c.IsParity(i, i+1) {
				t.Fatalf("p=%d: (%d,%d) not parity", p, i, i+1)
			}
		}
		// p disks carry data (all but column p).
		if c.DataColumns() != p {
			t.Fatalf("p=%d: DataColumns = %d, want %d", p, c.DataColumns(), p)
		}
	}
}

func TestHorizontalParityCoversRowData(t *testing.T) {
	p := 7
	c := mustNew(t, p)
	for i := 0; i < p-1; i++ {
		g := c.Groups()[c.ParityGroup(i, p)]
		if g.Kind != erasure.KindHorizontal || len(g.Members) != p-1 {
			t.Fatalf("horizontal %d: kind %v, %d members", i, g.Kind, len(g.Members))
		}
		for _, m := range g.Members {
			if m.Row != i || m.Col == i+1 || m.Col > p-1 {
				t.Fatalf("horizontal %d covers %v", i, m)
			}
		}
	}
}

// The anti-diagonal group of parity (i, i+1) is D(r, <i+r+2>_p) over all data
// rows; it covers every column except p and its own column i+1, exactly once.
func TestAntiDiagonalStructure(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		for i := 0; i < p-1; i++ {
			g := c.Groups()[c.ParityGroup(i, i+1)]
			if g.Kind != erasure.KindAntiDiagonal || len(g.Members) != p-1 {
				t.Fatalf("p=%d anti %d: kind %v, %d members", p, i, g.Kind, len(g.Members))
			}
			cols := map[int]bool{}
			for r, m := range g.Members {
				want := erasure.Coord{Row: r, Col: erasure.Mod(i+r+2, p)}
				if m != want {
					t.Fatalf("p=%d anti %d member %d = %v, want %v", p, i, r, m, want)
				}
				if c.IsParity(m.Row, m.Col) {
					t.Fatalf("p=%d anti %d member %v is a parity cell", p, i, m)
				}
				if cols[m.Col] {
					t.Fatalf("p=%d anti %d repeats column %d", p, i, m.Col)
				}
				cols[m.Col] = true
			}
			if cols[i+1] || cols[p] {
				t.Fatalf("p=%d anti %d covers its own or the horizontal parity column", p, i)
			}
		}
	}
}

func TestEachDataElementInExactlyTwoGroups(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		for idx := 0; idx < c.DataElems(); idx++ {
			co := c.DataCoord(idx)
			if got := len(c.MemberOf(co.Row, co.Col)); got != 2 {
				t.Fatalf("p=%d: %v in %d groups", p, co, got)
			}
		}
	}
}

func TestMDS(t *testing.T) {
	for _, p := range testPrimes {
		if testing.Short() && p > 7 {
			continue
		}
		if err := erasure.VerifyMDS(mustNew(t, p), 16); err != nil {
			t.Fatal(err)
		}
	}
}
