// Package hcode implements H-Code (Wu et al., IPDPS 2011), the hybrid RAID-6
// baseline of the D-Code paper: all horizontal parities live on one
// specialized disk while the anti-diagonal parities are spread through the
// middle of the data matrix.
//
// A stripe is a (p-1)×(p+1) matrix, p prime. Column p is the horizontal
// parity disk; the anti-diagonal parity of row i sits at (i, i+1); all other
// cells are data.
//
//   - Horizontal parity:    P(i, p)   = XOR of the data cells of row i
//     (columns 0..p-1 except i+1).
//   - Anti-diagonal parity: P(i, i+1) = XOR_{r=0}^{p-2} D(r, <i+r+2>_p).
//
// The anti-diagonal of group i walks the same <i+r+2>_p progression as
// X-Code's diagonal parity; over rows 0..p-2 it touches every column except
// p and except its own parity column i+1 (which it would only reach on the
// "missing" row p-1), so every data cell lands in exactly one anti-diagonal
// group and no group member is a parity cell. The construction is checked
// MDS for every column pair at p ∈ {5,7,11,13} by the package tests
// (see DESIGN.md §4).
package hcode

import (
	"fmt"

	"dcode/internal/erasure"
)

// Name is the code's display name.
const Name = "H-Code"

// New constructs H-Code over p+1 disks; p must be a prime ≥ 5.
func New(p int) (*erasure.Code, error) {
	if !erasure.IsPrime(p) || p < 5 {
		return nil, fmt.Errorf("hcode: p = %d is not a prime ≥ 5", p)
	}
	rows, cols := p-1, p+1
	groups := make([]erasure.Group, 0, 2*rows)

	for i := 0; i < rows; i++ {
		anti := make([]erasure.Coord, 0, rows)
		for r := 0; r < rows; r++ {
			anti = append(anti, erasure.Coord{Row: r, Col: erasure.Mod(i+r+2, p)})
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindAntiDiagonal,
			Parity:  erasure.Coord{Row: i, Col: i + 1},
			Members: anti,
		})
	}
	for i := 0; i < rows; i++ {
		row := make([]erasure.Coord, 0, p-1)
		for c := 0; c <= p-1; c++ {
			if c == i+1 {
				continue
			}
			row = append(row, erasure.Coord{Row: i, Col: c})
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindHorizontal,
			Parity:  erasure.Coord{Row: i, Col: p},
			Members: row,
		})
	}
	return erasure.New(Name, p, rows, cols, groups)
}
