// Package rdp implements the Row-Diagonal Parity code (Corbett et al.,
// FAST 2004), the horizontal RAID-6 baseline of the D-Code paper.
//
// A stripe is a (p-1)×(p+1) matrix, p prime. Columns 0..p-2 hold data,
// column p-1 the row parities and column p the diagonal parities:
//
//   - Row parity:      P(i, p-1) = XOR_{c=0}^{p-2} D(i, c)
//   - Diagonal parity: P(i, p)   = XOR of the cells (r, c), 0 ≤ c ≤ p-1
//     (data and row parity), with <r+c>_p = i.
//
// Diagonal p-1 (the "missing diagonal") is not stored; including the row
// parity column in the diagonals is what gives RDP its optimal
// encoding complexity.
package rdp

import (
	"fmt"

	"dcode/internal/erasure"
)

// Name is the code's display name.
const Name = "RDP"

// New constructs RDP over p+1 disks; p must be a prime ≥ 5.
func New(p int) (*erasure.Code, error) {
	if !erasure.IsPrime(p) || p < 5 {
		return nil, fmt.Errorf("rdp: p = %d is not a prime ≥ 5", p)
	}
	rows, cols := p-1, p+1
	groups := make([]erasure.Group, 0, 2*rows)
	for i := 0; i < rows; i++ {
		row := make([]erasure.Coord, 0, p-1)
		for c := 0; c <= p-2; c++ {
			row = append(row, erasure.Coord{Row: i, Col: c})
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindHorizontal,
			Parity:  erasure.Coord{Row: i, Col: p - 1},
			Members: row,
		})
	}
	for i := 0; i < rows; i++ {
		var diag []erasure.Coord
		for r := 0; r < rows; r++ {
			for c := 0; c <= p-1; c++ { // includes the row-parity column p-1
				if erasure.Mod(r+c, p) == i {
					diag = append(diag, erasure.Coord{Row: r, Col: c})
				}
			}
		}
		groups = append(groups, erasure.Group{
			Kind:    erasure.KindDiagonal,
			Parity:  erasure.Coord{Row: i, Col: p},
			Members: diag,
		})
	}
	return erasure.New(Name, p, rows, cols, groups)
}

// NewShortened constructs an RDP array with exactly k data disks (k ≥ 2,
// k+2 disks total) by code shortening: the construction runs over the
// smallest prime p ≥ k+1 with the surplus data columns fixed to zero and
// omitted. Shortening is the standard way real arrays use RDP at arbitrary
// widths; a shortened MDS code is still MDS.
func NewShortened(k int) (*erasure.Code, error) {
	if k < 2 {
		return nil, fmt.Errorf("rdp: need at least 2 data disks, got %d", k)
	}
	p := k + 1
	for !erasure.IsPrime(p) || p < 5 {
		p++
	}
	if p == k+1 {
		return New(p) // no shortening needed
	}
	rows := p - 1
	// Columns 0..k-1 stay; the virtual data columns k..p-2 are dropped; the
	// row-parity column p-1 becomes k and the diagonal column p becomes k+1.
	remap := func(co erasure.Coord) (erasure.Coord, bool) {
		switch {
		case co.Col < k:
			return co, true
		case co.Col == p-1:
			return erasure.Coord{Row: co.Row, Col: k}, true
		case co.Col == p:
			return erasure.Coord{Row: co.Row, Col: k + 1}, true
		default:
			return erasure.Coord{}, false // virtual zero column
		}
	}
	full, err := New(p)
	if err != nil {
		return nil, err
	}
	groups := make([]erasure.Group, 0, len(full.Groups()))
	for _, g := range full.Groups() {
		parity, ok := remap(g.Parity)
		if !ok {
			return nil, fmt.Errorf("rdp: internal: parity in virtual column %v", g.Parity)
		}
		ng := erasure.Group{Kind: g.Kind, Parity: parity}
		for _, m := range g.Members {
			if nm, ok := remap(m); ok {
				ng.Members = append(ng.Members, nm)
			}
		}
		if len(ng.Members) == 0 {
			// A group whose members all live in virtual columns stores a
			// constant zero; keep the equation with a synthetic member so
			// the engine can treat the parity cell uniformly. This cannot
			// happen for RDP (every diagonal crosses column 0), so reject.
			return nil, fmt.Errorf("rdp: internal: empty shortened group at %v", parity)
		}
		groups = append(groups, ng)
	}
	return erasure.New(fmt.Sprintf("RDP(k=%d)", k), p, rows, k+2, groups)
}
