package rdp

import (
	"testing"

	"dcode/internal/erasure"
)

var testPrimes = []int{5, 7, 11, 13}

func mustNew(t *testing.T, p int) *erasure.Code {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatalf("New(%d): %v", p, err)
	}
	return c
}

func TestNewRejectsBadParameters(t *testing.T) {
	for _, p := range []int{0, 1, 4, 6, 9} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) accepted", p)
		}
	}
}

func TestGeometry(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		if c.Rows() != p-1 || c.Cols() != p+1 {
			t.Fatalf("p=%d: geometry %d×%d", p, c.Rows(), c.Cols())
		}
		if c.DataElems() != (p-1)*(p-1) {
			t.Fatalf("p=%d: data = %d, want %d", p, c.DataElems(), (p-1)*(p-1))
		}
		// Two dedicated parity disks that hold no data.
		if c.DataColumns() != p-1 {
			t.Fatalf("p=%d: DataColumns = %d, want %d", p, c.DataColumns(), p-1)
		}
		for r := 0; r < p-1; r++ {
			if !c.IsParity(r, p-1) || !c.IsParity(r, p) {
				t.Fatalf("p=%d: row %d parity columns not at p-1/p", p, r)
			}
		}
	}
}

func TestRowParityCoversWholeRow(t *testing.T) {
	p := 7
	c := mustNew(t, p)
	for i := 0; i < p-1; i++ {
		g := c.Groups()[c.ParityGroup(i, p-1)]
		if g.Kind != erasure.KindHorizontal || len(g.Members) != p-1 {
			t.Fatalf("row parity %d: kind %v, %d members", i, g.Kind, len(g.Members))
		}
		for _, m := range g.Members {
			if m.Row != i {
				t.Fatalf("row parity %d covers %v", i, m)
			}
		}
	}
}

// RDP's defining property: the diagonal parity covers the row-parity column,
// and the diagonal p-1 is missing.
func TestDiagonalsIncludeRowParityColumn(t *testing.T) {
	p := 7
	c := mustNew(t, p)
	for i := 0; i < p-1; i++ {
		g := c.Groups()[c.ParityGroup(i, p)]
		if g.Kind != erasure.KindDiagonal {
			t.Fatalf("diag parity %d kind %v", i, g.Kind)
		}
		coversParityCol := false
		for _, m := range g.Members {
			if erasure.Mod(m.Row+m.Col, p) != i {
				t.Fatalf("diag %d contains off-diagonal member %v", i, m)
			}
			if m.Col == p-1 {
				coversParityCol = true
			}
		}
		// The row-parity cell on diagonal i is (<i+1>_p, p-1), which exists
		// only for i ≤ p-3; diagonal p-2 has no row-parity member.
		if want := i <= p-3; coversParityCol != want {
			t.Fatalf("diag %d row-parity coverage = %v, want %v", i, coversParityCol, want)
		}
	}
	// No group stores diagonal p-1.
	for _, g := range c.Groups() {
		if g.Kind != erasure.KindDiagonal {
			continue
		}
		for _, m := range g.Members {
			if erasure.Mod(m.Row+m.Col, p) == p-1 {
				t.Fatalf("missing diagonal p-1 appears in group with parity %v", g.Parity)
			}
		}
	}
}

func TestMDS(t *testing.T) {
	for _, p := range testPrimes {
		if testing.Short() && p > 7 {
			continue
		}
		if err := erasure.VerifyMDS(mustNew(t, p), 16); err != nil {
			t.Fatal(err)
		}
	}
}

// RDP has optimal encode complexity too: (p-1)(p-2)+... in XOR counts this is
// 2(p-1)(p-2) XORs for (p-1)^2 data elements = 2 - 2/(p-1) per data element.
func TestEncodeComplexity(t *testing.T) {
	for _, p := range testPrimes {
		c := mustNew(t, p)
		m := c.ComputeMetrics()
		want := 2.0 - 2.0/float64(p-1)
		if diff := m.EncodeXORPerData - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("p=%d: encode XOR/data = %v, want %v", p, m.EncodeXORPerData, want)
		}
	}
}

func TestShortenedGeometry(t *testing.T) {
	for k := 2; k <= 14; k++ {
		c, err := NewShortened(k)
		if err != nil {
			t.Fatalf("NewShortened(%d): %v", k, err)
		}
		if c.Cols() != k+2 {
			t.Fatalf("k=%d: %d disks, want %d", k, c.Cols(), k+2)
		}
		if c.DataElems() != k*(c.P()-1) {
			t.Fatalf("k=%d: data = %d, want %d", k, c.DataElems(), k*(c.P()-1))
		}
		// Columns k and k+1 are pure parity.
		if c.DataColumns() != k {
			t.Fatalf("k=%d: DataColumns = %d", k, c.DataColumns())
		}
	}
}

func TestShortenedMDS(t *testing.T) {
	widths := []int{2, 3, 5, 6, 8, 9}
	if testing.Short() {
		widths = []int{3, 6}
	}
	for _, k := range widths {
		c, err := NewShortened(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := erasure.VerifyMDS(c, 16); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestShortenedRejectsTooNarrow(t *testing.T) {
	if _, err := NewShortened(1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestShortenedExactPrimeIsUnshortened(t *testing.T) {
	c, err := NewShortened(6) // p = 7 = k+1: the full construction
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != Name {
		t.Fatalf("k=6 should be plain RDP, got %q", c.Name())
	}
}
