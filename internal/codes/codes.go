// Package codes is the registry of every RAID-6 array code in this
// repository. The simulators, command-line tools, benchmarks and the public
// facade all enumerate codes through it, so adding a code here makes it show
// up everywhere.
package codes

import (
	"fmt"
	"sort"

	"dcode/internal/blaumroth"
	"dcode/internal/core"
	"dcode/internal/erasure"
	"dcode/internal/evenodd"
	"dcode/internal/hcode"
	"dcode/internal/hdp"
	"dcode/internal/liberation"
	"dcode/internal/pcode"
	"dcode/internal/rdp"
	"dcode/internal/xcode"
)

// Constructor builds a code instance for a prime parameter p.
type Constructor func(p int) (*erasure.Code, error)

// Entry describes one registered code.
type Entry struct {
	// ID is the short lower-case identifier used on command lines.
	ID string
	// Name is the display name used in tables (matches the papers).
	Name string
	// New constructs the code for a prime p.
	New Constructor
	// Paper is the primary citation.
	Paper string
}

// registry holds the comparison set of the D-Code paper first, in the order
// its figures list them, then the extension baselines.
var registry = []Entry{
	{ID: "rdp", Name: rdp.Name, New: rdp.New, Paper: "Corbett et al., FAST 2004"},
	{ID: "hcode", Name: hcode.Name, New: hcode.New, Paper: "Wu et al., IPDPS 2011"},
	{ID: "hdp", Name: hdp.Name, New: hdp.New, Paper: "Wu et al., DSN 2011"},
	{ID: "xcode", Name: xcode.Name, New: xcode.New, Paper: "Xu & Bruck, IEEE Trans. IT 1999"},
	{ID: "dcode", Name: core.Name, New: core.New, Paper: "Fu & Shu, IPDPS 2015"},
	{ID: "evenodd", Name: evenodd.Name, New: evenodd.New, Paper: "Blaum, Bruck & Menon, 1995"},
	{ID: "pcode", Name: pcode.Name, New: pcode.New, Paper: "Jin, Jiang & Zhou, 2009"},
	{ID: "liberation", Name: liberation.Name, New: liberation.NewFull, Paper: "Plank, FAST 2008"},
	{ID: "blaumroth", Name: blaumroth.Name, New: blaumroth.NewFull, Paper: "Blaum & Roth, IEEE Trans. IT 1999"},
}

// PaperPrimes are the prime parameters the paper evaluates at.
var PaperPrimes = []int{5, 7, 11, 13}

// All returns every registered code, paper comparison set first.
func All() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	return out
}

// comparisonIDs are the codes of the paper's evaluation, in legend order.
var comparisonIDs = []string{"rdp", "hcode", "hdp", "xcode", "dcode"}

// Comparison returns the five codes of the paper's evaluation (Figures 4-7):
// RDP, H-Code, HDP, X-Code and D-Code, in the figures' legend order.
func Comparison() []Entry {
	out := make([]Entry, 0, len(comparisonIDs))
	for _, id := range comparisonIDs {
		e, err := ByID(id)
		if err != nil {
			panic(err) // registry and comparison list are compile-time data
		}
		out = append(out, e)
	}
	return out
}

// ByID looks a code up by its short identifier.
func ByID(id string) (Entry, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Entry{}, fmt.Errorf("codes: unknown code %q (have %v)", id, ids)
}

// MustNew builds a code and panics on error; for tests, benchmarks and
// examples where the parameters are compile-time constants.
func MustNew(id string, p int) *erasure.Code {
	e, err := ByID(id)
	if err != nil {
		panic(err)
	}
	c, err := e.New(p)
	if err != nil {
		panic(err)
	}
	return c
}
