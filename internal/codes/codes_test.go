package codes

import (
	"testing"

	"dcode/internal/erasure"
)

func TestAllConstructible(t *testing.T) {
	for _, e := range All() {
		for _, p := range PaperPrimes {
			c, err := e.New(p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", e.ID, p, err)
			}
			if c.Name() != e.Name {
				t.Fatalf("%s: name %q != registry %q", e.ID, c.Name(), e.Name)
			}
		}
	}
}

func TestComparisonSet(t *testing.T) {
	cmp := Comparison()
	if len(cmp) != 5 {
		t.Fatalf("comparison set has %d codes, want 5", len(cmp))
	}
	wantOrder := []string{"rdp", "hcode", "hdp", "xcode", "dcode"}
	for i, e := range cmp {
		if e.ID != wantOrder[i] {
			t.Fatalf("comparison[%d] = %s, want %s", i, e.ID, wantOrder[i])
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("dcode")
	if err != nil || e.Name != "D-Code" {
		t.Fatalf("ByID(dcode) = %v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID(nope) did not error")
	}
}

func TestMustNew(t *testing.T) {
	c := MustNew("xcode", 7)
	if c.Cols() != 7 {
		t.Fatalf("MustNew(xcode,7).Cols = %d", c.Cols())
	}
	for _, bad := range []func(){
		func() { MustNew("nope", 7) },
		func() { MustNew("dcode", 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("MustNew did not panic on bad input")
				}
			}()
			bad()
		}()
	}
}

// Disk counts per code, as the paper's §IV-A states them.
func TestDiskCounts(t *testing.T) {
	p := 11
	want := map[string]int{
		"rdp":        p + 1,
		"hcode":      p + 1,
		"hdp":        p - 1,
		"xcode":      p,
		"dcode":      p,
		"evenodd":    p + 2,
		"pcode":      p - 1,
		"liberation": p + 2,
		"blaumroth":  p + 1,
	}
	for _, e := range All() {
		c, err := e.New(p)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cols() != want[e.ID] {
			t.Fatalf("%s: %d disks, want %d", e.ID, c.Cols(), want[e.ID])
		}
	}
}

// The registry-wide MDS sweep at the paper's primes; the per-package tests
// cover details, this is the cross-cutting guarantee.
func TestRegistryMDS(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive MDS sweep skipped in -short mode")
	}
	for _, e := range All() {
		for _, p := range PaperPrimes {
			c, err := e.New(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := erasure.VerifyMDS(c, 8); err != nil {
				t.Fatalf("%s p=%d: %v", e.ID, p, err)
			}
		}
	}
}
