package codes

import (
	"math/rand"
	"testing"

	"dcode/internal/erasure"
)

// Cross-code behavioural sweep: every registered code must satisfy the
// engine-level contracts, whatever its construction.

func TestSweepEncodeVerify(t *testing.T) {
	for _, e := range All() {
		c, err := e.New(7)
		if err != nil {
			t.Fatal(err)
		}
		s := c.NewStripe(32)
		s.Fill(7)
		c.Encode(s)
		if !c.Verify(s) {
			t.Errorf("%s: fresh encode fails Verify", e.ID)
		}
		// Corrupting any single data element must break Verify.
		co := c.DataCoord(c.DataElems() / 2)
		s.Elem(co.Row, co.Col)[0] ^= 1
		if c.Verify(s) {
			t.Errorf("%s: Verify missed a corrupted data element", e.ID)
		}
	}
}

func TestSweepUpdateDataKeepsConsistency(t *testing.T) {
	for _, e := range All() {
		c, err := e.New(7)
		if err != nil {
			t.Fatal(err)
		}
		s := c.NewStripe(16)
		s.Fill(11)
		c.Encode(s)
		rng := rand.New(rand.NewSource(3))
		val := make([]byte, 16)
		for i := 0; i < 25; i++ {
			co := c.DataCoord(rng.Intn(c.DataElems()))
			rng.Read(val)
			c.UpdateData(s, co.Row, co.Col, val)
			if !c.Verify(s) {
				t.Fatalf("%s: UpdateData left the stripe inconsistent at step %d", e.ID, i)
			}
		}
	}
}

func TestSweepEncodeParallelMatchesSerial(t *testing.T) {
	for _, e := range All() {
		c, err := e.New(7)
		if err != nil {
			t.Fatal(err)
		}
		serial := c.NewStripe(2048)
		serial.Fill(9)
		parallel := serial.Clone()
		c.Encode(serial)
		c.EncodeParallel(parallel, 4)
		if !serial.Equal(parallel) {
			t.Errorf("%s: parallel encode differs from serial", e.ID)
		}
	}
}

// Codes whose groups touch each column at most once must decode every
// double erasure by pure peeling (the Fig. 3 chains); the S-coupled and
// packet-based codes may stall and fall back to Gaussian elimination.
func TestSweepPeelingCoverage(t *testing.T) {
	peelers := map[string]bool{"rdp": true, "hcode": true, "hdp": true, "xcode": true, "dcode": true, "pcode": true}
	for _, e := range All() {
		c, err := e.New(7)
		if err != nil {
			t.Fatal(err)
		}
		_, stalled := c.DecodeXORPerLost()
		if peelers[e.ID] && stalled != 0 {
			t.Errorf("%s: %d column pairs stalled peeling, want 0", e.ID, stalled)
		}
	}
}

// The degraded-read planner must work for every code and failed column, and
// its fetch set must actually suffice to recover the lost cells.
func TestSweepDegradedPlans(t *testing.T) {
	for _, e := range All() {
		c, err := e.New(7)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < c.Cols(); f++ {
			// Want the first up-to-8 data elements.
			n := 8
			if n > c.DataElems() {
				n = c.DataElems()
			}
			wanted := make([]erasure.Coord, 0, n)
			for i := 0; i < n; i++ {
				wanted = append(wanted, c.DataCoord(i))
			}
			plan, err := c.PlanDegraded(f, wanted, nil)
			if err != nil {
				t.Fatalf("%s col %d: %v", e.ID, f, err)
			}
			for _, co := range plan.Fetch {
				if co.Col == f {
					t.Fatalf("%s col %d: plan fetches from the failed disk", e.ID, f)
				}
			}
			// Execute the plan on real data.
			s := c.NewStripe(8)
			s.Fill(uint64(f))
			c.Encode(s)
			want := s.Clone()
			have := map[erasure.Coord][]byte{}
			for _, co := range plan.Fetch {
				have[co] = s.Elem(co.Row, co.Col)
			}
			for _, step := range plan.Steps {
				g := c.Groups()[step.Group]
				dst := make([]byte, 8)
				cells := append(append([]erasure.Coord{}, g.Members...), g.Parity)
				for _, cell := range cells {
					if cell == step.Target {
						continue
					}
					src, ok := have[cell]
					if !ok {
						t.Fatalf("%s col %d: step needs unfetched cell %v", e.ID, f, cell)
					}
					for i := range dst {
						dst[i] ^= src[i]
					}
				}
				wantElem := want.Elem(step.Target.Row, step.Target.Col)
				for i := range dst {
					if dst[i] != wantElem[i] {
						t.Fatalf("%s col %d: plan recovered %v wrong", e.ID, f, step.Target)
					}
				}
				have[step.Target] = dst
			}
		}
	}
}

// Metrics sanity across the registry: storage efficiency in (0,1), positive
// encode cost, and every data element covered by at least two equations
// (two-fault tolerance requires it).
func TestSweepMetricsSanity(t *testing.T) {
	for _, e := range All() {
		c, err := e.New(11)
		if err != nil {
			t.Fatal(err)
		}
		m := c.ComputeMetrics()
		if m.StorageEfficiency <= 0 || m.StorageEfficiency >= 1 {
			t.Errorf("%s: storage efficiency %v", e.ID, m.StorageEfficiency)
		}
		if m.EncodeXORPerData <= 0 {
			t.Errorf("%s: encode cost %v", e.ID, m.EncodeXORPerData)
		}
		// Every data element's update closure must touch at least two parity
		// cells — RAID-6 needs two independent ways to reach each element.
		// (Direct membership can be 1: RDP's missing-diagonal cells reach
		// the diagonal parity through the row parity.)
		for i := 0; i < c.DataElems(); i++ {
			co := c.DataCoord(i)
			if len(c.UpdateGroups(co.Row, co.Col)) < 2 {
				t.Fatalf("%s: data cell %v updates fewer than 2 parities", e.ID, co)
			}
		}
	}
}
