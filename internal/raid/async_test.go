package raid

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"dcode/internal/blockdev"
	"dcode/internal/codes"
)

func TestAsyncOptionWiring(t *testing.T) {
	a, _ := newArrayConc(t, "dcode", 5, 4)
	if a.AsyncEnabled() || a.AsyncEngine() != "" {
		t.Fatal("async should be off by default")
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close without async: %v", err)
	}

	a, _ = newArrayConc(t, "dcode", 5, 4, WithAsyncIO(16))
	if !a.AsyncEnabled() {
		t.Fatal("WithAsyncIO did not enable the engine")
	}
	// Memory devices cannot ride the kernel ring; the pool engine serves them.
	if a.AsyncEngine() != "pool" {
		t.Fatalf("engine = %q, want pool", a.AsyncEngine())
	}
	s := a.Snapshot()
	if s.Async == nil || s.Async.Depth != 16 || s.Async.Engine != "pool" {
		t.Fatalf("snapshot async block: %+v", s.Async)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	a, _ = newArrayConc(t, "dcode", 5, 4, WithAsyncIO(0))
	if got := a.Snapshot().Async.Depth; got != blockdev.DefaultAsyncDepth {
		t.Fatalf("default depth = %d, want %d", got, blockdev.DefaultAsyncDepth)
	}
	_ = a.Close()
}

// TestAsyncCoherence drives an identical deterministic workload — aligned and
// unaligned writes and reads, a mid-run disk failure, degraded traffic, a
// rebuild and a scrub — against a synchronous twin and requires bit-identical
// results, bit-identical final device contents, and identical per-device
// ops/bytes tallies: the async scheduler must be invisible except for speed.
func TestAsyncCoherence(t *testing.T) {
	const stripes = 8
	sync, syncMems := newArrayConc(t, "dcode", 7, stripes)
	async, asyncMems := newArrayConc(t, "dcode", 7, stripes, WithAsyncIO(32))
	defer async.Close()

	step := func(name string, fn func(a *Array) ([]byte, error)) {
		t.Helper()
		sres, serr := fn(sync)
		ares, aerr := fn(async)
		if (serr == nil) != (aerr == nil) {
			t.Fatalf("%s: sync err %v, async err %v", name, serr, aerr)
		}
		if !bytes.Equal(sres, ares) {
			t.Fatalf("%s: results diverged", name)
		}
	}

	rng := rand.New(rand.NewSource(42))
	size := sync.Size()
	payload := func(n int, seed byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i)*29 + seed
		}
		return b
	}

	// Fill, then a mixed healthy phase.
	step("fill", func(a *Array) ([]byte, error) {
		_, err := a.WriteAt(payload(int(size), 1), 0)
		return nil, err
	})
	for i := 0; i < 20; i++ {
		off := rng.Int63n(size - 700)
		n := 1 + rng.Intn(600)
		if rng.Intn(2) == 0 {
			p := payload(n, byte(i))
			step("write", func(a *Array) ([]byte, error) {
				_, err := a.WriteAt(p, off)
				return nil, err
			})
		} else {
			step("read", func(a *Array) ([]byte, error) {
				buf := make([]byte, n)
				_, err := a.ReadAt(buf, off)
				return buf, err
			})
		}
	}

	// Mid-run failure, degraded traffic, then rebuild and scrub.
	step("fail", func(a *Array) ([]byte, error) { return nil, a.FailDisk(2) })
	for i := 0; i < 10; i++ {
		off := rng.Int63n(size - 700)
		n := 1 + rng.Intn(600)
		if rng.Intn(2) == 0 {
			p := payload(n, byte(100+i))
			step("degraded-write", func(a *Array) ([]byte, error) {
				_, err := a.WriteAt(p, off)
				return nil, err
			})
		} else {
			step("degraded-read", func(a *Array) ([]byte, error) {
				buf := make([]byte, n)
				_, err := a.ReadAt(buf, off)
				return buf, err
			})
		}
	}
	step("replace", func(a *Array) ([]byte, error) {
		mems := syncMems
		if a == async {
			mems = asyncMems
		}
		mems[2].Replace()
		return nil, nil
	})
	step("rebuild", func(a *Array) ([]byte, error) { return nil, a.Rebuild(2) })
	step("scrub", func(a *Array) ([]byte, error) {
		_, err := a.Scrub()
		return nil, err
	})
	step("verify", func(a *Array) ([]byte, error) {
		buf := make([]byte, size)
		_, err := a.ReadAt(buf, 0)
		return buf, err
	})

	// Device contents must be bit-identical.
	for i := range syncMems {
		sb := make([]byte, syncMems[i].Size())
		ab := make([]byte, asyncMems[i].Size())
		if _, err := syncMems[i].ReadAt(sb, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := asyncMems[i].ReadAt(ab, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, ab) {
			t.Fatalf("device %d contents diverged", i)
		}
	}

	// Per-disk tallies — the paper's I/O-load metric — must be identical.
	ss, as := sync.Snapshot(), async.Snapshot()
	for i := range ss.Devices {
		sd, ad := ss.Devices[i], as.Devices[i]
		if sd.Reads != ad.Reads || sd.Writes != ad.Writes ||
			sd.BytesRead != ad.BytesRead || sd.BytesWritten != ad.BytesWritten ||
			sd.ReadErrors != ad.ReadErrors || sd.WriteErrors != ad.WriteErrors {
			t.Fatalf("device %d tallies diverged:\n sync: r=%d w=%d br=%d bw=%d re=%d we=%d\nasync: r=%d w=%d br=%d bw=%d re=%d we=%d",
				i, sd.Reads, sd.Writes, sd.BytesRead, sd.BytesWritten, sd.ReadErrors, sd.WriteErrors,
				ad.Reads, ad.Writes, ad.BytesRead, ad.BytesWritten, ad.ReadErrors, ad.WriteErrors)
		}
	}
	if as.Async.Submitted == 0 || as.Async.Submitted != as.Async.Completed {
		t.Fatalf("async engine counters: %+v", as.Async)
	}
}

// TestAsyncFaultInjection pushes the device fault machinery through the
// async path: a bad sector read-repairs transparently, a dying device is
// marked failed exactly like on the synchronous path, and degraded service
// continues.
func TestAsyncFaultInjection(t *testing.T) {
	const stripes = 4
	a, mems := newArrayConc(t, "dcode", 5, stripes, WithAsyncIO(16))
	defer a.Close()
	data := pattern(int(a.Size()), 3)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	// Latent sector error: the async read falls back to element reads, which
	// repair in place without failing the disk.
	mems[1].InjectBadSector(0)
	got := make([]byte, a.Size())
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-repair returned wrong data")
	}
	if n := a.Stats().SectorsRepaired; n != 1 {
		t.Fatalf("SectorsRepaired = %d, want 1", n)
	}
	if n := len(a.FailedDisks()); n != 0 {
		t.Fatalf("bad sector must not fail the disk; %d failed", n)
	}

	// Whole-device failure discovered mid-read: marked failed, read served
	// degraded, contents still correct.
	mems[3].Fail()
	clear(got)
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read returned wrong data")
	}
	failed := a.FailedDisks()
	if len(failed) != 1 || failed[0] != 3 {
		t.Fatalf("FailedDisks = %v, want [3]", failed)
	}

	// Writes keep flowing degraded, and a second failure during a write is
	// absorbed best-effort.
	if _, err := a.WriteAt(pattern(256, 9), 128); err != nil {
		t.Fatal(err)
	}
	mems[0].Fail()
	if _, err := a.WriteAt(pattern(256, 11), 512); err != nil {
		t.Fatal(err)
	}
	if n := len(a.FailedDisks()); n != 2 {
		t.Fatalf("FailedDisks = %d, want 2", n)
	}

	// Recovery: replace and rebuild both columns through the async path.
	mems[3].Replace()
	if err := a.Rebuild(3); err != nil {
		t.Fatal(err)
	}
	mems[0].Replace()
	if err := a.Rebuild(0); err != nil {
		t.Fatal(err)
	}
	clear(got)
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	copy(data[128:], pattern(256, 9))
	copy(data[512:], pattern(256, 11))
	if !bytes.Equal(got, data) {
		t.Fatal("post-rebuild contents wrong")
	}
}

// TestAsyncThroughputDelayed gates the perf claim in-memory: on devices with
// a queue-depth service model, batch-submitted stripes overlap their column
// I/O even at concurrency 1, where the synchronous path pays each device
// delay serially. The async run must beat sync by well over the 25%
// EXPERIMENTS.md gates on real hardware models.
func TestAsyncThroughputDelayed(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	const (
		stripes = 6
		delay   = 2 * time.Millisecond
		qd      = 32
	)
	build := func(opts ...Option) (*Array, []*blockdev.MemDevice) {
		code := codes.MustNew("dcode", 7)
		devs := make([]blockdev.Device, code.Cols())
		mems := make([]*blockdev.MemDevice, code.Cols())
		devSize := int64(stripes) * int64(code.Rows()) * elemSize
		for i := range devs {
			mems[i] = blockdev.NewMem(devSize)
			devs[i] = &blockdev.Delayed{Device: mems[i], Delay: delay, MaxInflight: qd}
		}
		a, err := New(code, devs, elemSize, stripes, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return a, mems
	}

	readVolume := func(a *Array) time.Duration {
		buf := make([]byte, a.Size())
		start := time.Now()
		if _, err := a.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	syncA, _ := build(WithConcurrency(1))
	asyncA, _ := build(WithConcurrency(1), WithAsyncIO(qd))
	defer asyncA.Close()
	seed := pattern(int(syncA.Size()), 5)
	if _, err := syncA.WriteAt(seed, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := asyncA.WriteAt(seed, 0); err != nil {
		t.Fatal(err)
	}

	syncRead := readVolume(syncA)
	asyncRead := readVolume(asyncA)
	t.Logf("ReadAt: sync %v, async %v (%.2fx)", syncRead, asyncRead, float64(syncRead)/float64(asyncRead))
	if float64(asyncRead)*1.25 > float64(syncRead) {
		t.Fatalf("async ReadAt %v not >=1.25x faster than sync %v", asyncRead, syncRead)
	}

	rebuild := func(a *Array, mems []*blockdev.MemDevice) time.Duration {
		if err := a.FailDisk(2); err != nil {
			t.Fatal(err)
		}
		mems[2].Replace()
		start := time.Now()
		if err := a.Rebuild(2); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	syncA2, syncM2 := build(WithConcurrency(1))
	asyncA2, asyncM2 := build(WithConcurrency(1), WithAsyncIO(qd))
	defer asyncA2.Close()
	if _, err := syncA2.WriteAt(seed, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := asyncA2.WriteAt(seed, 0); err != nil {
		t.Fatal(err)
	}
	syncReb := rebuild(syncA2, syncM2)
	asyncReb := rebuild(asyncA2, asyncM2)
	t.Logf("Rebuild: sync %v, async %v (%.2fx)", syncReb, asyncReb, float64(syncReb)/float64(asyncReb))
	if float64(asyncReb)*1.25 > float64(syncReb) {
		t.Fatalf("async Rebuild %v not >=1.25x faster than sync %v", asyncReb, syncReb)
	}
}
