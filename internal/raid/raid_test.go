package raid

import (
	"bytes"
	"math/rand"
	"testing"

	"dcode/internal/blockdev"
	"dcode/internal/codes"
)

const elemSize = 64

func newArray(t *testing.T, id string, p int, stripes int64) (*Array, []*blockdev.MemDevice) {
	t.Helper()
	code := codes.MustNew(id, p)
	devs := make([]blockdev.Device, code.Cols())
	mems := make([]*blockdev.MemDevice, code.Cols())
	devSize := stripes * int64(code.Rows()) * elemSize
	for i := range devs {
		mems[i] = blockdev.NewMem(devSize)
		devs[i] = mems[i]
	}
	a, err := New(code, devs, elemSize, stripes)
	if err != nil {
		t.Fatal(err)
	}
	return a, mems
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*31 + seed
	}
	return b
}

func TestNewValidation(t *testing.T) {
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, 4)
	if _, err := New(code, devs, elemSize, 2); err == nil {
		t.Fatal("wrong device count accepted")
	}
	devs = make([]blockdev.Device, 5)
	for i := range devs {
		devs[i] = blockdev.NewMem(10) // too small
	}
	if _, err := New(code, devs, elemSize, 2); err == nil {
		t.Fatal("undersized devices accepted")
	}
	for i := range devs {
		devs[i] = blockdev.NewMem(1 << 16)
	}
	if _, err := New(code, devs, 0, 2); err == nil {
		t.Fatal("zero element size accepted")
	}
	if _, err := New(code, devs, elemSize, 0); err == nil {
		t.Fatal("zero stripes accepted")
	}
}

func TestSizeAndMetadata(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 4)
	want := int64(4 * 15 * elemSize) // 4 stripes × 15 data elements
	if a.Size() != want {
		t.Fatalf("Size = %d, want %d", a.Size(), want)
	}
	if a.Code().Name() != "D-Code" || a.ElemSize() != elemSize {
		t.Fatal("metadata accessors wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 4)
	data := pattern(int(a.Size()), 1)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("full-volume round trip mismatch")
	}
}

func TestUnalignedWriteRead(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 4)
	base := pattern(int(a.Size()), 2)
	if _, err := a.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite an unaligned range spanning element and stripe boundaries.
	patch := pattern(500, 99)
	off := int64(elemSize*14 + 17)
	if _, err := a.WriteAt(patch, off); err != nil {
		t.Fatal(err)
	}
	copy(base[off:], patch)
	got := make([]byte, len(base))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("unaligned write corrupted the volume")
	}
}

func TestRangeValidation(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 2)
	if _, err := a.ReadAt(make([]byte, 10), a.Size()-5); err == nil {
		t.Fatal("read past end accepted")
	}
	if _, err := a.WriteAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
}

// Parity must be consistent after RMW writes: verify every stripe on disk.
func TestParityConsistentAfterRMW(t *testing.T) {
	a, _ := newArray(t, "rdp", 5, 4) // RDP exercises parity-through-parity updates
	if _, err := a.WriteAt(pattern(int(a.Size()), 3), 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		off := rng.Int63n(a.Size() - 100)
		if _, err := a.WriteAt(pattern(1+rng.Intn(99), byte(i)), off); err != nil {
			t.Fatal(err)
		}
	}
	fixed, err := a.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 0 {
		t.Fatalf("scrub repaired %d stripes after RMW writes; parity updates are broken", fixed)
	}
}

func TestDegradedReadSingleFailure(t *testing.T) {
	for _, id := range []string{"dcode", "xcode", "rdp", "hcode", "hdp", "evenodd"} {
		a, mems := newArray(t, id, 5, 3)
		data := pattern(int(a.Size()), 4)
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		mems[1].Fail()
		got := make([]byte, len(data))
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatalf("%s: degraded read: %v", id, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: degraded read returned wrong data", id)
		}
		if a.Stats().DegradedReads == 0 {
			t.Fatalf("%s: degraded reads not counted", id)
		}
	}
}

func TestDegradedReadDoubleFailure(t *testing.T) {
	a, mems := newArray(t, "dcode", 7, 3)
	data := pattern(int(a.Size()), 5)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	mems[2].Fail()
	mems[5].Fail()
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("double-degraded read returned wrong data")
	}
}

func TestTripleFailureFails(t *testing.T) {
	a, mems := newArray(t, "dcode", 7, 2)
	if _, err := a.WriteAt(pattern(int(a.Size()), 6), 0); err != nil {
		t.Fatal(err)
	}
	mems[0].Fail()
	mems[1].Fail()
	mems[2].Fail()
	if _, err := a.ReadAt(make([]byte, 100), 0); err == nil {
		t.Fatal("triple failure read succeeded")
	}
}

func TestDegradedWriteThenRebuild(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 3)
	data := pattern(int(a.Size()), 7)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	// Write while degraded.
	patch := pattern(800, 42)
	if _, err := a.WriteAt(patch, 100); err != nil {
		t.Fatal(err)
	}
	copy(data[100:], patch)

	// Replace the disk and rebuild.
	mems[3].Replace()
	if err := a.Rebuild(3); err != nil {
		t.Fatal(err)
	}
	if len(a.FailedDisks()) != 0 {
		t.Fatal("disk still marked failed after rebuild")
	}
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data wrong after degraded write + rebuild")
	}
	if fixed, err := a.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("array inconsistent after rebuild: fixed=%d err=%v", fixed, err)
	}
}

func TestRebuildValidation(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 2)
	if err := a.Rebuild(0); err == nil {
		t.Fatal("rebuild of healthy disk accepted")
	}
	if err := a.Rebuild(-1); err == nil {
		t.Fatal("rebuild of bogus disk accepted")
	}
}

func TestFailDiskValidation(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 2)
	if err := a.FailDisk(9); err == nil {
		t.Fatal("bogus disk accepted")
	}
	a.FailDisk(0)
	a.FailDisk(1)
	if err := a.FailDisk(2); err != ErrTooManyFailures {
		t.Fatalf("third failure: %v", err)
	}
}

func TestScrubRepairsCorruptedParity(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 2)
	if _, err := a.WriteAt(pattern(int(a.Size()), 8), 0); err != nil {
		t.Fatal(err)
	}
	// Silently corrupt a parity element of stripe 0: D-Code parities live in
	// the last two rows; element (3, 2) is row 3 on device 2.
	mems[2].Corrupt(int64(3 * elemSize))
	fixed, err := a.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 1 {
		t.Fatalf("scrub fixed %d stripes, want 1", fixed)
	}
	if fixed, _ := a.Scrub(); fixed != 0 {
		t.Fatal("second scrub still found damage")
	}
}

func TestScrubRequiresHealthyArray(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 2)
	a.FailDisk(0)
	if _, err := a.Scrub(); err == nil {
		t.Fatal("scrub ran on degraded array")
	}
}

// Device-level read errors must flip the array into degraded mode
// transparently: the read still succeeds via reconstruction.
func TestReadErrorTriggersDegradedPath(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 2)
	data := pattern(int(a.Size()), 9)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	mems[0].Fail() // not reported to the array; discovered on read
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-after-silent-failure returned wrong data")
	}
	if len(a.FailedDisks()) != 1 || a.FailedDisks()[0] != 0 {
		t.Fatalf("failed disks = %v, want [0]", a.FailedDisks())
	}
}

func TestFullStripeWriteDetection(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 2)
	stripeBytes := 15 * elemSize
	if _, err := a.WriteAt(pattern(stripeBytes, 10), 0); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.FullStripeWrites != 1 || st.RMWWrites != 0 {
		t.Fatalf("stats = %+v, want one full-stripe write", st)
	}
	if _, err := a.WriteAt(pattern(10, 11), 0); err != nil {
		t.Fatal(err)
	}
	if a.Stats().RMWWrites == 0 {
		t.Fatal("partial write not counted as RMW")
	}
}

// Works for every registered code: write, fail two disks, read, rebuild.
func TestAllCodesEndToEnd(t *testing.T) {
	for _, e := range codes.All() {
		a, mems := newArray(t, e.ID, 7, 2)
		data := pattern(int(a.Size()), 12)
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		mems[0].Fail()
		mems[3].Fail()
		got := make([]byte, len(data))
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: degraded data mismatch", e.ID)
		}
		mems[0].Replace()
		if err := a.Rebuild(0); err != nil {
			t.Fatalf("%s: rebuild 0: %v", e.ID, err)
		}
		mems[3].Replace()
		if err := a.Rebuild(3); err != nil {
			t.Fatalf("%s: rebuild 3: %v", e.ID, err)
		}
		if fixed, err := a.Scrub(); err != nil || fixed != 0 {
			t.Fatalf("%s: post-rebuild scrub fixed=%d err=%v", e.ID, fixed, err)
		}
	}
}

// A disk that dies silently is discovered during a partial write; the write
// must still land, the stripe must stay consistent, and a later rebuild must
// restore full redundancy.
func TestWriteDiscoversSilentFailure(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 3)
	data := pattern(int(a.Size()), 13)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	mems[2].Fail() // not reported to the array
	patch := pattern(200, 50)
	if _, err := a.WriteAt(patch, 64); err != nil {
		t.Fatal(err)
	}
	copy(data[64:], patch)
	if len(a.FailedDisks()) != 1 || a.FailedDisks()[0] != 2 {
		t.Fatalf("failed disks = %v, want [2]", a.FailedDisks())
	}
	mems[2].Replace()
	if err := a.Rebuild(2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across silent failure during write")
	}
	if fixed, err := a.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("stripe inconsistent after silent-failure write: fixed=%d err=%v", fixed, err)
	}
}

// With one disk down, a degraded read must fetch only the recovery group's
// elements (the paper's low-I/O degraded read), not the whole stripe.
func TestDegradedReadUsesMinimalFetch(t *testing.T) {
	a, mems := newArray(t, "dcode", 7, 2)
	if _, err := a.WriteAt(pattern(int(a.Size()), 21), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	var before int64
	for _, m := range mems {
		before += m.Stats().Reads
	}
	// Read exactly one element that lived on the failed disk.
	lostIdx := -1
	for i := 0; i < a.Code().DataElems(); i++ {
		if a.Code().DataCoord(i).Col == 3 {
			lostIdx = i
			break
		}
	}
	buf := make([]byte, elemSize)
	if _, err := a.ReadAt(buf, int64(lostIdx)*elemSize); err != nil {
		t.Fatal(err)
	}
	var after int64
	for _, m := range mems {
		after += m.Stats().Reads
	}
	got := after - before
	// A D-Code recovery group has n-2 = 5 elements plus its parity: the lost
	// element costs at most 5 device reads, far below the 42-cell stripe.
	if got > 6 {
		t.Fatalf("degraded single-element read issued %d device reads, want ≤ 6", got)
	}
	want := pattern(int(a.Size()), 21)[int64(lostIdx)*elemSize : int64(lostIdx+1)*elemSize]
	if !bytes.Equal(buf, want) {
		t.Fatal("degraded minimal-fetch read returned wrong data")
	}
}

// The planned rebuild must read fewer device elements than whole-stripe
// reconstruction would (the §III-D ~25% claim, measured on real devices).
func TestRebuildUsesPlannedReads(t *testing.T) {
	const stripes = 8
	a, mems := newArray(t, "dcode", 7, stripes)
	if _, err := a.WriteAt(pattern(int(a.Size()), 31), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	mems[2].Replace() // Replace resets the device's counters too
	// Element reads are counted through the array's instrumented tallies,
	// which count a coalesced device call as the element accesses it
	// replaces; the raw MemDevice counters measure physical calls.
	sumElemReads := func() (n int64) {
		for _, d := range a.Snapshot().Devices {
			n += d.Reads
		}
		return n
	}
	sumPhysReads := func() (n int64) {
		for _, m := range mems {
			n += m.Stats().Reads
		}
		return n
	}
	beforeElems, beforePhys := sumElemReads(), sumPhysReads()
	if err := a.Rebuild(2); err != nil {
		t.Fatal(err)
	}
	reads := sumElemReads() - beforeElems
	phys := sumPhysReads() - beforePhys
	fullStripe := int64(stripes * 7 * 6) // every surviving cell
	if reads >= fullStripe {
		t.Fatalf("rebuild read %d elements, not below the naive %d", reads, fullStripe)
	}
	// The optimizer's plan for D-Code p=7 reads 26 elements per stripe
	// (see recovery tests) vs 31 conventional and 42-7=35 naive.
	if want := int64(stripes * 26); reads != want {
		t.Fatalf("rebuild read %d elements, want the planned %d", reads, want)
	}
	if phys > reads {
		t.Fatalf("rebuild issued %d physical reads for %d element reads; coalescing must never inflate calls", phys, reads)
	}
	// And the rebuilt array must be byte-perfect.
	got := make([]byte, a.Size())
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(int(a.Size()), 31)) {
		t.Fatal("planned rebuild corrupted data")
	}
	if fixed, err := a.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("scrub after planned rebuild: fixed=%d err=%v", fixed, err)
	}
}

// Large partial writes must take the reconstruct-write path (cheaper than
// RMW once most of the stripe changes), and the stripe must stay consistent.
func TestReconstructWriteStrategy(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 2)
	if _, err := a.WriteAt(pattern(int(a.Size()), 40), 0); err != nil {
		t.Fatal(err)
	}
	var before int64
	for _, m := range mems {
		before += m.Stats().Reads
	}
	// Overwrite 12 of the 15 data elements of stripe 0: RMW would cost
	// 2*12 + 2*P accesses; reconstruct-write reads only the 3 untouched
	// elements.
	patch := pattern(12*elemSize, 41)
	st0 := a.Stats()
	if _, err := a.WriteAt(patch, 0); err != nil {
		t.Fatal(err)
	}
	st1 := a.Stats()
	if st1.FullStripeWrites != st0.FullStripeWrites+1 || st1.RMWWrites != st0.RMWWrites {
		t.Fatalf("large partial write did not take reconstruct-write: %+v -> %+v", st0, st1)
	}
	var after int64
	for _, m := range mems {
		after += m.Stats().Reads
	}
	if reads := after - before; reads != 3 {
		t.Fatalf("reconstruct-write read %d elements, want 3 untouched ones", reads)
	}
	// Small writes still use RMW.
	if _, err := a.WriteAt(patch[:10], 5); err != nil {
		t.Fatal(err)
	}
	if a.Stats().RMWWrites == st1.RMWWrites {
		t.Fatal("small write did not take RMW")
	}
	if fixed, err := a.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("stripe inconsistent after mixed write strategies: fixed=%d err=%v", fixed, err)
	}
	// And the data must read back exactly.
	want := pattern(int(a.Size()), 40)
	copy(want, patch)
	copy(want[5:], patch[:10])
	got := make([]byte, a.Size())
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data wrong after mixed write strategies")
	}
}

// A latent sector error must be healed transparently by read-repair, without
// failing the disk.
func TestReadRepairHealsBadSector(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 2)
	data := pattern(int(a.Size()), 55)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Damage the sector under data element 0.
	co := a.Code().DataCoord(0)
	mems[co.Col].InjectBadSector(0)

	got := make([]byte, elemSize)
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:elemSize]) {
		t.Fatal("read-repair returned wrong data")
	}
	if len(a.FailedDisks()) != 0 {
		t.Fatalf("bad sector failed the whole disk: %v", a.FailedDisks())
	}
	if a.Stats().SectorsRepaired != 1 {
		t.Fatalf("SectorsRepaired = %d, want 1", a.Stats().SectorsRepaired)
	}
	// The sector is healed on media: a direct device read works again.
	buf := make([]byte, elemSize)
	if _, err := mems[co.Col].ReadAt(buf, 0); err != nil {
		t.Fatalf("sector still bad after repair: %v", err)
	}
	// And a second array read does not repair again.
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if a.Stats().SectorsRepaired != 1 {
		t.Fatal("repair ran twice for a healed sector")
	}
}

// Scrub heals latent sector errors it walks over, including on parity cells.
func TestScrubHealsBadSectors(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 2)
	if _, err := a.WriteAt(pattern(int(a.Size()), 56), 0); err != nil {
		t.Fatal(err)
	}
	// Parity row 3, column 2, stripe 0 sits at device offset 3*elemSize.
	mems[2].InjectBadSector(int64(3 * elemSize))
	fixed, err := a.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 0 {
		t.Fatalf("scrub re-encoded %d stripes; read-repair should have healed in place", fixed)
	}
	if a.Stats().SectorsRepaired != 1 {
		t.Fatalf("SectorsRepaired = %d, want 1", a.Stats().SectorsRepaired)
	}
	if fixed, _ := a.Scrub(); fixed != 0 {
		t.Fatal("second scrub found damage")
	}
}
