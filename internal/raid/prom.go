package raid

// Prometheus exposition of a Snapshot. WriteProm renders every family the
// snapshot carries into the text format obs.PromWriter speaks, so the same
// payload that backs /stats and `raidctl stats` also backs /metrics — there
// is exactly one source of truth for what the engine measures.

import (
	"strconv"

	"dcode/internal/obs"
)

// WriteProm writes the snapshot as Prometheus text-format families, all
// prefixed dcode_. Counter families carry an op/disk label where the
// snapshot is per-kind or per-disk; latency histograms are exported as
// summary-style quantile gauges (seconds) plus _sum/_count.
func (s *Snapshot) WriteProm(pw *obs.PromWriter) {
	code := obs.Label{Name: "code", Value: s.Code}

	pw.Family("dcode_info", "Array identity: code name and disk count.", "gauge")
	pw.SampleInt("dcode_info", []obs.Label{code, {Name: "disks", Value: strconv.Itoa(s.Disks)}}, 1)

	pw.Family("dcode_ops_total", "Logical array operations by kind.", "counter")
	for _, kv := range []struct {
		op string
		n  int64
	}{
		{"read", s.Counters.Reads},
		{"write", s.Counters.Writes},
		{"degraded_read", s.Counters.DegradedReads},
		{"full_stripe_write", s.Counters.FullStripeWrites},
		{"rmw_write", s.Counters.RMWWrites},
		{"stripe_rebuild", s.Counters.StripesRebuilt},
		{"scrub_fix", s.Counters.ScrubErrorsFixed},
		{"sector_repair", s.Counters.SectorsRepaired},
		{"batched_write", s.Counters.BatchedWrites},
		{"batch_merged_write", s.Counters.BatchMergedWrites},
		{"batch_flush", s.Counters.BatchFlushes},
	} {
		pw.SampleInt("dcode_ops_total", []obs.Label{{Name: "op", Value: kv.op}}, kv.n)
	}

	pw.WriteHistogramSummary("dcode_read_latency_seconds", "ReadAt call latency.", nil, s.Latency.Read)
	pw.WriteHistogramSummary("dcode_write_latency_seconds", "WriteAt call latency.", nil, s.Latency.Write)
	pw.WriteHistogramSummary("dcode_degraded_read_latency_seconds", "Reconstruction portion of degraded reads.", nil, s.Latency.DegradedRead)
	pw.WriteHistogramSummary("dcode_rebuild_stripe_latency_seconds", "Per-stripe rebuild latency.", nil, s.Latency.Rebuild)
	pw.WriteHistogramSummary("dcode_scrub_stripe_latency_seconds", "Per-stripe scrub latency.", nil, s.Latency.Scrub)

	pw.Family("dcode_disk_ops_total", "Element-granular device operations per disk.", "counter")
	pw.Family("dcode_disk_bytes_total", "Bytes moved per disk.", "counter")
	pw.Family("dcode_disk_errors_total", "Device errors per disk.", "counter")
	for i, d := range s.Devices {
		disk := obs.Label{Name: "disk", Value: strconv.Itoa(i)}
		pw.SampleInt("dcode_disk_ops_total", []obs.Label{disk, {Name: "op", Value: "read"}}, d.Reads)
		pw.SampleInt("dcode_disk_ops_total", []obs.Label{disk, {Name: "op", Value: "write"}}, d.Writes)
		pw.SampleInt("dcode_disk_bytes_total", []obs.Label{disk, {Name: "dir", Value: "read"}}, d.BytesRead)
		pw.SampleInt("dcode_disk_bytes_total", []obs.Label{disk, {Name: "dir", Value: "written"}}, d.BytesWritten)
		pw.SampleInt("dcode_disk_errors_total", []obs.Label{disk, {Name: "op", Value: "read"}}, d.ReadErrors)
		pw.SampleInt("dcode_disk_errors_total", []obs.Label{disk, {Name: "op", Value: "write"}}, d.WriteErrors)
	}

	pw.Family("dcode_load_balance_factor", "Cumulative LF = Lmax/Lmin (paper Eq. 8); -1 when a disk is idle.", "gauge")
	pw.Sample("dcode_load_balance_factor", []obs.Label{code}, s.Load.LF)
	pw.Family("dcode_load_cv", "Coefficient of variation of per-disk load.", "gauge")
	pw.Sample("dcode_load_cv", []obs.Label{code}, s.Load.CV)

	if w := s.Window; w != nil {
		pw.Family("dcode_window_seconds", "Width of the rolling load window.", "gauge")
		pw.Sample("dcode_window_seconds", nil, float64(w.WindowNanos)/1e9)
		pw.Family("dcode_window_disk_ops", "Device operations per disk within the rolling window.", "gauge")
		for i := range w.Reads {
			disk := obs.Label{Name: "disk", Value: strconv.Itoa(i)}
			pw.SampleInt("dcode_window_disk_ops", []obs.Label{disk, {Name: "op", Value: "read"}}, w.Reads[i])
			pw.SampleInt("dcode_window_disk_ops", []obs.Label{disk, {Name: "op", Value: "write"}}, w.Writes[i])
		}
		pw.Family("dcode_window_load_balance_factor", "Live LF over the rolling window; -1 when a disk is idle.", "gauge")
		pw.Sample("dcode_window_load_balance_factor", []obs.Label{code}, w.Load.LF)
		pw.Family("dcode_window_ops_per_second", "Device operation rate over the rolling window.", "gauge")
		pw.Sample("dcode_window_ops_per_second", []obs.Label{{Name: "op", Value: "read"}}, w.ReadsPerSec)
		pw.Sample("dcode_window_ops_per_second", []obs.Label{{Name: "op", Value: "write"}}, w.WritesPerSec)
		pw.Family("dcode_window_hot_disk", "1 for disks whose windowed load exceeds the hot threshold.", "gauge")
		for _, d := range w.HotDisks {
			pw.SampleInt("dcode_window_hot_disk", []obs.Label{{Name: "disk", Value: strconv.Itoa(d)}}, 1)
		}
	}

	pw.Family("dcode_xor_ops_total", "Element XOR operations by phase.", "counter")
	pw.SampleInt("dcode_xor_ops_total", []obs.Label{{Name: "phase", Value: "encode"}}, s.XOR.EncodeOps)
	pw.SampleInt("dcode_xor_ops_total", []obs.Label{{Name: "phase", Value: "decode"}}, s.XOR.DecodeOps)
	pw.Family("dcode_xor_bytes_total", "Bytes XORed by phase.", "counter")
	pw.SampleInt("dcode_xor_bytes_total", []obs.Label{{Name: "phase", Value: "encode"}}, s.XOR.EncodeBytes)
	pw.SampleInt("dcode_xor_bytes_total", []obs.Label{{Name: "phase", Value: "decode"}}, s.XOR.DecodeBytes)

	if c := s.Cache; c != nil {
		pw.Family("dcode_cache_requests_total", "Element cache lookups by outcome.", "counter")
		pw.SampleInt("dcode_cache_requests_total", []obs.Label{{Name: "outcome", Value: "hit"}}, c.Hits)
		pw.SampleInt("dcode_cache_requests_total", []obs.Label{{Name: "outcome", Value: "miss"}}, c.Misses)
		pw.Family("dcode_cache_bytes", "Bytes currently cached.", "gauge")
		pw.SampleInt("dcode_cache_bytes", nil, c.Bytes)
	}

	if srv := s.Server; srv != nil {
		pw.Family("dcode_server_connections_total", "Block-service connections by outcome.", "counter")
		pw.SampleInt("dcode_server_connections_total", []obs.Label{{Name: "outcome", Value: "accepted"}}, srv.Accepted)
		pw.SampleInt("dcode_server_connections_total", []obs.Label{{Name: "outcome", Value: "rejected"}}, srv.Rejected)
		pw.Family("dcode_server_clients", "Currently connected block-service clients.", "gauge")
		pw.SampleInt("dcode_server_clients", nil, srv.Active)
		pw.Family("dcode_server_inflight_requests", "Requests being served right now.", "gauge")
		pw.SampleInt("dcode_server_inflight_requests", nil, srv.Inflight)
		pw.Family("dcode_server_requests_total", "Block-service requests by kind, all clients.", "counter")
		for _, kv := range []struct {
			op string
			n  int64
		}{
			{"read", srv.Totals.Reads},
			{"write", srv.Totals.Writes},
			{"flush", srv.Totals.Flushes},
			{"admin", srv.Totals.Admin},
			{"error", srv.Totals.Errors},
		} {
			pw.SampleInt("dcode_server_requests_total", []obs.Label{{Name: "op", Value: kv.op}}, kv.n)
		}
		pw.Family("dcode_server_bytes_total", "Payload bytes through the block service.", "counter")
		pw.SampleInt("dcode_server_bytes_total", []obs.Label{{Name: "dir", Value: "in"}}, srv.Totals.BytesIn)
		pw.SampleInt("dcode_server_bytes_total", []obs.Label{{Name: "dir", Value: "out"}}, srv.Totals.BytesOut)
		pw.Family("dcode_server_client_ops_total", "Requests per connected client.", "counter")
		pw.Family("dcode_server_client_bytes_total", "Payload bytes per connected client.", "counter")
		for i := range srv.Clients {
			c := &srv.Clients[i]
			id := obs.Label{Name: "client", Value: strconv.FormatInt(c.ID, 10)}
			pw.SampleInt("dcode_server_client_ops_total", []obs.Label{id}, c.Ops())
			pw.SampleInt("dcode_server_client_bytes_total", []obs.Label{id, {Name: "dir", Value: "in"}}, c.BytesIn)
			pw.SampleInt("dcode_server_client_bytes_total", []obs.Label{id, {Name: "dir", Value: "out"}}, c.BytesOut)
		}
		pw.Family("dcode_server_draining", "1 while the server is draining for shutdown.", "gauge")
		draining := int64(0)
		if srv.Draining {
			draining = 1
		}
		pw.SampleInt("dcode_server_draining", nil, draining)
	}

	if as := s.Async; as != nil {
		engine := obs.Label{Name: "engine", Value: as.Engine}
		pw.Family("dcode_async_ops_total", "Async submission engine operations by stage.", "counter")
		pw.SampleInt("dcode_async_ops_total", []obs.Label{engine, {Name: "stage", Value: "submitted"}}, as.Submitted)
		pw.SampleInt("dcode_async_ops_total", []obs.Label{engine, {Name: "stage", Value: "completed"}}, as.Completed)
		pw.Family("dcode_async_inflight", "Operations submitted but not yet completed.", "gauge")
		pw.SampleInt("dcode_async_inflight", []obs.Label{engine}, as.Inflight)
		pw.Family("dcode_async_depth", "Configured queue depth.", "gauge")
		pw.SampleInt("dcode_async_depth", []obs.Label{engine}, int64(as.Depth))
		pw.Family("dcode_async_batches_total", "Submission batches flushed to the engine.", "counter")
		pw.SampleInt("dcode_async_batches_total", []obs.Label{engine}, as.Batches)
		pw.Family("dcode_async_batch_size", "Log2-bucketed batch sizes: le is the bucket's upper bound in ops.", "counter")
		for i, n := range as.BatchSizes {
			if n == 0 {
				continue
			}
			pw.SampleInt("dcode_async_batch_size", []obs.Label{engine, {Name: "le", Value: strconv.FormatInt(1<<i, 10)}}, n)
		}
		pw.Family("dcode_async_sq_full_stalls_total", "Submissions that found the queue full.", "counter")
		pw.SampleInt("dcode_async_sq_full_stalls_total", []obs.Label{engine}, as.SQFullStalls)
		pw.WriteHistogramSummary("dcode_async_op_latency_seconds", "Submit-to-completion latency, queueing included.", []obs.Label{engine}, as.OpLatency)
	}

	if p := s.Phases; p != nil {
		pw.WriteHistogramSummary("dcode_phase_queue_wait_seconds", "Admission-queue wait of the block service (phase decomposition).", nil, p.Queue)
		pw.WriteHistogramSummary("dcode_phase_parity_seconds", "Erasure-code compute time (phase decomposition).", nil, p.Parity)
		pw.WriteHistogramSummary("dcode_phase_device_seconds", "Physical device time, all columns merged (phase decomposition).", nil, p.Device)
		pw.WriteHistogramSummary("dcode_phase_network_seconds", "Remote-column request round-trip time (phase decomposition).", nil, p.Network)
	}

	if t := s.Trace; t != nil {
		pw.Family("dcode_trace_spans_total", "Spans recorded into the trace ring.", "counter")
		pw.SampleInt("dcode_trace_spans_total", nil, t.Recorded)
		pw.Family("dcode_trace_slow_spans_total", "Spans at or over the slow threshold.", "counter")
		pw.SampleInt("dcode_trace_slow_spans_total", nil, t.SlowCaptured)
		pw.Family("dcode_trace_enabled", "1 while the tracer is recording.", "gauge")
		enabled := int64(0)
		if t.Enabled {
			enabled = 1
		}
		pw.SampleInt("dcode_trace_enabled", nil, enabled)
	}
}
