package raid

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"dcode/internal/blockdev"
	"dcode/internal/codes"
	"dcode/internal/erasure"
)

func newArrayConc(t testing.TB, id string, p int, stripes int64, opts ...Option) (*Array, []*blockdev.MemDevice) {
	t.Helper()
	code := codes.MustNew(id, p)
	devs := make([]blockdev.Device, code.Cols())
	mems := make([]*blockdev.MemDevice, code.Cols())
	devSize := stripes * int64(code.Rows()) * elemSize
	for i := range devs {
		mems[i] = blockdev.NewMem(devSize)
		devs[i] = mems[i]
	}
	a, err := New(code, devs, elemSize, stripes, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a, mems
}

func TestConcurrencyOption(t *testing.T) {
	a, _ := newArrayConc(t, "dcode", 5, 2)
	if got, want := a.Concurrency(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default Concurrency = %d, want GOMAXPROCS = %d", got, want)
	}
	a, _ = newArrayConc(t, "dcode", 5, 2, WithConcurrency(3))
	if a.Concurrency() != 3 {
		t.Fatalf("Concurrency = %d, want 3", a.Concurrency())
	}
	a, _ = newArrayConc(t, "dcode", 5, 2, WithConcurrency(0), WithConcurrency(-4))
	if got, want := a.Concurrency(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("non-positive bounds should keep the default; Concurrency = %d, want %d", got, want)
	}
}

func TestFanOutVisitsAllAndReportsError(t *testing.T) {
	for _, conc := range []int{1, 2, 4, 9} {
		a, _ := newArrayConc(t, "dcode", 5, 2, WithConcurrency(conc))
		const n = 57
		var mu sync.Mutex
		seen := make([]int, n)
		if err := a.fanOut(n, func(i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("conc=%d: unexpected error %v", conc, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("conc=%d: index %d run %d times", conc, i, c)
			}
		}
		wantErr := blockdev.ErrFailed
		err := a.fanOut(n, func(i int) error {
			if i == 13 {
				return wantErr
			}
			return nil
		})
		if err != wantErr {
			t.Fatalf("conc=%d: fanOut error = %v, want %v", conc, err, wantErr)
		}
	}
}

// TestRoundTripAcrossConcurrency checks that every fan-out bound produces the
// same user-visible data and the same bytes on every device as the fully
// serial array — the coalesced, pipelined path must be indistinguishable from
// the element-wise one.
func TestRoundTripAcrossConcurrency(t *testing.T) {
	const stripes = 6
	ref, refMems := newArrayConc(t, "dcode", 7, stripes, WithConcurrency(1))
	data := pattern(int(ref.Size()), 5)
	if _, err := ref.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	for _, conc := range []int{2, 4, 16} {
		a, mems := newArrayConc(t, "dcode", 7, stripes, WithConcurrency(conc))
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		got := make([]byte, a.Size())
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatalf("conc=%d: %v", conc, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("conc=%d: read-back mismatch", conc)
		}
		for i := range mems {
			want := make([]byte, refMems[i].Size())
			have := make([]byte, mems[i].Size())
			if _, err := refMems[i].ReadAt(want, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := mems[i].ReadAt(have, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, have) {
				t.Fatalf("conc=%d: device %d contents differ from serial array", conc, i)
			}
		}
	}
}

// TestWritePathsProduceIdenticalDevices drives the same logical contents
// through the two write strategies — one coalesced full-volume write versus
// many small unaligned RMW writes — and requires byte-identical devices:
// parity and layout must not depend on which physical path ran.
func TestWritePathsProduceIdenticalDevices(t *testing.T) {
	const stripes = 4
	full, fullMems := newArrayConc(t, "dcode", 7, stripes, WithConcurrency(4))
	rmw, rmwMems := newArrayConc(t, "dcode", 7, stripes, WithConcurrency(1))
	data := pattern(int(full.Size()), 9)
	if _, err := full.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// 37 is coprime with the element size, so every chunk boundary is
	// unaligned and the writes go through the read-modify-write path.
	for off := 0; off < len(data); off += 37 {
		end := min(off+37, len(data))
		if _, err := rmw.WriteAt(data[off:end], int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range fullMems {
		want := make([]byte, fullMems[i].Size())
		have := make([]byte, rmwMems[i].Size())
		if _, err := fullMems[i].ReadAt(want, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := rmwMems[i].ReadAt(have, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, have) {
			t.Fatalf("device %d: full-stripe and RMW paths left different bytes", i)
		}
	}
}

// TestTalliesIdenticalAcrossConcurrency runs one op sequence at fan-out 1 and
// 4 and requires the observability tallies — per-disk element I/O counts and
// executed XOR volume — to be exactly equal: concurrency and coalescing must
// change scheduling, never accounting.
func TestTalliesIdenticalAcrossConcurrency(t *testing.T) {
	run := func(conc int) Snapshot {
		const stripes = 5
		a, mems := newArrayConc(t, "dcode", 7, stripes, WithConcurrency(conc))
		data := pattern(int(a.Size()), 3)
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 3*elemSize+11)
		for off := int64(0); off+int64(len(buf)) < a.Size(); off += 7 * elemSize {
			if _, err := a.ReadAt(buf, off); err != nil {
				t.Fatal(err)
			}
			if _, err := a.WriteAt(buf, off+13); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.FailDisk(2); err != nil {
			t.Fatal(err)
		}
		mems[2].Replace()
		if err := a.Rebuild(2); err != nil {
			t.Fatal(err)
		}
		return a.Snapshot()
	}
	s1, s4 := run(1), run(4)
	for i := range s1.Devices {
		if s1.Devices[i].Reads != s4.Devices[i].Reads || s1.Devices[i].Writes != s4.Devices[i].Writes {
			t.Errorf("device %d: conc=1 R/W %d/%d, conc=4 %d/%d",
				i, s1.Devices[i].Reads, s1.Devices[i].Writes, s4.Devices[i].Reads, s4.Devices[i].Writes)
		}
		if s1.Devices[i].BytesRead != s4.Devices[i].BytesRead || s1.Devices[i].BytesWritten != s4.Devices[i].BytesWritten {
			t.Errorf("device %d: byte tallies differ across concurrency", i)
		}
	}
	if s1.XOR != s4.XOR {
		t.Errorf("XOR tallies differ: conc=1 %+v, conc=4 %+v", s1.XOR, s4.XOR)
	}
	if s1.Load.CV != s4.Load.CV {
		t.Errorf("load CV differs: %v vs %v", s1.Load.CV, s4.Load.CV)
	}
}

// TestOpsRacingFailDisk hammers the concurrent data path while disks fail and
// a rebuild runs; run under -race this exercises the locking of the stripe
// pipeline against failure discovery. Operations may legitimately fail once
// more than two disks are gone, but never corrupt: the final read-back after
// rebuild must match the last fully-written pattern.
func TestOpsRacingFailDisk(t *testing.T) {
	const stripes = 4
	a, mems := newArrayConc(t, "dcode", 7, stripes, WithConcurrency(4))
	data := pattern(int(a.Size()), 1)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			buf := make([]byte, 2*elemSize+5)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := int64((i * 613) % (int(a.Size()) - len(buf)))
				if i%2 == 0 {
					_, _ = a.ReadAt(buf, off)
				} else {
					_, _ = a.WriteAt(pattern(len(buf), seed+byte(i)), off)
				}
			}
		}(byte(w))
	}

	if err := a.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(4); err != nil {
		t.Fatal(err)
	}
	mems[1].Replace()
	if err := a.Rebuild(1); err != nil {
		t.Fatal(err)
	}
	mems[4].Replace()
	if err := a.Rebuild(4); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Quiesce and verify self-consistency: overwrite with a known pattern and
	// read it back through a degraded-free array.
	final := pattern(int(a.Size()), 77)
	if _, err := a.WriteAt(final, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, a.Size())
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, final) {
		t.Fatal("read-back mismatch after racing failures and rebuilds")
	}
	if n, err := a.Scrub(); err != nil || n != 0 {
		t.Fatalf("scrub after race: fixed=%d err=%v, want 0 and nil", n, err)
	}
}

// TestSteadyStateAllocs pins the allocation-free steady state of the pooled
// serial data path: aligned reads and full-stripe writes must not allocate
// once the pools are warm.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless under -race")
	}
	const stripes = 4
	a, _ := newArrayConc(t, "dcode", 7, stripes, WithConcurrency(1))
	data := pattern(int(a.Size()), 2)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, a.Size())

	// Warm every pool on both paths before measuring.
	for i := 0; i < 3; i++ {
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := a.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := a.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}); avg >= 1 {
		t.Errorf("aligned ReadAt allocates %.1f/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
	}); avg >= 1 {
		t.Errorf("full-stripe WriteAt allocates %.1f/op in steady state, want 0", avg)
	}
}

// TestCoalesceRuns checks the run splitter: same-column row-adjacent cells
// merge, anything else starts a new run.
func TestCoalesceRuns(t *testing.T) {
	sc := &opScratch{}
	cells := []erasure.Coord{
		{Row: 2, Col: 1}, {Row: 0, Col: 0}, {Row: 1, Col: 1},
		{Row: 1, Col: 0}, {Row: 4, Col: 1}, {Row: 3, Col: 3},
	}
	runs := coalesce(cells, sc)
	want := []cellRun{
		{col: 0, row: 0, n: 2},
		{col: 1, row: 1, n: 2},
		{col: 1, row: 4, n: 1},
		{col: 3, row: 3, n: 1},
	}
	if len(runs) != len(want) {
		t.Fatalf("coalesce = %+v, want %+v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("run %d = %+v, want %+v", i, runs[i], want[i])
		}
	}
}
