// Package raid is a working software RAID-6 engine over any array code in
// this repository: it stripes a byte-addressed volume across block devices,
// serves reads and writes (including unaligned ones), survives and repairs
// up to two concurrent disk failures, performs degraded reads and writes,
// rebuilds replaced disks, and scrubs parity.
//
// It is the "real storage system" layer of the reproduction: the paper ran
// its codes under Jerasure on a 16-disk array; this package plays that role
// on top of internal/blockdev devices.
package raid

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dcode/internal/blockdev"
	"dcode/internal/erasure"
	"dcode/internal/recovery"
	"dcode/internal/stripe"
)

// ErrTooManyFailures is returned when more than two disks are unavailable.
var ErrTooManyFailures = errors.New("raid: more than two disks failed")

// Array is a RAID-6 volume. All methods are safe for concurrent use:
// reads and writes to different stripes run in parallel (striped locking),
// same-stripe operations serialize, and maintenance operations (FailDisk,
// Rebuild, Scrub) take the array exclusively.
type Array struct {
	code     *erasure.Code
	elemSize int
	devs     []blockdev.Device
	stripes  int64

	// opMu is held shared by data-path operations and exclusively by
	// maintenance operations.
	opMu sync.RWMutex
	// stripeLocks serialize same-stripe data-path work; a data-path
	// operation holds at most one shard at a time, so there is no ordering
	// to deadlock on.
	stripeLocks [64]sync.Mutex

	failMu sync.Mutex
	failed map[int]bool

	// m and iodevs are the observability layer (see obs.go): lock-free
	// counters and latency histograms at the array level, plus a
	// blockdev.Instrumented wrapper per column feeding the per-disk I/O
	// load view. devs holds the wrapped devices, so every access — data
	// path, repair, rebuild — is tallied.
	m      arrayMetrics
	iodevs []*blockdev.Instrumented

	// jnl, when non-nil, brackets every stripe mutation with intent/commit
	// records (see journal.go).
	jnl *journal
}

func (a *Array) lockStripe(si int64) *sync.Mutex {
	return &a.stripeLocks[si%int64(len(a.stripeLocks))]
}

func (a *Array) isFailed(col int) bool {
	a.failMu.Lock()
	defer a.failMu.Unlock()
	return a.failed[col]
}

func (a *Array) markFailed(col int) {
	a.failMu.Lock()
	a.failed[col] = true
	a.failMu.Unlock()
}

func (a *Array) clearFailed(col int) {
	a.failMu.Lock()
	delete(a.failed, col)
	a.failMu.Unlock()
}

func (a *Array) failedCount() int {
	a.failMu.Lock()
	defer a.failMu.Unlock()
	return len(a.failed)
}

// Stats aggregates array-level counters.
type Stats struct {
	Reads, Writes    int64 // logical operations served
	DegradedReads    int64 // reads that needed reconstruction
	FullStripeWrites int64 // writes encoded as whole stripes
	RMWWrites        int64 // read-modify-write element updates
	StripesRebuilt   int64
	ScrubErrorsFixed int64
	SectorsRepaired  int64 // latent sector errors healed by read-repair
}

// New assembles an array from one device per column of the code. Every
// device must hold at least `stripes` stripes of rows×elemSize bytes.
func New(code *erasure.Code, devs []blockdev.Device, elemSize int, stripes int64) (*Array, error) {
	if len(devs) != code.Cols() {
		return nil, fmt.Errorf("raid: %d devices for a %d-column code", len(devs), code.Cols())
	}
	if elemSize <= 0 {
		return nil, fmt.Errorf("raid: element size %d must be positive", elemSize)
	}
	if stripes <= 0 {
		return nil, fmt.Errorf("raid: stripe count %d must be positive", stripes)
	}
	need := stripes * int64(code.Rows()) * int64(elemSize)
	for i, d := range devs {
		if d.Size() < need {
			return nil, fmt.Errorf("raid: device %d holds %d bytes, need %d", i, d.Size(), need)
		}
	}
	a := &Array{
		code:     code,
		elemSize: elemSize,
		failed:   make(map[int]bool),
		stripes:  stripes,
		iodevs:   make([]*blockdev.Instrumented, len(devs)),
		devs:     make([]blockdev.Device, len(devs)),
	}
	for i, d := range devs {
		a.iodevs[i] = blockdev.Instrument(d)
		a.devs[i] = a.iodevs[i]
	}
	return a, nil
}

// Code returns the array's erasure code.
func (a *Array) Code() *erasure.Code { return a.code }

// ElemSize returns the element size in bytes.
func (a *Array) ElemSize() int { return a.elemSize }

// Size returns the usable capacity in bytes.
func (a *Array) Size() int64 {
	return a.stripes * int64(a.code.DataElems()) * int64(a.elemSize)
}

// Stats returns a snapshot of the counters. Snapshot returns the full
// observability view (latency histograms, per-disk loads, XOR volume).
func (a *Array) Stats() Stats {
	return Stats{
		Reads:            a.m.reads.Load(),
		Writes:           a.m.writes.Load(),
		DegradedReads:    a.m.degradedReads.Load(),
		FullStripeWrites: a.m.fullStripeWrites.Load(),
		RMWWrites:        a.m.rmwWrites.Load(),
		StripesRebuilt:   a.m.stripesRebuilt.Load(),
		ScrubErrorsFixed: a.m.scrubErrorsFixed.Load(),
		SectorsRepaired:  a.m.sectorsRepaired.Load(),
	}
}

// FailedDisks returns the currently failed columns, sorted.
func (a *Array) FailedDisks() []int {
	return a.failedList()
}

func (a *Array) failedList() []int {
	a.failMu.Lock()
	defer a.failMu.Unlock()
	out := make([]int, 0, len(a.failed))
	for c := 0; c < a.code.Cols(); c++ {
		if a.failed[c] {
			out = append(out, c)
		}
	}
	return out
}

// FailDisk marks a column failed (as after an I/O error or pulled drive).
func (a *Array) FailDisk(col int) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	if col < 0 || col >= a.code.Cols() {
		return fmt.Errorf("raid: disk %d out of range", col)
	}
	a.markFailed(col)
	if a.failedCount() > 2 {
		return ErrTooManyFailures
	}
	return nil
}

// deviceOffset converts (stripeIdx, row) to a device byte offset.
func (a *Array) deviceOffset(stripeIdx int64, row int) int64 {
	return (stripeIdx*int64(a.code.Rows()) + int64(row)) * int64(a.elemSize)
}

// readElem reads one element. A latent sector error (blockdev.ErrBadSector)
// triggers transparent read-repair: the element is reconstructed from its
// parity group and rewritten in place, without failing the disk — whole-disk
// failure is reserved for other errors, which mark the column failed.
func (a *Array) readElem(stripeIdx int64, co erasure.Coord, dst []byte) error {
	if a.isFailed(co.Col) {
		return blockdev.ErrFailed
	}
	_, err := a.devs[co.Col].ReadAt(dst, a.deviceOffset(stripeIdx, co.Row))
	if err == nil {
		return nil
	}
	if errors.Is(err, blockdev.ErrBadSector) {
		if rerr := a.repairElem(stripeIdx, co, dst); rerr == nil {
			return nil
		}
	}
	a.markFailed(co.Col)
	return err
}

// repairElem reconstructs one unreadable element from a parity group of the
// same stripe and rewrites it to remap the bad sector.
func (a *Array) repairElem(stripeIdx int64, co erasure.Coord, dst []byte) error {
	// Plan as if the whole column were down — conservative (it will not read
	// sibling cells on the same disk, which are actually fine) but reuses
	// the engine's group choice and never touches the bad cell itself.
	plan, err := a.code.PlanDegraded(co.Col, []erasure.Coord{co}, nil)
	if err != nil {
		return err
	}
	elems := make(map[erasure.Coord][]byte, len(plan.Fetch))
	for _, cell := range plan.Fetch {
		buf := make([]byte, a.elemSize)
		if _, err := a.devs[cell.Col].ReadAt(buf, a.deviceOffset(stripeIdx, cell.Row)); err != nil {
			return err
		}
		elems[cell] = buf
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, step := range plan.Steps {
		g := a.code.Groups()[step.Group]
		for _, cell := range append(append([]erasure.Coord{}, g.Members...), g.Parity) {
			if cell == co {
				continue
			}
			stripe.XOR(dst, elems[cell])
			a.countDecodeXOR(1)
		}
	}
	if _, err := a.devs[co.Col].WriteAt(dst, a.deviceOffset(stripeIdx, co.Row)); err != nil {
		return err
	}
	a.m.sectorsRepaired.Inc()
	return nil
}

func (a *Array) writeElem(stripeIdx int64, co erasure.Coord, src []byte) error {
	if a.isFailed(co.Col) {
		return blockdev.ErrFailed
	}
	_, err := a.devs[co.Col].WriteAt(src, a.deviceOffset(stripeIdx, co.Row))
	if err != nil {
		a.markFailed(co.Col)
	}
	return err
}

// loadStripe reads a full stripe from the surviving disks and reconstructs
// any failed columns. A device that fails silently is discovered here (the
// read errors and marks it), in which case the load restarts without it, up
// to the code's two-failure tolerance.
func (a *Array) loadStripe(stripeIdx int64) (*stripe.Stripe, error) {
retry:
	for {
		failed := a.failedList()
		if len(failed) > 2 {
			return nil, ErrTooManyFailures
		}
		down := make(map[int]bool, len(failed))
		for _, c := range failed {
			down[c] = true
		}
		s := a.code.NewStripe(a.elemSize)
		for r := 0; r < a.code.Rows(); r++ {
			for c := 0; c < a.code.Cols(); c++ {
				if down[c] {
					continue
				}
				if err := a.readElem(stripeIdx, erasure.Coord{Row: r, Col: c}, s.Elem(r, c)); err != nil {
					// readElem marked the disk failed; restart the load
					// degraded (or give up via the failure-count check).
					continue retry
				}
			}
		}
		if len(failed) > 0 {
			if err := a.code.Reconstruct(s, failed...); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

// storeStripe writes a full encoded stripe to every surviving disk. A disk
// that fails during the store is skipped — its content is moot and the
// stripe stays reconstructable — unless that pushes the array past two
// failures.
func (a *Array) storeStripe(stripeIdx int64, s *stripe.Stripe) error {
	for r := 0; r < a.code.Rows(); r++ {
		for c := 0; c < a.code.Cols(); c++ {
			if a.isFailed(c) {
				continue
			}
			// writeElem marks the disk failed on error; keep going so the
			// surviving disks still receive a consistent stripe.
			_ = a.writeElem(stripeIdx, erasure.Coord{Row: r, Col: c}, s.Elem(r, c))
		}
	}
	if a.failedCount() > 2 {
		return ErrTooManyFailures
	}
	return nil
}

// elemRange describes the portion of one data element a byte range touches.
type elemRange struct {
	stripeIdx int64
	coord     erasure.Coord
	start     int // offset within the element
	length    int
	bufOff    int // offset within the caller's buffer
}

// splitBytes maps a byte range of the volume onto element ranges.
func (a *Array) splitBytes(off int64, n int) ([]elemRange, error) {
	if off < 0 || off+int64(n) > a.Size() {
		return nil, fmt.Errorf("raid: range [%d,%d) outside volume of %d bytes", off, off+int64(n), a.Size())
	}
	var out []elemRange
	d := int64(a.code.DataElems())
	bufOff := 0
	for n > 0 {
		elemIdx := off / int64(a.elemSize)
		within := int(off % int64(a.elemSize))
		take := a.elemSize - within
		if take > n {
			take = n
		}
		out = append(out, elemRange{
			stripeIdx: elemIdx / d,
			coord:     a.code.DataCoord(int(elemIdx % d)),
			start:     within,
			length:    take,
			bufOff:    bufOff,
		})
		off += int64(take)
		bufOff += take
		n -= take
	}
	return out, nil
}

// ReadAt reads len(p) bytes at offset off, reconstructing data on failed
// disks transparently. With a single disk down, only the elements of the
// chosen recovery groups are fetched (the erasure engine's degraded plan,
// the paper's low-I/O degraded read); a double failure falls back to
// whole-stripe reconstruction.
func (a *Array) ReadAt(p []byte, off int64) (int, error) {
	start := time.Now()
	defer func() { a.m.readLatency.Observe(time.Since(start)) }()
	a.opMu.RLock()
	defer a.opMu.RUnlock()
	ranges, err := a.splitBytes(off, len(p))
	if err != nil {
		return 0, err
	}
	a.m.reads.Inc()

	byStripe := make(map[int64][]elemRange)
	var order []int64
	for _, er := range ranges {
		if _, ok := byStripe[er.stripeIdx]; !ok {
			order = append(order, er.stripeIdx)
		}
		byStripe[er.stripeIdx] = append(byStripe[er.stripeIdx], er)
	}
	for _, si := range order {
		mu := a.lockStripe(si)
		mu.Lock()
		err := a.readStripeRanges(si, byStripe[si], p)
		mu.Unlock()
		if err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// readStripeRanges serves one stripe's element ranges, retrying with
// progressively degraded strategies as failures are discovered.
func (a *Array) readStripeRanges(si int64, ers []elemRange, p []byte) error {
	for {
		if a.failedCount() > 2 {
			return ErrTooManyFailures
		}
		elems, err := a.fetchStripeElems(si, ers)
		if err == errRetryDegraded {
			continue // a disk was discovered failed; re-plan
		}
		if err != nil {
			return err
		}
		for _, er := range ers {
			copy(p[er.bufOff:er.bufOff+er.length], elems[er.coord][er.start:er.start+er.length])
		}
		return nil
	}
}

// errRetryDegraded signals that a device failure was discovered mid-read and
// the stripe should be re-planned.
var errRetryDegraded = errors.New("raid: retry degraded")

// fetchStripeElems obtains the full contents of every element the ranges
// touch, choosing the cheapest strategy for the current failure state.
func (a *Array) fetchStripeElems(si int64, ers []elemRange) (map[erasure.Coord][]byte, error) {
	failed := a.failedList()
	down := make(map[int]bool, len(failed))
	for _, c := range failed {
		down[c] = true
	}
	wanted := make([]erasure.Coord, 0, len(ers))
	seen := make(map[erasure.Coord]bool, len(ers))
	needLost := false
	for _, er := range ers {
		if !seen[er.coord] {
			seen[er.coord] = true
			wanted = append(wanted, er.coord)
		}
		if down[er.coord.Col] {
			needLost = true
		}
	}

	elems := make(map[erasure.Coord][]byte, len(wanted))
	read := func(co erasure.Coord) error {
		buf := make([]byte, a.elemSize)
		if err := a.readElem(si, co, buf); err != nil {
			return err
		}
		elems[co] = buf
		return nil
	}

	switch {
	case !needLost:
		// All wanted elements live on healthy disks.
		for _, co := range wanted {
			if err := read(co); err != nil {
				return nil, errRetryDegraded
			}
		}
		return elems, nil

	case len(failed) == 1:
		// Single failure: fetch only the recovery plan's cells.
		start := time.Now()
		defer func() { a.m.degradedReadLatency.Observe(time.Since(start)) }()
		a.m.degradedReads.Inc()
		plan, err := a.code.PlanDegraded(failed[0], wanted, nil)
		if err != nil {
			return nil, err
		}
		for _, co := range plan.Fetch {
			if err := read(co); err != nil {
				return nil, errRetryDegraded
			}
		}
		for _, step := range plan.Steps {
			g := a.code.Groups()[step.Group]
			dst := make([]byte, a.elemSize)
			for _, cell := range append(append([]erasure.Coord{}, g.Members...), g.Parity) {
				if cell == step.Target {
					continue
				}
				stripe.XOR(dst, elems[cell])
				a.countDecodeXOR(1)
			}
			elems[step.Target] = dst
		}
		return elems, nil

	default:
		// Double failure: whole-stripe reconstruction.
		start := time.Now()
		defer func() { a.m.degradedReadLatency.Observe(time.Since(start)) }()
		a.m.degradedReads.Inc()
		s, err := a.loadStripe(si)
		if err != nil {
			return nil, err
		}
		for _, co := range wanted {
			elems[co] = s.Elem(co.Row, co.Col)
		}
		return elems, nil
	}
}

// WriteAt writes len(p) bytes at offset off. Whole stripes are encoded and
// written in one pass; partial updates use read-modify-write parity patching
// (the UpdateData path); writes while disks are failed take a degraded
// full-stripe path so parity stays consistent for the eventual rebuild.
func (a *Array) WriteAt(p []byte, off int64) (int, error) {
	start := time.Now()
	defer func() { a.m.writeLatency.Observe(time.Since(start)) }()
	a.opMu.RLock()
	defer a.opMu.RUnlock()
	ranges, err := a.splitBytes(off, len(p))
	if err != nil {
		return 0, err
	}
	a.m.writes.Inc()

	// Group element ranges by stripe.
	byStripe := make(map[int64][]elemRange)
	var order []int64
	for _, er := range ranges {
		if _, ok := byStripe[er.stripeIdx]; !ok {
			order = append(order, er.stripeIdx)
		}
		byStripe[er.stripeIdx] = append(byStripe[er.stripeIdx], er)
	}

	for _, si := range order {
		mu := a.lockStripe(si)
		mu.Lock()
		var seq uint64
		if a.jnl != nil {
			if seq, err = a.jnl.log(recIntent, 0, si); err != nil {
				mu.Unlock()
				return 0, err
			}
		}
		err := a.writeStripeRanges(si, byStripe[si], p)
		if err == nil && a.jnl != nil {
			_, err = a.jnl.log(recCommit, seq, si)
		}
		mu.Unlock()
		if err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// writeStripeRanges applies one stripe's element ranges. On a healthy array
// it picks the cheaper of the two classic strategies by element I/O count:
//
//   - read-modify-write: read old data + old parities, write new data +
//     patched parities — 2w + 2P accesses for w written elements touching P
//     distinct parities (the model of the paper's Fig. 5);
//   - reconstruct-write: read the untouched data, re-encode, write the new
//     data + every parity — (D−w) + partials reads and w + G writes.
//
// A degraded array (including failures discovered mid-write) takes the
// load-reconstruct-encode-store path. Elements already committed by RMW stay
// consistent, so falling back mid-stripe is safe.
func (a *Array) writeStripeRanges(si int64, ers []elemRange, p []byte) error {
	if a.failedCount() == 0 {
		elemSet := make(map[erasure.Coord]bool, len(ers))
		coords := make([]erasure.Coord, 0, len(ers))
		partials := 0
		for _, er := range ers {
			if !elemSet[er.coord] {
				elemSet[er.coord] = true
				coords = append(coords, er.coord)
			}
			if er.start != 0 || er.length != a.elemSize {
				partials++
			}
		}
		w := len(coords)
		pCnt := len(a.code.GroupsTouchedBy(coords))
		d := a.code.DataElems()
		g := len(a.code.Groups())
		rmwCost := 2*w + 2*pCnt
		rwCost := (d - w) + partials + w + g

		var err error
		if rwCost < rmwCost {
			err = a.reconstructWrite(si, ers, elemSet, p)
			if err == nil {
				a.m.fullStripeWrites.Inc()
				return nil
			}
		} else {
			ok := true
			for _, er := range ers {
				if err = a.rmwElement(si, er, p); err != nil {
					ok = false
					break
				}
				a.m.rmwWrites.Inc()
			}
			if ok {
				return nil
			}
		}
		if a.failedCount() > 2 {
			return err
		}
		// A disk failed mid-write; redo the stripe degraded.
	}
	s, err := a.loadStripe(si)
	if err != nil {
		return err
	}
	for _, er := range ers {
		copy(s.Elem(er.coord.Row, er.coord.Col)[er.start:er.start+er.length],
			p[er.bufOff:er.bufOff+er.length])
	}
	a.code.Encode(s)
	if err := a.storeStripe(si, s); err != nil {
		return err
	}
	a.m.fullStripeWrites.Inc()
	return nil
}

// reconstructWrite serves a large partial write on a healthy array: it reads
// only the untouched data elements (plus partially overwritten ones),
// re-encodes the stripe in memory, and writes the new data elements and
// every parity. It never reads old parity.
func (a *Array) reconstructWrite(si int64, ers []elemRange, written map[erasure.Coord]bool, p []byte) error {
	s := a.code.NewStripe(a.elemSize)
	// Read untouched data cells.
	for i := 0; i < a.code.DataElems(); i++ {
		co := a.code.DataCoord(i)
		if written[co] {
			continue
		}
		if err := a.readElem(si, co, s.Elem(co.Row, co.Col)); err != nil {
			return err
		}
	}
	// Partially overwritten elements need their old content too.
	partialDone := make(map[erasure.Coord]bool)
	for _, er := range ers {
		if (er.start != 0 || er.length != a.elemSize) && !partialDone[er.coord] {
			partialDone[er.coord] = true
			if err := a.readElem(si, er.coord, s.Elem(er.coord.Row, er.coord.Col)); err != nil {
				return err
			}
		}
	}
	for _, er := range ers {
		copy(s.Elem(er.coord.Row, er.coord.Col)[er.start:er.start+er.length],
			p[er.bufOff:er.bufOff+er.length])
	}
	a.code.Encode(s)
	// Commit: written data elements plus every parity cell. Like storeStripe,
	// a device failing mid-commit is skipped — aborting here would leave the
	// surviving cells half old, half new; completing the commit keeps them
	// mutually consistent and the failed column reconstructable.
	for co := range written {
		_ = a.writeElem(si, co, s.Elem(co.Row, co.Col))
	}
	for _, g := range a.code.Groups() {
		_ = a.writeElem(si, g.Parity, s.Elem(g.Parity.Row, g.Parity.Col))
	}
	if a.failedCount() > 2 {
		return ErrTooManyFailures
	}
	return nil
}

// rmwElement performs a read-modify-write of one (possibly partial) data
// element in two phases. Phase one gathers the old data and every old parity
// without mutating anything, so a read failure (which marks the disk) is
// safe to retry on the degraded path. Phase two commits the new data and the
// patched parities; a disk that fails during commit is skipped — its
// contents are moot and the delta applied to the surviving parities keeps
// the new value reconstructable.
func (a *Array) rmwElement(stripeIdx int64, er elemRange, p []byte) error {
	// Phase 1: gather.
	old := make([]byte, a.elemSize)
	if err := a.readElem(stripeIdx, er.coord, old); err != nil {
		return err
	}
	groups := a.code.UpdateGroups(er.coord.Row, er.coord.Col)
	parities := make([][]byte, len(groups))
	for i, gi := range groups {
		parities[i] = make([]byte, a.elemSize)
		pc := a.code.Groups()[gi].Parity
		if err := a.readElem(stripeIdx, pc, parities[i]); err != nil {
			return err
		}
	}

	// Phase 2: commit.
	newVal := append([]byte(nil), old...)
	copy(newVal[er.start:er.start+er.length], p[er.bufOff:er.bufOff+er.length])
	delta := make([]byte, a.elemSize)
	stripe.XORInto(delta, old, newVal)
	_ = a.writeElem(stripeIdx, er.coord, newVal)
	for i, gi := range groups {
		pc := a.code.Groups()[gi].Parity
		stripe.XOR(parities[i], delta)
		_ = a.writeElem(stripeIdx, pc, parities[i])
	}
	if a.failedCount() > 2 {
		return ErrTooManyFailures
	}
	return nil
}

// Rebuild reconstructs the contents of a previously failed column onto its
// (replaced) device and clears the failure mark. With a single failure it
// follows the read-minimal hybrid recovery plan (paper §III-D: ~25% fewer
// reads than rebuilding through one parity kind); a second concurrent
// failure falls back to whole-stripe reconstruction.
func (a *Array) Rebuild(col int) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	if col < 0 || col >= a.code.Cols() {
		return fmt.Errorf("raid: disk %d out of range", col)
	}
	if !a.isFailed(col) {
		return fmt.Errorf("raid: disk %d is not failed", col)
	}
	if a.failedCount() > 2 {
		return ErrTooManyFailures
	}
	var plan *recovery.Plan
	if a.failedCount() == 1 {
		if pl, err := recovery.Optimize(a.code, col); err == nil {
			plan = &pl
		}
	}
	for si := int64(0); si < a.stripes; si++ {
		stripeStart := time.Now()
		rebuilt := false
		if plan != nil && a.failedCount() == 1 {
			if err := a.rebuildStripePlanned(si, col, plan); err == nil {
				rebuilt = true
			}
			// On error a new failure was likely discovered; fall back.
		}
		if !rebuilt {
			s, err := a.loadStripe(si)
			if err != nil {
				return err
			}
			for r := 0; r < a.code.Rows(); r++ {
				off := a.deviceOffset(si, r)
				if _, err := a.devs[col].WriteAt(s.Elem(r, col), off); err != nil {
					return fmt.Errorf("raid: rebuilding disk %d stripe %d: %w", col, si, err)
				}
			}
		}
		a.m.stripesRebuilt.Inc()
		a.m.rebuildLatency.Observe(time.Since(stripeStart))
	}
	a.clearFailed(col)
	return nil
}

// rebuildStripePlanned rebuilds column col of one stripe reading only the
// elements the recovery plan needs.
func (a *Array) rebuildStripePlanned(si int64, col int, plan *recovery.Plan) error {
	// Gather the read set: every surviving cell any chosen group references,
	// plus the members of the column's own parity groups.
	need := make(map[erasure.Coord]bool)
	addGroup := func(gi int) {
		g := a.code.Groups()[gi]
		for _, m := range g.Members {
			if m.Col != col {
				need[m] = true
			}
		}
		if g.Parity.Col != col {
			need[g.Parity] = true
		}
	}
	for r := 0; r < a.code.Rows(); r++ {
		if gi := plan.GroupChoice[r]; gi >= 0 {
			addGroup(gi)
		} else if gi := a.code.ParityGroup(r, col); gi >= 0 {
			addGroup(gi)
		}
	}
	elems := make(map[erasure.Coord][]byte, len(need))
	for co := range need {
		buf := make([]byte, a.elemSize)
		if err := a.readElem(si, co, buf); err != nil {
			return err
		}
		elems[co] = buf
	}
	// Recover data rows through their chosen groups, then parity rows by
	// re-encoding (their members may include just-recovered data cells).
	column := make([][]byte, a.code.Rows())
	for r := 0; r < a.code.Rows(); r++ {
		if gi := plan.GroupChoice[r]; gi >= 0 {
			g := a.code.Groups()[gi]
			dst := make([]byte, a.elemSize)
			target := erasure.Coord{Row: r, Col: col}
			for _, cell := range append(append([]erasure.Coord{}, g.Members...), g.Parity) {
				if cell == target {
					continue
				}
				stripe.XOR(dst, elems[cell])
				a.countDecodeXOR(1)
			}
			column[r] = dst
			elems[target] = dst
		}
	}
	for r := 0; r < a.code.Rows(); r++ {
		if gi := a.code.ParityGroup(r, col); gi >= 0 {
			g := a.code.Groups()[gi]
			dst := make([]byte, a.elemSize)
			for _, m := range g.Members {
				src, ok := elems[m]
				if !ok {
					// A member this pass cannot source (e.g. an unrecovered
					// parity cell on the failed column); let the caller fall
					// back to whole-stripe reconstruction.
					return fmt.Errorf("raid: planned rebuild cannot source %v", m)
				}
				stripe.XOR(dst, src)
				a.countDecodeXOR(1)
			}
			column[r] = dst
		}
	}
	for r := 0; r < a.code.Rows(); r++ {
		if _, err := a.devs[col].WriteAt(column[r], a.deviceOffset(si, r)); err != nil {
			return fmt.Errorf("raid: rebuilding disk %d stripe %d: %w", col, si, err)
		}
	}
	return nil
}

// Scrub verifies the parity of every stripe; inconsistent stripes are
// re-encoded from their data (the data is trusted, as a real scrubber does
// absent checksums). It returns how many stripes were repaired.
func (a *Array) Scrub() (int64, error) {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	if n := a.failedCount(); n > 0 {
		return 0, fmt.Errorf("raid: scrub requires a healthy array (%d disks failed)", n)
	}
	var fixed int64
	for si := int64(0); si < a.stripes; si++ {
		stripeStart := time.Now()
		s, err := a.loadStripe(si)
		if err != nil {
			return fixed, err
		}
		if a.code.Verify(s) {
			a.m.scrubLatency.Observe(time.Since(stripeStart))
			continue
		}
		a.code.Encode(s)
		if err := a.storeStripe(si, s); err != nil {
			return fixed, err
		}
		fixed++
		a.m.scrubErrorsFixed.Inc()
		a.m.scrubLatency.Observe(time.Since(stripeStart))
	}
	return fixed, nil
}
