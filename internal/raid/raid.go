// Package raid is a working software RAID-6 engine over any array code in
// this repository: it stripes a byte-addressed volume across block devices,
// serves reads and writes (including unaligned ones), survives and repairs
// up to two concurrent disk failures, performs degraded reads and writes,
// rebuilds replaced disks, and scrubs parity.
//
// It is the "real storage system" layer of the reproduction: the paper ran
// its codes under Jerasure on a 16-disk array; this package plays that role
// on top of internal/blockdev devices.
package raid

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dcode/internal/blockdev"
	"dcode/internal/cache"
	"dcode/internal/erasure"
	"dcode/internal/obs"
	"dcode/internal/recovery"
	"dcode/internal/stripe"
	"dcode/internal/trace"
)

// ErrTooManyFailures is returned when more than two disks are unavailable.
var ErrTooManyFailures = errors.New("raid: more than two disks failed")

// Array is a RAID-6 volume. All methods are safe for concurrent use:
// reads and writes to different stripes run in parallel (striped locking),
// same-stripe operations serialize, and maintenance operations (FailDisk,
// Rebuild, Scrub) take the array exclusively.
type Array struct {
	code     *erasure.Code
	elemSize int
	devs     []blockdev.Device
	stripes  int64

	// opMu is held shared by data-path operations and exclusively by
	// maintenance operations.
	opMu sync.RWMutex
	// stripeLocks serialize same-stripe data-path work; a data-path
	// operation holds at most one shard at a time, so there is no ordering
	// to deadlock on.
	stripeLocks [64]sync.Mutex

	failMu sync.Mutex
	failed map[int]bool

	// m and iodevs are the observability layer (see obs.go): lock-free
	// counters and latency histograms at the array level, plus a
	// blockdev.Instrumented wrapper per column feeding the per-disk I/O
	// load view. devs holds the wrapped devices, so every access — data
	// path, repair, rebuild — is tallied.
	m      arrayMetrics
	iodevs []*blockdev.Instrumented

	// tr is the structured tracer (trace.Nop unless WithTracer attached
	// one) and window the always-on rolling per-disk load tracker; both are
	// wired by initObservability (see trace.go). The window* fields carry
	// WithLoadWindow's configuration from option to construction.
	tr              *trace.Tracer
	window          *obs.LoadWindow
	windowSlots     int
	windowSlotDur   time.Duration
	windowHotFactor float64

	// jnl, when non-nil, brackets every stripe mutation with intent/commit
	// records (see journal.go).
	jnl *journal

	// conc bounds each fan-out point of the data path (see concurrency.go);
	// scratch and opBufs recycle the per-operation buffers so the
	// steady-state data path does not allocate. Coalesced column I/O needs no
	// staging pool: the column-major stripe layout lets device calls move
	// bytes directly between stripe memory and the device.
	conc    int
	scratch sync.Pool
	opBufs  sync.Pool

	// batch, when non-nil, is the cross-op write-combining window (see
	// batch.go); WithBatching attaches it.
	batch *batcher

	// aio, when non-nil, is the asynchronous device-submission engine (see
	// async.go); WithAsyncIO enables it and asyncDepth carries the option's
	// queue depth to construction.
	aio        blockdev.AsyncQueue
	asyncDepth int

	// cache, when non-nil, is the sharded element cache serving read hits
	// and absorbing RMW pre-reads without device I/O (see cache.go);
	// cacheBytes carries the WithCache budget from option to construction.
	cache      *cache.Cache
	cacheBytes int64

	// plans memoizes degraded-read plans per failure signature (see
	// plancache.go); planMemoOff disables it for benchmarking the saving.
	plans       planMemo
	planMemoOff bool

	// serverStats, when set (SetServerStats), contributes the network block
	// service's per-client metrics to Snapshot.
	serverStats func() obs.ServerSnapshot

	// ev is the flight recorder (WithEvents); nil records nothing.
	ev *obs.Recorder
}

func (a *Array) lockStripe(si int64) *sync.Mutex {
	return &a.stripeLocks[si%int64(len(a.stripeLocks))]
}

func (a *Array) isFailed(col int) bool {
	a.failMu.Lock()
	defer a.failMu.Unlock()
	return a.failed[col]
}

// markFailed marks col failed and reports whether this call made the
// transition (false when the column was already down).
func (a *Array) markFailed(col int) bool {
	a.failMu.Lock()
	first := !a.failed[col]
	a.failed[col] = true
	a.failMu.Unlock()
	return first
}

// failDisk is markFailed plus the flight-recorder event, stamped with the
// trace ID of the operation that discovered the failure (0 when none).
func (a *Array) failDisk(col int, traceID uint64) {
	if a.markFailed(col) {
		a.ev.Record(obs.EvDiskFailed, int32(col), -1, traceID, 0)
	}
}

func (a *Array) clearFailed(col int) {
	a.failMu.Lock()
	delete(a.failed, col)
	a.failMu.Unlock()
}

func (a *Array) failedCount() int {
	a.failMu.Lock()
	defer a.failMu.Unlock()
	return len(a.failed)
}

// Stats aggregates array-level counters.
type Stats struct {
	Reads, Writes    int64 // logical operations served
	DegradedReads    int64 // reads that needed reconstruction
	FullStripeWrites int64 // writes encoded as whole stripes
	RMWWrites        int64 // read-modify-write element updates
	StripesRebuilt   int64
	ScrubErrorsFixed int64
	SectorsRepaired  int64 // latent sector errors healed by read-repair
}

// New assembles an array from one device per column of the code. Every
// device must hold at least `stripes` stripes of rows×elemSize bytes.
// Options tune the array; see WithConcurrency.
func New(code *erasure.Code, devs []blockdev.Device, elemSize int, stripes int64, opts ...Option) (*Array, error) {
	if len(devs) != code.Cols() {
		return nil, fmt.Errorf("raid: %d devices for a %d-column code", len(devs), code.Cols())
	}
	if elemSize <= 0 {
		return nil, fmt.Errorf("raid: element size %d must be positive", elemSize)
	}
	if stripes <= 0 {
		return nil, fmt.Errorf("raid: stripe count %d must be positive", stripes)
	}
	need := stripes * int64(code.Rows()) * int64(elemSize)
	for i, d := range devs {
		if d.Size() < need {
			return nil, fmt.Errorf("raid: device %d holds %d bytes, need %d", i, d.Size(), need)
		}
	}
	a := &Array{
		code:     code,
		elemSize: elemSize,
		failed:   make(map[int]bool),
		stripes:  stripes,
		iodevs:   make([]*blockdev.Instrumented, len(devs)),
		devs:     make([]blockdev.Device, len(devs)),
		conc:     defaultConcurrency(),
	}
	for i, d := range devs {
		a.iodevs[i] = blockdev.Instrument(d)
		a.devs[i] = a.iodevs[i]
	}
	for _, opt := range opts {
		opt(a)
	}
	if a.cacheBytes > 0 {
		a.cache = cache.New(a.cacheBytes, elemSize)
	}
	if a.asyncDepth > 0 {
		// The queue targets the Instrumented wrappers (column index = target
		// index), so async completions tally exactly like synchronous calls.
		a.aio = blockdev.NewAsyncQueue(a.devs, a.asyncDepth)
	}
	a.initObservability()
	return a, nil
}

// Code returns the array's erasure code.
func (a *Array) Code() *erasure.Code { return a.code }

// ElemSize returns the element size in bytes.
func (a *Array) ElemSize() int { return a.elemSize }

// Size returns the usable capacity in bytes.
func (a *Array) Size() int64 {
	return a.stripes * int64(a.code.DataElems()) * int64(a.elemSize)
}

// Stats returns a snapshot of the counters. Snapshot returns the full
// observability view (latency histograms, per-disk loads, XOR volume).
func (a *Array) Stats() Stats {
	return Stats{
		Reads:            a.m.reads.Load(),
		Writes:           a.m.writes.Load(),
		DegradedReads:    a.m.degradedReads.Load(),
		FullStripeWrites: a.m.fullStripeWrites.Load(),
		RMWWrites:        a.m.rmwWrites.Load(),
		StripesRebuilt:   a.m.stripesRebuilt.Load(),
		ScrubErrorsFixed: a.m.scrubErrorsFixed.Load(),
		SectorsRepaired:  a.m.sectorsRepaired.Load(),
	}
}

// FailedDisks returns the currently failed columns, sorted.
func (a *Array) FailedDisks() []int {
	return a.failedList()
}

func (a *Array) failedList() []int {
	a.failMu.Lock()
	defer a.failMu.Unlock()
	out := make([]int, 0, len(a.failed))
	for c := 0; c < a.code.Cols(); c++ {
		if a.failed[c] {
			out = append(out, c)
		}
	}
	return out
}

// FailDisk marks a column failed (as after an I/O error or pulled drive).
// It is a batching barrier: parked writes flush first (while the column can
// still take its share), and a flush failure is reported alongside the
// disk-state result — the mark is applied regardless.
func (a *Array) FailDisk(col int) error {
	ferr := a.Flush()
	a.opMu.Lock()
	defer a.opMu.Unlock()
	if col < 0 || col >= a.code.Cols() {
		err := fmt.Errorf("raid: disk %d out of range", col)
		if ferr != nil {
			return errors.Join(ferr, err)
		}
		return err
	}
	a.failDisk(col, 0)
	// The column's cached entries are still logically valid (they predate
	// the failure), but dropping them — and the memoized plans — keeps the
	// coherence argument local; see cache.go.
	a.cacheInvalidateColumn(col)
	a.invalidatePlans()
	if a.failedCount() > 2 {
		if ferr != nil {
			return errors.Join(ferr, ErrTooManyFailures)
		}
		return ErrTooManyFailures
	}
	return ferr
}

// deviceOffset converts (stripeIdx, row) to a device byte offset.
func (a *Array) deviceOffset(stripeIdx int64, row int) int64 {
	return (stripeIdx*int64(a.code.Rows()) + int64(row)) * int64(a.elemSize)
}

// readElem reads one element. A latent sector error (blockdev.ErrBadSector)
// triggers transparent read-repair: the element is reconstructed from its
// parity group and rewritten in place, without failing the disk — whole-disk
// failure is reserved for other errors, which mark the column failed.
func (a *Array) readElem(stripeIdx int64, co erasure.Coord, dst []byte) error {
	return a.readElemL(stripeIdx, co, dst, trace.Link{})
}

// readElemL is readElem carrying the caller's span link, so a remote
// column's serve span joins the operation's trace and a failure event
// records which operation discovered it.
func (a *Array) readElemL(stripeIdx int64, co erasure.Coord, dst []byte, l trace.Link) error {
	if a.isFailed(co.Col) {
		return blockdev.ErrFailed
	}
	_, err := a.iodevs[co.Col].ReadAtLink(dst, a.deviceOffset(stripeIdx, co.Row), l)
	if err == nil {
		return nil
	}
	if errors.Is(err, blockdev.ErrBadSector) {
		if rerr := a.repairElem(stripeIdx, co, dst); rerr == nil {
			return nil
		}
	}
	a.failDisk(co.Col, l.Trace)
	return err
}

// repairElem reconstructs one unreadable element from a parity group of the
// same stripe and rewrites it to remap the bad sector.
func (a *Array) repairElem(stripeIdx int64, co erasure.Coord, dst []byte) error {
	// Plan as if the whole column were down — conservative (it will not read
	// sibling cells on the same disk, which are actually fine) but reuses
	// the engine's group choice and never touches the bad cell itself. The
	// plan is memoized per (column, cell) signature; treat it as read-only.
	plan, err := a.planDegraded(co.Col, []erasure.Coord{co})
	if err != nil {
		return err
	}
	elems := make(map[erasure.Coord][]byte, len(plan.Fetch))
	for _, cell := range plan.Fetch {
		buf := make([]byte, a.elemSize)
		if _, err := a.devs[cell.Col].ReadAt(buf, a.deviceOffset(stripeIdx, cell.Row)); err != nil {
			return err
		}
		elems[cell] = buf
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, step := range plan.Steps {
		g := a.code.Groups()[step.Group]
		for _, cell := range append(append([]erasure.Coord{}, g.Members...), g.Parity) {
			if cell == co {
				continue
			}
			stripe.XOR(dst, elems[cell])
			a.countDecodeXOR(1)
		}
	}
	if _, err := a.devs[co.Col].WriteAt(dst, a.deviceOffset(stripeIdx, co.Row)); err != nil {
		return err
	}
	// The rewritten sector now holds the reconstructed value; drop any
	// cached copy so the next read re-verifies against the device.
	a.cacheInvalidate(stripeIdx, co)
	a.m.sectorsRepaired.Inc()
	return nil
}

func (a *Array) writeElem(stripeIdx int64, co erasure.Coord, src []byte) error {
	return a.writeElemL(stripeIdx, co, src, trace.Link{})
}

// writeElemL is writeElem carrying the caller's span link; see readElemL.
func (a *Array) writeElemL(stripeIdx int64, co erasure.Coord, src []byte, l trace.Link) error {
	if a.isFailed(co.Col) {
		return blockdev.ErrFailed
	}
	_, err := a.iodevs[co.Col].WriteAtLink(src, a.deviceOffset(stripeIdx, co.Row), l)
	if err != nil {
		a.failDisk(co.Col, l.Trace)
	}
	return err
}

// loadStripe reads a full stripe from the surviving disks into sc.s and
// reconstructs any failed columns — each surviving column as one coalesced
// device read, fanned out per column or batch-submitted through the async
// engine. A device that fails silently is discovered here (the read errors
// and marks it), in which case the load restarts without it, up to the
// code's two-failure tolerance.
func (a *Array) loadStripe(stripeIdx int64, sc *opScratch) error {
	rows := a.code.Rows()
	s := sc.s
	for {
		failed := a.failedList()
		if len(failed) > 2 {
			return ErrTooManyFailures
		}
		var err error
		if a.aio != nil {
			runs := sc.runs[:0]
			for c := 0; c < a.code.Cols(); c++ {
				if !slices.Contains(failed, c) {
					runs = append(runs, cellRun{col: c, row: 0, n: rows})
				}
			}
			sc.runs = runs
			err = a.readRunsAsync(stripeIdx, runs, s, sc)
		} else {
			err = a.fanOut(a.code.Cols(), func(c int) error {
				for _, f := range failed {
					if f == c {
						return nil
					}
				}
				return a.readRun(stripeIdx, cellRun{col: c, row: 0, n: rows}, s, sc.tc.Link())
			})
		}
		if err != nil {
			// The failing read marked its disk; restart the load degraded
			// (or give up via the failure-count check — the failed set only
			// grows, so this terminates).
			continue
		}
		if len(failed) > 0 {
			ps := time.Now()
			err := a.code.Reconstruct(s, failed...)
			a.m.parityLatency.Observe(time.Since(ps))
			if err != nil {
				return err
			}
		}
		return nil
	}
}

// storeStripe writes a full encoded stripe from sc.s to every surviving
// disk — each column as one coalesced device write, fanned out per column or
// batch-submitted through the async engine. A disk that fails during the
// store is skipped — its content is moot and the stripe stays
// reconstructable — unless that pushes the array past two failures.
func (a *Array) storeStripe(stripeIdx int64, sc *opScratch) error {
	rows := a.code.Rows()
	s := sc.s
	if a.aio != nil {
		runs := sc.runs[:0]
		for c := 0; c < a.code.Cols(); c++ {
			if !a.isFailed(c) {
				runs = append(runs, cellRun{col: c, row: 0, n: rows})
			}
		}
		sc.runs = runs
		a.writeRunsBestEffortAsync(stripeIdx, runs, s, sc)
	} else {
		_ = a.fanOut(a.code.Cols(), func(c int) error {
			if a.isFailed(c) {
				return nil
			}
			// writeRunBestEffort marks a disk failed on error and keeps going
			// so the surviving disks still receive a consistent stripe.
			a.writeRunBestEffort(stripeIdx, cellRun{col: c, row: 0, n: rows}, s, sc.tc.Link())
			return nil
		})
	}
	if a.failedCount() > 2 {
		return ErrTooManyFailures
	}
	return nil
}

// elemRange describes the portion of one data element a byte range touches.
type elemRange struct {
	stripeIdx int64
	coord     erasure.Coord
	start     int // offset within the element
	length    int
	bufOff    int // offset within the caller's buffer
}

// splitBytes maps a byte range of the volume onto element ranges, appending
// to out (pooled by the caller). Ranges are emitted in volume order, so
// their stripe indices are non-decreasing — stripeRuns relies on that.
func (a *Array) splitBytes(off int64, n int, out []elemRange) ([]elemRange, error) {
	if off < 0 || off+int64(n) > a.Size() {
		return out, outOfRangeErr(a, off, n)
	}
	d := int64(a.code.DataElems())
	bufOff := 0
	for n > 0 {
		elemIdx := off / int64(a.elemSize)
		within := int(off % int64(a.elemSize))
		take := a.elemSize - within
		if take > n {
			take = n
		}
		out = append(out, elemRange{
			stripeIdx: elemIdx / d,
			coord:     a.code.DataCoord(int(elemIdx % d)),
			start:     within,
			length:    take,
			bufOff:    bufOff,
		})
		off += int64(take)
		bufOff += take
		n -= take
	}
	return out, nil
}

// ReadAt reads len(p) bytes at offset off, reconstructing data on failed
// disks transparently. Independent stripes are served concurrently (bounded
// by the Concurrency option; the per-stripe locks keep same-stripe work
// serialized). With a single disk down, only the elements of the chosen
// recovery groups are fetched (the erasure engine's degraded plan, the
// paper's low-I/O degraded read); a double failure falls back to
// whole-stripe reconstruction.
func (a *Array) ReadAt(p []byte, off int64) (n int, err error) {
	return a.ReadAtLink(p, off, trace.Link{})
}

// ReadAtLink is ReadAt under an incoming trace parent: the op span (and
// everything beneath it, down to remote-column requests) joins the caller's
// end-to-end trace instead of rooting a new one. The network serve layer
// passes the link a stamped request carried; the zero Link behaves exactly
// like ReadAt.
func (a *Array) ReadAtLink(p []byte, off int64, parent trace.Link) (n int, err error) {
	// Read-your-writes with batching on: any stripe this read touches that
	// has parked writes is flushed first. Cheap when the window is empty.
	if a.batch != nil && len(p) > 0 && off >= 0 && off+int64(len(p)) <= a.Size() {
		sdb := a.stripeDataBytes()
		if err := a.flushStripes(off/sdb, (off+int64(len(p))-1)/sdb); err != nil {
			return 0, err
		}
	}
	tc := a.tr.Begin(trace.OpRead, -1, -1, parent)
	start := time.Now()
	defer func() {
		a.m.readLatency.Observe(time.Since(start))
		a.tr.End(tc, int64(n), err != nil)
	}()
	a.opMu.RLock()
	defer a.opMu.RUnlock()
	ob := a.getOpBuf()
	defer a.putOpBuf(ob)
	ranges, err := a.splitBytes(off, len(p), ob.ranges[:0])
	ob.ranges = ranges
	if err != nil {
		return 0, err
	}
	a.m.reads.Inc()

	runs := stripeRuns(ranges, ob.runs[:0])
	ob.runs = runs
	// Serial fast path: constructing the fanOut closure heap-allocates (it
	// escapes into the goroutine path), so loop directly when not fanning out.
	if a.conc <= 1 || len(runs) <= 1 {
		for _, r := range runs {
			if err := a.readStripeRun(r, ranges, p, tc.Link()); err != nil {
				return 0, err
			}
		}
		return len(p), nil
	}
	err = a.fanOut(len(runs), func(i int) error {
		return a.readStripeRun(runs[i], ranges, p, tc.Link())
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// readStripeRun serves one stripe's slice of the call's element ranges under
// that stripe's lock, with its own pooled scratch. The stripe-task span
// lands in sc.tc so everything below parents to it.
func (a *Array) readStripeRun(r stripeRun, ranges []elemRange, p []byte, parent trace.Link) error {
	sc := a.getScratch()
	defer a.putScratch(sc)
	sc.tc = a.tr.Begin(trace.OpReadStripe, -1, r.si, parent)
	mu := a.lockStripe(r.si)
	mu.Lock()
	err := a.readStripeRanges(r.si, ranges[r.lo:r.hi], p, sc)
	mu.Unlock()
	a.tr.End(sc.tc, rangeBytes(ranges[r.lo:r.hi], sc.tc), err != nil)
	return err
}

// rangeBytes totals the byte span of a stripe task for its trace span; it
// costs nothing when tracing is off.
func rangeBytes(ers []elemRange, tc trace.Ctx) int64 {
	if !tc.Active() {
		return 0
	}
	var n int64
	for _, er := range ers {
		n += int64(er.length)
	}
	return n
}

// readStripeRanges serves one stripe's element ranges, retrying with
// progressively degraded strategies as failures are discovered. The fetched
// elements land in sc.s.
func (a *Array) readStripeRanges(si int64, ers []elemRange, p []byte, sc *opScratch) error {
	// Aligned ranges on a healthy cache-less array scatter device reads
	// straight into p; any error falls through to the general path below.
	if a.readStripeDirect(si, ers, p, sc) {
		return nil
	}
	for {
		if a.failedCount() > 2 {
			return ErrTooManyFailures
		}
		err := a.fetchStripeElems(si, ers, sc)
		if err == errRetryDegraded {
			continue // a disk was discovered failed; re-plan
		}
		if err != nil {
			return err
		}
		for _, er := range ers {
			copy(p[er.bufOff:er.bufOff+er.length],
				sc.s.Elem(er.coord.Row, er.coord.Col)[er.start:er.start+er.length])
		}
		return nil
	}
}

// errRetryDegraded signals that a device failure was discovered mid-read and
// the stripe should be re-planned.
var errRetryDegraded = errors.New("raid: retry degraded")

// outOfRangeErr is the shared out-of-bounds error of the data path, so the
// batched and unbatched write fronts reject a bad range identically.
func outOfRangeErr(a *Array, off int64, n int) error {
	return fmt.Errorf("raid: range [%d,%d) outside volume of %d bytes", off, off+int64(n), a.Size())
}

// fetchStripeElems reads the full contents of every element the ranges touch
// into sc.s, choosing the cheapest strategy for the current failure state.
// With a cache attached, wanted cells on failed columns are served from it
// when present — skipping reconstruction entirely — and healthy-column hits
// are absorbed inside readCells.
func (a *Array) fetchStripeElems(si int64, ers []elemRange, sc *opScratch) error {
	failed := a.failedList()
	cols := a.code.Cols()
	clear(sc.seen)
	wanted := sc.coords[:0]
	needLost := false
	for _, er := range ers {
		idx := er.coord.Row*cols + er.coord.Col
		if sc.seen[idx] {
			continue
		}
		sc.seen[idx] = true
		lost := false
		for _, f := range failed {
			if er.coord.Col == f {
				lost = true
			}
		}
		if lost && a.cacheGet(si, er.coord, sc.s.Elem(er.coord.Row, er.coord.Col)) {
			// A previously reconstructed (or pre-failure write-through)
			// element: reconstruction is paid once, then served from memory.
			continue
		}
		wanted = append(wanted, er.coord)
		if lost {
			needLost = true
		}
	}
	sc.coords = wanted
	if len(wanted) == 0 {
		return nil
	}

	switch {
	case !needLost:
		// All wanted elements live on healthy disks.
		if _, err := a.readCells(si, wanted, sc.s, sc); err != nil {
			return errRetryDegraded
		}
		return nil

	case len(failed) == 1:
		// Single failure: fetch only the recovery plan's cells. The plan is
		// memoized and shared — copy its fetch list before readCells, which
		// sorts in place during coalescing.
		start := time.Now()
		tcd := a.tr.Begin(trace.OpDegradedRead, int32(failed[0]), si, sc.tc.Link())
		a.ev.Record(obs.EvDegradedRead, int32(failed[0]), si, tcd.Link().Trace, 0)
		defer func() {
			a.m.degradedReadLatency.Observe(time.Since(start))
			a.tr.End(tcd, int64(len(wanted))*int64(a.elemSize), false)
		}()
		a.m.degradedReads.Inc()
		plan, err := a.planDegraded(failed[0], wanted)
		if err != nil {
			return err
		}
		fetch := append(sc.fetch[:0], plan.Fetch...)
		sc.fetch = fetch
		if _, err := a.readCells(si, fetch, sc.s, sc); err != nil {
			return errRetryDegraded
		}
		for _, step := range plan.Steps {
			// Recover target = XOR of its group's other cells; seed with the
			// first and fold the rest through the multi-source kernel. One
			// XOR op per non-target cell, same count as the iterated path.
			g := a.code.Groups()[step.Group]
			dst := sc.s.Elem(step.Target.Row, step.Target.Col)
			srcs := sc.srcs[:0]
			var seed []byte
			addCell := func(cell erasure.Coord) {
				if cell == step.Target {
					return
				}
				e := sc.s.Elem(cell.Row, cell.Col)
				if seed == nil {
					seed = e
					return
				}
				srcs = append(srcs, e)
			}
			for _, cell := range g.Members {
				addCell(cell)
			}
			addCell(g.Parity)
			copy(dst, seed)
			stripe.XORMulti(dst, srcs...)
			sc.srcs = srcs
			a.countDecodeXOR(1 + len(srcs))
			// Memoize the reconstruction so repeated reads of the failed
			// column hit the cache instead of re-deriving the element.
			a.cachePut(si, step.Target, dst)
		}
		return nil

	default:
		// Double failure: whole-stripe reconstruction.
		start := time.Now()
		tcd := a.tr.Begin(trace.OpDegradedRead, -1, si, sc.tc.Link())
		a.ev.Record(obs.EvDegradedRead, -1, si, tcd.Link().Trace, 0)
		defer func() {
			a.m.degradedReadLatency.Observe(time.Since(start))
			a.tr.End(tcd, int64(len(wanted))*int64(a.elemSize), false)
		}()
		a.m.degradedReads.Inc()
		if err := a.loadStripe(si, sc); err != nil {
			return err
		}
		// Insert the wanted cells (loadStripe bypasses the cache): the lost
		// ones memoize reconstruction, the healthy ones the device read.
		if a.cache != nil {
			for _, co := range wanted {
				a.cachePut(si, co, sc.s.Elem(co.Row, co.Col))
			}
		}
		return nil
	}
}

// WriteAt writes len(p) bytes at offset off. Whole stripes are encoded and
// written in one pass; partial updates use read-modify-write parity patching
// (the UpdateData path); writes while disks are failed take a degraded
// full-stripe path so parity stays consistent for the eventual rebuild.
// With batching enabled (WithBatching), small stripe-local writes park in
// the write-combining window instead and land on flush; see batch.go.
func (a *Array) WriteAt(p []byte, off int64) (n int, err error) {
	return a.WriteAtLink(p, off, trace.Link{})
}

// WriteAtLink is WriteAt under an incoming trace parent; see ReadAtLink.
// Writes that park in the write-combining window lose the link — their device
// I/O happens on a later flush, under the flush's own span.
func (a *Array) WriteAtLink(p []byte, off int64, parent trace.Link) (n int, err error) {
	if a.batch != nil {
		return a.writeAtBatched(p, off, parent)
	}
	return a.writeAtDirect(p, off, parent)
}

// writeAtDirect is the regular write path, batching-agnostic; the batched
// front end writes through it for anything the window cannot hold.
func (a *Array) writeAtDirect(p []byte, off int64, parent trace.Link) (n int, err error) {
	tc := a.tr.Begin(trace.OpWrite, -1, -1, parent)
	start := time.Now()
	defer func() {
		a.m.writeLatency.Observe(time.Since(start))
		a.tr.End(tc, int64(n), err != nil)
	}()
	a.opMu.RLock()
	defer a.opMu.RUnlock()
	ob := a.getOpBuf()
	defer a.putOpBuf(ob)
	ranges, err := a.splitBytes(off, len(p), ob.ranges[:0])
	ob.ranges = ranges
	if err != nil {
		return 0, err
	}
	a.m.writes.Inc()

	// Independent stripes proceed concurrently; the journal serializes its
	// own ring internally, and intent/commit bracket each stripe's mutation
	// exactly as on the serial path.
	runs := stripeRuns(ranges, ob.runs[:0])
	ob.runs = runs
	// Serial fast path, as in ReadAt: skip the heap-allocating closure.
	if a.conc <= 1 || len(runs) <= 1 {
		for _, r := range runs {
			if err := a.writeStripeRun(r, ranges, p, tc.Link()); err != nil {
				return 0, err
			}
		}
		return len(p), nil
	}
	err = a.fanOut(len(runs), func(i int) error {
		return a.writeStripeRun(runs[i], ranges, p, tc.Link())
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// writeStripeRun applies one stripe's slice of the call's element ranges
// under that stripe's lock, bracketed by journal intent/commit records when a
// journal is attached.
func (a *Array) writeStripeRun(r stripeRun, ranges []elemRange, p []byte, parent trace.Link) error {
	sc := a.getScratch()
	defer a.putScratch(sc)
	sc.tc = a.tr.Begin(trace.OpWriteStripe, -1, r.si, parent)
	werr := a.writeStripeRunLocked(r, ranges, p, sc)
	a.tr.End(sc.tc, rangeBytes(ranges[r.lo:r.hi], sc.tc), werr != nil)
	return werr
}

func (a *Array) writeStripeRunLocked(r stripeRun, ranges []elemRange, p []byte, sc *opScratch) error {
	mu := a.lockStripe(r.si)
	mu.Lock()
	defer mu.Unlock()
	var seq uint64
	var jerr error
	if a.jnl != nil {
		if seq, jerr = a.jnl.log(recIntent, 0, r.si); jerr != nil {
			return jerr
		}
	}
	werr := a.writeStripeRanges(r.si, ranges[r.lo:r.hi], p, sc)
	if werr == nil && a.jnl != nil {
		_, werr = a.jnl.log(recCommit, seq, r.si)
	}
	return werr
}

// writeStripeRanges applies one stripe's element ranges. On a healthy array
// it picks the cheaper of the two classic strategies by element I/O count:
//
//   - read-modify-write: read old data + old parities, write new data +
//     patched parities — 2w + 2P accesses for w written elements touching P
//     distinct parities (the model of the paper's Fig. 5);
//   - reconstruct-write: read the untouched data, re-encode, write the new
//     data + every parity — (D−w) + partials reads and w + G writes.
//
// A degraded array (including failures discovered mid-write) takes the
// load-reconstruct-encode-store path. Elements already committed by RMW stay
// consistent, so falling back mid-stripe is safe.
func (a *Array) writeStripeRanges(si int64, ers []elemRange, p []byte, sc *opScratch) error {
	// An aligned full-stripe write on a healthy cache-less array gathers
	// straight from p, encoding parity from the user's views (EncodeFrom) —
	// the data bytes never transit stripe memory.
	if done, err := a.writeStripeDirect(si, ers, p, sc); done {
		return err
	}
	if a.failedCount() == 0 {
		cols := a.code.Cols()
		clear(sc.seen)
		clear(sc.part)
		clear(sc.gseen)
		coords := sc.coords[:0]
		partials := 0
		for _, er := range ers {
			idx := er.coord.Row*cols + er.coord.Col
			if !sc.seen[idx] {
				sc.seen[idx] = true
				coords = append(coords, er.coord)
			}
			if er.start != 0 || er.length != a.elemSize {
				partials++
				sc.part[idx] = true
			}
		}
		sc.coords = coords
		w := len(coords)
		// Count the distinct parities the write touches via the gseen bitmap
		// — same set GroupsTouchedBy computes, without its map and sort.
		pCnt := 0
		for _, co := range coords {
			for _, gi := range a.code.UpdateGroups(co.Row, co.Col) {
				if !sc.gseen[gi] {
					sc.gseen[gi] = true
					pCnt++
				}
			}
		}
		d := a.code.DataElems()
		g := len(a.code.Groups())
		rmwCost := 2*w + 2*pCnt
		rwCost := (d - w) + partials + w + g

		var err error
		if rwCost < rmwCost {
			err = a.reconstructWrite(si, ers, p, sc)
			if err == nil {
				a.m.fullStripeWrites.Inc()
				return nil
			}
		} else {
			ok := true
			for _, er := range ers {
				if err = a.rmwElement(si, er, p, sc); err != nil {
					ok = false
					break
				}
				a.m.rmwWrites.Inc()
			}
			if ok {
				return nil
			}
		}
		if a.failedCount() > 2 {
			return err
		}
		// A disk failed mid-write; redo the stripe degraded.
	}
	if err := a.loadStripe(si, sc); err != nil {
		return err
	}
	for _, er := range ers {
		copy(sc.s.Elem(er.coord.Row, er.coord.Col)[er.start:er.start+er.length],
			p[er.bufOff:er.bufOff+er.length])
	}
	ps := time.Now()
	a.code.Encode(sc.s)
	a.m.parityLatency.Observe(time.Since(ps))
	if err := a.storeStripe(si, sc); err != nil {
		return err
	}
	// Write the whole encoded stripe through: on a degraded array the cells
	// of failed columns cannot be stored, but their logical value is exactly
	// what sc.s holds, so subsequent degraded reads hit without rebuilding.
	a.cachePutStripe(si, sc.s)
	a.m.fullStripeWrites.Inc()
	return nil
}

// reconstructWrite serves a large partial write on a healthy array: it reads
// only the untouched data elements (plus partially overwritten ones),
// re-encodes the stripe in memory, and writes the new data elements and
// every parity. It never reads old parity. The written set and partial marks
// arrive in sc.seen/sc.part from writeStripeRanges; both the reads and the
// commit are coalesced per column.
func (a *Array) reconstructWrite(si int64, ers []elemRange, p []byte, sc *opScratch) error {
	cols := a.code.Cols()
	// Read set: untouched data cells, plus partially overwritten ones (they
	// need their old content under the new bytes).
	fetch := sc.fetch[:0]
	for i := 0; i < a.code.DataElems(); i++ {
		co := a.code.DataCoord(i)
		idx := co.Row*cols + co.Col
		if sc.seen[idx] && !sc.part[idx] {
			continue
		}
		fetch = append(fetch, co)
	}
	sc.fetch = fetch
	if _, err := a.readCells(si, fetch, sc.s, sc); err != nil {
		return err
	}
	for _, er := range ers {
		copy(sc.s.Elem(er.coord.Row, er.coord.Col)[er.start:er.start+er.length],
			p[er.bufOff:er.bufOff+er.length])
	}
	ps := time.Now()
	a.code.Encode(sc.s)
	a.m.parityLatency.Observe(time.Since(ps))
	// Commit: written data elements plus every parity cell. Like storeStripe,
	// a device failing mid-commit is skipped — aborting here would leave the
	// surviving cells half old, half new; completing the commit keeps them
	// mutually consistent and the failed column reconstructable.
	commit := sc.fetch[:0]
	commit = append(commit, sc.coords...)
	for _, g := range a.code.Groups() {
		commit = append(commit, g.Parity)
	}
	sc.fetch = commit
	a.writeCellsBestEffort(si, commit, sc.s, sc)
	// Write-through: the committed cells' new logical values. A device that
	// failed mid-commit keeps the cached value correct — the surviving
	// parities reconstruct exactly what sc.s holds.
	if a.cache != nil {
		for _, co := range commit {
			a.cachePut(si, co, sc.s.Elem(co.Row, co.Col))
		}
	}
	if a.failedCount() > 2 {
		return ErrTooManyFailures
	}
	return nil
}

// rmwElement performs a read-modify-write of one (possibly partial) data
// element in two phases. Phase one gathers the old data and every old parity
// (coalesced where adjacent) without mutating anything, so a read failure
// (which marks the disk) is safe to retry on the degraded path. Phase two
// commits the new data and the patched parities; a disk that fails during
// commit is skipped — its contents are moot and the delta applied to the
// surviving parities keeps the new value reconstructable.
func (a *Array) rmwElement(stripeIdx int64, er elemRange, p []byte, sc *opScratch) error {
	// Phase 1: gather old data + old parities into sc.s.
	groups := a.code.UpdateGroups(er.coord.Row, er.coord.Col)
	fetch := sc.fetch[:0]
	fetch = append(fetch, er.coord)
	for _, gi := range groups {
		fetch = append(fetch, a.code.Groups()[gi].Parity)
	}
	sc.fetch = fetch
	hits, err := a.readCells(stripeIdx, fetch, sc.s, sc)
	if err != nil {
		return err
	}
	// Each pre-read served from cache is one device read the classic
	// 4-I/O read-modify-write no longer performs.
	if hits > 0 {
		a.m.rmwPreReadsAbsorbed.Add(int64(hits))
	}

	// Phase 2: commit.
	old := sc.s.Elem(er.coord.Row, er.coord.Col)
	newVal := sc.b1
	copy(newVal, old)
	copy(newVal[er.start:er.start+er.length], p[er.bufOff:er.bufOff+er.length])
	delta := sc.b2
	stripe.XORInto(delta, old, newVal)
	_ = a.writeElemTraced(stripeIdx, er.coord, newVal, sc.tc.Link())
	a.cachePut(stripeIdx, er.coord, newVal)
	for _, gi := range groups {
		pc := a.code.Groups()[gi].Parity
		pe := sc.s.Elem(pc.Row, pc.Col)
		stripe.XOR(pe, delta)
		_ = a.writeElemTraced(stripeIdx, pc, pe, sc.tc.Link())
		a.cachePut(stripeIdx, pc, pe)
	}
	if a.failedCount() > 2 {
		return ErrTooManyFailures
	}
	return nil
}

// Rebuild reconstructs the contents of a previously failed column onto its
// (replaced) device and clears the failure mark. With a single failure it
// follows the read-minimal hybrid recovery plan (paper §III-D: ~25% fewer
// reads than rebuilding through one parity kind); a second concurrent
// failure falls back to whole-stripe reconstruction.
func (a *Array) Rebuild(col int) (err error) {
	// Batching barrier: the rebuilt column must include every acknowledged
	// write, so the window drains before the array is taken exclusively.
	if err := a.Flush(); err != nil {
		return err
	}
	tcOp := a.tr.Begin(trace.OpRebuild, int32(col), -1, trace.Link{})
	defer func() { a.tr.End(tcOp, 0, err != nil) }()
	a.opMu.Lock()
	defer a.opMu.Unlock()
	if col < 0 || col >= a.code.Cols() {
		return fmt.Errorf("raid: disk %d out of range", col)
	}
	if !a.isFailed(col) {
		return fmt.Errorf("raid: disk %d is not failed", col)
	}
	if a.failedCount() > 2 {
		return ErrTooManyFailures
	}
	rebuildStart := time.Now()
	a.ev.Record(obs.EvRebuildStart, int32(col), -1, tcOp.Link().Trace, 0)
	defer func() {
		if err == nil {
			a.ev.Record(obs.EvRebuildEnd, int32(col), -1, tcOp.Link().Trace, int64(time.Since(rebuildStart)))
		}
	}()
	var plan *recovery.Plan
	if a.failedCount() == 1 {
		if pl, err := recovery.Optimize(a.code, col); err == nil {
			plan = &pl
		}
	}
	err = a.fanOut(int(a.stripes), func(i int) error {
		return a.rebuildStripe(int64(i), col, plan, tcOp.Link())
	})
	if err != nil {
		return err
	}
	a.clearFailed(col)
	// The rebuilt device holds freshly written content; drop the column's
	// cached entries (and the failure-epoch plans) rather than proving them
	// equal to it.
	a.cacheInvalidateColumn(col)
	a.invalidatePlans()
	return nil
}

// rebuildStripe restores column col of one stripe: the planned read-minimal
// path when a plan is available and the failure count still permits it,
// whole-stripe reconstruction otherwise.
func (a *Array) rebuildStripe(si int64, col int, plan *recovery.Plan, parent trace.Link) (err error) {
	sc := a.getScratch()
	defer a.putScratch(sc)
	sc.tc = a.tr.Begin(trace.OpRebuildStripe, int32(col), si, parent)
	stripeStart := time.Now()
	defer func() {
		a.tr.End(sc.tc, 0, err != nil)
		if err == nil {
			a.m.stripesRebuilt.Inc()
			a.m.rebuildLatency.Observe(time.Since(stripeStart))
		}
	}()
	if plan != nil && a.failedCount() == 1 {
		if err := a.rebuildStripePlanned(si, col, plan, sc); err == nil {
			return nil
		}
		// On error a new failure was likely discovered; fall back.
	}
	if err := a.loadStripe(si, sc); err != nil {
		return err
	}
	if err := a.writeColumn(si, col, sc.s, sc.tc.Link()); err != nil {
		return fmt.Errorf("raid: rebuilding disk %d stripe %d: %w", col, si, err)
	}
	return nil
}

// rebuildStripePlanned rebuilds column col of one stripe reading only the
// elements the recovery plan needs (coalesced per column) and writing the
// rebuilt column in one device call.
func (a *Array) rebuildStripePlanned(si int64, col int, plan *recovery.Plan, sc *opScratch) error {
	cols := a.code.Cols()
	rows := a.code.Rows()
	// Gather the read set: every surviving cell any chosen group references,
	// plus the members of the column's own parity groups. sc.seen doubles as
	// the "cell available in sc.s" mark for the recovery passes below.
	clear(sc.seen)
	need := sc.fetch[:0]
	addGroup := func(gi int) {
		g := a.code.Groups()[gi]
		add := func(co erasure.Coord) {
			idx := co.Row*cols + co.Col
			if co.Col != col && !sc.seen[idx] {
				sc.seen[idx] = true
				need = append(need, co)
			}
		}
		for _, m := range g.Members {
			add(m)
		}
		add(g.Parity)
	}
	for r := 0; r < rows; r++ {
		if gi := plan.GroupChoice[r]; gi >= 0 {
			addGroup(gi)
		} else if gi := a.code.ParityGroup(r, col); gi >= 0 {
			addGroup(gi)
		}
	}
	sc.fetch = need
	if _, err := a.readCells(si, need, sc.s, sc); err != nil {
		return err
	}
	// Recover data rows through their chosen groups, then parity rows by
	// re-encoding (their members may include just-recovered data cells).
	// XOR-op accounting matches the serial path: one op per sourced cell.
	for r := 0; r < rows; r++ {
		if gi := plan.GroupChoice[r]; gi >= 0 {
			g := a.code.Groups()[gi]
			target := erasure.Coord{Row: r, Col: col}
			dst := sc.s.Elem(r, col)
			srcs := sc.srcs[:0]
			var seed []byte
			addCell := func(cell erasure.Coord) {
				if cell == target {
					return
				}
				e := sc.s.Elem(cell.Row, cell.Col)
				if seed == nil {
					seed = e
					return
				}
				srcs = append(srcs, e)
			}
			for _, cell := range g.Members {
				addCell(cell)
			}
			addCell(g.Parity)
			copy(dst, seed)
			stripe.XORMulti(dst, srcs...)
			sc.srcs = srcs
			a.countDecodeXOR(1 + len(srcs))
			sc.seen[r*cols+col] = true
		}
	}
	for r := 0; r < rows; r++ {
		if gi := a.code.ParityGroup(r, col); gi >= 0 {
			g := a.code.Groups()[gi]
			dst := sc.s.Elem(r, col)
			srcs := sc.srcs[:0]
			var seed []byte
			for _, m := range g.Members {
				if !sc.seen[m.Row*cols+m.Col] {
					// A member this pass cannot source (e.g. an unrecovered
					// parity cell on the failed column); let the caller fall
					// back to whole-stripe reconstruction.
					return fmt.Errorf("raid: planned rebuild cannot source %v", m)
				}
				e := sc.s.Elem(m.Row, m.Col)
				if seed == nil {
					seed = e
					continue
				}
				srcs = append(srcs, e)
			}
			copy(dst, seed)
			stripe.XORMulti(dst, srcs...)
			sc.srcs = srcs
			a.countDecodeXOR(1 + len(srcs))
		}
	}
	if err := a.writeColumn(si, col, sc.s, sc.tc.Link()); err != nil {
		return fmt.Errorf("raid: rebuilding disk %d stripe %d: %w", col, si, err)
	}
	return nil
}

// Scrub verifies the parity of every stripe; inconsistent stripes are
// re-encoded from their data (the data is trusted, as a real scrubber does
// absent checksums). It returns how many stripes were repaired.
func (a *Array) Scrub() (fixedN int64, err error) {
	// Batching barrier: parked writes must land before parity is audited,
	// or the scrubber would see stripes the writers have already moved past.
	if err := a.Flush(); err != nil {
		return 0, err
	}
	tcOp := a.tr.Begin(trace.OpScrub, -1, -1, trace.Link{})
	defer func() { a.tr.End(tcOp, 0, err != nil) }()
	a.opMu.Lock()
	defer a.opMu.Unlock()
	if n := a.failedCount(); n > 0 {
		return 0, fmt.Errorf("raid: scrub requires a healthy array (%d disks failed)", n)
	}
	scrubStart := time.Now()
	a.ev.Record(obs.EvScrubStart, -1, -1, tcOp.Link().Trace, 0)
	var fixed atomic.Int64
	err = a.fanOut(int(a.stripes), func(i int) error {
		n, err := a.scrubStripeTask(int64(i), tcOp.Link())
		fixed.Add(n)
		return err
	})
	if err == nil {
		// Stripe carries the fixed-stripe tally (scrub is not bound to one
		// stripe), Aux the duration — both fit the generic event shape.
		a.ev.Record(obs.EvScrubEnd, -1, fixed.Load(), tcOp.Link().Trace, int64(time.Since(scrubStart)))
	}
	return fixed.Load(), err
}

// scrubStripeTask verifies (and if needed repairs) one stripe, returning 1
// when it had to be re-encoded.
func (a *Array) scrubStripeTask(si int64, parent trace.Link) (fixed int64, err error) {
	sc := a.getScratch()
	defer a.putScratch(sc)
	sc.tc = a.tr.Begin(trace.OpScrubStripe, -1, si, parent)
	defer func() { a.tr.End(sc.tc, 0, err != nil) }()
	stripeStart := time.Now()
	if err := a.loadStripe(si, sc); err != nil {
		return 0, err
	}
	if a.code.Verify(sc.s) {
		a.m.scrubLatency.Observe(time.Since(stripeStart))
		return 0, nil
	}
	ps := time.Now()
	a.code.Encode(sc.s)
	a.m.parityLatency.Observe(time.Since(ps))
	if err := a.storeStripe(si, sc); err != nil {
		return 0, err
	}
	// The stripe disagreed with its parity, so some device diverged from
	// what the engine believed: drop every cached cell of the stripe.
	a.cacheInvalidateStripe(si)
	a.m.scrubErrorsFixed.Inc()
	a.m.scrubLatency.Observe(time.Since(stripeStart))
	return 1, nil
}
