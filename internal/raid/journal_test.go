package raid

import (
	"bytes"
	"testing"

	"dcode/internal/blockdev"
	"dcode/internal/codes"
)

func newJournaledArray(t *testing.T, stripes int64, journalBytes int64) (*Array, []*blockdev.MemDevice, *blockdev.MemDevice) {
	t.Helper()
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, code.Cols())
	mems := make([]*blockdev.MemDevice, code.Cols())
	devSize := stripes * int64(code.Rows()) * elemSize
	for i := range devs {
		mems[i] = blockdev.NewMem(devSize)
		devs[i] = mems[i]
	}
	jdev := blockdev.NewMem(journalBytes)
	a, err := NewJournaled(code, devs, elemSize, stripes, jdev)
	if err != nil {
		t.Fatal(err)
	}
	return a, mems, jdev
}

func remount(t *testing.T, mems []*blockdev.MemDevice, stripes int64, jdev *blockdev.MemDevice) *Array {
	t.Helper()
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, len(mems))
	for i := range mems {
		devs[i] = mems[i]
	}
	a, err := NewJournaled(code, devs, elemSize, stripes, jdev)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestJournaledNormalOperation(t *testing.T) {
	a, mems, jdev := newJournaledArray(t, 4, 4096)
	data := pattern(int(a.Size()), 70)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Clean shutdown: remount finds nothing to replay and data is intact.
	b := remount(t, mems, 4, jdev)
	got := make([]byte, b.Size())
	if _, err := b.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across clean remount")
	}
	if fixed, err := b.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("clean remount scrub: fixed=%d err=%v", fixed, err)
	}
}

// The write-hole scenario: power is lost after the data element lands but
// before the parity updates do, and before the commit record. Without a
// journal the stripe is silently inconsistent; with it, mount-time replay
// re-encodes the parity.
func TestJournalClosesWriteHole(t *testing.T) {
	const stripes = 4
	a, mems, jdev := newJournaledArray(t, stripes, 4096)
	base := pattern(int(a.Size()), 71)
	if _, err := a.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}

	// Find the element and its parity disks for data element 0.
	code := a.Code()
	co := code.DataCoord(0)
	// "Power loss": the parity disks' caches drop everything from now on,
	// and the journal device accepts exactly one more write (the intent).
	for _, gi := range code.UpdateGroups(co.Row, co.Col) {
		p := code.Groups()[gi].Parity
		mems[p.Col].SetWriteLimit(0)
	}
	jdev.SetWriteLimit(1)

	patch := pattern(elemSize, 99)
	if _, err := a.WriteAt(patch, 0); err != nil {
		t.Fatal(err) // the writes "succeed" — the losses are silent
	}

	// Restore power: lift the write limits.
	for _, m := range mems {
		m.SetWriteLimit(-1)
	}
	jdev.SetWriteLimit(-1)

	// Control: without replay the stripe really is inconsistent.
	{
		devs := make([]blockdev.Device, len(mems))
		for i := range mems {
			devs[i] = mems[i]
		}
		plain, err := New(code, devs, elemSize, stripes)
		if err != nil {
			t.Fatal(err)
		}
		if fixed, err := plain.Scrub(); err != nil || fixed != 1 {
			t.Fatalf("write hole not present: fixed=%d err=%v", fixed, err)
		}
		// Undo the scrub's repair to test the journal path properly:
		// re-corrupt by dropping parity again and rewriting the element.
		for _, gi := range code.UpdateGroups(co.Row, co.Col) {
			p := code.Groups()[gi].Parity
			mems[p.Col].SetWriteLimit(0)
		}
		if _, err := plain.WriteAt(pattern(elemSize, 123), 0); err != nil {
			t.Fatal(err)
		}
		for _, m := range mems {
			m.SetWriteLimit(-1)
		}
	}

	// Journaled remount replays the dirty stripe.
	b := remount(t, mems, stripes, jdev)
	if fixed, err := b.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("journal replay left %d inconsistent stripes (err=%v)", fixed, err)
	}
	// And a second remount has nothing left to do (intents were paired).
	c := remount(t, mems, stripes, jdev)
	if fixed, err := c.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("second remount scrub: fixed=%d err=%v", fixed, err)
	}
}

func TestJournalWraps(t *testing.T) {
	// A tiny journal (8 slots) must survive far more writes than slots.
	a, mems, jdev := newJournaledArray(t, 4, 8*journalSlotSize)
	for i := 0; i < 50; i++ {
		if _, err := a.WriteAt(pattern(100, byte(i)), int64(i%3)*700); err != nil {
			t.Fatal(err)
		}
	}
	b := remount(t, mems, 4, jdev)
	if fixed, err := b.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("wrapped journal remount: fixed=%d err=%v", fixed, err)
	}
}

func TestJournalIgnoresGarbage(t *testing.T) {
	jdev := blockdev.NewMem(4096)
	junk := make([]byte, 4096)
	for i := range junk {
		junk[i] = byte(i * 31)
	}
	jdev.WriteAt(junk, 0)
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, code.Cols())
	for i := range devs {
		devs[i] = blockdev.NewMem(4 * int64(code.Rows()) * elemSize)
	}
	if _, err := NewJournaled(code, devs, elemSize, 4, jdev); err != nil {
		t.Fatalf("garbage journal rejected: %v", err)
	}
}

func TestJournalTooSmall(t *testing.T) {
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, code.Cols())
	for i := range devs {
		devs[i] = blockdev.NewMem(4 * int64(code.Rows()) * elemSize)
	}
	if _, err := NewJournaled(code, devs, elemSize, 4, blockdev.NewMem(64)); err == nil {
		t.Fatal("undersized journal accepted")
	}
}

func TestJournalRecordRoundTrip(t *testing.T) {
	for _, r := range []journalRecord{
		{typ: recIntent, seq: 0, stripe: 0},
		{typ: recCommit, seq: 1 << 60, stripe: 1 << 40},
		{typ: recIntent, seq: 12345, stripe: 7},
	} {
		got, ok := parseJournalRecord(r.marshal())
		if !ok || got != r {
			t.Fatalf("record %+v did not round trip (got %+v ok=%v)", r, got, ok)
		}
	}
	if _, ok := parseJournalRecord(make([]byte, journalSlotSize)); ok {
		t.Fatal("zero slot parsed as a record")
	}
	bad := (journalRecord{typ: recIntent, seq: 5, stripe: 6}).marshal()
	bad[9] ^= 1 // corrupt the seq
	if _, ok := parseJournalRecord(bad); ok {
		t.Fatal("corrupted record accepted")
	}
}

func TestJournaledRefusesDirtyDegradedMount(t *testing.T) {
	a, mems, jdev := newJournaledArray(t, 4, 4096)
	if _, err := a.WriteAt(pattern(int(a.Size()), 80), 0); err != nil {
		t.Fatal(err)
	}
	// Crash leaving an unpaired intent.
	jdev.SetWriteLimit(1)
	if _, err := a.WriteAt(pattern(64, 81), 0); err != nil {
		t.Fatal(err)
	}
	jdev.SetWriteLimit(-1)
	// A disk dies before remount: replay must be refused.
	mems[1].Fail()
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, len(mems))
	for i := range mems {
		devs[i] = mems[i]
	}
	arr, err := NewJournaled(code, devs, elemSize, 4, jdev)
	// The failure is silent, so mounting succeeds but replay's first read
	// marks the disk and errors out — either a refusal error or a replay
	// error is acceptable, never a silent success.
	if err == nil {
		// Replay happened to avoid the dead disk entirely only if the read
		// path never touched it — verify the array noticed nothing wrong.
		if fixed, serr := arr.Scrub(); serr == nil && fixed != 0 {
			t.Fatalf("dirty degraded mount silently produced inconsistency (fixed=%d)", fixed)
		}
	}
}

func TestJournaledRejectsBadGeometry(t *testing.T) {
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, 3) // wrong device count
	if _, err := NewJournaled(code, devs, elemSize, 4, blockdev.NewMem(4096)); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

// Stale intents referring to stripes beyond the current geometry are
// committed away without replay.
func TestJournalIgnoresOutOfRangeStripes(t *testing.T) {
	jdev := blockdev.NewMem(4096)
	j, _, err := openJournal(jdev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.log(recIntent, 0, 999999); err != nil {
		t.Fatal(err)
	}
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, code.Cols())
	for i := range devs {
		devs[i] = blockdev.NewMem(4 * int64(code.Rows()) * elemSize)
	}
	a, err := NewJournaled(code, devs, elemSize, 4, jdev)
	if err != nil {
		t.Fatalf("stale out-of-range intent broke the mount: %v", err)
	}
	// And the intent was paired: a remount sees nothing dirty.
	if _, dirty, err := openJournal(jdev); err != nil || len(dirty) != 0 {
		t.Fatalf("stale intent not cleared: dirty=%v err=%v", dirty, err)
	}
	_ = a
}
