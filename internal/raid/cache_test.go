package raid

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dcode/internal/blockdev"
	"dcode/internal/codes"
	"dcode/internal/workload"
)

// sumElemReads totals the array's per-device element-equivalent read tallies.
func sumElemReads(a *Array) (n int64) {
	for _, d := range a.Snapshot().Devices {
		n += d.Reads
	}
	return n
}

func TestWithCacheOption(t *testing.T) {
	a, _ := newArrayConc(t, "dcode", 5, 2)
	if a.CacheEnabled() {
		t.Fatal("cache enabled without WithCache")
	}
	if a.Snapshot().Cache != nil {
		t.Fatal("snapshot carries a cache section without WithCache")
	}
	a, _ = newArrayConc(t, "dcode", 5, 2, WithCache(0), WithCache(-1))
	if a.CacheEnabled() {
		t.Fatal("non-positive budget enabled the cache")
	}
	a, _ = newArrayConc(t, "dcode", 5, 2, WithCache(1<<20))
	if !a.CacheEnabled() {
		t.Fatal("WithCache did not enable the cache")
	}
	if a.Snapshot().Cache == nil {
		t.Fatal("snapshot misses the cache section with WithCache")
	}
}

// The central property: with the cache on, every read returns bytes identical
// to an uncached array driven through the same operation stream, across the
// paper's three workload profiles. This is the "cached bytes never diverge
// from logical content" invariant checked end to end.
func TestCacheCoherenceAcrossProfiles(t *testing.T) {
	for _, prof := range workload.Profiles {
		t.Run(prof.Name, func(t *testing.T) {
			const stripes = 6
			plain, _ := newArrayConc(t, "dcode", 5, stripes)
			cached, _ := newArrayConc(t, "dcode", 5, stripes,
				WithCache(64<<10)) // small budget: evictions exercised too
			fill := pattern(int(plain.Size()), 77)
			if _, err := plain.WriteAt(fill, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := cached.WriteAt(fill, 0); err != nil {
				t.Fatal(err)
			}

			ops, err := workload.Generate(workload.Config{
				Ops: 300, MaxLen: 20, MaxTimes: 2,
				DataElems: int(stripes) * plain.Code().DataElems(),
				Seed:      99,
			}, prof)
			if err != nil {
				t.Fatal(err)
			}
			bufA := make([]byte, 21*elemSize)
			bufB := make([]byte, 21*elemSize)
			for i, op := range ops {
				off := int64(op.S) * elemSize
				n := int64(op.L) * elemSize
				if rem := plain.Size() - off; n > rem {
					n = rem
				}
				if n <= 0 {
					continue
				}
				for rep := 0; rep < op.T; rep++ {
					if op.Kind == workload.Read {
						if _, err := plain.ReadAt(bufA[:n], off); err != nil {
							t.Fatal(err)
						}
						if _, err := cached.ReadAt(bufB[:n], off); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(bufA[:n], bufB[:n]) {
							t.Fatalf("op %d: cached read diverges at offset %d", i, off)
						}
					} else {
						w := pattern(int(n), byte(i))
						if _, err := plain.WriteAt(w, off); err != nil {
							t.Fatal(err)
						}
						if _, err := cached.WriteAt(w, off); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			// Full-volume sweep plus an on-media consistency check.
			gotA := make([]byte, plain.Size())
			gotB := make([]byte, cached.Size())
			if _, err := plain.ReadAt(gotA, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := cached.ReadAt(gotB, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotA, gotB) {
				t.Fatal("full-volume contents diverge between cached and uncached arrays")
			}
			if fixed, err := cached.Scrub(); err != nil || fixed != 0 {
				t.Fatalf("cached array inconsistent on media: fixed=%d err=%v", fixed, err)
			}
		})
	}
}

// A warm cache must serve repeat reads with zero device I/O. The volume fill
// is a reconstruct-write, which writes every element through the cache, so
// the very first read window is already all hits.
func TestCacheServesRepeatReadsWithoutDeviceIO(t *testing.T) {
	a, _ := newArrayConc(t, "dcode", 5, 4, WithCache(8<<20))
	data := pattern(int(a.Size()), 5)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	before := sumElemReads(a)
	got := make([]byte, a.Size())
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cached read returned wrong data")
	}
	if reads := sumElemReads(a) - before; reads != 0 {
		t.Fatalf("read of a write-through-warmed volume issued %d device reads, want 0", reads)
	}
	cs := a.Snapshot().Cache
	if cs == nil || cs.Hits == 0 || cs.BytesSaved == 0 {
		t.Fatalf("cache counters did not record the hits: %+v", cs)
	}
	if cs.HitRate != 1 {
		t.Fatalf("hit rate = %v, want 1 for an all-hit read", cs.HitRate)
	}
}

// Reads must populate on miss: after dropping the cache's warm state (cheaply
// approximated by a fresh array whose fill bypassed the cache), the first
// read pays device I/O and the second is free.
func TestCachePopulatesOnMiss(t *testing.T) {
	// Build the volume uncached, then re-open the same devices with a cache:
	// the cache starts cold.
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, code.Cols())
	mems := make([]*blockdev.MemDevice, code.Cols())
	devSize := int64(4) * int64(code.Rows()) * elemSize
	for i := range devs {
		mems[i] = blockdev.NewMem(devSize)
		devs[i] = mems[i]
	}
	plain, err := New(code, devs, elemSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(int(plain.Size()), 6)
	if _, err := plain.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	a, err := New(code, devs, elemSize, 4, WithCache(8<<20))
	if err != nil {
		t.Fatal(err)
	}

	got := make([]byte, 10*elemSize)
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	first := sumElemReads(a)
	if first == 0 {
		t.Fatal("cold read issued no device reads; fill leaked into the new cache?")
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("cold read returned wrong data")
	}
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if again := sumElemReads(a) - first; again != 0 {
		t.Fatalf("second read of the same range issued %d device reads, want 0", again)
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("warm read returned wrong data")
	}
}

// RMW pre-reads of cached old data and parity must be absorbed: the classic
// 4-I/O small write drops to its 2 commit writes.
func TestCacheAbsorbsRMWPreReads(t *testing.T) {
	a, _ := newArrayConc(t, "dcode", 5, 4, WithCache(8<<20))
	if _, err := a.WriteAt(pattern(int(a.Size()), 7), 0); err != nil {
		t.Fatal(err)
	}
	st0 := a.Stats()
	before := sumElemReads(a)
	if _, err := a.WriteAt(pattern(10, 42), 5); err != nil { // small: takes RMW
		t.Fatal(err)
	}
	if a.Stats().RMWWrites == st0.RMWWrites {
		t.Fatal("small write did not take the RMW path")
	}
	if reads := sumElemReads(a) - before; reads != 0 {
		t.Fatalf("warm RMW issued %d device pre-reads, want 0", reads)
	}
	snap := a.Snapshot()
	if snap.Counters.RMWPreReadsAbsorbed == 0 {
		t.Fatal("rmw_prereads_absorbed not counted")
	}
	// The patched parity was written through; the stripe must verify clean.
	if fixed, err := a.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("stripe inconsistent after absorbed RMW: fixed=%d err=%v", fixed, err)
	}
}

// Degraded reads must memoize reconstructed elements: reconstruction is paid
// once, repeats are served from memory with zero device I/O.
func TestCacheMemoizesDegradedReads(t *testing.T) {
	a, _ := newArrayConc(t, "dcode", 7, 2, WithCache(8<<20))
	data := pattern(int(a.Size()), 8)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(3); err != nil { // invalidates column 3
		t.Fatal(err)
	}
	// One data element on the failed column.
	lostIdx := -1
	for i := 0; i < a.Code().DataElems(); i++ {
		if a.Code().DataCoord(i).Col == 3 {
			lostIdx = i
			break
		}
	}
	off := int64(lostIdx) * elemSize
	got := make([]byte, elemSize)
	if _, err := a.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[off:off+elemSize]) {
		t.Fatal("degraded read returned wrong data")
	}
	// FailDisk invalidated the column, so the first read had to reconstruct
	// (the surviving group cells may themselves be cache hits — that is the
	// point — but the XOR work and the degraded-read count are real).
	snap1 := a.Snapshot()
	if snap1.Counters.DegradedReads == 0 || snap1.XOR.DecodeOps == 0 {
		t.Fatalf("first read after FailDisk did not reconstruct: %+v", snap1.Counters)
	}
	reads1 := sumElemReads(a)
	if _, err := a.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	snap2 := a.Snapshot()
	if snap2.Counters.DegradedReads != snap1.Counters.DegradedReads {
		t.Fatal("repeated degraded read reconstructed again instead of hitting the cache")
	}
	if snap2.XOR.DecodeOps != snap1.XOR.DecodeOps {
		t.Fatal("repeated degraded read redid XOR reconstruction work")
	}
	if again := sumElemReads(a) - reads1; again != 0 {
		t.Fatalf("repeated degraded read issued %d device reads, want 0", again)
	}
	if !bytes.Equal(got, data[off:off+elemSize]) {
		t.Fatal("memoized degraded read returned wrong data")
	}
}

// Scrub rewrites stripes whose parity disagrees with data — afterwards the
// cache must reflect the device truth, not the pre-corruption content it
// cached. (Corrupting a data element makes the corrupted bytes the new
// logical content once scrub re-encodes parity from them.)
func TestCacheCoherentAfterScrub(t *testing.T) {
	a, mems := newArrayConc(t, "dcode", 5, 2, WithCache(8<<20))
	if _, err := a.WriteAt(pattern(int(a.Size()), 9), 0); err != nil {
		t.Fatal(err)
	}
	// Warm the cache over stripe 0's first element, then corrupt it on media.
	buf := make([]byte, elemSize)
	if _, err := a.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	co := a.Code().DataCoord(0)
	mems[co.Col].Corrupt(int64(co.Row) * elemSize)
	fixed, err := a.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 1 {
		t.Fatalf("scrub fixed %d stripes, want 1", fixed)
	}
	// The read must now return the device's (corrupted, re-encoded) content,
	// not the stale cached value.
	truth := make([]byte, elemSize)
	if _, err := mems[co.Col].ReadAt(truth, int64(co.Row)*elemSize); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, truth) {
		t.Fatal("cache served stale pre-scrub content")
	}
}

// The full failure lifecycle with a cache attached: degraded writes update
// the cached logical values of the failed column, and rebuild restores a
// consistent array whose reads match.
func TestCacheCoherentAcrossFailRebuild(t *testing.T) {
	a, mems := newArrayConc(t, "dcode", 5, 3, WithCache(8<<20))
	data := pattern(int(a.Size()), 10)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	patch := pattern(700, 61)
	if _, err := a.WriteAt(patch, 200); err != nil {
		t.Fatal(err)
	}
	copy(data[200:], patch)
	// Degraded reads see the write-through values.
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read after degraded write diverges")
	}
	mems[2].Replace()
	if err := a.Rebuild(2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read after rebuild diverges")
	}
	if fixed, err := a.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("array inconsistent after cached fail/rebuild cycle: fixed=%d err=%v", fixed, err)
	}
}

// Concurrent readers, writers, and a failure/rebuild cycle with the cache on.
// Run under -race this checks the cache's lock striping composes with the
// array's stripe locks and fan-out; in any mode the end state must verify.
func TestCacheConcurrentOpsRace(t *testing.T) {
	a, mems := newArrayConc(t, "dcode", 5, 6, WithConcurrency(4), WithCache(256<<10))
	if _, err := a.WriteAt(pattern(int(a.Size()), 11), 0); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	iters := 60
	if testing.Short() {
		iters = 15
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, 4*elemSize)
			for i := 0; i < iters; i++ {
				off := rng.Int63n(a.Size() - int64(len(buf)))
				if w%2 == 0 {
					if _, err := a.ReadAt(buf, off); err != nil {
						t.Errorf("worker %d: read: %v", w, err)
						return
					}
				} else {
					if _, err := a.WriteAt(pattern(len(buf), byte(i)), off); err != nil {
						t.Errorf("worker %d: write: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := a.FailDisk(1); err != nil {
				return
			}
			mems[1].Replace()
			if err := a.Rebuild(1); err != nil {
				t.Errorf("rebuild: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	got := make([]byte, a.Size())
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if fixed, err := a.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("array inconsistent after concurrent cached ops: fixed=%d err=%v", fixed, err)
	}
}

// The plan memo must serve repeated degraded fetch signatures without
// recomputing, and its answers must match direct planning bit for bit.
func TestPlanMemoHitsAndEquivalence(t *testing.T) {
	run := func(memoOff bool) ([]byte, int64) {
		a, _ := newArrayConc(t, "dcode", 7, 2)
		a.planMemoOff = memoOff
		data := pattern(int(a.Size()), 13)
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		if err := a.FailDisk(2); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, a.Size())
		for rep := 0; rep < 3; rep++ { // repeats share one failure signature
			if _, err := a.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
		}
		return got, a.Snapshot().Counters.DegradedPlanHits
	}
	memoized, hits := run(false)
	direct, directHits := run(true)
	if !bytes.Equal(memoized, direct) {
		t.Fatal("memoized plans reconstruct different bytes than direct planning")
	}
	if hits == 0 {
		t.Fatal("repeated degraded reads produced no plan-memo hits")
	}
	if directHits != 0 {
		t.Fatalf("planMemoOff still counted %d hits", directHits)
	}
}

func TestPlanMemoInvalidatedOnFailureEpoch(t *testing.T) {
	a, mems := newArrayConc(t, "dcode", 5, 2)
	if _, err := a.WriteAt(pattern(int(a.Size()), 14), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	// Read an element that lives on the failed column so planning runs.
	lostIdx := -1
	for i := 0; i < a.Code().DataElems(); i++ {
		if a.Code().DataCoord(i).Col == 1 {
			lostIdx = i
			break
		}
	}
	buf := make([]byte, elemSize)
	if _, err := a.ReadAt(buf, int64(lostIdx)*elemSize); err != nil {
		t.Fatal(err)
	}
	a.plans.mu.Lock()
	populated := len(a.plans.plans)
	a.plans.mu.Unlock()
	if populated == 0 {
		t.Fatal("degraded read did not populate the plan memo")
	}
	mems[1].Replace()
	if err := a.Rebuild(1); err != nil {
		t.Fatal(err)
	}
	a.plans.mu.Lock()
	left := len(a.plans.plans)
	a.plans.mu.Unlock()
	if left != 0 {
		t.Fatalf("plan memo kept %d entries across a failure epoch", left)
	}
}

// BenchmarkDegradedRead measures the degraded single-element read path with
// the plan memo on (the default) and off, isolating what memoization saves.
func BenchmarkDegradedRead(b *testing.B) {
	for _, memoOff := range []bool{false, true} {
		name := "memo"
		if memoOff {
			name = "nomemo"
		}
		b.Run(name, func(b *testing.B) {
			code := codes.MustNew("dcode", 7)
			devs := make([]blockdev.Device, code.Cols())
			devSize := int64(4) * int64(code.Rows()) * elemSize
			for i := range devs {
				devs[i] = blockdev.NewMem(devSize)
			}
			a, err := New(code, devs, elemSize, 4)
			if err != nil {
				b.Fatal(err)
			}
			a.planMemoOff = memoOff
			fill := make([]byte, a.Size())
			for i := range fill {
				fill[i] = byte(i * 31)
			}
			if _, err := a.WriteAt(fill, 0); err != nil {
				b.Fatal(err)
			}
			if err := a.FailDisk(3); err != nil {
				b.Fatal(err)
			}
			// Rotate through the failed column's data elements so several
			// distinct signatures stay live in the memo.
			var offs []int64
			for i := 0; i < code.DataElems(); i++ {
				if code.DataCoord(i).Col == 3 {
					offs = append(offs, int64(i)*elemSize)
				}
			}
			buf := make([]byte, elemSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.ReadAt(buf, offs[i%len(offs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCachedRead contrasts repeat reads with the cache off and on.
func BenchmarkCachedRead(b *testing.B) {
	for _, budget := range []int64{0, 8 << 20} {
		b.Run(fmt.Sprintf("cache=%d", budget), func(b *testing.B) {
			code := codes.MustNew("dcode", 7)
			devs := make([]blockdev.Device, code.Cols())
			devSize := int64(8) * int64(code.Rows()) * elemSize
			for i := range devs {
				devs[i] = blockdev.NewMem(devSize)
			}
			var opts []Option
			if budget > 0 {
				opts = append(opts, WithCache(budget))
			}
			a, err := New(code, devs, elemSize, 8, opts...)
			if err != nil {
				b.Fatal(err)
			}
			fill := make([]byte, a.Size())
			if _, err := a.WriteAt(fill, 0); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 8*elemSize)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := int64(i%8) * int64(len(buf))
				if _, err := a.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
