package raid

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestMixedOpsFailScrubStress drives reads, writes, disk failure/rebuild
// cycles and scrubs against one array at once. It is primarily a race-
// detector workload (the CI race job runs it with -race): the element cache,
// the erasure kernels, the pooled scratch buffers and the maintenance paths
// all interleave here, so a locking or cache-coherence regression in any of
// them shows up as a data race or a failed read-back.
func TestMixedOpsFailScrubStress(t *testing.T) {
	iters := 150
	if raceEnabled || testing.Short() {
		iters = 60
	}
	const stripes = 6
	a, mems := newArrayConc(t, "dcode", 5, stripes,
		WithConcurrency(4), WithCache(1<<20))
	size := a.Size()

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Writers: deterministic per-goroutine payloads at scattered offsets.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				n := 1 + rng.Intn(3*elemSize)
				off := rng.Int63n(size - int64(n))
				buf := make([]byte, n)
				for j := range buf {
					buf[j] = byte(seed) + byte(i) + byte(j)
				}
				if _, err := a.WriteAt(buf, off); err != nil {
					report(fmt.Errorf("WriteAt(%d,%d): %w", n, off, err))
					return
				}
			}
		}(int64(g + 1))
	}

	// Readers: concurrent content is indeterminate; only errors count.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 3*elemSize)
			for i := 0; i < iters; i++ {
				n := 1 + rng.Intn(len(buf))
				off := rng.Int63n(size - int64(n))
				if _, err := a.ReadAt(buf[:n], off); err != nil {
					report(fmt.Errorf("ReadAt(%d,%d): %w", n, off, err))
					return
				}
			}
		}(int64(100 + g))
	}

	// Failure cycle: fail a column, replace the media, rebuild it. The array
	// never has more than this one failure, so every op must keep succeeding.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			col := 1 + i%2
			if err := a.FailDisk(col); err != nil {
				report(fmt.Errorf("FailDisk(%d): %w", col, err))
				return
			}
			mems[col].Replace()
			if err := a.Rebuild(col); err != nil {
				report(fmt.Errorf("Rebuild(%d): %w", col, err))
				return
			}
		}
	}()

	// Scrubber: runs under the exclusive op lock, so writers are quiesced
	// for each pass and recomputed parity must match.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			_, err := a.Scrub()
			if err != nil && !strings.Contains(err.Error(), "healthy array") {
				// Refusing to scrub degraded is correct behavior while the
				// failure cycle holds a disk down; anything else is a bug.
				report(fmt.Errorf("Scrub: %w", err))
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Quiesced array: a full read-back and a final scrub must both succeed,
	// and the scrub must find parity coherent.
	buf := make([]byte, size)
	if _, err := a.ReadAt(buf, 0); err != nil {
		t.Fatalf("final ReadAt: %v", err)
	}
	mism, err := a.Scrub()
	if err != nil {
		t.Fatalf("final Scrub: %v", err)
	}
	if mism != 0 {
		t.Errorf("final Scrub found %d parity mismatches on a quiesced array", mism)
	}
}
