package raid

import (
	"encoding/json"
	"testing"

	"dcode/internal/obs"
	"dcode/internal/trace"
)

// snapshotJSONRoundTrip marshals and unmarshals a snapshot — the same trip
// /stats takes to raidctl.
func snapshotJSONRoundTrip(t *testing.T, s Snapshot) Snapshot {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var out Snapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// eventKinds collects the kinds present in a recorder drain.
func eventKinds(rec *obs.Recorder) map[obs.EventKind][]obs.Event {
	m := make(map[obs.EventKind][]obs.Event)
	for _, ev := range rec.Events() {
		m[ev.Kind] = append(m[ev.Kind], ev)
	}
	return m
}

// TestArrayRecordsLifecycleEvents drives the failure lifecycle end to end
// and checks the flight recorder saw each milestone exactly where the design
// says: one disk_failed per column (deduplicated across the I/O paths that
// notice), degraded reads tagged with their trace ID, rebuild and scrub
// bracketed by start/end pairs.
func TestArrayRecordsLifecycleEvents(t *testing.T) {
	rec := obs.NewRecorder(256)
	tr := trace.New(trace.DefaultCapacity, trace.DefaultSlowCapacity)
	a, mems := newArrayConc(t, "dcode", 5, 4, WithConcurrency(1), WithEvents(rec), WithTracer(tr))
	tr.Enable()
	data := pattern(int(a.Size()), 3)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	mems[1].Fail()
	if err := a.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, a.Size())
	for i := 0; i < 3; i++ { // repeat: disk_failed must still record once
		if _, err := a.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	mems[1].Replace()
	if err := a.Rebuild(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Scrub(); err != nil {
		t.Fatal(err)
	}
	tr.Disable()

	kinds := eventKinds(rec)
	if got := kinds[obs.EvDiskFailed]; len(got) != 1 {
		t.Errorf("disk_failed recorded %d times, want 1: %+v", len(got), got)
	} else if got[0].Disk != 1 {
		t.Errorf("disk_failed on disk %d, want 1", got[0].Disk)
	}
	if got := kinds[obs.EvDegradedRead]; len(got) == 0 {
		t.Error("no degraded_read event recorded")
	} else {
		if got[0].Disk != 1 {
			t.Errorf("degraded_read disk = %d, want 1", got[0].Disk)
		}
		if got[0].Trace == 0 {
			t.Errorf("degraded_read carries no trace ID: %+v", got[0])
		}
	}
	for _, k := range []obs.EventKind{obs.EvRebuildStart, obs.EvScrubStart} {
		if len(kinds[k]) != 1 {
			t.Errorf("%v recorded %d times, want 1", k, len(kinds[k]))
		}
	}
	for _, k := range []obs.EventKind{obs.EvRebuildEnd, obs.EvScrubEnd} {
		got := kinds[k]
		if len(got) != 1 {
			t.Errorf("%v recorded %d times, want 1", k, len(got))
			continue
		}
		if got[0].Aux <= 0 {
			t.Errorf("%v duration aux = %d, want > 0", k, got[0].Aux)
		}
	}
	if len(kinds[obs.EvRebuildStart]) == 1 && kinds[obs.EvRebuildStart][0].Trace == 0 {
		t.Error("rebuild_start carries no trace ID")
	}
}

// TestArrayWithoutRecorderStaysQuiet pins the nil path: an array built
// without WithEvents drives the same lifecycle without recording (and
// without crashing on the nil recorder).
func TestArrayWithoutRecorderStaysQuiet(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 4)
	data := pattern(int(a.Size()), 3)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	mems[2].Fail()
	if err := a.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadAt(make([]byte, a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	mems[2].Replace()
	if err := a.Rebuild(2); err != nil {
		t.Fatal(err)
	}
	if a.Events() != nil {
		t.Fatal("array without WithEvents has a recorder")
	}
}

// TestSnapshotPhases checks the per-phase latency decomposition: parity and
// device phases populate from ordinary traffic, the decomposition merges
// across snapshots, and it survives a JSON round trip (the /stats wire).
func TestSnapshotPhases(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 4)
	data := pattern(int(a.Size()), 9)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadAt(make([]byte, 256), 0); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	if s.Phases == nil {
		t.Fatal("snapshot carries no phase decomposition")
	}
	if s.Phases.Parity.Count == 0 {
		t.Error("parity phase empty after full-stripe writes")
	}
	if s.Phases.Device.Count == 0 {
		t.Error("device phase empty after I/O")
	}
	// Local mem devices: no network phase, no queue phase.
	if s.Phases.Network.Count != 0 || s.Phases.Queue.Count != 0 {
		t.Errorf("unexpected network/queue phases on a local array: %+v", s.Phases)
	}

	var other Snapshot
	other.Merge(s)
	other.Merge(s)
	if other.Phases == nil || other.Phases.Parity.Count != 2*s.Phases.Parity.Count {
		t.Errorf("merged parity count = %+v, want doubled", other.Phases)
	}

	roundTripped := snapshotJSONRoundTrip(t, s)
	if roundTripped.Phases == nil || roundTripped.Phases.Parity.Count != s.Phases.Parity.Count {
		t.Errorf("phases lost in JSON round trip: %+v", roundTripped.Phases)
	}

	a.ResetMetrics()
	if ph := a.Snapshot().Phases; ph != nil && ph.Parity.Count != 0 {
		t.Errorf("parity phase survives ResetMetrics: %+v", ph)
	}
}

// TestSteadyStateAllocsWithRecorder is the disabled-recorder acceptance
// criterion: a wired flight recorder must not add allocations to the
// steady-state data path (no lifecycle events fire during healthy I/O).
func TestSteadyStateAllocsWithRecorder(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless under -race")
	}
	rec := obs.NewRecorder(64)
	a, _ := newArrayConc(t, "dcode", 7, 4, WithConcurrency(1), WithEvents(rec))
	data := pattern(int(a.Size()), 2)
	buf := make([]byte, a.Size())
	for i := 0; i < 3; i++ {
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := a.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := a.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}); avg >= 1 {
		t.Errorf("ReadAt with recorder allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
	}); avg >= 1 {
		t.Errorf("WriteAt with recorder allocates %.1f/op, want 0", avg)
	}
}
