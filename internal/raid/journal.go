package raid

import (
	"encoding/binary"
	"fmt"
	"sync"

	"dcode/internal/blockdev"
	"dcode/internal/erasure"
)

// The write-intent journal closes the RAID write hole: a crash between a
// data write and its parity updates leaves a stripe whose parity disagrees
// with its data, silently corrupting any later reconstruction. With a
// journal attached, every stripe mutation is bracketed by an intent record
// (before touching the devices) and a commit record (after); on mount,
// stripes whose intent has no matching commit get their parity recomputed
// from data.

const (
	journalMagic    = 0x4A524E4C // "JRNL"
	journalSlotSize = 32
	recIntent       = 1
	recCommit       = 2
)

// journal is a ring of fixed-size records on a dedicated device.
type journal struct {
	dev   blockdev.Device
	mu    sync.Mutex
	seq   uint64
	slot  int64
	slots int64
}

type journalRecord struct {
	typ    byte
	seq    uint64
	stripe int64
}

func (r journalRecord) marshal() []byte {
	var b [journalSlotSize]byte
	binary.LittleEndian.PutUint32(b[0:], journalMagic)
	b[4] = r.typ
	binary.LittleEndian.PutUint64(b[8:], r.seq)
	binary.LittleEndian.PutUint64(b[16:], uint64(r.stripe))
	binary.LittleEndian.PutUint64(b[24:], r.checksum())
	return b[:]
}

func (r journalRecord) checksum() uint64 {
	return uint64(journalMagic) ^ uint64(r.typ)<<56 ^ r.seq ^ uint64(r.stripe)*0x9E3779B97F4A7C15
}

func parseJournalRecord(b []byte) (journalRecord, bool) {
	if binary.LittleEndian.Uint32(b[0:]) != journalMagic {
		return journalRecord{}, false
	}
	r := journalRecord{
		typ:    b[4],
		seq:    binary.LittleEndian.Uint64(b[8:]),
		stripe: int64(binary.LittleEndian.Uint64(b[16:])),
	}
	if r.typ != recIntent && r.typ != recCommit {
		return journalRecord{}, false
	}
	if binary.LittleEndian.Uint64(b[24:]) != r.checksum() {
		return journalRecord{}, false
	}
	return r, true
}

// openJournal scans the device and returns the journal positioned after the
// newest record, plus the uncommitted intents (seq -> stripe).
func openJournal(dev blockdev.Device) (*journal, map[uint64]int64, error) {
	slots := dev.Size() / journalSlotSize
	if slots < 4 {
		return nil, nil, fmt.Errorf("raid: journal device too small (%d bytes)", dev.Size())
	}
	j := &journal{dev: dev, slots: slots}
	intents := make(map[uint64]int64) // seq -> stripe
	var maxSeq uint64
	maxSlot := int64(-1)
	buf := make([]byte, journalSlotSize)
	for s := int64(0); s < slots; s++ {
		if _, err := dev.ReadAt(buf, s*journalSlotSize); err != nil {
			return nil, nil, fmt.Errorf("raid: reading journal slot %d: %w", s, err)
		}
		r, ok := parseJournalRecord(buf)
		if !ok {
			continue
		}
		switch r.typ {
		case recIntent:
			intents[r.seq] = r.stripe
		case recCommit:
			delete(intents, r.seq)
		}
		if r.seq >= maxSeq {
			maxSeq = r.seq
			maxSlot = s
		}
	}
	j.seq = maxSeq + 1
	j.slot = (maxSlot + 1) % slots
	return j, intents, nil
}

// log appends one record and returns its sequence number.
func (j *journal) log(typ byte, seq uint64, stripe int64) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if typ == recIntent {
		seq = j.seq
		j.seq++
	}
	rec := journalRecord{typ: typ, seq: seq, stripe: stripe}
	if _, err := j.dev.WriteAt(rec.marshal(), j.slot*journalSlotSize); err != nil {
		return 0, fmt.Errorf("raid: writing journal: %w", err)
	}
	j.slot = (j.slot + 1) % j.slots
	return seq, nil
}

// NewJournaled assembles an array with a write-intent journal on a dedicated
// device and replays it: stripes left dirty by a crash get their parity
// recomputed from data before the array is returned. Replay requires a
// healthy array — with disks missing, stale parity cannot be told apart from
// stale data, so mounting dirty and degraded is refused.
//
//lint:ignore lockcheck journal replay writes stripes during construction, before the array is returned to any caller — no concurrent operation can hold or need the per-stripe locks yet
func NewJournaled(code *erasure.Code, devs []blockdev.Device, elemSize int, stripes int64,
	journalDev blockdev.Device, opts ...Option) (*Array, error) {
	a, err := New(code, devs, elemSize, stripes, opts...)
	if err != nil {
		return nil, err
	}
	jnl, dirty, err := openJournal(journalDev)
	if err != nil {
		return nil, err
	}
	if len(dirty) > 0 && a.failedCount() > 0 {
		return nil, fmt.Errorf("raid: %d dirty stripes in journal but array is degraded; replace disks first", len(dirty))
	}
	scrubbed := make(map[int64]bool, len(dirty))
	for seq, si := range dirty {
		if si >= 0 && si < stripes && !scrubbed[si] {
			if err := a.scrubStripe(si); err != nil {
				return nil, fmt.Errorf("raid: replaying journal for stripe %d: %w", si, err)
			}
			scrubbed[si] = true
		}
		// Pair the intent so the next mount does not replay it again.
		if _, err := jnl.log(recCommit, seq, si); err != nil {
			return nil, err
		}
	}
	a.jnl = jnl
	return a, nil
}

// scrubStripe recomputes a stripe's parity from its data cells.
func (a *Array) scrubStripe(si int64) error {
	s := a.code.NewStripe(a.elemSize)
	for i := 0; i < a.code.DataElems(); i++ {
		co := a.code.DataCoord(i)
		if err := a.readElem(si, co, s.Elem(co.Row, co.Col)); err != nil {
			return err
		}
	}
	a.code.Encode(s)
	for _, g := range a.code.Groups() {
		if err := a.writeElem(si, g.Parity, s.Elem(g.Parity.Row, g.Parity.Col)); err != nil {
			return err
		}
	}
	// Replay rewrote the stripe's parity; drop any cached cells for it.
	a.cacheInvalidateStripe(si)
	return nil
}
