package raid

// This file wires the sharded element cache (internal/cache) into the array.
//
// Policy, in one place:
//
//   - The cache is OFF by default; WithCache(bytes) enables it. With it off,
//     every device tally is bit-identical to the uncached engine, which is
//     what the committed benchmark baseline pins.
//   - Invariant: a cached entry always equals the LOGICAL content of its
//     cell — what a read of that cell must return. For healthy columns that
//     is the device content; for failed columns it is the reconstruction
//     result, which the surviving disks guarantee. Every write path
//     therefore either writes the new logical value through (rmwElement,
//     reconstructWrite, the degraded full-stripe path) or invalidates.
//   - Reads populate on miss (readCells), so a hot working set converges to
//     memory; degraded reads insert reconstructed elements, so repeated
//     reads of a failed column pay reconstruction once.
//   - Maintenance invalidates precisely: FailDisk and Rebuild drop the
//     affected column, Scrub and journal replay drop the stripes they
//     rewrite, and the element-wise repair fallback drops the cell it
//     remaps. These entries are usually still logically valid; dropping
//     them is the conservative choice that keeps "cached bytes can never
//     diverge from device contents" a local argument.
//   - loadStripe (whole-stripe reconstruction, Scrub, rebuild fallback)
//     bypasses the cache on the read side: its coalesced full-column reads
//     are already one device call each, and routing them through the cache
//     would let every scrub or rebuild evict the entire hot set.

import (
	"dcode/internal/cache"
	"dcode/internal/erasure"
	"dcode/internal/stripe"
)

// WithCache attaches a sharded LRU element cache with the given byte budget
// to the array. Read hits are served without device I/O, read-modify-write
// pre-reads of old data and old parity are absorbed when cached (turning the
// classic 4-I/O RMW into 2), and degraded reads memoize reconstructed
// elements. A non-positive budget leaves the cache off (the default).
func WithCache(bytes int64) Option {
	return func(a *Array) {
		if bytes > 0 {
			a.cacheBytes = bytes
		}
	}
}

// CacheEnabled reports whether the array was built with WithCache.
func (a *Array) CacheEnabled() bool { return a.cache != nil }

// cacheKey names one element: its column plus the element's device index.
func (a *Array) cacheKey(si int64, co erasure.Coord) cache.Key {
	return cache.Key{Col: co.Col, Elem: si*int64(a.code.Rows()) + int64(co.Row)}
}

// cacheGet serves one element from the cache into dst, if enabled and present.
func (a *Array) cacheGet(si int64, co erasure.Coord, dst []byte) bool {
	if a.cache == nil {
		return false
	}
	return a.cache.Get(a.cacheKey(si, co), dst)
}

// cachePut write-throughs one element's new logical content.
func (a *Array) cachePut(si int64, co erasure.Coord, src []byte) {
	if a.cache == nil {
		return
	}
	a.cache.Put(a.cacheKey(si, co), src)
}

// cacheInvalidate drops one element.
func (a *Array) cacheInvalidate(si int64, co erasure.Coord) {
	if a.cache == nil {
		return
	}
	a.cache.Invalidate(a.cacheKey(si, co))
}

// cacheInvalidateStripe drops every cell of one stripe — Scrub and journal
// replay call it for the stripes they rewrite.
func (a *Array) cacheInvalidateStripe(si int64) {
	if a.cache == nil {
		return
	}
	for r := 0; r < a.code.Rows(); r++ {
		for c := 0; c < a.code.Cols(); c++ {
			a.cache.Invalidate(a.cacheKey(si, erasure.Coord{Row: r, Col: c}))
		}
	}
}

// cacheInvalidateColumn drops every cached element of one column — FailDisk
// and Rebuild call it.
func (a *Array) cacheInvalidateColumn(col int) {
	if a.cache == nil {
		return
	}
	a.cache.InvalidateColumn(col)
}

// cachePutStripe write-throughs every cell of a freshly encoded stripe; the
// degraded full-stripe write path uses it so subsequent degraded reads hit.
func (a *Array) cachePutStripe(si int64, s *stripe.Stripe) {
	if a.cache == nil {
		return
	}
	for r := 0; r < a.code.Rows(); r++ {
		for c := 0; c < a.code.Cols(); c++ {
			a.cache.Put(a.cacheKey(si, erasure.Coord{Row: r, Col: c}), s.Elem(r, c))
		}
	}
}
