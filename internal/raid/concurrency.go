package raid

// This file holds the array's concurrency and buffer-reuse machinery:
//
//   - the Concurrency option and the bounded fanOut helper the data path
//     uses for stripe pipelining (ReadAt/WriteAt/Rebuild/Scrub) and for
//     per-column device fan-out;
//   - column coalescing: a stripe's rows are contiguous per device (see
//     deviceOffset), so a run of same-column cells is read or written as one
//     physical device call, tallied through Instrumented.ReadAtN/WriteAtN as
//     the element operations it replaces;
//   - the sync.Pool-backed per-operation scratch (stripe buffer, mark
//     bitmaps, coordinate lists, RMW buffers) that makes the steady-state
//     data path allocation-free.

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"dcode/internal/blockdev"
	"dcode/internal/erasure"
	"dcode/internal/stripe"
	"dcode/internal/trace"
)

// Option configures an Array at construction time.
type Option func(*Array)

// WithConcurrency bounds the number of goroutines the array uses at each
// fan-out point: independent stripes of one ReadAt/WriteAt/Rebuild/Scrub,
// and the per-column device calls within one stripe. n = 1 makes the array
// fully serial (useful for deterministic debugging and allocation tests);
// n ≤ 0 or omitting the option uses GOMAXPROCS.
func WithConcurrency(n int) Option {
	return func(a *Array) {
		if n > 0 {
			a.conc = n
		}
	}
}

// Concurrency returns the array's fan-out bound.
func (a *Array) Concurrency() int { return a.conc }

// fanOut runs fn(i) for every i in [0, n). With a bound of one — or a single
// task — it runs inline with zero goroutine or allocation cost. Otherwise up
// to min(bound, n) workers pull indices from an atomic cursor. The error of
// the lowest-numbered failed task is returned, approximating serial error
// semantics; after the first failure workers stop pulling new indices, but
// tasks already started run to completion (they may hold device state half
// written — callers on best-effort paths return nil from fn instead).
func (a *Array) fanOut(n int, fn func(int) error) error {
	workers := a.conc
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					stopped.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// cellRun is a maximal run of row-adjacent cells on one column — the unit of
// coalesced device I/O.
type cellRun struct {
	col, row, n int
}

// coalesce sorts cells by (column, row) in place and splits them into
// contiguous same-column runs, reusing sc.runs. Only strictly adjacent rows
// join a run: spanning a gap would move bytes no caller asked for, skewing
// the byte tallies and touching unrelated bad sectors.
func coalesce(cells []erasure.Coord, sc *opScratch) []cellRun {
	slices.SortFunc(cells, func(x, y erasure.Coord) int {
		if x.Col != y.Col {
			return x.Col - y.Col
		}
		return x.Row - y.Row
	})
	runs := sc.runs[:0]
	for k := 0; k < len(cells); {
		j := k + 1
		for j < len(cells) && cells[j].Col == cells[k].Col && cells[j].Row == cells[j-1].Row+1 {
			j++
		}
		runs = append(runs, cellRun{col: cells[k].Col, row: cells[k].Row, n: j - k})
		k = j
	}
	sc.runs = runs
	return runs
}

// readCells reads the listed (distinct) cells of stripe si into s, one
// goroutine per coalesced run, each run as a single device call. With a
// cache attached it first serves hits from memory — those cells cost no
// device I/O at all — then reads only the misses, inserting them on the way
// back so the working set converges to the cache. It returns how many cells
// were served from the cache.
func (a *Array) readCells(si int64, cells []erasure.Coord, s *stripe.Stripe, sc *opScratch) (int, error) {
	hits := 0
	if a.cache != nil {
		miss := sc.miss[:0]
		for _, co := range cells {
			if a.cache.Get(a.cacheKey(si, co), s.Elem(co.Row, co.Col)) {
				hits++
			} else {
				miss = append(miss, co)
			}
		}
		sc.miss = miss
		cells = miss
	}
	runs := coalesce(cells, sc)
	// With the async engine on, the whole batch of runs is staged and kicked
	// as one submission instead of fanning out per run.
	if a.aio != nil {
		if err := a.readRunsAsync(si, runs, s, sc); err != nil {
			return hits, err
		}
		a.cacheFill(si, cells, s)
		return hits, nil
	}
	// The serial case loops directly: the fanOut closure escapes into its
	// goroutine path, so constructing it would heap-allocate on every call.
	if a.conc <= 1 || len(runs) <= 1 {
		for _, r := range runs {
			if err := a.readRun(si, r, s, sc.tc.Link()); err != nil {
				return hits, err
			}
		}
		a.cacheFill(si, cells, s)
		return hits, nil
	}
	if err := a.fanOut(len(runs), func(i int) error {
		return a.readRun(si, runs[i], s, sc.tc.Link())
	}); err != nil {
		return hits, err
	}
	a.cacheFill(si, cells, s)
	return hits, nil
}

// cacheFill inserts freshly read cells; populate-on-miss happens here so a
// partial failure (the caller retries degraded) caches nothing stale.
func (a *Array) cacheFill(si int64, cells []erasure.Coord, s *stripe.Stripe) {
	if a.cache == nil {
		return
	}
	for _, co := range cells {
		a.cache.Put(a.cacheKey(si, co), s.Elem(co.Row, co.Col))
	}
}

// readRun reads one coalesced run into s. A single-cell run goes through
// readElem directly, keeping its transparent bad-sector read-repair. A
// longer run lands in stripe memory directly — the column-major layout makes
// the run one contiguous ColRange, so one physical ReadAtN fills the cells
// with no staging copy. If that fails — a latent sector error anywhere in
// the run, or the device dying — it falls back to element-at-a-time
// readElem, which repairs bad sectors in place and marks the disk failed on
// real errors, exactly like the uncoalesced path.
func (a *Array) readRun(si int64, run cellRun, s *stripe.Stripe, parent trace.Link) error {
	tc := a.tr.Begin(trace.OpDevRead, int32(run.col), si, parent)
	err := a.readRunDev(si, run, s, tc.Link())
	a.tr.End(tc, int64(run.n*a.elemSize), err != nil)
	return err
}

func (a *Array) readRunDev(si int64, run cellRun, s *stripe.Stripe, l trace.Link) error {
	if run.n == 1 {
		co := erasure.Coord{Row: run.row, Col: run.col}
		return a.readElemL(si, co, s.Elem(run.row, run.col), l)
	}
	if a.isFailed(run.col) {
		return blockdev.ErrFailed
	}
	dst := s.ColRange(run.col, run.row, run.n)
	_, err := a.iodevs[run.col].ReadAtNLink(dst, a.deviceOffset(si, run.row), int64(run.n), l)
	if err == nil {
		return nil
	}
	for k := 0; k < run.n; k++ {
		co := erasure.Coord{Row: run.row + k, Col: run.col}
		if err := a.readElemL(si, co, s.Elem(co.Row, co.Col), l); err != nil {
			return err
		}
	}
	return nil
}

// writeCellsBestEffort writes the listed (distinct) cells of stripe si from
// s, one goroutine per coalesced run. Like storeStripe it never fails: a
// device erroring mid-write is marked failed and skipped — its content is
// moot — and the caller decides via failedCount whether the array survived.
func (a *Array) writeCellsBestEffort(si int64, cells []erasure.Coord, s *stripe.Stripe, sc *opScratch) {
	runs := coalesce(cells, sc)
	if a.aio != nil {
		a.writeRunsBestEffortAsync(si, runs, s, sc)
		return
	}
	if a.conc <= 1 || len(runs) <= 1 { // see readCells: avoid the escaping closure
		for _, r := range runs {
			a.writeRunBestEffort(si, r, s, sc.tc.Link())
		}
		return
	}
	_ = a.fanOut(len(runs), func(i int) error {
		a.writeRunBestEffort(si, runs[i], s, sc.tc.Link())
		return nil
	})
}

func (a *Array) writeRunBestEffort(si int64, run cellRun, s *stripe.Stripe, parent trace.Link) {
	tc := a.tr.Begin(trace.OpDevWrite, int32(run.col), si, parent)
	a.writeRunDev(si, run, s, tc.Link())
	a.tr.End(tc, int64(run.n*a.elemSize), false)
}

func (a *Array) writeRunDev(si int64, run cellRun, s *stripe.Stripe, l trace.Link) {
	if run.n == 1 {
		co := erasure.Coord{Row: run.row, Col: run.col}
		_ = a.writeElemL(si, co, s.Elem(run.row, run.col), l)
		return
	}
	if a.isFailed(run.col) {
		return
	}
	// The run is one contiguous ColRange of stripe memory: write it out
	// directly, no staging copy.
	src := s.ColRange(run.col, run.row, run.n)
	if _, err := a.iodevs[run.col].WriteAtNLink(src, a.deviceOffset(si, run.row), int64(run.n), l); err != nil {
		// Retry element-at-a-time so a partially failing device still gets
		// the cells it can take; writeElemL marks the disk failed on error.
		for k := 0; k < run.n; k++ {
			co := erasure.Coord{Row: run.row + k, Col: run.col}
			_ = a.writeElemL(si, co, s.Elem(co.Row, co.Col), l)
		}
	}
}

// writeColumn writes one whole column of a stripe as a single coalesced
// device call straight from stripe memory, bypassing the failure mark —
// Rebuild uses it to fill the replaced device, which is still marked failed.
// Unlike the best-effort data-path writes, a rebuild must land every byte,
// so errors propagate.
func (a *Array) writeColumn(si int64, col int, s *stripe.Stripe, parent trace.Link) error {
	tc := a.tr.Begin(trace.OpDevWrite, int32(col), si, parent)
	rows := a.code.Rows()
	_, err := a.iodevs[col].WriteAtNLink(s.ColRange(col, 0, rows), a.deviceOffset(si, 0), int64(rows), tc.Link())
	a.tr.End(tc, int64(rows*a.elemSize), err != nil)
	return err
}

// opScratch is the pooled per-stripe-task scratch: one stripe buffer used as
// the element arena, mark bitmaps (consumers clear the ones they use before
// use — pooled state is stale by design), coordinate and run lists, an XOR
// gather list, and two element-sized RMW buffers. One opScratch serves one
// stripe task at a time; the per-column goroutines under it only touch
// disjoint cells of sc.s and the shared run list built before the fan-out.
type opScratch struct {
	s       *stripe.Stripe
	seen    []bool // rows×cols cell marks
	part    []bool // rows×cols partial-write marks
	gseen   []bool // per-group marks
	coords  []erasure.Coord
	fetch   []erasure.Coord
	miss    []erasure.Coord // readCells' cache-miss list
	srcs    [][]byte
	runs    []cellRun
	ers     []elemRange // direct-path sorted range copy
	vruns   []vecRun    // direct-path coalesced device runs
	vecbufs [][]byte    // direct-path iovec assembly (cleared after use)
	data    [][]byte    // direct-path user-buffer views by data index (cleared after use)
	b1, b2  []byte      // element-sized RMW scratch (new value, delta)
	tc      trace.Ctx   // the stripe task's span; set at every task start (pooled state is stale)

	// Async-scheduler staging (see async.go): completion handles, device
	// spans and harvested errors of the current batch, plus per-run
	// single-buffer iovec storage.
	comps []*blockdev.Completion
	ctcs  []trace.Ctx
	abufs [][]byte
	aerrs []error
}

func (a *Array) getScratch() *opScratch {
	if v := a.scratch.Get(); v != nil {
		return v.(*opScratch)
	}
	cells := a.code.Rows() * a.code.Cols()
	return &opScratch{
		s:     a.code.NewStripe(a.elemSize),
		seen:  make([]bool, cells),
		part:  make([]bool, cells),
		gseen: make([]bool, len(a.code.Groups())),
		data:  make([][]byte, a.code.DataElems()),
		b1:    make([]byte, a.elemSize),
		b2:    make([]byte, a.elemSize),
	}
}

func (a *Array) putScratch(sc *opScratch) { a.scratch.Put(sc) }

// opBuf is the pooled call-level state of ReadAt/WriteAt: the element ranges
// of the byte range and their grouping into per-stripe runs.
type opBuf struct {
	ranges []elemRange
	runs   []stripeRun
}

func (a *Array) getOpBuf() *opBuf {
	if v := a.opBufs.Get(); v != nil {
		return v.(*opBuf)
	}
	return &opBuf{}
}

func (a *Array) putOpBuf(ob *opBuf) { a.opBufs.Put(ob) }

// stripeRun says ranges[lo:hi] all belong to stripe si; splitBytes emits
// ranges with non-decreasing stripe indices, so grouping is a linear scan.
type stripeRun struct {
	si     int64
	lo, hi int
}

func stripeRuns(ranges []elemRange, out []stripeRun) []stripeRun {
	for k := 0; k < len(ranges); {
		j := k + 1
		for j < len(ranges) && ranges[j].stripeIdx == ranges[k].stripeIdx {
			j++
		}
		out = append(out, stripeRun{si: ranges[k].stripeIdx, lo: k, hi: j})
		k = j
	}
	return out
}

func defaultConcurrency() int { return runtime.GOMAXPROCS(0) }
