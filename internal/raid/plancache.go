package raid

// Degraded-plan memoization. erasure.Code.PlanDegraded is a pure function of
// (failed column, wanted cell set) — it only consults the code's static group
// structure — yet the engine recomputed it on every degraded fetch and every
// bad-sector repair, putting greedy set-cover work (maps, sorts, candidate
// scans) on the degraded-read hot path. The memo caches plans per Array
// keyed by the failure signature: the failed column plus a bitmask of the
// wanted cells. Memoized plans are shared across goroutines and must never
// be mutated — callers copy plan.Fetch before handing it to anything that
// sorts (see fetchStripeElems).
//
// FailDisk and Rebuild clear the memo. Plans do not actually depend on the
// array's failure state (the key pins the failed column), so this is
// hygiene — it bounds memory across failure epochs — not a correctness
// requirement.

import (
	"sync"

	"dcode/internal/erasure"
)

const (
	// planMemoMaxCells bounds the geometries the memo can sign: rows×cols
	// must fit the key's bitmask. Larger codes plan directly.
	planMemoMaxCells = 512
	// planMemoMaxEntries bounds the memo; on overflow it is cleared
	// wholesale (degraded access patterns repeat, so it refills instantly).
	planMemoMaxEntries = 256
)

// planKey is the failure signature: the failed column and the wanted set as
// a bitmask over row*cols+col cell indices. It is comparable, so lookups
// stay allocation-free.
type planKey struct {
	failed int
	mask   [planMemoMaxCells / 64]uint64
}

type planMemo struct {
	mu    sync.Mutex
	plans map[planKey]*erasure.DegradedPlan
}

// planDegraded returns the (possibly memoized) degraded plan for reading the
// wanted cells with one column failed. The returned plan is shared: callers
// must treat it as read-only.
func (a *Array) planDegraded(failed int, wanted []erasure.Coord) (*erasure.DegradedPlan, error) {
	cols := a.code.Cols()
	if a.planMemoOff || a.code.Rows()*cols > planMemoMaxCells {
		p, err := a.code.PlanDegraded(failed, wanted, nil)
		if err != nil {
			return nil, err
		}
		return &p, nil
	}
	k := planKey{failed: failed}
	for _, co := range wanted {
		idx := co.Row*cols + co.Col
		k.mask[idx>>6] |= 1 << (idx & 63)
	}
	a.plans.mu.Lock()
	if p, ok := a.plans.plans[k]; ok {
		a.plans.mu.Unlock()
		a.m.degradedPlanHits.Inc()
		return p, nil
	}
	a.plans.mu.Unlock()
	p, err := a.code.PlanDegraded(failed, wanted, nil)
	if err != nil {
		return nil, err
	}
	a.plans.mu.Lock()
	if a.plans.plans == nil || len(a.plans.plans) >= planMemoMaxEntries {
		a.plans.plans = make(map[planKey]*erasure.DegradedPlan)
	}
	a.plans.plans[k] = &p
	a.plans.mu.Unlock()
	return &p, nil
}

// invalidatePlans drops every memoized plan.
func (a *Array) invalidatePlans() {
	a.plans.mu.Lock()
	a.plans.plans = nil
	a.plans.mu.Unlock()
}
