package raid

import (
	"reflect"
	"testing"
)

// vetGuardedRaid mirrors the obs package's copy-safety audit for the raid
// layer's shared mutable state: a sync or sync/atomic field anywhere in the
// struct makes `go vet`'s copylocks check reject by-value copies.
func vetGuardedRaid(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Struct:
		if pkg := t.PkgPath(); pkg == "sync" || pkg == "sync/atomic" {
			return true
		}
		for i := 0; i < t.NumField(); i++ {
			if vetGuardedRaid(t.Field(i).Type) {
				return true
			}
		}
	case reflect.Array:
		return vetGuardedRaid(t.Elem())
	}
	return false
}

func TestSharedStateIsCopylocksVisible(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Array{}),
		reflect.TypeOf(planMemo{}),
		reflect.TypeOf(journal{}),
	} {
		if !vetGuardedRaid(typ) {
			t.Errorf("%s must stay copylocks-visible so vet rejects by-value copies", typ)
		}
	}
}
