package raid

// Asynchronous device scheduling. With WithAsyncIO enabled the array routes
// every per-column fan-out of a stripe task — the coalesced run reads and
// writes of the general path, full-stripe loads and stores, and the vectored
// direct paths — through one blockdev.AsyncQueue instead of spawning a
// goroutine per column: a stripe task stages all its device runs, kicks the
// queue once (one io_uring_enter on the ring engine), and harvests the
// completion handles. Device overlap then comes from the queue's depth, not
// from goroutine count — a ReadAt costs O(1) goroutines instead of
// O(columns).
//
// Semantics are identical to the synchronous path by construction:
//
//   - the same coalesced runs are issued against the same Instrumented
//     devices, so the per-disk ops/bytes tallies — the paper's I/O-load
//     metric — are unchanged;
//   - a run that errors falls back to the same element-at-a-time repair the
//     synchronous path uses (readElem's bad-sector read-repair and
//     failure-marking, writeElem's best-effort retry);
//   - trace spans Begin at submit and End after completion (plus any
//     fallback), so span duration now includes queue time — comparing
//     OpDevRead spans against the device service histograms exposes
//     queueing delay.
//
// Buffer lifetime: the engine owns submitted buffers until their completion
// is waited on (see internal/blockdev's async docs). Every helper below
// therefore harvests ALL completions of its batch — even after an early
// error — before returning, so pooled scratch and caller buffers are never
// recycled under an in-flight operation.

import (
	"dcode/internal/blockdev"
	"dcode/internal/erasure"
	"dcode/internal/stripe"
	"dcode/internal/trace"
)

// WithAsyncIO enables the asynchronous device-submission engine with the
// given queue depth (ops usefully in flight across the whole array; n ≤ 0
// selects blockdev.DefaultAsyncDepth). Off by default; the default
// synchronous path is untouched when the option is absent.
func WithAsyncIO(depth int) Option {
	return func(a *Array) {
		if depth <= 0 {
			depth = blockdev.DefaultAsyncDepth
		}
		a.asyncDepth = depth
	}
}

// AsyncEnabled reports whether the array submits device I/O asynchronously.
func (a *Array) AsyncEnabled() bool { return a.aio != nil }

// AsyncEngine returns the backend name ("uring" or "pool"), or "" when
// async I/O is off.
func (a *Array) AsyncEngine() string {
	if a.aio == nil {
		return ""
	}
	return a.aio.Engine()
}

// Close releases array resources: parked batched writes flush and the async
// engine drains and shuts down. It does not close the underlying devices —
// the caller opened them and keeps their lifetime. An array without batching
// or async I/O needs no Close (it stays a cheap no-op).
func (a *Array) Close() error {
	err := a.Flush()
	if a.aio != nil {
		if cerr := a.aio.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// readRunsAsync serves a batch of coalesced runs through the async engine:
// stage every run, kick once, harvest everything. A failed column yields
// ErrFailed for its run without touching the device (as readRunDev); a run
// whose submitted read errors falls back to element-at-a-time readElem,
// which repairs bad sectors in place and marks the disk failed on real
// errors — exactly the synchronous fallback. Returns the error of the
// lowest-indexed failed run, matching fanOut's semantics.
func (a *Array) readRunsAsync(si int64, runs []cellRun, s *stripe.Stripe, sc *opScratch) error {
	abufs := sc.abufs[:0]
	for _, r := range runs {
		abufs = append(abufs, s.ColRange(r.col, r.row, r.n))
	}
	sc.abufs = abufs
	comps := sc.comps[:0]
	ctcs := sc.ctcs[:0]
	parent := sc.tc.Link()
	for i, r := range runs {
		ctcs = append(ctcs, a.tr.Begin(trace.OpDevRead, int32(r.col), si, parent))
		if a.isFailed(r.col) {
			comps = append(comps, nil)
			continue
		}
		comps = append(comps, a.aio.SubmitReadVec(r.col, abufs[i:i+1], a.deviceOffset(si, r.row), int64(r.n)))
	}
	a.aio.Kick()
	// Harvest every completion before any fallback touches stripe memory the
	// engine may still be writing; the second pass consumes the recorded
	// results with nothing left in flight.
	aerrs := sc.aerrs[:0]
	for _, c := range comps {
		if c == nil {
			aerrs = append(aerrs, blockdev.ErrFailed)
			continue
		}
		_, err := c.Wait()
		aerrs = append(aerrs, err)
	}
	var firstErr error
	for i, r := range runs {
		err := aerrs[i]
		if comps[i] != nil && err != nil {
			err = a.readRunElems(si, r, s)
		}
		a.tr.End(ctcs[i], int64(r.n*a.elemSize), err != nil)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	sc.comps, sc.ctcs, sc.aerrs = comps, ctcs, aerrs
	clear(comps) // drop completion (and buffer) references before pooling
	clear(abufs)
	clear(aerrs)
	return firstErr
}

// readRunElems is the element-at-a-time fallback of an errored run — the
// same loop readRunDev retries with, with readElem's transparent bad-sector
// repair and failure marking.
func (a *Array) readRunElems(si int64, r cellRun, s *stripe.Stripe) error {
	for k := 0; k < r.n; k++ {
		co := erasure.Coord{Row: r.row + k, Col: r.col}
		if err := a.readElem(si, co, s.Elem(co.Row, co.Col)); err != nil {
			return err
		}
	}
	return nil
}

// writeRunsBestEffortAsync is readRunsAsync for best-effort writes: failed
// columns are skipped, an errored run retries element-at-a-time (writeElem
// marks the disk failed and keeps the cells it can take), and — like
// writeRunBestEffort — nothing propagates; callers judge the array by
// failedCount.
func (a *Array) writeRunsBestEffortAsync(si int64, runs []cellRun, s *stripe.Stripe, sc *opScratch) {
	abufs := sc.abufs[:0]
	for _, r := range runs {
		abufs = append(abufs, s.ColRange(r.col, r.row, r.n))
	}
	sc.abufs = abufs
	comps := sc.comps[:0]
	ctcs := sc.ctcs[:0]
	parent := sc.tc.Link()
	for i, r := range runs {
		ctcs = append(ctcs, a.tr.Begin(trace.OpDevWrite, int32(r.col), si, parent))
		if a.isFailed(r.col) {
			comps = append(comps, nil)
			continue
		}
		comps = append(comps, a.aio.SubmitWriteVec(r.col, abufs[i:i+1], a.deviceOffset(si, r.row), int64(r.n)))
	}
	a.aio.Kick()
	aerrs := sc.aerrs[:0]
	for _, c := range comps {
		if c == nil {
			aerrs = append(aerrs, nil)
			continue
		}
		_, err := c.Wait()
		aerrs = append(aerrs, err)
	}
	for i, r := range runs {
		if aerrs[i] != nil {
			for k := 0; k < r.n; k++ {
				co := erasure.Coord{Row: r.row + k, Col: r.col}
				_ = a.writeElem(si, co, s.Elem(co.Row, co.Col))
			}
		}
		a.tr.End(ctcs[i], int64(r.n*a.elemSize), false)
	}
	sc.comps, sc.ctcs, sc.aerrs = comps, ctcs, aerrs
	clear(comps) // drop completion (and buffer) references before pooling
	clear(abufs)
	clear(aerrs)
}

// readVecRunsAsync is the async twin of the direct read path's fan-out: each
// coalesced vecRun scatters straight into the caller's buffer as one staged
// vectored read, one kick covers the whole stripe. Any error abandons the
// stripe to the general path (as readStripeDirect), but only after every
// completion is harvested — the kernel may still be scattering into the
// caller's buffer, which the general path is about to overwrite.
func (a *Array) readVecRunsAsync(si int64, vruns []vecRun, sc *opScratch) bool {
	comps := sc.comps[:0]
	ctcs := sc.ctcs[:0]
	parent := sc.tc.Link()
	for _, r := range vruns {
		ctcs = append(ctcs, a.tr.Begin(trace.OpDevRead, int32(r.col), si, parent))
		comps = append(comps, a.aio.SubmitReadVec(r.col, sc.vecbufs[r.lo:r.hi], a.deviceOffset(si, r.row), int64(r.n)))
	}
	a.aio.Kick()
	ok := true
	for i, c := range comps {
		_, err := c.Wait()
		a.tr.End(ctcs[i], int64(vruns[i].n*a.elemSize), err != nil)
		if err != nil {
			ok = false
		}
	}
	sc.comps, sc.ctcs = comps, ctcs
	clear(comps) // the completions reference the caller's buffer; drop them
	return ok
}

// writeVecColumnsAsync commits the direct write path's per-column gather
// writes as one staged batch. Failed columns are skipped before submission
// (no span, as writeVecColumn); an errored column retries element-at-a-time
// from its iovec list, marking the disk failed — identical best-effort
// semantics to the synchronous commit.
func (a *Array) writeVecColumnsAsync(si int64, sc *opScratch) {
	rows := a.code.Rows()
	cols := a.code.Cols()
	comps := sc.comps[:0]
	ctcs := sc.ctcs[:0]
	parent := sc.tc.Link()
	for c := 0; c < cols; c++ {
		if a.isFailed(c) {
			comps = append(comps, nil)
			ctcs = append(ctcs, trace.Ctx{})
			continue
		}
		ctcs = append(ctcs, a.tr.Begin(trace.OpDevWrite, int32(c), si, parent))
		comps = append(comps, a.aio.SubmitWriteVec(c, sc.vecbufs[c*rows:(c+1)*rows], a.deviceOffset(si, 0), int64(rows)))
	}
	a.aio.Kick()
	aerrs := sc.aerrs[:0]
	for _, c := range comps {
		if c == nil {
			aerrs = append(aerrs, nil)
			continue
		}
		_, err := c.Wait()
		aerrs = append(aerrs, err)
	}
	for c := 0; c < cols; c++ {
		if comps[c] == nil {
			continue
		}
		err := aerrs[c]
		a.tr.End(ctcs[c], int64(rows*a.elemSize), err != nil)
		if err != nil {
			col := sc.vecbufs[c*rows : (c+1)*rows]
			for r := 0; r < rows; r++ {
				_ = a.writeElem(si, erasure.Coord{Row: r, Col: c}, col[r])
			}
		}
	}
	sc.comps, sc.ctcs, sc.aerrs = comps, ctcs, aerrs
	clear(comps) // the completions reference the caller's buffer; drop them
	clear(aerrs)
}
