package raid

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dcode/internal/blockdev"
	"dcode/internal/codes"
)

// TestRandomOpsAgainstModel drives the array with a long random sequence of
// reads, writes, disk failures, replacements, rebuilds and scrubs, checking
// every read against a plain in-memory model of the volume. This is the
// whole-engine integration check: if any code path (RMW parity patching,
// degraded reads/writes, rebuild, failure discovery) corrupts a byte, the
// model disagrees.
func TestRandomOpsAgainstModel(t *testing.T) {
	for _, id := range []string{"dcode", "rdp", "hdp"} {
		t.Run(id, func(t *testing.T) {
			a, mems := newArray(t, id, 7, 6)
			model := make([]byte, a.Size())
			rng := rand.New(rand.NewSource(int64(len(id)) * 977))

			// Start from a fully written volume.
			rng.Read(model)
			if _, err := a.WriteAt(model, 0); err != nil {
				t.Fatal(err)
			}

			failedSet := map[int]bool{}
			steps := 400
			if testing.Short() {
				steps = 100
			}
			for i := 0; i < steps; i++ {
				switch op := rng.Intn(100); {
				case op < 45: // read
					n := 1 + rng.Intn(600)
					off := rng.Int63n(a.Size() - int64(n))
					got := make([]byte, n)
					if _, err := a.ReadAt(got, off); err != nil {
						t.Fatalf("step %d: read: %v", i, err)
					}
					if !bytes.Equal(got, model[off:off+int64(n)]) {
						t.Fatalf("step %d: read mismatch at %d+%d", i, off, n)
					}
				case op < 85: // write
					n := 1 + rng.Intn(600)
					off := rng.Int63n(a.Size() - int64(n))
					buf := make([]byte, n)
					rng.Read(buf)
					if _, err := a.WriteAt(buf, off); err != nil {
						t.Fatalf("step %d: write: %v", i, err)
					}
					copy(model[off:], buf)
				case op < 93: // fail a disk (keep at most 2 down)
					if len(failedSet) >= 2 {
						continue
					}
					d := rng.Intn(len(mems))
					if failedSet[d] {
						continue
					}
					mems[d].Fail()
					failedSet[d] = true
				default: // replace + rebuild one failed disk
					for d := range failedSet {
						mems[d].Replace()
						// The array may not have noticed the failure yet
						// (nothing touched that disk); tell it explicitly so
						// Rebuild is legal.
						if err := a.FailDisk(d); err != nil {
							t.Fatalf("step %d: fail disk: %v", i, err)
						}
						if err := a.Rebuild(d); err != nil {
							t.Fatalf("step %d: rebuild %d: %v", i, d, err)
						}
						delete(failedSet, d)
						break
					}
				}
			}

			// Drain: repair everything and verify the full volume + parity.
			for d := range failedSet {
				mems[d].Replace()
				if err := a.FailDisk(d); err != nil {
					t.Fatal(err)
				}
				if err := a.Rebuild(d); err != nil {
					t.Fatal(err)
				}
			}
			got := make([]byte, a.Size())
			if _, err := a.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, model) {
				t.Fatal("final volume does not match the model")
			}
			if fixed, err := a.Scrub(); err != nil || fixed != 0 {
				t.Fatalf("final scrub: fixed=%d err=%v", fixed, err)
			}
		})
	}
}

// FuzzArrayOps interprets the fuzz input as an operation stream — each byte
// triple selects (op, offset, length) — and drives a small D-Code array with
// it, checking every read against an in-memory model and the final volume
// plus parity at the end. It is the coverage-guided twin of
// TestRandomOpsAgainstModel, aimed at the offset/length edge cases in
// splitBytes, RMW-vs-reconstruct strategy selection and failure handling.
func FuzzArrayOps(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Add([]byte{0x40, 0xFF, 0x00, 0x80, 0x00, 0x10, 0xC0, 0x00, 0x00})
	f.Add(bytes.Repeat([]byte{0x91, 0x3C, 0x77}, 20))
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 512 {
			input = input[:512]
		}
		code := codes.MustNew("dcode", 5)
		devs := make([]blockdev.Device, code.Cols())
		mems := make([]*blockdev.MemDevice, code.Cols())
		const stripes, fuzzElem = 3, 16
		devSize := stripes * int64(code.Rows()) * fuzzElem
		for i := range devs {
			mems[i] = blockdev.NewMem(devSize)
			devs[i] = mems[i]
		}
		a, err := New(code, devs, fuzzElem, stripes)
		if err != nil {
			t.Fatal(err)
		}
		model := make([]byte, a.Size())
		if _, err := a.WriteAt(model, 0); err != nil {
			t.Fatal(err)
		}

		failed := -1
		for i := 0; i+2 < len(input); i += 3 {
			op, b1, b2 := input[i], input[i+1], input[i+2]
			off := int64(b1) * a.Size() / 256
			n := 1 + int(b2)%64
			if off+int64(n) > a.Size() {
				n = int(a.Size() - off)
			}
			switch op % 4 {
			case 0: // read and check
				got := make([]byte, n)
				if _, err := a.ReadAt(got, off); err != nil {
					t.Fatalf("read at %d+%d: %v", off, n, err)
				}
				if !bytes.Equal(got, model[off:off+int64(n)]) {
					t.Fatalf("read mismatch at %d+%d", off, n)
				}
			case 1, 2: // write (deterministic content from the input)
				buf := make([]byte, n)
				for j := range buf {
					buf[j] = b1 ^ b2 ^ byte(j)
				}
				if _, err := a.WriteAt(buf, off); err != nil {
					t.Fatalf("write at %d+%d: %v", off, n, err)
				}
				copy(model[off:], buf)
			case 3: // toggle one failure
				if failed < 0 {
					failed = int(b1) % len(mems)
					mems[failed].Fail()
				} else {
					mems[failed].Replace()
					if err := a.FailDisk(failed); err != nil {
						t.Fatal(err)
					}
					if err := a.Rebuild(failed); err != nil {
						t.Fatalf("rebuild %d: %v", failed, err)
					}
					failed = -1
				}
			}
		}
		if failed >= 0 {
			mems[failed].Replace()
			if err := a.FailDisk(failed); err != nil {
				t.Fatal(err)
			}
			if err := a.Rebuild(failed); err != nil {
				t.Fatal(err)
			}
		}
		got := make([]byte, a.Size())
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, model) {
			t.Fatal("final volume does not match the model")
		}
		if fixed, err := a.Scrub(); err != nil || fixed != 0 {
			t.Fatalf("final scrub: fixed=%d err=%v", fixed, err)
		}
	})
}

// TestConcurrentReadersAndWriters hammers disjoint regions of the volume
// from many goroutines while a disk fails mid-run, then verifies every
// region and the parity. Run with -race to check the locking.
func TestConcurrentReadersAndWriters(t *testing.T) {
	a, mems := newArray(t, "dcode", 7, 16)
	if _, err := a.WriteAt(pattern(int(a.Size()), 61), 0); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	region := a.Size() / workers
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(w) * region
			local := pattern(int(region), byte(w))
			if _, err := a.WriteAt(local, base); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 30; i++ {
				n := 1 + rng.Intn(int(region)-1)
				off := base + rng.Int63n(region-int64(n))
				if rng.Intn(2) == 0 {
					buf := make([]byte, n)
					rng.Read(buf)
					if _, err := a.WriteAt(buf, off); err != nil {
						errs <- err
						return
					}
					copy(local[off-base:], buf)
				} else {
					got := make([]byte, n)
					if _, err := a.ReadAt(got, off); err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(got, local[off-base:off-base+int64(n)]) {
						errs <- fmt.Errorf("worker %d: stale read at %d", w, off)
						return
					}
				}
				if w == 0 && i == 10 {
					mems[3].Fail() // mid-run failure under full load
				}
			}
			// Final verification of the whole region.
			got := make([]byte, region)
			if _, err := a.ReadAt(got, base); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, local) {
				errs <- fmt.Errorf("worker %d: final region mismatch", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	mems[3].Replace()
	if err := a.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(3); err != nil {
		t.Fatal(err)
	}
	if fixed, err := a.Scrub(); err != nil || fixed != 0 {
		t.Fatalf("post-stress scrub: fixed=%d err=%v", fixed, err)
	}
}
