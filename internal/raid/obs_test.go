package raid

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

// TestSnapshotReflectsOperations drives every instrumented path once and
// checks the snapshot: counters, latency histogram counts, per-disk loads
// and the XOR volume.
func TestSnapshotReflectsOperations(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 4)
	data := pattern(int(a.Size()), 7)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if _, err := a.ReadAt(buf, 64); err != nil {
		t.Fatal(err)
	}

	// Degraded read.
	mems[1].Fail()
	if err := a.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadAt(make([]byte, int(a.Size())), 0); err != nil {
		t.Fatal(err)
	}
	// Rebuild.
	mems[1].Replace()
	if err := a.Rebuild(1); err != nil {
		t.Fatal(err)
	}
	// Scrub.
	if _, err := a.Scrub(); err != nil {
		t.Fatal(err)
	}

	s := a.Snapshot()
	if s.Code != a.Code().Name() || s.Disks != a.Code().Cols() {
		t.Fatalf("identity: %+v", s)
	}
	st := a.Stats()
	if s.Counters.Reads != st.Reads || s.Counters.Writes != st.Writes ||
		s.Counters.DegradedReads != st.DegradedReads ||
		s.Counters.StripesRebuilt != st.StripesRebuilt {
		t.Fatalf("snapshot counters %+v disagree with Stats %+v", s.Counters, st)
	}
	if s.Counters.DegradedReads == 0 {
		t.Fatal("degraded read not counted")
	}
	if s.Latency.Read.Count != s.Counters.Reads {
		t.Fatalf("read latency count %d != reads %d", s.Latency.Read.Count, s.Counters.Reads)
	}
	if s.Latency.Write.Count != s.Counters.Writes {
		t.Fatalf("write latency count %d != writes %d", s.Latency.Write.Count, s.Counters.Writes)
	}
	if s.Latency.DegradedRead.Count == 0 || s.Latency.Rebuild.Count == 0 || s.Latency.Scrub.Count == 0 {
		t.Fatalf("latency histograms missing observations: %+v", s.Latency)
	}
	if s.Load.Total == 0 || len(s.Load.PerDisk) != a.Code().Cols() {
		t.Fatalf("load: %+v", s.Load)
	}
	if s.XOR.EncodeOps == 0 {
		t.Fatal("no encode XOR volume recorded")
	}
	if s.XOR.DecodeOps == 0 {
		t.Fatal("no decode XOR volume recorded despite reconstruction")
	}
	if s.AnalyticEncodeXORPerData <= 0 {
		t.Fatalf("analytic prediction missing: %v", s.AnalyticEncodeXORPerData)
	}
	var devOps int64
	for _, d := range s.Devices {
		devOps += d.Ops()
	}
	if devOps != s.Load.Total {
		t.Fatalf("device ops %d != load total %d", devOps, s.Load.Total)
	}

	// The snapshot must round-trip through JSON (the raidctl/bench format).
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters != s.Counters {
		t.Fatalf("JSON round-trip changed counters: %+v vs %+v", back.Counters, s.Counters)
	}
}

func TestSnapshotMergeAccumulates(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 4)
	if _, err := a.WriteAt(pattern(512, 3), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	one := a.Snapshot()

	var acc Snapshot
	acc.Merge(one)
	acc.Merge(one)
	if acc.Code != one.Code {
		t.Fatalf("merge lost identity: %q", acc.Code)
	}
	if acc.Counters.Reads != 2*one.Counters.Reads || acc.Counters.Writes != 2*one.Counters.Writes {
		t.Fatalf("counters not doubled: %+v vs %+v", acc.Counters, one.Counters)
	}
	if acc.Latency.Read.Count != 2*one.Latency.Read.Count {
		t.Fatalf("histogram count not doubled: %d", acc.Latency.Read.Count)
	}
	if acc.Load.Total != 2*one.Load.Total {
		t.Fatalf("load not doubled: %d vs %d", acc.Load.Total, one.Load.Total)
	}
	if acc.XOR.EncodeOps != 2*one.XOR.EncodeOps {
		t.Fatalf("xor not doubled: %+v", acc.XOR)
	}
}

func TestResetMetrics(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 4)
	if _, err := a.WriteAt(pattern(1024, 1), 0); err != nil {
		t.Fatal(err)
	}
	a.ResetMetrics()
	s := a.Snapshot()
	if s.Counters != (CounterSnapshot{}) {
		t.Fatalf("counters survive reset: %+v", s.Counters)
	}
	if s.Latency.Write.Count != 0 || s.Load.Total != 0 || s.XOR.EncodeOps != 0 {
		t.Fatalf("metrics survive reset: %+v", s)
	}
}

// TestStatsConcurrentConsistency hammers mixed reads, writes and degraded
// reads from many goroutines and asserts no update is lost: the counter
// totals must equal the number of operations issued, and every latency
// histogram must have exactly one observation per counted operation. Run
// with -race to check the lock-free instrumentation.
func TestStatsConcurrentConsistency(t *testing.T) {
	a, mems := newArray(t, "dcode", 7, 8)
	if _, err := a.WriteAt(pattern(int(a.Size()), 5), 0); err != nil {
		t.Fatal(err)
	}
	// One disk down for the whole run, so a stable fraction of reads is
	// degraded. MemDevice.Fail() makes accesses error; mark it failed in the
	// array up front to avoid rediscovery races in accounting.
	mems[2].Fail()
	if err := a.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	// Start the measured window after the prefill so per-disk loads cover
	// only the concurrent workload.
	a.ResetMetrics()

	const workers = 8
	iters := 200
	if testing.Short() {
		iters = 50
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 131))
			for i := 0; i < iters; i++ {
				n := 1 + rng.Intn(300)
				off := rng.Int63n(a.Size() - int64(n))
				if i%2 == 0 {
					if _, err := a.ReadAt(make([]byte, n), off); err != nil {
						errs <- err
						return
					}
				} else {
					buf := make([]byte, n)
					rng.Read(buf)
					if _, err := a.WriteAt(buf, off); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := a.Snapshot()
	wantReads := int64(workers * iters / 2)
	wantWrites := int64(workers * iters / 2)
	if s.Counters.Reads != wantReads {
		t.Fatalf("lost read updates: %d, want %d", s.Counters.Reads, wantReads)
	}
	if s.Counters.Writes != wantWrites {
		t.Fatalf("lost write updates: %d, want %d", s.Counters.Writes, wantWrites)
	}
	if s.Latency.Read.Count != wantReads {
		t.Fatalf("read histogram %d observations, want %d", s.Latency.Read.Count, wantReads)
	}
	if s.Latency.Write.Count != wantWrites {
		t.Fatalf("write histogram %d observations, want %d", s.Latency.Write.Count, wantWrites)
	}
	if s.Counters.DegradedReads == 0 {
		t.Fatal("no degraded reads with a disk down")
	}
	if s.Latency.DegradedRead.Count != s.Counters.DegradedReads {
		t.Fatalf("degraded histogram %d != counter %d",
			s.Latency.DegradedRead.Count, s.Counters.DegradedReads)
	}
	// The failed column's device must not have been touched by the workload.
	if s.Devices[2].Reads != 0 || s.Devices[2].Writes != 0 {
		t.Fatalf("failed disk accessed: %+v", s.Devices[2])
	}
}
