//go:build !race

package raid

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests are skipped under it (the instrumentation and the
// detector's sync.Pool handling both allocate).
const raceEnabled = false
