package raid

import (
	"dcode/internal/obs"
	"dcode/internal/trace"
)

// arrayMetrics is the array's observability state: lock-free counters for
// every logical event the old Stats struct tracked, latency histograms for
// the hot paths, and (via the per-column blockdev.Instrumented wrappers) the
// per-disk I/O load that mirrors the paper's Figure 4/5 metric on the live
// engine.
type arrayMetrics struct {
	reads            obs.Counter
	writes           obs.Counter
	degradedReads    obs.Counter
	fullStripeWrites obs.Counter
	rmwWrites        obs.Counter
	stripesRebuilt   obs.Counter
	scrubErrorsFixed obs.Counter
	sectorsRepaired  obs.Counter

	readLatency         obs.Histogram // whole ReadAt calls
	writeLatency        obs.Histogram // whole WriteAt calls
	degradedReadLatency obs.Histogram // reconstruction portions of reads
	rebuildLatency      obs.Histogram // per stripe rebuilt
	scrubLatency        obs.Histogram // per stripe scrubbed

	// parityLatency is the "parity compute" term of the per-phase latency
	// decomposition: time spent in erasure-code Encode/Reconstruct calls and
	// the raid layer's own group-XOR reconstruction loops. Always on — one
	// clock pair around a multi-kilobyte XOR pass is noise.
	parityLatency obs.Histogram

	// decodeXOROps/Bytes tally the group-XOR reconstruction work the raid
	// layer performs itself (degraded-read plan steps, read-repair, planned
	// rebuild); whole-stripe reconstructions run inside the erasure engine
	// and are counted by its own XORCounters instead.
	decodeXOROps   obs.Counter
	decodeXORBytes obs.Counter

	// rmwPreReadsAbsorbed counts old-data/old-parity pre-reads of
	// read-modify-write updates that the element cache served — device
	// reads the classic 4-I/O RMW no longer performs. Zero with no cache.
	rmwPreReadsAbsorbed obs.Counter
	// degradedPlanHits counts degraded/repair plans served from the
	// per-array plan memo instead of recomputed.
	degradedPlanHits obs.Counter

	// Batching-window counters (see batch.go); all zero without WithBatching.
	// batchedWrites counts writes accepted into the window, batchMergedWrites
	// the subset absorbed into an adjacent pending range, and batchFlushes
	// the per-stripe write-backs — batchedWrites/batchFlushes is the write
	// amplification the window removed.
	batchedWrites     obs.Counter
	batchMergedWrites obs.Counter
	batchFlushes      obs.Counter
}

// countDecodeXOR records n element XORs executed by a raid-layer
// reconstruction path.
func (a *Array) countDecodeXOR(n int) {
	a.m.decodeXOROps.Add(int64(n))
	a.m.decodeXORBytes.Add(int64(n) * int64(a.elemSize))
}

// Snapshot is the machine-readable view of everything the array measures.
// It is the payload of `raidctl stats`, the /stats HTTP endpoint, and the
// per-cell detail of cmd/bench.
type Snapshot struct {
	Code  string `json:"code"`
	Disks int    `json:"disks"`

	Counters CounterSnapshot `json:"counters"`
	Latency  LatencySnapshot `json:"latency"`

	// Load is the per-column device-operation tally (reads+writes per disk)
	// with the paper's load-balancing factor LF = Lmax/Lmin (Eq. 8, -1 when
	// a disk is idle) and the coefficient of variation the benchmark harness
	// gates regressions on.
	Load obs.LoadSnapshot `json:"load"`

	// Devices carries the full per-disk detail: op/byte/error counts and
	// device-level latency histograms.
	Devices []obs.IOSnapshot `json:"devices"`

	// XOR is the encode/decode XOR volume the erasure engine actually
	// executed; AnalyticEncodeXORPerData is ComputeMetrics' prediction
	// (paper §III-D), so `encode_ops / data elements encoded` can be checked
	// against it.
	XOR                      XORSnapshot `json:"xor"`
	AnalyticEncodeXORPerData float64     `json:"analytic_encode_xor_per_data"`

	// Cache is the element cache's counters and occupancy; nil (omitted)
	// when the array was built without WithCache.
	Cache *obs.CacheSnapshot `json:"cache,omitempty"`

	// Window is the rolling per-disk load view (recent reads/writes per disk,
	// live LF over the window, op rates, hot disks). Unlike Load, which
	// accumulates since the last reset, Window only covers the configured
	// trailing interval.
	Window *obs.WindowSnapshot `json:"window,omitempty"`

	// Trace carries the tracer's ring counters and retained slow spans; nil
	// (omitted) when the array runs with the Nop tracer.
	Trace *TraceSnapshot `json:"trace,omitempty"`

	// Server carries the network block service's per-client op/byte metrics
	// when the array is served over TCP (see SetServerStats); nil (omitted)
	// for a purely in-process array.
	Server *obs.ServerSnapshot `json:"server,omitempty"`

	// Async carries the asynchronous submission engine's counters (engine,
	// depth, in-flight, batch sizes, queue-time latency); nil (omitted) when
	// the array was built without WithAsyncIO.
	Async *obs.AsyncSnapshot `json:"async,omitempty"`

	// Phases is the per-phase latency decomposition: where a request's time
	// went, split into admission-queue wait, parity compute, device I/O, and
	// network round trips. Nil (omitted) when nothing was measured.
	Phases *PhaseSnapshot `json:"phases,omitempty"`
}

// PhaseSnapshot decomposes operation latency by phase. The terms are
// measured independently (each phase's own histogram), not by subdividing
// individual requests, so they answer "which phase dominates" rather than
// summing to any one request's latency.
type PhaseSnapshot struct {
	// Queue is the block service's admission-queue wait (0 for requests
	// admitted immediately); zero-valued for in-process arrays.
	Queue obs.HistogramSnapshot `json:"queue"`
	// Parity is erasure-code compute: Encode/Reconstruct calls plus the raid
	// layer's group-XOR reconstruction loops.
	Parity obs.HistogramSnapshot `json:"parity"`
	// Device is physical device time, merged across every column's read and
	// write latency histograms (remote columns count here too — their device
	// time includes the network, which Network isolates).
	Device obs.HistogramSnapshot `json:"device"`
	// Network is the client-observed request/response round-trip time of
	// remote columns; zero-valued for all-local arrays.
	Network obs.HistogramSnapshot `json:"network"`
}

// Zero reports whether nothing was observed in any phase.
func (p *PhaseSnapshot) Zero() bool {
	return p.Queue.Count == 0 && p.Parity.Count == 0 && p.Device.Count == 0 && p.Network.Count == 0
}

// Merge accumulates another decomposition into p.
func (p *PhaseSnapshot) Merge(o PhaseSnapshot) {
	p.Queue.Merge(o.Queue)
	p.Parity.Merge(o.Parity)
	p.Device.Merge(o.Device)
	p.Network.Merge(o.Network)
}

// XORSnapshot aliases the erasure engine's counter snapshot so Snapshot
// consumers only deal with raid types.
type XORSnapshot struct {
	EncodeOps   int64 `json:"encode_ops"`
	EncodeBytes int64 `json:"encode_bytes"`
	DecodeOps   int64 `json:"decode_ops"`
	DecodeBytes int64 `json:"decode_bytes"`
}

// CounterSnapshot mirrors Stats with JSON tags. The cache- and memo-related
// counters are omitted when zero so arrays without those features keep
// their existing serialized form.
type CounterSnapshot struct {
	Reads               int64 `json:"reads"`
	Writes              int64 `json:"writes"`
	DegradedReads       int64 `json:"degraded_reads"`
	FullStripeWrites    int64 `json:"full_stripe_writes"`
	RMWWrites           int64 `json:"rmw_writes"`
	StripesRebuilt      int64 `json:"stripes_rebuilt"`
	ScrubErrorsFixed    int64 `json:"scrub_errors_fixed"`
	SectorsRepaired     int64 `json:"sectors_repaired"`
	RMWPreReadsAbsorbed int64 `json:"rmw_prereads_absorbed,omitempty"`
	DegradedPlanHits    int64 `json:"degraded_plan_hits,omitempty"`
	BatchedWrites       int64 `json:"batched_writes,omitempty"`
	BatchMergedWrites   int64 `json:"batch_merged_writes,omitempty"`
	BatchFlushes        int64 `json:"batch_flushes,omitempty"`
}

// LatencySnapshot groups the array-level histograms.
type LatencySnapshot struct {
	Read         obs.HistogramSnapshot `json:"read"`
	Write        obs.HistogramSnapshot `json:"write"`
	DegradedRead obs.HistogramSnapshot `json:"degraded_read"`
	Rebuild      obs.HistogramSnapshot `json:"rebuild_stripe"`
	Scrub        obs.HistogramSnapshot `json:"scrub_stripe"`
}

// Snapshot captures the array's full observability state. Like every obs
// snapshot it is approximately consistent while operations are in flight and
// exact once they quiesce.
func (a *Array) Snapshot() Snapshot {
	s := Snapshot{
		Code:  a.code.Name(),
		Disks: a.code.Cols(),
		Counters: CounterSnapshot{
			Reads:               a.m.reads.Load(),
			Writes:              a.m.writes.Load(),
			DegradedReads:       a.m.degradedReads.Load(),
			FullStripeWrites:    a.m.fullStripeWrites.Load(),
			RMWWrites:           a.m.rmwWrites.Load(),
			StripesRebuilt:      a.m.stripesRebuilt.Load(),
			ScrubErrorsFixed:    a.m.scrubErrorsFixed.Load(),
			SectorsRepaired:     a.m.sectorsRepaired.Load(),
			RMWPreReadsAbsorbed: a.m.rmwPreReadsAbsorbed.Load(),
			DegradedPlanHits:    a.m.degradedPlanHits.Load(),
			BatchedWrites:       a.m.batchedWrites.Load(),
			BatchMergedWrites:   a.m.batchMergedWrites.Load(),
			BatchFlushes:        a.m.batchFlushes.Load(),
		},
		Latency: LatencySnapshot{
			Read:         a.m.readLatency.Snapshot(),
			Write:        a.m.writeLatency.Snapshot(),
			DegradedRead: a.m.degradedReadLatency.Snapshot(),
			Rebuild:      a.m.rebuildLatency.Snapshot(),
			Scrub:        a.m.scrubLatency.Snapshot(),
		},
		Devices: make([]obs.IOSnapshot, len(a.iodevs)),
		Load:    obs.LoadSnapshot{PerDisk: make([]int64, len(a.iodevs))},
	}
	for i, d := range a.iodevs {
		s.Devices[i] = d.Metrics().Snapshot()
		s.Load.PerDisk[i] = s.Devices[i].Ops()
	}
	s.Load.Recompute()
	x := a.code.XORStats()
	s.XOR = XORSnapshot{
		EncodeOps:   x.EncodeOps,
		EncodeBytes: x.EncodeBytes,
		DecodeOps:   x.DecodeOps + a.m.decodeXOROps.Load(),
		DecodeBytes: x.DecodeBytes + a.m.decodeXORBytes.Load(),
	}
	s.AnalyticEncodeXORPerData = a.code.ComputeMetrics().EncodeXORPerData
	if a.cache != nil {
		cs := a.cache.Snapshot()
		s.Cache = &cs
	}
	if a.window != nil {
		ws := a.window.Snapshot()
		s.Window = &ws
	}
	if a.tr != nil && a.tr != trace.Nop {
		s.Trace = &TraceSnapshot{Stats: a.tr.Stats(), SlowSpans: a.tr.SlowSpans()}
	}
	if a.serverStats != nil {
		ss := a.serverStats()
		s.Server = &ss
	}
	if a.aio != nil {
		as := a.aio.Metrics().Snapshot()
		as.Engine = a.aio.Engine()
		as.Depth = a.aio.Depth()
		s.Async = &as
	}

	// Phase decomposition, derived at snapshot time so the hot path pays
	// nothing beyond the parity histogram it already feeds: Device merges the
	// per-column device histograms captured above, Network the RTT view of
	// any remote column, Queue the block service's admission wait.
	var ph PhaseSnapshot
	ph.Parity = a.m.parityLatency.Snapshot()
	for i := range s.Devices {
		ph.Device.Merge(s.Devices[i].ReadLatency)
		ph.Device.Merge(s.Devices[i].WriteLatency)
	}
	for _, d := range a.iodevs {
		if rd, ok := d.Underlying().(interface{ RTTSnapshot() obs.HistogramSnapshot }); ok {
			ph.Network.Merge(rd.RTTSnapshot())
		}
	}
	if s.Server != nil && s.Server.QueueWait != nil {
		ph.Queue = *s.Server.QueueWait
	}
	if !ph.Zero() {
		s.Phases = &ph
	}
	return s
}

// SetServerStats registers the network block service's snapshot provider, so
// Array.Snapshot — and with it /stats, /metrics and raidctl — carries the
// per-client byte/op metrics of the process serving this array. Set it
// during process startup, before the array serves traffic; the field is read
// without synchronization afterwards.
func (a *Array) SetServerStats(fn func() obs.ServerSnapshot) { a.serverStats = fn }

// WithEvents wires a flight recorder into the array: disk failures, rebuild
// and scrub lifecycle, degraded-read entry, and batch flushes are recorded
// with the trace ID of the operation that hit them. A nil recorder (the
// default) disables recording at the cost of one nil check per event site.
func WithEvents(rec *obs.Recorder) Option {
	return func(a *Array) {
		a.ev = rec
	}
}

// Events returns the array's flight recorder; nil when none was configured.
func (a *Array) Events() *obs.Recorder { return a.ev }

// Merge accumulates another snapshot into s; raidctl uses it to aggregate
// statistics across process lifetimes. Code identity fields are taken from o
// when s is zero-valued so merging into an empty snapshot works.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Code == "" {
		s.Code = o.Code
		s.Disks = o.Disks
	}
	if s.AnalyticEncodeXORPerData == 0 {
		s.AnalyticEncodeXORPerData = o.AnalyticEncodeXORPerData
	}

	s.Counters.Reads += o.Counters.Reads
	s.Counters.Writes += o.Counters.Writes
	s.Counters.DegradedReads += o.Counters.DegradedReads
	s.Counters.FullStripeWrites += o.Counters.FullStripeWrites
	s.Counters.RMWWrites += o.Counters.RMWWrites
	s.Counters.StripesRebuilt += o.Counters.StripesRebuilt
	s.Counters.ScrubErrorsFixed += o.Counters.ScrubErrorsFixed
	s.Counters.SectorsRepaired += o.Counters.SectorsRepaired
	s.Counters.RMWPreReadsAbsorbed += o.Counters.RMWPreReadsAbsorbed
	s.Counters.DegradedPlanHits += o.Counters.DegradedPlanHits
	s.Counters.BatchedWrites += o.Counters.BatchedWrites
	s.Counters.BatchMergedWrites += o.Counters.BatchMergedWrites
	s.Counters.BatchFlushes += o.Counters.BatchFlushes

	s.Latency.Read.Merge(o.Latency.Read)
	s.Latency.Write.Merge(o.Latency.Write)
	s.Latency.DegradedRead.Merge(o.Latency.DegradedRead)
	s.Latency.Rebuild.Merge(o.Latency.Rebuild)
	s.Latency.Scrub.Merge(o.Latency.Scrub)

	s.Load.Merge(o.Load)
	for len(s.Devices) < len(o.Devices) {
		s.Devices = append(s.Devices, obs.IOSnapshot{})
	}
	for i := range o.Devices {
		s.Devices[i].Merge(o.Devices[i])
	}

	s.XOR.EncodeOps += o.XOR.EncodeOps
	s.XOR.EncodeBytes += o.XOR.EncodeBytes
	s.XOR.DecodeOps += o.XOR.DecodeOps
	s.XOR.DecodeBytes += o.XOR.DecodeBytes

	if o.Cache != nil {
		if s.Cache == nil {
			s.Cache = &obs.CacheSnapshot{}
		}
		s.Cache.Merge(*o.Cache)
	}

	// The window is a point-in-time rolling view and the slow-span log is a
	// recent-history capture: neither sums meaningfully, so the merge adopts
	// the newer snapshot's values while the trace counters accumulate.
	if o.Window != nil {
		w := *o.Window
		s.Window = &w
	}
	if o.Server != nil {
		if s.Server == nil {
			s.Server = &obs.ServerSnapshot{}
		}
		s.Server.Merge(*o.Server)
	}
	if o.Async != nil {
		if s.Async == nil {
			s.Async = &obs.AsyncSnapshot{}
		}
		s.Async.Merge(*o.Async)
	}
	if o.Phases != nil {
		if s.Phases == nil {
			s.Phases = &PhaseSnapshot{}
		}
		s.Phases.Merge(*o.Phases)
	}
	if o.Trace != nil {
		if s.Trace == nil {
			s.Trace = &TraceSnapshot{}
		}
		s.Trace.Recorded += o.Trace.Recorded
		s.Trace.Dropped += o.Trace.Dropped
		s.Trace.SlowCaptured += o.Trace.SlowCaptured
		s.Trace.Enabled = o.Trace.Enabled
		s.Trace.Capacity = o.Trace.Capacity
		s.Trace.SlowCapacity = o.Trace.SlowCapacity
		s.Trace.SlowThresholdNs = o.Trace.SlowThresholdNs
		s.Trace.SlowSpans = o.Trace.SlowSpans
	}
}

// ResetMetrics zeroes every counter, histogram and device tally, including
// the erasure code's XOR counters. The benchmark harness calls it after
// pre-filling an array so the measured window covers only the workload.
// It is exact only while the array is quiescent; note the XOR counters live
// on the code instance, so arrays sharing one *erasure.Code share that reset.
func (a *Array) ResetMetrics() {
	a.m.reads.Reset()
	a.m.writes.Reset()
	a.m.degradedReads.Reset()
	a.m.fullStripeWrites.Reset()
	a.m.rmwWrites.Reset()
	a.m.stripesRebuilt.Reset()
	a.m.scrubErrorsFixed.Reset()
	a.m.sectorsRepaired.Reset()
	a.m.readLatency.Reset()
	a.m.writeLatency.Reset()
	a.m.degradedReadLatency.Reset()
	a.m.rebuildLatency.Reset()
	a.m.scrubLatency.Reset()
	a.m.parityLatency.Reset()
	a.m.decodeXOROps.Reset()
	a.m.decodeXORBytes.Reset()
	a.m.rmwPreReadsAbsorbed.Reset()
	a.m.degradedPlanHits.Reset()
	a.m.batchedWrites.Reset()
	a.m.batchMergedWrites.Reset()
	a.m.batchFlushes.Reset()
	for _, d := range a.iodevs {
		d.Metrics().Reset()
	}
	// Cache counters reset with the other metrics; the cached CONTENTS stay
	// — they remain coherent, and the bench harness measures a warm cache.
	if a.cache != nil {
		a.cache.Metrics().Reset()
	}
	if a.aio != nil {
		a.aio.Metrics().Reset()
	}
	a.window.Reset()
	a.code.ResetXORStats()
}
