package raid

// Cross-op write batching: a bounded write-combining window in front of the
// data path. Small writes that fall inside one stripe's data region are
// parked in a per-stripe pending buffer instead of going to the devices;
// adjacent writes merge into one range, so a later flush pays one
// read-modify-write (or one reconstruct-write) for work that would have paid
// one per call. Pending writes are flushed when
//
//   - a new write overlaps a pending range of its stripe (the pending bytes
//     must land first to keep last-writer-wins ordering),
//   - the window timer expires,
//   - the batcher holds maxBytes of pending data or more than
//     maxBatchStripes distinct stripes,
//   - a read touches a stripe with pending writes (read-your-writes),
//   - a barrier runs: Flush, FailDisk, Rebuild, Scrub.
//
// The flush path reuses writeStripeRun, so journal intent/commit bracketing
// and cache write-through behave exactly as if the caller had issued the
// merged write directly. Batching is off by default; WithBatching enables
// it. A write accepted into the window is acknowledged immediately — like a
// volatile write cache, a crash before flush loses it, which is why the
// barriers (and the journal underneath the flush) exist.
//
// Lock ordering: the batcher mutex is taken only from paths that hold no
// array lock, and every opMu.Lock caller flushes (acquiring and releasing
// the batcher mutex) *before* taking opMu. So while a flush holds the
// batcher mutex and waits for opMu.RLock, no exclusive-lock waiter can be
// queued ahead of it — exclusive lockers are still parked on the batcher
// mutex — and the read lock is always grantable.

import (
	"errors"
	"sync"
	"time"

	"dcode/internal/obs"
	"dcode/internal/trace"
)

// maxBatchStripes bounds how many distinct stripes the window may hold
// pending; one more forces a full flush.
const maxBatchStripes = 64

const (
	defaultBatchWindow   = 500 * time.Microsecond
	defaultBatchMaxBytes = 1 << 20
)

// WithBatching enables the write-combining window. window is how long a
// pending write may wait for a mergeable neighbor before the background
// flush pushes it out (≤ 0 means the 500µs default); maxBytes caps the
// pending data the window may hold before flushing inline (≤ 0 means 1MiB).
func WithBatching(window time.Duration, maxBytes int) Option {
	return func(a *Array) {
		if window <= 0 {
			window = defaultBatchWindow
		}
		if maxBytes <= 0 {
			maxBytes = defaultBatchMaxBytes
		}
		a.batch = &batcher{
			window:   window,
			maxBytes: maxBytes,
			pend:     make(map[int64]*pendingStripe),
		}
	}
}

// pendRange is one merged run of pending bytes: volume offset off, length n,
// stored at buf[bo:bo+n] of its pendingStripe.
type pendRange struct {
	off int64
	bo  int
	n   int
}

// pendingStripe accumulates the parked writes of one stripe. Ranges never
// overlap (an overlapping enqueue flushes first) but may arrive in any
// order; buf grows append-only so the newest range always ends the buffer,
// which is what makes adjacency merging a constant-time check.
type pendingStripe struct {
	si     int64
	buf    []byte
	ranges []pendRange
}

func (ps *pendingStripe) overlaps(off int64, n int) bool {
	for _, r := range ps.ranges {
		if off < r.off+int64(r.n) && r.off < off+int64(n) {
			return true
		}
	}
	return false
}

// batcher is the window state. mu guards everything below it and is held
// across flush I/O, so flushes of one batcher are serialized and a pending
// stripe can never be written back twice concurrently.
type batcher struct {
	window   time.Duration
	maxBytes int

	mu       sync.Mutex
	pend     map[int64]*pendingStripe
	order    []int64 // flush in arrival order
	bytes    int
	timer    *time.Timer
	timerSet bool
	err      error // sticky background-flush error; surfaced by the next write or Flush
	free     []*pendingStripe
}

func (b *batcher) getPending(si int64) *pendingStripe {
	if n := len(b.free); n > 0 {
		ps := b.free[n-1]
		b.free = b.free[:n-1]
		ps.si = si
		ps.buf = ps.buf[:0]
		ps.ranges = ps.ranges[:0]
		return ps
	}
	return &pendingStripe{si: si}
}

// takeErr consumes the sticky error. Callers hold b.mu.
func (b *batcher) takeErr() error {
	err := b.err
	b.err = nil
	return err
}

// stripeDataBytes is the size of one stripe's data region — the unit the
// batcher partitions the volume by.
func (a *Array) stripeDataBytes() int64 {
	return int64(a.code.DataElems()) * int64(a.elemSize)
}

// writeAtBatched is WriteAt's front end when batching is on. Writes confined
// to one stripe's data region park in the window; anything else flushes what
// it overlaps and takes the regular path.
func (a *Array) writeAtBatched(p []byte, off int64, parent trace.Link) (int, error) {
	if off < 0 || off+int64(len(p)) > a.Size() {
		return 0, outOfRangeErr(a, off, len(p))
	}
	sdb := a.stripeDataBytes()
	si := off / sdb
	if off+int64(len(p)) > (si+1)*sdb || int64(len(p)) >= sdb {
		// Spans stripes or covers a full stripe: nothing to gain from the
		// window. Push out any pending overlap so ordering holds, then write
		// through.
		last := si
		if len(p) > 0 {
			last = (off + int64(len(p)) - 1) / sdb
		}
		if err := a.flushStripes(si, last); err != nil {
			return 0, err
		}
		return a.writeAtDirect(p, off, parent)
	}
	return a.enqueueWrite(p, off, si, parent)
}

// enqueueWrite parks one stripe-local write in the window, merging it with
// an adjacent pending range when possible, and triggers an inline flush when
// the window is full. The write is acknowledged (counted and traced like any
// WriteAt) as soon as it is parked.
func (a *Array) enqueueWrite(p []byte, off int64, si int64, parent trace.Link) (int, error) {
	b := a.batch
	tc := a.tr.Begin(trace.OpWrite, -1, si, parent)
	start := time.Now()
	b.mu.Lock()
	if err := b.takeErr(); err != nil {
		b.mu.Unlock()
		a.tr.End(tc, 0, true)
		return 0, err
	}
	ps := b.pend[si]
	if ps != nil && ps.overlaps(off, len(p)) {
		if err := a.flushPendingLocked(si); err != nil {
			b.mu.Unlock()
			a.tr.End(tc, 0, true)
			return 0, err
		}
		ps = nil
	}
	if len(p) > 0 {
		if ps == nil {
			ps = b.getPending(si)
			b.pend[si] = ps
			b.order = append(b.order, si)
		}
		bo := len(ps.buf)
		ps.buf = append(ps.buf, p...)
		if k := len(ps.ranges); k > 0 && ps.ranges[k-1].off+int64(ps.ranges[k-1].n) == off {
			// The previous range ends exactly where this write begins, and
			// its bytes end the buffer: extend it into one contiguous run.
			ps.ranges[k-1].n += len(p)
			a.m.batchMergedWrites.Inc()
		} else {
			ps.ranges = append(ps.ranges, pendRange{off: off, bo: bo, n: len(p)})
		}
		b.bytes += len(p)
	}
	a.m.writes.Inc()
	a.m.batchedWrites.Inc()
	var err error
	if b.bytes >= b.maxBytes || len(b.pend) > maxBatchStripes {
		err = a.flushAllLocked()
	} else if len(b.pend) > 0 && !b.timerSet {
		b.timerSet = true
		if b.timer == nil {
			b.timer = time.AfterFunc(b.window, a.backgroundFlush)
		} else {
			b.timer.Reset(b.window)
		}
	}
	b.mu.Unlock()
	a.m.writeLatency.Observe(time.Since(start))
	a.tr.End(tc, int64(len(p)), err != nil)
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// backgroundFlush is the window timer's callback. Its error has no caller to
// return to, so it parks as the sticky error the next write or Flush
// surfaces.
func (a *Array) backgroundFlush() {
	b := a.batch
	b.mu.Lock()
	b.timerSet = false
	//lint:ignore lockcheck the flush path takes opMu.RLock under the batcher mutex, but every opMu.Lock caller flushes (acquiring and releasing the batcher mutex) before locking, so no exclusive waiter can be queued while the batcher mutex is held and the read lock is always grantable — see the lock-ordering note at the top of this file
	if err := a.flushAllLocked(); err != nil && b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

// flushAllLocked writes back every pending stripe in arrival order. It keeps
// going after an error — later stripes are independent and their data must
// not be stranded — and returns the first error. Callers hold b.mu.
func (a *Array) flushAllLocked() error {
	b := a.batch
	var first error
	for _, si := range b.order {
		if _, ok := b.pend[si]; !ok {
			continue
		}
		if err := a.flushPendingLocked(si); err != nil && first == nil {
			first = err
		}
	}
	b.order = b.order[:0]
	if b.timerSet {
		b.timer.Stop()
		b.timerSet = false
	}
	return first
}

// flushPendingLocked writes back one stripe's pending ranges as a single
// stripe run — one journal intent/commit, one pass through the write
// planner. Callers hold b.mu.
func (a *Array) flushPendingLocked(si int64) error {
	b := a.batch
	ps := b.pend[si]
	if ps == nil {
		return nil
	}
	delete(b.pend, si)
	b.bytes -= len(ps.buf)
	a.m.batchFlushes.Inc()
	a.ev.Record(obs.EvBatchFlush, -1, si, 0, int64(len(ps.buf)))

	a.opMu.RLock()
	defer a.opMu.RUnlock()
	ob := a.getOpBuf()
	defer a.putOpBuf(ob)
	ranges := ob.ranges[:0]
	var err error
	for _, pr := range ps.ranges {
		mark := len(ranges)
		if ranges, err = a.splitBytes(pr.off, pr.n, ranges); err != nil {
			ob.ranges = ranges
			return err // unreachable: the range was validated at enqueue
		}
		// splitBytes numbers buffer offsets from zero per call; rebase them
		// onto the range's position in the pending buffer.
		for i := mark; i < len(ranges); i++ {
			ranges[i].bufOff += pr.bo
		}
	}
	ob.ranges = ranges
	err = a.writeStripeRun(stripeRun{si: si, lo: 0, hi: len(ranges)}, ranges, ps.buf, trace.Link{})
	b.free = append(b.free, ps)
	return err
}

// flushStripes pushes out pending stripes intersecting [lo, hi]. ReadAt uses
// it for read-your-writes; the stripe-spanning write path uses it for
// ordering. No-op without batching.
func (a *Array) flushStripes(lo, hi int64) error {
	b := a.batch
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	for si := lo; si <= hi; si++ {
		if _, ok := b.pend[si]; !ok {
			continue
		}
		//lint:ignore lockcheck safe for the same reason as backgroundFlush: opMu.Lock callers drain the batcher mutex first, so the read lock acquired under it cannot deadlock
		if err := a.flushPendingLocked(si); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush writes back every write still parked in the batching window and
// returns the first error, including any sticky error from a background
// flush. Without batching there is nothing to flush and Flush returns nil.
// FailDisk, Rebuild and Scrub all flush before they take the array, so
// maintenance always observes the volume the writers produced.
func (a *Array) Flush() error {
	b := a.batch
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	serr := b.takeErr()
	//lint:ignore lockcheck safe for the same reason as backgroundFlush: opMu.Lock callers drain the batcher mutex first, so the read lock acquired under it cannot deadlock
	ferr := a.flushAllLocked()
	switch {
	case serr == nil:
		return ferr
	case ferr == nil:
		return serr
	}
	return errors.Join(serr, ferr)
}
