package raid

// This file wires the structured tracing subsystem (internal/trace) and the
// windowed per-disk load tracker (obs.LoadWindow) into the array:
//
//   - WithTracer attaches a trace.Tracer; every logical operation opens a
//     span, per-stripe work and coalesced device I/O open child spans (the
//     stripe-task span rides in the pooled opScratch so the device layer
//     can parent to it without threading a context through every call).
//     Without the option the array uses trace.Nop, whose Begin is a single
//     atomic load — the steady-state data path stays allocation-free.
//   - The load window is always on: every device operation is recorded into
//     a rolling per-disk read/write tally via the blockdev.Instrumented op
//     hook, so Snapshot carries the paper's LF metric computed live over the
//     recent window, plus hot-disk detection. WithLoadWindow tunes the
//     window geometry and hot threshold.

import (
	"time"

	"dcode/internal/erasure"
	"dcode/internal/obs"
	"dcode/internal/trace"
)

// WithTracer attaches tr to the array. The tracer is shared state: callers
// enable/disable it, set the slow-op threshold, and drain spans through it.
// A nil tr keeps the default (permanently disabled) tracer.
func WithTracer(tr *trace.Tracer) Option {
	return func(a *Array) {
		if tr != nil {
			a.tr = tr
		}
	}
}

// Tracer returns the array's tracer (trace.Nop when none was attached).
func (a *Array) Tracer() *trace.Tracer { return a.tr }

// WithLoadWindow configures the live load tracker: slots time slices of
// slotDur each (non-positive values keep the 60×1s default), and hotFactor
// as the hot-disk threshold (multiple of the per-disk mean; ≤ 1 disables
// detection, 0 keeps the default).
func WithLoadWindow(slots int, slotDur time.Duration, hotFactor float64) Option {
	return func(a *Array) {
		a.windowSlots = slots
		a.windowSlotDur = slotDur
		a.windowHotFactor = hotFactor
	}
}

// LoadWindow returns the array's live per-disk load tracker.
func (a *Array) LoadWindow() *obs.LoadWindow { return a.window }

// initObservability finishes the observability wiring once options have run:
// the default tracer, the load window, and the per-device hooks feeding it.
func (a *Array) initObservability() {
	if a.tr == nil {
		a.tr = trace.Nop
	}
	a.window = obs.NewLoadWindow(a.code.Cols(), a.windowSlots, a.windowSlotDur)
	if a.windowHotFactor != 0 {
		a.window.SetHotFactor(a.windowHotFactor)
	}
	for i := range a.iodevs {
		col := i
		a.iodevs[i].SetOpHook(func(write bool, ops, _ int64) {
			a.window.Record(col, write, ops)
		})
	}
}

// TraceSnapshot is the tracer's contribution to Snapshot: the ring counters
// plus the retained slow-op captures (raidctl top's slow-op log).
type TraceSnapshot struct {
	trace.Stats
	SlowSpans []trace.Span `json:"slow_spans,omitempty"`
}

// writeElemTraced is writeElem wrapped in a device-write span; the RMW
// commit path uses it for its element-grained parity patches, which don't
// go through the coalesced run writers.
func (a *Array) writeElemTraced(si int64, co erasure.Coord, src []byte, parent trace.Link) error {
	tc := a.tr.Begin(trace.OpDevWrite, int32(co.Col), si, parent)
	err := a.writeElemL(si, co, src, tc.Link())
	a.tr.End(tc, int64(len(src)), err != nil)
	return err
}
