package raid

import (
	"bytes"
	"sync"
	"testing"

	"dcode/internal/blockdev"
	"dcode/internal/codes"
)

// vecRecorder wraps a device and records the exact iovec slices of every
// vectored call, so tests can pin that the array passed views of the
// caller's buffer — not staged copies — down to the device layer.
type vecRecorder struct {
	blockdev.Device
	mu     sync.Mutex
	reads  [][]byte
	writes [][]byte
}

func (v *vecRecorder) ReadVecAt(bufs [][]byte, off int64) (int, error) {
	v.mu.Lock()
	v.reads = append(v.reads, bufs...)
	v.mu.Unlock()
	return v.Device.ReadVecAt(bufs, off)
}

func (v *vecRecorder) WriteVecAt(bufs [][]byte, off int64) (int, error) {
	v.mu.Lock()
	v.writes = append(v.writes, bufs...)
	v.mu.Unlock()
	return v.Device.WriteVecAt(bufs, off)
}

func newRecordedArray(t *testing.T, stripes int64, opts ...Option) (*Array, []*vecRecorder) {
	t.Helper()
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, code.Cols())
	recs := make([]*vecRecorder, code.Cols())
	devSize := stripes * int64(code.Rows()) * elemSize
	for i := range devs {
		recs[i] = &vecRecorder{Device: blockdev.NewMem(devSize)}
		devs[i] = recs[i]
	}
	a, err := New(code, devs, elemSize, stripes, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a, recs
}

// aliasSet maps the address of every element-aligned chunk of p to its
// offset, for deciding whether a device-visible buffer is a view of p.
func aliasSet(p []byte) map[*byte]int {
	m := make(map[*byte]int)
	for i := 0; i+elemSize <= len(p); i += elemSize {
		m[&p[i]] = i
	}
	return m
}

// TestDirectReadZeroCopy pins the tentpole claim for reads: an aligned
// full-stripe read on a healthy array hands the device views of the caller's
// buffer — every iovec the devices saw is element-sized and aliases p, so
// not one byte was staged through stripe memory.
func TestDirectReadZeroCopy(t *testing.T) {
	a, recs := newRecordedArray(t, 4, WithConcurrency(1))
	stripeBytes := a.code.DataElems() * elemSize
	want := pattern(2*stripeBytes, 3)
	if _, err := a.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		r.reads = nil
	}

	p := make([]byte, len(want))
	if _, err := a.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, want) {
		t.Fatal("direct read returned wrong data")
	}
	chunks := aliasSet(p)
	seen := 0
	for col, r := range recs {
		for _, buf := range r.reads {
			if len(buf) != elemSize {
				t.Fatalf("col %d saw a %d-byte iovec, want element-sized %d", col, len(buf), elemSize)
			}
			if _, ok := chunks[&buf[0]]; !ok {
				t.Fatalf("col %d read into a staging buffer, not the caller's", col)
			}
			seen++
		}
	}
	if wantBufs := 2 * a.code.DataElems(); seen != wantBufs {
		t.Fatalf("devices saw %d read iovecs, want %d (every data element, once)", seen, wantBufs)
	}
}

// TestDirectWriteZeroCopy pins the tentpole claim for writes: an aligned
// full-stripe write gathers the data elements straight from the caller's
// buffer. Parity iovecs come from stripe memory (they have to — they are
// computed), so exactly DataElems of each stripe's iovecs alias p.
func TestDirectWriteZeroCopy(t *testing.T) {
	a, recs := newRecordedArray(t, 4, WithConcurrency(1))
	stripeBytes := a.code.DataElems() * elemSize
	p := pattern(stripeBytes, 9)
	if _, err := a.WriteAt(p, 0); err != nil {
		t.Fatal(err)
	}
	chunks := aliasSet(p)
	aliased, total := 0, 0
	for col, r := range recs {
		for _, buf := range r.writes {
			if len(buf) != elemSize {
				t.Fatalf("col %d saw a %d-byte write iovec, want %d", col, len(buf), elemSize)
			}
			if _, ok := chunks[&buf[0]]; ok {
				aliased++
			}
			total++
		}
	}
	if aliased != a.code.DataElems() {
		t.Fatalf("%d write iovecs alias the caller's buffer, want %d (every data element)",
			aliased, a.code.DataElems())
	}
	if wantTotal := a.code.Rows() * a.code.Cols(); total != wantTotal {
		t.Fatalf("devices saw %d write iovecs, want %d (every cell of the stripe)", total, wantTotal)
	}
	got := make([]byte, len(p))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("zero-copy write round trip corrupted data")
	}
}

// TestDirectReadFallsBackOnError pins the safety valve: a device error on
// the vectored fast path hands the stripe to the general path, which marks
// the disk and reconstructs — the caller still gets correct data.
func TestDirectReadFallsBackOnError(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 4)
	stripeBytes := a.code.DataElems() * elemSize
	want := pattern(stripeBytes, 7)
	if _, err := a.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	// Fail a device out from under the array (no FailDisk) so the fast
	// path's eligibility check passes and the error surfaces mid-read.
	mems[1].Fail()
	got := make([]byte, len(want))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fallback read after mid-path device failure returned wrong data")
	}
	if !a.isFailed(1) {
		t.Fatal("general-path fallback did not mark the failed disk")
	}
}

// TestDirectWriteFallsBackOnError exercises writeVecColumn's element-at-a-
// time retry: the failing column is marked, the others commit, and a
// degraded read reconstructs the stripe the write produced.
func TestDirectWriteFallsBackOnError(t *testing.T) {
	a, mems := newArray(t, "dcode", 5, 4)
	stripeBytes := a.code.DataElems() * elemSize
	mems[2].Fail()
	want := pattern(stripeBytes, 11)
	if _, err := a.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	if !a.isFailed(2) {
		t.Fatal("write retry did not mark the failed disk")
	}
	got := make([]byte, len(want))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded read after mid-write failure returned wrong data")
	}
}
