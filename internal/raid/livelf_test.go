package raid

import (
	"math"
	"testing"

	"dcode/internal/codes"
	"dcode/internal/ioload"
	"dcode/internal/workload"
)

// TestLiveLFMatchesSimulator is the acceptance check for the windowed load
// tracker: replaying one workload trace against a real array must produce a
// live load-balance factor within 5% of internal/ioload's analytic count for
// the same trace.
//
// The trace is shaped so the two accountings are element-for-element
// identical: write lengths are clamped to one element, which forces the
// array onto the read-modify-write path (2 accesses on the data disk plus 2
// per touched parity disk — exactly the simulator's Eq. 8 bookkeeping), and
// the element cache stays off so every logical access reaches a device.
func TestLiveLFMatchesSimulator(t *testing.T) {
	const (
		stripes = 4
		opCount = 250
	)
	for _, tc := range []struct {
		id string
		p  int
	}{
		{"dcode", 7},
		{"rdp", 7},
		{"xcode", 7},
	} {
		t.Run(tc.id, func(t *testing.T) {
			code := codes.MustNew(tc.id, tc.p)
			total := stripes * code.DataElems()
			ops, err := workload.Generate(workload.Config{
				Ops:       opCount,
				MaxLen:    8,
				MaxTimes:  3,
				DataElems: total,
				Seed:      7,
			}, workload.ReadIntensive)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ops {
				if ops[i].Kind == workload.Write {
					ops[i].L = 1 // single-element RMW matches the simulator exactly
				}
				if ops[i].S+ops[i].L > total { // Generate lets L spill past the end
					ops[i].L = total - ops[i].S
				}
			}

			sim := ioload.Simulate(code, ops)
			simLF := sim.LF()
			if math.IsInf(simLF, 0) {
				t.Fatalf("simulated workload idles a disk entirely (LF=+Inf); reshape the trace")
			}

			a, _ := newArrayConc(t, tc.id, tc.p, stripes, WithConcurrency(1))
			buf := make([]byte, 8*elemSize)
			for _, op := range ops {
				off := int64(op.S) * elemSize
				n := op.L * elemSize
				for r := 0; r < op.T; r++ {
					if op.Kind == workload.Read {
						_, err = a.ReadAt(buf[:n], off)
					} else {
						_, err = a.WriteAt(pattern(n, byte(op.S)), off)
					}
					if err != nil {
						t.Fatalf("%v S=%d L=%d: %v", op.Kind, op.S, op.L, err)
					}
				}
			}

			live := a.LoadWindow().Snapshot()
			liveLF := live.Load.LF
			t.Logf("%s: live LF=%.4f simulated LF=%.4f (live per-disk %v, sim per-disk %v)",
				tc.id, liveLF, simLF, live.Load.PerDisk, sim.PerDisk)
			if liveLF <= 0 || math.IsInf(liveLF, 0) || math.IsNaN(liveLF) {
				t.Fatalf("degenerate live LF %v", liveLF)
			}
			if rel := math.Abs(liveLF-simLF) / simLF; rel > 0.05 {
				t.Errorf("live LF %.4f vs simulated %.4f: %.1f%% apart, want ≤5%%",
					liveLF, simLF, 100*rel)
			}
			// The cumulative per-disk tallies should agree exactly, not just
			// within tolerance — nothing ages out of a 60s window mid-test.
			for d, want := range sim.PerDisk {
				if got := live.Load.PerDisk[d]; got != want {
					t.Errorf("disk %d: live ops %d, simulated %d", d, got, want)
				}
			}
		})
	}
}
