//go:build race

package raid

const raceEnabled = true
