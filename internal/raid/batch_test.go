package raid

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dcode/internal/blockdev"
	"dcode/internal/codes"
)

// batchOp is one step of a coherence workload.
type batchOp struct {
	write bool
	fail  int // FailDisk(fail) when >= 0, before the op
	off   int64
	n     int
	seed  byte
}

// runBatchWorkload applies ops to the array, mirroring every write into
// model, and checks read-your-writes on the way: reads must observe every
// acknowledged write, batched or not.
func runBatchWorkload(t *testing.T, a *Array, ops []batchOp, model []byte) {
	t.Helper()
	for i, op := range ops {
		if op.fail >= 0 {
			if err := a.FailDisk(op.fail); err != nil {
				t.Fatalf("op %d: FailDisk(%d): %v", i, op.fail, err)
			}
			continue
		}
		if op.write {
			p := pattern(op.n, op.seed)
			if _, err := a.WriteAt(p, op.off); err != nil {
				t.Fatalf("op %d: WriteAt(%d, %d): %v", i, op.n, op.off, err)
			}
			copy(model[op.off:], p)
		} else {
			got := make([]byte, op.n)
			if _, err := a.ReadAt(got, op.off); err != nil {
				t.Fatalf("op %d: ReadAt(%d, %d): %v", i, op.n, op.off, err)
			}
			if !bytes.Equal(got, model[op.off:int(op.off)+op.n]) {
				t.Fatalf("op %d: read [%d,%d) does not observe acknowledged writes", i, op.off, int(op.off)+op.n)
			}
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("final Flush: %v", err)
	}
	got := make([]byte, len(model))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatalf("final ReadAt: %v", err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("volume diverged from the write history")
	}
}

// TestBatchingCoherence pins the tentpole property of the write-combining
// window: for any workload, an array with batching on ends up bit-identical
// to one with batching off — and to a plain byte-slice model of the write
// history — including reads issued mid-window and a disk failed mid-batch.
func TestBatchingCoherence(t *testing.T) {
	const stripes = 8
	profiles := []struct {
		name   string
		window time.Duration
		gen    func(rng *rand.Rand, size int64, sdb int64) []batchOp
	}{
		{
			// Sequential small writes: the adjacency-merge path. A huge
			// window and byte budget mean only barriers and reads flush, so
			// merging is deterministic.
			name:   "sequential",
			window: time.Hour,
			gen: func(rng *rand.Rand, size, sdb int64) []batchOp {
				var ops []batchOp
				off := int64(0)
				for off < size {
					n := 16 + rng.Intn(96)
					if off+int64(n) > size {
						n = int(size - off)
					}
					ops = append(ops, batchOp{write: true, fail: -1, off: off, n: n, seed: byte(rng.Intn(256))})
					off += int64(n)
					if rng.Intn(8) == 0 {
						ro := rng.Int63n(size - 64)
						ops = append(ops, batchOp{fail: -1, off: ro, n: 64})
					}
				}
				return ops
			},
		},
		{
			// Random writes with overlaps: the overlap-flush path, plus the
			// background timer (tight window) racing the foreground.
			name:   "random-overlap",
			window: 200 * time.Microsecond,
			gen: func(rng *rand.Rand, size, sdb int64) []batchOp {
				var ops []batchOp
				for i := 0; i < 300; i++ {
					n := 1 + rng.Intn(int(sdb))
					off := rng.Int63n(size - int64(n))
					ops = append(ops, batchOp{write: true, fail: -1, off: off, n: n, seed: byte(i)})
					if rng.Intn(6) == 0 {
						rn := 1 + rng.Intn(256)
						ro := rng.Int63n(size - int64(rn))
						ops = append(ops, batchOp{fail: -1, off: ro, n: rn})
					}
				}
				return ops
			},
		},
		{
			// A disk fails mid-batch: FailDisk is a barrier, so every write
			// acknowledged before it must survive the failure, and writes
			// after it batch against a degraded array.
			name:   "mid-batch-faildisk",
			window: time.Hour,
			gen: func(rng *rand.Rand, size, sdb int64) []batchOp {
				var ops []batchOp
				for i := 0; i < 60; i++ {
					n := 8 + rng.Intn(int(sdb)/2)
					off := rng.Int63n(size - int64(n))
					ops = append(ops, batchOp{write: true, fail: -1, off: off, n: n, seed: byte(i * 7)})
				}
				ops = append(ops, batchOp{fail: 2})
				for i := 0; i < 60; i++ {
					n := 8 + rng.Intn(int(sdb)/2)
					off := rng.Int63n(size - int64(n))
					ops = append(ops, batchOp{write: true, fail: -1, off: off, n: n, seed: byte(i*11 + 3)})
				}
				return ops
			},
		},
	}
	for _, prof := range profiles {
		t.Run(prof.name, func(t *testing.T) {
			for _, conc := range []int{1, 4} {
				t.Run(fmt.Sprintf("conc=%d", conc), func(t *testing.T) {
					rng := rand.New(rand.NewSource(42))
					ab, _ := newArrayConc(t, "dcode", 5, stripes,
						WithConcurrency(conc), WithBatching(prof.window, 1<<20))
					au, _ := newArrayConc(t, "dcode", 5, stripes, WithConcurrency(conc))
					size := ab.Size()
					sdb := ab.stripeDataBytes()
					ops := prof.gen(rng, size, sdb)
					modelB := make([]byte, size)
					modelU := make([]byte, size)
					runBatchWorkload(t, ab, ops, modelB)
					runBatchWorkload(t, au, ops, modelU)
					if !bytes.Equal(modelB, modelU) {
						t.Fatal("workload mirror mismatch (test bug)")
					}
					gb := make([]byte, size)
					gu := make([]byte, size)
					if _, err := ab.ReadAt(gb, 0); err != nil {
						t.Fatal(err)
					}
					if _, err := au.ReadAt(gu, 0); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gb, gu) {
						t.Fatal("batching-on volume differs from batching-off")
					}
				})
			}
		})
	}
}

// TestBatchingMergesAndCounters pins that sequential small writes actually
// merge (the point of the window) and that the batch counters land in the
// snapshot.
func TestBatchingMergesAndCounters(t *testing.T) {
	a, _ := newArrayConc(t, "dcode", 5, 4, WithConcurrency(1), WithBatching(time.Hour, 1<<20))
	const chunk = 32
	sdb := int(a.stripeDataBytes())
	for off := 0; off < sdb; off += chunk {
		if _, err := a.WriteAt(pattern(chunk, byte(off)), int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	wantWrites := int64(sdb / chunk)
	if s.Counters.BatchedWrites != wantWrites {
		t.Fatalf("BatchedWrites = %d, want %d", s.Counters.BatchedWrites, wantWrites)
	}
	if s.Counters.BatchMergedWrites != wantWrites-1 {
		t.Fatalf("BatchMergedWrites = %d, want %d (every write after the first extends the run)",
			s.Counters.BatchMergedWrites, wantWrites-1)
	}
	if s.Counters.BatchFlushes != 1 {
		t.Fatalf("BatchFlushes = %d, want 1 (the whole stripe flushed as one run)", s.Counters.BatchFlushes)
	}
	if s.Counters.Writes != wantWrites {
		t.Fatalf("logical Writes = %d, want %d (counted at enqueue)", s.Counters.Writes, wantWrites)
	}
	// The merged run covered the full stripe, so the flush was one
	// reconstruct-write, not sdb/chunk RMWs.
	if s.Counters.FullStripeWrites != 1 || s.Counters.RMWWrites != 0 {
		t.Fatalf("flush did %d full-stripe / %d RMW writes, want 1 / 0",
			s.Counters.FullStripeWrites, s.Counters.RMWWrites)
	}
}

// TestBatchingFlushErrorSurfaces pins that a flush hitting a dead array
// reports the failure to the caller instead of dropping acknowledged writes
// silently.
func TestBatchingFlushErrorSurfaces(t *testing.T) {
	a, mems := newArrayConc(t, "dcode", 5, 4, WithConcurrency(1), WithBatching(time.Hour, 1<<20))
	if _, err := a.WriteAt(pattern(64, 1), 0); err != nil {
		t.Fatal(err)
	}
	for _, m := range mems[:3] {
		m.Fail()
	}
	if err := a.Flush(); err == nil {
		t.Fatal("Flush with three dead disks reported success")
	}
}

// TestBatchingJournalBracketing pins that flushed batches keep the journal's
// intent/commit discipline: after a clean Flush the journal replays nothing.
func TestBatchingJournalBracketing(t *testing.T) {
	code := codes.MustNew("dcode", 5)
	devs := make([]blockdev.Device, code.Cols())
	devSize := int64(4) * int64(code.Rows()) * elemSize
	for i := range devs {
		devs[i] = blockdev.NewMem(devSize)
	}
	jdev := blockdev.NewMem(1 << 16)
	a, err := NewJournaled(code, devs, elemSize, 4, jdev, WithBatching(time.Hour, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(300, 5)
	for off := 0; off < len(want); off += 50 {
		end := min(off+50, len(want))
		if _, err := a.WriteAt(want[off:end], int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	// Remount over the same devices: replay must find every intent paired
	// and the data intact.
	b, err := NewJournaled(code, devs, elemSize, 4, jdev)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if _, err := b.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("journaled batched writes did not survive a remount")
	}
}
