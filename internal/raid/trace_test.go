package raid

import (
	"testing"
	"time"

	"dcode/internal/trace"
)

// collectByOp indexes drained spans by kind.
func collectByOp(spans []trace.Span) map[trace.Op][]trace.Span {
	m := make(map[trace.Op][]trace.Span)
	for _, sp := range spans {
		m[sp.Op] = append(m[sp.Op], sp)
	}
	return m
}

// TestTraceSpanHierarchy drives every operation kind and checks the span tree:
// each op-level span is a root, stripe spans parent to op spans, and device
// spans parent to stripe-level spans (or to the RMW commit's stripe span).
func TestTraceSpanHierarchy(t *testing.T) {
	tr := trace.New(1<<16, 64) // big enough to retain everything
	tr.SetSlowThreshold(time.Nanosecond)
	a, _ := newArrayConc(t, "dcode", 5, 4, WithTracer(tr), WithConcurrency(1))
	tr.Enable()

	data := pattern(int(a.Size()), 3)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, a.Size())
	if _, err := a.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// One-element RMW write to exercise the element-grained commit spans.
	if _, err := a.WriteAt(data[:elemSize], 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadAt(buf, 0); err != nil { // degraded read
		t.Fatal(err)
	}
	if err := a.Rebuild(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Scrub(); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	if st := tr.Stats(); st.Dropped != 0 {
		t.Fatalf("ring dropped %d spans; grow the test ring", st.Dropped)
	}
	byID := make(map[uint64]trace.Span, len(spans))
	for _, sp := range spans {
		if sp.ID == 0 {
			t.Fatal("span with zero ID")
		}
		byID[sp.ID] = sp
	}
	ops := collectByOp(spans)

	for _, want := range []trace.Op{
		trace.OpRead, trace.OpWrite, trace.OpRebuild, trace.OpScrub,
		trace.OpReadStripe, trace.OpWriteStripe, trace.OpDegradedRead,
		trace.OpRebuildStripe, trace.OpScrubStripe,
		trace.OpDevRead, trace.OpDevWrite,
	} {
		if len(ops[want]) == 0 {
			t.Errorf("no %s spans recorded", want)
		}
	}

	// Root spans have no parent; everything else parents to a retained span.
	roots := map[trace.Op]bool{
		trace.OpRead: true, trace.OpWrite: true, trace.OpRebuild: true, trace.OpScrub: true,
	}
	parentOf := map[trace.Op][]trace.Op{
		trace.OpReadStripe:    {trace.OpRead},
		trace.OpWriteStripe:   {trace.OpWrite},
		trace.OpDegradedRead:  {trace.OpReadStripe},
		trace.OpRebuildStripe: {trace.OpRebuild},
		trace.OpScrubStripe:   {trace.OpScrub},
		trace.OpDevRead: {trace.OpReadStripe, trace.OpWriteStripe, trace.OpRebuildStripe,
			trace.OpScrubStripe, trace.OpDegradedRead},
		trace.OpDevWrite: {trace.OpWriteStripe, trace.OpRebuildStripe, trace.OpScrubStripe},
	}
	for _, sp := range spans {
		if roots[sp.Op] {
			if sp.Parent != 0 {
				t.Errorf("%s span %d has parent %d, want root", sp.Op, sp.ID, sp.Parent)
			}
			continue
		}
		p, found := byID[sp.Parent]
		if !found {
			t.Errorf("%s span %d: parent %d not retained", sp.Op, sp.ID, sp.Parent)
			continue
		}
		ok := false
		for _, want := range parentOf[sp.Op] {
			if p.Op == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s span parented to %s, want one of %v", sp.Op, p.Op, parentOf[sp.Op])
		}
	}

	// Stripe-level spans carry a stripe index; device spans carry a disk.
	for _, sp := range ops[trace.OpReadStripe] {
		if sp.Stripe < 0 {
			t.Errorf("read_stripe span without stripe index: %+v", sp)
		}
	}
	for _, sp := range ops[trace.OpDevRead] {
		if sp.Disk < 0 {
			t.Errorf("dev_read span without disk: %+v", sp)
		}
	}
	if len(tr.SlowSpans()) == 0 {
		t.Error("1ns slow threshold captured nothing")
	}
}

// TestSnapshotCarriesObservability: the window rides every snapshot, the
// trace section only when a real tracer is attached.
func TestSnapshotCarriesObservability(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 2)
	data := pattern(int(a.Size()), 9)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	if s.Window == nil {
		t.Fatal("snapshot without window section")
	}
	if s.Window.Load.Total == 0 {
		t.Error("window recorded no load for a full-volume write")
	}
	if s.Trace != nil {
		t.Error("snapshot carries a trace section without a tracer attached")
	}
	if got, want := s.Window.Load.Total, s.Load.Total; got != want {
		t.Errorf("window load total %d != cumulative load total %d (nothing aged out here)", got, want)
	}

	tr := trace.New(64, 8)
	at, _ := newArrayConc(t, "dcode", 5, 2, WithTracer(tr))
	tr.Enable()
	if _, err := at.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	st := at.Snapshot()
	if st.Trace == nil || st.Trace.Recorded == 0 {
		t.Fatalf("traced snapshot missing trace section: %+v", st.Trace)
	}
}

// TestWithLoadWindowOption checks the tuning knobs reach the window.
func TestWithLoadWindowOption(t *testing.T) {
	a, _ := newArrayConc(t, "dcode", 5, 2, WithLoadWindow(4, 50*time.Millisecond, 3))
	data := pattern(int(a.Size()), 1)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	s := a.LoadWindow().Snapshot()
	if s.SlotNanos != int64(50*time.Millisecond) {
		t.Errorf("slot duration %d", s.SlotNanos)
	}
	if s.HotFactor != 3 {
		t.Errorf("hot factor %v, want 3", s.HotFactor)
	}
	if s.Load.Total == 0 {
		t.Error("tuned window recorded nothing")
	}
}

// TestResetMetricsClearsWindow: ResetMetrics must clear the rolling window
// along with the other tallies (the bench harness resets after pre-fill).
func TestResetMetricsClearsWindow(t *testing.T) {
	a, _ := newArray(t, "dcode", 5, 2)
	data := pattern(int(a.Size()), 4)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	a.ResetMetrics()
	if s := a.LoadWindow().Snapshot(); s.Load.Total != 0 {
		t.Errorf("window total %d after ResetMetrics, want 0", s.Load.Total)
	}
}

// TestSteadyStateAllocsWithDisabledTracer mirrors TestSteadyStateAllocs with
// a real (but disabled) tracer attached: the disabled instrumentation points
// must not push the pooled data path off its 0 allocs/op steady state.
func TestSteadyStateAllocsWithDisabledTracer(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless under -race")
	}
	tr := trace.New(trace.DefaultCapacity, trace.DefaultSlowCapacity)
	a, _ := newArrayConc(t, "dcode", 7, 4, WithConcurrency(1), WithTracer(tr))
	data := pattern(int(a.Size()), 2)
	buf := make([]byte, a.Size())
	for i := 0; i < 3; i++ {
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := a.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := a.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}); avg >= 1 {
		t.Errorf("ReadAt with disabled tracer allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
	}); avg >= 1 {
		t.Errorf("WriteAt with disabled tracer allocates %.1f/op, want 0", avg)
	}
}

// BenchmarkTracingOverhead measures the data path with no tracer, a disabled
// tracer, and an enabled tracer — the disabled column is the satellite
// acceptance check (no measurable overhead when off).
func BenchmarkTracingOverhead(b *testing.B) {
	for _, mode := range []string{"none", "disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			opts := []Option{WithConcurrency(1)}
			var tr *trace.Tracer
			if mode != "none" {
				tr = trace.New(trace.DefaultCapacity, trace.DefaultSlowCapacity)
				opts = append(opts, WithTracer(tr))
			}
			a, _ := newArrayConc(b, "dcode", 7, 4, opts...)
			if mode == "enabled" {
				tr.Enable()
			}
			data := pattern(int(a.Size()), 2)
			if _, err := a.WriteAt(data, 0); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, a.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.ReadAt(buf, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(a.Size())
		})
	}
}
