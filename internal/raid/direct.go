package raid

// This file holds the zero-copy vectored fast paths of the data plane. When
// a stripe task is fully element-aligned on a healthy, cache-less array, the
// array skips the stripe arena for data bytes entirely:
//
//   - reads scatter straight from the device into the caller's buffer, one
//     ReadVecAtN per coalesced column run;
//   - full-stripe writes gather straight from the caller's buffer (parity
//     from stripe memory, computed by EncodeFrom without staging the data),
//     one WriteVecAtN per column.
//
// Both paths preserve the general path's accounting exactly: the same
// coalesced runs, the same ops-equivalent tallies (one physical call stands
// for run-length element accesses), the same OpDevRead/OpDevWrite trace
// spans, and the same XOR counts. Any device error abandons the fast path
// and lets the general path re-serve the stripe with its full read-repair
// and failure-marking semantics.

import (
	"slices"
	"time"

	"dcode/internal/erasure"
	"dcode/internal/trace"
)

// vecRun is one coalesced device run of a vectored operation: rows
// [row, row+n) of column col, served by the iovec list bufs[lo:hi].
type vecRun struct {
	col, row, n int
	lo, hi      int
}

// directRangesEligible reports whether every range covers a whole element —
// the alignment both fast paths require.
func (a *Array) directRangesEligible(ers []elemRange) bool {
	for _, er := range ers {
		if er.start != 0 || er.length != a.elemSize {
			return false
		}
	}
	return true
}

// readStripeDirect serves one stripe's element ranges by scattering device
// reads directly into the caller's buffer, bypassing stripe memory. It
// returns true only when the stripe was fully served; on any device error it
// returns false with the buffer contents unspecified, and the caller falls
// back to the general path, which re-reads everything with read-repair and
// failure marking. Eligible only on a healthy array with no cache attached
// (a cache wants elements in stripe memory to fill from) and fully aligned
// ranges.
func (a *Array) readStripeDirect(si int64, ers []elemRange, p []byte, sc *opScratch) bool {
	if a.cache != nil || a.failedCount() != 0 || !a.directRangesEligible(ers) {
		return false
	}
	// Sort a pooled copy by (col, row) — the same order coalesce uses — so
	// device-contiguous runs are adjacent. splitBytes never repeats an
	// element within one stripe run, so the sorted ranges coalesce into
	// exactly the runs the general path would issue.
	sers := append(sc.ers[:0], ers...)
	sc.ers = sers
	slices.SortFunc(sers, func(x, y elemRange) int {
		if x.coord.Col != y.coord.Col {
			return x.coord.Col - y.coord.Col
		}
		return x.coord.Row - y.coord.Row
	})
	bufs := sc.vecbufs[:0]
	vruns := sc.vruns[:0]
	for k := 0; k < len(sers); {
		j := k + 1
		for j < len(sers) && sers[j].coord.Col == sers[k].coord.Col &&
			sers[j].coord.Row == sers[j-1].coord.Row+1 {
			j++
		}
		lo := len(bufs)
		for _, er := range sers[k:j] {
			bufs = append(bufs, p[er.bufOff:er.bufOff+er.length])
		}
		vruns = append(vruns, vecRun{
			col: sers[k].coord.Col, row: sers[k].coord.Row, n: j - k,
			lo: lo, hi: len(bufs),
		})
		k = j
	}
	sc.vecbufs = bufs
	sc.vruns = vruns

	// A failed run abandons the whole stripe to the general path, so there
	// is no need to finish the remaining runs — fanOut's stop-on-error is
	// exactly right, and the serial loop mirrors it. The async engine instead
	// stages the whole stripe as one batch (it must harvest every completion
	// anyway before the buffer can be reused).
	ok := true
	if a.aio != nil {
		ok = a.readVecRunsAsync(si, vruns, sc)
	} else if a.conc <= 1 || len(vruns) <= 1 { // see readCells: avoid the escaping closure
		for _, r := range vruns {
			if a.readVecRun(si, r, sc) != nil {
				ok = false
				break
			}
		}
	} else if a.fanOut(len(vruns), func(i int) error { return a.readVecRun(si, vruns[i], sc) }) != nil {
		ok = false
	}
	clear(bufs) // drop the user-buffer references before the scratch is pooled
	return ok
}

// readVecRun issues one coalesced scatter read of the direct read path; the
// iovec list lives in sc.vecbufs at the run's [lo, hi).
func (a *Array) readVecRun(si int64, r vecRun, sc *opScratch) error {
	tc := a.tr.Begin(trace.OpDevRead, int32(r.col), si, sc.tc.Link())
	_, err := a.iodevs[r.col].ReadVecAtNLink(sc.vecbufs[r.lo:r.hi], a.deviceOffset(si, r.row), int64(r.n), tc.Link())
	a.tr.End(tc, int64(r.n*a.elemSize), err != nil)
	return err
}

// writeStripeDirect serves a fully aligned full-stripe write by gathering
// device writes directly from the caller's buffer: EncodeFrom folds parity
// from the user's data views into stripe memory, then each column commits as
// one WriteVecAtN whose iovecs mix user data (in place) with the freshly
// encoded parity cells. Returns done=false when the write is not eligible
// (partial stripe, unaligned, degraded array, or a cache wanting
// write-through); the general path then serves it. Like reconstructWrite,
// the commit is best-effort per column — a device failing mid-commit is
// marked (by the element-at-a-time retry) and skipped, and the caller learns
// the array's fate from the returned error.
func (a *Array) writeStripeDirect(si int64, ers []elemRange, p []byte, sc *opScratch) (bool, error) {
	if a.cache != nil || a.failedCount() != 0 || len(ers) != a.code.DataElems() ||
		!a.directRangesEligible(ers) {
		return false, nil
	}
	data := sc.data
	for _, er := range ers {
		data[a.code.DataIndex(er.coord.Row, er.coord.Col)] = p[er.bufOff : er.bufOff+er.length]
	}
	ps := time.Now()
	a.code.EncodeFrom(sc.s, data)
	a.m.parityLatency.Observe(time.Since(ps))
	rows := a.code.Rows()
	cols := a.code.Cols()
	bufs := sc.vecbufs[:0]
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if di := a.code.DataIndex(r, c); di >= 0 {
				bufs = append(bufs, data[di])
			} else {
				bufs = append(bufs, sc.s.Elem(r, c))
			}
		}
	}
	sc.vecbufs = bufs

	if a.aio != nil {
		a.writeVecColumnsAsync(si, sc)
	} else if a.conc <= 1 || cols <= 1 { // see readCells: avoid the escaping closure
		for c := 0; c < cols; c++ {
			a.writeVecColumn(si, c, sc)
		}
	} else {
		_ = a.fanOut(cols, func(c int) error { a.writeVecColumn(si, c, sc); return nil })
	}
	clear(bufs)
	clear(data)
	a.m.fullStripeWrites.Inc()
	if a.failedCount() > 2 {
		return true, ErrTooManyFailures
	}
	return true, nil
}

// writeVecColumn commits one column of the direct write path as a single
// gather write from sc.vecbufs, best-effort like writeRunDev: a device error
// retries element-at-a-time, which marks the disk failed and keeps whatever
// cells the device can still take.
func (a *Array) writeVecColumn(si int64, c int, sc *opScratch) {
	if a.isFailed(c) {
		return
	}
	rows := a.code.Rows()
	col := sc.vecbufs[c*rows : (c+1)*rows]
	tc := a.tr.Begin(trace.OpDevWrite, int32(c), si, sc.tc.Link())
	_, err := a.iodevs[c].WriteVecAtNLink(col, a.deviceOffset(si, 0), int64(rows), tc.Link())
	a.tr.End(tc, int64(rows*a.elemSize), err != nil)
	if err != nil {
		for r := 0; r < rows; r++ {
			_ = a.writeElemL(si, erasure.Coord{Row: r, Col: c}, col[r], tc.Link())
		}
	}
}
