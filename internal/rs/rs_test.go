package rs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func fillShards(k, m, size int, seed byte) [][]byte {
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < k {
			for j := range shards[i] {
				shards[i][j] = byte(j)*3 + byte(i)*7 + seed
			}
		}
	}
	return shards
}

func TestNewRejectsBadParameters(t *testing.T) {
	for _, km := range [][2]int{{0, 2}, {2, 0}, {-1, 2}, {255, 2}} {
		if _, err := New(km[0], km[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", km[0], km[1])
		}
	}
	if _, err := New(254, 2); err != nil {
		t.Errorf("New(254,2) rejected: %v", err)
	}
}

func TestEncodeVerify(t *testing.T) {
	e, err := NewRAID6(5)
	if err != nil {
		t.Fatal(err)
	}
	if e.DataShards() != 5 || e.ParityShards() != 2 {
		t.Fatal("geometry accessors wrong")
	}
	shards := fillShards(5, 2, 64, 1)
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	ok, err := e.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v", ok, err)
	}
	shards[0][0] ^= 1
	ok, err = e.Verify(shards)
	if err != nil || ok {
		t.Fatal("Verify missed corruption")
	}
}

func TestReconstructAllPairs(t *testing.T) {
	for _, k := range []int{3, 5, 8, 11} {
		e, err := NewRAID6(k)
		if err != nil {
			t.Fatal(err)
		}
		orig := fillShards(k, 2, 48, byte(k))
		if err := e.Encode(orig); err != nil {
			t.Fatal(err)
		}
		n := k + 2
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				shards := make([][]byte, n)
				for i := range shards {
					shards[i] = append([]byte(nil), orig[i]...)
				}
				shards[a] = nil
				shards[b] = nil // a==b: single erasure
				if err := e.Reconstruct(shards); err != nil {
					t.Fatalf("k=%d reconstruct(%d,%d): %v", k, a, b, err)
				}
				for i := range shards {
					if !bytes.Equal(shards[i], orig[i]) {
						t.Fatalf("k=%d reconstruct(%d,%d): shard %d wrong", k, a, b, i)
					}
				}
			}
		}
	}
}

func TestReconstructTooManyMissing(t *testing.T) {
	e, _ := NewRAID6(4)
	shards := fillShards(4, 2, 16, 0)
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := e.Reconstruct(shards); err == nil {
		t.Fatal("three missing shards accepted by a 2-parity code")
	}
}

func TestReconstructNoMissingIsNoop(t *testing.T) {
	e, _ := NewRAID6(3)
	shards := fillShards(3, 2, 16, 9)
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(shards))
	for i := range shards {
		want[i] = append([]byte(nil), shards[i]...)
	}
	if err := e.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatal("no-op reconstruct modified shards")
		}
	}
}

func TestShardValidation(t *testing.T) {
	e, _ := NewRAID6(3)
	if err := e.Encode(make([][]byte, 4)); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	shards := fillShards(3, 2, 16, 0)
	shards[1] = make([]byte, 15)
	if err := e.Encode(shards); err == nil {
		t.Fatal("ragged shard lengths accepted")
	}
	shards = fillShards(3, 2, 16, 0)
	shards[2] = nil
	if err := e.Encode(shards); err == nil {
		t.Fatal("nil shard accepted by Encode")
	}
	all := make([][]byte, 5)
	if err := e.Reconstruct(all); err == nil {
		t.Fatal("all-nil shard set accepted")
	}
}

func TestHigherParityCounts(t *testing.T) {
	// m=4: any 4 losses recoverable.
	e, err := New(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	orig := fillShards(6, 4, 32, 3)
	if err := e.Encode(orig); err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 10)
	for i := range shards {
		shards[i] = append([]byte(nil), orig[i]...)
	}
	for _, i := range []int{0, 3, 7, 9} {
		shards[i] = nil
	}
	if err := e.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("shard %d wrong after 4-erasure reconstruct", i)
		}
	}
}

// Property: encode → random double erasure → reconstruct round-trips.
func TestReconstructQuick(t *testing.T) {
	e, _ := NewRAID6(7)
	f := func(data [7][]byte, a, b uint8) bool {
		size := 24
		shards := make([][]byte, 9)
		for i := 0; i < 7; i++ {
			shards[i] = make([]byte, size)
			copy(shards[i], data[i])
		}
		shards[7] = make([]byte, size)
		shards[8] = make([]byte, size)
		if err := e.Encode(shards); err != nil {
			return false
		}
		orig := make([][]byte, 9)
		for i := range shards {
			orig[i] = append([]byte(nil), shards[i]...)
		}
		shards[int(a)%9] = nil
		shards[int(b)%9] = nil
		if err := e.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSystematicPrefix(t *testing.T) {
	e, _ := NewRAID6(6)
	// The top k rows of the generator must be the identity, so data shards
	// pass through unchanged (systematic code).
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if e.enc.At(r, c) != want {
				t.Fatalf("generator top block not identity at (%d,%d)", r, c)
			}
		}
	}
}
