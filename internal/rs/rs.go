// Package rs implements a systematic Reed-Solomon erasure code over GF(2^8)
// in the style of Jerasure's Vandermonde coding: k data shards plus m parity
// shards tolerate any m shard losses. With m = 2 it is the classic
// general-purpose RAID-6 (P+Q) implementation, included as the comparison
// baseline the D-Code paper's related-work section discusses (Reed-Solomon
// and Cauchy Reed-Solomon codes).
package rs

import (
	"fmt"

	"dcode/internal/gf"
)

// Encoder encodes and reconstructs shard sets for a fixed (k, m) geometry.
// It is safe for concurrent use after construction.
type Encoder struct {
	k, m int
	// enc is the (k+m)×k systematic generator matrix: top k rows identity,
	// bottom m rows the parity coefficients.
	enc *gf.Matrix
}

// New constructs an Encoder with k data shards and m parity shards.
// k+m must be at most 256 (the field size).
func New(k, m int) (*Encoder, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("rs: need k > 0 and m > 0, got k=%d m=%d", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("rs: k+m = %d exceeds field size 256", k+m)
	}
	// Standard Vandermonde-derived systematic matrix: take the (k+m)×k
	// Vandermonde matrix and right-multiply by the inverse of its top k×k
	// block so the top becomes the identity.
	v := gf.Vandermonde(k+m, k)
	top, err := v.SubMatrix(0, k, 0, k).Invert()
	if err != nil {
		return nil, fmt.Errorf("rs: building systematic matrix: %w", err)
	}
	return &Encoder{k: k, m: m, enc: v.Mul(top)}, nil
}

// NewRAID6 is the two-parity configuration matching the array codes in this
// repository.
func NewRAID6(k int) (*Encoder, error) { return New(k, 2) }

// DataShards returns k.
func (e *Encoder) DataShards() int { return e.k }

// ParityShards returns m.
func (e *Encoder) ParityShards() int { return e.m }

// checkShards validates a full shard slice: k+m shards, equal non-zero
// lengths (nil shards allowed when allowNil).
func (e *Encoder) checkShards(shards [][]byte, allowNil bool) (int, error) {
	if len(shards) != e.k+e.m {
		return 0, fmt.Errorf("rs: got %d shards, want %d", len(shards), e.k+e.m)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if !allowNil {
				return 0, fmt.Errorf("rs: shard %d is nil", i)
			}
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("rs: shard %d has length %d, want %d", i, len(s), size)
		}
	}
	if size <= 0 {
		return 0, fmt.Errorf("rs: no non-empty shards")
	}
	return size, nil
}

// Encode computes the m parity shards from the k data shards in place:
// shards[0..k-1] are inputs, shards[k..k+m-1] are outputs.
func (e *Encoder) Encode(shards [][]byte) error {
	if _, err := e.checkShards(shards, false); err != nil {
		return err
	}
	for p := 0; p < e.m; p++ {
		out := shards[e.k+p]
		for i := range out {
			out[i] = 0
		}
		coeffs := e.enc.Row(e.k + p)
		for d := 0; d < e.k; d++ {
			gf.MulSliceAdd(coeffs[d], out, shards[d])
		}
	}
	return nil
}

// Verify reports whether the parity shards match the data shards.
func (e *Encoder) Verify(shards [][]byte) (bool, error) {
	size, err := e.checkShards(shards, false)
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for p := 0; p < e.m; p++ {
		for i := range buf {
			buf[i] = 0
		}
		coeffs := e.enc.Row(e.k + p)
		for d := 0; d < e.k; d++ {
			gf.MulSliceAdd(coeffs[d], buf, shards[d])
		}
		for i := range buf {
			if buf[i] != shards[e.k+p][i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds every nil shard in place. Up to m shards may be nil;
// surviving shards are never modified. It allocates the missing shards.
func (e *Encoder) Reconstruct(shards [][]byte) error {
	size, err := e.checkShards(shards, true)
	if err != nil {
		return err
	}
	var missing []int
	var present []int
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
		} else {
			present = append(present, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > e.m {
		return fmt.Errorf("rs: %d shards missing, can tolerate at most %d", len(missing), e.m)
	}

	// Build the k×k decode matrix from the generator rows of k surviving
	// shards, invert it, and express the k data shards in terms of those
	// survivors.
	sub := gf.NewMatrix(e.k, e.k)
	for r := 0; r < e.k; r++ {
		copy(sub.Row(r), e.enc.Row(present[r]))
	}
	inv, err := sub.Invert()
	if err != nil {
		return fmt.Errorf("rs: decode matrix singular: %w", err)
	}

	// Recover missing data shards first.
	recoverRow := func(coeffs []byte, dst []byte) {
		for r := 0; r < e.k; r++ {
			gf.MulSliceAdd(coeffs[r], dst, shards[present[r]])
		}
	}
	for _, idx := range missing {
		if idx >= e.k {
			continue
		}
		dst := make([]byte, size)
		recoverRow(inv.Row(idx), dst)
		shards[idx] = dst
	}
	// Then recompute any missing parity from the (now complete) data.
	for _, idx := range missing {
		if idx < e.k {
			continue
		}
		dst := make([]byte, size)
		coeffs := e.enc.Row(idx)
		for d := 0; d < e.k; d++ {
			gf.MulSliceAdd(coeffs[d], dst, shards[d])
		}
		shards[idx] = dst
	}
	return nil
}
