// Package ioload simulates the per-disk I/O access counts of an array code
// under an <S, L, T> workload and reports the two metrics of the D-Code
// paper's §IV-B: the load balancing factor LF = Lmax/Lmin and the total I/O
// cost ΣL(i). It regenerates Figures 4 and 5.
//
// Accounting model (see DESIGN.md §5):
//
//   - The logical data address space is row-major over the data cells of each
//     stripe, stripes concatenated; stripe layouts repeat without rotation
//     (the paper argues rotation cannot balance accesses within a stripe).
//   - A read touches each requested data element once per execution.
//   - A write is a read-modify-write: per execution, read-old + write-new on
//     every requested data element (2 accesses each) and read-old + write-new
//     on every distinct parity element covering any of them (2 accesses each,
//     per stripe).
package ioload

import (
	"math"

	"dcode/internal/erasure"
	"dcode/internal/workload"
)

// StripeSpan is the portion of an element range that falls into one stripe.
type StripeSpan struct {
	Stripe int             // stripe index
	Coords []erasure.Coord // data cells touched within the stripe, in logical order
}

// SplitRange maps the L continuous logical data elements starting at S onto
// per-stripe coordinate lists.
func SplitRange(c *erasure.Code, s, l int) []StripeSpan {
	if l <= 0 {
		return nil
	}
	d := c.DataElems()
	var spans []StripeSpan
	for l > 0 {
		stripe := s / d
		idx := s % d
		n := d - idx
		if n > l {
			n = l
		}
		span := StripeSpan{Stripe: stripe, Coords: make([]erasure.Coord, 0, n)}
		for i := 0; i < n; i++ {
			span.Coords = append(span.Coords, c.DataCoord(idx+i))
		}
		spans = append(spans, span)
		s += n
		l -= n
	}
	return spans
}

// Result aggregates per-disk access counts for one code under one workload.
type Result struct {
	Code    string
	PerDisk []int64
}

// Lmax returns the largest per-disk access count.
func (r Result) Lmax() int64 {
	var m int64
	for _, v := range r.PerDisk {
		if v > m {
			m = v
		}
	}
	return m
}

// Lmin returns the smallest per-disk access count.
func (r Result) Lmin() int64 {
	if len(r.PerDisk) == 0 {
		return 0
	}
	m := r.PerDisk[0]
	for _, v := range r.PerDisk[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// LF returns the load balancing factor Lmax/Lmin (Eq. 8). A completely idle
// disk yields +Inf, which the paper plots as 30.
func (r Result) LF() float64 {
	min := r.Lmin()
	if min == 0 {
		return math.Inf(1)
	}
	return float64(r.Lmax()) / float64(min)
}

// Cost returns the total number of I/O accesses ΣL(i) (Eq. 9).
func (r Result) Cost() int64 {
	var sum int64
	for _, v := range r.PerDisk {
		sum += v
	}
	return sum
}

// Simulate runs the workload against the code and counts per-disk accesses,
// with the identity stripe-to-disk mapping the paper assumes.
func Simulate(c *erasure.Code, ops []workload.Op) Result {
	return SimulateMapped(c, ops, func(stripeIdx, col int) int { return col })
}

// SimulateRotated runs the workload with the RAID-5-style rotation the
// paper's §I discusses: the logical column of stripe s maps to physical disk
// (col + s) mod disks. Rotation equalizes aggregate load only when stripes
// are accessed uniformly; with per-stripe frequency skew (hotspot workloads)
// the imbalance persists — the paper's argument for balancing *within* the
// stripe, as D-Code does.
func SimulateRotated(c *erasure.Code, ops []workload.Op) Result {
	return SimulateMapped(c, ops, func(stripeIdx, col int) int {
		return (col + stripeIdx) % c.Cols()
	})
}

// SimulateMapped runs the workload with an arbitrary per-stripe
// logical-column-to-physical-disk mapping.
func SimulateMapped(c *erasure.Code, ops []workload.Op, disk func(stripeIdx, col int) int) Result {
	res := Result{Code: c.Name(), PerDisk: make([]int64, c.Cols())}
	for _, op := range ops {
		t := int64(op.T)
		for _, span := range SplitRange(c, op.S, op.L) {
			switch op.Kind {
			case workload.Read:
				for _, co := range span.Coords {
					res.PerDisk[disk(span.Stripe, co.Col)] += t
				}
			case workload.Write:
				// Read-modify-write: old data read + new data write.
				for _, co := range span.Coords {
					res.PerDisk[disk(span.Stripe, co.Col)] += 2 * t
				}
				// Each distinct parity: old parity read + new parity write.
				for _, gi := range c.GroupsTouchedBy(span.Coords) {
					p := c.Groups()[gi].Parity
					res.PerDisk[disk(span.Stripe, p.Col)] += 2 * t
				}
			}
		}
	}
	return res
}
