package ioload

import (
	"math"
	"testing"

	"dcode/internal/codes"
	"dcode/internal/workload"
)

func TestSplitRangeSingleStripe(t *testing.T) {
	c := codes.MustNew("dcode", 7) // 35 data elements per stripe
	spans := SplitRange(c, 3, 5)
	if len(spans) != 1 || spans[0].Stripe != 0 || len(spans[0].Coords) != 5 {
		t.Fatalf("spans = %+v", spans)
	}
	// Data index 3 of a 7-disk D-Code is (0,3).
	if spans[0].Coords[0] != c.DataCoord(3) {
		t.Fatalf("first coord %v", spans[0].Coords[0])
	}
}

func TestSplitRangeCrossesStripes(t *testing.T) {
	c := codes.MustNew("dcode", 5) // 15 data elements per stripe
	spans := SplitRange(c, 12, 8)  // 12..14 in stripe 0, 15..19 in stripe 1
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Stripe != 0 || len(spans[0].Coords) != 3 {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Stripe != 1 || len(spans[1].Coords) != 5 {
		t.Fatalf("span 1 = %+v", spans[1])
	}
	if spans[1].Coords[0] != c.DataCoord(0) {
		t.Fatal("stripe 1 does not restart at data element 0")
	}
}

func TestSplitRangeEmpty(t *testing.T) {
	c := codes.MustNew("dcode", 5)
	if SplitRange(c, 0, 0) != nil {
		t.Fatal("zero-length range produced spans")
	}
}

func TestReadAccounting(t *testing.T) {
	c := codes.MustNew("dcode", 5)
	// One read of 5 elements starting at 0, once: row 0 of each disk.
	res := Simulate(c, []workload.Op{{Kind: workload.Read, S: 0, L: 5, T: 3}})
	for d := 0; d < 5; d++ {
		if res.PerDisk[d] != 3 {
			t.Fatalf("disk %d = %d accesses, want 3", d, res.PerDisk[d])
		}
	}
	if res.Cost() != 15 {
		t.Fatalf("cost = %d, want 15", res.Cost())
	}
	if res.LF() != 1 {
		t.Fatalf("LF = %v, want 1", res.LF())
	}
}

func TestWriteAccountingSingleElement(t *testing.T) {
	c := codes.MustNew("dcode", 5)
	// One write of one element once: 2 accesses on its disk + 2 on each of
	// its two parity disks (D-Code has optimal update complexity 2).
	res := Simulate(c, []workload.Op{{Kind: workload.Write, S: 0, L: 1, T: 1}})
	if res.Cost() != 2+2*2 {
		t.Fatalf("cost = %d, want 6", res.Cost())
	}
	co := c.DataCoord(0)
	if res.PerDisk[co.Col] < 2 {
		t.Fatalf("written disk %d got %d accesses", co.Col, res.PerDisk[co.Col])
	}
}

func TestWriteAccountingSharedParity(t *testing.T) {
	c := codes.MustNew("dcode", 7)
	// n-2 = 5 consecutive elements starting at a group boundary share one
	// horizontal parity; each has its own deployment parity.
	// Cost = 2*5 (data) + 2*1 (shared horizontal) + 2*5 (deployment) = 22.
	res := Simulate(c, []workload.Op{{Kind: workload.Write, S: 0, L: 5, T: 1}})
	if res.Cost() != 22 {
		t.Fatalf("cost = %d, want 22", res.Cost())
	}
}

func TestReadOnlyCostEqualAcrossCodes(t *testing.T) {
	// Figure 5(a): under a read-only workload every code pays the same
	// cost, because reads cause no extra accesses.
	var want int64 = -1
	for _, e := range codes.Comparison() {
		c, err := e.New(7)
		if err != nil {
			t.Fatal(err)
		}
		ops, err := workload.Generate(workload.Config{DataElems: c.DataElems(), Ops: 500, Seed: 9}, workload.ReadOnly)
		if err != nil {
			t.Fatal(err)
		}
		// Same seed yields the same L and T streams; cost = Σ L·T regardless
		// of code geometry.
		got := Simulate(c, ops).Cost()
		if want < 0 {
			want = got
		} else if got != want {
			t.Fatalf("%s read-only cost %d != %d", e.ID, got, want)
		}
	}
}

func TestRDPReadOnlyLFInfinite(t *testing.T) {
	c := codes.MustNew("rdp", 7)
	ops, _ := workload.Generate(workload.Config{DataElems: c.DataElems(), Ops: 200, Seed: 4}, workload.ReadOnly)
	res := Simulate(c, ops)
	if !math.IsInf(res.LF(), 1) {
		t.Fatalf("RDP read-only LF = %v, want +Inf (idle parity disks)", res.LF())
	}
}

func TestVerticalCodesWellBalanced(t *testing.T) {
	// Figure 4: HDP, X-Code and D-Code stay near LF = 1 in every workload.
	for _, id := range []string{"hdp", "xcode", "dcode"} {
		c := codes.MustNew(id, 11)
		for _, prof := range workload.Profiles {
			ops, _ := workload.Generate(workload.Config{DataElems: c.DataElems(), Seed: 11}, prof)
			lf := Simulate(c, ops).LF()
			if lf > 1.2 {
				t.Errorf("%s under %s: LF = %v, want near 1", id, prof.Name, lf)
			}
		}
	}
}

func TestDCodeCheaperThanXCodeOnWrites(t *testing.T) {
	// Figure 5(b,c): D-Code's shared horizontal parities beat X-Code's
	// all-diagonal parities under write-heavy workloads.
	dc := codes.MustNew("dcode", 13)
	xc := codes.MustNew("xcode", 13)
	for _, prof := range []workload.Profile{workload.ReadIntensive, workload.Mixed} {
		dops, _ := workload.Generate(workload.Config{DataElems: dc.DataElems(), Seed: 2}, prof)
		xops, _ := workload.Generate(workload.Config{DataElems: xc.DataElems(), Seed: 2}, prof)
		dcost := Simulate(dc, dops).Cost()
		xcost := Simulate(xc, xops).Cost()
		if dcost >= xcost {
			t.Errorf("%s: D-Code cost %d not below X-Code %d", prof.Name, dcost, xcost)
		}
		// Paper reports ~15% at p=13; require at least 10%.
		if float64(dcost) > 0.9*float64(xcost) {
			t.Errorf("%s: D-Code cost %d less than 10%% below X-Code %d", prof.Name, dcost, xcost)
		}
	}
}

func TestResultLminLmaxEmptyAndZero(t *testing.T) {
	r := Result{PerDisk: nil}
	if r.Lmin() != 0 || r.Lmax() != 0 || r.Cost() != 0 {
		t.Fatal("empty result not all-zero")
	}
	r = Result{PerDisk: []int64{5, 0, 3}}
	if r.Lmin() != 0 || r.Lmax() != 5 || r.Cost() != 8 {
		t.Fatalf("Lmin/Lmax/Cost = %d/%d/%d", r.Lmin(), r.Lmax(), r.Cost())
	}
}

// The paper's §I argument: RAID-5-style stripe rotation balances aggregate
// load only for uniform access; with per-stripe frequency skew the rotated
// horizontal code stays unbalanced, while D-Code balances within every
// stripe and does not care.
func TestRotationCannotFixHotspots(t *testing.T) {
	rdpCode := codes.MustNew("rdp", 7)
	dcodeC := codes.MustNew("dcode", 7)

	gen := func(c interface{ DataElems() int }, hot bool) []workload.Op {
		cfg := workload.Config{
			// Span 40 stripes so rotation has room to work.
			DataElems: 40 * c.DataElems(),
			Seed:      17,
		}
		if hot {
			cfg.HotspotOpFraction = 0.95
			cfg.HotspotAddrFraction = 0.025 // ~1 hot stripe
		}
		ops, err := workload.Generate(cfg, workload.Mixed)
		if err != nil {
			t.Fatal(err)
		}
		return ops
	}

	// Uniform access: rotation rescues RDP.
	uniformRotated := SimulateRotated(rdpCode, gen(rdpCode, false)).LF()
	if uniformRotated > 1.2 {
		t.Fatalf("rotated RDP under uniform load: LF = %.2f, want near 1", uniformRotated)
	}
	// Hotspot access: rotation does not.
	hotRotated := SimulateRotated(rdpCode, gen(rdpCode, true)).LF()
	if hotRotated < 1.3 {
		t.Fatalf("rotated RDP under hotspot load: LF = %.2f, expected imbalance to persist", hotRotated)
	}
	// D-Code needs no rotation either way.
	hotDCode := Simulate(dcodeC, gen(dcodeC, true)).LF()
	if hotDCode > 1.2 {
		t.Fatalf("D-Code under hotspot load: LF = %.2f, want near 1", hotDCode)
	}
	if hotRotated < 1.5*hotDCode {
		t.Fatalf("rotated RDP (%.2f) not clearly worse than D-Code (%.2f) under hotspots", hotRotated, hotDCode)
	}
}

func TestSimulateRotatedPreservesCost(t *testing.T) {
	// Rotation permutes disks per stripe; the total cost must be identical.
	c := codes.MustNew("rdp", 7)
	ops, err := workload.Generate(workload.Config{DataElems: 10 * c.DataElems(), Seed: 3}, workload.Mixed)
	if err != nil {
		t.Fatal(err)
	}
	if Simulate(c, ops).Cost() != SimulateRotated(c, ops).Cost() {
		t.Fatal("rotation changed the total I/O cost")
	}
}

func TestHotspotWorkloadSkew(t *testing.T) {
	cfg := workload.Config{DataElems: 1000, Seed: 4, HotspotOpFraction: 0.8, HotspotAddrFraction: 0.1}
	ops, err := workload.Generate(cfg, workload.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, op := range ops {
		if op.S < 100 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(ops))
	if frac < 0.75 || frac > 0.9 {
		t.Fatalf("hot fraction = %.2f, want ≈ 0.8+ε", frac)
	}
	if _, err := workload.Generate(workload.Config{DataElems: 10, HotspotOpFraction: 2}, workload.ReadOnly); err == nil {
		t.Fatal("bad hotspot fraction accepted")
	}
}
